# Convenience targets; everything is plain dune underneath.
SHELL := /bin/bash

.PHONY: all build test bench perfcheck doc lint check telemetry replay-smoke pdes-smoke race-smoke hytm-smoke profile-smoke ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Hot-path lint: the event engine, coherence protocol and HTM value
# layer must stay free of polymorphic compare/max/min, generic Hashtbl
# and Printf (see tools/lint.ml for the rules and the waiver pragmas).
lint:
	dune exec tools/lint.exe -- .

# Correctness checkers (lib/check): exhaustively explore every event
# interleaving of the small canned scenarios, fuzz 200 seeded random
# schedules per scenario, and verify that each deliberately injected
# protocol mutation is caught by both the sanitizer and the explorer.
check:
	dune exec bin/lockiller_sim.exe -- check

# API docs (doc/index.mld + the interface docstrings). odoc is an
# optional dev dependency, so the target degrades to a notice when it
# is absent; when it runs, any odoc warning (broken {!reference},
# missing docstring markup, bad .mld syntax) fails the build.
doc:
	@if command -v odoc >/dev/null 2>&1; then \
	  out=$$(dune build @doc 2>&1); status=$$?; \
	  if [ -n "$$out" ]; then printf '%s\n' "$$out"; fi; \
	  if [ $$status -ne 0 ]; then exit $$status; fi; \
	  if printf '%s' "$$out" | grep -qi warning; then \
	    echo "make doc: odoc warnings are treated as errors"; exit 1; \
	  fi; \
	  echo "docs built: _build/default/_doc/_html/index.html"; \
	else \
	  echo "make doc: odoc not installed, skipping (opam install odoc)"; \
	fi

# Telemetry smoke: one sampled run exporting both the time series and
# a Perfetto trace with counter tracks, validated by the JSON checker
# (the same checks the cram suite pins byte-for-byte).
telemetry:
	rm -rf _build/telemetry-smoke && mkdir -p _build/telemetry-smoke
	dune exec bin/lockiller_sim.exe -- run -s LockillerTM -w intruder \
	  -t 4 --cores 4 --scale 0.1 --sample-interval 256 \
	  --telemetry _build/telemetry-smoke/tel.json \
	  --trace-events _build/telemetry-smoke/trace.json > /dev/null
	dune exec test/json_check.exe < _build/telemetry-smoke/tel.json
	dune exec test/json_check.exe -- --trace \
	  < _build/telemetry-smoke/trace.json
	dune exec bin/lockiller_sim.exe -- top _build/telemetry-smoke/tel.json \
	  --once > /dev/null
	rm -rf _build/telemetry-smoke
	@echo "telemetry smoke: OK"

# Replay smoke: generate an open-loop trace, replay it against two
# systems, validate the result JSON (including the open-loop block)
# with the checker, and diff the two with 'compare'. A second replay of
# the same trace must be byte-identical to the first — open-loop runs
# are as deterministic as closed-loop ones.
replay-smoke:
	rm -rf _build/replay-smoke && mkdir -p _build/replay-smoke
	dune exec bin/lockiller_sim.exe -- gen-trace --users 4000 \
	  --duration 200000 --seed 7 -o _build/replay-smoke/t.lkt
	dune exec bin/lockiller_sim.exe -- replay _build/replay-smoke/t.lkt \
	  --threads 8 --format json > _build/replay-smoke/lockiller.json
	dune exec bin/lockiller_sim.exe -- replay _build/replay-smoke/t.lkt \
	  --threads 8 -s Baseline --format json > _build/replay-smoke/base.json
	dune exec test/json_check.exe -- --result \
	  < _build/replay-smoke/lockiller.json
	dune exec test/json_check.exe -- --result \
	  < _build/replay-smoke/base.json
	dune exec bin/lockiller_sim.exe -- compare \
	  _build/replay-smoke/base.json _build/replay-smoke/lockiller.json \
	  > /dev/null
	dune exec bin/lockiller_sim.exe -- replay _build/replay-smoke/t.lkt \
	  --threads 8 --format json > _build/replay-smoke/lockiller2.json
	cmp _build/replay-smoke/lockiller.json _build/replay-smoke/lockiller2.json
	rm -rf _build/replay-smoke
	@echo "replay smoke: OK"

# PDES smoke: the same closed-loop run on a 256-core mesh executed
# twice, single-queue and split across four conservative PDES domains.
# Both results must validate, and the two must be byte-identical: the
# domain split is an engine-internal execution detail that may never
# leak into the result JSON (--pdes-domains is a Runner option, not
# part of the configuration or its cache key).
pdes-smoke:
	rm -rf _build/pdes-smoke && mkdir -p _build/pdes-smoke
	dune exec bin/lockiller_sim.exe -- run -s LockillerTM -w vacation \
	  -t 16 --cores 256 --scale 0.1 --pdes-domains 1 --format json \
	  > _build/pdes-smoke/d1.json
	dune exec bin/lockiller_sim.exe -- run -s LockillerTM -w vacation \
	  -t 16 --cores 256 --scale 0.1 --pdes-domains 4 --format json \
	  > _build/pdes-smoke/d4.json
	dune exec test/json_check.exe -- --result < _build/pdes-smoke/d1.json
	dune exec test/json_check.exe -- --result < _build/pdes-smoke/d4.json
	cmp _build/pdes-smoke/d1.json _build/pdes-smoke/d4.json
	rm -rf _build/pdes-smoke
	@echo "pdes smoke: OK"

# Race-detector smoke: a 256-core run with the partition-ownership
# detector armed must finish with zero violations (--race-check fails
# the run otherwise) and stay byte-identical across domain counts —
# the detector is purely observational. The diagnostic "pdes" member
# legitimately differs between the two runs (different domain counts),
# so it is stripped before the comparison; everything else must match
# to the byte.
race-smoke:
	rm -rf _build/race-smoke && mkdir -p _build/race-smoke
	dune exec bin/lockiller_sim.exe -- run -s LockillerTM -w vacation \
	  -t 16 --cores 256 --scale 0.1 --pdes-domains 1 --race-check \
	  --format json > _build/race-smoke/d1.json
	dune exec bin/lockiller_sim.exe -- run -s LockillerTM -w vacation \
	  -t 16 --cores 256 --scale 0.1 --pdes-domains 4 --race-check \
	  --format json > _build/race-smoke/d4.json
	dune exec test/json_check.exe -- --result < _build/race-smoke/d1.json
	dune exec test/json_check.exe -- --result < _build/race-smoke/d4.json
	dune exec test/json_check.exe -- --strip pdes \
	  < _build/race-smoke/d1.json > _build/race-smoke/d1.stripped.json
	dune exec test/json_check.exe -- --strip pdes \
	  < _build/race-smoke/d4.json > _build/race-smoke/d4.stripped.json
	cmp _build/race-smoke/d1.stripped.json _build/race-smoke/d4.stripped.json
	rm -rf _build/race-smoke
	@echo "race smoke: OK"

# Hybrid-TM smoke: the HyTM instrumentation-cost sweep (docs/HYBRID.md)
# on a tiny configuration, validated by the JSON checker, then rerun
# with a different worker count — the two outputs must be
# byte-identical: the TL2 software path and the global version clock
# are as deterministic as the rest of the model, and --jobs is an
# execution detail that may never leak into the result.
hytm-smoke:
	rm -rf _build/hytm-smoke && mkdir -p _build/hytm-smoke
	dune exec bin/lockiller_sim.exe -- experiment hytm --cores 4 \
	  --threads 2 --scale 0.1 --jobs 2 --no-cache --format json \
	  > _build/hytm-smoke/a.json
	dune exec test/json_check.exe < _build/hytm-smoke/a.json
	dune exec bin/lockiller_sim.exe -- experiment hytm --cores 4 \
	  --threads 2 --scale 0.1 --jobs 1 --no-cache --format json \
	  > _build/hytm-smoke/b.json
	cmp _build/hytm-smoke/a.json _build/hytm-smoke/b.json
	rm -rf _build/hytm-smoke
	@echo "hytm smoke: OK"

# Causal-profiler smoke: the profile subcommand end to end — text
# report, JSON validated by the checker, then the same profiled run
# re-executed on the heap event queue and with the simulation split
# over four PDES domains: all three JSON documents must be
# byte-identical, because the profiler folds the deterministic ledger
# stream and never observes engine-internal execution details.
profile-smoke:
	rm -rf _build/profile-smoke && mkdir -p _build/profile-smoke
	dune exec bin/lockiller_sim.exe -- profile -s LockillerTM -w intruder \
	  -t 8 --cores 8 --scale 0.2 > _build/profile-smoke/p.txt
	grep -q "wasted" _build/profile-smoke/p.txt
	dune exec bin/lockiller_sim.exe -- profile -s LockillerTM -w intruder \
	  -t 8 --cores 8 --scale 0.2 --format json \
	  > _build/profile-smoke/wheel.json
	dune exec test/json_check.exe < _build/profile-smoke/wheel.json
	dune exec bin/lockiller_sim.exe -- profile -s LockillerTM -w intruder \
	  -t 8 --cores 8 --scale 0.2 --format json --queue-backend heap \
	  > _build/profile-smoke/heap.json
	cmp _build/profile-smoke/wheel.json _build/profile-smoke/heap.json
	dune exec bin/lockiller_sim.exe -- profile -s LockillerTM -w intruder \
	  -t 8 --cores 8 --scale 0.2 --format json --pdes-domains 4 \
	  2> /dev/null > _build/profile-smoke/d4.json
	cmp _build/profile-smoke/wheel.json _build/profile-smoke/d4.json
	rm -rf _build/profile-smoke
	@echo "profile smoke: OK"

# Perf regression gate: rerun the event-engine microbenchmarks and
# compare against the committed baseline — a 2x band on the
# deterministic allocation metrics (tight enough to catch a
# reintroduced hot-loop allocation) and a 3x band on wall-clock
# throughput (wide enough for host CPU steal; a lost wheel fast path
# costs 4x and more).
perfcheck:
	dune exec bench/main.exe -- --micro --format json --scale 0.1
	dune exec bench/perfcheck.exe -- BENCH_micro.json bench/baseline.json

# What CI runs: full build + every test suite, then a cold-vs-warm
# smoke of the parallel experiment harness against a throwaway cache —
# the warm run must report zero simulations — and finally the perf
# gate. The diff filters the nondeterministic lines: render/wall times
# ("rendered in", "perf:") and the cache-hit counts ("simulations:").
ci:
	dune build
	$(MAKE) lint
	dune runtest
	$(MAKE) check
	$(MAKE) doc
	rm -rf _build/ci-cache
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-cold.out
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-warm.out
	grep -q "(simulations: 0," _build/ci-warm.out
	diff <(grep -v "rendered in\|simulations:\|perf:" _build/ci-cold.out) \
	     <(grep -v "rendered in\|simulations:\|perf:" _build/ci-warm.out)
	rm -rf _build/ci-cache
	$(MAKE) telemetry
	$(MAKE) replay-smoke
	$(MAKE) pdes-smoke
	$(MAKE) race-smoke
	$(MAKE) hytm-smoke
	$(MAKE) profile-smoke
	$(MAKE) perfcheck

clean:
	dune clean
