# Convenience targets; everything is plain dune underneath.
SHELL := /bin/bash

.PHONY: all build test bench ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# What CI runs: full build + every test suite, then a cold-vs-warm
# smoke of the parallel experiment harness against a throwaway cache —
# the warm run must report zero simulations.
ci:
	dune build
	dune runtest
	rm -rf _build/ci-cache
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-cold.out
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-warm.out
	grep -q "(simulations: 0," _build/ci-warm.out
	diff <(grep -v "rendered in\|simulations:" _build/ci-cold.out) \
	     <(grep -v "rendered in\|simulations:" _build/ci-warm.out)
	rm -rf _build/ci-cache

clean:
	dune clean
