# Convenience targets; everything is plain dune underneath.
SHELL := /bin/bash

.PHONY: all build test bench perfcheck ci clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Perf regression gate: rerun the event-engine microbenchmarks and
# compare against the committed baseline with a 2x tolerance band —
# wide enough for machine-to-machine noise, tight enough to catch a
# reintroduced hot-loop allocation or a broken wheel fast path.
perfcheck:
	dune exec bench/main.exe -- --micro --format json --scale 0.1
	dune exec bench/perfcheck.exe -- BENCH_micro.json bench/baseline.json

# What CI runs: full build + every test suite, then a cold-vs-warm
# smoke of the parallel experiment harness against a throwaway cache —
# the warm run must report zero simulations — and finally the perf
# gate. The diff filters the nondeterministic lines: render/wall times
# ("rendered in", "perf:") and the cache-hit counts ("simulations:").
ci:
	dune build
	dune runtest
	rm -rf _build/ci-cache
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-cold.out
	dune exec bench/main.exe -- fig7 --scale 0.1 --jobs 2 \
	  --cache-dir _build/ci-cache > _build/ci-warm.out
	grep -q "(simulations: 0," _build/ci-warm.out
	diff <(grep -v "rendered in\|simulations:\|perf:" _build/ci-cold.out) \
	     <(grep -v "rendered in\|simulations:\|perf:" _build/ci-warm.out)
	rm -rf _build/ci-cache
	$(MAKE) perfcheck

clean:
	dune clean
