(* Command-line driver for the LockillerTM simulator.

   lockiller_sim run --system LockillerTM --workload intruder --threads 32
   lockiller_sim experiment fig7 --scale 0.5
   lockiller_sim experiment all
   lockiller_sim list *)

open Cmdliner
module Sysconf = Lockiller.Mechanisms.Sysconf
module Runner = Lockiller.Sim.Runner
module Config = Lockiller.Sim.Config
module Experiments = Lockiller.Sim.Experiments
module Report = Lockiller.Sim.Report
module Accounting = Lockiller.Cpu.Accounting
module Reason = Lockiller.Htm.Reason
module Json = Lockiller.Sim.Json
module Schema = Lockiller.Sim.Schema
module Cache = Lockiller.Sim.Cache
module Pool = Lockiller.Sim.Pool
module Tracing = Lockiller.Sim.Tracing
module Telemetry = Lockiller.Sim.Telemetry
module Cli = Lockiller.Sim.Cli
module Trace_record = Lockiller.Trace.Record
module Trace_stream = Lockiller.Trace.Stream
module Trace_gen = Lockiller.Trace.Gen
module Suite = Lockiller.Stamp.Suite
module Workload_source = Lockiller.Sim.Workload_source

(* --- shared options ---------------------------------------------------- *)

(* The validators live in [Lk_sim.Cli] (shared with bench/main.ml);
   here they are only wrapped into cmdliner converters. *)
let conv_of_check check print =
  Arg.conv ((fun s -> Result.map_error (fun m -> `Msg m) (check s)), print)

let cache_conv =
  conv_of_check Cli.cache_profile (fun ppf c ->
      Format.pp_print_string ppf (Config.cache_profile_id c))

(* Reject nonsense argument values up front with a clear message rather
   than clamping silently or failing deep inside a run. *)
let pos_int_conv what =
  conv_of_check (Cli.positive_int ~what) Format.pp_print_int

(* A path we will later open for writing. *)
let writable_path_conv =
  conv_of_check Cli.writable_path Format.pp_print_string

let seed_t =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Deterministic RNG seed.")

let scale_t =
  Arg.(
    value
    & opt float 1.0
    & info [ "scale" ] ~doc:"Workload size multiplier (transactions/thread).")

let cache_t =
  Arg.(
    value
    & opt cache_conv Config.Typical
    & info [ "cache" ] ~doc:"Cache profile: typical, small or large.")

let cores_t =
  Arg.(
    value
    & opt (conv_of_check (Cli.cores ~what:"--cores") Format.pp_print_int) 32
    & info [ "cores" ]
        ~doc:"Machine size in tiles, 1 to 1024; the mesh takes the \
              nearest-square shape (32 -> 4x8, 256 -> 16x16).")

let pdes_domains_t =
  Arg.(
    value
    & opt (pos_int_conv "--pdes-domains") 1
    & info [ "pdes-domains" ] ~docv:"N"
        ~doc:"Split the event kernel into $(docv) PDES partitions (at \
              most --cores). Results are byte-identical for any value; \
              partition/window statistics go to stderr.")

let race_check_t =
  Arg.(
    value & flag
    & info [ "race-check" ]
        ~doc:"Arm the partition-ownership race detector: every \
              registered region's witness hook verifies the mutating \
              event runs in the owning tile's partition, and \
              unannotated cross-partition hops below the lookahead are \
              flagged. Purely observational — results stay \
              byte-identical with the detector on or off, and like \
              --check the flag is excluded from cache keys. Any \
              violation fails the run; with --format json a diagnostic \
              'pdes' member (partition/window statistics) is appended \
              to the result. See docs/CHECKING.md.")

let format_t =
  Arg.(
    value
    & opt (enum [ ("text", `Text); ("csv", `Csv); ("json", `Json) ]) `Text
    & info [ "format" ] ~doc:"Output format: text (default), csv or json.")

let cache_dir_t =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:"Result-cache directory (default \\$LOCKILLER_CACHE_DIR, else               \\$XDG_CACHE_HOME/lockiller, else ~/.cache/lockiller).")

let resolve_cache_dir = function
  | Some dir -> dir
  | None -> Cache.default_dir ()

(* --- observability options --------------------------------------------- *)

let trace_events_t =
  Arg.(
    value
    & opt (some writable_path_conv) None
    & info [ "trace-events" ] ~docv:"FILE"
        ~doc:"Write a Chrome/Perfetto trace of the run to $(docv): one \
              track per core, transactions as duration slices (aborts \
              tagged with their cause), NACKs/kills/parks as instants. \
              Load it at https://ui.perfetto.dev.")

let abort_breakdown_t =
  Arg.(
    value & flag
    & info [ "abort-breakdown" ]
        ~doc:"Print the abort-cause breakdown aggregated from the event \
              ledger (counts match the abort statistics exactly unless \
              the ledger overflowed).")

let trace_capacity_t =
  Arg.(
    value
    & opt (pos_int_conv "--trace-capacity") 65536
    & info [ "trace-capacity" ] ~docv:"N"
        ~doc:"Event-ledger ring capacity in records, for --trace-events \
              and --abort-breakdown; older records are dropped beyond it.")

let telemetry_file_t =
  Arg.(
    value
    & opt (some writable_path_conv) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:"Sample per-core phases, machine gauges and per-link flit \
              counters periodically during the run and write the time \
              series to $(docv) (CSV if it ends in .csv, JSON \
              otherwise). Off by default: no sampling cost. Inspect \
              with 'lockiller_sim top'.")

let sample_interval_t =
  Arg.(
    value
    & opt (pos_int_conv "--sample-interval") 1024
    & info [ "sample-interval" ] ~docv:"CYCLES"
        ~doc:"Telemetry sampling period in cycles (with --telemetry).")

(* The ledger is enabled lazily: zero simulation overhead unless one of
   the observability flags asked for it. *)
let want_ledger ~trace_events ~breakdown = trace_events <> None || breakdown

let telemetry_option ~telemetry_file ~sample_interval sink =
  match telemetry_file with
  | None -> None
  | Some _ ->
    Some
      (Runner.telemetry_request ~interval:sample_interval (fun t ->
           sink := Some t))

let emit_telemetry ~telemetry_file tele =
  match (telemetry_file, tele) with
  | Some file, Some t ->
    Telemetry.write t ~file;
    Printf.printf "# telemetry: wrote %s (%d samples, %d dropped)\n" file
      (Telemetry.samples t) (Telemetry.dropped t)
  | _ -> ()

let emit_observability ?telemetry ~format ~trace_events ~breakdown rt =
  let module Runtime = Lockiller.Mechanisms.Runtime in
  match Runtime.ledger rt with
  | None -> ()
  | Some l ->
    (match trace_events with
    | None -> ()
    | Some file ->
      Tracing.write_perfetto ?telemetry ~file l;
      Printf.printf "# trace-events: wrote %s (%d events, %d dropped)\n" file
        (Lockiller.Engine.Ledger.length l)
        (Lockiller.Engine.Ledger.dropped l));
    if breakdown then begin
      let b = Tracing.abort_breakdown l in
      let table = Tracing.breakdown_table b in
      match format with
      | `Text -> Report.print table
      | `Csv -> print_string (Report.to_csv table)
      | `Json -> print_endline (Json.to_string (Tracing.json_of_breakdown b))
    end

(* --- run --------------------------------------------------------------- *)

let print_result (r : Runner.result) =
  Printf.printf "system        %s\n" r.Runner.system;
  Printf.printf "workload      %s\n" r.Runner.workload;
  Printf.printf "threads       %d\n" r.Runner.threads;
  Printf.printf "cycles        %d\n" r.Runner.cycles;
  Printf.printf "commit rate   %.1f%%\n" (100.0 *. r.Runner.commit_rate);
  Printf.printf "htm commits   %d\n" r.Runner.htm_commits;
  Printf.printf "stl commits   %d\n" r.Runner.stl_commits;
  Printf.printf "lock commits  %d\n" r.Runner.lock_commits;
  Printf.printf "sw commits    %d\n" r.Runner.sw_commits;
  Printf.printf "aborts        %d\n" r.Runner.aborts;
  if r.Runner.htm_commits > 0 then
    Printf.printf "attempts      %.2f per commit\n"
      r.Runner.avg_attempts_per_commit;
  List.iter
    (fun (reason, n) ->
      if n > 0 then Printf.printf "  %-9s   %d\n" (Reason.label reason) n)
    r.Runner.abort_mix;
  Printf.printf "wasted        %d cycles\n" r.Runner.wasted_cycles;
  List.iter
    (fun (reason, n) ->
      if n > 0 then Printf.printf "  %-9s   %d\n" (Reason.label reason) n)
    r.Runner.wasted_by_reason;
  Printf.printf "rejects       %d\n" r.Runner.rejects;
  Printf.printf "parks         %d (wakeups %d)\n" r.Runner.parks
    r.Runner.wakeups;
  Printf.printf "switches      %d granted, %d denied, %d lines spilled\n"
    r.Runner.switches_granted r.Runner.switches_denied r.Runner.spilled_lines;
  Printf.printf "network       %d messages, %d flits\n" r.Runner.network_messages
    r.Runner.network_flits;
  if r.Runner.clock_advances > 0 then
    Printf.printf "version clock %d advances\n" r.Runner.clock_advances;
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Runner.breakdown in
  Printf.printf "time breakdown:\n";
  List.iter
    (fun (cat, n) ->
      if total > 0 then
        Printf.printf "  %-10s %6.1f%%  (%d cycles)\n" (Accounting.label cat)
          (100.0 *. float_of_int n /. float_of_int total)
          n)
    r.Runner.breakdown;
  match r.Runner.open_loop with
  | None -> ()
  | Some o ->
    Printf.printf "open loop:\n";
    Printf.printf "  arrivals    %d (%d completed, max backlog %d)\n"
      o.Runner.arrivals o.Runner.completed o.Runner.max_backlog;
    Printf.printf "  queue delay p50/p95/p99  %d/%d/%d cycles\n"
      o.Runner.queue_delay_p50 o.Runner.queue_delay_p95 o.Runner.queue_delay_p99;
    Printf.printf "  sojourn     p50/p95/p99  %d/%d/%d cycles\n"
      o.Runner.sojourn_p50 o.Runner.sojourn_p95 o.Runner.sojourn_p99;
    List.iter
      (fun (phase, n) -> Printf.printf "  phase %-2d    %d completions\n" phase n)
      o.Runner.phase_mix

let check_t =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Attach the invariant sanitizer: event-level invariant \
              predicates run at every ledger emission and the end-of-run \
              checks after the last thread finishes; any violation fails \
              the run. See the 'check' subcommand for the exhaustive \
              small-configuration checker.")

let stats_t =
  Arg.(
    value & flag
    & info [ "stats" ]
        ~doc:"Also dump the raw statistic groups (protocol, runtime, \
              network). Embedded under \"stats\" with --format json; \
              ignored with --format csv.")

(* Flatten the JSON encoding of a result into (column, cell) pairs:
   nested objects (abort_mix, breakdown, open_loop with its phase_mix)
   become dotted columns, at any depth. *)
let result_csv_cells r =
  let cell = function
    | Json.Null -> ""
    | Json.Bool b -> string_of_bool b
    | Json.Int n -> string_of_int n
    | Json.Float f -> Printf.sprintf "%.17g" f
    | Json.String s -> s
    | Json.List _ | Json.Obj _ -> assert false
  in
  let rec flatten prefix = function
    | Json.Obj sub ->
      List.concat_map
        (fun (k, v) -> flatten (if prefix = "" then k else prefix ^ "." ^ k) v)
        sub
    | v -> [ (prefix, cell v) ]
  in
  match Runner.json_of_result r with
  | Json.Obj _ as obj -> flatten "" obj
  | _ -> assert false

let print_result_csv r =
  let cells = result_csv_cells r in
  print_endline (String.concat "," (List.map fst cells));
  print_endline (String.concat "," (List.map snd cells))

let json_of_group group =
  Json.Obj
    (List.map
       (fun (name, v) -> (name, Json.Int v))
       (Lockiller.Engine.Stats.counters group))

let run_cmd =
  let system =
    Arg.(
      required
      & opt (some string) None
      & info [ "system"; "s" ] ~doc:"System to simulate (see 'list').")
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:"Workload to run (see 'list').")
  in
  let threads =
    Arg.(
      required
      & opt (some int) None
      & info [ "threads"; "t" ] ~doc:"Thread count (2..cores).")
  in
  let action system workload threads stats format seed scale cache cores
      pdes_domains trace_events breakdown trace_capacity check race_check
      telemetry_file sample_interval =
    let module Runtime = Lockiller.Mechanisms.Runtime in
    let module Stats = Lockiller.Engine.Stats in
    let module Esim = Lockiller.Engine.Sim in
    let handle = ref None in
    let tele = ref None in
    match
      ( Cli.pdes_domains ~cores pdes_domains,
        Lockiller.Mechanisms.Sysconf.find system,
        Lockiller.Stamp.Suite.find workload )
    with
    | Error msg, _, _ -> `Error (false, msg)
    | Ok _, None, _ -> `Error (false, "unknown system " ^ system)
    | Ok _, _, None -> `Error (false, "unknown workload " ^ workload)
    | Ok pdes_domains, Some sysconf, Some profile -> (
      match
        Runner.run
          ~options:
            {
              Runner.default_options with
              seed;
              scale;
              check;
              race_check;
              pdes_domains;
              machine = Config.machine ~cache ~cores ();
              on_runtime =
                (fun rt ->
                  handle := Some rt;
                  if want_ledger ~trace_events ~breakdown then
                    ignore (Runtime.enable_ledger ~capacity:trace_capacity rt));
              telemetry =
                telemetry_option ~telemetry_file ~sample_interval tele;
            }
          ~sysconf ~workload:profile ~threads ()
      with
      | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg)
      | r ->
        let stat_groups () =
          match !handle with
          | None -> []
          | Some rt ->
            [
              ("runtime", Runtime.stats rt);
              ( "protocol",
                Lockiller.Coherence.Protocol.stats (Runtime.protocol rt) );
              ( "network",
                Lockiller.Mesh.Network.stats
                  (Lockiller.Coherence.Protocol.network (Runtime.protocol rt))
              );
            ]
        in
        (* With --race-check, partition/window statistics ride along as
           an extra "pdes" member of the result object. The decoder
           ignores unknown members, so the schema version is unchanged,
           and the member never enters json_of_result itself — cached
           results and cache keys are unaffected. json_check --strip
           pdes removes it for byte-identity comparisons across domain
           counts. *)
        let with_pdes doc =
          match (race_check, doc, !handle) with
          | true, Json.Obj fields, Some rt ->
            let s =
              Esim.pdes_stats
                (Lockiller.Coherence.Protocol.sim (Runtime.protocol rt))
            in
            Json.Obj
              (fields
              @ [
                  ( "pdes",
                    Json.Obj
                      [
                        ("domains", Json.Int s.Esim.domains);
                        ("lookahead", Json.Int s.Esim.lookahead);
                        ("windows", Json.Int s.Esim.windows);
                        ("cross_events", Json.Int s.Esim.cross_events);
                        ("short_hops", Json.Int s.Esim.short_hops);
                        ("race_violations", Json.Int s.Esim.race_violations);
                      ] );
                ])
          | _ -> doc
        in
        (match format with
        | `Text ->
          print_result r;
          if stats then
            List.iter
              (fun (_, g) -> Format.printf "@.%a@." Stats.pp g)
              (stat_groups ())
        | `Csv -> print_result_csv r
        | `Json ->
          let doc =
            if stats then
              Json.Obj
                [
                  ("result", with_pdes (Runner.json_of_result r));
                  ( "stats",
                    Json.Obj
                      (List.map
                         (fun (name, g) -> (name, json_of_group g))
                         (stat_groups ())) );
                ]
            else with_pdes (Runner.json_of_result r)
          in
          print_endline (Json.to_string doc));
        emit_telemetry ~telemetry_file !tele;
        Option.iter
          (emit_observability ?telemetry:!tele ~format ~trace_events
             ~breakdown)
          !handle;
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const action $ system $ workload $ threads $ stats_t $ format_t
       $ seed_t $ scale_t $ cache_t $ cores_t $ pdes_domains_t
       $ trace_events_t $ abort_breakdown_t $ trace_capacity_t $ check_t
       $ race_check_t $ telemetry_file_t $ sample_interval_t))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate one system/workload/thread combination")
    term

(* --- profile ------------------------------------------------------------ *)

(* Causal abort profiler: run one configuration with the event ledger
   on and a streaming Profile tap attached, then render the
   who-killed-whom graph, wasted-work accounting, convoy and
   critical-path summary. The tap sees every record as it is emitted,
   so the ring capacity is irrelevant to the totals — a small ring
   keeps memory flat. Output is byte-identical across event-queue
   backends and --pdes-domains values (the ledger is), which the
   --queue-backend knob exists to demonstrate. *)
let profile_cmd =
  let module Runtime = Lockiller.Mechanisms.Runtime in
  let module Profile = Lockiller.Sim.Profile in
  let system =
    Arg.(
      required
      & opt (some string) None
      & info [ "system"; "s" ] ~doc:"System to simulate (see 'list').")
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:"Workload to run (see 'list').")
  in
  let threads =
    Arg.(
      required
      & opt (some int) None
      & info [ "threads"; "t" ] ~doc:"Thread count (2..cores).")
  in
  let backend_t =
    Arg.(
      value
      & opt
          (enum
             [
               ("wheel", Lockiller.Engine.Event_queue.Wheel);
               ("heap", Lockiller.Engine.Event_queue.Heap);
             ])
          Lockiller.Engine.Event_queue.Wheel
      & info [ "queue-backend" ] ~docv:"KIND"
          ~doc:"Event-queue backend, wheel (default) or heap. The \
                profile is byte-identical for either; the knob exists \
                for differential testing (make profile-smoke).")
  in
  let action system workload threads format seed scale cache cores
      pdes_domains queue_backend =
    let profiler = ref None in
    match
      ( Cli.pdes_domains ~cores pdes_domains,
        Sysconf.find system,
        Suite.find workload )
    with
    | Error msg, _, _ -> `Error (false, msg)
    | Ok _, None, _ -> `Error (false, "unknown system " ^ system)
    | Ok _, _, None -> `Error (false, "unknown workload " ^ workload)
    | Ok pdes_domains, Some sysconf, Some wl -> (
      match
        Runner.run
          ~options:
            {
              Runner.default_options with
              seed;
              scale;
              pdes_domains;
              queue_backend;
              machine = Config.machine ~cache ~cores ();
              on_runtime =
                (fun rt ->
                  (* Streaming tap: totals are exact however small the
                     ring, so keep it minimal. *)
                  let l = Runtime.enable_ledger ~capacity:1024 rt in
                  let p = Profile.create ~cores in
                  Profile.attach p l;
                  profiler := Some p);
            }
          ~sysconf ~workload:wl ~threads ()
      with
      | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg)
      | r -> (
        match !profiler with
        | None -> `Error (false, "profiler was never attached")
        | Some p ->
          (* Cross-check the stream against the run's own counters:
             every abort must have produced exactly one edge. *)
          if Profile.total_aborts p <> r.Runner.aborts then
            `Error
              ( false,
                Printf.sprintf
                  "profile/result mismatch: %d abort edges vs %d aborts"
                  (Profile.total_aborts p) r.Runner.aborts )
          else begin
            (match format with
            | `Text ->
              Printf.printf "# profile: %s/%s threads=%d seed=%d\n"
                r.Runner.system r.Runner.workload threads seed;
              print_string (Profile.to_text p)
            | `Csv -> print_string (Profile.to_csv p)
            | `Json -> print_endline (Profile.to_json p));
            `Ok ()
          end))
  in
  let term =
    Term.(
      ret
        (const action $ system $ workload $ threads $ format_t $ seed_t
       $ scale_t $ cache_t $ cores_t $ pdes_domains_t $ backend_t))
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Run one system/workload/thread combination with the causal \
             abort profiler attached and print the who-killed-whom \
             graph, wasted-work accounting, fallback-lock convoy and \
             commit critical-path summary (text, csv or json)")
    term

(* --- check --------------------------------------------------------------- *)

let check_cmd =
  let module Check = Lockiller.Check in
  let module Types = Lockiller.Coherence.Types in
  let scenario_t =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:"Check only this scenario (default: all; see --list).")
  in
  let list_t =
    Arg.(
      value & flag
      & info [ "list" ] ~doc:"List the scenarios and checked invariants.")
  in
  let fuzz_runs_t =
    Arg.(
      value
      & opt (pos_int_conv "--fuzz-runs") 200
      & info [ "fuzz-runs" ] ~docv:"N"
          ~doc:"Randomized schedules per scenario.")
  in
  let max_schedules_t =
    Arg.(
      value
      & opt (pos_int_conv "--max-schedules") 20000
      & info [ "max-schedules" ] ~docv:"N"
          ~doc:"Exhaustive-exploration bound per scenario.")
  in
  let no_mutations_t =
    Arg.(
      value & flag
      & info [ "no-mutations" ]
          ~doc:"Skip the mutation self-test (injected protocol bugs that \
                the checkers must catch).")
  in
  let mutations =
    [
      (Types.Swmr_violation, Check.Scenario.read_forward);
      (Types.Lost_wakeup, Check.Scenario.park_wake);
      (Types.Dirty_commit, Check.Scenario.commit_race);
    ]
  in
  let action scenario list fuzz_runs max_schedules no_mutations seed =
    if list then begin
      Printf.printf "scenarios:\n";
      List.iter
        (fun (s : Check.Scenario.t) ->
          Printf.printf "  %-14s %s\n" s.Check.Scenario.name
            s.Check.Scenario.descr)
        Check.Scenario.all;
      Printf.printf "\nstate invariants: %s\n"
        (String.concat ", " Check.Invariant.names);
      `Ok ()
    end
    else
      let scenarios =
        match scenario with
        | None -> Ok Check.Scenario.all
        | Some name -> (
          match Check.Scenario.find name with
          | Some s -> Ok [ s ]
          | None ->
            Error
              (Printf.sprintf "unknown scenario %S; try: %s" name
                 (String.concat ", "
                    (List.map
                       (fun (s : Check.Scenario.t) -> s.Check.Scenario.name)
                       Check.Scenario.all))))
      in
      match scenarios with
      | Error msg -> `Error (false, msg)
      | Ok scenarios ->
        let failures = ref 0 in
        List.iter
          (fun (s : Check.Scenario.t) ->
            let verdict =
              Check.Explorer.explore ~max_schedules:max_schedules s
            in
            (match verdict with
            | Check.Explorer.Exhausted _ | Check.Explorer.Bounded _ -> ()
            | Check.Explorer.Violation _ -> incr failures);
            Printf.printf "%-14s explore  %s\n%!" s.Check.Scenario.name
              (Format.asprintf "%a" Check.Explorer.pp_verdict verdict);
            let outcome = Check.Fuzzer.fuzz ~runs:fuzz_runs ~seed s in
            (match outcome with
            | Check.Fuzzer.Passed _ -> ()
            | Check.Fuzzer.Failed _ -> incr failures);
            Printf.printf "%-14s fuzz     %s\n%!" s.Check.Scenario.name
              (Format.asprintf "%a" Check.Fuzzer.pp_outcome outcome))
          scenarios;
        if (not no_mutations) && scenario = None then begin
          Printf.printf "mutation self-test:\n%!";
          List.iter
            (fun (fault, (s : Check.Scenario.t)) ->
              (* Each deliberately broken variant must be caught twice
                 over: by the sanitizer checks during a default-schedule
                 run, and by the explorer (whose counterexample must
                 still fail on replay). *)
              let label = Types.fault_label fault in
              let default_run = Check.Harness.default ~inject_bug:fault s in
              let default_caught =
                match default_run.Check.Harness.status with
                | Check.Harness.Completed -> false
                | Check.Harness.Violated _ | Check.Harness.Livelocked _ ->
                  true
              in
              let explorer_caught =
                match
                  Check.Explorer.explore ~max_schedules:max_schedules
                    ~inject_bug:fault s
                with
                | Check.Explorer.Violation { schedule; violation; _ } -> (
                  match
                    (Check.Harness.replay ~inject_bug:fault ~schedule s)
                      .Check.Harness.status
                  with
                  | Check.Harness.Completed -> None
                  | Check.Harness.Violated _ | Check.Harness.Livelocked _ ->
                    Some (schedule, violation))
                | Check.Explorer.Exhausted _ | Check.Explorer.Bounded _ ->
                  None
              in
              match (default_caught, explorer_caught) with
              | true, Some (schedule, violation) ->
                Printf.printf
                  "  %-15s caught on %s (schedule %s: %s)\n%!" label
                  s.Check.Scenario.name
                  (Check.Schedule.to_string schedule)
                  (Check.Invariant.violation_to_string violation)
              | _ ->
                incr failures;
                Printf.printf "  %-15s NOT caught on %s%s\n%!" label
                  s.Check.Scenario.name
                  (if default_caught then " (explorer missed it)"
                   else " (sanitizer missed it)"))
            mutations;
          (* Race-class faults exercise the partition-ownership
             detector: each must be caught by the explorer on the
             sequenced kernel (with a replay-verified shrunk schedule)
             AND on the true-parallel kernel running real domains. *)
          Printf.printf "race-detector self-test:\n%!";
          (match Check.Race.parallel_clean () with
          | Ok () ->
            Printf.printf
              "  partition-confined model clean on 2 domains\n%!"
          | Error msg ->
            incr failures;
            Printf.printf "  partition-confined model FAILED: %s\n%!" msg);
          List.iter
            (fun (fault, (s : Check.Scenario.t)) ->
              let label = Types.fault_label fault in
              (match
                 Check.Race.sequenced ~max_schedules ~inject:fault s
               with
              | Ok report ->
                Printf.printf "  %-21s caught sequenced: %s\n%!" label
                  (Format.asprintf "%a" Check.Race.pp_report report)
              | Error msg ->
                incr failures;
                Printf.printf "  %-21s NOT caught sequenced: %s\n%!" label
                  msg);
              match Check.Race.parallel ~inject:fault with
              | Ok () ->
                Printf.printf "  %-21s caught on parallel domains\n%!"
                  label
              | Error msg ->
                incr failures;
                Printf.printf "  %-21s NOT caught parallel: %s\n%!" label
                  msg)
            Check.Race.mutations
        end;
        if !failures = 0 then begin
          Printf.printf "check: OK (%d scenarios)\n" (List.length scenarios);
          `Ok ()
        end
        else
          `Error
            (false, Printf.sprintf "check: %d failure(s)" !failures)
  in
  let term =
    Term.(
      ret
        (const action $ scenario_t $ list_t $ fuzz_runs_t $ max_schedules_t
       $ no_mutations_t $ seed_t))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Exhaustively explore and fuzz event interleavings of small \
             configurations against the protocol invariants")
    term

(* --- experiment -------------------------------------------------------- *)

let experiment_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id (table1, table2, fig1, fig7...fig13, headline, \
                ablation, txsize, noc, topology, placement, protocol, \
                variance, hytm — see 'list') or 'all'.")
  in
  let threads_opt =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "threads" ]
          ~doc:"Comma-separated thread counts (default 2,4,8,16,32).")
  in
  let csv_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~doc:"Also write each table as CSV into this directory.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (some (pos_int_conv "--jobs")) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Simulations to run in parallel (default: the number of \
                available cores; 1 disables the pool). Results are \
                byte-identical for any job count.")
  in
  let no_cache_t =
    Arg.(
      value & flag
      & info [ "no-cache" ] ~doc:"Do not read or write the result cache.")
  in
  let action id threads csv_dir format jobs no_cache cache_dir seed scale
      cores =
    let jobs =
      match jobs with Some j -> j | None -> Pool.default_jobs ()
    in
    let cache =
      if no_cache then None
      else Some (Cache.create ~dir:(resolve_cache_dir cache_dir) ())
    in
    let ctx =
      Experiments.make_context ~seed ~scale ~cores ?threads ~jobs ?cache ()
    in
    let emit_csv table =
      match csv_dir with
      | None -> ()
      | Some dir ->
        if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
        let path = Filename.concat dir (Report.csv_filename table) in
        let oc = open_out path in
        output_string oc (Report.to_csv table);
        close_out oc
    in
    let json_docs = ref [] in
    let render e =
      let tables = Experiments.execute ctx e in
      List.iter emit_csv tables;
      match format with
      | `Text ->
        Printf.printf "# %s — %s\n%s\n\n" e.Experiments.artefact
          e.Experiments.id e.Experiments.describe;
        List.iter Report.print tables
      | `Csv ->
        List.iter (fun t -> print_string (Report.to_csv t)) tables
      | `Json ->
        json_docs :=
          Json.Obj
            [
              ("id", Json.String e.Experiments.id);
              ("artefact", Json.String e.Experiments.artefact);
              ("describe", Json.String e.Experiments.describe);
              ("tables", Json.List (List.map Report.json_of_table tables));
            ]
          :: !json_docs
    in
    let finish () =
      (match format with
      | `Json ->
        print_endline (Json.to_string (Json.List (List.rev !json_docs)))
      | `Text | `Csv -> ());
      Option.iter Cache.persist_counters cache
    in
    if String.lowercase_ascii id = "all" then begin
      List.iter render Experiments.all;
      finish ();
      `Ok ()
    end
    else
      match Experiments.find id with
      | Some e ->
        render e;
        finish ();
        `Ok ()
      | None ->
        `Error
          ( false,
            Printf.sprintf "unknown experiment %S; try: %s" id
              (String.concat ", "
                 (List.map (fun e -> e.Experiments.id) Experiments.all)) )
  in
  let term =
    Term.(
      ret
        (const action $ id $ threads_opt $ csv_dir $ format_t $ jobs_t
       $ no_cache_t $ cache_dir_t $ seed_t $ scale_t $ cores_t))
  in
  Cmd.v
    (Cmd.info "experiment"
       ~doc:"Regenerate a table or figure of the paper (or 'all')")
    term

(* --- trace --------------------------------------------------------------- *)

let trace_cmd =
  let system =
    Arg.(
      required
      & opt (some string) None
      & info [ "system"; "s" ] ~doc:"System to simulate.")
  in
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:"Workload to run.")
  in
  let threads =
    Arg.(
      required
      & opt (some int) None
      & info [ "threads"; "t" ] ~doc:"Thread count.")
  in
  let last =
    Arg.(
      value
      & opt int 200
      & info [ "last"; "n" ] ~doc:"How many trailing events to print.")
  in
  let action system workload threads last seed scale cache cores trace_events
      breakdown trace_capacity telemetry_file sample_interval =
    let module Txtrace = Lockiller.Mechanisms.Txtrace in
    let module Runtime = Lockiller.Mechanisms.Runtime in
    match
      ( Lockiller.Mechanisms.Sysconf.find system,
        Lockiller.Stamp.Suite.find workload )
    with
    | None, _ -> `Error (false, "unknown system " ^ system)
    | _, None -> `Error (false, "unknown workload " ^ workload)
    | Some sysconf, Some profile -> (
      let trace = ref None in
      let handle = ref None in
      let tele = ref None in
      match
        Runner.run
          ~options:
            {
              Runner.default_options with
              seed;
              scale;
              machine = Config.machine ~cache ~cores ();
              on_runtime =
                (fun rt ->
                  handle := Some rt;
                  trace := Some (Runtime.enable_txtrace rt);
                  if want_ledger ~trace_events ~breakdown then
                    ignore (Runtime.enable_ledger ~capacity:trace_capacity rt));
              telemetry =
                telemetry_option ~telemetry_file ~sample_interval tele;
            }
          ~sysconf ~workload:profile ~threads ()
      with
      | exception (Failure msg | Invalid_argument msg) -> `Error (false, msg)
      | r ->
        (match !trace with
        | None -> ()
        | Some tr ->
          Printf.printf "# %d lifecycle events recorded; last %d:\n"
            (Txtrace.recorded tr) last;
          Txtrace.dump ~limit:last Format.std_formatter tr);
        emit_telemetry ~telemetry_file !tele;
        Option.iter
          (emit_observability ?telemetry:!tele ~format:`Text ~trace_events
             ~breakdown)
          !handle;
        Printf.printf "\n# run summary: %d cycles, commit rate %.1f%%\n"
          r.Runner.cycles
          (100.0 *. r.Runner.commit_rate);
        `Ok ())
  in
  let term =
    Term.(
      ret
        (const action $ system $ workload $ threads $ last $ seed_t $ scale_t
       $ cache_t $ cores_t $ trace_events_t $ abort_breakdown_t
       $ trace_capacity_t $ telemetry_file_t $ sample_interval_t))
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one simulation and dump the transaction-lifecycle trace")
    term

(* --- sweep --------------------------------------------------------------- *)

let sweep_cmd =
  let workload =
    Arg.(
      required
      & opt (some string) None
      & info [ "workload"; "w" ] ~doc:"Workload to sweep.")
  in
  let systems =
    Arg.(
      value
      & opt (list string) [ "CGL"; "Baseline"; "LockillerTM" ]
      & info [ "systems" ] ~doc:"Comma-separated system names.")
  in
  let threads =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8; 16; 32 ]
      & info [ "threads"; "t" ] ~doc:"Comma-separated thread counts.")
  in
  let metric =
    Arg.(
      value
      & opt (enum [ ("cycles", `Cycles); ("speedup", `Speedup);
                    ("commit-rate", `Rate) ])
          `Speedup
      & info [ "metric" ]
          ~doc:"What to report: cycles, speedup (vs CGL) or commit-rate.")
  in
  let action workload systems threads metric seed scale cache cores =
    let header = "threads," ^ String.concat "," systems in
    print_endline header;
    let exit_error = ref None in
    List.iter
      (fun t ->
        let cells =
          List.map
            (fun system ->
              let result =
                match metric with
                | `Cycles | `Rate ->
                  Lockiller.run ~seed ~scale ~cache ~cores ~system ~workload
                    ~threads:t ()
                  |> Result.map (fun r ->
                         match metric with
                         | `Cycles -> string_of_int r.Runner.cycles
                         | _ ->
                           Printf.sprintf "%.4f" r.Runner.commit_rate)
                | `Speedup ->
                  Lockiller.speedup_vs_cgl ~seed ~scale ~cache ~cores ~system
                    ~workload ~threads:t ()
                  |> Result.map (Printf.sprintf "%.4f")
              in
              match result with
              | Ok v -> v
              | Error msg ->
                exit_error := Some msg;
                "error")
            systems
        in
        Printf.printf "%d,%s\n%!" t (String.concat "," cells))
      threads;
    match !exit_error with
    | None -> `Ok ()
    | Some msg -> `Error (false, msg)
  in
  let term =
    Term.(
      ret
        (const action $ workload $ systems $ threads $ metric $ seed_t
       $ scale_t $ cache_t $ cores_t))
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Sweep thread counts for one workload and print CSV")
    term

(* --- custom -------------------------------------------------------------- *)

let custom_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Program in the text format of Lk_cpu.Program (see \
                examples/custom_workload.txt).")
  in
  let system =
    Arg.(
      value
      & opt string "LockillerTM"
      & info [ "system"; "s" ] ~doc:"System to simulate.")
  in
  let action file system cache cores =
    let text =
      let ic = open_in file in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s
    in
    match Lockiller.Cpu.Program.of_text text with
    | Error msg -> `Error (false, file ^ ": " ^ msg)
    | Ok program -> (
      match Lockiller.Mechanisms.Sysconf.find system with
      | None -> `Error (false, "unknown system " ^ system)
      | Some sysconf -> (
        match
          Runner.run_program
            ~options:
              {
                Runner.default_options with
                machine = Config.machine ~cache ~cores ();
              }
            ~name:(Filename.basename file) ~sysconf ~program ()
        with
        | exception (Failure msg | Invalid_argument msg) ->
          `Error (false, msg)
        | r ->
          print_result r;
          `Ok ()))
  in
  let term = Term.(ret (const action $ file $ system $ cache_t $ cores_t)) in
  Cmd.v
    (Cmd.info "custom" ~doc:"Run a hand-written workload from a text file")
    term

(* --- gen-trace ---------------------------------------------------------- *)

let trace_format_conv =
  conv_of_check Trace_stream.format_of_string (fun ppf f ->
      Format.pp_print_string ppf (Trace_stream.format_to_string f))

let gen_trace_cmd =
  let d = Trace_gen.default in
  let out =
    Arg.(
      value & opt string "-"
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Trace destination; - (the default) writes to stdout for \
                piping into 'replay -'.")
  in
  let users =
    Arg.(
      value
      & opt (pos_int_conv "--users") d.Trace_gen.users
      & info [ "users" ] ~docv:"N" ~doc:"Simulated user population.")
  in
  let think =
    Arg.(
      value
      & opt float d.Trace_gen.think_time
      & info [ "think" ] ~docv:"CYCLES"
          ~doc:"Mean cycles between one user's transactions.")
  in
  let duration =
    Arg.(
      value
      & opt (pos_int_conv "--duration") d.Trace_gen.duration
      & info [ "duration" ] ~docv:"CYCLES" ~doc:"Trace horizon in cycles.")
  in
  let day =
    Arg.(
      value
      & opt (pos_int_conv "--day") d.Trace_gen.day
      & info [ "day" ] ~docv:"CYCLES"
          ~doc:"Diurnal period; arrivals are tagged with the quarter of \
                the day they fall in (phase 0..3).")
  in
  let diurnal_amp =
    Arg.(
      value
      & opt float d.Trace_gen.diurnal_amp
      & info [ "diurnal-amp" ] ~docv:"A"
          ~doc:"Diurnal rate-swing amplitude in [0, 1).")
  in
  let burst_every =
    Arg.(
      value
      & opt int d.Trace_gen.burst_every
      & info [ "burst-every" ] ~docv:"CYCLES"
          ~doc:"Burst window period; 0 disables bursts.")
  in
  let burst_len =
    Arg.(
      value
      & opt int d.Trace_gen.burst_len
      & info [ "burst-len" ] ~docv:"CYCLES" ~doc:"Burst window length.")
  in
  let burst_mult =
    Arg.(
      value
      & opt float d.Trace_gen.burst_mult
      & info [ "burst-mult" ] ~docv:"M"
          ~doc:"Arrival-rate multiplier inside a burst (>= 1).")
  in
  let reads =
    Arg.(
      value
      & opt (pair int int) d.Trace_gen.reads_per_tx
      & info [ "reads" ] ~docv:"LO,HI"
          ~doc:"Inclusive uniform range of reads per transaction.")
  in
  let writes =
    Arg.(
      value
      & opt (pair int int) d.Trace_gen.writes_per_tx
      & info [ "writes" ] ~docv:"LO,HI"
          ~doc:"Inclusive uniform range of writes per transaction.")
  in
  let gcores =
    Arg.(
      value
      & opt (pos_int_conv "--cores") d.Trace_gen.cores
      & info [ "cores" ] ~docv:"N"
          ~doc:"Target core count for affinity tagging.")
  in
  let affinity =
    Arg.(
      value
      & opt
          (enum
             [
               ("any", Trace_gen.Any);
               ("uniform", Trace_gen.Uniform);
               ("sticky", Trace_gen.Sticky);
             ])
          d.Trace_gen.affinity
      & info [ "affinity" ]
          ~doc:"Core affinity of arrivals: any (untagged), uniform, or \
                sticky (Zipf-popular users pinned to user mod cores).")
  in
  let sticky_skew =
    Arg.(
      value
      & opt float d.Trace_gen.sticky_skew
      & info [ "sticky-skew" ] ~docv:"S"
          ~doc:"Zipf skew of the user popularity for --affinity sticky.")
  in
  let fmt =
    Arg.(
      value
      & opt trace_format_conv Trace_stream.Binary
      & info [ "format" ] ~doc:"Trace encoding: bin (default) or text.")
  in
  let action out users think duration day diurnal_amp burst_every burst_len
      burst_mult reads writes cores affinity sticky_skew fmt seed =
    let profile =
      {
        Trace_gen.users;
        think_time = think;
        duration;
        day;
        diurnal_amp;
        burst_every;
        burst_len;
        burst_mult;
        reads_per_tx = reads;
        writes_per_tx = writes;
        cores;
        affinity;
        sticky_skew;
      }
    in
    let emit_trace oc =
      set_binary_mode_out oc true;
      let w = Trace_stream.writer_to_channel fmt oc in
      let exception Emit of string in
      match
        Trace_gen.generate profile ~seed ~emit:(fun r ->
            match Trace_stream.write w r with
            | Ok () -> ()
            | Error msg -> raise (Emit msg))
      with
      | exception Emit msg -> Error msg
      | Error msg -> Error msg
      | Ok n ->
        flush oc;
        Ok n
    in
    let res =
      if out = "-" then emit_trace stdout
      else
        match Cli.writable_path out with
        | Error msg -> Error msg
        | Ok path ->
          let oc = open_out_bin path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> emit_trace oc)
    in
    match res with
    | Error msg -> `Error (false, msg)
    | Ok n ->
      Printf.eprintf "# gen-trace: %d records (%s, seed %d)\n%!" n
        (Trace_stream.format_to_string fmt) seed;
      `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ out $ users $ think $ duration $ day $ diurnal_amp
       $ burst_every $ burst_len $ burst_mult $ reads $ writes $ gcores
       $ affinity $ sticky_skew $ fmt $ seed_t))
  in
  Cmd.v
    (Cmd.info "gen-trace"
       ~doc:"Generate a deterministic open-loop arrival trace: \
             non-homogeneous Poisson traffic (diurnal swing plus burst \
             windows) from a simulated user population, streamed in O(1) \
             memory. Pipe into 'replay -' or save with -o.")
    term

(* --- replay ------------------------------------------------------------- *)

let replay_cmd =
  let trace_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE"
          ~doc:"Trace to replay (from 'gen-trace'); - reads stdin, which \
                supports a single --system only.")
  in
  let systems_t =
    Arg.(
      value
      & opt_all string [ "LockillerTM" ]
      & info [ "system"; "s" ]
          ~doc:"System to drive (repeatable; a trace file is re-read per \
                system, see 'list').")
  in
  let body_t =
    Arg.(
      value
      & opt string "vacation"
      & info [ "body" ] ~docv:"WORKLOAD"
          ~doc:"Access-pattern template for transaction bodies \
                (hot/shared/private mix, compute interleave); per-record \
                footprints come from the trace.")
  in
  let threads_t =
    Arg.(
      value
      & opt (pos_int_conv "--threads") 8
      & info [ "threads"; "t" ] ~doc:"Stream cores serving the arrivals.")
  in
  let oracle_t =
    Arg.(
      value & flag
      & info [ "oracle" ]
          ~doc:"Re-enable the serializability oracle. Off by default in \
                replay: its log grows with trace length, defeating \
                bounded-memory streaming.")
  in
  let jobs_t =
    Arg.(
      value
      & opt (pos_int_conv "--jobs") 1
      & info [ "jobs"; "j" ]
          ~doc:"Worker domains when replaying multiple systems.")
  in
  let action trace systems body threads oracle jobs stats format seed cache
      cores pdes_domains race_check telemetry_file sample_interval =
    let module Runtime = Lockiller.Mechanisms.Runtime in
    let module Stats = Lockiller.Engine.Stats in
    let unknown =
      List.filter
        (fun s -> Lockiller.Mechanisms.Sysconf.find s = None)
        systems
    in
    match Cli.pdes_domains ~cores pdes_domains with
    | Error msg -> `Error (false, msg)
    | Ok pdes_domains ->
    if unknown <> [] then
      `Error (false, "unknown system " ^ String.concat ", " unknown)
    else if trace = "-" && List.length systems > 1 then
      `Error
        ( false,
          "replay from stdin drives a single --system; save the trace to \
           a file to replay it against several" )
    else if telemetry_file <> None && List.length systems > 1 then
      `Error (false, "--telemetry records a single --system per file")
    else
      let body_profile =
        Result.bind (Suite.spec_of_name body) Suite.realise
      in
      match body_profile with
      | Error msg -> `Error (false, msg)
      | Ok profile ->
        let trace_name =
          if trace = "-" then "stdin"
          else Filename.remove_extension (Filename.basename trace)
        in
        let tele = ref None in
        let run_one system =
          let sysconf =
            Option.get (Lockiller.Mechanisms.Sysconf.find system)
          in
          let ic = if trace = "-" then stdin else open_in_bin trace in
          let close () = if trace <> "-" then close_in ic in
          Fun.protect ~finally:close (fun () ->
              match
                Trace_stream.reader_of_channel
                  ~name:(if trace = "-" then "<stdin>" else trace)
                  ic
              with
              | Error msg -> Error msg
              | Ok reader -> (
                let source =
                  Workload_source.of_reader ~name:trace_name ~body:profile
                    reader
                in
                match
                  Runner.run_source
                    ~options:
                      {
                        Runner.default_options with
                        seed;
                        oracle;
                        pdes_domains;
                        race_check;
                        machine = Config.machine ~cache ~cores ();
                        telemetry =
                          telemetry_option ~telemetry_file ~sample_interval
                            tele;
                      }
                    ~sysconf ~source ~threads ()
                with
                | exception (Failure msg | Invalid_argument msg) -> Error msg
                | r -> Ok r))
        in
        let results = Pool.map ~jobs run_one (Array.of_list systems) in
        let first_error =
          Array.fold_left
            (fun acc r ->
              match (acc, r) with
              | Some _, _ -> acc
              | None, Error msg -> Some msg
              | None, Ok _ -> None)
            None results
        in
        (match first_error with
        | Some msg -> `Error (false, msg)
        | None ->
          let results =
            Array.map
              (function Ok r -> r | Error _ -> assert false)
              results
          in
          (match format with
          | `Text ->
            Array.iteri
              (fun i r ->
                if i > 0 then print_newline ();
                print_result r)
              results
          | `Csv ->
            print_endline
              (String.concat ","
                 (List.map fst (result_csv_cells results.(0))));
            Array.iter
              (fun r ->
                print_endline
                  (String.concat "," (List.map snd (result_csv_cells r))))
              results
          | `Json -> (
            match results with
            | [| r |] ->
              let doc =
                if stats then
                  Json.Obj [ ("result", Runner.json_of_result r) ]
                else Runner.json_of_result r
              in
              print_endline (Json.to_string doc)
            | _ ->
              print_endline
                (Json.to_string
                   (Json.List
                      (List.map Runner.json_of_result
                         (Array.to_list results))))));
          emit_telemetry ~telemetry_file !tele;
          `Ok ())
  in
  let term =
    Term.(
      ret
        (const action $ trace_arg $ systems_t $ body_t $ threads_t $ oracle_t
       $ jobs_t $ stats_t $ format_t $ seed_t $ cache_t $ cores_t
       $ pdes_domains_t $ race_check_t $ telemetry_file_t
       $ sample_interval_t))
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay an arrival trace open-loop: records are admitted at \
             their trace arrival cycles whether or not the cores keep up, \
             and queueing delay / sojourn-time percentiles are reported \
             next to the usual commit statistics. Streaming: memory use \
             is independent of trace length.")
    term

(* --- compare ------------------------------------------------------------ *)

let read_file file =
  let ic = open_in file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Two saved run results (lockiller_sim run --format json > FILE) side
   by side, with absolute deltas and B/A ratios. *)
let compare_table (a : Runner.result) (b : Runner.result) =
  let ratio va vb =
    if va = 0.0 then "-" else Printf.sprintf "%.3f" (vb /. va)
  in
  let int_row label va vb =
    [
      label;
      string_of_int va;
      string_of_int vb;
      Printf.sprintf "%+d" (vb - va);
      ratio (float_of_int va) (float_of_int vb);
    ]
  in
  let float_row label va vb =
    [
      label;
      Printf.sprintf "%.4f" va;
      Printf.sprintf "%.4f" vb;
      Printf.sprintf "%+.4f" (vb -. va);
      ratio va vb;
    ]
  in
  let abort_rows =
    List.map2
      (fun (reason, na) (reason', nb) ->
        assert (reason == reason' || Reason.index reason = Reason.index reason');
        int_row ("abort:" ^ Reason.label reason) na nb)
      a.Runner.abort_mix b.Runner.abort_mix
  in
  let rows =
    [
      int_row "cycles" a.Runner.cycles b.Runner.cycles;
      float_row "commit_rate" a.Runner.commit_rate b.Runner.commit_rate;
      int_row "htm_commits" a.Runner.htm_commits b.Runner.htm_commits;
      int_row "stl_commits" a.Runner.stl_commits b.Runner.stl_commits;
      int_row "lock_commits" a.Runner.lock_commits b.Runner.lock_commits;
      int_row "sw_commits" a.Runner.sw_commits b.Runner.sw_commits;
      int_row "aborts" a.Runner.aborts b.Runner.aborts;
    ]
    @ abort_rows
    @ [
        int_row "rejects" a.Runner.rejects b.Runner.rejects;
        int_row "parks" a.Runner.parks b.Runner.parks;
        int_row "network_flits" a.Runner.network_flits b.Runner.network_flits;
        int_row "clock_advances" a.Runner.clock_advances
          b.Runner.clock_advances;
        int_row "tx_latency_p50" a.Runner.tx_latency_p50
          b.Runner.tx_latency_p50;
        int_row "tx_latency_p95" a.Runner.tx_latency_p95
          b.Runner.tx_latency_p95;
        int_row "tx_latency_p99" a.Runner.tx_latency_p99
          b.Runner.tx_latency_p99;
      ]
    @
    (* Open-loop rows only when both sides are replay results — the
       tail-latency-under-load view per system. *)
    (match (a.Runner.open_loop, b.Runner.open_loop) with
    | Some oa, Some ob ->
      [
        int_row "arrivals" oa.Runner.arrivals ob.Runner.arrivals;
        int_row "completed" oa.Runner.completed ob.Runner.completed;
        int_row "max_backlog" oa.Runner.max_backlog ob.Runner.max_backlog;
        int_row "queue_delay_p50" oa.Runner.queue_delay_p50
          ob.Runner.queue_delay_p50;
        int_row "queue_delay_p95" oa.Runner.queue_delay_p95
          ob.Runner.queue_delay_p95;
        int_row "queue_delay_p99" oa.Runner.queue_delay_p99
          ob.Runner.queue_delay_p99;
        int_row "sojourn_p50" oa.Runner.sojourn_p50 ob.Runner.sojourn_p50;
        int_row "sojourn_p95" oa.Runner.sojourn_p95 ob.Runner.sojourn_p95;
        int_row "sojourn_p99" oa.Runner.sojourn_p99 ob.Runner.sojourn_p99;
      ]
    | Some _, None | None, Some _ | None, None -> [])
  in
  let describe (r : Runner.result) =
    Printf.sprintf "%s/%s t%d" r.Runner.system r.Runner.workload
      r.Runner.threads
  in
  let notes =
    if b.Runner.cycles = 0 then []
    else
      [
        Printf.sprintf "speedup (A cycles / B cycles): %.3f"
          (float_of_int a.Runner.cycles /. float_of_int b.Runner.cycles);
      ]
  in
  Report.table ~notes
    ~title:(Printf.sprintf "compare: A=%s vs B=%s" (describe a) (describe b))
    ~headers:[ "metric"; "A"; "B"; "delta"; "B/A" ]
    rows

let compare_cmd =
  let file_a =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"A.json"
          ~doc:"Baseline result (lockiller_sim run --format json > A.json).")
  in
  let file_b =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"B.json" ~doc:"Result to compare against the baseline.")
  in
  let action a b format =
    (* Surface each input's schema version up front (on stderr, so the
       table stays machine-readable): version skew between two saved
       results is the most common reason a compare refuses to run, and
       the named error below should say which file is stale. *)
    (* Saved documents can carry diagnostic riders whose rings
       overflowed (telemetry exports embedded by tooling, the
       --race-check "pdes" block, profile dumps): any "dropped" member
       with a positive count means the file's totals are lower bounds,
       which must not pass silently into a delta table. *)
    let warn_dropped file doc =
      let rec scan path = function
        | Json.Obj fields ->
          List.iter
            (fun (k, v) ->
              let p = if path = "" then k else path ^ "." ^ k in
              (match (k, v) with
              | "dropped", Json.Int n when n > 0 ->
                Printf.eprintf
                  "# compare: WARNING: %s dropped %d records at %s — \
                   its counts are lower bounds\n%!"
                  file n p
              | _ -> ());
              scan p v)
            fields
        | Json.List l ->
          List.iteri
            (fun i v -> scan (Printf.sprintf "%s[%d]" path i) v)
            l
        | _ -> ()
      in
      scan "" doc
    in
    let load file =
      match Json.of_string (read_file file) with
      | exception Sys_error msg -> Error msg
      | Error msg -> Error (file ^ ": " ^ msg)
      | Ok doc -> (
        warn_dropped file doc;
        match Result.bind (Json.member "schema" doc) Json.to_int with
        | Error _ ->
          Printf.eprintf "# compare: %s carries no schema version\n%!" file;
          Error
            (file
           ^ ": schema-mismatch: no \"schema\" member (pre-v4 result); \
              re-run the simulation to regenerate it")
        | Ok v -> (
          Printf.eprintf "# compare: %s is schema v%d (this build reads v%s)\n%!"
            file v Schema.version_string;
          match Schema.check v with
          | Error msg -> Error (file ^ ": schema-mismatch: " ^ msg)
          | Ok () -> (
            match Runner.result_of_json_value doc with
            | Ok r -> Ok r
            | Error msg -> Error (file ^ ": " ^ msg))))
    in
    match (load a, load b) with
    | Error msg, _ | _, Error msg -> `Error (false, msg)
    | Ok ra, Ok rb ->
      let table = compare_table ra rb in
      (match format with
      | `Text -> Report.print table
      | `Csv -> print_string (Report.to_csv table)
      | `Json -> print_endline (Json.to_string (Report.json_of_table table)));
      `Ok ()
  in
  let term = Term.(ret (const action $ file_a $ file_b $ format_t)) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Diff two saved run results (JSON from 'run --format json'): \
             absolute deltas and ratios for every headline metric, \
             including the latency percentiles")
    term

(* --- top ---------------------------------------------------------------- *)

(* Render a saved telemetry export (run --telemetry FILE) as per-core
   phase strips plus gauge sparklines. *)
let top_cmd =
  let module Runtime = Lockiller.Mechanisms.Runtime in
  let file =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Telemetry JSON written by 'run --telemetry FILE'.")
  in
  let once =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:"Print one frame (the newest sample) instead of the full \
                timeline.")
  in
  let width =
    Arg.(
      value
      & opt (pos_int_conv "--width") 64
      & info [ "width" ] ~docv:"N"
          ~doc:"Timeline columns: the newest N samples are shown.")
  in
  let phase_char c =
    (* Mirrors Runtime.phase_label: non-tx, HTM, STL, lock, parked,
       aborting, software. *)
    match c with
    | 0 -> '.'
    | 1 -> 'H'
    | 2 -> 'S'
    | 3 -> 'L'
    | 4 -> 'p'
    | 5 -> 'a'
    | 6 -> 'w'
    | _ -> '?'
  in
  let spark_ramp = " .:-=+*#" in
  let exception Bad of string in
  let ok = function Ok v -> v | Error m -> raise (Bad m) in
  let ring doc name =
    let r = ok (Json.member name doc) in
    let channels =
      List.map
        (fun c -> ok (Json.to_str c))
        (ok (Json.to_list (ok (Json.member "channels" r))))
    in
    let rows =
      List.map
        (fun row -> List.map (fun c -> ok (Json.to_int c)) (ok (Json.to_list row)))
        (ok (Json.to_list (ok (Json.member "rows" r))))
    in
    let dropped =
      (* Older exports (pre-v6 tooling) may lack the member; treat as
         exact rather than refusing to render. *)
      match Result.bind (Json.member "dropped" r) Json.to_int with
      | Ok d -> d
      | Error _ -> 0
    in
    (channels, rows, dropped)
  in
  let action file once width =
    match
      let doc = ok (Json.of_string (read_file file)) in
      let interval = ok (Result.bind (Json.member "interval" doc) Json.to_int) in
      let samples = ok (Result.bind (Json.member "samples" doc) Json.to_int) in
      let cores, phase_rows, phase_dropped = ring doc "phases" in
      let gauge_names, gauge_rows, gauge_dropped = ring doc "gauges" in
      ( interval,
        samples,
        cores,
        phase_rows,
        gauge_names,
        gauge_rows,
        phase_dropped + gauge_dropped )
    with
    | exception Bad msg -> `Error (false, file ^ ": " ^ msg)
    | exception Sys_error msg -> `Error (false, msg)
    | interval, samples, cores, phase_rows, gauge_names, gauge_rows, dropped ->
      if phase_rows = [] then `Error (false, file ^ ": no samples")
      else begin
        Printf.printf "# %s: interval %d cycles, %d samples\n" file interval
          samples;
        if dropped > 0 then
          Printf.printf
            "# WARNING: ring overflow dropped %d older samples — the \
             timeline starts at the oldest retained sample, not at t=0; \
             re-record with a larger --sample-interval for full coverage\n"
            dropped;
        if once then begin
          (* One frame: the newest sample of each ring. *)
          let last l = List.nth l (List.length l - 1) in
          let row = last phase_rows in
          let time, phases =
            match row with t :: ps -> (t, ps) | [] -> (0, [])
          in
          Printf.printf "t=%d\n" time;
          List.iteri
            (fun i p ->
              Printf.printf "  %-8s %s\n"
                (List.nth cores i)
                (Runtime.phase_label p))
            phases;
          let grow = match last gauge_rows with _ :: gs -> gs | [] -> [] in
          List.iteri
            (fun i v ->
              Printf.printf "  %-14s %d\n" (List.nth gauge_names i) v)
            grow
        end
        else begin
          (* Timeline: newest [width] samples, one phase strip per core
             and one scaled sparkline per gauge. *)
          let rows = Array.of_list phase_rows in
          let n = Array.length rows in
          let first = max 0 (n - width) in
          let shown = n - first in
          let t0 = List.hd rows.(first) and t1 = List.hd rows.(n - 1) in
          Printf.printf "# showing %d of %d retained samples, t=%d..%d\n"
            shown n t0 t1;
          List.iteri
            (fun c name ->
              let strip =
                String.init shown (fun s ->
                    phase_char (List.nth rows.(first + s) (c + 1)))
              in
              Printf.printf "%-14s %s\n" name strip)
            cores;
          Printf.printf "%-14s %s\n" "phases"
            ".=non-tx H=htm S=stl L=lock p=parked a=aborting w=sw";
          let grows = Array.of_list gauge_rows in
          List.iteri
            (fun g name ->
              let value s = List.nth grows.(first + s) (g + 1) in
              let vmax = ref 0 in
              for s = 0 to shown - 1 do
                vmax := max !vmax (value s)
              done;
              let strip =
                String.init shown (fun s ->
                    if !vmax = 0 then ' '
                    else
                      spark_ramp.[value s
                                  * (String.length spark_ramp - 1)
                                  / !vmax])
              in
              Printf.printf "%-14s %s (max %d)\n" name strip !vmax)
            gauge_names
        end;
        `Ok ()
      end
  in
  let term = Term.(ret (const action $ file $ once $ width)) in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Render a saved telemetry export as per-core phase strips and \
             gauge sparklines ('--once' prints just the newest sample)")
    term

(* --- cache --------------------------------------------------------------- *)

let cache_cmd =
  let action_t =
    Arg.(
      required
      & pos 0 (some (enum [ ("stats", `Stats); ("clear", `Clear) ])) None
      & info [] ~docv:"ACTION" ~doc:"Either 'stats' or 'clear'.")
  in
  let action act cache_dir =
    let cache = Cache.create ~dir:(resolve_cache_dir cache_dir) () in
    (match act with
    | `Stats ->
      let st = Cache.disk_stats cache in
      Printf.printf "directory     %s\n" (Cache.dir cache);
      Printf.printf "schema        v%s\n" Cache.schema_version;
      Printf.printf "entries       %d (%d bytes)\n" st.Cache.entries
        st.Cache.bytes;
      Printf.printf "stale entries %d (other schema versions)\n"
        st.Cache.stale_entries;
      Printf.printf "lifetime      %d hits, %d misses, %d stores\n"
        st.Cache.lifetime_hits st.Cache.lifetime_misses
        st.Cache.lifetime_stores
    | `Clear ->
      let removed = Cache.clear cache in
      Printf.printf "removed %d entries from %s\n" removed (Cache.dir cache));
    `Ok ()
  in
  let term = Term.(ret (const action $ action_t $ cache_dir_t)) in
  Cmd.v
    (Cmd.info "cache"
       ~doc:"Inspect ('stats') or empty ('clear') the on-disk result cache")
    term

(* --- list / params ------------------------------------------------------ *)

let list_cmd =
  let action () =
    Printf.printf "systems (Table II):\n";
    List.iter (Printf.printf "  %s\n") Lockiller.systems;
    Printf.printf "\nhybrid-TM comparators (docs/HYBRID.md):\n";
    List.iter (Printf.printf "  %s\n") Lockiller.hybrid_systems;
    Printf.printf "\nworkloads (STAMP):\n";
    List.iter (Printf.printf "  %s\n") Lockiller.workloads;
    Printf.printf "\nextra workloads (outside the paper's set):\n";
    List.iter (Printf.printf "  %s\n") Lockiller.Stamp.Suite.extra_names;
    Printf.printf "\nexperiments:\n";
    List.iter
      (fun e ->
        Printf.printf "  %-10s %s\n" e.Experiments.id e.Experiments.artefact)
      Experiments.all
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List systems, workloads and experiments")
    Term.(const action $ const ())

let params_cmd =
  let action cache cores =
    let machine = Config.machine ~cache ~cores () in
    List.iter
      (fun (k, v) -> Printf.printf "%-24s %s\n" k v)
      (Config.table1 machine)
  in
  Cmd.v
    (Cmd.info "params" ~doc:"Print the machine parameters (Table I)")
    Term.(const action $ cache_t $ cores_t)

let main =
  let doc = "LockillerTM best-effort HTM simulator" in
  Cmd.group
    (Cmd.info "lockiller_sim" ~version:Lockiller.version ~doc)
    [ run_cmd; profile_cmd; check_cmd; experiment_cmd; sweep_cmd; trace_cmd;
      custom_cmd; gen_trace_cmd; replay_cmd; compare_cmd; top_cmd; cache_cmd;
      list_cmd; params_cmd ]

let () = exit (Cmd.eval main)
