(* Unit and property tests for the discrete-event kernel. *)

module Rng = Lk_engine.Rng
module Event_queue = Lk_engine.Event_queue
module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- Rng ------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check (Alcotest.int64 : int64 Alcotest.testable) "same stream"
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds differ" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  check_bool "siblings differ" false (Rng.bits64 c1 = Rng.bits64 c2)

let test_rng_copy () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check (Alcotest.int64 : int64 Alcotest.testable) "copy continues stream"
    (Rng.bits64 a) (Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let r = Rng.create 3 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_float_bounds () =
  let r = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    check_bool "in range" true (v >= 0.0 && v < 2.5)
  done

let test_rng_chance_extremes () =
  let r = Rng.create 11 in
  check_bool "p=0 never" false (Rng.chance r 0.0);
  check_bool "p=1 always" true (Rng.chance r 1.0)

let test_rng_chance_rough_frequency () =
  let r = Rng.create 13 in
  let hits = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    if Rng.chance r 0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check_bool "close to 0.3" true (freq > 0.27 && freq < 0.33)

let test_rng_geometric () =
  let r = Rng.create 17 in
  check_int "p=1 is 0" 0 (Rng.geometric r 1.0);
  let sum = ref 0 in
  let n = 10_000 in
  for _ = 1 to n do
    let v = Rng.geometric r 0.5 in
    check_bool "non-negative" true (v >= 0);
    sum := !sum + v
  done;
  (* mean of geometric(0.5) failures = 1 *)
  let mean = float_of_int !sum /. float_of_int n in
  check_bool "mean near 1" true (mean > 0.9 && mean < 1.1)

let test_rng_zipf_bounds () =
  let r = Rng.create 19 in
  for _ = 1 to 2000 do
    let v = Rng.zipf r ~n:50 ~s:0.99 in
    check_bool "in range" true (v >= 0 && v < 50)
  done

let test_rng_zipf_skew () =
  let r = Rng.create 23 in
  let counts = Array.make 20 0 in
  for _ = 1 to 20_000 do
    let v = Rng.zipf r ~n:20 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  check_bool "rank 0 hottest" true (counts.(0) > counts.(5));
  check_bool "rank 0 much hotter than tail" true (counts.(0) > 4 * counts.(19))

let test_rng_zipf_uniform_when_s0 () =
  let r = Rng.create 29 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let v = Rng.zipf r ~n:10 ~s:0.0 in
    counts.(v) <- counts.(v) + 1
  done;
  Array.iter
    (fun c -> check_bool "roughly uniform" true (c > 700 && c < 1300))
    counts

let test_rng_zipf_n1 () =
  let r = Rng.create 31 in
  check_int "single element" 0 (Rng.zipf r ~n:1 ~s:2.0)

let test_rng_shuffle_permutation () =
  let r = Rng.create 37 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation"
    (Array.init 100 (fun i -> i))
    sorted

(* --- Event_queue ----------------------------------------------------- *)

let test_eq_empty () =
  let q = Event_queue.create () in
  check_bool "fresh empty" true (Event_queue.is_empty q);
  check_bool "pop none" true (Event_queue.pop q = None);
  check_bool "peek none" true (Event_queue.peek_time q = None)

let test_eq_order () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:5 "c";
  Event_queue.add q ~time:1 "a";
  Event_queue.add q ~time:3 "b";
  check_bool "peek earliest" true (Event_queue.peek_time q = Some 1);
  check_bool "a" true (Event_queue.pop q = Some (1, "a"));
  check_bool "b" true (Event_queue.pop q = Some (3, "b"));
  check_bool "c" true (Event_queue.pop q = Some (5, "c"));
  check_bool "drained" true (Event_queue.pop q = None)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.add q ~time:7 s) [ "x"; "y"; "z" ];
  check_bool "x" true (Event_queue.pop q = Some (7, "x"));
  check_bool "y" true (Event_queue.pop q = Some (7, "y"));
  check_bool "z" true (Event_queue.pop q = Some (7, "z"))

let test_eq_interleaved () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:10 1;
  check_bool "pop 10" true (Event_queue.pop q = Some (10, 1));
  Event_queue.add q ~time:4 2;
  Event_queue.add q ~time:20 3;
  check_bool "pop 4" true (Event_queue.pop q = Some (4, 2));
  check_int "length" 1 (Event_queue.length q)

let prop_eq_sorted =
  QCheck.Test.make ~name:"event queue pops in nondecreasing time order"
    ~count:200
    QCheck.(list (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.add q ~time:t t) times;
      let rec drain last acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (t, v) ->
          if t < last then failwith "order violation"
          else drain t (v :: acc)
      in
      let popped = drain min_int [] in
      List.sort compare popped = List.sort compare times)

let prop_eq_stable =
  QCheck.Test.make ~name:"same-time events pop in insertion order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 5))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri (fun i t -> Event_queue.add q ~time:t (t, i)) times;
      let rec drain acc =
        match Event_queue.pop q with
        | None -> List.rev acc
        | Some (_, v) -> drain (v :: acc)
      in
      let popped = drain [] in
      (* within each time bucket, sequence numbers must increase *)
      let ok = ref true in
      List.iteri
        (fun i (t1, s1) ->
          List.iteri
            (fun j (t2, s2) ->
              if i < j && t1 = t2 && s1 > s2 then ok := false)
            popped)
        popped;
      !ok)

(* Differential test of the two backends: the heap is the reference
   implementation, the wheel must pop the exact same (time, payload)
   sequence through ~10k random schedule/pop/clear interleavings,
   including adds below the wheel's current window (reachable only
   through the raw queue API) and far beyond its horizon. *)
let test_eq_backend_differential () =
  let run_ops seed =
    let rng = Rng.create seed in
    let qw = Event_queue.create ~backend:Event_queue.Wheel () in
    let qh = Event_queue.create ~backend:Event_queue.Heap () in
    let clock = ref 0 in
    let next_id = ref 0 in
    for op = 1 to 10_000 do
      let r = Rng.int rng 100 in
      if r < 55 then begin
        let time =
          if r < 35 then !clock + Rng.int rng 300 (* near window *)
          else if r < 48 then !clock + Rng.int rng 8192 (* far heap *)
          else if !clock = 0 then 0
          else Rng.int rng !clock (* below the window: reshuffle *)
        in
        let id = !next_id in
        incr next_id;
        Event_queue.add qw ~time id;
        Event_queue.add qh ~time id
      end
      else if r < 97 then begin
        let a = Event_queue.pop qw and b = Event_queue.pop qh in
        if a <> b then
          Alcotest.failf "seed %d op %d: wheel and heap popped differently"
            seed op;
        match a with Some (t, _) -> clock := t | None -> ()
      end
      else begin
        Event_queue.clear qw;
        Event_queue.clear qh;
        clock := 0
      end;
      check_int "lengths agree" (Event_queue.length qh)
        (Event_queue.length qw);
      if Event_queue.peek_time qw <> Event_queue.peek_time qh then
        Alcotest.failf "seed %d op %d: peek_time disagrees" seed op
    done;
    (* Drain whatever is left and compare the full tail. *)
    let rec drain () =
      let a = Event_queue.pop qw and b = Event_queue.pop qh in
      if a <> b then Alcotest.failf "seed %d drain: tail mismatch" seed;
      if a <> None then drain ()
    in
    drain ()
  in
  List.iter run_ops [ 1; 42; 1337 ]

(* Regression test for the space leak where [pop] left the popped entry
   reachable through the heap array's vacated slot: attach finalisers
   to every payload, pop them all, and require the GC to collect every
   one while the queue itself is still live and non-empty. *)
let test_eq_pop_releases_payloads backend () =
  let q = Event_queue.create ~backend () in
  let collected = ref 0 in
  let n = 64 in
  for i = 0 to n - 1 do
    let payload = ref i in
    Gc.finalise (fun _ -> incr collected) payload;
    Event_queue.add q ~time:i payload
  done;
  for _ = 1 to n do
    ignore (Event_queue.pop q)
  done;
  (* Keep the queue alive and non-empty across the collection so the
     test observes the queue dropping the payloads, not the queue
     itself dying. *)
  Event_queue.add q ~time:1000 (ref (-1));
  Gc.full_major ();
  Gc.full_major ();
  check_int "queue still holds the sentinel event" 1 (Event_queue.length q);
  check_int "all popped payloads collected" n !collected

(* --- Int_table -------------------------------------------------------- *)

module Int_table = Lk_engine.Int_table

let test_int_table_basic () =
  let t = Int_table.create ~dummy:(-1) () in
  check_bool "fresh empty" true (Int_table.is_empty t);
  Int_table.replace t 5 50;
  Int_table.replace t 9 90;
  Int_table.replace t 5 55;
  check_int "length counts keys, not writes" 2 (Int_table.length t);
  check_bool "mem" true (Int_table.mem t 5);
  check_bool "find_opt" true (Int_table.find_opt t 5 = Some 55);
  check_int "find default" 90 (Int_table.find t ~default:0 9);
  check_int "find miss" 0 (Int_table.find t ~default:0 7);
  Int_table.remove t 5;
  check_bool "removed" false (Int_table.mem t 5);
  check_int "length after remove" 1 (Int_table.length t);
  Int_table.reset t;
  check_bool "reset empties" true (Int_table.is_empty t)

let test_int_table_rejects_negative () =
  let t = Int_table.create ~dummy:0 () in
  Alcotest.check_raises "negative key"
    (Invalid_argument "Int_table.replace: negative key") (fun () ->
      Int_table.replace t (-3) 1)

(* Property test against Hashtbl as the reference: random interleaved
   replace/remove/find churn (keys drawn from a small range so slots
   are hit repeatedly, exercising tombstone reuse and same-capacity
   rehash as well as growth). *)
let prop_int_table_matches_hashtbl =
  QCheck.Test.make ~name:"Int_table behaves like Hashtbl under churn"
    ~count:50
    QCheck.(list (pair (int_bound 200) (int_bound 3)))
    (fun ops ->
      let t = Int_table.create ~capacity:4 ~dummy:(-1) () in
      let h = Hashtbl.create 16 in
      List.iteri
        (fun i (key, op) ->
          match op with
          | 0 | 1 ->
            Int_table.replace t key i;
            Hashtbl.replace h key i
          | 2 -> (
            Int_table.remove t key;
            Hashtbl.remove h key;
            match Int_table.find_opt t key with
            | Some _ -> failwith "find after remove"
            | None -> ())
          | _ ->
            if Int_table.find_opt t key <> Hashtbl.find_opt h key then
              failwith "lookup mismatch")
        ops;
      (* Full-state comparison both ways. *)
      Int_table.length t = Hashtbl.length h
      && Int_table.fold t ~init:true ~f:(fun k v acc ->
             acc && Hashtbl.find_opt h k = Some v)
      && Hashtbl.fold
           (fun k v acc -> acc && Int_table.find_opt t k = Some v)
           h true)

let test_int_table_iter_visits_all () =
  let t = Int_table.create ~capacity:4 ~dummy:0 () in
  for k = 0 to 99 do
    Int_table.replace t k (k * 3)
  done;
  for k = 0 to 99 do
    if k mod 2 = 0 then Int_table.remove t k
  done;
  let sum = ref 0 and count = ref 0 in
  Int_table.iter t (fun k v ->
      check_int "value matches key" (k * 3) v;
      incr count;
      sum := !sum + k);
  check_int "iterates live keys only" 50 !count;
  check_int "sum of odd keys" 2500 !sum

(* --- Sim ------------------------------------------------------------- *)

let test_sim_runs_in_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:10 (fun () -> log := "b" :: !log);
  Sim.schedule sim ~delay:5 (fun () -> log := "a" :: !log);
  Sim.schedule sim ~delay:15 (fun () -> log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "clock at last event" 15 (Sim.now sim)

let test_sim_nested_schedule () =
  let sim = Sim.create () in
  let fired = ref 0 in
  Sim.schedule sim ~delay:3 (fun () ->
      Sim.schedule sim ~delay:4 (fun () -> fired := Sim.now sim));
  Sim.run sim;
  check_int "nested at 7" 7 !fired

let test_sim_zero_delay_same_cycle () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~delay:2 (fun () ->
      log := `First :: !log;
      Sim.schedule sim ~delay:0 (fun () -> log := `Second :: !log));
  Sim.run sim;
  check_int "clock" 2 (Sim.now sim);
  check_bool "both fired" true (List.length !log = 2)

let test_sim_negative_delay_rejected () =
  let sim = Sim.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Sim.schedule: negative delay") (fun () ->
      Sim.schedule sim ~delay:(-1) (fun () -> ()))

let test_sim_schedule_at_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~delay:5 (fun () -> ());
  Sim.run sim;
  Alcotest.check_raises "past"
    (Invalid_argument "Sim.schedule_at: time in the past") (fun () ->
      Sim.schedule_at sim ~time:2 (fun () -> ()))

let test_sim_limit_discards () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~delay:100 (fun () -> fired := true);
  Sim.run ~limit:50 sim;
  check_bool "discarded" false !fired;
  check_int "clock clamped" 50 (Sim.now sim)

let test_sim_quiescent_hook_injects () =
  let sim = Sim.create () in
  let rescued = ref false in
  let armed = ref true in
  Sim.on_quiescent sim (fun () ->
      if !armed then begin
        armed := false;
        Sim.schedule sim ~delay:1 (fun () -> rescued := true)
      end);
  Sim.schedule sim ~delay:1 (fun () -> ());
  Sim.run sim;
  check_bool "hook injected work" true !rescued

let test_sim_stalled_hook_loop () =
  let sim = Sim.create () in
  (* a hook that always injects a same-cycle event: livelock *)
  Sim.on_quiescent sim (fun () -> Sim.schedule sim ~delay:0 (fun () -> ()));
  Sim.schedule sim ~delay:1 (fun () -> ());
  match Sim.run sim with
  | () -> Alcotest.fail "livelocked hook loop not detected"
  | exception Sim.Stalled _ -> ()

let test_sim_hook_loop_with_progress_ok () =
  let sim = Sim.create () in
  (* a hook that advances the clock each time: terminates via budget *)
  let n = ref 0 in
  Sim.on_quiescent sim (fun () ->
      if !n < 2000 then begin
        incr n;
        Sim.schedule sim ~delay:1 (fun () -> ())
      end);
  Sim.schedule sim ~delay:1 (fun () -> ());
  Sim.run sim;
  check_int "hooks all ran" 2000 !n

let test_sim_step () =
  let sim = Sim.create () in
  let n = ref 0 in
  Sim.schedule sim ~delay:1 (fun () -> incr n);
  Sim.schedule sim ~delay:2 (fun () -> incr n);
  check_bool "step 1" true (Sim.step sim);
  check_int "one fired" 1 !n;
  check_bool "step 2" true (Sim.step sim);
  check_bool "drained" false (Sim.step sim)

(* --- Partition ------------------------------------------------------- *)

module Partition = Lk_engine.Partition
module Pdes = Lk_engine.Pdes

let test_partition_blocks () =
  let p = Partition.create ~items:10 ~domains:3 in
  check_int "domains" 3 (Partition.domains p);
  check_int "items" 10 (Partition.items p);
  let sizes = List.init 3 (Partition.size p) in
  List.iter (fun s -> check_bool "size within one" true (s = 3 || s = 4)) sizes;
  check_int "sizes cover items" 10 (List.fold_left ( + ) 0 sizes);
  for i = 0 to 9 do
    let b = Partition.of_item p i in
    let lo, hi = Partition.bounds p b in
    check_bool "item inside its block" true (i >= lo && i < hi)
  done

let test_partition_clamps_domains () =
  let p = Partition.create ~items:2 ~domains:8 in
  check_int "clamped to items" 2 (Partition.domains p);
  check_int "item 0" 0 (Partition.of_item p 0);
  check_int "item 1" 1 (Partition.of_item p 1)

let prop_partition_monotone =
  QCheck.Test.make ~name:"partition blocks are contiguous and monotone"
    ~count:200
    QCheck.(pair (int_range 1 64) (int_range 1 64))
    (fun (items, domains) ->
      let p = Partition.create ~items ~domains in
      let prev = ref 0 in
      let ok = ref true in
      for i = 0 to items - 1 do
        let b = Partition.of_item p i in
        if b < !prev || b > !prev + 1 then ok := false;
        prev := b
      done;
      !ok && !prev = Partition.domains p - 1)

(* --- Partitioned sequenced kernel ------------------------------------ *)

(* The byte-identity contract at engine level: the same model run with
   1, 2 and 4 partition queues must fire every event at the same time
   in the same order. The model below is deliberately hostile to a
   naive split — chains hop between tiles with a shared RNG whose
   consumption order depends on global event order. *)
let partitioned_trace ?(backend = Event_queue.Wheel) ?(race_check = false)
    ~domains () =
  let tiles = 8 in
  let sim = Sim.create ~backend ~domains ~lookahead:4 () in
  Sim.set_tile_map sim (fun tile -> tile * domains / tiles);
  if race_check then Sim.set_race_check sim true;
  let log = Buffer.create 4096 in
  let st = ref 88172645463325252 in
  let next () =
    st := !st lxor (!st lsl 13);
    st := !st lxor (!st lsr 7);
    st := !st lxor (!st lsl 17);
    !st land max_int
  in
  let rec tick tile n () =
    Buffer.add_string log (string_of_int tile);
    Buffer.add_char log '@';
    Buffer.add_string log (string_of_int (Sim.now sim));
    Buffer.add_char log ';';
    if n > 0 then begin
      let dst = next () mod tiles in
      let delay = 1 + (next () mod 7) in
      Sim.schedule_tile sim ~tile:dst ~delay (tick dst (n - 1))
    end
  in
  for tile = 0 to tiles - 1 do
    Sim.schedule_tile sim ~tile ~delay:(1 + (tile mod 3)) (tick tile 64)
  done;
  Sim.run sim;
  (Buffer.contents log, Sim.pdes_stats sim)

let test_sim_partitioned_identical () =
  let t1, _ = partitioned_trace ~domains:1 () in
  let t2, _ = partitioned_trace ~domains:2 () in
  let t4, _ = partitioned_trace ~domains:4 () in
  Alcotest.(check string) "1 vs 2 domains" t1 t2;
  Alcotest.(check string) "1 vs 4 domains" t1 t4

let test_sim_pdes_stats () =
  let _, s1 = partitioned_trace ~domains:1 () in
  let _, s4 = partitioned_trace ~domains:4 () in
  check_int "domains echoed" 1 s1.Sim.domains;
  check_int "single queue has no crossings" 0 s1.Sim.cross_events;
  check_int "domains echoed" 4 s4.Sim.domains;
  check_int "lookahead echoed" 4 s4.Sim.lookahead;
  check_bool "windows counted" true (s4.Sim.windows > 0);
  check_bool "chains cross partitions" true (s4.Sim.cross_events > 0);
  check_bool "short hops are a subset" true
    (s4.Sim.short_hops <= s4.Sim.cross_events)

let test_sim_partitioned_chooser_merges_queues () =
  (* The chooser's runnable set spans every partition queue: two
     same-cycle events parked in different partitions must both be
     eligible, and picking index 1 flips their firing order. *)
  let order chosen =
    let sim = Sim.create ~domains:2 ~lookahead:1 () in
    Sim.set_tile_map sim (fun tile -> tile / 2);
    let log = Buffer.create 8 in
    Sim.schedule_tile sim ~tile:0 ~delay:2 (fun () ->
        Buffer.add_char log 'a');
    Sim.schedule_tile sim ~tile:3 ~delay:2 (fun () ->
        Buffer.add_char log 'b');
    Sim.set_chooser sim (Some (fun _arity -> chosen));
    Sim.run sim;
    Buffer.contents log
  in
  Alcotest.(check string) "insertion order" "ab" (order 0);
  Alcotest.(check string) "flipped" "ba" (order 1)

(* --- Partition-ownership race detector (engine level) ----------------- *)

(* Two partitions over four tiles, lookahead 4 — the smallest
   configuration where ownership, urgency and the in-event gating are
   all observable. *)
let race_sim () =
  let sim = Sim.create ~domains:2 ~lookahead:4 () in
  Sim.set_tile_map sim (fun tile -> tile / 2);
  Sim.set_race_check sim true;
  sim

let test_sim_witness_owner_ok () =
  let sim = race_sim () in
  let r = Sim.register_region sim ~name:"own" ~tile:0 in
  Sim.schedule_tile sim ~tile:0 ~delay:1 (fun () -> Sim.witness sim r);
  Sim.run sim;
  check_int "no violations" 0 (Sim.race_count sim)

let test_sim_witness_foreign_write () =
  let sim = race_sim () in
  let r = Sim.register_region sim ~name:"remote" ~tile:3 in
  Sim.schedule_tile sim ~tile:0 ~delay:1 (fun () -> Sim.witness sim r);
  Sim.run sim;
  match Sim.race_violations sim with
  | [ v ] ->
    check_bool "kind" true (v.Sim.kind = Sim.Foreign_write);
    check_int "owner partition" 1 v.Sim.owner_part;
    check_int "executing partition" 0 v.Sim.exec_part;
    Alcotest.(check string) "region name" "remote" v.Sim.region
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_sim_witness_off_is_noop () =
  let sim = Sim.create ~domains:2 ~lookahead:4 () in
  Sim.set_tile_map sim (fun tile -> tile / 2);
  let r = Sim.register_region sim ~name:"remote" ~tile:3 in
  Sim.schedule_tile sim ~tile:0 ~delay:1 (fun () -> Sim.witness sim r);
  Sim.run sim;
  check_int "detector off records nothing" 0 (Sim.race_count sim)

let test_sim_short_hop_flagged_urgent_exempt () =
  let sim = race_sim () in
  Sim.schedule_tile sim ~tile:0 ~delay:1 (fun () ->
      (* An unannotated sub-lookahead hop to the other partition... *)
      Sim.schedule_tile sim ~tile:3 ~delay:2 (fun () -> ());
      (* ...and the same hop annotated urgent: counted, not flagged. *)
      Sim.schedule_tile sim ~urgent:true ~tile:3 ~delay:2 (fun () -> ()));
  Sim.run sim;
  let s = Sim.pdes_stats sim in
  check_int "both hops counted" 2 s.Sim.short_hops;
  match Sim.race_violations sim with
  | [ v ] ->
    check_bool "kind" true (v.Sim.kind = Sim.Short_hop);
    check_int "target partition" 1 v.Sim.owner_part;
    check_int "sending partition" 0 v.Sim.exec_part
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_sim_setup_seeding_not_flagged () =
  (* Work seeded from outside any event (setup code, quiescence hooks)
     lands in remote partitions with small delays by construction; the
     detector must not mistake it for an in-model short hop, and a
     witness from setup must not be charged to partition 0. *)
  let sim = race_sim () in
  let r = Sim.register_region sim ~name:"remote" ~tile:3 in
  Sim.schedule_tile sim ~tile:3 ~delay:1 (fun () -> Sim.witness sim r);
  Sim.run sim;
  check_int "no violations" 0 (Sim.race_count sim);
  check_int "the seeding hop is still counted" 1
    (Sim.pdes_stats sim).Sim.short_hops

let test_sim_detector_observational () =
  (* The hostile chain model trips the detector constantly (random
     sub-lookahead hops); arming it must not move a single event, on
     either queue backend or any domain count. *)
  let off, _ = partitioned_trace ~domains:4 () in
  let on, s = partitioned_trace ~race_check:true ~domains:4 () in
  Alcotest.(check string) "same trace with the detector armed" off on;
  check_bool "the model does trip the detector" true
    (s.Sim.race_violations > 0);
  let heap, _ =
    partitioned_trace ~backend:Event_queue.Heap ~race_check:true ~domains:4 ()
  in
  Alcotest.(check string) "heap backend identical" off heap;
  let one, _ = partitioned_trace ~race_check:true ~domains:1 () in
  Alcotest.(check string) "single domain identical" off one

(* --- Parallel executor (Pdes) ---------------------------------------- *)

(* Partition-confined model for the true-parallel executor: each
   partition logs only to its own buffer (no shared state), and 1 in 8
   events hops to the next partition with a delay at the lookahead
   floor. The run must be a pure function of (model, domains,
   lookahead) — identical across repetitions despite real
   Domain.spawn interleaving. *)
let pdes_run ~domains ~lookahead =
  let p = Pdes.create ~domains ~lookahead () in
  let logs = Array.init domains (fun _ -> Buffer.create 1024) in
  let rec tick n port =
    let me = Pdes.id port in
    Buffer.add_string logs.(me) (string_of_int n);
    Buffer.add_char logs.(me) '@';
    Buffer.add_string logs.(me) (string_of_int (Pdes.now port));
    Buffer.add_char logs.(me) ';';
    if n > 0 then
      if n mod 8 = 0 && domains > 1 then
        Pdes.post port ~dst:((me + 1) mod domains) ~delay:lookahead
          (tick (n - 1))
      else Pdes.schedule port ~delay:(1 + (n mod 5)) (tick (n - 1))
  in
  for i = 0 to domains - 1 do
    Pdes.schedule (Pdes.port p i) ~delay:(i + 1) (tick 100)
  done;
  Pdes.run p;
  let all = Buffer.create 4096 in
  Array.iter (fun b -> Buffer.add_buffer all b) logs;
  (Buffer.contents all, p)

let test_pdes_deterministic () =
  let a, _ = pdes_run ~domains:4 ~lookahead:3 in
  let b, _ = pdes_run ~domains:4 ~lookahead:3 in
  Alcotest.(check string) "two runs identical" a b

let test_pdes_counters () =
  let _, p = pdes_run ~domains:2 ~lookahead:3 in
  (* two chains of 101 events each *)
  check_int "total events" 202 (Pdes.total_events p);
  check_bool "cross posts counted" true (Pdes.messages p > 0);
  check_bool "windows counted" true (Pdes.windows p > 0)

let test_pdes_post_enforces_lookahead () =
  let p = Pdes.create ~domains:2 ~lookahead:5 () in
  Alcotest.check_raises "below lookahead"
    (Invalid_argument "Pdes.post: delay below the lookahead") (fun () ->
      Pdes.post (Pdes.port p 0) ~dst:1 ~delay:4 (fun _ -> ()))

let test_pdes_single_shot () =
  let p = Pdes.create ~domains:1 ~lookahead:1 () in
  Pdes.run p;
  Alcotest.check_raises "second run rejected"
    (Invalid_argument "Pdes.run: already run") (fun () -> Pdes.run p)

let test_pdes_post_boundary_legal () =
  (* delay = lookahead is the boundary case the conservative window
     protocol can honour; one cycle less is rejected (previous test). *)
  let p = Pdes.create ~domains:2 ~lookahead:5 () in
  let hit = Atomic.make false in
  Pdes.schedule (Pdes.port p 0) ~delay:1 (fun port ->
      Pdes.post port ~dst:1 ~delay:5 (fun _ -> Atomic.set hit true));
  Pdes.run p;
  check_bool "delay = lookahead delivered" true (Atomic.get hit)

let test_pdes_create_rejects_excess_domains () =
  Alcotest.check_raises "more domains than tiles"
    (Invalid_argument "Pdes.create: more domains than tiles") (fun () ->
      ignore (Pdes.create ~tiles:2 ~domains:4 ~lookahead:1 ()))

(* --- Trace ----------------------------------------------------------- *)

let test_trace_src_naming () =
  let src = Lk_engine.Trace.src "protocol" in
  Alcotest.(check string) "namespaced" "lockiller.protocol" (Logs.Src.name src)

let test_trace_disabled_is_silent () =
  (* no reporter installed: debugf must be a no-op, not an error *)
  let src = Lk_engine.Trace.src "test" in
  Lk_engine.Trace.debugf src ~cycle:42 "event %d happened" 7;
  ()

let test_trace_disabled_no_formatting () =
  (* With the source below Debug, the format arguments must be consumed
     without being rendered: the per-call allocation is a few closure
     words (constant), not proportional to the payload. Formatting the
     4KB payload would cost >500 words/call; the ikfprintf path
     measures ~26. *)
  let src = Lk_engine.Trace.src "alloc-probe" in
  let payload = String.make 4096 'x' in
  let calls = 10_000 in
  for i = 1 to 100 do
    Lk_engine.Trace.debugf src ~cycle:i "%s %d" payload i
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to calls do
    Lk_engine.Trace.debugf src ~cycle:i "%s %d" payload i
  done;
  let per_call = (Gc.minor_words () -. w0) /. float_of_int calls in
  check_bool
    (Printf.sprintf "payload not formatted (%.1f words/call)" per_call)
    true (per_call < 64.0)

(* --- Ledger ---------------------------------------------------------- *)

module Ledger = Lk_engine.Ledger

let test_ledger_codes_roundtrip () =
  List.iter
    (fun k ->
      check_bool "code roundtrips" true
        (Ledger.kind_of_code (Ledger.kind_code k) = Some k))
    Ledger.kinds;
  let labels = List.map Ledger.kind_label Ledger.kinds in
  check_int "labels distinct"
    (List.length labels)
    (List.length (List.sort_uniq compare labels));
  check_bool "out of range" true (Ledger.kind_of_code (-1) = None);
  check_bool "out of range" true
    (Ledger.kind_of_code (List.length Ledger.kinds) = None)

let test_ledger_ordering () =
  let sim = Sim.create () in
  let l = Ledger.create ~capacity:16 sim in
  List.iter
    (fun (delay, core, kind, arg) ->
      Sim.schedule sim ~delay (fun () -> Ledger.emit l ~core kind ~arg))
    [
      (5, 0, Ledger.Tx_begin, 0);
      (9, 1, Ledger.Tx_begin, 0);
      (12, 0, Ledger.Tx_commit, 1);
      (12, 1, Ledger.Tx_abort, 2);
    ];
  Sim.run sim;
  check_int "recorded" 4 (Ledger.recorded l);
  check_int "length" 4 (Ledger.length l);
  check_int "dropped" 0 (Ledger.dropped l);
  let es = Ledger.entries l in
  check_bool "times nondecreasing" true
    (List.for_all2
       (fun a b -> a.Ledger.time <= b.Ledger.time)
       (List.filteri (fun i _ -> i < 3) es)
       (List.tl es));
  match es with
  | [ a; b; c; d ] ->
    check_int "t0" 5 a.Ledger.time;
    check_bool "k0" true (a.Ledger.kind = Ledger.Tx_begin);
    check_int "core1" 1 b.Ledger.core;
    check_bool "commit" true (c.Ledger.kind = Ledger.Tx_commit);
    check_int "commit attempts" 1 c.Ledger.arg;
    check_bool "abort" true (d.Ledger.kind = Ledger.Tx_abort);
    check_int "abort reason index" 2 d.Ledger.arg
  | _ -> Alcotest.fail "expected 4 entries"

let test_ledger_wraparound () =
  let sim = Sim.create () in
  let l = Ledger.create ~capacity:4 sim in
  for i = 0 to 9 do
    Ledger.emit l ~core:i Ledger.Nack ~arg:(10 * i)
  done;
  check_int "capacity" 4 (Ledger.capacity l);
  check_int "recorded" 10 (Ledger.recorded l);
  check_int "length" 4 (Ledger.length l);
  check_int "dropped" 6 (Ledger.dropped l);
  let cores = List.map (fun e -> e.Ledger.core) (Ledger.entries l) in
  Alcotest.(check (list int)) "keeps the trailing window" [ 6; 7; 8; 9 ] cores;
  let dump = Format.asprintf "%a" (Ledger.dump ?limit:None) l in
  check_bool "dump notes the drops" true
    (let sub = "# 6 earlier events dropped" in
     let rec find i =
       i + String.length sub <= String.length dump
       && (String.sub dump i (String.length sub) = sub || find (i + 1))
     in
     find 0)

let test_ledger_clear () =
  let sim = Sim.create () in
  let l = Ledger.create ~capacity:4 sim in
  for i = 0 to 9 do
    Ledger.emit l ~core:0 Ledger.Park ~arg:i
  done;
  Ledger.clear l;
  check_int "empty" 0 (Ledger.length l);
  check_int "recorded reset" 0 (Ledger.recorded l);
  check_int "dropped reset" 0 (Ledger.dropped l);
  Ledger.emit l ~core:3 Ledger.Wake ~arg:0;
  check_int "usable after clear" 1 (Ledger.length l)

let test_ledger_emit_no_alloc () =
  (* The hot path writes four ints into a preallocated array: steady
     state must not allocate at all. *)
  let sim = Sim.create () in
  let l = Ledger.create ~capacity:1024 sim in
  for i = 0 to 99 do
    Ledger.emit l ~core:0 Ledger.Nack ~arg:i
  done;
  let w0 = Gc.minor_words () in
  for i = 0 to 9_999 do
    Ledger.emit l ~core:0 Ledger.Nack ~arg:i
  done;
  let per_call = (Gc.minor_words () -. w0) /. 10_000.0 in
  check_bool
    (Printf.sprintf "allocation-free emit (%.2f words/call)" per_call)
    true (per_call < 0.01)

(* --- Stats ----------------------------------------------------------- *)

let test_stats_counter () =
  let g = Stats.group "g" in
  let c = Stats.counter g "hits" in
  Stats.incr c;
  Stats.add c 4;
  check_int "value" 5 (Stats.value c);
  check_bool "same name same counter" true
    (Stats.value (Stats.counter g "hits") = 5)

let test_stats_accumulator () =
  let g = Stats.group "g" in
  let a = Stats.accumulator g "lat" in
  List.iter (Stats.sample a) [ 10; 2; 6 ];
  check_int "count" 3 (Stats.count a);
  check_int "sum" 18 (Stats.sum a);
  check_bool "min" true (Stats.min_sample a = Some 2);
  check_bool "max" true (Stats.max_sample a = Some 10);
  check (Alcotest.float 0.001) "mean" 6.0 (Stats.mean a)

let test_stats_empty_accumulator () =
  let g = Stats.group "g" in
  let a = Stats.accumulator g "none" in
  check_bool "min none" true (Stats.min_sample a = None);
  check (Alcotest.float 0.001) "mean 0" 0.0 (Stats.mean a)

let test_stats_histogram () =
  let g = Stats.group "g" in
  let h = Stats.histogram g "sizes" in
  List.iter (Stats.observe h) [ 0; 1; 1; 3; 100 ];
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 (Stats.buckets h) in
  check_int "all samples bucketed" 5 total

let test_stats_reset () =
  let g = Stats.group "g" in
  let c = Stats.counter g "x" in
  Stats.incr c;
  Stats.reset g;
  check_int "zeroed" 0 (Stats.value c)

let test_stats_counters_sorted () =
  let g = Stats.group "g" in
  ignore (Stats.counter g "zebra");
  ignore (Stats.counter g "apple");
  let names = List.map fst (Stats.counters g) in
  Alcotest.(check (list string)) "sorted" [ "apple"; "zebra" ] names

(* --- HDR histograms --------------------------------------------------- *)

let test_hdr_empty () =
  let g = Stats.group "g" in
  let d = Stats.hdr g "lat" in
  check_int "count" 0 (Stats.hdr_count d);
  check_int "sum" 0 (Stats.hdr_sum d);
  check_bool "min none" true (Stats.hdr_min d = None);
  check_bool "max none" true (Stats.hdr_max d = None);
  check (Alcotest.float 0.001) "mean 0" 0.0 (Stats.hdr_mean d);
  check_int "p50 of empty" 0 (Stats.percentile d 50.)

let test_hdr_exact_below_32 () =
  (* Values below 32 land in unit-width buckets: every percentile is
     exact, not just within the 1/32 relative error bound. *)
  let g = Stats.group "g" in
  let d = Stats.hdr g "small" in
  for v = 0 to 31 do
    Stats.record d v
  done;
  check_int "count" 32 (Stats.hdr_count d);
  check_int "sum" (31 * 32 / 2) (Stats.hdr_sum d);
  check_bool "min" true (Stats.hdr_min d = Some 0);
  check_bool "max" true (Stats.hdr_max d = Some 31);
  (* rank ceil(50/100*32) = 16 -> 16th smallest = 15 *)
  check_int "p50 exact" 15 (Stats.percentile d 50.);
  check_int "p100 exact" 31 (Stats.percentile d 100.);
  check_int "p0 exact" 0 (Stats.percentile d 0.)

let test_hdr_singleton () =
  let g = Stats.group "g" in
  let d = Stats.hdr g "one" in
  Stats.record d 123456;
  check_int "p50 clamps to the only sample" 123456 (Stats.percentile d 50.);
  check_int "p99 clamps to the only sample" 123456 (Stats.percentile d 99.)

let test_hdr_percentile_error_bound () =
  (* Log-linear buckets with 32 sub-buckets per octave: any percentile
     is within 1/32 (~3.2%) of the true order statistic. *)
  let g = Stats.group "g" in
  let d = Stats.hdr g "wide" in
  for v = 1 to 100_000 do
    Stats.record d v
  done;
  List.iter
    (fun p ->
      let truth = int_of_float (ceil (p /. 100. *. 100_000.)) in
      let got = Stats.percentile d p in
      let err =
        abs_float (float_of_int (got - truth)) /. float_of_int truth
      in
      check_bool
        (Printf.sprintf "p%.0f within 3.2%% (truth %d, got %d)" p truth got)
        true (err <= 0.032))
    [ 50.; 90.; 95.; 99. ];
  check_bool "max exact" true (Stats.hdr_max d = Some 100_000);
  check_int "p100 clamps to max" 100_000 (Stats.percentile d 100.)

let test_hdr_negative_clamped () =
  let g = Stats.group "g" in
  let d = Stats.hdr g "neg" in
  Stats.record d (-5);
  check_int "counted" 1 (Stats.hdr_count d);
  check_bool "clamped to 0" true (Stats.hdr_min d = Some 0);
  check_int "p50" 0 (Stats.percentile d 50.)

let test_hdr_reset_and_listing () =
  let g = Stats.group "g" in
  let d = Stats.hdr g "zulu" in
  ignore (Stats.hdr g "alpha");
  Stats.record d 7;
  check_bool "same name same hdr" true (Stats.hdr_count (Stats.hdr g "zulu") = 1);
  Alcotest.(check (list string))
    "sorted listing" [ "alpha"; "zulu" ]
    (List.map fst (Stats.hdrs g));
  Stats.reset g;
  check_int "reset zeroes count" 0 (Stats.hdr_count d);
  check_bool "reset zeroes min" true (Stats.hdr_min d = None)

let test_hdr_record_no_alloc () =
  let g = Stats.group "g" in
  let d = Stats.hdr g "hot" in
  for i = 0 to 99 do
    Stats.record d (i * 37)
  done;
  let w0 = Gc.minor_words () in
  for i = 0 to 9_999 do
    Stats.record d (i * 37)
  done;
  let per_call = (Gc.minor_words () -. w0) /. 10_000.0 in
  check_bool
    (Printf.sprintf "allocation-free record (%.2f words/call)" per_call)
    true (per_call < 0.01)

(* --- Timeseries ------------------------------------------------------- *)

module Timeseries = Lk_engine.Timeseries

let test_ts_invalid () =
  check_bool "zero capacity rejected" true
    (try
       ignore (Timeseries.create ~capacity:0 ~channels:[ "x" ] ());
       false
     with Invalid_argument _ -> true);
  check_bool "no channels rejected" true
    (try
       ignore (Timeseries.create ~channels:[] ());
       false
     with Invalid_argument _ -> true)

let test_ts_basic () =
  let ts = Timeseries.create ~capacity:8 ~channels:[ "a"; "b" ] () in
  Alcotest.(check (list string)) "channels" [ "a"; "b" ]
    (Timeseries.channels ts);
  check_int "width" 2 (Timeseries.width ts);
  check_int "capacity" 8 (Timeseries.capacity ts);
  Timeseries.set ts 0 10;
  Timeseries.set ts 1 20;
  Timeseries.commit ts ~time:5;
  Timeseries.set ts 1 21;
  Timeseries.commit ts ~time:9;
  check_int "recorded" 2 (Timeseries.recorded ts);
  check_int "length" 2 (Timeseries.length ts);
  check_int "t0" 5 (Timeseries.time ts ~sample:0);
  check_int "t1" 9 (Timeseries.time ts ~sample:1);
  check_int "s0 a" 10 (Timeseries.get ts ~sample:0 ~channel:0);
  check_int "s1 b" 21 (Timeseries.get ts ~sample:1 ~channel:1);
  (* Scratch persists across commits: channel a was not re-set. *)
  check_int "s1 a sticky" 10 (Timeseries.get ts ~sample:1 ~channel:0)

let test_ts_wraparound () =
  let ts = Timeseries.create ~capacity:4 ~channels:[ "v" ] () in
  for i = 0 to 9 do
    Timeseries.set ts 0 (100 + i);
    Timeseries.commit ts ~time:(10 * i)
  done;
  check_int "recorded" 10 (Timeseries.recorded ts);
  check_int "length" 4 (Timeseries.length ts);
  check_int "dropped" 6 (Timeseries.dropped ts);
  check_int "oldest retained time" 60 (Timeseries.time ts ~sample:0);
  check_int "newest value" 109 (Timeseries.get ts ~sample:3 ~channel:0);
  let seen = ref [] in
  Timeseries.iter ts (fun ~time ~row ->
      seen := (time, row.(0)) :: !seen);
  Alcotest.(check (list (pair int int)))
    "iter yields the trailing window, oldest first"
    [ (60, 106); (70, 107); (80, 108); (90, 109) ]
    (List.rev !seen)

let test_ts_clear () =
  let ts = Timeseries.create ~capacity:4 ~channels:[ "v" ] () in
  for i = 0 to 6 do
    Timeseries.set ts 0 i;
    Timeseries.commit ts ~time:i
  done;
  Timeseries.clear ts;
  check_int "length" 0 (Timeseries.length ts);
  check_int "recorded" 0 (Timeseries.recorded ts);
  check_int "dropped" 0 (Timeseries.dropped ts);
  Timeseries.set ts 0 42;
  Timeseries.commit ts ~time:3;
  check_int "usable after clear" 42 (Timeseries.get ts ~sample:0 ~channel:0)

let test_ts_dump () =
  let ts = Timeseries.create ~capacity:2 ~channels:[ "a"; "b" ] () in
  for i = 0 to 2 do
    Timeseries.set ts 0 i;
    Timeseries.set ts 1 (10 * i);
    Timeseries.commit ts ~time:i
  done;
  let dump = Format.asprintf "%a" Timeseries.dump ts in
  let contains sub =
    let rec find i =
      i + String.length sub <= String.length dump
      && (String.sub dump i (String.length sub) = sub || find (i + 1))
    in
    find 0
  in
  check_bool "header" true (contains "a");
  check_bool "drop note" true (contains "1");
  check_bool "last row present" true (contains "20")

let test_ts_commit_no_alloc () =
  (* set is one array store, commit one blit into the preallocated
     ring: steady state must not allocate. *)
  let ts = Timeseries.create ~capacity:1024 ~channels:[ "a"; "b"; "c" ] () in
  for i = 0 to 99 do
    Timeseries.set ts 0 i;
    Timeseries.set ts 2 (2 * i);
    Timeseries.commit ts ~time:i
  done;
  let w0 = Gc.minor_words () in
  for i = 0 to 9_999 do
    Timeseries.set ts 0 i;
    Timeseries.set ts 2 (2 * i);
    Timeseries.commit ts ~time:(100 + i)
  done;
  let per_call = (Gc.minor_words () -. w0) /. 10_000.0 in
  check_bool
    (Printf.sprintf "allocation-free sampling (%.2f words/commit)" per_call)
    true (per_call < 0.01)

let () =
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independent;
          Alcotest.test_case "copy" `Quick test_rng_copy;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick
            test_rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
          Alcotest.test_case "chance frequency" `Quick
            test_rng_chance_rough_frequency;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "zipf bounds" `Quick test_rng_zipf_bounds;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
          Alcotest.test_case "zipf uniform s=0" `Quick
            test_rng_zipf_uniform_when_s0;
          Alcotest.test_case "zipf n=1" `Quick test_rng_zipf_n1;
          Alcotest.test_case "shuffle permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "empty" `Quick test_eq_empty;
          Alcotest.test_case "time order" `Quick test_eq_order;
          Alcotest.test_case "fifo on ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "interleaved add/pop" `Quick test_eq_interleaved;
          QCheck_alcotest.to_alcotest prop_eq_sorted;
          QCheck_alcotest.to_alcotest prop_eq_stable;
          Alcotest.test_case "wheel vs heap differential" `Quick
            test_eq_backend_differential;
          Alcotest.test_case "pop releases payloads (wheel)" `Quick
            (test_eq_pop_releases_payloads Event_queue.Wheel);
          Alcotest.test_case "pop releases payloads (heap)" `Quick
            (test_eq_pop_releases_payloads Event_queue.Heap);
        ] );
      ( "int-table",
        [
          Alcotest.test_case "basic operations" `Quick test_int_table_basic;
          Alcotest.test_case "negative key rejected" `Quick
            test_int_table_rejects_negative;
          QCheck_alcotest.to_alcotest prop_int_table_matches_hashtbl;
          Alcotest.test_case "iter visits live keys" `Quick
            test_int_table_iter_visits_all;
        ] );
      ( "sim",
        [
          Alcotest.test_case "runs in order" `Quick test_sim_runs_in_order;
          Alcotest.test_case "nested schedule" `Quick test_sim_nested_schedule;
          Alcotest.test_case "zero delay" `Quick test_sim_zero_delay_same_cycle;
          Alcotest.test_case "negative delay rejected" `Quick
            test_sim_negative_delay_rejected;
          Alcotest.test_case "schedule_at past rejected" `Quick
            test_sim_schedule_at_past_rejected;
          Alcotest.test_case "limit discards" `Quick test_sim_limit_discards;
          Alcotest.test_case "quiescent hook" `Quick
            test_sim_quiescent_hook_injects;
          Alcotest.test_case "hook livelock detected" `Quick
            test_sim_stalled_hook_loop;
          Alcotest.test_case "hook with progress ok" `Quick
            test_sim_hook_loop_with_progress_ok;
          Alcotest.test_case "single step" `Quick test_sim_step;
          Alcotest.test_case "partitioned queues byte-identical" `Quick
            test_sim_partitioned_identical;
          Alcotest.test_case "pdes stats" `Quick test_sim_pdes_stats;
          Alcotest.test_case "witness in owning partition ok" `Quick
            test_sim_witness_owner_ok;
          Alcotest.test_case "foreign write flagged" `Quick
            test_sim_witness_foreign_write;
          Alcotest.test_case "witness no-op when off" `Quick
            test_sim_witness_off_is_noop;
          Alcotest.test_case "short hop flagged, urgent exempt" `Quick
            test_sim_short_hop_flagged_urgent_exempt;
          Alcotest.test_case "setup seeding not flagged" `Quick
            test_sim_setup_seeding_not_flagged;
          Alcotest.test_case "detector is observational" `Quick
            test_sim_detector_observational;
          Alcotest.test_case "partitioned chooser merges queues" `Quick
            test_sim_partitioned_chooser_merges_queues;
        ] );
      ( "partition",
        [
          Alcotest.test_case "contiguous blocks" `Quick test_partition_blocks;
          Alcotest.test_case "clamps domains" `Quick
            test_partition_clamps_domains;
          QCheck_alcotest.to_alcotest prop_partition_monotone;
        ] );
      ( "pdes",
        [
          Alcotest.test_case "deterministic across runs" `Quick
            test_pdes_deterministic;
          Alcotest.test_case "counters" `Quick test_pdes_counters;
          Alcotest.test_case "post enforces lookahead" `Quick
            test_pdes_post_enforces_lookahead;
          Alcotest.test_case "single shot" `Quick test_pdes_single_shot;
          Alcotest.test_case "post at the lookahead boundary" `Quick
            test_pdes_post_boundary_legal;
          Alcotest.test_case "create rejects excess domains" `Quick
            test_pdes_create_rejects_excess_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "src naming" `Quick test_trace_src_naming;
          Alcotest.test_case "silent when disabled" `Quick
            test_trace_disabled_is_silent;
          Alcotest.test_case "disabled skips formatting" `Quick
            test_trace_disabled_no_formatting;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "codes roundtrip" `Quick
            test_ledger_codes_roundtrip;
          Alcotest.test_case "ordering" `Quick test_ledger_ordering;
          Alcotest.test_case "wraparound" `Quick test_ledger_wraparound;
          Alcotest.test_case "clear" `Quick test_ledger_clear;
          Alcotest.test_case "emit no alloc" `Quick test_ledger_emit_no_alloc;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counter" `Quick test_stats_counter;
          Alcotest.test_case "accumulator" `Quick test_stats_accumulator;
          Alcotest.test_case "empty accumulator" `Quick
            test_stats_empty_accumulator;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "reset" `Quick test_stats_reset;
          Alcotest.test_case "counters sorted" `Quick
            test_stats_counters_sorted;
        ] );
      ( "hdr",
        [
          Alcotest.test_case "empty" `Quick test_hdr_empty;
          Alcotest.test_case "exact below 32" `Quick test_hdr_exact_below_32;
          Alcotest.test_case "singleton" `Quick test_hdr_singleton;
          Alcotest.test_case "percentile error bound" `Quick
            test_hdr_percentile_error_bound;
          Alcotest.test_case "negative clamped" `Quick
            test_hdr_negative_clamped;
          Alcotest.test_case "reset and listing" `Quick
            test_hdr_reset_and_listing;
          Alcotest.test_case "record no alloc" `Quick test_hdr_record_no_alloc;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "invalid args rejected" `Quick test_ts_invalid;
          Alcotest.test_case "basic set/commit/get" `Quick test_ts_basic;
          Alcotest.test_case "wraparound" `Quick test_ts_wraparound;
          Alcotest.test_case "clear" `Quick test_ts_clear;
          Alcotest.test_case "dump" `Quick test_ts_dump;
          Alcotest.test_case "commit no alloc" `Quick test_ts_commit_no_alloc;
        ] );
    ]
