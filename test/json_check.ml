(* Cram-test helper: read JSON on stdin and verify it parses; with
   --result, additionally require it to decode as a full
   Runner.result (every field present and well-typed). *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let () =
  let want_result = Array.mem "--result" Sys.argv in
  let input = read_all stdin in
  if want_result then
    match Lk_sim.Runner.result_of_json input with
    | Ok r -> Printf.printf "valid result (%s/%s)\n" r.Lk_sim.Runner.system
        r.Lk_sim.Runner.workload
    | Error msg ->
      Printf.eprintf "invalid result: %s\n" msg;
      exit 1
  else
    match Lk_sim.Json.of_string input with
    | Ok _ -> print_endline "valid json"
    | Error msg ->
      Printf.eprintf "invalid json: %s\n" msg;
      exit 1
