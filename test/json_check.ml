(* Cram-test helper: read JSON on stdin and verify it parses; with
   --result, additionally require it to decode as a full
   Runner.result (every field present and well-typed); with --trace,
   require a Chrome/Perfetto trace (a traceEvents list whose events all
   carry name/ph/pid/tid, duration slices with ts and dur, counter
   tracks with ts and at least one numeric series); with
   --strip MEMBER, print the validated document minus the named
   top-level member (for byte-identity comparisons across runs whose
   diagnostic riders — e.g. the --race-check "pdes" block — legitimately
   differ). *)

let read_all ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let check_trace input =
  let module Json = Lk_sim.Json in
  let fail msg =
    Printf.eprintf "invalid trace: %s\n" msg;
    exit 1
  in
  let ( let* ) v f = match v with Ok x -> f x | Error m -> fail m in
  let* v = Json.of_string input in
  let* events = Result.bind (Json.member "traceEvents" v) Json.to_list in
  List.iter
    (fun e ->
      let* name = Result.bind (Json.member "name" e) Json.to_str in
      let* ph = Result.bind (Json.member "ph" e) Json.to_str in
      let* _ = Result.bind (Json.member "pid" e) Json.to_int in
      match ph with
      | "X" ->
        let* _ = Result.bind (Json.member "tid" e) Json.to_int in
        let* _ = Result.bind (Json.member "ts" e) Json.to_int in
        let* dur = Result.bind (Json.member "dur" e) Json.to_int in
        if dur < 0 then fail (name ^ ": negative duration")
      | "i" | "M" ->
        let* _ = Result.bind (Json.member "tid" e) Json.to_int in
        ()
      | "s" | "t" | "f" ->
        (* Flow events (kill arrows): need a track, a timestamp and a
           binding id; finish steps additionally bind to the enclosing
           slice, which Perfetto accepts with or without bp. *)
        let* _ = Result.bind (Json.member "tid" e) Json.to_int in
        let* _ = Result.bind (Json.member "ts" e) Json.to_int in
        let* _ = Result.bind (Json.member "id" e) Json.to_int in
        ()
      | "C" -> (
        (* Counter tracks: a timestamp plus at least one numeric
           series in args (tid is optional for counters). *)
        let* _ = Result.bind (Json.member "ts" e) Json.to_int in
        match Json.member "args" e with
        | Error m -> fail (name ^ ": " ^ m)
        | Ok (Json.Obj members) ->
          if members = [] then fail (name ^ ": counter with no series");
          List.iter
            (fun (k, v) ->
              match v with
              | Json.Int _ | Json.Float _ -> ()
              | _ -> fail (name ^ ": series " ^ k ^ " is not numeric"))
            members
        | Ok _ -> fail (name ^ ": counter args is not an object"))
      | _ -> fail (name ^ ": unexpected phase " ^ ph))
    events;
  Printf.printf "valid trace (%d events)\n" (List.length events)

let strip_member member input =
  let module Json = Lk_sim.Json in
  match Json.of_string input with
  | Error msg ->
    Printf.eprintf "invalid json: %s\n" msg;
    exit 1
  | Ok (Json.Obj fields) ->
    print_endline
      (Json.to_string
         (Json.Obj (List.filter (fun (k, _) -> k <> member) fields)))
  | Ok _ ->
    Printf.eprintf "--strip: top-level value is not an object\n";
    exit 1

let () =
  let want_result = Array.mem "--result" Sys.argv in
  let want_trace = Array.mem "--trace" Sys.argv in
  let strip =
    let n = Array.length Sys.argv in
    let rec find i =
      if i >= n then None
      else if Sys.argv.(i) = "--strip" then
        if i + 1 < n then Some Sys.argv.(i + 1)
        else begin
          Printf.eprintf "--strip needs a member name\n";
          exit 2
        end
      else find (i + 1)
    in
    find 1
  in
  let input = read_all stdin in
  if want_trace then check_trace input
  else
    match strip with
    | Some member -> strip_member member input
    | None ->
    if want_result then
    match Lk_sim.Runner.result_of_json input with
    | Ok r -> Printf.printf "valid result (%s/%s)\n" r.Lk_sim.Runner.system
        r.Lk_sim.Runner.workload
    | Error msg ->
      Printf.eprintf "invalid result: %s\n" msg;
      exit 1
  else
    match Lk_sim.Json.of_string input with
    | Ok _ -> print_endline "valid json"
    | Error msg ->
      Printf.eprintf "invalid json: %s\n" msg;
      exit 1
