(* Direct tests of the runtime's programming interface (the "ISA" level:
   xbegin/xend/hlbegin/hlend/ttest, memory operations, the spinlock) and
   of the public Lockiller facade. The suites in test_runtime.ml drive
   the same machinery through whole programs; here we pin down the
   low-level contracts one call at a time. *)

module Sim = Lk_engine.Sim
module Topology = Lk_mesh.Topology
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Shard = Lk_coherence.Shard
module Store = Lk_htm.Store
module Txstate = Lk_htm.Txstate
module Oracle = Lk_htm.Oracle
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let lock_addr = 0
let addr = 64 * 20

let mk ?(sysconf = Sysconf.lockiller) () =
  let sim = Sim.create () in
  let net = Network.create (Topology.create ~rows:2 ~cols:2) in
  let proto = Protocol.create ~sim ~network:net
      {
        Protocol.cores = 4;
        l1_size = 16 * 64 * 2;
        l1_ways = 2;
        l1_hit_latency = 2;
        llc_size = 4 * 64 * 64 * 8;
        llc_ways = 8;
        llc_hit_latency = 12;
        mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
      }
  in
  let store = Store.create ~cores:4 in
  let rt = Runtime.create ~protocol:proto ~store ~sysconf ~lock_addr () in
  (sim, store, rt)

(* Run one sequential script against the runtime and drain the sim. *)
let drive sim k =
  k ();
  Sim.run sim

(* --- transactions ------------------------------------------------------ *)

let test_xbegin_xend_roundtrip () =
  let sim, store, rt = mk () in
  let committed = ref false in
  drive sim (fun () ->
      Runtime.xbegin rt 0 ~k:(function
        | `Busy -> Alcotest.fail "xbegin busy on idle machine"
        | `Started ->
          check_bool "mode htm" true (Runtime.ttest rt 0 = Txstate.Htm);
          Runtime.write rt 0 ~addr ~value:7 ~k:(fun _ ->
              (* speculative: not yet visible *)
              check_int "buffered" 0 (Store.committed store addr);
              Runtime.xend rt 0 ~k:(fun () ->
                  committed := true;
                  check_bool "idle after commit" true
                    (Runtime.ttest rt 0 = Txstate.Idle)))));
  check_bool "committed" true !committed;
  check_int "published" 7 (Store.committed store addr)

let test_fetch_add_returns_old_value () =
  let sim, store, rt = mk () in
  Store.poke store addr 41;
  let seen = ref (-1) in
  drive sim (fun () ->
      Runtime.xbegin rt 0 ~k:(fun _ ->
          Runtime.fetch_add rt 0 ~addr ~delta:1 ~k:(function
            | Runtime.Ok v ->
              seen := v;
              Runtime.xend rt 0 ~k:(fun () -> ())
            | Runtime.Tx_aborted -> Alcotest.fail "aborted")));
  check_int "old value" 41 !seen;
  check_int "incremented" 42 (Store.committed store addr)

let test_fault_kills_htm_only () =
  let sim, _store, rt = mk () in
  let died = ref false and survived = ref false in
  drive sim (fun () ->
      Runtime.xbegin rt 0 ~k:(fun _ ->
          Runtime.fault rt 0 ~k:(function
            | `Died ->
              died := true;
              check_bool "idle after fault abort" true
                (Runtime.ttest rt 0 = Txstate.Idle)
            | `Survived _ -> Alcotest.fail "HTM must not survive faults")));
  drive sim (fun () ->
      (* non-speculative execution survives *)
      Runtime.fault rt 1 ~k:(function
        | `Survived cost -> survived := cost > 0
        | `Died -> Alcotest.fail "idle mode died"));
  check_bool "died" true !died;
  check_bool "survived" true !survived

let test_hl_mode_roundtrip () =
  let sim, store, rt = mk () in
  let finished = ref false in
  drive sim (fun () ->
      Runtime.lock_acquire rt 0 ~k:(fun () ->
          Runtime.hlbegin rt 0 ~k:(fun () ->
              check_bool "tl mode" true (Runtime.ttest rt 0 = Txstate.Tl);
              Runtime.write rt 0 ~addr ~value:9 ~k:(fun _ ->
                  (* lock transactions write through *)
                  check_int "visible immediately" 9
                    (Store.committed store addr);
                  Runtime.fault rt 0 ~k:(function
                    | `Died -> Alcotest.fail "TL must survive faults"
                    | `Survived _ ->
                      Runtime.hlend rt 0 ~k:(fun () ->
                          Runtime.lock_release rt 0 ~k:(fun () ->
                              finished := true)))))));
  check_bool "finished" true !finished;
  check_bool "lock free" false (Runtime.lock_held rt)

let test_double_xbegin_rejected () =
  let sim, _store, rt = mk () in
  drive sim (fun () ->
      Runtime.xbegin rt 0 ~k:(fun _ ->
          Alcotest.check_raises "nested xbegin"
            (Invalid_argument "Runtime.xbegin: already in a transaction")
            (fun () -> Runtime.xbegin rt 0 ~k:(fun _ -> ()));
          Runtime.xend rt 0 ~k:(fun () -> ())))

let test_xend_outside_tx_rejected () =
  let _sim, _store, rt = mk () in
  Alcotest.check_raises "xend idle"
    (Invalid_argument "Runtime.xend: not in an HTM transaction") (fun () ->
      Runtime.xend rt 0 ~k:(fun () -> ()))

let test_baseline_xbegin_busy_when_locked () =
  let sim, _store, rt = mk ~sysconf:Sysconf.baseline () in
  let busy = ref false in
  drive sim (fun () ->
      Runtime.lock_acquire rt 1 ~k:(fun () ->
          Runtime.xbegin rt 0 ~k:(function
            | `Busy -> busy := true
            | `Started -> Alcotest.fail "subscription missed the held lock")));
  check_bool "busy reported" true !busy

let test_htmlock_xbegin_ignores_lock () =
  let sim, _store, rt = mk ~sysconf:Sysconf.lockiller_rwil () in
  let started = ref false in
  drive sim (fun () ->
      Runtime.lock_acquire rt 1 ~k:(fun () ->
          Runtime.xbegin rt 0 ~k:(function
            | `Started ->
              started := true;
              Runtime.xend rt 0 ~k:(fun () -> ())
            | `Busy -> Alcotest.fail "HTMLock must not subscribe")));
  check_bool "started despite held lock" true !started

let test_lock_mutual_exclusion () =
  let sim, _store, rt = mk () in
  let order = ref [] in
  drive sim (fun () ->
      Runtime.lock_acquire rt 0 ~k:(fun () ->
          order := `A0 :: !order;
          (* second acquirer must wait until release *)
          Runtime.lock_acquire rt 1 ~k:(fun () ->
              order := `A1 :: !order;
              Runtime.lock_release rt 1 ~k:(fun () -> ()));
          Sim.schedule sim ~delay:500 (fun () ->
              order := `R0 :: !order;
              Runtime.lock_release rt 0 ~k:(fun () -> ()))));
  Alcotest.(check bool)
    "acquire order respects the lock" true
    (List.rev !order = [ `A0; `R0; `A1 ])

let test_add_insts_feeds_priority () =
  let _sim, _store, rt = mk ~sysconf:Sysconf.lockiller_rwi () in
  let ctx = Runtime.ctx rt 0 in
  ctx.Txstate.mode <- Txstate.Htm;
  Runtime.add_insts rt 0 250;
  check_int "insts counted" 250 ctx.Txstate.insts;
  ctx.Txstate.mode <- Txstate.Idle

let test_priority_saturation () =
  let _sim, _store, rt = mk ~sysconf:Sysconf.lockiller_rwi () in
  let ctx = Runtime.ctx rt 0 in
  ctx.Txstate.mode <- Txstate.Htm;
  Runtime.add_insts rt 0 1_000_000;
  (* the priority rides a 16-bit bus field: it must saturate, and the
     coherence layer must still see a valid HTM party *)
  check_bool "insts huge" true (ctx.Txstate.insts = 1_000_000);
  ctx.Txstate.mode <- Txstate.Idle

let test_static_priority_stable_across_retries () =
  let sim, _store, rt = mk ~sysconf:Sysconf.lockiller_rws () in
  let ctx = Runtime.ctx rt 0 in
  let p1 = ref 0 and p2 = ref 0 and p3 = ref 0 in
  drive sim (fun () ->
      Runtime.xbegin rt 0 ~k:(fun _ ->
          p1 := ctx.Txstate.static_priority;
          (* simulated abort: retry of the same transaction *)
          Runtime.fault rt 0 ~k:(fun _ ->
              ctx.Txstate.attempt <- 1;
              Runtime.xbegin rt 0 ~k:(fun _ ->
                  p2 := ctx.Txstate.static_priority;
                  Runtime.xend rt 0 ~k:(fun () ->
                      (* a NEW transaction draws a fresh priority *)
                      ctx.Txstate.attempt <- 0;
                      Runtime.xbegin rt 0 ~k:(fun _ ->
                          p3 := ctx.Txstate.static_priority;
                          Runtime.xend rt 0 ~k:(fun () -> ())))))));
  check_bool "positive" true (!p1 > 0);
  check_int "stable across retries" !p1 !p2;
  check_bool "fresh draw for the next tx" true (!p3 <> !p1 || !p3 > 0)

(* --- facade ------------------------------------------------------------- *)

let test_facade_run_ok () =
  match
    Lockiller.run ~cores:4 ~scale:0.2 ~system:"Baseline" ~workload:"kmeans"
      ~threads:4 ()
  with
  | Ok r -> check_bool "cycles" true (r.Lk_sim.Runner.cycles > 0)
  | Error msg -> Alcotest.fail msg

let test_facade_unknown_names () =
  (match Lockiller.run ~system:"nope" ~workload:"kmeans" ~threads:2 () with
  | Error msg -> check_bool "mentions candidates" true (String.length msg > 20)
  | Ok _ -> Alcotest.fail "accepted bad system");
  match Lockiller.run ~system:"CGL" ~workload:"nope" ~threads:2 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad workload"

let test_facade_bad_threads_is_error () =
  match Lockiller.run ~cores:4 ~system:"CGL" ~workload:"kmeans" ~threads:9 () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted thread overflow"

let test_facade_speedup () =
  match
    Lockiller.speedup_vs_cgl ~cores:4 ~scale:0.2 ~system:"CGL"
      ~workload:"ssca2" ~threads:2 ()
  with
  | Ok s -> check (Alcotest.float 0.0001) "CGL vs itself" 1.0 s
  | Error msg -> Alcotest.fail msg

let test_facade_run_text () =
  let program =
    "thread\n  tx pre=1 post=1\n    incr 0x1000\nthread\n  tx pre=1 post=1\n    incr 0x1000\n"
  in
  (match Lockiller.run_text ~cores:4 ~system:"LockillerTM" ~program () with
  | Ok r -> check_int "two threads" 2 r.Lk_sim.Runner.threads
  | Error msg -> Alcotest.fail msg);
  match Lockiller.run_text ~cores:4 ~system:"CGL" ~program:"garbage" () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage program"

let test_facade_lists () =
  check_int "nine systems" 9 (List.length Lockiller.systems);
  check_int "nine workloads" 9 (List.length Lockiller.workloads);
  check_bool "version" true (String.length Lockiller.version > 0)

let () =
  Alcotest.run "api"
    [
      ( "runtime-interface",
        [
          Alcotest.test_case "xbegin/xend" `Quick test_xbegin_xend_roundtrip;
          Alcotest.test_case "fetch_add" `Quick
            test_fetch_add_returns_old_value;
          Alcotest.test_case "fault semantics" `Quick test_fault_kills_htm_only;
          Alcotest.test_case "hlbegin/hlend" `Quick test_hl_mode_roundtrip;
          Alcotest.test_case "nested xbegin" `Quick test_double_xbegin_rejected;
          Alcotest.test_case "xend outside tx" `Quick
            test_xend_outside_tx_rejected;
          Alcotest.test_case "subscription busy" `Quick
            test_baseline_xbegin_busy_when_locked;
          Alcotest.test_case "htmlock no subscription" `Quick
            test_htmlock_xbegin_ignores_lock;
          Alcotest.test_case "lock mutual exclusion" `Quick
            test_lock_mutual_exclusion;
          Alcotest.test_case "add_insts" `Quick test_add_insts_feeds_priority;
          Alcotest.test_case "priority saturation" `Quick
            test_priority_saturation;
          Alcotest.test_case "static priority stable" `Quick
            test_static_priority_stable_across_retries;
        ] );
      ( "facade",
        [
          Alcotest.test_case "run ok" `Quick test_facade_run_ok;
          Alcotest.test_case "unknown names" `Quick test_facade_unknown_names;
          Alcotest.test_case "bad threads" `Quick
            test_facade_bad_threads_is_error;
          Alcotest.test_case "speedup identity" `Quick test_facade_speedup;
          Alcotest.test_case "run_text" `Quick test_facade_run_text;
          Alcotest.test_case "lists" `Quick test_facade_lists;
        ] );
    ]
