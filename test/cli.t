End-to-end CLI tests. Every simulation is deterministic, so exact
outputs are stable.

Listing systems, workloads and experiments:

  $ lockiller_sim list
  systems (Table II):
    CGL
    Baseline
    LosaTM-SAFU
    LockillerTM-RAI
    LockillerTM-RRI
    LockillerTM-RWI
    LockillerTM-RWL
    LockillerTM-RWIL
    LockillerTM
  
  hybrid-TM comparators (docs/HYBRID.md):
    SW-TL2
    HyTM-GV1
    HyTM-GV5
    HyTM-RC
    HyTM-MD
  
  workloads (STAMP):
    genome
    intruder
    kmeans
    kmeans+
    labyrinth
    ssca2
    vacation
    vacation+
    yada
  
  extra workloads (outside the paper's set):
    bayes
    micro-counter
    micro-btree
    micro-queue
  
  experiments:
    table1     Table I
    table2     Table II
    fig1       Fig 1
    fig7       Fig 7
    fig8       Fig 8
    fig9       Fig 9
    fig10      Fig 10
    fig11      Fig 11
    fig12      Fig 12
    fig13      Fig 13
    headline   Abstract / Section IV
    ablation   Design-choice ablations (DESIGN.md)
    txsize     Section IV-A (future work)
    noc        Model-fidelity ablation (DESIGN.md)
    topology   Section III-A claim
    placement  Thread binding (extension)
    protocol   Coherence-protocol ablation (extension)
    variance   Statistical robustness (extension)
    latency    Tx-latency percentiles (extension)
    hytm       HyTM instrumentation-cost sweep (extension)
    wasted     Wasted-work ratio (Fig 10 companion)




Table I parameters for a 4-tile machine:

  $ lockiller_sim params --cores 4
  Number of Cores          4
  Frequency                2 GHz (1 cycle = 0.5 ns)
  Core Detail              In-Order, Single-issue
  Cache Line Size          64 bytes
  L1 I&D caches            Private, 32KB, 4-way, 2-cycle hit latency
  L2 cache                 Shared, unified, 8MB, 16-way, 12-cycle hit latency
  Memory                   100-cycle latency
  Coherence protocol       MESI, directory-based
  Topology and Routing     2-D mesh (2x2), X-Y
  Flit size/message size   16 bytes / 5 flits (data), 1 flit (control)
  Link latency/bandwidth   1 cycle / 1 flit per cycle

A custom workload from a text file (headline metrics only — the whole
report is deterministic but we keep the expectation small):

  $ lockiller_sim custom ../examples/custom_workload.txt --cores 4 -s Baseline | head -7
  system        Baseline
  workload      custom_workload.txt
  threads       4
  cycles        3824
  commit rate   42.9%
  htm commits   9
  stl commits   0

A CSV thread sweep on a microbenchmark:

  $ lockiller_sim sweep -w micro-counter --threads 2,4 --cores 4 --metric commit-rate
  threads,CGL,Baseline,LockillerTM
  2,1.0000,0.9522,0.9569
  4,1.0000,0.7940,0.9732

Unknown names are reported, not crashed on:

  $ lockiller_sim run -s NoSuchSystem -w genome -t 2 --cores 4 2>&1 | head -1
  lockiller_sim: unknown system NoSuchSystem
  $ lockiller_sim experiment fig99 2>&1 | head -1
  lockiller_sim: unknown experiment "fig99"; try: table1, table2, fig1, fig7, fig8, fig9, fig10, fig11, fig12, fig13, headline, ablation, txsize, noc, topology, placement, protocol, variance, latency, hytm, wasted

The machine-readable results API: --format json emits one object with
every result field, --format csv one header and one value row:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --cores 4 --scale 0.1 --format json | ./json_check.exe --result
  valid result (LockillerTM/intruder)

  $ lockiller_sim run -s CGL -w genome -t 2 --cores 4 --scale 0.1 --format csv | head -1 | cut -d, -f1-6
  schema,system,workload,threads,cache,cycles

Observability: --abort-breakdown aggregates the event ledger into the
abort-cause table (totals match the abort statistics exactly), and
--trace-events writes a Chrome/Perfetto trace of the run:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --cores 4 --scale 0.1 --abort-breakdown --trace-events trace.json | sed -n '10p;/^#/,$p'
  aborts        17
  # trace-events: wrote trace.json (307 events, 0 dropped)
  == Abort breakdown ==
  reason    aborts  share 
  --------  ------  ------
  mc        17      100.0%
  lock      0       0.0%  
  mutex     0       0.0%  
  non_tran  0       0.0%  
  of        0       0.0%  
  fault     0       0.0%  
  valid     0       0.0%  
  total     17      100.0%
  conflict traffic: 50 nacks, 17 kills, 50 rejects, 43 parks, 36 wakes
  

  $ ./json_check.exe --trace < trace.json
  valid trace (309 events)

Time-series telemetry: --telemetry samples per-core phases, machine
gauges and link counters through the run's own event queue and writes
the series to a file; 'top' renders a saved export as phase strips and
sparklines (--once prints just the newest sample):

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --cores 4 --scale 0.1 --sample-interval 256 --telemetry tel.json | tail -1
  # telemetry: wrote tel.json (52 samples, 0 dropped)

  $ ./json_check.exe < tel.json
  valid json

  $ lockiller_sim top tel.json --once | head -7
  # tel.json: interval 256 cycles, 52 samples
  t=13056
    core0    non-tx
    core1    non-tx
    core2    non-tx
    core3    non-tx
    lock_holders   0

  $ lockiller_sim top tel.json --width 16 | sed -n '1,3p'
  # tel.json: interval 256 cycles, 52 samples
  # showing 16 of 52 retained samples, t=9216..13056
  core0          ................

With both --telemetry and --trace-events the sampled gauges are
appended to the Perfetto trace as counter tracks (ph "C"), which the
trace checker validates:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --cores 4 --scale 0.1 --sample-interval 256 --telemetry tel2.json --trace-events trace2.json | grep '^#'
  # telemetry: wrote tel2.json (52 samples, 0 dropped)
  # trace-events: wrote trace2.json (307 events, 0 dropped)

  $ ./json_check.exe --trace < trace2.json
  valid trace (881 events)

Two saved results diff into a metric-by-metric comparison (the
fixtures are committed outputs of 'run --format json'):

  $ lockiller_sim compare compare_a.json compare_b.json | sed -n '1,7p'
  # compare: compare_a.json is schema v6 (this build reads v6)
  # compare: compare_b.json is schema v6 (this build reads v6)
  == compare: A=Baseline/intruder t4 vs B=LockillerTM/intruder t4 ==
  metric          A       B       delta    B/A  
  --------------  ------  ------  -------  -----
  cycles          19366   12806   -6560    0.661
  commit_rate     0.1519  0.5405  +0.3886  3.559
  htm_commits     12      20      +8       1.667
  stl_commits     0       0       +0       -    

  $ lockiller_sim compare compare_a.json compare_b.json | grep -E 'speedup|tx_latency_p50'
  # compare: compare_a.json is schema v6 (this build reads v6)
  # compare: compare_b.json is schema v6 (this build reads v6)
  tx_latency_p50  1215    1375    +160     1.132
  speedup (A cycles / B cycles): 1.512

A result written by an older build is refused with a named error that
states which schema version each input carries and what changed since:

  $ sed 's/"schema":6/"schema":5/' compare_a.json > stale.json
  $ lockiller_sim compare stale.json compare_b.json
  # compare: stale.json is schema v5 (this build reads v6)
  # compare: compare_b.json is schema v6 (this build reads v6)
  lockiller_sim: stale.json: schema-mismatch: result schema v5 predates this build (v6); re-run the simulation to regenerate it (changed since: v6: always-on wasted-cycle accounting (wasted_cycles, wasted_by_reason) added)
  [124]

The hybrid-TM comparator family (docs/HYBRID.md) runs through the same
front end. SW-TL2 executes every transaction on the TL2 software path,
so the commits are software commits and the global version clock
advances; the report grows the two hybrid lines:

  $ lockiller_sim run -s SW-TL2 -w intruder -t 4 --cores 4 --scale 0.1 | sed -n '1,10p'
  system        SW-TL2
  workload      intruder
  threads       4
  cycles        21000
  commit rate   32.3%
  htm commits   0
  stl commits   0
  lock commits  0
  sw commits    20
  aborts        42

  $ lockiller_sim experiment hytm --cores 4 --threads 2 --scale 0.1 --jobs 2 --no-cache --format json | ./json_check.exe
  valid json

The same flags work on the trace subcommand, and the breakdown is also
available as machine-readable JSON:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --cores 4 --scale 0.1 --abort-breakdown --format json | tail -1 | ./json_check.exe
  valid json

Open-loop replay: gen-trace streams a deterministic Poisson arrival
trace (diurnal swing plus bursts), and replay admits its records at
their arrival cycles whether or not the cores keep up, reporting
queueing delay and sojourn percentiles next to the usual metrics:

  $ lockiller_sim gen-trace --users 400 --duration 50000 --cores 4 --affinity uniform --seed 5 -o t.lkt
  # gen-trace: 370 records (bin, seed 5)

  $ lockiller_sim replay t.lkt --threads 4 --cores 4 | sed -n '1,4p;/^open loop/,$p'
  system        LockillerTM
  workload      t
  threads       4
  cycles        65382
  open loop:
    arrivals    370 (370 completed, max backlog 158)
    queue delay p50/p95/p99  16383/25599/27135 cycles
    sojourn     p50/p95/p99  16895/26111/27647 cycles
    phase 0     370 completions

A trace pipes through stdin, the JSON result carries the open-loop
block (the checker requires it), and several systems replay the same
trace file side by side:

  $ lockiller_sim gen-trace --users 400 --duration 50000 --cores 4 --affinity uniform --seed 5 2>/dev/null | lockiller_sim replay - --threads 4 --cores 4 --format json | ./json_check.exe --result
  valid result (LockillerTM/stdin)

  $ lockiller_sim replay t.lkt -s Baseline -s LockillerTM --threads 4 --cores 4 --format csv | cut -d, -f1-6
  schema,system,workload,threads,cache,cycles
  6,Baseline,t,4,typical,68864
  6,LockillerTM,t,4,typical,65382

Replay is deterministic for any worker count — --jobs 4 must produce
byte-identical output to the sequential run:

  $ lockiller_sim replay t.lkt -s Baseline -s LockillerTM --threads 4 --cores 4 --jobs 4 --format csv > jobs4.csv
  $ lockiller_sim replay t.lkt -s Baseline -s LockillerTM --threads 4 --cores 4 --jobs 1 --format csv | cmp - jobs4.csv

Trace inputs and generator parameters are validated up front:

  $ lockiller_sim replay - -s Baseline -s LockillerTM --threads 4 2>&1 | head -1
  lockiller_sim: replay from stdin drives a single --system; save the trace to a file to replay it against several

  $ echo garbage > bad.lkt
  $ lockiller_sim replay bad.lkt --threads 4 2>&1 | head -1
  lockiller_sim: bad.lkt: not a trace (expected header "lktrace 1 text|bin", got "garbage")

  $ lockiller_sim gen-trace --users 0 2>&1 | head -1
  lockiller_sim: option '--users': --users must be positive (got 0)

  $ lockiller_sim replay t.lkt --body nonesuch 2>&1 | head -1
  lockiller_sim: unknown workload "nonesuch" (expected one of: genome, intruder, kmeans, kmeans+, labyrinth, ssca2, vacation, vacation+, yada, bayes, micro-counter, micro-btree, micro-queue)

Experiments run through the on-disk result cache (here a local
directory). The cold run simulates and stores; the stats reflect it;
clear empties the directory:

  $ lockiller_sim experiment fig1 --cores 4 --scale 0.1 --threads 2 --jobs 2 --cache-dir ./cache --format json | ./json_check.exe
  valid json

  $ lockiller_sim cache stats --cache-dir ./cache | grep -v -e directory -e entries
  schema        v6
  lifetime      0 hits, 18 misses, 18 stores

  $ lockiller_sim cache clear --cache-dir ./cache | cut -d' ' -f1-3
  removed 18 entries

The check subcommand lists the model-checking scenario catalogue and
runs the explorer/fuzzer over it; mutation self-tests are skippable for
a quick pass:

  $ lockiller_sim check --list | head -3
  scenarios:
    read-forward   an exclusive owner is read by a second core (owner must downgrade to S)
    incr-incr      two cores increment the same line under best-effort HTM

  $ lockiller_sim check --list | grep hybrid
    hybrid         HyTM: a faulting transaction falls to the TL2 software path while the other core keeps attempting HTM on the same line

  $ lockiller_sim check --scenario read-forward --fuzz-runs 20 --no-mutations
  read-forward   explore  exhausted: 4 schedules, 3 distinct decision states, deepest run made 6 choices
  read-forward   fuzz     passed: 20 randomized schedules (120 decisions)
  check: OK (1 scenarios)

Trace and parallelism arguments are validated up front:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --trace-capacity=0 2>&1 | head -2
  lockiller_sim: option '--trace-capacity': --trace-capacity must be positive
                 (got 0)

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --trace-events /nonexistent/t.json 2>&1 | head -2
  lockiller_sim: option '--trace-events': cannot write /nonexistent/t.json:
                 directory /nonexistent does not exist

  $ lockiller_sim experiment fig1 --jobs 0 2>&1 | head -2
  lockiller_sim: option '--jobs': --jobs must be positive (got 0)
  Usage: lockiller_sim experiment [OPTION]… ID

So are the telemetry arguments:

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --sample-interval 0 2>&1 | head -2
  lockiller_sim: option '--sample-interval': --sample-interval must be positive
                 (got 0)

  $ lockiller_sim run -s LockillerTM -w intruder -t 4 --telemetry /nonexistent/t.json 2>&1 | head -2
  lockiller_sim: option '--telemetry': cannot write /nonexistent/t.json:
                 directory /nonexistent does not exist
