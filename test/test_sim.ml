(* Tests of the simulation harness: machine configs, metrics, report
   rendering, the runner's metric collection and the experiment
   definitions (exercised on a small machine so they stay fast). *)

module Config = Lk_sim.Config
module Runner = Lk_sim.Runner
module Metrics = Lk_sim.Metrics
module Report = Lk_sim.Report
module Experiments = Lk_sim.Experiments
module Sysconf = Lk_lockiller.Sysconf
module Suite = Lk_stamp.Suite
module Workload = Lk_stamp.Workload
module Reason = Lk_htm.Reason
module Accounting = Lk_cpu.Accounting
module Protocol = Lk_coherence.Protocol
module Json = Lk_sim.Json
module Pool = Lk_sim.Pool
module Cache = Lk_sim.Cache

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_float = check (Alcotest.float 0.0001)

(* --- Config ------------------------------------------------------------ *)

let test_machine_defaults () =
  let m = Config.machine () in
  check_int "32 cores" 32 m.Config.cores;
  check_int "4 rows" 4 m.Config.rows;
  check_int "8 cols" 8 m.Config.cols;
  check_int "32KB L1" (32 * 1024) m.Config.protocol.Protocol.l1_size;
  check_int "8MB LLC" (8 * 1024 * 1024) m.Config.protocol.Protocol.llc_size

let test_machine_cache_profiles () =
  let small = Config.machine ~cache:Config.Small () in
  check_int "8KB L1" (8 * 1024) small.Config.protocol.Protocol.l1_size;
  check_int "1MB LLC" (1024 * 1024) small.Config.protocol.Protocol.llc_size;
  let large = Config.machine ~cache:Config.Large () in
  check_int "128KB L1" (128 * 1024) large.Config.protocol.Protocol.l1_size;
  check_int "32MB LLC" (32 * 1024 * 1024)
    large.Config.protocol.Protocol.llc_size

let test_machine_small_meshes () =
  List.iter
    (fun (cores, rows, cols) ->
      let m = Config.machine ~cores () in
      check_int "rows" rows m.Config.rows;
      check_int "cols" cols m.Config.cols)
    [ (2, 1, 2); (4, 2, 2); (8, 2, 4); (16, 4, 4) ]

let test_machine_rejects_odd_core_counts () =
  (* Formerly rejected; the general factorisation gives primes a 1xN
     chain. *)
  let m = Config.machine ~cores:3 () in
  check_int "3 cores rows" 1 m.Config.rows;
  check_int "3 cores cols" 3 m.Config.cols;
  Alcotest.check_raises "0 cores"
    (Invalid_argument
       "Config.machine: unsupported core count 0 (supported: 1-1024)")
    (fun () -> ignore (Config.machine ~cores:0 ()));
  Alcotest.check_raises "1025 cores"
    (Invalid_argument
       "Config.machine: unsupported core count 1025 (supported: 1-1024)")
    (fun () -> ignore (Config.machine ~cores:1025 ()))

let test_table1_rows () =
  let m = Config.machine () in
  let rows = Config.table1 m in
  check_int "eleven rows" 11 (List.length rows);
  check_bool "mentions mesh" true
    (List.exists (fun (k, _) -> k = "Topology and Routing") rows)

let test_build () =
  let m = Config.machine ~cores:4 () in
  let _sim, net, proto = Config.build m in
  check_int "tiles" 4
    (Lk_mesh.Topology.tiles (Lk_mesh.Network.topology net));
  check_int "cores" 4 (Protocol.config proto).Protocol.cores

let test_build_non_divisor_llc () =
  (* 100 directory banks do not divide the 8MB LLC evenly; the bank
     size must round down to whole sets instead of being rejected. *)
  let m = Config.machine ~cores:100 () in
  let _sim, _net, proto = Config.build m in
  check_int "cores" 100 (Protocol.config proto).Protocol.cores

let test_mesh_shape_general () =
  (* Spot-check the nearest-square factorisation, including the shapes
     the old hard-coded table produced (2..64 must not change: cached
     results key on the mesh shape via the machine id). *)
  List.iter
    (fun (cores, rows, cols) ->
      let r, c = Config.mesh_shape cores in
      check_int (string_of_int cores ^ " rows") rows r;
      check_int (string_of_int cores ^ " cols") cols c)
    [
      (1, 1, 1); (2, 1, 2); (4, 2, 2); (6, 2, 3); (7, 1, 7); (12, 3, 4);
      (32, 4, 8); (36, 6, 6); (100, 10, 10); (256, 16, 16); (768, 24, 32);
      (1024, 32, 32);
    ];
  for n = 1 to 128 do
    let r, c = Config.mesh_shape n in
    check_int "rows*cols = cores" n (r * c);
    check_bool "rows <= cols" true (r <= c)
  done;
  Alcotest.check_raises "out of range"
    (Invalid_argument
       "Config.machine: unsupported core count 1025 (supported: 1-1024)")
    (fun () -> ignore (Config.mesh_shape 1025))

(* --- Metrics ------------------------------------------------------------ *)

let test_speedup () =
  check_float "2x" 2.0 (Metrics.speedup ~baseline_cycles:100 ~cycles:50);
  check_float "0.5x" 0.5 (Metrics.speedup ~baseline_cycles:50 ~cycles:100);
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Metrics.speedup: cycle counts must be positive")
    (fun () -> ignore (Metrics.speedup ~baseline_cycles:0 ~cycles:1))

let test_geomean () =
  check_float "of [2;8]" 4.0 (Metrics.geomean [ 2.0; 8.0 ]);
  check_float "empty" 1.0 (Metrics.geomean []);
  check_float "singleton" 3.0 (Metrics.geomean [ 3.0 ]);
  Alcotest.check_raises "non-positive rejected"
    (Invalid_argument "Metrics.geomean: non-positive value") (fun () ->
      ignore (Metrics.geomean [ 1.0; 0.0 ]))

let check_float_opt msg expected got =
  Alcotest.(check (option (float 1e-9))) msg expected got

let test_mean_max () =
  check_float "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  check_float "mean empty" 0.0 (Metrics.mean []);
  check_float_opt "max" (Some 3.0) (Metrics.max_of [ 1.0; 3.0; 2.0 ]);
  check_float_opt "min" (Some 1.0) (Metrics.min_of [ 1.0; 3.0; 2.0 ]);
  check_float_opt "max empty" None (Metrics.max_of []);
  check_float_opt "min empty" None (Metrics.min_of []);
  check_float_opt "max singleton" (Some 7.0) (Metrics.max_of [ 7.0 ]);
  check_float_opt "min singleton" (Some 7.0) (Metrics.min_of [ 7.0 ]);
  check_float "pct" 50.0 (Metrics.pct 0.5)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(1 -- 10) (float_range 0.1 100.0))
    (fun xs ->
      let g = Metrics.geomean xs in
      let mn = List.fold_left min (List.hd xs) xs in
      let mx = List.fold_left max (List.hd xs) xs in
      g >= mn -. 1e-9 && g <= mx +. 1e-9)

(* --- Report ------------------------------------------------------------- *)

let string_contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_report_render () =
  let t =
    Report.table ~title:"T" ~headers:[ "a"; "bbbb" ]
      [ [ "x"; "y" ]; [ "longer"; "z" ] ]
      ~notes:[ "note" ]
  in
  let s = Format.asprintf "%a" Report.pp_table t in
  check_bool "has title" true (string_contains s "== T ==");
  check_bool "has cell" true (string_contains s "longer");
  check_bool "has note" true (string_contains s "note")

let test_report_csv () =
  let t =
    Report.table ~title:"Fig 7: speedup over CGL, 2 threads"
      ~headers:[ "workload"; "speed,up" ]
      [ [ "a"; "1.0" ]; [ "with \"quote\""; "2.0" ] ]
  in
  let csv = Report.to_csv t in
  check_bool "quoted comma header" true (string_contains csv "\"speed,up\"");
  check_bool "quoted quote" true (string_contains csv "\"with \"\"quote\"\"\"");
  check_bool "filename" true
    (Report.csv_filename t = "fig_7_speedup_over_cgl_2_threads.csv")

(* --- Cli ----------------------------------------------------------------- *)

let test_cli_cores () =
  (match Lk_sim.Cli.cores ~what:"--cores" "256" with
  | Ok n -> check_int "parses" 256 n
  | Error e -> Alcotest.fail e);
  (match Lk_sim.Cli.cores ~what:"--cores" "1025" with
  | Error e -> check_bool "error names the range" true (string_contains e "1-1024")
  | Ok _ -> Alcotest.fail "1025 accepted");
  (match Lk_sim.Cli.cores ~what:"--cores" "0" with
  | Error e -> check_bool "error names the flag" true (string_contains e "--cores")
  | Ok _ -> Alcotest.fail "0 accepted");
  match Lk_sim.Cli.cores ~what:"--cores" "many" with
  | Error e -> check_bool "non-integer rejected" true (string_contains e "integer")
  | Ok _ -> Alcotest.fail "junk accepted"

(* --- Runner -------------------------------------------------------------- *)

let quick_machine = Config.machine ~cores:4 ()

(* Scaled-down options for fast runs; [machine_options] keeps the
   default scale. *)
let machine_options = { Runner.default_options with machine = quick_machine }
let quick_options = { machine_options with scale = 0.25 }

let quick_run ?(sysconf = Sysconf.lockiller) ?(threads = 4) workload_name =
  let workload = Option.get (Suite.find workload_name) in
  Runner.run ~options:quick_options ~sysconf ~workload ~threads ()

let test_runner_pdes_domains_identical () =
  (* The partitioned kernel merges its queues in global (time, seq)
     order, so the whole result JSON — cycles, aborts, traffic, every
     diagnostic counter — must be byte-identical for any domain
     count. *)
  let machine = Config.machine ~cores:8 () in
  let run domains =
    let options = { quick_options with machine; pdes_domains = domains } in
    let workload = Option.get (Suite.find "intruder") in
    let r =
      Runner.run ~options ~sysconf:Sysconf.lockiller ~workload ~threads:4 ()
    in
    Json.to_string (Runner.json_of_result r)
  in
  let d1 = run 1 in
  Alcotest.(check string) "2 domains byte-identical" d1 (run 2);
  Alcotest.(check string) "4 domains byte-identical" d1 (run 4)

let test_runner_basic_metrics () =
  let r = quick_run "intruder" in
  check_bool "cycles positive" true (r.Runner.cycles > 0);
  check_bool "commit rate in [0;1]" true
    (r.Runner.commit_rate >= 0.0 && r.Runner.commit_rate <= 1.0);
  check_int "threads recorded" 4 r.Runner.threads;
  check_bool "some commits" true
    (r.Runner.htm_commits + r.Runner.stl_commits + r.Runner.lock_commits > 0);
  check_bool "network traffic" true (r.Runner.network_messages > 0)

let test_runner_breakdown_covers_all_categories () =
  let r = quick_run "genome" in
  check_int "8 categories" 8 (List.length r.Runner.breakdown);
  List.iter
    (fun (_, n) -> check_bool "non-negative" true (n >= 0))
    r.Runner.breakdown

let test_runner_abort_mix_paper_order () =
  let r = quick_run "yada" in
  Alcotest.(check (list string))
    "order" [ "mc"; "lock"; "mutex"; "non_tran"; "of"; "fault"; "valid" ]
    (List.map (fun (reason, _) -> Reason.label reason) r.Runner.abort_mix)

let test_runner_deterministic () =
  let a = quick_run "kmeans+" and b = quick_run "kmeans+" in
  check_int "same cycles" a.Runner.cycles b.Runner.cycles;
  check_int "same aborts" a.Runner.aborts b.Runner.aborts

let test_runner_seed_changes_outcome () =
  let workload = Option.get (Suite.find "kmeans+") in
  let a =
    Runner.run
      ~options:{ quick_options with seed = 1 }
      ~sysconf:Sysconf.baseline ~workload ~threads:4 ()
  in
  let b =
    Runner.run
      ~options:{ quick_options with seed = 2 }
      ~sysconf:Sysconf.baseline ~workload ~threads:4 ()
  in
  check_bool "different cycles" true (a.Runner.cycles <> b.Runner.cycles)

let test_runner_thread_bounds () =
  let workload = Option.get (Suite.find "ssca2") in
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Runner.run: thread count out of range") (fun () ->
      ignore
        (Runner.run ~options:machine_options ~sysconf:Sysconf.cgl ~workload
           ~threads:5 ()))

let test_abort_fraction () =
  let r = quick_run ~sysconf:Sysconf.baseline "yada" in
  let total =
    List.fold_left (fun acc reason -> acc +. Runner.abort_fraction r reason)
      0.0 Reason.all
  in
  if r.Runner.aborts > 0 then
    check (Alcotest.float 0.001) "fractions sum to 1" 1.0 total
  else check (Alcotest.float 0.001) "no aborts" 0.0 total

let test_runner_fault_survival_in_lock_modes () =
  (* yada under full LockillerTM: all faults in TL/STL survive, so the
     only fault aborts are from HTM attempts *)
  let r = quick_run ~sysconf:Sysconf.lockiller "yada" in
  check_bool "completed" true (r.Runner.cycles > 0)

let test_placement_spread () =
  let workload = Option.get (Suite.find "intruder") in
  let compact =
    Runner.run
      ~options:{ quick_options with placement = Runner.Compact }
      ~sysconf:Sysconf.baseline ~workload ~threads:2 ()
  in
  let spread =
    Runner.run
      ~options:{ quick_options with placement = Runner.Spread }
      ~sysconf:Sysconf.baseline ~workload ~threads:2 ()
  in
  (* both complete and conserve (asserted inside run); timings differ
     because the threads sit on different tiles *)
  check_bool "placements differ in timing" true
    (compact.Runner.cycles <> spread.Runner.cycles)

let test_avg_attempts_metric () =
  let r = quick_run ~sysconf:Sysconf.baseline "kmeans+" in
  if r.Runner.htm_commits > 0 then
    check_bool "attempts >= 1 per commit" true
      (r.Runner.avg_attempts_per_commit >= 1.0)

let test_cycle_limit_guard () =
  let workload = Option.get (Suite.find "ssca2") in
  check_bool "tiny limit trips the guard" true
    (match
       Runner.run
         ~options:{ machine_options with cycle_limit = 50 }
         ~sysconf:Sysconf.cgl ~workload ~threads:2 ()
     with
    | exception Failure _ -> true
    | _ -> false)

let test_run_program () =
  let program =
    [|
      [
        {
          Lk_cpu.Program.pre_compute = 5;
          ops = [ Lk_cpu.Program.Incr (64 * 16) ];
          post_compute = 5;
        };
      ];
      [
        {
          Lk_cpu.Program.pre_compute = 5;
          ops = [ Lk_cpu.Program.Incr (64 * 16) ];
          post_compute = 5;
        };
      ];
    |]
  in
  let r =
    Runner.run_program ~options:machine_options ~name:"two-incr"
      ~sysconf:Sysconf.lockiller ~program ()
  in
  check_int "threads from program" 2 r.Runner.threads;
  check_bool "named" true (r.Runner.workload = "two-incr");
  check_bool "oracle ran" true (r.Runner.oracle_sections >= 2)

let test_run_program_rejects_lock_collision () =
  let program =
    [|
      [
        {
          Lk_cpu.Program.pre_compute = 0;
          ops = [ Lk_cpu.Program.Incr 0 ];
          post_compute = 0;
        };
      ];
    |]
  in
  check_bool "lock-line address rejected" true
    (match
       Runner.run_program ~options:machine_options ~sysconf:Sysconf.cgl
         ~program ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- Experiments --------------------------------------------------------- *)

let quick_ctx () =
  Experiments.make_context ~scale:0.2 ~cores:4 ~threads:[ 2; 4 ] ()

let test_context_thread_filter () =
  let ctx = Experiments.make_context ~cores:4 ~threads:[ 2; 4; 8; 16 ] () in
  Alcotest.(check (list int)) "filtered" [ 2; 4 ] (Experiments.thread_counts ctx)

let test_experiment_ids_unique () =
  let ids = List.map (fun e -> e.Experiments.id) Experiments.all in
  check_int "unique ids" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let test_experiment_find () =
  check_bool "fig7" true (Experiments.find "FIG7" <> None);
  check_bool "unknown" true (Experiments.find "fig99" = None)

let test_result_memoised () =
  let ctx = quick_ctx () in
  let w = Option.get (Suite.find "kmeans") in
  let a = Experiments.result ctx ~sysconf:Sysconf.baseline ~workload:w ~threads:2 () in
  let b = Experiments.result ctx ~sysconf:Sysconf.baseline ~workload:w ~threads:2 () in
  check_bool "same physical result" true (a == b)

let test_speedup_vs_cgl_positive () =
  let ctx = quick_ctx () in
  let w = Option.get (Suite.find "ssca2") in
  let s =
    Experiments.speedup_vs_cgl ctx ~sysconf:Sysconf.lockiller ~workload:w
      ~threads:4 ()
  in
  check_bool "positive" true (s > 0.0)

let test_quick_experiments_render () =
  (* The cheap experiments render real tables on a 4-core machine. *)
  let ctx = quick_ctx () in
  List.iter
    (fun e ->
      let tables = e.Experiments.render ctx in
      check_bool (e.Experiments.id ^ " renders tables") true (tables <> []);
      List.iter
        (fun t ->
          check_bool
            (e.Experiments.id ^ " has rows")
            true
            (t.Report.rows <> []))
        tables)
    [ Experiments.table1; Experiments.table2; Experiments.fig1 ]

let test_fig10_renders_on_small_machine () =
  let ctx = quick_ctx () in
  let tables = Experiments.fig10.Experiments.render ctx in
  check_int "one table" 1 (List.length tables);
  (* 9 workloads x 3 systems *)
  check_int "27 rows" 27 (List.length (List.hd tables).Report.rows)

(* --- JSON results API ----------------------------------------------------- *)

let sample_result () =
  let w = Option.get (Suite.find "intruder") in
  Runner.run
    ~options:
      {
        Runner.default_options with
        scale = 0.1;
        machine = Config.machine ~cores:4 ();
      }
    ~sysconf:Sysconf.lockiller ~workload:w ~threads:4 ()

let test_result_json_roundtrip () =
  let r = sample_result () in
  match Runner.result_of_json (Runner.result_to_json r) with
  | Error msg -> Alcotest.fail msg
  | Ok r' -> check_bool "structurally equal" true (r = r')

let test_result_json_fields () =
  (* Every result field appears as a member, floats exactly. *)
  match Json.of_string (Runner.result_to_json (sample_result ())) with
  | Error msg -> Alcotest.fail msg
  | Ok (Json.Obj members) ->
    List.iter
      (fun field ->
        check_bool (field ^ " present") true (List.mem_assoc field members))
      [
        "system"; "workload"; "threads"; "cache"; "cycles"; "commit_rate";
        "htm_commits"; "stl_commits"; "lock_commits"; "sw_commits"; "aborts";
        "abort_mix"; "breakdown"; "rejects"; "parks"; "wakeups";
        "switches_granted"; "switches_denied"; "spilled_lines";
        "clock_advances"; "watchdog_rescues"; "network_messages";
        "network_flits"; "oracle_sections"; "avg_attempts_per_commit";
      ]
  | Ok _ -> Alcotest.fail "expected a JSON object"

let test_result_json_rejects_garbage () =
  check_bool "truncated" true
    (Result.is_error (Runner.result_of_json "{\"system\":"));
  check_bool "wrong shape" true (Result.is_error (Runner.result_of_json "[]"))

let test_json_float_roundtrip () =
  List.iter
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') ->
        check_bool (string_of_float f ^ " exact") true (f = f')
      | _ -> Alcotest.fail "float did not round-trip")
    [ 0.1; 1.0; 1.85; 3.0e22; -0.0070000000000000001 ]

let test_report_to_json () =
  let t =
    Report.table ~title:"T" ~headers:[ "a"; "b" ]
      ~notes:[ "n" ]
      [ [ "1"; "2" ]; [ "3"; "4" ] ]
  in
  match Json.of_string (Report.to_json t) with
  | Ok (Json.Obj members) ->
    check_bool "title" true
      (List.assoc "title" members = Json.String "T");
    check_bool "rows" true
      (List.assoc "rows" members
      = Json.List
          [
            Json.List [ Json.String "1"; Json.String "2" ];
            Json.List [ Json.String "3"; Json.String "4" ];
          ])
  | _ -> Alcotest.fail "table did not parse"

(* --- Ledger / Tracing ------------------------------------------------------ *)

module Tracing = Lk_sim.Tracing
module Ledger = Lk_engine.Ledger
module Runtime = Lk_lockiller.Runtime

(* One observed run: LockillerTM on a small machine with the event
   ledger on (capacity ample enough that nothing is dropped). Intruder
   at this scale is contended enough to produce aborts, rejects and
   parks while staying fast. *)
let run_with_ledger ?(sysconf = Sysconf.lockiller) ?(threads = 4)
    ?(queue_backend = Lk_engine.Event_queue.Wheel) () =
  let w = Option.get (Suite.find "intruder") in
  let ledger = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.2;
          machine = Config.machine ~cores:4 ();
          queue_backend;
          on_runtime =
            (fun rt ->
              ledger := Some (Runtime.enable_ledger ~capacity:(1 lsl 18) rt));
        }
      ~sysconf ~workload:w ~threads ()
  in
  (r, Option.get !ledger)

let test_ledger_breakdown_matches_stats () =
  let r, l = run_with_ledger () in
  check_int "nothing dropped" 0 (Ledger.dropped l);
  let b = Tracing.abort_breakdown l in
  check_int "aborts" r.Runner.aborts b.Tracing.aborts;
  List.iter2
    (fun (reason, expected) (reason', got) ->
      check_bool "reason order" true (reason = reason');
      check_int (Reason.label reason) expected got)
    r.Runner.abort_mix b.Tracing.by_reason;
  check_int "rejects" r.Runner.rejects b.Tracing.rejects;
  check_int "parks" r.Runner.parks b.Tracing.parks;
  check_int "wakes" r.Runner.wakeups b.Tracing.wakes;
  (* Commit events pair off with the runner's commit counters too. *)
  let commits = ref 0 in
  Ledger.iter l (fun ~time:_ ~core:_ ~kind ~arg:_ ->
      if kind = Ledger.Tx_commit then incr commits);
  check_int "commits" r.Runner.htm_commits !commits

let test_ledger_backend_differential () =
  (* The ledger is a total order over observable events, so it is a
     stronger differential axis than aggregate results: both event
     queue backends must produce byte-identical streams. *)
  let dump l = Format.asprintf "%a" (Ledger.dump ?limit:None) l in
  let _, wheel = run_with_ledger ~queue_backend:Lk_engine.Event_queue.Wheel ()
  and _, heap = run_with_ledger ~queue_backend:Lk_engine.Event_queue.Heap () in
  check_bool "non-trivial stream" true (Ledger.length wheel > 100);
  check Alcotest.string "byte-identical dumps" (dump wheel) (dump heap)

let test_ledger_jobs_differential () =
  (* Each pool job builds its own simulator and ledger, so the event
     stream must not depend on how many domains ran the grid. *)
  let grid =
    Array.of_list
      [ (Sysconf.lockiller, 2); (Sysconf.lockiller, 4);
        (Sysconf.baseline, 2); (Sysconf.baseline, 4) ]
  in
  let dump_of (sysconf, threads) =
    let _, l = run_with_ledger ~sysconf ~threads () in
    Format.asprintf "%a" (Ledger.dump ?limit:None) l
  in
  let seq = Pool.map ~jobs:1 dump_of grid in
  let par = Pool.map ~jobs:4 dump_of grid in
  check_bool "identical event streams" true (seq = par)

let test_perfetto_export_wellformed () =
  let r, l = run_with_ledger () in
  match Tracing.perfetto_json l with
  | Json.Obj [ ("traceEvents", Json.List events) ] ->
    check_bool "has events" true (List.length events > 0);
    (* Every event carries the mandatory members; slices have
       non-negative durations; abort slices are tagged with a reason
       and count exactly the runner's aborts. *)
    let aborts = ref 0 in
    List.iter
      (fun e ->
        let member name =
          match Json.member name e with
          | Ok v -> v
          | Error m -> Alcotest.fail m
        in
        let name =
          match Json.to_str (member "name") with
          | Ok s -> s
          | Error m -> Alcotest.fail m
        in
        match Json.to_str (member "ph") with
        | Ok "X" ->
          (match Json.to_int (member "dur") with
          | Ok d -> check_bool "dur >= 0" true (d >= 0)
          | Error m -> Alcotest.fail m);
          if String.length name > 6 && String.sub name 0 6 = "abort:" then begin
            incr aborts;
            match Json.member "args" e with
            | Ok (Json.Obj args) ->
              check_bool "reason tag" true (List.mem_assoc "reason" args)
            | Ok _ | Error _ -> Alcotest.fail "abort slice without args"
          end
        | Ok _ -> ()
        | Error m -> Alcotest.fail m)
      events;
    check_int "abort slices" r.Runner.aborts !aborts
  | _ -> Alcotest.fail "expected {\"traceEvents\": [...]}"

(* --- Causal profile --------------------------------------------------------- *)

module Profile = Lk_sim.Profile

(* One profiled run: the streaming tap and the retained ring observe
   the same events, so the tap-fed profile and a post-hoc fold of the
   ledger must agree exactly (when nothing wrapped). *)
let run_with_profile ?(capacity = 1 lsl 18) () =
  let w = Option.get (Suite.find "intruder") in
  let state = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.2;
          machine = Config.machine ~cores:4 ();
          on_runtime =
            (fun rt ->
              let l = Runtime.enable_ledger ~capacity rt in
              let p = Profile.create ~cores:4 in
              Profile.attach p l;
              state := Some (l, p));
        }
      ~sysconf:Sysconf.lockiller ~workload:w ~threads:4 ()
  in
  let l, p = Option.get !state in
  (r, l, p)

let test_profile_stream_matches_fold () =
  let r, l, streamed = run_with_profile () in
  check_int "nothing dropped" 0 (Ledger.dropped l);
  let folded = Profile.of_ledger ~cores:4 l in
  check_int "fold sees no drops" 0 (Profile.dropped folded);
  check_int "total aborts" (Profile.total_aborts folded)
    (Profile.total_aborts streamed);
  check_int "attributed" (Profile.attributed folded)
    (Profile.attributed streamed);
  check_int "environmental" (Profile.environmental folded)
    (Profile.environmental streamed);
  check_int "wasted" (Profile.wasted folded) (Profile.wasted streamed);
  check_int "nacks" (Profile.nacks folded) (Profile.nacks streamed);
  check_int "rejects" (Profile.rejects folded) (Profile.rejects streamed);
  check_int "protocol kills" (Profile.protocol_kills folded)
    (Profile.protocol_kills streamed);
  check_int "commits" (Profile.commits folded) (Profile.commits streamed);
  check_int "chain depth" (Profile.max_chain_depth folded)
    (Profile.max_chain_depth streamed);
  check_int "serial commit cycles"
    (Profile.serial_commit_cycles folded)
    (Profile.serial_commit_cycles streamed);
  check_int "discarded writes" (Profile.discarded_writes folded)
    (Profile.discarded_writes streamed);
  check_int "lock acquisitions" (Profile.lock_acquisitions folded)
    (Profile.lock_acquisitions streamed);
  check_int "lock handoffs" (Profile.lock_handoffs folded)
    (Profile.lock_handoffs streamed);
  for core = 0 to 3 do
    check_int
      (Printf.sprintf "wasted core %d" core)
      (Profile.wasted_of folded ~core)
      (Profile.wasted_of streamed ~core);
    check_int
      (Printf.sprintf "killed_by core %d" core)
      (Profile.killed_by folded ~victim:core)
      (Profile.killed_by streamed ~victim:core)
  done;
  check_bool "same top pairs" true
    (Profile.top_pairs folded ~k:10 = Profile.top_pairs streamed ~k:10);
  (* And both agree with the runner's own always-on accounting. *)
  check_int "edge total = runner aborts" r.Runner.aborts
    (Profile.total_aborts streamed);
  check_int "wasted = runner wasted" r.Runner.wasted_cycles
    (Profile.wasted streamed);
  List.iter
    (fun (reason, n) ->
      check_int
        ("wasted by " ^ Reason.label reason)
        n
        (Profile.wasted_by_reason streamed reason))
    r.Runner.wasted_by_reason

let test_profile_stream_survives_wraparound () =
  (* A tiny ring wraps long before the run ends; the streaming tap
     still sees every record (its totals match the big-ring run, which
     is deterministic across ledger capacities), while a post-hoc fold
     can only cover the retained suffix. *)
  let _, big_l, big_p = run_with_profile () in
  let _, small_l, small_p = run_with_profile ~capacity:256 () in
  check_bool "ring wrapped" true (Ledger.dropped small_l > 0);
  check_int "streamed aborts immune to wrap" (Profile.total_aborts big_p)
    (Profile.total_aborts small_p);
  check_int "streamed wasted immune to wrap" (Profile.wasted big_p)
    (Profile.wasted small_p);
  check_int "ledgers saw the same stream" (Ledger.recorded big_l)
    (Ledger.recorded small_l);
  let folded = Profile.of_ledger ~cores:4 small_l in
  check_bool "fold reports the loss" true (Profile.dropped folded > 0);
  check_bool "fold covers at most the stream" true
    (Profile.total_aborts folded <= Profile.total_aborts small_p)

let test_profile_feed_no_alloc () =
  (* The tap runs on the simulator's emit path, so feeding a record —
     including the abort/commit bookkeeping — must not allocate. *)
  let sim = Lk_engine.Sim.create () in
  let l = Ledger.create ~capacity:1024 sim in
  let p = Profile.create ~cores:4 in
  Profile.attach p l;
  let emit_round i =
    Ledger.emit l ~core:(i land 3) Ledger.Tx_begin ~arg:0;
    Ledger.emit l ~core:(i land 3) Ledger.Nack
      ~arg:(Ledger.pack_attr ~who:((i + 1) land 3) ~age:17);
    Ledger.emit l ~core:(i land 3) Ledger.Tx_abort
      ~arg:(Ledger.pack_abort ~reason:0 ~who:((i + 1) land 3) ~age:42);
    Ledger.emit l ~core:(i land 3) Ledger.Spec_discard
      ~arg:(Ledger.pack_discard ~writes:3 ~age:42);
    Ledger.emit l ~core:(i land 3) Ledger.Tx_commit ~arg:1;
    Ledger.emit l ~core:(i land 3) Ledger.Lock_acquire ~arg:0;
    Ledger.emit l ~core:(i land 3) Ledger.Lock_release ~arg:0
  in
  for i = 1 to 100 do
    emit_round i
  done;
  let w0 = Gc.minor_words () in
  for i = 1 to 10_000 do
    emit_round i
  done;
  let per_event = (Gc.minor_words () -. w0) /. 70_000.0 in
  check_bool
    (Printf.sprintf "allocation-free feed (%.4f words/event)" per_event)
    true
    (per_event < 0.01)

(* --- Telemetry ------------------------------------------------------------- *)

module Telemetry = Lk_sim.Telemetry
module Timeseries = Lk_engine.Timeseries

(* One sampled run: intruder is contended enough at this scale that the
   phase strips show transactional, lock and parked states. *)
let run_with_telemetry ?(queue_backend = Lk_engine.Event_queue.Wheel)
    ?(sysconf = Sysconf.lockiller) ?(threads = 4) ?(interval = 256) () =
  let w = Option.get (Suite.find "intruder") in
  let tele = ref None in
  let r =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.2;
          machine = Config.machine ~cores:4 ();
          queue_backend;
          telemetry =
            Some (Runner.telemetry_request ~interval (fun t -> tele := Some t));
        }
      ~sysconf ~workload:w ~threads ()
  in
  (r, Option.get !tele)

let test_telemetry_samples_the_run () =
  let r, t = run_with_telemetry () in
  check_int "interval" 256 (Telemetry.interval t);
  check_bool "sampled repeatedly" true (Telemetry.samples t > 10);
  check_int "nothing dropped" 0 (Telemetry.dropped t);
  check_int "one channel per core" 4 (Timeseries.width (Telemetry.phases t));
  Alcotest.(check (list string))
    "gauge channels" Telemetry.gauge_channels
    (Timeseries.channels (Telemetry.gauges t));
  (* The rings sample in lockstep on an exact interval grid. (The last
     samples may land shortly after the final core finishes, while the
     simulator drains trailing events.) *)
  let phases = Telemetry.phases t in
  let n = Timeseries.length phases in
  check_int "rings in lockstep" n (Timeseries.length (Telemetry.gauges t));
  check_int "rings in lockstep" n (Timeseries.length (Telemetry.links t));
  for s = 0 to n - 1 do
    let time = Timeseries.time phases ~sample:s in
    check_int "sample on the grid" 0 (time mod 256);
    if s > 0 then
      check_int "consecutive samples" (Timeseries.time phases ~sample:(s - 1) + 256) time
  done;
  check_bool "sampling stops soon after the run" true
    (Timeseries.time phases ~sample:(n - 1) <= r.Runner.cycles + (2 * 256));
  (* Phase codes stay in range and the run visits a transactional
     phase at some point. *)
  let saw_tx = ref false in
  Timeseries.iter phases (fun ~time:_ ~row ->
      Array.iter
        (fun p ->
          check_bool "phase code in range" true (p >= 0 && p < Runtime.num_phases);
          if p = 1 then saw_tx := true)
        row);
  check_bool "saw a transactional phase" true !saw_tx

let test_telemetry_does_not_change_results () =
  (* The sampler is read-only: the simulated outcome must be identical
     with telemetry on and off. *)
  let w = Option.get (Suite.find "intruder") in
  let base_options =
    {
      Runner.default_options with
      scale = 0.2;
      machine = Config.machine ~cores:4 ();
    }
  in
  let plain =
    Runner.run ~options:base_options ~sysconf:Sysconf.lockiller ~workload:w
      ~threads:4 ()
  in
  let sampled, _ = run_with_telemetry () in
  check_bool "identical results" true (plain = sampled)

let test_telemetry_backend_differential () =
  let _, wheel =
    run_with_telemetry ~queue_backend:Lk_engine.Event_queue.Wheel ()
  and _, heap =
    run_with_telemetry ~queue_backend:Lk_engine.Event_queue.Heap ()
  in
  check Alcotest.string "byte-identical JSON" (Telemetry.to_json wheel)
    (Telemetry.to_json heap);
  check Alcotest.string "byte-identical CSV" (Telemetry.to_csv wheel)
    (Telemetry.to_csv heap)

let test_telemetry_jobs_differential () =
  let grid =
    Array.of_list
      [ (Sysconf.lockiller, 2); (Sysconf.lockiller, 4);
        (Sysconf.baseline, 2); (Sysconf.baseline, 4) ]
  in
  let export_of (sysconf, threads) =
    let _, t = run_with_telemetry ~sysconf ~threads () in
    Telemetry.to_json t ^ Telemetry.to_csv t
  in
  let seq = Pool.map ~jobs:1 export_of grid in
  let par = Pool.map ~jobs:4 export_of grid in
  check_bool "identical exports" true (seq = par)

let test_telemetry_sample_no_alloc () =
  (* The sampling path must not allocate: phase/gauge reads are plain
     field loads and the ring writes are stores into preallocated
     arrays. *)
  let _, t = run_with_telemetry () in
  for _ = 1 to 100 do
    Telemetry.sample_now t
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Telemetry.sample_now t
  done;
  let per_call = (Gc.minor_words () -. w0) /. 10_000.0 in
  check_bool
    (Printf.sprintf "allocation-free sampling (%.2f words/sample)" per_call)
    true (per_call < 0.01)

let test_telemetry_perfetto_counters () =
  let _, t = run_with_telemetry () in
  let events = Telemetry.perfetto_counters t in
  let retained = Timeseries.length (Telemetry.phases t) in
  let cores = Timeseries.width (Telemetry.phases t) in
  (* Per sample: one counter per core plus signature fill, queue depth,
     cores waiting, hybrid sw, backlog, pdes and link utilization. *)
  check_int "event count" (retained * (cores + 7)) (List.length events);
  List.iter
    (fun e ->
      let member name =
        match Json.member name e with
        | Ok v -> v
        | Error m -> Alcotest.fail m
      in
      check_bool "ph C" true (Json.to_str (member "ph") = Ok "C");
      check_bool "has ts" true (Result.is_ok (Json.to_int (member "ts")));
      match member "args" with
      | Json.Obj members ->
        check_bool "has a series" true (members <> []);
        List.iter
          (fun (_, v) ->
            match v with
            | Json.Int _ | Json.Float _ -> ()
            | _ -> Alcotest.fail "non-numeric series")
          members
      | _ -> Alcotest.fail "args not an object")
    events

let test_telemetry_latency_percentiles_in_result () =
  let r, _ = run_with_telemetry () in
  check_bool "p50 positive" true (r.Runner.tx_latency_p50 > 0);
  check_bool "ordered" true
    (r.Runner.tx_latency_p50 <= r.Runner.tx_latency_p95
    && r.Runner.tx_latency_p95 <= r.Runner.tx_latency_p99)

(* --- Hybrid-TM comparators ---------------------------------------------- *)

let hybrid_run ?(sysconf = Sysconf.sw_tl2)
    ?(queue_backend = Lk_engine.Event_queue.Wheel) ?(pdes_domains = 1)
    workload_name =
  let workload = Option.get (Suite.find workload_name) in
  Runner.run
    ~options:{ quick_options with queue_backend; pdes_domains }
    ~sysconf ~workload ~threads:4 ()

let test_hybrid_sw_tl2_all_software () =
  (* With max_retries = 0 every section goes straight to the TL2
     software path: no hardware or lock commits, only [sw_commits],
     and the time spent committing lands in the [Sw] category. The run
     itself is the strongest assertion — conservation and the
     serializability oracle verify the committed values. *)
  let r = hybrid_run "intruder" in
  check_int "no htm commits" 0 r.Runner.htm_commits;
  check_int "no lock commits" 0 r.Runner.lock_commits;
  check_bool "sw commits" true (r.Runner.sw_commits > 0);
  check_bool "oracle ran" true (r.Runner.oracle_sections > 0);
  check_bool "sw cycles accounted" true
    (List.assoc Accounting.Sw r.Runner.breakdown > 0);
  check_bool "clock advanced" true (r.Runner.clock_advances > 0)

let test_hybrid_gv1_gv5_equivalent_outcome () =
  (* The eager (GV1) and lazy (GV5) clock disciplines serialize
     differently but must agree on the outcome: both oracle-clean
     (Runner.run raises otherwise), both commit every section. *)
  let gv1 = hybrid_run ~sysconf:Sysconf.hytm_gv1 "intruder" in
  let gv5 = hybrid_run ~sysconf:Sysconf.hytm_gv5 "intruder" in
  check_int "same sections committed"
    (gv1.Runner.htm_commits + gv1.Runner.sw_commits)
    (gv5.Runner.htm_commits + gv5.Runner.sw_commits);
  check_bool "gv1 oracle ran" true (gv1.Runner.oracle_sections > 0);
  check_bool "gv5 oracle ran" true (gv5.Runner.oracle_sections > 0);
  check_bool "both exercise the software path" true
    (gv1.Runner.sw_commits > 0 && gv5.Runner.sw_commits > 0)

let test_hybrid_validation_abort_in_ledger () =
  (* Validation failures must show up consistently in three places:
     the result's abort mix, the ledger-derived breakdown, and the
     software-path counters. *)
  let r, l = run_with_ledger ~sysconf:Sysconf.sw_tl2 () in
  check_int "nothing dropped" 0 (Ledger.dropped l);
  let b = Tracing.abort_breakdown l in
  let valid_result = List.assoc Reason.Validation r.Runner.abort_mix in
  let valid_ledger = List.assoc Reason.Validation b.Tracing.by_reason in
  check_bool "validation aborts occurred" true (valid_result > 0);
  check_int "ledger matches result" valid_result valid_ledger;
  check_bool "all sw aborts have a reason" true
    (b.Tracing.sw_aborts >= valid_ledger);
  check_int "sw commits" r.Runner.sw_commits b.Tracing.sw_commits;
  check_int "clock advances" r.Runner.clock_advances b.Tracing.clock_advances

let test_hybrid_nohw_determinism () =
  (* The software path must stay byte-identical across event-queue
     backends and PDES partitionings, like every other mechanism. *)
  let dump ?queue_backend ?pdes_domains () =
    Json.to_string
      (Runner.json_of_result (hybrid_run ?queue_backend ?pdes_domains "intruder"))
  in
  let base = dump () in
  check Alcotest.string "heap backend byte-identical" base
    (dump ~queue_backend:Lk_engine.Event_queue.Heap ());
  check Alcotest.string "pdes:4 byte-identical" base (dump ~pdes_domains:4 ())

(* --- Pool ------------------------------------------------------------------ *)

let test_pool_matches_sequential () =
  let xs = Array.init 20 (fun i -> i) in
  let f i = i * i in
  check_bool "jobs:4 = jobs:1" true
    (Pool.map ~jobs:1 f xs = Pool.map ~jobs:4 f xs)

let test_pool_parallel_results_identical () =
  (* The acceptance bar: simulation results collected through the pool
     are identical (hence deterministic) for any job count. *)
  let w = Option.get (Suite.find "kmeans") in
  let grid =
    Array.of_list
      (List.concat_map
         (fun sysconf -> [ (sysconf, 2); (sysconf, 4) ])
         [ Sysconf.cgl; Sysconf.baseline; Sysconf.lockiller ])
  in
  let run (sysconf, threads) =
    Runner.run
      ~options:
        {
          Runner.default_options with
          scale = 0.1;
          machine = Config.machine ~cores:4 ();
        }
      ~sysconf ~workload:w ~threads ()
  in
  let seq = Pool.map ~jobs:1 run grid in
  let par = Pool.map ~jobs:4 run grid in
  check_bool "identical results" true (seq = par)

let test_pool_propagates_exception () =
  check_bool "raises" true
    (match
       Pool.map ~jobs:4
         (fun i -> if i = 7 then failwith "boom" else i)
         (Array.init 16 (fun i -> i))
     with
    | exception Failure msg -> msg = "boom"
    | _ -> false)

(* --- Cache ----------------------------------------------------------------- *)

let with_temp_cache ?schema f =
  let dir = Filename.temp_file "lockiller-test" ".cache" in
  Sys.remove dir;
  let finally () =
    let c = Cache.create ~dir () in
    ignore (Cache.clear c);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally (fun () -> f (Cache.create ?schema ~dir ()))

let sample_job_key cache =
  let w = Option.get (Suite.find "intruder") in
  Cache.key cache
    ~options:{ Runner.default_options with scale = 0.1 }
    ~sysconf:Sysconf.lockiller ~workload:w ~threads:4

let test_cache_roundtrip () =
  with_temp_cache (fun cache ->
      let r = sample_result () in
      let key = sample_job_key cache in
      check_bool "cold" true (Cache.find cache key = None);
      Cache.store cache key r;
      (match Cache.find cache key with
      | None -> Alcotest.fail "stored entry not found"
      | Some r' -> check_bool "structurally equal" true (r = r'));
      check_int "one store" 1 (Cache.stores cache);
      check_int "one hit" 1 (Cache.hits cache);
      check_int "one miss" 1 (Cache.misses cache))

let test_cache_schema_invalidates () =
  with_temp_cache (fun cache ->
      let r = sample_result () in
      Cache.store cache (sample_job_key cache) r;
      (* Same directory, bumped schema: the key changes and the old
         entry is unreachable. *)
      let bumped = Cache.create ~schema:"999" ~dir:(Cache.dir cache) () in
      check_bool "different key" true
        (sample_job_key cache <> sample_job_key bumped);
      check_bool "miss after bump" true
        (Cache.find bumped (sample_job_key bumped) = None);
      let st = Cache.disk_stats bumped in
      check_int "old entry is stale" 1 st.Cache.stale_entries)

let test_cache_corrupt_entry_is_miss () =
  with_temp_cache (fun cache ->
      let key = sample_job_key cache in
      Cache.store cache key (sample_result ());
      let path =
        Filename.concat
          (Filename.concat (Cache.dir cache) ("v" ^ Cache.schema_version))
          (key ^ ".json")
      in
      let oc = open_out path in
      output_string oc "{ not json";
      close_out oc;
      check_bool "corrupt entry misses" true (Cache.find cache key = None);
      check_bool "corrupt entry removed" true (not (Sys.file_exists path)))

let test_cache_key_sensitivity () =
  with_temp_cache (fun cache ->
      let w = Option.get (Suite.find "intruder") in
      let base ?(options = { Runner.default_options with scale = 0.1 })
          ?(threads = 4) () =
        Cache.key cache ~options ~sysconf:Sysconf.lockiller ~workload:w
          ~threads
      in
      let k = base () in
      check_bool "seed" true
        (k <> base ~options:{ Runner.default_options with scale = 0.1; seed = 2 } ());
      check_bool "scale" true
        (k <> base ~options:{ Runner.default_options with scale = 0.2 } ());
      check_bool "threads" true (k <> base ~threads:2 ()))

(* --- Parallel + cached experiment execution -------------------------------- *)

let test_execute_parallel_matches_sequential () =
  let render jobs cache =
    let ctx =
      Experiments.make_context ~scale:0.2 ~cores:4 ~threads:[ 2; 4 ] ~jobs
        ?cache ()
    in
    let tables = Experiments.execute ctx Experiments.fig1 in
    (tables, Experiments.simulations ctx)
  in
  let seq, n_seq = render 1 None in
  let par, n_par = render 4 None in
  check_bool "tables identical" true (seq = par);
  check_int "same simulation count" n_seq n_par;
  check_bool "simulated something" true (n_seq > 0)

let test_execute_warm_cache_skips_simulation () =
  with_temp_cache (fun cache ->
      let run () =
        let ctx =
          Experiments.make_context ~scale:0.2 ~cores:4 ~threads:[ 2 ] ~jobs:2
            ~cache ()
        in
        let tables = Experiments.execute ctx Experiments.fig1 in
        (tables, Experiments.simulations ctx)
      in
      let cold, n_cold = run () in
      let warm, n_warm = run () in
      check_bool "warm tables identical" true (cold = warm);
      check_bool "cold simulated" true (n_cold > 0);
      check_int "warm simulated nothing" 0 n_warm)

let () =
  Alcotest.run "sim"
    [
      ( "config",
        [
          Alcotest.test_case "defaults" `Quick test_machine_defaults;
          Alcotest.test_case "cache profiles" `Quick
            test_machine_cache_profiles;
          Alcotest.test_case "small meshes" `Quick test_machine_small_meshes;
          Alcotest.test_case "bad core count" `Quick
            test_machine_rejects_odd_core_counts;
          Alcotest.test_case "table1" `Quick test_table1_rows;
          Alcotest.test_case "build" `Quick test_build;
          Alcotest.test_case "mesh shape general" `Quick
            test_mesh_shape_general;
          Alcotest.test_case "non-divisor llc banks" `Quick
            test_build_non_divisor_llc;
          Alcotest.test_case "cli cores validator" `Quick test_cli_cores;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "speedup" `Quick test_speedup;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "mean/max/pct" `Quick test_mean_max;
          QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
        ] );
      ( "report",
        [
          Alcotest.test_case "render" `Quick test_report_render;
          Alcotest.test_case "csv" `Quick test_report_csv;
        ] );
      ( "runner",
        [
          Alcotest.test_case "basic metrics" `Quick test_runner_basic_metrics;
          Alcotest.test_case "pdes domains byte-identical" `Quick
            test_runner_pdes_domains_identical;
          Alcotest.test_case "breakdown categories" `Quick
            test_runner_breakdown_covers_all_categories;
          Alcotest.test_case "abort mix order" `Quick
            test_runner_abort_mix_paper_order;
          Alcotest.test_case "deterministic" `Quick test_runner_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick
            test_runner_seed_changes_outcome;
          Alcotest.test_case "thread bounds" `Quick test_runner_thread_bounds;
          Alcotest.test_case "abort fractions" `Quick test_abort_fraction;
          Alcotest.test_case "yada under lockiller" `Quick
            test_runner_fault_survival_in_lock_modes;
          Alcotest.test_case "placement" `Quick test_placement_spread;
          Alcotest.test_case "avg attempts" `Quick test_avg_attempts_metric;
          Alcotest.test_case "cycle limit" `Quick test_cycle_limit_guard;
          Alcotest.test_case "run_program" `Quick test_run_program;
          Alcotest.test_case "run_program lock collision" `Quick
            test_run_program_rejects_lock_collision;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "thread filter" `Quick test_context_thread_filter;
          Alcotest.test_case "unique ids" `Quick test_experiment_ids_unique;
          Alcotest.test_case "find" `Quick test_experiment_find;
          Alcotest.test_case "memoised" `Quick test_result_memoised;
          Alcotest.test_case "speedup positive" `Quick
            test_speedup_vs_cgl_positive;
          Alcotest.test_case "cheap experiments render" `Quick
            test_quick_experiments_render;
          Alcotest.test_case "fig10 shape" `Quick
            test_fig10_renders_on_small_machine;
        ] );
      ( "json",
        [
          Alcotest.test_case "result round-trip" `Quick
            test_result_json_roundtrip;
          Alcotest.test_case "result fields" `Quick test_result_json_fields;
          Alcotest.test_case "rejects garbage" `Quick
            test_result_json_rejects_garbage;
          Alcotest.test_case "float exactness" `Quick
            test_json_float_roundtrip;
          Alcotest.test_case "report to_json" `Quick test_report_to_json;
        ] );
      ( "ledger",
        [
          Alcotest.test_case "breakdown matches stats" `Quick
            test_ledger_breakdown_matches_stats;
          Alcotest.test_case "wheel vs heap streams" `Quick
            test_ledger_backend_differential;
          Alcotest.test_case "jobs:4 = jobs:1 streams" `Quick
            test_ledger_jobs_differential;
          Alcotest.test_case "perfetto well-formed" `Quick
            test_perfetto_export_wellformed;
        ] );
      ( "profile",
        [
          Alcotest.test_case "stream matches fold" `Quick
            test_profile_stream_matches_fold;
          Alcotest.test_case "stream survives wraparound" `Quick
            test_profile_stream_survives_wraparound;
          Alcotest.test_case "feed no alloc" `Quick test_profile_feed_no_alloc;
        ] );
      ( "hybrid",
        [
          Alcotest.test_case "sw-tl2 pure software" `Quick
            test_hybrid_sw_tl2_all_software;
          Alcotest.test_case "gv1/gv5 same outcome" `Quick
            test_hybrid_gv1_gv5_equivalent_outcome;
          Alcotest.test_case "validation aborts in ledger" `Quick
            test_hybrid_validation_abort_in_ledger;
          Alcotest.test_case "nohw determinism" `Quick
            test_hybrid_nohw_determinism;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "samples the run" `Quick
            test_telemetry_samples_the_run;
          Alcotest.test_case "results unchanged" `Quick
            test_telemetry_does_not_change_results;
          Alcotest.test_case "wheel vs heap exports" `Quick
            test_telemetry_backend_differential;
          Alcotest.test_case "jobs:4 = jobs:1 exports" `Quick
            test_telemetry_jobs_differential;
          Alcotest.test_case "sample no alloc" `Quick
            test_telemetry_sample_no_alloc;
          Alcotest.test_case "perfetto counters" `Quick
            test_telemetry_perfetto_counters;
          Alcotest.test_case "latency percentiles" `Quick
            test_telemetry_latency_percentiles_in_result;
        ] );
      ( "pool",
        [
          Alcotest.test_case "pure map" `Quick test_pool_matches_sequential;
          Alcotest.test_case "simulation grid deterministic" `Quick
            test_pool_parallel_results_identical;
          Alcotest.test_case "exception propagation" `Quick
            test_pool_propagates_exception;
        ] );
      ( "cache",
        [
          Alcotest.test_case "round-trip" `Quick test_cache_roundtrip;
          Alcotest.test_case "schema bump invalidates" `Quick
            test_cache_schema_invalidates;
          Alcotest.test_case "corrupt entry" `Quick
            test_cache_corrupt_entry_is_miss;
          Alcotest.test_case "key sensitivity" `Quick
            test_cache_key_sensitivity;
        ] );
      ( "parallel-execute",
        [
          Alcotest.test_case "jobs:4 = jobs:1" `Quick
            test_execute_parallel_matches_sequential;
          Alcotest.test_case "warm cache skips simulation" `Quick
            test_execute_warm_cache_skips_simulation;
        ] );
    ]
