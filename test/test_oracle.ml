(* Tests of the serializability oracle: the replay logic itself
   (including adversarial histories it must reject) and its integration
   with the runtime (every system's runs verify; logs are dropped on
   abort). *)

module Oracle = Lk_htm.Oracle
module Sim = Lk_engine.Sim
module Topology = Lk_mesh.Topology
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Shard = Lk_coherence.Shard
module Store = Lk_htm.Store
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime
module Program = Lk_cpu.Program
module Accounting = Lk_cpu.Accounting
module Core = Lk_cpu.Core

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let ok t =
  match Oracle.verify t with
  | Ok () -> true
  | Error _ -> false

(* --- pure replay logic -------------------------------------------------- *)

let test_empty_history_verifies () =
  let t = Oracle.create () in
  check_bool "empty ok" true (ok t)

let test_sequential_counter_verifies () =
  let t = Oracle.create () in
  for i = 0 to 9 do
    Oracle.record t ~core:(i mod 2) ~end_time:(10 * i) ~kind:Oracle.Htm_commit
      ~ops:[ Oracle.R (64, i); Oracle.W (64, i + 1) ]
  done;
  check_bool "counter history ok" true (ok t)

let test_lost_update_detected () =
  let t = Oracle.create () in
  (* both transactions read 0 and write 1: the second read of 0 is
     impossible in any serial order *)
  Oracle.record t ~core:0 ~end_time:10 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 0); Oracle.W (64, 1) ];
  Oracle.record t ~core:1 ~end_time:20 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 0); Oracle.W (64, 1) ];
  (match Oracle.verify t with
  | Ok () -> Alcotest.fail "lost update not detected"
  | Error v ->
    check_int "culprit is the later tx" 1 v.Oracle.culprit.Oracle.core;
    check_int "expected value" 1 v.Oracle.expected)

let test_dirty_read_detected () =
  let t = Oracle.create () in
  (* tx 1 observes a value nobody committed *)
  Oracle.record t ~core:0 ~end_time:10 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.W (64, 5) ];
  Oracle.record t ~core:1 ~end_time:20 ~kind:Oracle.Plain_section
    ~ops:[ Oracle.R (64, 99) ];
  check_bool "dirty read rejected" false (ok t)

let test_read_own_write_ok () =
  let t = Oracle.create () in
  Oracle.record t ~core:0 ~end_time:10 ~kind:Oracle.Tl_commit
    ~ops:[ Oracle.W (64, 7); Oracle.R (64, 7); Oracle.W (64, 8); Oracle.R (64, 8) ];
  check_bool "read-own-write ok" true (ok t)

let test_initial_values_respected () =
  let t = Oracle.create ~initial:[ (64, 42) ] () in
  Oracle.record t ~core:0 ~end_time:5 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 42) ];
  check_bool "initial seeded" true (ok t);
  let t2 = Oracle.create ~initial:[ (64, 42) ] () in
  Oracle.record t2 ~core:0 ~end_time:5 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 0) ];
  check_bool "stale zero rejected" false (ok t2)

let test_tie_break_by_recording_order () =
  let t = Oracle.create () in
  (* same end time: recording order decides, and it is consistent *)
  Oracle.record t ~core:0 ~end_time:10 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 0); Oracle.W (64, 1) ];
  Oracle.record t ~core:1 ~end_time:10 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 1); Oracle.W (64, 2) ];
  check_bool "tied times replay in seq order" true (ok t);
  check_int "two records" 2 (Oracle.size t)

let test_interleaved_addresses () =
  let t = Oracle.create () in
  Oracle.record t ~core:0 ~end_time:1 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.W (64, 1); Oracle.W (128, 10) ];
  Oracle.record t ~core:1 ~end_time:2 ~kind:Oracle.Stl_commit
    ~ops:[ Oracle.R (64, 1); Oracle.R (128, 10); Oracle.W (64, 2) ];
  Oracle.record t ~core:0 ~end_time:3 ~kind:Oracle.Htm_commit
    ~ops:[ Oracle.R (64, 2); Oracle.R (128, 10) ];
  check_bool "multi-address ok" true (ok t)

let prop_serial_histories_verify =
  (* build a random but genuinely serial history: transactions applied
     one after another against a model, reads recorded from the model *)
  QCheck.Test.make ~name:"serial histories always verify" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30)
              (pair (int_bound 7) (list_of_size Gen.(1 -- 5) (int_bound 3))))
    (fun txs ->
      let t = Oracle.create () in
      let model = Hashtbl.create 16 in
      let get a = Option.value ~default:0 (Hashtbl.find_opt model a) in
      List.iteri
        (fun i (core, addrs) ->
          let ops =
            List.concat_map
              (fun a ->
                let addr = 64 * a in
                let v = get addr in
                Hashtbl.replace model addr (v + 1);
                [ Oracle.R (addr, v); Oracle.W (addr, v + 1) ])
              addrs
          in
          Oracle.record t ~core:(core mod 4) ~end_time:i
            ~kind:Oracle.Htm_commit ~ops)
        txs;
      ok t)

let prop_corrupted_read_detected =
  QCheck.Test.make ~name:"corrupting one observed read is detected" ~count:100
    QCheck.(pair (int_bound 19) (int_bound 8))
    (fun (corrupt_at, offset) ->
      let t = Oracle.create () in
      for i = 0 to 19 do
        let read_value = if i = corrupt_at then i + 1 + offset else i in
        Oracle.record t ~core:0 ~end_time:i ~kind:Oracle.Htm_commit
          ~ops:[ Oracle.R (64, read_value); Oracle.W (64, i + 1) ]
      done;
      not (ok t))

(* --- runtime integration -------------------------------------------------- *)

let run_with_oracle sysconf program =
  let sim = Sim.create () in
  let net = Network.create (Topology.create ~rows:2 ~cols:2) in
  let cfg =
    {
      Protocol.cores = 4;
      l1_size = 16 * 64 * 2;
      l1_ways = 2;
      l1_hit_latency = 2;
      llc_size = 4 * 64 * 64 * 8;
      llc_ways = 8;
      llc_hit_latency = 12;
      mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
    }
  in
  let protocol = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores:4 in
  let runtime = Runtime.create ~protocol ~store ~sysconf ~lock_addr:0 () in
  let oracle = Runtime.enable_oracle runtime in
  let acct = Accounting.create ~cores:4 in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~runtime ~core ~thread ~accounting:acct ~on_done:(fun () ->
            ()) ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  oracle

let contended_program =
  Array.init 4 (fun i ->
      List.init 12 (fun j ->
          {
            Program.pre_compute = 3;
            ops =
              [
                Program.Incr (64 * 16);
                Program.Compute (10 + (7 * ((i + j) mod 3)));
                Program.Incr (64 * (17 + (j mod 3)));
              ];
            post_compute = 3;
          }))

let test_all_systems_serializable () =
  List.iter
    (fun sysconf ->
      let oracle = run_with_oracle sysconf contended_program in
      check_bool (sysconf.Sysconf.name ^ " sections recorded") true
        (Oracle.size oracle > 0);
      match Oracle.verify oracle with
      | Ok () -> ()
      | Error v ->
        Alcotest.failf "%s: %a" sysconf.Sysconf.name Oracle.pp_violation v)
    Sysconf.all

let test_faulting_program_serializable () =
  let program =
    Array.init 4 (fun _ ->
        List.init 6 (fun _ ->
            {
              Program.pre_compute = 2;
              ops = [ Program.Incr (64 * 16); Program.Fault ];
              post_compute = 2;
            }))
  in
  List.iter
    (fun sysconf ->
      let oracle = run_with_oracle sysconf program in
      check_bool (sysconf.Sysconf.name ^ " verifies") true (ok oracle))
    [ Sysconf.baseline; Sysconf.lockiller_rwil; Sysconf.lockiller ]

let test_aborted_attempts_leave_no_records () =
  (* one thread, transactions that always fault on first attempt: the
     aborted attempts must not pollute the trace *)
  let program =
    [|
      List.init 4 (fun _ ->
          {
            Program.pre_compute = 1;
            ops = [ Program.Incr (64 * 16); Program.Fault ];
            post_compute = 1;
          });
    |]
  in
  let oracle = run_with_oracle Sysconf.baseline program in
  (* each tx: aborted HTM attempt (no record) + plain fallback section *)
  check_int "one record per completed section" 4 (Oracle.size oracle);
  List.iter
    (fun r ->
      check_bool "fallback sections only" true
        (r.Oracle.kind = Oracle.Plain_section))
    (Oracle.records oracle);
  check_bool "verifies" true (ok oracle)

let test_kinds_reported () =
  let program =
    Array.init 2 (fun _ ->
        List.init 6 (fun _ ->
            {
              Program.pre_compute = 2;
              ops = [ Program.Incr (64 * 16) ];
              post_compute = 2;
            }))
  in
  let oracle = run_with_oracle Sysconf.lockiller program in
  let kinds = List.map (fun r -> r.Oracle.kind) (Oracle.records oracle) in
  check_bool "has htm commits" true (List.mem Oracle.Htm_commit kinds)

let () =
  Alcotest.run "oracle"
    [
      ( "replay",
        [
          Alcotest.test_case "empty" `Quick test_empty_history_verifies;
          Alcotest.test_case "sequential counter" `Quick
            test_sequential_counter_verifies;
          Alcotest.test_case "lost update detected" `Quick
            test_lost_update_detected;
          Alcotest.test_case "dirty read detected" `Quick
            test_dirty_read_detected;
          Alcotest.test_case "read own write" `Quick test_read_own_write_ok;
          Alcotest.test_case "initial values" `Quick
            test_initial_values_respected;
          Alcotest.test_case "tie break" `Quick
            test_tie_break_by_recording_order;
          Alcotest.test_case "interleaved addresses" `Quick
            test_interleaved_addresses;
          QCheck_alcotest.to_alcotest prop_serial_histories_verify;
          QCheck_alcotest.to_alcotest prop_corrupted_read_detected;
        ] );
      ( "runtime",
        [
          Alcotest.test_case "all systems serializable" `Quick
            test_all_systems_serializable;
          Alcotest.test_case "faults serializable" `Quick
            test_faulting_program_serializable;
          Alcotest.test_case "aborts leave no records" `Quick
            test_aborted_attempts_leave_no_records;
          Alcotest.test_case "kinds" `Quick test_kinds_reported;
        ] );
    ]
