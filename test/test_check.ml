(* Tests for the correctness checkers (lib/check): invariant sanitizer,
   bounded interleaving explorer, schedule fuzzer and counterexample
   shrinking — plus the wake-table/arbiter edge cases the checkers
   lean on. *)

module Types = Lk_coherence.Types
module Wake_table = Lk_lockiller.Wake_table
module Arbiter = Lk_lockiller.Arbiter
module Invariant = Lk_check.Invariant
module Scenario = Lk_check.Scenario
module Harness = Lk_check.Harness
module Explorer = Lk_check.Explorer
module Fuzzer = Lk_check.Fuzzer
module Schedule = Lk_check.Schedule
module Race = Lk_check.Race
module Runner = Lk_sim.Runner

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let status_label = function
  | Harness.Completed -> "completed"
  | Harness.Violated v -> "violated: " ^ Invariant.violation_to_string v
  | Harness.Livelocked m -> "livelocked: " ^ m

(* --- Clean scenarios --------------------------------------------------- *)

let test_default_schedules_clean () =
  List.iter
    (fun (s : Scenario.t) ->
      let r = Harness.default s in
      check Alcotest.string
        (s.Scenario.name ^ " default schedule")
        "completed"
        (match r.Harness.status with
        | Harness.Completed -> "completed"
        | other -> status_label other))
    Scenario.all

let test_explorer_reaches_fixpoint_clean () =
  List.iter
    (fun (s : Scenario.t) ->
      match Explorer.explore s with
      | Explorer.Exhausted { schedules; states; _ } ->
        check_bool
          (s.Scenario.name ^ " explored more than the default schedule")
          true
          (schedules > 1 && states >= 1)
      | Explorer.Bounded _ ->
        Alcotest.failf "%s: hit the schedule bound (space too large)"
          s.Scenario.name
      | Explorer.Violation { schedule; violation; _ } ->
        Alcotest.failf "%s: false positive at %s: %s" s.Scenario.name
          (Schedule.to_string schedule)
          (Invariant.violation_to_string violation))
    Scenario.all

let test_sharded_trio_explored () =
  (* The one scenario with a multi-bank directory (2 shards on 3
     tiles): the explorer must exhaust it cleanly with the per-shard
     consistency invariant active, and the plan must be what the
     scenario declares. *)
  (match Scenario.sharded_trio.Scenario.shards with
  | Some 2 -> ()
  | _ -> Alcotest.fail "sharded-trio should declare a two-shard plan");
  check_bool "registered in Scenario.all" true
    (List.memq Scenario.sharded_trio Scenario.all);
  match Explorer.explore Scenario.sharded_trio with
  | Explorer.Exhausted { schedules; states; _ } ->
    check_bool "explored several schedules" true (schedules > 1);
    check_bool "deduplicated states" true (states >= 1)
  | Explorer.Bounded _ -> Alcotest.fail "sharded-trio hit the schedule bound"
  | Explorer.Violation { violation; _ } ->
    Alcotest.failf "sharded-trio: %s"
      (Invariant.violation_to_string violation)

let test_fuzzer_clean_across_seeds () =
  (* Several seeds over the park/wake scenarios: the random schedules
     permute wake deliveries against aborts and re-parks, covering
     wake-of-already-aborted and re-park races. *)
  List.iter
    (fun (s : Scenario.t) ->
      List.iter
        (fun seed ->
          match Fuzzer.fuzz ~runs:60 ~seed s with
          | Fuzzer.Passed _ -> ()
          | Fuzzer.Failed { schedule; violation; _ } ->
            Alcotest.failf "%s seed %d: %s at %s" s.Scenario.name seed
              (Invariant.violation_to_string violation)
              (Schedule.to_string schedule))
        [ 1; 7; 42 ])
    [ Scenario.park_wake; Scenario.trio; Scenario.commit_race ]

let test_runs_are_deterministic () =
  let a = Harness.default Scenario.trio in
  let b = Harness.default Scenario.trio in
  check_int "same cycle count" a.Harness.cycles b.Harness.cycles;
  check_int "same event count" a.Harness.events b.Harness.events;
  check Alcotest.(array (pair int int)) "same decisions" a.Harness.decisions
    b.Harness.decisions;
  check Alcotest.(array int) "same fingerprints" a.Harness.fingerprints
    b.Harness.fingerprints

(* --- Mutation self-test ------------------------------------------------ *)

let mutations =
  [
    (Types.Swmr_violation, Scenario.read_forward, "coherence");
    (Types.Lost_wakeup, Scenario.park_wake, "lost-wakeup");
    (Types.Dirty_commit, Scenario.commit_race, "dirty-commit");
  ]

let test_sanitizer_catches_mutations () =
  List.iter
    (fun (fault, (s : Scenario.t), expected_invariant) ->
      match (Harness.default ~inject_bug:fault s).Harness.status with
      | Harness.Violated v ->
        check Alcotest.string
          (Types.fault_label fault ^ " violated invariant")
          expected_invariant v.Invariant.invariant
      | other ->
        Alcotest.failf "%s on %s not caught by the sanitizer: %s"
          (Types.fault_label fault) s.Scenario.name (status_label other))
    mutations

let test_explorer_catches_mutations () =
  List.iter
    (fun (fault, (s : Scenario.t), expected_invariant) ->
      match Explorer.explore ~inject_bug:fault s with
      | Explorer.Violation { schedule; violation; _ } ->
        check Alcotest.string
          (Types.fault_label fault ^ " invariant")
          expected_invariant violation.Invariant.invariant;
        (* The shrunk counterexample must reproduce on replay. *)
        (match
           (Harness.replay ~inject_bug:fault ~schedule s).Harness.status
         with
        | Harness.Violated v ->
          check Alcotest.string "replay reproduces the invariant"
            violation.Invariant.invariant v.Invariant.invariant
        | other ->
          Alcotest.failf "%s: counterexample does not replay: %s"
            (Types.fault_label fault) (status_label other));
        (* And the un-mutated scenario must not fail on that schedule. *)
        (match (Harness.replay ~schedule s).Harness.status with
        | Harness.Completed -> ()
        | other ->
          Alcotest.failf "%s: schedule fails without the mutation: %s"
            (Types.fault_label fault) (status_label other))
      | Explorer.Exhausted _ | Explorer.Bounded _ ->
        Alcotest.failf "%s on %s not caught by the explorer"
          (Types.fault_label fault) s.Scenario.name)
    mutations

let test_mutation_detection_is_deterministic () =
  List.iter
    (fun (fault, (s : Scenario.t), _) ->
      let run () =
        match Explorer.explore ~inject_bug:fault s with
        | Explorer.Violation { schedule; violation; schedules } ->
          (schedule, violation.Invariant.invariant, schedules)
        | _ -> Alcotest.failf "%s escaped" (Types.fault_label fault)
      in
      let s1, i1, n1 = run () in
      let s2, i2, n2 = run () in
      check Alcotest.(array int) "same minimal schedule" s1 s2;
      check Alcotest.string "same invariant" i1 i2;
      check_int "same search effort" n1 n2)
    mutations

(* --- Race-detector self-validation ------------------------------------- *)

let test_race_clean_sequenced () =
  (* The false-positive gate: both partitioned scenarios, detector on,
     every explored schedule clean. *)
  List.iter
    (fun (_, s) ->
      match Race.clean s with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg)
    Race.mutations

let test_race_mutations_sequenced () =
  List.iter
    (fun (fault, (s : Scenario.t)) ->
      match Race.sequenced ~inject:fault s with
      | Ok r ->
        check Alcotest.string
          (Types.fault_label fault ^ " reported as a race")
          "race" r.Race.violation.Invariant.invariant;
        check_bool "found within the bound" true (r.Race.schedules >= 1);
        (* The un-mutated scenario must stay clean on that schedule. *)
        (match (Harness.replay ~schedule:r.Race.schedule s).Harness.status with
        | Harness.Completed -> ()
        | other ->
          Alcotest.failf "%s: schedule fails without the mutation: %s"
            (Types.fault_label fault) (status_label other))
      | Error msg -> Alcotest.fail msg)
    Race.mutations

let test_race_detection_is_deterministic () =
  List.iter
    (fun (fault, s) ->
      let run () =
        match Race.sequenced ~inject:fault s with
        | Ok r -> (r.Race.schedule, r.Race.schedules)
        | Error msg -> Alcotest.fail msg
      in
      let s1, n1 = run () in
      let s2, n2 = run () in
      check Alcotest.(array int) "same minimal schedule" s1 s2;
      check_int "same search effort" n1 n2)
    Race.mutations

let test_race_parallel_kernel () =
  (match Race.parallel_clean () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg);
  List.iter
    (fun (fault, _) ->
      match Race.parallel ~inject:fault with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s on the parallel kernel: %s"
          (Types.fault_label fault) msg)
    Race.mutations

(* --- Shrinking --------------------------------------------------------- *)

let test_shrink_minimises () =
  (* Failure model: fails iff the schedule picks choice 2 at index 3.
     Shrinking must strip everything else. *)
  let still_fails s = Array.length s > 3 && s.(3) = 2 in
  let shrunk = Schedule.shrink ~still_fails [| 1; 0; 2; 2; 1; 1; 0; 2 |] in
  check Alcotest.(array int) "minimal" [| 0; 0; 0; 2 |] shrunk;
  check_bool "still fails" true (still_fails shrunk)

let test_shrink_keeps_prefix_failures () =
  (* Fails whenever any nonzero choice is present: minimal is one. *)
  let still_fails s = Array.exists (fun c -> c <> 0) s in
  let shrunk = Schedule.shrink ~still_fails [| 0; 1; 0; 1; 1 |] in
  check_int "single nonzero decision" 1
    (Array.length (Array.of_list (List.filter (fun c -> c <> 0) (Array.to_list shrunk))));
  check_bool "still fails" true (still_fails shrunk)

let test_strip_trailing_zeros () =
  check Alcotest.(array int) "stripped" [| 0; 2 |]
    (Schedule.strip_trailing_zeros [| 0; 2; 0; 0 |]);
  check Alcotest.(array int) "empty" [||]
    (Schedule.strip_trailing_zeros [| 0; 0 |])

(* --- Sanitizer on full-size runs --------------------------------------- *)

let test_runner_check_option () =
  let sysconf = Lk_lockiller.Sysconf.lockiller in
  let workload = Option.get (Lk_stamp.Suite.find "intruder") in
  let r =
    Runner.run
      ~options:{ Runner.default_options with Runner.check = true; scale = 0.1 }
      ~sysconf ~workload ~threads:4 ()
  in
  check_bool "checked run completes" true (r.Runner.cycles > 0)

let test_runner_check_default_off () =
  check_bool "off by default" false Runner.default_options.Runner.check

(* --- Wake table edge cases --------------------------------------------- *)

let test_wake_table_full_drain () =
  (* Capacity edge: every other core of a maximal machine recorded
     against one rejector, drained in one sweep, ascending. *)
  let cores = 62 in
  let w = Wake_table.create ~cores in
  for c = cores - 1 downto 0 do
    Wake_table.record w ~rejector:3 ~waiter:c
  done;
  check_int "self excluded" (cores - 1) (Wake_table.pending w);
  let drained = Wake_table.drain w ~rejector:3 in
  check Alcotest.(list int) "ascending, no self"
    (List.filter (fun c -> c <> 3) (List.init cores Fun.id))
    drained;
  check_int "empty" 0 (Wake_table.pending w);
  check Alcotest.(list int) "second drain empty" []
    (Wake_table.drain w ~rejector:3)

let test_wake_table_core_bounds () =
  let w = Wake_table.create ~cores:62 in
  Wake_table.record w ~rejector:0 ~waiter:61;
  check Alcotest.(list int) "highest core id" [ 61 ]
    (Wake_table.waiters w ~rejector:0);
  Alcotest.check_raises "core 1024 rejected"
    (Invalid_argument "Coreset: core id 1024 out of range") (fun () ->
      Wake_table.record w ~rejector:0 ~waiter:1024);
  Alcotest.check_raises "no zero-core table"
    (Invalid_argument "Wake_table.create: cores must be positive") (fun () ->
      ignore (Wake_table.create ~cores:0))

let test_wake_table_rerecord_after_drain () =
  (* A waiter that parks again after being woken (its retry lost again)
     must be recordable against the same rejector. *)
  let w = Wake_table.create ~cores:4 in
  Wake_table.record w ~rejector:1 ~waiter:2;
  check Alcotest.(list int) "first" [ 2 ] (Wake_table.drain w ~rejector:1);
  Wake_table.record w ~rejector:1 ~waiter:2;
  Wake_table.record w ~rejector:1 ~waiter:2;
  check_int "re-record is idempotent" 1 (Wake_table.pending w);
  check Alcotest.(list int) "second" [ 2 ] (Wake_table.drain w ~rejector:1)

let test_wake_table_independent_rejectors () =
  let w = Wake_table.create ~cores:4 in
  Wake_table.record w ~rejector:0 ~waiter:2;
  Wake_table.record w ~rejector:1 ~waiter:2;
  check Alcotest.(list int) "drain 0" [ 2 ] (Wake_table.drain w ~rejector:0);
  check Alcotest.(list int) "rejector 1 untouched" [ 2 ]
    (Wake_table.waiters w ~rejector:1)

(* --- Arbiter edge cases ------------------------------------------------ *)

let test_arbiter_holder_and_counters () =
  let a = Arbiter.create () in
  check (Alcotest.option Alcotest.int) "free" None (Arbiter.holder a);
  check_bool "grant" true (Arbiter.try_acquire a 5);
  check (Alcotest.option Alcotest.int) "held" (Some 5) (Arbiter.holder a);
  check_bool "denied" false (Arbiter.try_acquire a 6);
  check_bool "reacquire" true (Arbiter.try_acquire a 5);
  check_int "grants (reacquire is not a fresh grant)" 1 (Arbiter.grants a);
  check_int "denials" 1 (Arbiter.denials a);
  Arbiter.release a 5;
  check (Alcotest.option Alcotest.int) "free again" None (Arbiter.holder a)

let test_arbiter_release_requires_holder () =
  let a = Arbiter.create () in
  ignore (Arbiter.try_acquire a 1);
  Alcotest.check_raises "non-holder release"
    (Invalid_argument "Arbiter.release: caller does not hold the authorization")
    (fun () -> Arbiter.release a 2);
  check (Alcotest.option Alcotest.int) "still held" (Some 1)
    (Arbiter.holder a);
  Arbiter.release a 1;
  Alcotest.check_raises "double release"
    (Invalid_argument "Arbiter.release: caller does not hold the authorization")
    (fun () -> Arbiter.release a 1)

(* --- QCheck: fuzz arbitrary short schedules ----------------------------- *)

let prop_random_schedules_never_violate =
  QCheck.Test.make ~name:"replaying any short schedule stays clean" ~count:60
    QCheck.(list_of_size (Gen.int_bound 12) (int_bound 3))
    (fun choices ->
      let schedule = Array.of_list choices in
      match (Harness.replay ~schedule Scenario.incr_incr).Harness.status with
      | Harness.Completed -> true
      | Harness.Violated _ | Harness.Livelocked _ -> false)

let () =
  Alcotest.run "check"
    [
      ( "clean",
        [
          Alcotest.test_case "default schedules complete" `Quick
            test_default_schedules_clean;
          Alcotest.test_case "explorer reaches a clean fixpoint" `Quick
            test_explorer_reaches_fixpoint_clean;
          Alcotest.test_case "sharded trio explored" `Quick
            test_sharded_trio_explored;
          Alcotest.test_case "fuzzer clean across seeds" `Quick
            test_fuzzer_clean_across_seeds;
          Alcotest.test_case "controlled runs are deterministic" `Quick
            test_runs_are_deterministic;
          QCheck_alcotest.to_alcotest prop_random_schedules_never_violate;
        ] );
      ( "mutations",
        [
          Alcotest.test_case "sanitizer catches every mutation" `Quick
            test_sanitizer_catches_mutations;
          Alcotest.test_case "explorer catches every mutation" `Quick
            test_explorer_catches_mutations;
          Alcotest.test_case "detection is deterministic" `Quick
            test_mutation_detection_is_deterministic;
        ] );
      ( "race",
        [
          Alcotest.test_case "partitioned scenarios stay clean" `Quick
            test_race_clean_sequenced;
          Alcotest.test_case "sequenced kernel catches both faults" `Quick
            test_race_mutations_sequenced;
          Alcotest.test_case "race detection is deterministic" `Quick
            test_race_detection_is_deterministic;
          Alcotest.test_case "parallel kernel catches both faults" `Quick
            test_race_parallel_kernel;
        ] );
      ( "shrinking",
        [
          Alcotest.test_case "shrink minimises" `Quick test_shrink_minimises;
          Alcotest.test_case "shrink keeps prefix failures" `Quick
            test_shrink_keeps_prefix_failures;
          Alcotest.test_case "strip trailing zeros" `Quick
            test_strip_trailing_zeros;
        ] );
      ( "sanitizer",
        [
          Alcotest.test_case "Runner --check passes on a real run" `Quick
            test_runner_check_option;
          Alcotest.test_case "checking is off by default" `Quick
            test_runner_check_default_off;
        ] );
      ( "wake-table",
        [
          Alcotest.test_case "full-machine drain" `Quick
            test_wake_table_full_drain;
          Alcotest.test_case "core id bounds" `Quick test_wake_table_core_bounds;
          Alcotest.test_case "re-record after drain" `Quick
            test_wake_table_rerecord_after_drain;
          Alcotest.test_case "independent rejectors" `Quick
            test_wake_table_independent_rejectors;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "holder and counters" `Quick
            test_arbiter_holder_and_counters;
          Alcotest.test_case "release requires holder" `Quick
            test_arbiter_release_requires_holder;
        ] );
    ]
