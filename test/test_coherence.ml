(* Tests for addresses, the core-id sets, both cache levels, and the
   MESI protocol engine (including its HTM conflict hooks, driven by a
   scriptable test client). *)

module Sim = Lk_engine.Sim
module Topology = Lk_mesh.Topology
module Network = Lk_mesh.Network
module Types = Lk_coherence.Types
module Addr = Lk_coherence.Addr
module Coreset = Lk_coherence.Coreset
module L1 = Lk_coherence.L1_cache
module Llc = Lk_coherence.Llc
module Shard = Lk_coherence.Shard
module Client = Lk_coherence.Client
module Protocol = Lk_coherence.Protocol

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- Addr ------------------------------------------------------------ *)

let test_addr_line_mapping () =
  check_int "byte 0" 0 (Addr.line_of_byte 0);
  check_int "byte 63" 0 (Addr.line_of_byte 63);
  check_int "byte 64" 1 (Addr.line_of_byte 64);
  check_int "line base" 128 (Addr.byte_of_line 2)

let test_addr_home () =
  check_int "home wraps" 1 (Addr.home_of_line ~tiles:4 5);
  check_int "home of 0" 0 (Addr.home_of_line ~tiles:4 0)

let test_addr_range () =
  Alcotest.(check (list int)) "spans lines" [ 0; 1 ]
    (Addr.lines_of_range ~first_byte:60 ~bytes:8);
  Alcotest.(check (list int)) "single line" [ 2 ]
    (Addr.lines_of_range ~first_byte:130 ~bytes:4)

(* --- Coreset --------------------------------------------------------- *)

let test_coreset_basics () =
  let s = Coreset.of_list [ 3; 1; 5 ] in
  check_int "cardinal" 3 (Coreset.cardinal s);
  check_bool "mem 3" true (Coreset.mem 3 s);
  check_bool "mem 2" false (Coreset.mem 2 s);
  Alcotest.(check (list int)) "sorted elements" [ 1; 3; 5 ]
    (Coreset.elements s)

let test_coreset_add_remove () =
  let s = Coreset.add 4 Coreset.empty in
  check_bool "added" true (Coreset.mem 4 s);
  let s = Coreset.remove 4 s in
  check_bool "empty after remove" true (Coreset.is_empty s);
  check_bool "remove absent harmless" true
    (Coreset.is_empty (Coreset.remove 7 s))

let test_coreset_range_check () =
  check_bool "core 1023 accepted" true
    (Coreset.mem 1023 (Coreset.add 1023 Coreset.empty));
  Alcotest.check_raises "core 1024"
    (Invalid_argument "Coreset: core id 1024 out of range") (fun () ->
      ignore (Coreset.add 1024 Coreset.empty));
  Alcotest.check_raises "negative core"
    (Invalid_argument "Coreset: core id -1 out of range") (fun () ->
      ignore (Coreset.add (-1) Coreset.empty))

let prop_coreset_model =
  QCheck.Test.make ~name:"coreset behaves like a set of small ints"
    ~count:300
    QCheck.(list (int_bound 1023))
    (fun ops ->
      let s = Coreset.of_list ops in
      let model = List.sort_uniq compare ops in
      Coreset.elements s = model && Coreset.cardinal s = List.length model)

(* --- L1 cache -------------------------------------------------------- *)

let small_l1 () = L1.create ~size_bytes:(4 * 64 * 2) ~ways:2
(* 4 sets, 2 ways *)

let test_l1_geometry () =
  let c = small_l1 () in
  check_int "sets" 4 (L1.sets c);
  check_int "ways" 2 (L1.ways c)

let test_l1_insert_lookup () =
  let c = small_l1 () in
  L1.insert c 5 L1.E;
  (match L1.lookup c 5 with
  | Some v ->
    check_bool "state E" true (v.L1.state = L1.E);
    check_bool "clean" false v.L1.dirty
  | None -> Alcotest.fail "line absent");
  check_bool "absent line" true (L1.lookup c 6 = None)

let test_l1_insert_m_is_dirty () =
  let c = small_l1 () in
  L1.insert c 1 L1.M;
  check_bool "dirty" true (Option.get (L1.lookup c 1)).L1.dirty

let test_l1_double_insert_rejected () =
  let c = small_l1 () in
  L1.insert c 5 L1.S;
  Alcotest.check_raises "double insert"
    (Invalid_argument "L1_cache.insert: line already resident") (fun () ->
      L1.insert c 5 L1.S)

let test_l1_room_and_eviction_preference () =
  let c = small_l1 () in
  (* set 0 holds lines 0, 4, 8, ... *)
  check_bool "free initially" true (L1.room_for c 0 = L1.Free);
  L1.insert c 0 L1.S;
  check_bool "present" true (L1.room_for c 0 = L1.Present);
  L1.insert c 4 L1.S;
  L1.touch c 0;
  (* LRU is now line 4 *)
  (match L1.room_for c 8 with
  | L1.Evict v -> check_int "evicts LRU" 4 v.L1.line
  | _ -> Alcotest.fail "expected eviction");
  (* make line 4 transactional: victim preference moves to line 0 *)
  L1.mark_tx c 4 ~write:false;
  (match L1.room_for c 8 with
  | L1.Evict v -> check_int "prefers non-tx victim" 0 v.L1.line
  | _ -> Alcotest.fail "expected eviction");
  (* both transactional: overflow situation, a tx line is the victim *)
  L1.mark_tx c 0 ~write:true;
  match L1.room_for c 8 with
  | L1.Evict v -> check_bool "tx victim" true (v.L1.tx_read || v.L1.tx_write)
  | _ -> Alcotest.fail "expected eviction"

let test_l1_remove () =
  let c = small_l1 () in
  L1.insert c 3 L1.M;
  let v = L1.remove c 3 in
  check_bool "was dirty" true v.L1.dirty;
  check_bool "gone" false (L1.resident c 3);
  check_int "occupancy" 0 (L1.occupancy c)

let test_l1_tx_tracking () =
  let c = small_l1 () in
  L1.insert c 1 L1.E;
  L1.insert c 2 L1.S;
  L1.insert c 3 L1.M;
  L1.mark_tx c 1 ~write:true;
  L1.mark_tx c 2 ~write:false;
  check_int "two tx lines" 2 (List.length (L1.tx_lines c))

let test_l1_clear_tx_commit () =
  let c = small_l1 () in
  L1.insert c 1 L1.M;
  L1.mark_tx c 1 ~write:true;
  let cleared = L1.clear_tx c ~drop_written:false in
  check_int "one cleared" 1 (List.length cleared);
  check_bool "still resident" true (L1.resident c 1);
  check_bool "bits gone" false (Option.get (L1.lookup c 1)).L1.tx_write

let test_l1_clear_tx_abort_drops_written () =
  let c = small_l1 () in
  L1.insert c 1 L1.M;
  L1.insert c 2 L1.S;
  L1.mark_tx c 1 ~write:true;
  L1.mark_tx c 2 ~write:false;
  ignore (L1.clear_tx c ~drop_written:true);
  check_bool "written line dropped" false (L1.resident c 1);
  check_bool "read line kept" true (L1.resident c 2);
  check_bool "read bits gone" false (Option.get (L1.lookup c 2)).L1.tx_read

let test_l1_bad_geometry_rejected () =
  Alcotest.check_raises "bad size"
    (Invalid_argument
       "L1_cache.create: size must be a multiple of ways * line size")
    (fun () -> ignore (L1.create ~size_bytes:100 ~ways:2))

let prop_l1_never_exceeds_capacity =
  QCheck.Test.make ~name:"l1 occupancy never exceeds capacity" ~count:100
    QCheck.(list (int_bound 63))
    (fun lines ->
      let c = small_l1 () in
      List.iter
        (fun line ->
          match L1.room_for c line with
          | L1.Present -> L1.touch c line
          | L1.Free -> L1.insert c line L1.S
          | L1.Evict v ->
            ignore (L1.remove c v.L1.line);
            L1.insert c line L1.S)
        lines;
      L1.occupancy c <= 8)

(* Model-based property: the L1 behaves like a reference set-associative
   cache with per-set LRU (victim choice restricted to non-tx lines,
   which this model has none of). *)
let prop_l1_matches_lru_model =
  QCheck.Test.make ~name:"l1 matches a reference LRU model" ~count:100
    QCheck.(list_of_size Gen.(1 -- 120) (int_bound 31))
    (fun lines ->
      let c = small_l1 () in
      (* model: per set, list of resident lines, most recent first *)
      let nsets = L1.sets c and ways = L1.ways c in
      let model = Array.make nsets [] in
      let touch_model line =
        let set = line mod nsets in
        let l = List.filter (fun x -> x <> line) model.(set) in
        let l = line :: l in
        model.(set) <-
          (if List.length l > ways then
             List.filteri (fun i _ -> i < ways) l
           else l)
      in
      List.iter
        (fun line ->
          (match L1.room_for c line with
          | L1.Present -> L1.touch c line
          | L1.Free -> L1.insert c line L1.S
          | L1.Evict v ->
            ignore (L1.remove c v.L1.line);
            L1.insert c line L1.S);
          touch_model line)
        lines;
      (* compare residency *)
      let ok = ref true in
      for set = 0 to nsets - 1 do
        List.iter
          (fun line -> if not (L1.resident c line) then ok := false)
          model.(set)
      done;
      let count = Array.fold_left (fun a l -> a + List.length l) 0 model in
      !ok && L1.occupancy c = count)

(* --- Shard ----------------------------------------------------------- *)

let test_shard_default_is_historical () =
  (* One shard per tile with the Mod hash is the historical
     [line mod tiles] home map, bit for bit. *)
  let plan = Shard.make ~count:8 ~tiles:8 ~hash:Shard.Mod in
  for line = 0 to 999 do
    check_int "of_line = line mod tiles" (line mod 8) (Shard.of_line plan line);
    check_int "home_tile = identity" (Shard.of_line plan line)
      (Shard.home_tile plan (Shard.of_line plan line))
  done

let test_shard_make_validates () =
  Alcotest.check_raises "zero shards"
    (Invalid_argument
       "Shard.make: shard count must be in [1, tiles]; got 0 shards for 4 tiles")
    (fun () -> ignore (Shard.make ~count:0 ~tiles:4 ~hash:Shard.Mod));
  Alcotest.check_raises "more shards than tiles"
    (Invalid_argument
       "Shard.make: shard count must be in [1, tiles]; got 5 shards for 4 tiles")
    (fun () -> ignore (Shard.make ~count:5 ~tiles:4 ~hash:Shard.Mod))

let prop_shard_in_range =
  QCheck.Test.make ~name:"shard of_line in range, home tiles distinct and ordered"
    ~count:200
    QCheck.(triple (int_range 1 16) (int_range 0 100_000) bool)
    (fun (count, line, mixed) ->
      let tiles = 16 in
      let hash = if mixed then Shard.Mix else Shard.Mod in
      let plan = Shard.make ~count ~tiles ~hash in
      let s = Shard.of_line plan line in
      let ok_shard = s >= 0 && s < count in
      let homes = List.init count (Shard.home_tile plan) in
      let ok_homes =
        List.for_all (fun t -> t >= 0 && t < tiles) homes
        && List.sort_uniq Int.compare homes = homes
      in
      ok_shard && ok_homes)

let test_shard_mix_spreads_strides () =
  (* A power-of-two stride hammers shard [0] under Mod; Mix must
     spread it across every shard. *)
  let plan = Shard.make ~count:8 ~tiles:8 ~hash:Shard.Mix in
  let hit = Array.make 8 0 in
  for i = 0 to 255 do
    let s = Shard.of_line plan (i * 8) in
    hit.(s) <- hit.(s) + 1
  done;
  Array.iteri
    (fun s n -> check_bool (Printf.sprintf "shard %d used" s) true (n > 0))
    hit

(* --- LLC ------------------------------------------------------------- *)

let small_llc () = Llc.create ~plan:(Shard.make ~count:4 ~tiles:4 ~hash:Shard.Mod)
    ~bank_size_bytes:(2 * 64 * 2) ~ways:2
(* 4 banks, 2 sets x 2 ways each *)

let test_llc_geometry () =
  let c = small_llc () in
  check_int "banks" 4 (Llc.banks c);
  check_int "sets per bank" 2 (Llc.sets_per_bank c)

let test_llc_insert_dir () =
  let c = small_llc () in
  Llc.insert c 9;
  (match Llc.dir_of c 9 with
  | Llc.Sharers s -> check_bool "no sharers" true (Coreset.is_empty s)
  | Llc.Owner _ -> Alcotest.fail "fresh line owned");
  Llc.set_dir c 9 (Llc.Owner 2);
  match Llc.dir_of c 9 with
  | Llc.Owner o -> check_int "owner" 2 o
  | _ -> Alcotest.fail "owner lost"

let test_llc_victim_prefers_quiet_lines () =
  let c = small_llc () in
  (* bank 0, set 0 holds lines 0, 16, 32 ... (line/4 mod 2 = 0) *)
  Llc.insert c 0;
  Llc.insert c 16;
  Llc.set_dir c 0 (Llc.Owner 1);
  Llc.touch c 0;
  Llc.touch c 16;
  (* line 16 has no L1 copies: preferred victim although 0 is LRU *)
  match Llc.room_for c 32 with
  | Llc.Evict v -> check_int "quiet victim" 16 v.Llc.line
  | _ -> Alcotest.fail "expected eviction"

let test_llc_evict () =
  let c = small_llc () in
  Llc.insert c 0;
  Llc.set_dirty c 0 true;
  let v = Llc.evict c 0 in
  check_bool "was dirty" true v.Llc.dirty;
  check_bool "gone" false (Llc.resident c 0)

(* --- Protocol: plain MESI -------------------------------------------- *)

(* A 4-core machine with tiny caches so evictions are easy to force. *)
let small_cfg =
  {
    Protocol.cores = 4;
    l1_size = 4 * 64 * 2;
    (* 4 sets x 2 ways *)
    l1_ways = 2;
    l1_hit_latency = 2;
    llc_size = 4 * (16 * 64 * 4);
    (* 16 sets x 4 ways per bank *)
    llc_ways = 4;
    llc_hit_latency = 12;
    mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
  }

let mk_machine ?(cfg = small_cfg) () =
  let sim = Sim.create () in
  let net = Network.create (Topology.create ~rows:2 ~cols:2) in
  let p = Protocol.create ~sim ~network:net cfg in
  (sim, p)

(* Issue an access and drain the simulation; returns (outcome, cycles
   the access took). *)
let run_access sim p ~core ~line ~what =
  let result = ref None in
  let t0 = Sim.now sim in
  Protocol.access p ~core ~line ~what ~epoch:0 ~k:(fun o ->
      result := Some (o, Sim.now sim - t0));
  Sim.run sim;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "access never completed"

let expect_granted sim p ~core ~line ~what =
  match run_access sim p ~core ~line ~what with
  | Types.Granted, lat -> lat
  | Types.Rejected _, _ -> Alcotest.fail "unexpected reject"

let l1_state p core line =
  match L1.lookup (Protocol.l1 p core) line with
  | Some v -> Some v.L1.state
  | None -> None

let test_proto_cold_read_is_exclusive () =
  let sim, p = mk_machine () in
  let lat = expect_granted sim p ~core:0 ~line:7 ~what:Types.Read in
  check_bool "E state" true (l1_state p 0 7 = Some L1.E);
  check_bool "paid memory latency" true (lat >= small_cfg.Protocol.mem_latency);
  (match Llc.dir_of (Protocol.llc p) 7 with
  | Llc.Owner o -> check_int "dir owner" 0 o
  | _ -> Alcotest.fail "dir should record exclusive owner");
  Protocol.check_invariants p

let test_proto_second_read_hits_l1 () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  let lat = expect_granted sim p ~core:0 ~line:7 ~what:Types.Read in
  check_int "l1 hit latency" small_cfg.Protocol.l1_hit_latency lat

let test_proto_read_sharing () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:7 ~what:Types.Read);
  check_bool "core0 S" true (l1_state p 0 7 = Some L1.S);
  check_bool "core1 S" true (l1_state p 1 7 = Some L1.S);
  (match Llc.dir_of (Protocol.llc p) 7 with
  | Llc.Sharers s ->
    Alcotest.(check (list int)) "both sharers" [ 0; 1 ] (Coreset.elements s)
  | Llc.Owner _ -> Alcotest.fail "should be shared");
  Protocol.check_invariants p

let test_proto_write_invalidates_sharers () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:2 ~line:7 ~what:Types.Write);
  check_bool "core0 invalid" true (l1_state p 0 7 = None);
  check_bool "core1 invalid" true (l1_state p 1 7 = None);
  check_bool "core2 M" true (l1_state p 2 7 = Some L1.M);
  Protocol.check_invariants p

let test_proto_write_then_read_downgrades () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Write);
  ignore (expect_granted sim p ~core:1 ~line:7 ~what:Types.Read);
  check_bool "core0 S" true (l1_state p 0 7 = Some L1.S);
  check_bool "core1 S" true (l1_state p 1 7 = Some L1.S);
  check_bool "llc dirty" true (Option.get (Llc.lookup (Protocol.llc p) 7)).Llc.dirty;
  Protocol.check_invariants p

let test_proto_upgrade () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Write);
  check_bool "core0 M" true (l1_state p 0 7 = Some L1.M);
  check_bool "core1 invalid" true (l1_state p 1 7 = None);
  Protocol.check_invariants p

let test_proto_silent_write_upgrade_from_e () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  (* E -> M without touching the directory *)
  let lat = expect_granted sim p ~core:0 ~line:7 ~what:Types.Write in
  check_int "hit latency" small_cfg.Protocol.l1_hit_latency lat;
  check_bool "M" true (l1_state p 0 7 = Some L1.M);
  Protocol.check_invariants p

let test_proto_l1_eviction_writeback () =
  let sim, p = mk_machine () in
  (* Lines 0, 16, 32 map to L1 set 0 (16 lines per L1 "stride": 4 sets,
     so stride 4 — lines 0,4,8 share set 0). Fill both ways then force
     an eviction. *)
  ignore (expect_granted sim p ~core:0 ~line:0 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:4 ~what:Types.Read);
  ignore (expect_granted sim p ~core:0 ~line:8 ~what:Types.Read);
  check_bool "dirty line evicted" true (l1_state p 0 0 = None);
  check_bool "new line resident" true (l1_state p 0 8 <> None);
  (* after writeback the LLC holds the only copy and stays dirty *)
  check_bool "llc dirty after wb" true
    (Option.get (Llc.lookup (Protocol.llc p) 0)).Llc.dirty;
  Protocol.check_invariants p

let test_proto_rmw_behaves_like_write () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:3 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:3 ~what:Types.Rmw);
  check_bool "core1 M" true (l1_state p 1 3 = Some L1.M);
  check_bool "core0 invalid" true (l1_state p 0 3 = None);
  Protocol.check_invariants p

let prop_proto_random_plain_traffic =
  QCheck.Test.make
    ~name:"random non-tx traffic preserves SWMR and inclusivity" ~count:30
    QCheck.(
      pair
        (pair bool (option (int_range 1 3)))
        (list_of_size Gen.(5 -- 60) (triple (int_bound 3) (int_bound 30) bool)))
    (fun ((exclusive_state, dir_pointers), ops) ->
      (* the invariants must hold under every protocol-knob combination *)
      let cfg = { small_cfg with Protocol.exclusive_state; dir_pointers } in
      let sim, p = mk_machine ~cfg () in
      List.iter
        (fun (core, line, write) ->
          let what = if write then Types.Write else Types.Read in
          ignore (run_access sim p ~core ~line ~what);
          Protocol.check_invariants p)
        ops;
      true)

(* --- Protocol: transactional hooks ----------------------------------- *)

(* A scriptable client: per-core modes and priorities, recovery on/off,
   abort log. *)
type script = {
  mutable modes : Types.party array;
  mutable recovery : bool;
  mutable aborted : (int * int) list;  (* victim, line *)
  mutable rejected : (int * int option) list;  (* requester, by *)
  mutable overflow_directive : Client.eviction_directive;
  proto : Protocol.t;
}

let make_script p =
  let s =
    {
      modes = Array.make 4 Types.non_tx_party;
      recovery = false;
      aborted = [];
      rejected = [];
      overflow_directive = Client.Abort_tx 0;
      proto = p;
    }
  in
  let client =
    {
      Client.context = (fun ~core ~epoch:_ -> Some s.modes.(core));
      party_of = (fun core -> s.modes.(core));
      resolve =
        (fun ~requester:(_, rp) ~holder:(_, hp) ~line:_ ~write:_ ->
          let r_pri = rp.Types.priority and h_pri = hp.Types.priority in
          if hp.Types.mode = Types.Lock_tx then Client.Reject_requester
          else if not s.recovery then Client.Abort_holder
          else if h_pri > r_pri then Client.Reject_requester
          else Client.Abort_holder);
      abort =
        (fun ~victim ~aggressor:_ ~aggressor_mode:_ ~line ->
          s.aborted <- (victim, line) :: s.aborted;
          s.modes.(victim) <- Types.non_tx_party;
          ignore (Protocol.abort_flush s.proto victim));
      on_tx_eviction =
        (fun ~core ~view:_ ->
          (match s.overflow_directive with
          | Client.Abort_tx _ ->
            s.modes.(core) <- Types.non_tx_party;
            ignore (Protocol.abort_flush s.proto core)
          | Client.Spill _ -> ());
          s.overflow_directive);
      llc_check =
        (fun ~requester:_ ~requester_mode:_ ~line:_ ~write:_
             ~would_be_exclusive:_ -> None);
      on_reject =
        (fun ~requester ~by ~line:_ -> s.rejected <- (requester, by) :: s.rejected);
      tx_age = (fun _ -> 0);
    }
  in
  Protocol.set_client p client;
  s

let htm party_priority = { Types.mode = Types.Htm_tx; priority = party_priority }

let test_proto_tx_marks_bits () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Read);
  ignore (expect_granted sim p ~core:0 ~line:6 ~what:Types.Write);
  let v5 = Option.get (L1.lookup (Protocol.l1 p 0) 5) in
  let v6 = Option.get (L1.lookup (Protocol.l1 p 0) 6) in
  check_bool "read bit" true v5.L1.tx_read;
  check_bool "write bit" true v6.L1.tx_write

let test_proto_requester_win_aborts_holder () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  (* core 1, non-tx, reads the speculative line: requester-win aborts 0 *)
  ignore (expect_granted sim p ~core:1 ~line:5 ~what:Types.Read);
  check_bool "core0 aborted" true (List.mem (0, 5) s.aborted);
  (* speculative data was dropped; requester got the pre-tx copy
     exclusively *)
  check_bool "core0 lost line" true (l1_state p 0 5 = None);
  check_bool "core1 has line" true (l1_state p 1 5 <> None);
  Protocol.check_invariants p

let test_proto_read_read_no_conflict () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  s.modes.(1) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:5 ~what:Types.Read);
  check_bool "no aborts" true (s.aborted = []);
  Protocol.check_invariants p

let test_proto_recovery_rejects_lower_priority () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.recovery <- true;
  s.modes.(0) <- htm 10;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  s.modes.(1) <- htm 1;
  (match run_access sim p ~core:1 ~line:5 ~what:Types.Read with
  | Types.Rejected { by = Some 0 }, _ -> ()
  | Types.Rejected { by = _ }, _ -> Alcotest.fail "wrong rejector"
  | Types.Granted, _ -> Alcotest.fail "low-priority requester not rejected");
  check_bool "no aborts" true (s.aborted = []);
  check_bool "holder keeps line" true (l1_state p 0 5 = Some L1.M);
  check_bool "on_reject fired" true (List.mem (1, Some 0) s.rejected);
  Protocol.check_invariants p

let test_proto_recovery_aborts_higher_priority_requester () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.recovery <- true;
  s.modes.(0) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  s.modes.(1) <- htm 10;
  ignore (expect_granted sim p ~core:1 ~line:5 ~what:Types.Read);
  check_bool "holder aborted" true (List.mem (0, 5) s.aborted);
  Protocol.check_invariants p

let test_proto_sharer_conflict_mixed_verdicts () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.recovery <- true;
  (* cores 0 (high) and 1 (low) both read line 5 transactionally *)
  s.modes.(0) <- htm 10;
  s.modes.(1) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:5 ~what:Types.Read);
  (* core 2, priority between them, writes: 0 rejects, 1 aborts *)
  s.modes.(2) <- htm 5;
  (match run_access sim p ~core:2 ~line:5 ~what:Types.Write with
  | Types.Rejected { by = Some 0 }, _ -> ()
  | _ -> Alcotest.fail "expected rejection by core 0");
  check_bool "core1 aborted" true (List.mem (1, 5) s.aborted);
  check_bool "winner keeps copy" true (l1_state p 0 5 = Some L1.S);
  check_bool "loser lost copy" true (l1_state p 1 5 = None);
  Protocol.check_invariants p

let test_proto_lock_holder_never_aborted () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- { Types.mode = Types.Lock_tx; priority = max_int };
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  s.modes.(1) <- htm max_int;
  (match run_access sim p ~core:1 ~line:5 ~what:Types.Read with
  | Types.Rejected _, _ -> ()
  | Types.Granted, _ -> Alcotest.fail "lock transaction was not protected");
  check_bool "no aborts" true (s.aborted = []);
  Protocol.check_invariants p

let test_proto_overflow_abort_on_tx_eviction () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  (* fill L1 set 0 (lines 0, 4) transactionally, then touch line 8 *)
  ignore (expect_granted sim p ~core:0 ~line:0 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:4 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:8 ~what:Types.Write);
  (* both tx lines were speculative; the overflow aborted the tx *)
  check_bool "tx aborted via eviction hook" true
    (s.modes.(0).Types.mode = Types.Non_tx);
  check_bool "speculative lines dropped" true
    (l1_state p 0 0 = None && l1_state p 0 4 = None);
  check_bool "new line resident" true (l1_state p 0 8 <> None);
  Protocol.check_invariants p

let test_proto_stale_request_dropped () =
  let sim, p = mk_machine () in
  let _s = make_script p in
  (* a client whose context is always stale for epoch 99 *)
  let outcome = ref None in
  Protocol.access p ~core:0 ~line:5 ~what:Types.Read ~epoch:99 ~k:(fun o ->
      outcome := Some o);
  (* make_script's context ignores epoch, so simulate staleness via a
     dedicated client *)
  Sim.run sim;
  check_bool "completed" true (!outcome <> None)

let test_proto_commit_flush_keeps_lines () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:6 ~what:Types.Read);
  let n = Protocol.commit_flush p 0 in
  check_int "two tx lines" 2 n;
  check_bool "written line kept" true (l1_state p 0 5 = Some L1.M);
  Protocol.check_invariants p

let test_proto_abort_flush_drops_written () =
  let sim, p = mk_machine () in
  let s = make_script p in
  s.modes.(0) <- htm 1;
  ignore (expect_granted sim p ~core:0 ~line:5 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:6 ~what:Types.Read);
  let n = Protocol.abort_flush p 0 in
  check_int "two tx lines" 2 n;
  check_bool "written dropped" true (l1_state p 0 5 = None);
  check_bool "read kept" true (l1_state p 0 6 <> None);
  (* directory no longer names core 0 owner of line 5 *)
  (match Llc.dir_of (Protocol.llc p) 5 with
  | Llc.Sharers se -> check_bool "unowned" true (Coreset.is_empty se)
  | Llc.Owner _ -> Alcotest.fail "stale owner");
  Protocol.check_invariants p

let test_proto_flush_core () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:1 ~what:Types.Write);
  ignore (expect_granted sim p ~core:0 ~line:2 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:2 ~what:Types.Read);
  let flushed = Protocol.flush_core p 0 in
  check_int "two lines flushed" 2 flushed;
  check_bool "all gone" true
    (l1_state p 0 1 = None && l1_state p 0 2 = None);
  (* the shared line survives at core 1 and the directory is exact *)
  check_bool "core1 keeps its copy" true (l1_state p 1 2 <> None);
  (* dirty data reached the LLC *)
  check_bool "llc dirty after flush" true
    (Option.get (Llc.lookup (Protocol.llc p) 1)).Llc.dirty;
  Protocol.check_invariants p

let test_proto_stats_counters () =
  let sim, p = mk_machine () in
  ignore (expect_granted sim p ~core:0 ~line:1 ~what:Types.Read);
  ignore (expect_granted sim p ~core:0 ~line:1 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:1 ~what:Types.Write);
  let stats = Lk_engine.Stats.counters (Protocol.stats p) in
  let v name = List.assoc name stats in
  check_int "one l1 hit" 1 (v "l1_hits");
  check_int "two misses" 2 (v "l1_misses");
  check_bool "llc misses counted" true (v "llc_misses" >= 1);
  check_bool "invalidation counted" true (v "invalidations" >= 1)

let test_proto_default_config_matches_table1 () =
  let cfg = Protocol.default_config in
  check_int "32 cores" 32 cfg.Protocol.cores;
  check_int "32KB L1" (32 * 1024) cfg.Protocol.l1_size;
  check_int "8MB LLC" (8 * 1024 * 1024) cfg.Protocol.llc_size;
  check_int "2-cycle L1" 2 cfg.Protocol.l1_hit_latency;
  check_int "12-cycle LLC" 12 cfg.Protocol.llc_hit_latency;
  check_int "100-cycle memory" 100 cfg.Protocol.mem_latency

let test_proto_latency_ordering () =
  (* l1 hit < llc-resident miss < memory miss *)
  let sim, p = mk_machine () in
  let cold = expect_granted sim p ~core:0 ~line:9 ~what:Types.Read in
  let hit = expect_granted sim p ~core:0 ~line:9 ~what:Types.Read in
  (* force line 9 out of core 0's L1 but keep it in the LLC *)
  ignore (expect_granted sim p ~core:0 ~line:13 ~what:Types.Read);
  ignore (expect_granted sim p ~core:0 ~line:17 ~what:Types.Read);
  check_bool "line 9 evicted" true (l1_state p 0 9 = None);
  let warm = expect_granted sim p ~core:0 ~line:9 ~what:Types.Read in
  check_bool "hit < warm" true (hit < warm);
  check_bool "warm < cold" true (warm < cold)

let test_msi_mode_no_exclusive () =
  let cfg = { small_cfg with Protocol.exclusive_state = false } in
  let sim, p = mk_machine ~cfg () in
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  check_bool "sole reader gets S under MSI" true (l1_state p 0 7 = Some L1.S);
  (* the write is now a directory upgrade, not a silent E->M *)
  let lat = expect_granted sim p ~core:0 ~line:7 ~what:Types.Write in
  check_bool "upgrade pays the directory" true
    (lat > small_cfg.Protocol.l1_hit_latency);
  check_bool "M after upgrade" true (l1_state p 0 7 = Some L1.M);
  Protocol.check_invariants p

let test_limited_pointer_broadcast () =
  let cfg = { small_cfg with Protocol.dir_pointers = Some 1 } in
  let sim, p = mk_machine ~cfg () in
  (* three sharers > 1 pointer: the invalidating write must broadcast *)
  ignore (expect_granted sim p ~core:0 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:1 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:2 ~line:7 ~what:Types.Read);
  ignore (expect_granted sim p ~core:3 ~line:7 ~what:Types.Write);
  let stats = Lk_engine.Stats.counters (Protocol.stats p) in
  check_bool "broadcast counted" true
    (List.assoc "broadcast_invalidations" stats > 0);
  check_bool "sharers invalidated" true
    (l1_state p 0 7 = None && l1_state p 1 7 = None && l1_state p 2 7 = None);
  Protocol.check_invariants p

let test_l1_iter_and_occupancy () =
  let c = small_l1 () in
  L1.insert c 0 L1.S;
  L1.insert c 5 L1.E;
  let seen = ref [] in
  L1.iter c (fun v -> seen := v.L1.line :: !seen);
  Alcotest.(check (list int)) "iter covers" [ 0; 5 ] (List.sort compare !seen);
  check_int "occupancy" 2 (L1.occupancy c)

let test_llc_iter () =
  let c = small_llc () in
  Llc.insert c 3;
  Llc.insert c 9;
  let seen = ref 0 in
  Llc.iter c (fun _ -> incr seen);
  check_int "iter covers" 2 !seen;
  check_int "occupancy" 2 (Llc.occupancy c)

let () =
  Alcotest.run "coherence"
    [
      ( "addr",
        [
          Alcotest.test_case "line mapping" `Quick test_addr_line_mapping;
          Alcotest.test_case "home" `Quick test_addr_home;
          Alcotest.test_case "range" `Quick test_addr_range;
        ] );
      ( "coreset",
        [
          Alcotest.test_case "basics" `Quick test_coreset_basics;
          Alcotest.test_case "add/remove" `Quick test_coreset_add_remove;
          Alcotest.test_case "range check" `Quick test_coreset_range_check;
          QCheck_alcotest.to_alcotest prop_coreset_model;
        ] );
      ( "l1",
        [
          Alcotest.test_case "geometry" `Quick test_l1_geometry;
          Alcotest.test_case "insert/lookup" `Quick test_l1_insert_lookup;
          Alcotest.test_case "M is dirty" `Quick test_l1_insert_m_is_dirty;
          Alcotest.test_case "double insert" `Quick
            test_l1_double_insert_rejected;
          Alcotest.test_case "victim preference" `Quick
            test_l1_room_and_eviction_preference;
          Alcotest.test_case "remove" `Quick test_l1_remove;
          Alcotest.test_case "tx tracking" `Quick test_l1_tx_tracking;
          Alcotest.test_case "commit clear" `Quick test_l1_clear_tx_commit;
          Alcotest.test_case "abort clear" `Quick
            test_l1_clear_tx_abort_drops_written;
          Alcotest.test_case "bad geometry" `Quick
            test_l1_bad_geometry_rejected;
          QCheck_alcotest.to_alcotest prop_l1_never_exceeds_capacity;
          QCheck_alcotest.to_alcotest prop_l1_matches_lru_model;
        ] );
      ( "shard",
        [
          Alcotest.test_case "default plan is historical" `Quick
            test_shard_default_is_historical;
          Alcotest.test_case "make validates" `Quick test_shard_make_validates;
          QCheck_alcotest.to_alcotest prop_shard_in_range;
          Alcotest.test_case "mix spreads strides" `Quick
            test_shard_mix_spreads_strides;
        ] );
      ( "llc",
        [
          Alcotest.test_case "geometry" `Quick test_llc_geometry;
          Alcotest.test_case "insert/dir" `Quick test_llc_insert_dir;
          Alcotest.test_case "quiet victim preference" `Quick
            test_llc_victim_prefers_quiet_lines;
          Alcotest.test_case "evict" `Quick test_llc_evict;
        ] );
      ( "protocol-mesi",
        [
          Alcotest.test_case "cold read E" `Quick
            test_proto_cold_read_is_exclusive;
          Alcotest.test_case "l1 hit" `Quick test_proto_second_read_hits_l1;
          Alcotest.test_case "read sharing" `Quick test_proto_read_sharing;
          Alcotest.test_case "write invalidates" `Quick
            test_proto_write_invalidates_sharers;
          Alcotest.test_case "downgrade on read" `Quick
            test_proto_write_then_read_downgrades;
          Alcotest.test_case "upgrade" `Quick test_proto_upgrade;
          Alcotest.test_case "silent E->M" `Quick
            test_proto_silent_write_upgrade_from_e;
          Alcotest.test_case "eviction writeback" `Quick
            test_proto_l1_eviction_writeback;
          Alcotest.test_case "rmw" `Quick test_proto_rmw_behaves_like_write;
          QCheck_alcotest.to_alcotest prop_proto_random_plain_traffic;
        ] );
      ( "protocol-htm",
        [
          Alcotest.test_case "tx bits" `Quick test_proto_tx_marks_bits;
          Alcotest.test_case "requester-win abort" `Quick
            test_proto_requester_win_aborts_holder;
          Alcotest.test_case "read-read ok" `Quick
            test_proto_read_read_no_conflict;
          Alcotest.test_case "recovery reject" `Quick
            test_proto_recovery_rejects_lower_priority;
          Alcotest.test_case "recovery abort" `Quick
            test_proto_recovery_aborts_higher_priority_requester;
          Alcotest.test_case "mixed sharer verdicts" `Quick
            test_proto_sharer_conflict_mixed_verdicts;
          Alcotest.test_case "lock holder protected" `Quick
            test_proto_lock_holder_never_aborted;
          Alcotest.test_case "overflow abort" `Quick
            test_proto_overflow_abort_on_tx_eviction;
          Alcotest.test_case "stale request" `Quick
            test_proto_stale_request_dropped;
          Alcotest.test_case "commit flush" `Quick
            test_proto_commit_flush_keeps_lines;
          Alcotest.test_case "abort flush" `Quick
            test_proto_abort_flush_drops_written;
          Alcotest.test_case "flush core" `Quick test_proto_flush_core;
          Alcotest.test_case "stats counters" `Quick
            test_proto_stats_counters;
          Alcotest.test_case "default config" `Quick
            test_proto_default_config_matches_table1;
          Alcotest.test_case "latency ordering" `Quick
            test_proto_latency_ordering;
          Alcotest.test_case "msi mode" `Quick test_msi_mode_no_exclusive;
          Alcotest.test_case "limited-pointer broadcast" `Quick
            test_limited_pointer_broadcast;
          Alcotest.test_case "l1 iter" `Quick test_l1_iter_and_occupancy;
          Alcotest.test_case "llc iter" `Quick test_llc_iter;
        ] );
    ]
