(* Unit tests for the CPU-layer building blocks: execution-time
   accounting and the program representation details not covered by the
   workload suite. *)

module Accounting = Lk_cpu.Accounting
module Program = Lk_cpu.Program
module Barrier = Lk_cpu.Barrier
module Sim = Lk_engine.Sim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- Accounting --------------------------------------------------------- *)

let test_accounting_empty () =
  let a = Accounting.create ~cores:2 in
  check_int "nothing recorded" 0 (Accounting.grand_total a);
  check (Alcotest.float 0.001) "fraction of empty" 0.0
    (Accounting.fraction a Accounting.Htm);
  List.iter
    (fun (_, n) -> check_int "zero cells" 0 n)
    (Accounting.total a)

let test_accounting_attribution () =
  let a = Accounting.create ~cores:2 in
  Accounting.add a ~core:0 Accounting.Htm 100;
  Accounting.add a ~core:1 Accounting.Htm 50;
  Accounting.add a ~core:0 Accounting.Wait_lock 25;
  Accounting.add a ~core:0 Accounting.Htm 10;
  check_int "htm summed over cores" 160
    (List.assoc Accounting.Htm (Accounting.total a));
  check_int "waitlock" 25
    (List.assoc Accounting.Wait_lock (Accounting.total a));
  check_int "grand total" 185 (Accounting.grand_total a);
  check_int "core0 htm" 110
    (List.assoc Accounting.Htm (Accounting.per_core a ~core:0));
  check (Alcotest.float 0.001) "fraction" (160.0 /. 185.0)
    (Accounting.fraction a Accounting.Htm)

let test_accounting_rejects_negative () =
  let a = Accounting.create ~cores:1 in
  Alcotest.check_raises "negative cycles"
    (Invalid_argument "Accounting.add: negative cycles") (fun () ->
      Accounting.add a ~core:0 Accounting.Htm (-1))

let test_accounting_category_order () =
  Alcotest.(check (list string))
    "paper order"
    [ "htm"; "aborted"; "lock"; "switchLock"; "non-tran"; "waitlock";
      "rollback"; "sw" ]
    (List.map Accounting.label Accounting.categories)

let test_accounting_pp_smoke () =
  let a = Accounting.create ~cores:1 in
  Accounting.add a ~core:0 Accounting.Rollback 3;
  let s = Format.asprintf "%a" Accounting.pp a in
  check_bool "prints something" true (String.length s > 0)

(* --- Program edge cases -------------------------------------------------- *)

let test_op_count_semantics () =
  check_int "empty" 0 (Program.op_count []);
  check_int "compute weight" 7
    (Program.op_count [ Program.Compute 5; Program.Read 0; Program.Fault ]);
  check_int "memory ops one each" 4
    (Program.op_count
       [
         Program.Read 0; Program.Write (64, 1); Program.Incr 128;
         Program.Add (192, -1);
       ])

let test_touched_addresses_dedup () =
  let p =
    [|
      [
        {
          Program.pre_compute = 0;
          ops = [ Program.Read 64; Program.Incr 64; Program.Read 64 ];
          post_compute = 0;
        };
      ];
    |]
  in
  Alcotest.(check (list int)) "dedup" [ 64 ] (Program.touched_addresses p)

let test_validate_catches_each_field () =
  let tx ops = { Program.pre_compute = 0; ops; post_compute = 0 } in
  check_bool "negative address in add" true
    (Program.validate [| [ tx [ Program.Add (-1, 1) ] ] |] <> Ok ());
  check_bool "negative compute op" true
    (Program.validate [| [ tx [ Program.Compute (-5) ] ] |] <> Ok ());
  check_bool "negative post" true
    (Program.validate
       [| [ { Program.pre_compute = 0; ops = []; post_compute = -1 } ] |]
    <> Ok ());
  check_bool "empty ok" true (Program.validate [| [] |] = Ok ())

let test_text_parse_comments_and_blanks () =
  let text =
    "\n# leading comment\n\nthread   # trailing comment\n\n  tx pre=1 post=2\n\n    incr 64   # op comment\n"
  in
  match Program.of_text text with
  | Error msg -> Alcotest.fail msg
  | Ok p ->
    check_int "one thread" 1 (Array.length p);
    check_int "one tx" 1 (List.length p.(0))

(* --- Barrier edge cases --------------------------------------------------- *)

let test_barrier_single_party () =
  let sim = Sim.create () in
  let b = Barrier.create ~parties:1 in
  let hits = ref 0 in
  Barrier.wait b ~sim ~k:(fun () -> incr hits);
  Barrier.wait b ~sim ~k:(fun () -> incr hits);
  Sim.run sim;
  check_int "single party never blocks" 2 !hits;
  check_int "two phases" 2 (Barrier.phases_completed b)

let test_barrier_rejects_bad_parties () =
  Alcotest.check_raises "zero parties"
    (Invalid_argument "Barrier.create: parties must be positive") (fun () ->
      ignore (Barrier.create ~parties:0))

let test_barrier_release_order_preserved () =
  let sim = Sim.create () in
  let b = Barrier.create ~parties:3 in
  let order = ref [] in
  Barrier.wait b ~sim ~k:(fun () -> order := 1 :: !order);
  Barrier.wait b ~sim ~k:(fun () -> order := 2 :: !order);
  Barrier.wait b ~sim ~k:(fun () -> order := 3 :: !order);
  Sim.run sim;
  Alcotest.(check (list int)) "arrival order" [ 1; 2; 3 ] (List.rev !order)

let () =
  Alcotest.run "cpu"
    [
      ( "accounting",
        [
          Alcotest.test_case "empty" `Quick test_accounting_empty;
          Alcotest.test_case "attribution" `Quick test_accounting_attribution;
          Alcotest.test_case "negative rejected" `Quick
            test_accounting_rejects_negative;
          Alcotest.test_case "category order" `Quick
            test_accounting_category_order;
          Alcotest.test_case "pp" `Quick test_accounting_pp_smoke;
        ] );
      ( "program",
        [
          Alcotest.test_case "op count" `Quick test_op_count_semantics;
          Alcotest.test_case "touched dedup" `Quick
            test_touched_addresses_dedup;
          Alcotest.test_case "validate fields" `Quick
            test_validate_catches_each_field;
          Alcotest.test_case "text comments" `Quick
            test_text_parse_comments_and_blanks;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "single party" `Quick test_barrier_single_party;
          Alcotest.test_case "bad parties" `Quick
            test_barrier_rejects_bad_parties;
          Alcotest.test_case "release order" `Quick
            test_barrier_release_order_preserved;
        ] );
    ]
