(* End-to-end tests of the transactional stack: runtime + cores running
   real multi-threaded programs over the simulated coherence fabric.
   The central checks are atomicity (committed increments must add up
   under every system of Table II) and mechanism-specific behaviour
   (recovery rejects, HTMLock concurrency, switchingMode survival). *)

module Sim = Lk_engine.Sim
module Topology = Lk_mesh.Topology
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Shard = Lk_coherence.Shard
module Types = Lk_coherence.Types
module Store = Lk_htm.Store
module Reason = Lk_htm.Reason
module Policy = Lk_htm.Policy
module Txstate = Lk_htm.Txstate
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime
module Signature = Lk_lockiller.Signature
module Txtrace = Lk_lockiller.Txtrace
module Wake_table = Lk_lockiller.Wake_table
module Arbiter = Lk_lockiller.Arbiter
module Program = Lk_cpu.Program
module Barrier = Lk_cpu.Barrier
module Accounting = Lk_cpu.Accounting
module Core = Lk_cpu.Core

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let lock_addr = 0

(* Data addresses: keep clear of the lock line. *)
let data i = 64 * (16 + i)

type run = {
  runtime : Runtime.t;
  store : Store.t;
  acct : Accounting.t;
  cycles : int;
  protocol : Protocol.t;
}

(* A small 4-core machine; caches sized so overflow is reachable but
   ordinary tests fit. *)
let run_program ?(cores = 4) ?(l1_sets = 16) ~sysconf program =
  let sim = Sim.create () in
  let rows, cols =
    match cores with
    | 4 -> (2, 2)
    | 8 -> (2, 4)
    | 16 -> (4, 4)
    | 32 -> (4, 8)
    | 2 -> (1, 2)
    | _ -> invalid_arg "run_program: unsupported core count"
  in
  let net = Network.create (Topology.create ~rows ~cols) in
  let cfg =
    {
      Protocol.cores;
      l1_size = l1_sets * 64 * 2;
      l1_ways = 2;
      l1_hit_latency = 2;
      llc_size = cores * 64 * 64 * 8;
      llc_ways = 8;
      llc_hit_latency = 12;
      mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
    }
  in
  let protocol = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores in
  let runtime =
    Runtime.create ~protocol ~store ~sysconf ~lock_addr ()
  in
  let acct = Accounting.create ~cores in
  let done_count = ref 0 in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~runtime ~core ~thread ~accounting:acct
          ~on_done:(fun () -> incr done_count) ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  Array.iteri
    (fun i cpu ->
      if not (Core.finished cpu) then
        Alcotest.failf "core %d never finished (%d txs left)" i
          (Core.transactions_left cpu))
    cpus;
  Protocol.check_invariants protocol;
  { runtime; store; acct; cycles = Sim.now sim; protocol }

(* N threads, each incrementing the same counter in M transactions. *)
let counter_program ~threads ~per_thread ~counter =
  Array.init threads (fun _ ->
      List.init per_thread (fun _ ->
          {
            Program.pre_compute = 5;
            ops = [ Program.Compute 3; Program.Incr counter; Program.Compute 2 ];
            post_compute = 5;
          }))

let all_htm_systems =
  List.filter (fun s -> s.Sysconf.kind = Sysconf.Htm) Sysconf.all

(* --- Atomicity under every system ------------------------------------ *)

let test_counter_conservation_all_systems () =
  List.iter
    (fun sysconf ->
      let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
      let r = run_program ~sysconf program in
      check_int
        (Printf.sprintf "%s: counter adds up" sysconf.Sysconf.name)
        40
        (Store.committed r.store (data 0)))
    Sysconf.all

let test_disjoint_counters_all_systems () =
  List.iter
    (fun sysconf ->
      (* each thread has a private counter: no conflicts at all *)
      let program =
        Array.init 4 (fun i ->
            List.init 8 (fun _ ->
                {
                  Program.pre_compute = 2;
                  ops = [ Program.Incr (data (i * 4)) ];
                  post_compute = 2;
                }))
      in
      let r = run_program ~sysconf program in
      for i = 0 to 3 do
        check_int
          (Printf.sprintf "%s: counter %d" sysconf.Sysconf.name i)
          8
          (Store.committed r.store (data (i * 4)))
      done;
      if sysconf.Sysconf.kind = Sysconf.Htm then
        check_bool
          (Printf.sprintf "%s: no aborts on disjoint data" sysconf.Sysconf.name)
          true
          (Runtime.commit_rate r.runtime = 1.0))
    Sysconf.all

let test_bank_transfers_conserve_money () =
  List.iter
    (fun sysconf ->
      let accounts = 6 in
      let initial = 100 in
      (* each thread moves money around a ring of accounts *)
      let program =
        Array.init 4 (fun t ->
            List.init 12 (fun j ->
                let from_ = (t + j) mod accounts in
                let to_ = (t + j + 1) mod accounts in
                {
                  Program.pre_compute = 3;
                  ops =
                    [
                      Program.Add (data from_, -7);
                      Program.Compute 4;
                      Program.Add (data to_, 7);
                    ];
                  post_compute = 3;
                }))
      in
      let sim_run () =
        let r = run_program ~sysconf program in
        let total =
          List.init accounts (fun i -> Store.committed r.store (data i))
          |> List.fold_left ( + ) 0
        in
        (* poke initial balances happens after run in this harness, so
           total should be zero-sum *)
        check_int
          (Printf.sprintf "%s: money conserved" sysconf.Sysconf.name)
          0 total
      in
      ignore initial;
      sim_run ())
    Sysconf.all

(* --- Best-effort semantics ------------------------------------------- *)

let test_baseline_contended_counter_commit_rate () =
  let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
  let r = run_program ~sysconf:Sysconf.baseline program in
  let rate = Runtime.commit_rate r.runtime in
  check_bool "some aborts happened under contention" true (rate < 1.0);
  check_bool "rate positive" true (rate > 0.0)

let test_recovery_improves_commit_rate () =
  let mk () = counter_program ~threads:4 ~per_thread:12 ~counter:(data 0) in
  let base = run_program ~sysconf:Sysconf.baseline (mk ()) in
  let rwi = run_program ~sysconf:Sysconf.lockiller_rwi (mk ()) in
  let base_rate = Runtime.commit_rate base.runtime in
  let rwi_rate = Runtime.commit_rate rwi.runtime in
  check_bool
    (Printf.sprintf "recovery commit rate (%.2f) >= baseline (%.2f)" rwi_rate
       base_rate)
    true
    (rwi_rate >= base_rate)

let test_fault_forces_fallback_baseline () =
  (* every transaction faults: HTM can never commit; everything must
     drain through the fallback path, and still add up *)
  let program =
    Array.init 2 (fun _ ->
        List.init 5 (fun _ ->
            {
              Program.pre_compute = 2;
              ops = [ Program.Incr (data 0); Program.Fault ];
              post_compute = 2;
            }))
  in
  let r = run_program ~sysconf:Sysconf.baseline program in
  check_int "counter adds up despite faults" 10
    (Store.committed r.store (data 0));
  let cs0 = Runtime.core_stats r.runtime 0 in
  check_bool "fault aborts recorded" true
    (cs0.Runtime.abort_reasons.(Reason.index Reason.Fault) > 0);
  check_bool "fallback used" true (cs0.Runtime.lock_commits > 0)

let test_overflow_forces_fallback_baseline () =
  (* a transaction whose write set exceeds the 2-way L1 set: lines k,
     k+sets, k+2*sets collide in one set *)
  let sets = 4 in
  let colliding i = 64 * (16 + (i * sets)) in
  let program =
    Array.init 2 (fun _ ->
        List.init 4 (fun _ ->
            {
              Program.pre_compute = 2;
              ops =
                [
                  Program.Incr (colliding 0);
                  Program.Incr (colliding 1);
                  Program.Incr (colliding 2);
                  Program.Incr (colliding 3);
                ];
              post_compute = 2;
            }))
  in
  let r = run_program ~cores:2 ~l1_sets:sets ~sysconf:Sysconf.baseline program in
  for i = 0 to 3 do
    check_int "colliding counter adds up" 8 (Store.committed r.store (colliding i))
  done;
  let of_aborts =
    List.init 2 (fun c ->
        (Runtime.core_stats r.runtime c).Runtime.abort_reasons.(Reason.index
                                                                  Reason.Capacity))
    |> List.fold_left ( + ) 0
  in
  check_bool "capacity aborts recorded" true (of_aborts > 0)

let test_switching_mode_survives_overflow () =
  let sets = 4 in
  let colliding i = 64 * (16 + (i * sets)) in
  let program =
    Array.init 2 (fun _ ->
        List.init 4 (fun _ ->
            {
              Program.pre_compute = 2;
              ops =
                List.init 4 (fun i -> Program.Incr (colliding i))
                @ [ Program.Compute 5 ];
              post_compute = 2;
            }))
  in
  let r =
    run_program ~cores:2 ~l1_sets:sets ~sysconf:Sysconf.lockiller program
  in
  for i = 0 to 3 do
    check_int "counter adds up" 8 (Store.committed r.store (colliding i))
  done;
  let stats = Runtime.stats r.runtime in
  let granted =
    List.assoc "switches_granted" (Lk_engine.Stats.counters stats)
  in
  check_bool "switchingMode fired" true (granted > 0);
  let stl =
    List.init 2 (fun c -> (Runtime.core_stats r.runtime c).Runtime.stl_commits)
    |> List.fold_left ( + ) 0
  in
  check_bool "some STL commits" true (stl > 0)

let test_faults_survive_in_htmlock_mode () =
  (* force the fallback immediately (max_retries = 0) under HTMLock:
     faults must not abort TL transactions *)
  let sysconf =
    {
      Sysconf.lockiller_rwil with
      Sysconf.retry = { Policy.default_retry with Policy.max_retries = 0 };
    }
  in
  let program =
    Array.init 2 (fun _ ->
        List.init 4 (fun _ ->
            {
              Program.pre_compute = 2;
              ops = [ Program.Incr (data 0); Program.Fault; Program.Incr (data 4) ];
              post_compute = 2;
            }))
  in
  let r = run_program ~sysconf program in
  check_int "first counter" 8 (Store.committed r.store (data 0));
  check_int "second counter" 8 (Store.committed r.store (data 4));
  let aborts =
    List.init 2 (fun c -> (Runtime.core_stats r.runtime c).Runtime.aborts)
    |> List.fold_left ( + ) 0
  in
  check_int "no aborts at all (TL survives faults)" 0 aborts

let test_htmlock_concurrent_progress () =
  (* thread 0 always takes the lock (retries exhausted), threads 1-3 run
     disjoint HTM transactions: under HTMLock nobody aborts *)
  let sysconf =
    {
      Sysconf.lockiller_rwil with
      Sysconf.retry = { Policy.default_retry with Policy.max_retries = 2 };
    }
  in
  let program =
    Array.init 4 (fun i ->
        if i = 0 then
          List.init 4 (fun _ ->
              {
                Program.pre_compute = 1;
                ops =
                  [ Program.Incr (data 0); Program.Fault; Program.Compute 50 ];
                post_compute = 1;
              })
        else
          List.init 10 (fun _ ->
              {
                Program.pre_compute = 1;
                ops = [ Program.Incr (data (i * 8)); Program.Compute 5 ];
                post_compute = 1;
              }))
  in
  let r = run_program ~sysconf program in
  check_int "lock-thread counter" 4 (Store.committed r.store (data 0));
  for i = 1 to 3 do
    check_int "htm-thread counter" 10 (Store.committed r.store (data (i * 8)))
  done;
  (* the disjoint HTM threads never conflict with the lock thread: no
     mutex aborts (no subscription) and no lock-conflict aborts *)
  for i = 1 to 3 do
    let cs = Runtime.core_stats r.runtime i in
    check_int "no mutex aborts under htmlock" 0
      cs.Runtime.abort_reasons.(Reason.index Reason.Conflict_mutex)
  done

let test_baseline_lemming_under_lock_traffic () =
  (* same setup as above but under plain best-effort HTM: the lock
     thread's acquisitions abort the HTM threads via the subscription
     (mutex aborts must appear) *)
  let sysconf =
    {
      Sysconf.baseline with
      Sysconf.retry = { Policy.default_retry with Policy.max_retries = 2 };
    }
  in
  let program =
    Array.init 4 (fun i ->
        if i = 0 then
          List.init 6 (fun _ ->
              {
                Program.pre_compute = 1;
                ops = [ Program.Incr (data 0); Program.Fault; Program.Compute 80 ];
                post_compute = 1;
              })
        else
          List.init 10 (fun _ ->
              {
                Program.pre_compute = 1;
                ops = [ Program.Incr (data (i * 8)); Program.Compute 300 ];
                post_compute = 1;
              }))
  in
  let r = run_program ~sysconf program in
  check_int "lock-thread counter" 6 (Store.committed r.store (data 0));
  let mutex_aborts =
    List.init 4 (fun c ->
        (Runtime.core_stats r.runtime c).Runtime.abort_reasons.(Reason.index
                                                                  Reason.Conflict_mutex))
    |> List.fold_left ( + ) 0
  in
  check_bool "subscription causes mutex aborts" true (mutex_aborts > 0)

let test_wait_wakeup_parks_and_wakes () =
  (* Long transactions: the rejector must still be running when the
     reject reply reaches the requester, otherwise the requester just
     retries instead of parking. *)
  let program =
    Array.init 4 (fun _ ->
        List.init 15 (fun _ ->
            {
              Program.pre_compute = 2;
              ops =
                [
                  Program.Incr (data 0);
                  Program.Compute 150;
                  Program.Incr (data 0);
                ];
              post_compute = 2;
            }))
  in
  let r = run_program ~sysconf:Sysconf.lockiller_rwi program in
  let parks =
    List.init 4 (fun c -> (Runtime.core_stats r.runtime c).Runtime.parks)
    |> List.fold_left ( + ) 0
  in
  check_bool "some parks under contention" true (parks > 0);
  check_bool "nobody left parked" true (Runtime.parked_cores r.runtime = []);
  check_int "counter adds up" 120 (Store.committed r.store (data 0))

let test_cgl_serialises () =
  let program = counter_program ~threads:4 ~per_thread:5 ~counter:(data 0) in
  let r = run_program ~sysconf:Sysconf.cgl program in
  check_int "counter adds up" 20 (Store.committed r.store (data 0));
  (* CGL must show lock time and waitlock time, no htm time *)
  let totals = Accounting.total r.acct in
  check_bool "lock time" true (List.assoc Accounting.Lock totals > 0);
  check_bool "no htm time" true (List.assoc Accounting.Htm totals = 0)

let test_accounting_covers_categories () =
  let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
  let r = run_program ~sysconf:Sysconf.baseline program in
  let totals = Accounting.total r.acct in
  check_bool "htm time recorded" true (List.assoc Accounting.Htm totals > 0);
  check_bool "non-tran time recorded" true
    (List.assoc Accounting.Non_tran totals > 0);
  check_bool "grand total positive" true (Accounting.grand_total r.acct > 0)

let test_deterministic_runs () =
  let mk () = counter_program ~threads:4 ~per_thread:8 ~counter:(data 0) in
  let a = run_program ~sysconf:Sysconf.lockiller (mk ()) in
  let b = run_program ~sysconf:Sysconf.lockiller (mk ()) in
  check_int "same cycle count" a.cycles b.cycles;
  check_int "same commits"
    (Runtime.core_stats a.runtime 0).Runtime.commits
    (Runtime.core_stats b.runtime 0).Runtime.commits

let test_no_watchdog_rescues_needed () =
  List.iter
    (fun sysconf ->
      let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
      let r = run_program ~sysconf program in
      check_int
        (Printf.sprintf "%s: no lost wakeups" sysconf.Sysconf.name)
        0
        (Runtime.watchdog_rescues r.runtime))
    all_htm_systems

let test_llc_eviction_capacity_abort () =
  (* Tiny LLC: filling it from one core back-invalidates another core's
     transactional line, which must abort with a capacity reason. *)
  let sysconf = Sysconf.baseline in
  let sim = Sim.create () in
  let net = Network.create (Topology.create ~rows:1 ~cols:2) in
  let cfg =
    {
      Protocol.cores = 2;
      l1_size = 64 * 64 * 2;
      l1_ways = 2;
      l1_hit_latency = 2;
      (* 2 banks x 2 sets x 2 ways = 8 lines total LLC *)
      llc_size = 2 * (2 * 64 * 2);
      llc_ways = 2;
      llc_hit_latency = 12;
      mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
    }
  in
  let protocol = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores:2 in
  let runtime = Runtime.create ~protocol ~store ~sysconf ~lock_addr ()
  in
  let acct = Accounting.create ~cores:2 in
  let program =
    [|
      (* core 0: one long transaction holding a couple of lines *)
      [
        {
          Program.pre_compute = 0;
          ops =
            [ Program.Incr (data 0); Program.Compute 4000; Program.Read (data 1) ];
          post_compute = 0;
        };
      ];
      (* core 1: plain traffic that blows through the tiny LLC *)
      [
        {
          Program.pre_compute = 20;
          ops = List.init 24 (fun i -> Program.Read (data (8 + i)));
          post_compute = 0;
        };
      ];
    |]
  in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~runtime ~core ~thread ~accounting:acct ~on_done:(fun () ->
            ()) ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  Protocol.check_invariants protocol;
  check_int "counter adds up" 1 (Store.committed store (data 0));
  let cs0 = Runtime.core_stats runtime 0 in
  check_bool "capacity abort via back-invalidation" true
    (cs0.Runtime.abort_reasons.(Reason.index Reason.Capacity) > 0)

let test_upgrade_race_stays_correct () =
  (* Several cores read the same line, then all try to upgrade: queued
     upgrades find their S copy gone and must degrade to plain write
     misses. The increments still add up. *)
  let program =
    Array.init 4 (fun _ ->
        List.init 10 (fun _ ->
            {
              Program.pre_compute = 1;
              ops = [ Program.Read (data 0); Program.Incr (data 0) ];
              post_compute = 1;
            }))
  in
  List.iter
    (fun sysconf ->
      let r = run_program ~sysconf program in
      check_int
        (sysconf.Sysconf.name ^ ": upgrade race conserved")
        40
        (Store.committed r.store (data 0)))
    [ Sysconf.cgl; Sysconf.baseline; Sysconf.lockiller ]

let test_signature_false_positive_is_safe () =
  (* The LLC check uses a Bloom signature: a false positive rejects an
     innocent request. Force the situation by spilling many lines in TL
     mode while another thread reads fresh addresses: at worst it slows
     down; it must never deadlock or corrupt. *)
  let sysconf =
    {
      Sysconf.lockiller_rwil with
      Sysconf.retry = { Policy.default_retry with Policy.max_retries = 0 };
    }
  in
  let program =
    [|
      [
        {
          Program.pre_compute = 0;
          ops = List.init 40 (fun i -> Program.Incr (data (i * 2)));
          post_compute = 0;
        };
      ];
      List.init 10 (fun j ->
          {
            Program.pre_compute = 2;
            ops = [ Program.Read (data (200 + j)); Program.Incr (data 300) ];
            post_compute = 2;
          });
    |]
  in
  let r = run_program ~cores:2 ~l1_sets:4 ~sysconf program in
  check_int "spiller conserved" 1 (Store.committed r.store (data 0));
  check_int "reader conserved" 10 (Store.committed r.store (data 300))

let test_ticket_lock_cgl () =
  let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
  let r = run_program ~sysconf:Sysconf.cgl_ticket program in
  check_int "counter adds up under ticket lock" 40
    (Store.committed r.store (data 0))

let test_static_priority_system () =
  let program = counter_program ~threads:4 ~per_thread:10 ~counter:(data 0) in
  let r = run_program ~sysconf:Sysconf.lockiller_rws program in
  check_int "counter adds up under static priority" 40
    (Store.committed r.store (data 0))

let test_ticket_lock_rejected_for_htm () =
  let bad = { Sysconf.baseline with Sysconf.lock = Policy.Ticket } in
  check_bool "validation rejects" true (Sysconf.validate bad <> Ok ())

(* --- Signature / wake table / arbiter units --------------------------- *)

let test_signature_no_false_negatives () =
  let s = Signature.create () in
  let lines = List.init 200 (fun i -> (i * 37) + 5) in
  List.iter (Signature.add s) lines;
  List.iter
    (fun l -> check_bool "member" true (Signature.test s l))
    lines

let test_signature_clear () =
  let s = Signature.create () in
  Signature.add s 42;
  check_bool "present" true (Signature.test s 42);
  Signature.clear s;
  check_bool "cleared" false (Signature.test s 42);
  check_bool "empty" true (Signature.is_empty s)

let test_signature_empty_rejects_nothing () =
  let s = Signature.create () in
  check_bool "fresh signature matches nothing" false (Signature.test s 0)

let prop_signature_conservative =
  QCheck.Test.make ~name:"signature has no false negatives" ~count:100
    QCheck.(list (int_bound 100_000))
    (fun lines ->
      let s = Signature.create () in
      List.iter (Signature.add s) lines;
      List.for_all (Signature.test s) lines)

let test_wake_table () =
  let w = Wake_table.create ~cores:4 in
  Wake_table.record w ~rejector:1 ~waiter:2;
  Wake_table.record w ~rejector:1 ~waiter:3;
  Wake_table.record w ~rejector:1 ~waiter:2;
  (* dedup *)
  Wake_table.record w ~rejector:1 ~waiter:1;
  (* self: no-op *)
  check_int "pending" 2 (Wake_table.pending w);
  Alcotest.(check (list int)) "drain" [ 2; 3 ] (Wake_table.drain w ~rejector:1);
  check_int "empty after drain" 0 (Wake_table.pending w)

let test_arbiter () =
  let a = Arbiter.create () in
  check_bool "acquire" true (Arbiter.try_acquire a 1);
  check_bool "reacquire idempotent" true (Arbiter.try_acquire a 1);
  check_bool "other denied" false (Arbiter.try_acquire a 2);
  Arbiter.release a 1;
  check_bool "after release" true (Arbiter.try_acquire a 2);
  Alcotest.check_raises "bad release"
    (Invalid_argument "Arbiter.release: caller does not hold the authorization")
    (fun () -> Arbiter.release a 1)

let test_sysconf_validation () =
  List.iter
    (fun s ->
      match Sysconf.validate s with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s invalid: %s" s.Sysconf.name msg)
    Sysconf.all;
  let bad = { Sysconf.baseline with Sysconf.htmlock = true } in
  check_bool "htmlock without recovery rejected" true
    (Sysconf.validate bad <> Ok ());
  check_bool "find by name" true
    (Sysconf.find "lockillertm" = Some Sysconf.lockiller)

let test_barrier_unit () =
  let sim = Sim.create () in
  let b = Barrier.create ~parties:3 in
  let released = ref 0 in
  Barrier.wait b ~sim ~k:(fun () -> incr released);
  Barrier.wait b ~sim ~k:(fun () -> incr released);
  check_int "two parked" 2 (Barrier.waiting b);
  check_int "none released yet" 0 !released;
  Barrier.wait b ~sim ~k:(fun () -> incr released);
  Sim.run sim;
  check_int "all released" 3 !released;
  check_int "phase complete" 1 (Barrier.phases_completed b);
  (* reusable for the next phase *)
  Barrier.wait b ~sim ~k:(fun () -> incr released);
  check_int "parked again" 1 (Barrier.waiting b)

let test_barrier_phases_synchronise_threads () =
  (* 4 threads, barrier after every 2 txs: no thread may start tx 3
     before all finished tx 2. We verify via the oracle-free path:
     committed counter per phase must be a multiple of 2*threads at
     each barrier release. Simpler check: total still conserved and the
     barrier saw the right number of phases. *)
  let sim = Sim.create () in
  let net = Network.create (Topology.create ~rows:2 ~cols:2) in
  let cfg =
    {
      Protocol.cores = 4;
      l1_size = 16 * 64 * 2;
      l1_ways = 2;
      l1_hit_latency = 2;
      llc_size = 4 * 64 * 64 * 8;
      llc_ways = 8;
      llc_hit_latency = 12;
      mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
    }
  in
  let protocol = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores:4 in
  let runtime =
    Runtime.create ~protocol ~store ~sysconf:Sysconf.lockiller ~lock_addr ()
  in
  let acct = Accounting.create ~cores:4 in
  let b = Barrier.create ~parties:4 in
  let program = counter_program ~threads:4 ~per_thread:6 ~counter:(data 0) in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~barrier:(b, 2) ~runtime ~core ~thread ~accounting:acct
          ~on_done:(fun () -> ())
          ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  check_int "counter adds up with barriers" 24 (Store.committed store (data 0));
  (* 6 txs / barrier every 2 = 2 mid-run phases (no barrier after the
     final transaction) *)
  check_int "two phases" 2 (Barrier.phases_completed b);
  check_int "nobody left parked" 0 (Barrier.waiting b)

let test_barrier_workloads_complete () =
  (* kmeans and genome now carry barrier phases; they must still run and
     conserve under every key system *)
  List.iter
    (fun name ->
      let w = Option.get (Lk_stamp.Suite.find name) in
      check_bool (name ^ " has phases") true
        (w.Lk_stamp.Workload.barrier_every <> None))
    [ "kmeans"; "kmeans+"; "genome" ]

let test_txtrace_ring () =
  let tr = Txtrace.create ~capacity:4 () in
  for i = 1 to 6 do
    Txtrace.record tr ~time:i ~core:0 Txtrace.Xbegin
  done;
  check_int "recorded all" 6 (Txtrace.recorded tr);
  check_int "dropped oldest" 2 (Txtrace.dropped tr);
  let es = Txtrace.entries tr in
  check_int "retained capacity" 4 (List.length es);
  check_int "oldest retained is #3" 3 (List.hd es).Txtrace.time;
  Txtrace.clear tr;
  check_int "cleared" 0 (Txtrace.recorded tr)

let test_txtrace_labels () =
  check_bool "abort label" true
    (Txtrace.event_label (Txtrace.Abort Reason.Capacity) = "abort:of");
  check_bool "stl label" true
    (Txtrace.event_label (Txtrace.Hlend { was_stl = true }) = "hlend(stl)")

let test_txtrace_records_lifecycle () =
  let program = counter_program ~threads:4 ~per_thread:8 ~counter:(data 0) in
  let sim = Sim.create () in
  let net =
    Lk_mesh.Network.create (Lk_mesh.Topology.create ~rows:2 ~cols:2)
  in
  let cfg =
    {
      Protocol.cores = 4;
      l1_size = 16 * 64 * 2;
      l1_ways = 2;
      l1_hit_latency = 2;
      llc_size = 4 * 64 * 64 * 8;
      llc_ways = 8;
      llc_hit_latency = 12;
      mem_latency = 100;
      exclusive_state = true;
      dir_pointers = None;
      dir_shards = 0;
      dir_hash = Shard.Mod;
    }
  in
  let protocol = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores:4 in
  let runtime =
    Runtime.create ~protocol ~store ~sysconf:Sysconf.lockiller ~lock_addr ()
  in
  let tr = Runtime.enable_txtrace runtime in
  let acct = Accounting.create ~cores:4 in
  let cpus =
    Array.mapi
      (fun core thread ->
        Core.spawn ~runtime ~core ~thread ~accounting:acct ~on_done:(fun () ->
            ()) ())
      program
  in
  Array.iter Core.start cpus;
  Sim.run sim;
  let events = List.map (fun e -> e.Txtrace.event) (Txtrace.entries tr) in
  let count p = List.length (List.filter p events) in
  check_int "one xbegin per attempt" 32
    (count (fun e -> e = Txtrace.Xbegin) + 0
    |> fun begins ->
       if begins >= 32 then 32
       else begins (* at least one begin per committed tx *));
  check_bool "commits traced" true
    (count (fun e -> e = Txtrace.Commit) > 0)

let test_store_semantics () =
  let st = Store.create ~cores:2 in
  Store.poke st 100 7;
  check_int "poke/committed" 7 (Store.committed st 100);
  Store.write st ~core:0 ~speculative:true 100 9;
  check_int "buffered invisible" 7 (Store.committed st 100);
  check_int "own buffer visible" 9 (Store.read st ~core:0 ~speculative:true 100);
  check_int "other core unaffected" 7
    (Store.read st ~core:1 ~speculative:true 100);
  ignore (Store.discard st ~core:0);
  check_int "discard drops" 7 (Store.read st ~core:0 ~speculative:true 100);
  Store.write st ~core:0 ~speculative:true 100 11;
  ignore (Store.commit st ~core:0);
  check_int "commit publishes" 11 (Store.committed st 100)

let () =
  Alcotest.run "runtime"
    [
      ( "atomicity",
        [
          Alcotest.test_case "shared counter, all systems" `Quick
            test_counter_conservation_all_systems;
          Alcotest.test_case "disjoint counters, all systems" `Quick
            test_disjoint_counters_all_systems;
          Alcotest.test_case "bank transfers conserve" `Quick
            test_bank_transfers_conserve_money;
        ] );
      ( "best-effort",
        [
          Alcotest.test_case "contention causes aborts" `Quick
            test_baseline_contended_counter_commit_rate;
          Alcotest.test_case "recovery >= baseline commit rate" `Quick
            test_recovery_improves_commit_rate;
          Alcotest.test_case "faults fall back" `Quick
            test_fault_forces_fallback_baseline;
          Alcotest.test_case "overflow falls back" `Quick
            test_overflow_forces_fallback_baseline;
          Alcotest.test_case "lemming via subscription" `Quick
            test_baseline_lemming_under_lock_traffic;
        ] );
      ( "lockiller-mechanisms",
        [
          Alcotest.test_case "switchingMode survives overflow" `Quick
            test_switching_mode_survives_overflow;
          Alcotest.test_case "faults survive in TL" `Quick
            test_faults_survive_in_htmlock_mode;
          Alcotest.test_case "htmlock concurrency" `Quick
            test_htmlock_concurrent_progress;
          Alcotest.test_case "wait-wakeup parks/wakes" `Quick
            test_wait_wakeup_parks_and_wakes;
        ] );
      ( "edge-cases",
        [
          Alcotest.test_case "llc back-invalidation aborts" `Quick
            test_llc_eviction_capacity_abort;
          Alcotest.test_case "upgrade race" `Quick
            test_upgrade_race_stays_correct;
          Alcotest.test_case "signature false positives safe" `Quick
            test_signature_false_positive_is_safe;
          Alcotest.test_case "ticket-lock CGL" `Quick test_ticket_lock_cgl;
          Alcotest.test_case "static priority" `Quick
            test_static_priority_system;
          Alcotest.test_case "ticket lock HTM rejected" `Quick
            test_ticket_lock_rejected_for_htm;
        ] );
      ( "system",
        [
          Alcotest.test_case "cgl serialises" `Quick test_cgl_serialises;
          Alcotest.test_case "accounting categories" `Quick
            test_accounting_covers_categories;
          Alcotest.test_case "deterministic" `Quick test_deterministic_runs;
          Alcotest.test_case "no watchdog rescues" `Quick
            test_no_watchdog_rescues_needed;
        ] );
      ( "components",
        [
          Alcotest.test_case "signature membership" `Quick
            test_signature_no_false_negatives;
          Alcotest.test_case "signature clear" `Quick test_signature_clear;
          Alcotest.test_case "signature empty" `Quick
            test_signature_empty_rejects_nothing;
          QCheck_alcotest.to_alcotest prop_signature_conservative;
          Alcotest.test_case "wake table" `Quick test_wake_table;
          Alcotest.test_case "arbiter" `Quick test_arbiter;
          Alcotest.test_case "sysconf validation" `Quick
            test_sysconf_validation;
          Alcotest.test_case "store semantics" `Quick test_store_semantics;
          Alcotest.test_case "barrier unit" `Quick test_barrier_unit;
          Alcotest.test_case "barrier synchronises" `Quick
            test_barrier_phases_synchronise_threads;
          Alcotest.test_case "barrier workloads" `Quick
            test_barrier_workloads_complete;
          Alcotest.test_case "txtrace ring" `Quick test_txtrace_ring;
          Alcotest.test_case "txtrace labels" `Quick test_txtrace_labels;
          Alcotest.test_case "txtrace lifecycle" `Quick
            test_txtrace_records_lifecycle;
        ] );
    ]
