(* Whole-stack fuzzing: random workload profiles run under random
   Table II systems on a small machine, with every correctness layer
   armed — protocol invariants (SWMR, directory exactness, inclusivity),
   value conservation of the hot counters, the serializability oracle,
   and liveness (every thread finishes without watchdog rescues).

   This is the test that hunts for cross-mechanism interactions the
   targeted tests miss (e.g. a switchingMode grant racing a wake-up
   during an LLC back-invalidation). *)

module Workload = Lk_stamp.Workload
module Sysconf = Lk_lockiller.Sysconf
module Runner = Lk_sim.Runner
module Config = Lk_sim.Config
module Policy = Lk_htm.Policy

let machines = [ 2; 4; 8 ]

let profile_gen =
  QCheck.Gen.(
    let* hot_lines = 1 -- 32 in
    let* shared = 32 -- 512 in
    let* r_lo = 0 -- 8 in
    let* r_hi = r_lo -- 40 in
    let* w_lo = 0 -- 4 in
    let* w_hi = w_lo -- 12 in
    let* hot_fraction = float_bound_inclusive 1.0 in
    let* zipf = float_bound_inclusive 1.5 in
    let* fault = float_bound_inclusive 0.6 in
    let* compute = 0 -- 4 in
    let* txs = 2 -- 10 in
    return
      {
        Workload.name = "fuzz";
        txs_per_thread = txs;
        reads_per_tx = (r_lo, r_hi);
        writes_per_tx = (w_lo, w_hi);
        hot_lines;
        hot_fraction;
        zipf_skew = zipf;
        shared_lines = shared;
        private_lines = 8;
        compute_per_op = compute;
        pre_compute = (0, 20);
        post_compute = (0, 20);
        fault_prob = fault;
    barrier_every = None;
      })

let scenario_gen =
  QCheck.Gen.(
    let* profile = profile_gen in
    let* sys_i = 0 -- (List.length Sysconf.all - 1) in
    let* machine_i = 0 -- (List.length machines - 1) in
    let* seed = 1 -- 10_000 in
    let* tiny_l1 = bool in
    return (profile, List.nth Sysconf.all sys_i, List.nth machines machine_i,
            seed, tiny_l1))

let scenario_print (profile, sysconf, cores, seed, tiny_l1) =
  Format.asprintf "%a | %s | %d cores | seed %d | tiny_l1 %b" Workload.pp
    profile sysconf.Sysconf.name cores seed tiny_l1

let run_scenario (profile, sysconf, cores, seed, tiny_l1) =
  match Workload.validate profile with
  | Error _ -> QCheck.assume_fail ()
  | Ok () ->
    let machine = Config.machine ~cores () in
    (* Optionally shrink the L1 drastically so overflow paths (spills,
       switchingMode, back-invalidations) fire constantly. *)
    let machine =
      if tiny_l1 then
        {
          machine with
          Config.protocol =
            {
              machine.Config.protocol with
              Lk_coherence.Protocol.l1_size = 8 * 64 * 2;
              l1_ways = 2;
              llc_size = cores * 32 * 64 * 4;
              llc_ways = 4;
            };
        }
      else machine
    in
    let threads = cores in
    (* Runner.run itself asserts: all threads finish, protocol
       invariants hold, conservation holds, the oracle verifies. *)
    let r =
      Runner.run
        ~options:{ Runner.default_options with seed; machine }
        ~sysconf ~workload:profile ~threads ()
    in
    r.Runner.cycles > 0 && r.Runner.watchdog_rescues = 0

let fuzz =
  QCheck.Test.make ~name:"random workloads x systems: all safety nets hold"
    ~count:120
    (QCheck.make ~print:scenario_print scenario_gen)
    run_scenario

(* A focused variant: maximum-stress settings (every knob that creates
   races at once) with the full LockillerTM system. *)
let stress_lockiller =
  QCheck.Test.make ~name:"lockiller under overflow+fault+contention stress"
    ~count:40
    QCheck.(make Gen.(pair (1 -- 10_000) (2 -- 6)))
    (fun (seed, txs) ->
      let profile =
        {
          Workload.name = "stress";
          txs_per_thread = txs;
          reads_per_tx = (10, 40);
          writes_per_tx = (4, 12);
          hot_lines = 4;
          hot_fraction = 0.7;
          zipf_skew = 0.9;
          shared_lines = 256;
          private_lines = 8;
          compute_per_op = 1;
          pre_compute = (0, 10);
          post_compute = (0, 10);
          fault_prob = 0.3;
    barrier_every = None;
        }
      in
      let machine = Config.machine ~cores:8 () in
      let machine =
        {
          machine with
          Config.protocol =
            {
              machine.Config.protocol with
              Lk_coherence.Protocol.l1_size = 8 * 64 * 2;
              l1_ways = 2;
            };
        }
      in
      List.for_all
        (fun sysconf ->
          let r =
            Runner.run
              ~options:{ Runner.default_options with seed; machine }
              ~sysconf ~workload:profile ~threads:8 ()
          in
          r.Runner.cycles > 0)
        [ Sysconf.lockiller_rwl; Sysconf.lockiller_rwil; Sysconf.lockiller ])

(* Backend differential: a random scenario simulated under the wheel
   event queue and under the reference heap must produce byte-for-byte
   identical result JSON — every cycle count, abort reason and network
   statistic. This is the whole-stack guarantee behind sharing one
   result cache across backends. *)
let backend_differential =
  QCheck.Test.make
    ~name:"wheel and heap event queues give byte-identical results" ~count:10
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun (profile, sysconf, cores, seed, _tiny_l1) ->
      match Workload.validate profile with
      | Error _ -> QCheck.assume_fail ()
      | Ok () ->
        let run backend =
          let options =
            {
              Runner.default_options with
              Runner.seed;
              machine = Config.machine ~cores ();
              queue_backend = backend;
            }
          in
          Runner.result_to_json
            (Runner.run ~options ~sysconf ~workload:profile ~threads:cores ())
        in
        String.equal
          (run Lk_engine.Event_queue.Wheel)
          (run Lk_engine.Event_queue.Heap))

(* Retry budgets of zero and one push every transaction through the
   fallback machinery immediately — a corner the normal suite rarely
   visits. *)
let tiny_retry_budgets =
  QCheck.Test.make ~name:"tiny retry budgets still correct" ~count:30
    QCheck.(make Gen.(pair (0 -- 1) (1 -- 10_000)))
    (fun (max_retries, seed) ->
      let profile =
        {
          Workload.name = "tiny-retry";
          txs_per_thread = 5;
          reads_per_tx = (2, 8);
          writes_per_tx = (1, 4);
          hot_lines = 4;
          hot_fraction = 0.8;
          zipf_skew = 0.5;
          shared_lines = 64;
          private_lines = 8;
          compute_per_op = 1;
          pre_compute = (0, 10);
          post_compute = (0, 10);
          fault_prob = 0.2;
    barrier_every = None;
        }
      in
      List.for_all
        (fun base ->
          let sysconf =
            { base with
              Sysconf.retry =
                { Policy.default_retry with Policy.max_retries } }
          in
          let r =
            Runner.run
              ~options:
                {
                  Runner.default_options with
                  seed;
                  machine = Config.machine ~cores:4 ();
                }
              ~sysconf ~workload:profile ~threads:4 ()
          in
          r.Runner.cycles > 0)
        [ Sysconf.baseline; Sysconf.lockiller_rwi; Sysconf.lockiller ])

let () =
  Alcotest.run "fuzz"
    [
      ( "whole-stack",
        [
          QCheck_alcotest.to_alcotest fuzz;
          QCheck_alcotest.to_alcotest stress_lockiller;
          QCheck_alcotest.to_alcotest backend_differential;
          QCheck_alcotest.to_alcotest tiny_retry_budgets;
        ] );
    ]
