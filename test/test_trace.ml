(* Tests of the trace layer (lib/trace) and the open-loop replay path:
   record/stream round-trips, malformed-input rejection, generator
   determinism, replay determinism across event-queue backends, the
   bounded-memory streaming guarantee, schema versioning and the
   Workload_spec scaling semantics. *)

module Record = Lk_trace.Record
module Stream = Lk_trace.Stream
module Gen = Lk_trace.Gen
module Runner = Lk_sim.Runner
module Config = Lk_sim.Config
module Schema = Lk_sim.Schema
module Workload_source = Lk_sim.Workload_source
module Cli = Lk_sim.Cli
module Sysconf = Lk_lockiller.Sysconf
module Suite = Lk_stamp.Suite
module Workload = Lk_stamp.Workload
module Json = Lk_sim.Json

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

let get = function
  | Ok v -> v
  | Error msg -> Alcotest.failf "unexpected error: %s" msg

let expect_error what = function
  | Ok _ -> Alcotest.failf "%s: expected an error" what
  | Error msg -> msg

(* --- Record ------------------------------------------------------------- *)

let r ?(arrival = 0) ?(core = -1) ?(reads = 4) ?(writes = 2) ?(phase = 0) () =
  { Record.arrival; core; reads; writes; phase }

let test_record_line () =
  let rec_ = r ~arrival:17 ~core:3 ~reads:5 ~writes:1 ~phase:2 () in
  check_string "to_line" "17 3 5 1 2" (Record.to_line rec_);
  check_bool "round-trip" true
    (Record.equal rec_ (get (Record.of_line (Record.to_line rec_))))

let test_record_rejects () =
  let msg = expect_error "3 fields" (Record.of_line "1 2 3") in
  check_string "field count"
    "expected 5 fields (arrival core reads writes phase), got 3" msg;
  let msg = expect_error "garbage" (Record.of_line "1 x 3 4 5") in
  check_string "non-integer" "core is not an integer (got \"x\")" msg;
  let msg = expect_error "negative" (Record.validate (r ~arrival:(-1) ())) in
  check_string "negative arrival" "arrival must be non-negative (got -1)" msg;
  let msg = expect_error "phase" (Record.validate (r ~phase:16 ())) in
  check_bool "phase range" true
    (String.length msg > 0 && msg.[0] = 'p')

(* --- Stream round-trips ------------------------------------------------- *)

let sample_records =
  [
    r ~arrival:0 ~core:(-1) ~reads:4 ~writes:2 ~phase:0 ();
    r ~arrival:0 ~core:0 ~reads:1 ~writes:0 ~phase:0 ();
    r ~arrival:3 ~core:7 ~reads:200 ~writes:100 ~phase:1 ();
    r ~arrival:3 ~core:7 ~reads:0 ~writes:1 ~phase:2 ();
    r ~arrival:50_000_000 ~core:31 ~reads:8 ~writes:8 ~phase:3 ();
  ]

let encode fmt records =
  let file = Filename.temp_file "lktrace_test" ".lkt" in
  let oc = open_out_bin file in
  let w = Stream.writer_to_channel fmt oc in
  List.iter (fun rec_ -> get (Stream.write w rec_)) records;
  close_out oc;
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  Sys.remove file;
  s

let decode_string s =
  let file = Filename.temp_file "lktrace_test" ".lkt" in
  let oc = open_out_bin file in
  output_string oc s;
  close_out oc;
  let ic = open_in_bin file in
  let result =
    match Stream.reader_of_channel ~name:"t" ic with
    | Error _ as e -> e
    | Ok reader -> Stream.fold reader ~init:[] ~f:(fun acc x -> x :: acc)
  in
  close_in ic;
  Sys.remove file;
  Result.map List.rev result

let roundtrip fmt () =
  let decoded = get (decode_string (encode fmt sample_records)) in
  check_int "record count" (List.length sample_records) (List.length decoded);
  List.iter2
    (fun a b ->
      check_bool (Printf.sprintf "record %s" (Record.to_line a)) true
        (Record.equal a b))
    sample_records decoded

let test_header () =
  let text = encode Stream.Text sample_records in
  check_string "text header" "lktrace 1 text"
    (List.hd (String.split_on_char '\n' text));
  let bin = encode Stream.Binary sample_records in
  check_string "binary header" "lktrace 1 bin"
    (List.hd (String.split_on_char '\n' bin))

let test_rejects_garbage () =
  let msg = expect_error "empty" (decode_string "") in
  check_string "empty" "t: empty input, missing trace header" msg;
  let msg = expect_error "not a trace" (decode_string "hello world\n") in
  check_bool "not a trace" true
    (String.length msg > 0
    && String.sub msg 0 16 = "t: not a trace (");
  let msg = expect_error "future version" (decode_string "lktrace 9 bin\n") in
  check_string "future version"
    "t: unsupported trace version 9 (this build reads version 1)" msg;
  let msg =
    expect_error "bad line" (decode_string "lktrace 1 text\n1 2 3\n")
  in
  check_string "bad line"
    "t, line 2: expected 5 fields (arrival core reads writes phase), got 3"
    msg

let test_rejects_truncation () =
  let bin = encode Stream.Binary sample_records in
  (* Chop the last byte: the final record's varints are cut short. *)
  let cut = String.sub bin 0 (String.length bin - 1) in
  let msg = expect_error "truncated" (decode_string cut) in
  check_bool "mid-varint" true
    (String.length msg >= 9
    && String.sub msg (String.length msg - 9) 9 = "d-varint)")

let test_rejects_regression () =
  let msg =
    expect_error "non-monotone"
      (decode_string "lktrace 1 text\n10 0 1 1 0\n5 0 1 1 0\n")
  in
  check_string "non-monotone"
    "t, line 3: arrival cycle 5 is earlier than the previous record's (10)"
    msg;
  (* The writer enforces the same invariant. *)
  let oc = open_out_bin Filename.null in
  let w = Stream.writer_to_channel Stream.Text oc in
  get (Stream.write w (r ~arrival:10 ()));
  let msg =
    expect_error "writer monotone" (Stream.write w (r ~arrival:9 ()))
  in
  close_out oc;
  check_string "writer monotone"
    "record 2: arrival cycle 9 is earlier than the previous record's (10)"
    msg

(* --- Generator ---------------------------------------------------------- *)

let small_profile =
  {
    Gen.default with
    Gen.users = 1000;
    think_time = 50_000.;
    duration = 100_000;
  }

let collect profile ~seed =
  let out = ref [] in
  let n = get (Gen.generate profile ~seed ~emit:(fun x -> out := x :: !out)) in
  (n, List.rev !out)

let test_gen_deterministic () =
  let n1, a = collect small_profile ~seed:42 in
  let n2, b = collect small_profile ~seed:42 in
  check_int "same count" n1 n2;
  check_bool "same records" true (List.for_all2 Record.equal a b);
  let _, c = collect small_profile ~seed:43 in
  check_bool "seed matters" false
    (List.length a = List.length c && List.for_all2 Record.equal a c)

let test_gen_valid_and_sorted () =
  let n, records = collect small_profile ~seed:7 in
  check_bool "nonempty" true (n > 0);
  check_int "count matches" n (List.length records);
  let last = ref (-1) in
  List.iter
    (fun x ->
      get (Record.validate x);
      check_bool "sorted" true (x.Record.arrival >= !last);
      check_bool "horizon" true (x.Record.arrival < small_profile.Gen.duration);
      last := x.Record.arrival)
    records

let test_gen_affinity () =
  let sticky =
    { small_profile with Gen.affinity = Gen.Sticky; cores = 4 }
  in
  let _, records = collect sticky ~seed:5 in
  List.iter
    (fun x ->
      check_bool "core tagged" true (x.Record.core >= 0 && x.Record.core < 4))
    records;
  let _, any = collect small_profile ~seed:5 in
  List.iter (fun x -> check_int "untagged" (-1) x.Record.core) any

let test_gen_validate () =
  let msg =
    expect_error "users" (Gen.validate { Gen.default with Gen.users = 0 })
  in
  check_string "users" "users must be positive (got 0)" msg

(* --- Replay ------------------------------------------------------------- *)

let quick_machine = Config.machine ~cores:4 ~cache:Config.Small ()

let replay_options =
  { Runner.default_options with Runner.machine = quick_machine; oracle = false }

let lockiller = Option.get (Sysconf.find "LockillerTM")
let vacation = Option.get (Suite.find "vacation")

let replay_trace ?(options = replay_options) records ~threads =
  let remaining = ref records in
  let next () =
    match !remaining with
    | [] -> Ok None
    | x :: rest ->
      remaining := rest;
      Ok (Some x)
  in
  Runner.replay ~options ~sysconf:lockiller
    ~open_loop:{ Workload_source.trace_name = "test"; next; body = vacation }
    ~threads ()

let gen_records ?(profile = small_profile) ?(seed = 11) () =
  snd (collect profile ~seed)

let test_replay_basic () =
  let records = gen_records () in
  let result = replay_trace records ~threads:4 in
  let ol = Option.get result.Runner.open_loop in
  check_int "arrivals" (List.length records) ol.Runner.arrivals;
  check_int "completed" (List.length records) ol.Runner.completed;
  check_string "workload label" "test" result.Runner.workload;
  check_bool "backlog seen" true (ol.Runner.max_backlog >= 1);
  check_bool "commits conserved" true
    (result.Runner.htm_commits + result.Runner.stl_commits
     + result.Runner.lock_commits
    = List.length records)

let test_replay_deterministic_backends () =
  let records = gen_records () in
  let wheel = replay_trace records ~threads:4 in
  let heap =
    replay_trace records ~threads:4
      ~options:
        {
          replay_options with
          Runner.queue_backend = Lk_engine.Event_queue.Heap;
        }
  in
  check_string "wheel = heap"
    (Json.to_string (Runner.json_of_result wheel))
    (Json.to_string (Runner.json_of_result heap));
  let again = replay_trace records ~threads:4 in
  check_string "repeatable"
    (Json.to_string (Runner.json_of_result wheel))
    (Json.to_string (Runner.json_of_result again))

let test_replay_respects_affinity () =
  (* All arrivals pinned to core 2: with 4 stream cores everything must
     queue behind one server, so the backlog hits the full remaining
     trace depth at least once if arrivals outpace service. *)
  let records =
    List.map
      (fun x -> { x with Record.core = 2 })
      (gen_records ~profile:{ small_profile with Gen.duration = 20_000 } ())
  in
  let pinned = replay_trace records ~threads:4 in
  let spread =
    replay_trace
      (List.map (fun x -> { x with Record.core = -1 }) records)
      ~threads:4
  in
  let bl result = (Option.get result.Runner.open_loop).Runner.max_backlog in
  check_bool "pinning serialises" true (bl pinned >= bl spread)

let test_replay_rejects_bad_stream () =
  let next () = Error "simulated read failure" in
  match
    Runner.replay ~options:replay_options ~sysconf:lockiller
      ~open_loop:
        { Workload_source.trace_name = "bad"; next; body = vacation }
      ~threads:2 ()
  with
  | exception Failure msg ->
    check_bool "names the stream" true
      (String.length msg > 0
      &&
      let sub = "simulated read failure" in
      let rec find i =
        i + String.length sub <= String.length msg
        && (String.sub msg i (String.length sub) = sub || find (i + 1))
      in
      find 0)
  | _ -> Alcotest.fail "expected Failure on a failing stream"

(* The streaming guarantee: replay memory is independent of trace
   length. Replay a short and a 16x-longer trace through temp files and
   require the major-heap growth attributable to the longer run to stay
   far below what materialising its records would cost. *)
let test_replay_bounded_memory () =
  let write_trace profile ~seed =
    let file = Filename.temp_file "lktrace_mem" ".lkt" in
    let oc = open_out_bin file in
    let w = Stream.writer_to_channel Stream.Binary oc in
    let n =
      get
        (Gen.generate profile ~seed ~emit:(fun x -> get (Stream.write w x)))
    in
    close_out oc;
    (file, n)
  in
  let replay_file file ~threads =
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let reader = get (Stream.reader_of_channel ~name:file ic) in
        let source = Workload_source.of_reader ~body:vacation reader in
        Runner.run_source ~options:replay_options ~sysconf:lockiller ~source
          ~threads ())
  in
  (* Low offered load so the backlog (which legitimately holds memory)
     stays near zero and the probe sees only the streaming machinery. *)
  let profile n =
    {
      Gen.default with
      Gen.users = 200;
      think_time = 200_000.;
      duration = n;
      burst_every = 0;
    }
  in
  let short_file, _ = write_trace (profile 100_000) ~seed:3 in
  let long_file, n_long = write_trace (profile 1_600_000) ~seed:3 in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove short_file;
      Sys.remove long_file)
    (fun () ->
      (* Warm: code paths, caches, the simulator's own tables. The
         probe is retained *live* words, not [heap_words]: the chunk
         pool never shrinks on OCaml 5.1, so its size depends on GC
         pacing hysteresis rather than on what replay actually keeps
         reachable. *)
      let live () =
        Gc.compact ();
        Gc.((stat ()).live_words)
      in
      ignore (replay_file short_file ~threads:4);
      let before = live () in
      ignore (replay_file long_file ~threads:4);
      let after = live () in
      let growth = after - before in
      (* Materialised, n_long records cost >= 6 words each; streaming
         replay must stay well under that. *)
      let budget = n_long in
      check_bool
        (Printf.sprintf "heap growth %d words under budget %d (records %d)"
           growth budget n_long)
        true (growth < budget))

(* --- Schema versioning -------------------------------------------------- *)

let test_schema_check () =
  get (Schema.check Schema.version);
  let msg = expect_error "future" (Schema.check (Schema.version + 1)) in
  check_string "future"
    (Printf.sprintf
       "result schema v%d is newer than this build understands (v%d); \
        upgrade the binary to read it"
       (Schema.version + 1) Schema.version)
    msg;
  let msg = expect_error "past" (Schema.check 1) in
  check_bool "past names the changes" true
    (String.length msg > 0
    &&
    let sub = "predates this build" in
    let rec find i =
      i + String.length sub <= String.length msg
      && (String.sub msg i (String.length sub) = sub || find (i + 1))
    in
    find 0)

let test_result_json_schema_gate () =
  let result = replay_trace (gen_records ()) ~threads:4 in
  let json = Runner.json_of_result result in
  let reencode = function
    | Json.Obj members -> members
    | _ -> Alcotest.fail "result JSON is not an object"
  in
  let members = reencode json in
  check_bool "leads with schema" true
    (match members with ("schema", Json.Int v) :: _ -> v = Schema.version | _ -> false);
  (* Round-trips, including the open-loop block. *)
  let decoded = get (Runner.result_of_json (Json.to_string json)) in
  check_string "round-trip" (Json.to_string json)
    (Json.to_string (Runner.json_of_result decoded));
  let with_schema v =
    Json.Obj
      (List.map
         (function "schema", _ -> ("schema", Json.Int v) | kv -> kv)
         members)
  in
  let msg =
    expect_error "future schema"
      (Runner.result_of_json (Json.to_string (with_schema (Schema.version + 7))))
  in
  check_bool "future rejected" true
    (msg
    = Printf.sprintf
        "result schema v%d is newer than this build understands (v%d); \
         upgrade the binary to read it"
        (Schema.version + 7) Schema.version);
  let without_schema =
    Json.Obj (List.filter (fun (k, _) -> k <> "schema") members)
  in
  let msg =
    expect_error "missing schema"
      (Runner.result_of_json (Json.to_string without_schema))
  in
  check_string "missing rejected"
    (Printf.sprintf
       "missing \"schema\" member (result predates schema v%d); re-run to \
        regenerate"
       Schema.version)
    msg

(* --- Workload specs ----------------------------------------------------- *)

let test_spec_of_name () =
  let s = get (Suite.spec_of_name "kmeans+") in
  check_string "app" "kmeans" s.Suite.app;
  check_bool "high" true (s.Suite.size = Suite.High);
  let s = get (Suite.spec_of_name "genome") in
  check_bool "low" true (s.Suite.size = Suite.Low);
  ignore (expect_error "empty" (Suite.spec_of_name ""));
  ignore (expect_error "bare plus" (Suite.spec_of_name "+"))

let test_spec_scaling_matches_legacy () =
  (* The txsize experiment used to scale footprints inline with integer
     arithmetic: reads' = max 1 (lo * m / 4). The spec path must agree
     for every machine word size the experiment sweeps. *)
  let base = Option.get (Suite.find "vacation") in
  List.iter
    (fun m ->
      let spec =
        Suite.spec ~tag:true
          ~rw_scale:(float_of_int m /. 4.0)
          ~txs_scale:(4.0 /. float_of_int m)
          "vacation"
      in
      let scaled = get (Suite.realise spec) in
      let legacy (lo, hi) = (max 1 (lo * m / 4), max 1 (hi * m / 4)) in
      check_bool
        (Printf.sprintf "reads at m=%d" m)
        true
        (scaled.Workload.reads_per_tx = legacy base.Workload.reads_per_tx);
      check_bool
        (Printf.sprintf "writes at m=%d" m)
        true
        (scaled.Workload.writes_per_tx = legacy base.Workload.writes_per_tx);
      check_int
        (Printf.sprintf "txs at m=%d" m)
        (max 4 (base.Workload.txs_per_thread * 4 / m))
        scaled.Workload.txs_per_thread)
    [ 2; 4; 8; 16; 32 ];
  check_string "m=4 keeps the tagged name" "vacation-x1"
    (get (Suite.realise (Suite.spec ~tag:true "vacation"))).Workload.name

let test_spec_rejects () =
  ignore
    (expect_error "unknown app" (Suite.realise (Suite.spec "nonesuch")));
  ignore
    (expect_error "bad scale"
       (Suite.realise (Suite.spec ~rw_scale:0.0 "vacation")))

(* --- Shared CLI validators ---------------------------------------------- *)

let test_cli_validators () =
  check_int "positive" 3 (get (Cli.positive_int ~what:"--jobs" "3"));
  check_string "zero" "--jobs must be positive (got 0)"
    (expect_error "zero" (Cli.positive_int ~what:"--jobs" "0"));
  check_string "garbage" "--jobs must be an integer (got \"x\")"
    (expect_error "garbage" (Cli.positive_int ~what:"--jobs" "x"));
  check_int "non-negative" 0 (get (Cli.non_negative_int ~what:"--n" "0"));
  check_string "unknown profile" "unknown cache profile \"huge\""
    (expect_error "profile" (Cli.cache_profile "huge"));
  check_string "empty path" "output path must not be empty"
    (expect_error "empty path" (Cli.writable_path ""))

let () =
  Alcotest.run "trace"
    [
      ( "record",
        [
          Alcotest.test_case "line round-trip" `Quick test_record_line;
          Alcotest.test_case "rejects" `Quick test_record_rejects;
        ] );
      ( "stream",
        [
          Alcotest.test_case "text round-trip" `Quick (roundtrip Stream.Text);
          Alcotest.test_case "binary round-trip" `Quick
            (roundtrip Stream.Binary);
          Alcotest.test_case "headers" `Quick test_header;
          Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
          Alcotest.test_case "rejects truncation" `Quick
            test_rejects_truncation;
          Alcotest.test_case "rejects regression" `Quick
            test_rejects_regression;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "valid and sorted" `Quick
            test_gen_valid_and_sorted;
          Alcotest.test_case "affinity" `Quick test_gen_affinity;
          Alcotest.test_case "validate" `Quick test_gen_validate;
        ] );
      ( "replay",
        [
          Alcotest.test_case "basic" `Quick test_replay_basic;
          Alcotest.test_case "backends agree" `Quick
            test_replay_deterministic_backends;
          Alcotest.test_case "affinity" `Quick test_replay_respects_affinity;
          Alcotest.test_case "bad stream" `Quick
            test_replay_rejects_bad_stream;
          Alcotest.test_case "bounded memory" `Slow
            test_replay_bounded_memory;
        ] );
      ( "schema",
        [
          Alcotest.test_case "check" `Quick test_schema_check;
          Alcotest.test_case "result gate" `Quick
            test_result_json_schema_gate;
        ] );
      ( "spec",
        [
          Alcotest.test_case "of_name" `Quick test_spec_of_name;
          Alcotest.test_case "legacy scaling" `Quick
            test_spec_scaling_matches_legacy;
          Alcotest.test_case "rejects" `Quick test_spec_rejects;
        ] );
      ( "cli",
        [ Alcotest.test_case "validators" `Quick test_cli_validators ] );
    ]
