(** Bounded exhaustive exploration of event interleavings.

    Stateless (replay-based) model checking in the Murphi/CHESS
    tradition: every run re-executes the scenario from scratch under a
    decision prefix, and depth-first search enumerates all alternative
    choices at every decision point reached — a decision point being
    any moment where two or more pending events are runnable in the
    same cycle. Choice 0 is the production order, so the first run of
    the search is exactly the default schedule.

    Termination comes from the scenarios being finite programs (every
    run makes finitely many decisions) plus the [max_schedules] bound.
    State fingerprints ({!Harness.fingerprint}) prune branches: once a
    decision point's fingerprint has been seen, all its continuations
    are already covered from the first visit. The fingerprint hashes
    the architectural state and the pending-event {e count} but not the
    pending thunks themselves (they are opaque closures), so pruning is
    heuristic — see docs/CHECKING.md for why this is a sound trade for
    a checker (it can only make the search miss schedules, never report
    false violations, and every reported violation carries a replayable
    schedule). *)

type verdict =
  | Exhausted of { schedules : int; states : int; max_decisions : int }
      (** Fixpoint: every reachable interleaving (modulo fingerprint
          pruning) was executed and no check failed. *)
  | Violation of {
      schedule : Schedule.t;  (** Shrunk, replayable counterexample. *)
      violation : Invariant.violation;
      schedules : int;  (** Runs executed before the first failure. *)
    }
  | Bounded of { schedules : int; states : int }
      (** [max_schedules] reached without a violation. *)

val explore :
  ?max_schedules:int ->
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  Scenario.t ->
  verdict
(** Search the scenario's schedule space (default bound: 20_000 runs).
    Deterministic: same scenario, same verdict. *)

val shrink :
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  Scenario.t ->
  violation:Invariant.violation ->
  Schedule.t ->
  Schedule.t
(** Minimise a failing schedule for this scenario, preserving the
    violated invariant (by name). *)

val pp_verdict : Format.formatter -> verdict -> unit
