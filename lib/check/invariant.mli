(** Invariant catalogue over live simulator state.

    Three families of checks, all side-effect free and evaluable at any
    event boundary of a run:

    - {b state predicates} ({!check_state}, itemised in {!registry}) —
      properties that must hold of the architectural state between any
      two events: directory/L1 agreement and SWMR (delegated to
      {!Lk_coherence.Protocol.check_invariants}), every speculative
      write buffered by an HTM transaction backed by an L1-resident
      [tx_write] line, at most one core in HTMLock (TL/STL) mode, and
      lock-word sanity (TTAS value is 0/1, at most one believer, word
      set while held).
    - {b event predicates} ({!check_event}) — properties of a ledger
      event given the state at emission time: commits only from live
      HTM transactions (the dirty-commit check), [hlbegin]/[hlend] only
      from lock-transaction modes, lock-acquire only when the lock is
      held, park only when actually parked.
    - {b end-of-run checks} ({!check_end}) — properties of a quiescent
      finished run: every core idle, no buffered speculation, no parked
      cores, zero watchdog rescues (the no-lost-wakeup check — a
      per-state version would false-positive on wake messages still in
      network flight, so it is deliberately an end-of-run property),
      wake table drained, arbiter and signatures released, lock free,
      plus a final {!check_state} and the serializability oracle.

    Checks never mutate the runtime; they only read the introspection
    accessors of {!Lk_lockiller.Runtime}. *)

type violation = { invariant : string; detail : string }
(** [invariant] is the stable name of the violated predicate (one of
    {!names}, or "event-mode" / "dirty-commit" / "wakeup" /
    "lost-wakeup" / "quiescence" / "serializability" for the event and
    end-of-run families); [detail] is a human-readable diagnosis. *)

val pp_violation : Format.formatter -> violation -> unit

val violation_to_string : violation -> string

val registry : (string * (Lk_lockiller.Runtime.t -> violation option)) list
(** The named state predicates, in evaluation order. *)

val names : string list
(** Names of the state predicates in {!registry}. *)

val check_state : Lk_lockiller.Runtime.t -> violation option
(** First violated state predicate, if any. Sound at any point where
    no event is mid-dispatch (the protocol mutates all metadata for one
    request within a single event). *)

val check_event :
  Lk_lockiller.Runtime.t ->
  kind:Lk_engine.Ledger.kind ->
  core:int ->
  arg:int ->
  violation option
(** Validate one ledger event against the state at emission time.
    Intended as a {!Lk_engine.Ledger.set_sink} body. *)

val check_end : Lk_lockiller.Runtime.t -> violation list
(** All end-of-run violations of a run whose threads have finished.
    Runs the serializability oracle when one is enabled. *)
