(* lint: allow hashtbl — the visited-state set is keyed by state
   fingerprints from the model checker's own hash; exploration is an
   offline checker, not the simulator's inner loop. *)

type verdict =
  | Exhausted of { schedules : int; states : int; max_decisions : int }
  | Violation of {
      schedule : Schedule.t;
      violation : Invariant.violation;
      schedules : int;
    }
  | Bounded of { schedules : int; states : int }

exception Stop of verdict

let same_failure (want : Invariant.violation) (r : Harness.run) =
  match r.status with
  | Harness.Violated v -> v.Invariant.invariant = want.Invariant.invariant
  | Harness.Livelocked _ -> want.Invariant.invariant = "livelock"
  | Harness.Completed -> false

let shrink ?cycle_limit ?inject_bug scenario ~violation schedule =
  Schedule.shrink
    ~still_fails:(fun s ->
      same_failure violation
        (Harness.replay ?cycle_limit ?inject_bug ~schedule:s scenario))
    schedule

let explore ?(max_schedules = 20_000) ?cycle_limit ?inject_bug scenario =
  let visited = Hashtbl.create 4096 in
  let schedules = ref 0 in
  let max_decisions = ref 0 in
  let failed r =
    match r.Harness.status with
    | Harness.Completed -> None
    | Harness.Violated v -> Some v
    | Harness.Livelocked msg ->
      Some { Invariant.invariant = "livelock"; detail = msg }
  in
  let rec dfs prefix =
    if !schedules >= max_schedules then
      raise
        (Stop (Bounded { schedules = !schedules; states = Hashtbl.length visited }));
    let r = Harness.replay ?cycle_limit ?inject_bug ~schedule:prefix scenario in
    incr schedules;
    let n = Array.length r.Harness.decisions in
    if n > !max_decisions then max_decisions := n;
    (match failed r with
    | Some v ->
      let schedule =
        shrink ?cycle_limit ?inject_bug scenario ~violation:v
          (Harness.choices r)
      in
      raise (Stop (Violation { schedule; violation = v; schedules = !schedules }))
    | None -> ());
    (* Branch on every decision point this run passed beyond the forced
       prefix, stopping at the first already-visited state: every
       continuation from an explored state has been (or will be)
       covered from its first visit. *)
    let i = ref (Array.length prefix) in
    let stop = ref false in
    while (not !stop) && !i < n do
      let fp = r.Harness.fingerprints.(!i) in
      if Hashtbl.mem visited fp then stop := true
      else begin
        Hashtbl.add visited fp ();
        let _, arity = r.Harness.decisions.(!i) in
        for c = 1 to arity - 1 do
          let branch = Array.make (!i + 1) 0 in
          for j = 0 to !i - 1 do
            branch.(j) <- fst r.Harness.decisions.(j)
          done;
          branch.(!i) <- c;
          dfs branch
        done
      end;
      incr i
    done
  in
  match dfs [||] with
  | () ->
    Exhausted
      {
        schedules = !schedules;
        states = Hashtbl.length visited;
        max_decisions = !max_decisions;
      }
  | exception Stop v -> v

let pp_verdict ppf = function
  | Exhausted { schedules; states; max_decisions } ->
    Format.fprintf ppf
      "exhausted: %d schedules, %d distinct decision states, deepest run \
       made %d choices"
      schedules states max_decisions
  | Violation { schedule; violation; schedules } ->
    Format.fprintf ppf "violation after %d schedules at %a: %a" schedules
      Schedule.pp schedule Invariant.pp_violation violation
  | Bounded { schedules; states } ->
    Format.fprintf ppf
      "bounded out after %d schedules (%d distinct states) with no violation"
      schedules states
