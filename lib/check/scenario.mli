(** Canned micro-scenarios for the correctness checkers.

    Each scenario is a tiny machine description — a system
    configuration, a 2–3 thread program over one or two cache lines,
    runtime cost overrides and the expected committed values — small
    enough for the bounded explorer to enumerate every event
    interleaving, yet together covering the interesting mechanisms:
    read-forward downgrades, conflict aborts, park/wake, the commit
    window, the fallback lock, CGL, HTMLock and the hybrid-TM
    software path.

    Bodies only touch byte addresses ≥ 256: the fallback/CGL lock
    lives at byte 0 (and xbegin subscribes to its line), the global
    version clock on line 2 and the software-mode gate on line 3, so
    data addresses must stay off the first four lines. *)

type t = {
  name : string;  (** Stable identifier ([find] key). *)
  descr : string;  (** One-line description for listings. *)
  sysconf : Lk_lockiller.Sysconf.t;
  program : Lk_cpu.Program.t;  (** One thread per core. *)
  costs : Lk_lockiller.Runtime.costs;
  expected : (int * int) list;
      (** Committed [(address, value)] pairs a correct run must end
          with, regardless of schedule. *)
  shards : int option;
      (** Directory shard count for the harness machine ([None] = one
          shard per tile, the historical machine). [Some n] with
          [n < cores] exercises the hierarchical multi-bank directory:
          several tiles share each LLC slice and request FIFO. *)
  domains : int option;
      (** Partition count for the sequenced multi-queue kernel ([None]
          = 1, the single-queue kernel). With [Some n > 1] the harness
          installs the block tile map and switches on
          {!Lk_engine.Sim}'s partition-ownership race detector —
          violations surface as ["race"] invariant failures, so the
          explorer can shrink a schedule that provokes one. *)
}

val read_forward : t
val incr_incr : t
val two_lines : t
val park_wake : t
val commit_race : t
(** The widened-commit-window scenario; the one that exposes
    [Dirty_commit]. *)

val fallback_lock : t
val cgl : t
val htmlock : t
val trio : t

val sharded_trio : t
(** The two-shard hierarchical-directory scenario: three tiles, two
    LLC banks, traffic homed at both shards plus one cross-shard
    transaction. *)

val hybrid : t
(** The hybrid-TM scenario ({!Lk_lockiller.Sysconf.hytm_gv1}): a
    faulting transaction exhausts its HTM budget and commits on the
    TL2-style software path while the second core races it with HTM
    increments of the same line — exercising the software-mode gate,
    the global version clock and the HW/SW conflict rules. *)

val partitioned : t
(** {!read_forward} split across two partitions: every miss from
    core 1 crosses to the home directory on tile 0, the path the
    injected cross-partition-write mutation corrupts. *)

val partitioned_wake : t
(** {!park_wake} split across two partitions: the winner's commit-time
    wake-up crosses the boundary with a full NoC latency, the hop the
    injected short-hop mutation undercuts. *)

val all : t list
(** Every scenario, in a stable order ([make check] runs these). *)

val find : string -> t option
(** Case-insensitive lookup by name. *)
