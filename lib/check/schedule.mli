(** Schedules and counterexample shrinking.

    A schedule is the decision vector of a {!Harness} run: entry [i] is
    the insertion rank fired at the [i]-th point where several events
    were runnable in the same cycle. The empty schedule is the
    production schedule (always fire the oldest runnable event), and
    replay treats positions beyond the vector as 0, so a schedule is
    fully described by its non-default choices. *)

type t = int array

val to_string : t -> string
(** ["[1 0 2]"]. *)

val pp : Format.formatter -> t -> unit

val strip_trailing_zeros : t -> t
(** Drop trailing default choices — replay semantics are unchanged. *)

val shrink : still_fails:(t -> bool) -> t -> t
(** Minimise a failing schedule: truncate to the shortest failing
    prefix (binary search, result re-verified), then greedily revert
    each remaining non-default choice to 0 when the failure survives.
    [still_fails] must be a pure replay predicate ("does this schedule
    still exhibit the same violation"); it is called O(log n + n)
    times. The result still fails. *)
