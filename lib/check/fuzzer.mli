(** Randomized schedule fuzzing.

    Where the {!Explorer} exhausts small interleaving spaces, the
    fuzzer samples larger ones: each run draws every same-cycle
    ordering decision uniformly from a seeded PRNG (in the spirit of
    probabilistic concurrency testing), so a fixed [seed] makes the
    whole campaign reproducible — run [i] uses the PRNG seeded with
    [(seed, i)], and a reported failure names the run that found it.

    Failures are shrunk with {!Explorer.shrink} before being reported,
    so the schedule in {!Failed} is a minimal replayable
    counterexample, not the raw random walk. *)

type outcome =
  | Passed of { runs : int; decisions : int }
      (** Every run completed cleanly; [decisions] is the total number
          of scheduling choices exercised (a coverage proxy). *)
  | Failed of {
      run : int;  (** Index of the failing run (0-based). *)
      seed : int;
      schedule : Schedule.t;  (** Shrunk counterexample. *)
      violation : Invariant.violation;
    }

val fuzz :
  ?runs:int ->
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  seed:int ->
  Scenario.t ->
  outcome
(** Run [runs] (default 200) randomized schedules of the scenario. *)

val pp_outcome : Format.formatter -> outcome -> unit
