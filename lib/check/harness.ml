module Sim = Lk_engine.Sim
module Ledger = Lk_engine.Ledger
module Topology = Lk_mesh.Topology
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Coreset = Lk_coherence.Coreset
module L1_cache = Lk_coherence.L1_cache
module Llc = Lk_coherence.Llc
module Types = Lk_coherence.Types
module Store = Lk_htm.Store
module Txstate = Lk_htm.Txstate
module Runtime = Lk_lockiller.Runtime
module Core = Lk_cpu.Core
module Accounting = Lk_cpu.Accounting

exception Violation_found of Invariant.violation

type status =
  | Completed
  | Violated of Invariant.violation
  | Livelocked of string

type run = {
  status : status;
  decisions : (int * int) array;
  fingerprints : int array;
  cycles : int;
  events : int;
}

let default_cycle_limit = 200_000

(* --- State fingerprinting ---------------------------------------------- *)

(* Hash of the architecturally visible state, used by the explorer to
   deduplicate decision points. Pending-event thunks are opaque, so the
   architectural state alone under-distinguishes; folding in the
   pending-event count (and, at the caller, the decision index's
   position implicitly via DFS structure) keeps dedup conservative
   enough in practice. See docs/CHECKING.md for the soundness caveat. *)
let fingerprint rt ~pending =
  let proto = Runtime.protocol rt in
  let store = Runtime.store rt in
  let cores = (Protocol.config proto).Protocol.cores in
  let h = ref 0x9E3779B9 in
  let add x = h := ((!h * 1000003) lxor x) land max_int in
  let add_pairs pairs =
    List.iter
      (fun (a, v) ->
        add a;
        add v)
      (List.sort
         (fun (a, _) (b, _) -> Int.compare a b)
         pairs)
  in
  for c = 0 to cores - 1 do
    L1_cache.iter (Protocol.l1 proto c) (fun v ->
        add v.L1_cache.line;
        add
          ((match v.L1_cache.state with
           | L1_cache.M -> 0
           | L1_cache.E -> 1
           | L1_cache.S -> 2)
          lor (if v.L1_cache.dirty then 4 else 0)
          lor (if v.L1_cache.tx_read then 8 else 0)
          lor if v.L1_cache.tx_write then 16 else 0));
    let x = Runtime.ctx rt c in
    add
      (match x.Txstate.mode with
      | Txstate.Idle -> 0
      | Txstate.Htm -> 1
      | Txstate.Tl -> 2
      | Txstate.Stl -> 3
      | Txstate.Sw -> 4);
    add x.Txstate.rv;
    add x.Txstate.epoch;
    add x.Txstate.insts;
    add x.Txstate.progress;
    add x.Txstate.attempt;
    add x.Txstate.tx_seq;
    add (if x.Txstate.switch_tried then 1 else 0);
    add (if Runtime.is_parked rt c then 1 else 0);
    add (if Runtime.has_pending_wake rt c then 1 else 0);
    List.iter add (Runtime.wake_waiters rt ~rejector:c);
    let buf = ref [] in
    Store.iter_buffered store ~core:c (fun a v -> buf := (a, v) :: !buf);
    add_pairs !buf;
    (* Software-path bookkeeping (read/write sets, commit-time lock
       ownership) lives outside committed memory but drives future
       validation outcomes — fold it in too. *)
    let sw = Runtime.sw_path rt in
    Lk_htm.Sw_path.iter_reads sw ~core:c (fun slot ver ->
        add slot;
        add ver);
    Lk_htm.Sw_path.iter_writes sw ~core:c add
  done;
  (let sw = Runtime.sw_path rt in
   for s = 0 to Lk_htm.Sw_path.slots - 1 do
     match Lk_htm.Sw_path.owner sw s with
     | None -> ()
     | Some c ->
       add s;
       add c
   done);
  Llc.iter (Protocol.llc proto) (fun v ->
      add v.Llc.line;
      add (if v.Llc.dirty then 1 else 0);
      match v.Llc.dir with
      | Llc.Owner o -> add (3 + o)
      | Llc.Sharers s ->
        add 1;
        List.iter add (Coreset.elements s));
  let mem = ref [] in
  Store.iter_committed store (fun a v -> mem := (a, v) :: !mem);
  add_pairs !mem;
  (match Runtime.arbiter_holder rt with None -> add 613 | Some c -> add c);
  (match Runtime.sig_owner rt with None -> add 617 | Some c -> add c);
  add pending;
  !h

(* --- One controlled run ------------------------------------------------ *)

let run ?(check_states = true) ?(cycle_limit = default_cycle_limit)
    ?inject_bug ~choose (scenario : Scenario.t) =
  let threads = Array.length scenario.Scenario.program in
  let topo = Topology.create ~rows:1 ~cols:threads in
  (* Partitioned scenarios run on the sequenced multi-queue kernel with
     the block tile map and the ownership race detector armed — the
     same configuration `--pdes-domains` uses, scaled down to a model
     the explorer can enumerate. *)
  let domains =
    match scenario.Scenario.domains with
    | None -> 1
    | Some d when d < 1 -> 1
    | Some d -> Int.min d threads
  in
  let sim = Sim.create ~domains () in
  if domains > 1 then begin
    let part = Lk_engine.Partition.create ~items:threads ~domains in
    Sim.set_tile_map sim (Lk_engine.Partition.of_item part);
    Sim.set_race_check sim true
  end;
  let net = Network.create topo in
  let cfg =
    {
      Protocol.default_config with
      Protocol.cores = threads;
      l1_size = 1024;
      l1_ways = 2;
      l1_hit_latency = 1;
      llc_size = threads * 4096;
      llc_ways = 4;
      llc_hit_latency = 3;
      mem_latency = 10;
      dir_shards =
        (match scenario.Scenario.shards with None -> 0 | Some s -> s);
    }
  in
  let proto = Protocol.create ~sim ~network:net cfg in
  let store = Store.create ~cores:threads in
  let rt =
    Runtime.create ~costs:scenario.Scenario.costs ?inject_bug ~protocol:proto
      ~store ~sysconf:scenario.Scenario.sysconf ~lock_addr:0 ()
  in
  ignore (Runtime.enable_oracle rt);
  let ledger = Runtime.enable_ledger ~capacity:4096 rt in
  let decisions = ref [] in
  let fps = ref [] in
  let ndec = ref 0 in
  Sim.set_chooser sim
    (Some
       (fun arity ->
         let fp = fingerprint rt ~pending:(Sim.pending sim) in
         let c = choose ~index:!ndec ~arity in
         let c = if c < 0 || c >= arity then 0 else c in
         decisions := (c, arity) :: !decisions;
         fps := fp :: !fps;
         incr ndec;
         c));
  let race_violation () =
    if Sim.race_count sim = 0 then None
    else
      match Sim.race_violations sim with
      | [] -> None
      | v :: _ ->
        Some
          {
            Invariant.invariant = "race";
            detail = Format.asprintf "%a" Sim.pp_race_violation v;
          }
  in
  if check_states || domains > 1 then
    Sim.set_observer sim
      (Some
         (fun () ->
           (* Race findings first: the offending event just ran, so the
              decision trace in hand is the shortest prefix that
              provokes it — exactly what the explorer wants to shrink. *)
           (match race_violation () with
           | Some v -> raise (Violation_found v)
           | None -> ());
           if check_states then
             match Invariant.check_state rt with
             | None -> ()
             | Some v -> raise (Violation_found v)));
  Ledger.set_sink ledger
    (Some
       (fun ~time:_ ~core ~kind ~arg ->
         match Invariant.check_event rt ~kind ~core ~arg with
         | None -> ()
         | Some v -> raise (Violation_found v)));
  let finished = ref 0 in
  let acct = Accounting.create ~cores:threads in
  let cores =
    Array.mapi
      (fun i thread ->
        Core.spawn ~runtime:rt ~core:i ~thread ~accounting:acct
          ~on_done:(fun () -> incr finished)
          ())
      scenario.Scenario.program
  in
  Array.iter Core.start cores;
  let check_expected () =
    List.find_map
      (fun (addr, want) ->
        let got = Store.committed store addr in
        if got = want then None
        else
          Some
            {
              Invariant.invariant = "conservation";
              detail =
                (* end-of-run diagnostic, not simulation-hot *)
                Printf.sprintf (* lint-ok *)
                  "address %#x committed %d but a correct run commits %d" addr
                  got want;
            })
      scenario.Scenario.expected
  in
  let status =
    match Sim.run ~limit:cycle_limit sim with
    | () when race_violation () <> None -> (
      match race_violation () with
      | Some v -> Violated v
      | None -> assert false)
    | () ->
      if !finished < threads then
        Livelocked
          (string_of_int (threads - !finished)
          ^ " of "
          ^ string_of_int threads
          ^ " threads unfinished at the cycle limit")
      else begin
        match Invariant.check_end rt with
        | v :: _ -> Violated v
        | [] -> (
          match check_expected () with
          | Some v -> Violated v
          | None -> Completed)
      end
    | exception Violation_found v -> Violated v
    | exception Sim.Stalled msg -> Livelocked msg
    | exception (Failure msg | Invalid_argument msg) ->
      Violated { Invariant.invariant = "crash"; detail = msg }
  in
  {
    status;
    decisions = Array.of_list (List.rev !decisions);
    fingerprints = Array.of_list (List.rev !fps);
    cycles = Sim.now sim;
    events = Sim.events sim;
  }

let choices r = Array.map fst r.decisions

let replay ?check_states ?cycle_limit ?inject_bug ~schedule scenario =
  run ?check_states ?cycle_limit ?inject_bug
    ~choose:(fun ~index ~arity ->
      if index < Array.length schedule then
        let c = schedule.(index) in
        if c >= arity then 0 else c
      else 0)
    scenario

let default ?check_states ?cycle_limit ?inject_bug scenario =
  replay ?check_states ?cycle_limit ?inject_bug ~schedule:[||] scenario
