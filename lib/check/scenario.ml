module Program = Lk_cpu.Program
module Runtime = Lk_lockiller.Runtime
module Sysconf = Lk_lockiller.Sysconf

type t = {
  name : string;
  descr : string;
  sysconf : Sysconf.t;
  program : Program.t;
  costs : Runtime.costs;
  expected : (int * int) list;
  shards : int option;
  domains : int option;
}

(* Byte addresses used by scenario bodies. The fallback/CGL lock lives
   at byte 0, the global version clock on line 2 and the software-mode
   gate on line 3, so data must stay off the first four lines
   (bytes 0..255). *)
let a0 = 256

let a1 = 320

let costs = Runtime.default_costs

(* Widened commit window: xend's bookkeeping takes this many cycles, so
   a concurrent kill has a real chance to land between the commit
   request and its completion. That window is exactly what the
   dirty-commit epoch guard protects. *)
let slow_commit = { costs with Runtime.commit_cost = 40 }

let tx ?(pre = 2) ?(post = 1) ops = { Program.pre_compute = pre; ops; post_compute = post }

let incr_thread ?pre ?post ~txs addr =
  List.init txs (fun _ -> tx ?pre ?post [ Program.Incr addr ])

let read_forward =
  {
    name = "read-forward";
    descr = "an exclusive owner is read by a second core (owner must \
             downgrade to S)";
    sysconf = Sysconf.baseline;
    program =
      [|
        [ tx ~pre:0 [ Program.Incr a0; Program.Compute 4 ] ];
        [ tx ~pre:40 [ Program.Read a0; Program.Compute 4 ] ];
      |];
    costs;
    expected = [ (a0, 1) ];
    shards = None;
    domains = None;
  }

let incr_incr =
  {
    name = "incr-incr";
    descr = "two cores increment the same line under best-effort HTM";
    sysconf = Sysconf.baseline;
    program =
      [| incr_thread ~pre:0 ~txs:2 a0; incr_thread ~pre:3 ~txs:2 a0 |];
    costs;
    expected = [ (a0, 4) ];
    shards = None;
    domains = None;
  }

let two_lines =
  {
    name = "two-lines";
    descr = "opposite-order two-line transactions (classic conflict \
             cycle) under recovery";
    sysconf = Sysconf.lockiller_rwi;
    program =
      [|
        [ tx ~pre:0 [ Program.Incr a0; Program.Incr a1 ] ];
        [ tx ~pre:0 [ Program.Incr a1; Program.Incr a0 ] ];
      |];
    costs;
    expected = [ (a0, 2); (a1, 2) ];
    shards = None;
    domains = None;
  }

let park_wake =
  {
    name = "park-wake";
    descr = "wait-wakeup rejects park the loser; the winner's commit \
             must wake it";
    sysconf = Sysconf.lockiller_rwi;
    program =
      [| incr_thread ~pre:0 ~txs:2 a0; incr_thread ~pre:1 ~txs:2 a0 |];
    costs;
    expected = [ (a0, 4) ];
    shards = None;
    domains = None;
  }

let commit_race =
  {
    name = "commit-race";
    descr = "conflicting increments with a widened commit window \
             (stresses the killed-during-commit guard)";
    sysconf = Sysconf.baseline;
    program =
      [| incr_thread ~pre:0 ~txs:3 a0; incr_thread ~pre:2 ~txs:3 a0 |];
    costs = slow_commit;
    expected = [ (a0, 6) ];
    shards = None;
    domains = None;
  }

let fallback_lock =
  {
    name = "fallback-lock";
    descr = "a faulting body exhausts HTM retries and commits via the \
             fallback lock while the other core speculates";
    sysconf = Sysconf.baseline;
    program =
      [|
        [ tx ~pre:0 [ Program.Incr a0; Program.Fault ] ];
        incr_thread ~pre:5 ~txs:2 a0;
      |];
    costs;
    expected = [ (a0, 3) ];
    shards = None;
    domains = None;
  }

let cgl =
  {
    name = "cgl";
    descr = "coarse-grained locking baseline: every section takes the \
             TTAS lock";
    sysconf = Sysconf.cgl;
    program =
      [| incr_thread ~pre:0 ~txs:2 a0; incr_thread ~pre:1 ~txs:2 a0 |];
    costs;
    expected = [ (a0, 4) ];
    shards = None;
    domains = None;
  }

let htmlock =
  {
    name = "htmlock";
    descr = "full LockillerTM: a faulting transaction becomes a lock \
             transaction (TL) concurrent with HTM";
    sysconf = Sysconf.lockiller;
    program =
      [|
        [ tx ~pre:0 [ Program.Incr a0; Program.Fault; Program.Incr a1 ] ];
        incr_thread ~pre:4 ~txs:2 a0;
      |];
    costs;
    expected = [ (a0, 3); (a1, 1) ];
    shards = None;
    domains = None;
  }

let trio =
  {
    name = "trio";
    descr = "three cores contend on one line under wait-wakeup \
             (multi-waiter drains)";
    sysconf = Sysconf.lockiller_rwi;
    program =
      [|
        incr_thread ~pre:0 ~txs:2 a0;
        incr_thread ~pre:1 ~txs:2 a0;
        incr_thread ~pre:2 ~txs:2 a0;
      |];
    costs;
    expected = [ (a0, 6) ];
    shards = None;
    domains = None;
  }

let sharded_trio =
  {
    name = "sharded-trio";
    descr = "two-shard directory on three tiles: per-shard traffic \
             plus a cross-shard transaction";
    sysconf = Sysconf.lockiller_rwi;
    program =
      [|
        incr_thread ~pre:0 ~txs:2 a0;
        incr_thread ~pre:1 ~txs:2 a1;
        [ tx ~pre:2 [ Program.Incr a0; Program.Incr a1 ] ];
      |];
    costs;
    expected = [ (a0, 3); (a1, 3) ];
    shards = Some 2;
    domains = None;
  }

let hybrid =
  {
    name = "hybrid";
    descr = "HyTM: a faulting transaction falls to the TL2 software \
             path while the other core keeps attempting HTM on the \
             same line";
    sysconf = Sysconf.hytm_gv1;
    program =
      [|
        [ tx ~pre:0 [ Program.Incr a0; Program.Fault ] ];
        incr_thread ~pre:4 ~txs:2 a0;
      |];
    costs;
    expected = [ (a0, 3) ];
    shards = None;
    domains = None;
  }

(* Partitioned twins for the race detector: the same programs split
   across two partitions of the sequenced multi-queue kernel, detector
   on. [partitioned] sends every miss from core 1 across the partition
   boundary to the home directory (tile 0) — the path the injected
   cross-partition-write mutation corrupts; [partitioned-wake] parks a
   loser in the other partition, so the winner's commit-time wake-up
   must cross with a full NoC latency — the hop the injected short-hop
   mutation undercuts. *)
let partitioned =
  {
    read_forward with
    name = "partitioned";
    descr = "read-forward split across two partitions: every miss \
             crosses to the home shard under the race detector";
    domains = Some 2;
  }

let partitioned_wake =
  {
    park_wake with
    name = "partitioned-wake";
    descr = "park-wake split across two partitions: the commit's \
             wake-up crosses the boundary under the race detector";
    domains = Some 2;
  }

let all =
  [
    read_forward;
    incr_incr;
    two_lines;
    park_wake;
    commit_race;
    fallback_lock;
    cgl;
    htmlock;
    trio;
    sharded_trio;
    hybrid;
    partitioned;
    partitioned_wake;
  ]

let find name =
  let name = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.name = name) all
