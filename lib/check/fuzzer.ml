type outcome =
  | Passed of { runs : int; decisions : int }
  | Failed of {
      run : int;
      seed : int;
      schedule : Schedule.t;
      violation : Invariant.violation;
    }

let fuzz ?(runs = 200) ?cycle_limit ?inject_bug ~seed scenario =
  let decisions = ref 0 in
  let rec go i =
    if i >= runs then Passed { runs; decisions = !decisions }
    else begin
      let st = Random.State.make [| 0x5eed; seed; i |] in
      let r =
        Harness.run ?cycle_limit ?inject_bug
          ~choose:(fun ~index:_ ~arity -> Random.State.int st arity)
          scenario
      in
      decisions := !decisions + Array.length r.Harness.decisions;
      match r.Harness.status with
      | Harness.Completed -> go (i + 1)
      | Harness.Violated _ | Harness.Livelocked _ ->
        let violation =
          match r.Harness.status with
          | Harness.Violated v -> v
          | Harness.Livelocked msg ->
            { Invariant.invariant = "livelock"; detail = msg }
          | Harness.Completed -> assert false
        in
        let schedule =
          Explorer.shrink ?cycle_limit ?inject_bug scenario ~violation
            (Harness.choices r)
        in
        Failed { run = i; seed; schedule; violation }
    end
  in
  go 0

let pp_outcome ppf = function
  | Passed { runs; decisions } ->
    Format.fprintf ppf "passed: %d randomized schedules (%d decisions)" runs
      decisions
  | Failed { run; seed; schedule; violation } ->
    Format.fprintf ppf
      "failed on run %d (seed %d), minimal schedule %a: %a" run seed
      Schedule.pp schedule Invariant.pp_violation violation
