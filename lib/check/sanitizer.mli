(** Invariant sanitizer for full-size runs.

    Attaches the {!Invariant} event predicates to a production runtime
    via the ledger sink and evaluates the end-of-run checks when the
    run finishes. This is what [Runner.options.check] / [--check] wire
    up: unlike the {!Harness} it does not rebuild the machine, does not
    control scheduling and does not stop the run on the first
    violation — it records violations and reports them at the end, so
    a checked run costs one predicate evaluation per ledger event and
    nothing else. With checking off, no sink is installed and the
    ledger emission path is a single branch — the perfcheck baselines
    are unaffected.

    The full state predicates ({!Invariant.check_state}) are evaluated
    once at the end of the run, not per event: on a 32-core machine a
    per-event directory sweep would dominate the run time. The bounded
    explorer covers per-event state checking on small configurations
    instead. *)

type t

val attach : ?keep:int -> Lk_lockiller.Runtime.t -> t
(** Install the event checks on the runtime's ledger (enabling the
    ledger if the caller has not). At most [keep] (default 8) event
    violations are retained verbatim; the rest are counted. *)

val finish : t -> Invariant.violation list
(** Evaluate the end-of-run checks and return all recorded violations,
    event-order first, then end-of-run ones. Empty means the run is
    clean. *)

val seen : t -> int
(** Total event-predicate violations observed (including dropped
    ones). *)
