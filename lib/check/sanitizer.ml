module Ledger = Lk_engine.Ledger
module Runtime = Lk_lockiller.Runtime

type t = {
  runtime : Runtime.t;
  mutable violations : Invariant.violation list;  (* newest first *)
  mutable seen : int;
  keep : int;
}

let attach ?(keep = 8) rt =
  let ledger =
    match Runtime.ledger rt with
    | Some l -> l
    | None -> Runtime.enable_ledger rt
  in
  let t = { runtime = rt; violations = []; seen = 0; keep } in
  Ledger.set_sink ledger
    (Some
       (fun ~time:_ ~core ~kind ~arg ->
         match Invariant.check_event rt ~kind ~core ~arg with
         | None -> ()
         | Some v ->
           t.seen <- t.seen + 1;
           if t.seen <= t.keep then t.violations <- v :: t.violations));
  t

let finish t =
  let end_violations = Invariant.check_end t.runtime in
  List.rev t.violations @ end_violations

let seen t = t.seen
