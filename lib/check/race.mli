(** Self-validation of the partition-ownership race detector.

    The detector lives in the engine ({!Lk_engine.Sim} for the
    sequenced multi-queue kernel, {!Lk_engine.Pdes} for the
    true-parallel one); this module is its checker-of-the-checker. It
    pairs each race-class injected fault with the partitioned scenario
    that exposes it, drives the {!Explorer} to a shrunk replayable
    counterexample on the sequenced kernel, and reproduces the same
    two faults on a small partition-confined model running on real
    OCaml domains. [make check] runs all of it. *)

type report = {
  fault : Lk_coherence.Types.injected_fault;
  scenario : string;  (** scenario name the fault was planted in *)
  violation : Invariant.violation;  (** what the detector reported *)
  schedule : Schedule.t;  (** shrunk, replay-verified counterexample *)
  schedules : int;  (** explorer runs until the first failure *)
}

val mutations : (Lk_coherence.Types.injected_fault * Scenario.t) list
(** The race-class mutation table: [Cross_partition_write] planted in
    {!Scenario.partitioned} and [Short_hop_schedule] planted in
    {!Scenario.partitioned_wake}. *)

val clean : ?max_schedules:int -> Scenario.t -> (unit, string) result
(** Explore the unmutated scenario with the detector armed and require
    zero race findings on every schedule — the detector's
    false-positive gate. [Error] carries the offending verdict. *)

val sequenced :
  ?max_schedules:int ->
  inject:Lk_coherence.Types.injected_fault ->
  Scenario.t ->
  (report, string) result
(** Plant the fault, explore until the detector reports a ["race"]
    violation, shrink the schedule and verify it replays to the same
    invariant. [Error] when the detector misses the fault or the
    counterexample does not replay. *)

val parallel_clean : unit -> (unit, string) result
(** Run a two-partition partition-confined model on the true-parallel
    {!Lk_engine.Pdes} kernel with the detector on: each partition
    mutates only its own region and posts boundary-legal
    (delay = lookahead) messages. Requires zero violations. *)

val parallel :
  inject:Lk_coherence.Types.injected_fault -> (unit, string) result
(** Reproduce the fault on the true-parallel kernel:
    [Cross_partition_write] becomes an event that mutates (and
    witnesses) the other partition's region — the detector must record
    it from a real concurrent domain; [Short_hop_schedule] becomes a
    cross-partition {!Lk_engine.Pdes.post} one cycle below the
    lookahead — the kernel must reject it outright. *)

val pp_report : Format.formatter -> report -> unit
