module Types = Lk_coherence.Types
module Protocol = Lk_coherence.Protocol
module L1_cache = Lk_coherence.L1_cache
module Llc = Lk_coherence.Llc
module Shard = Lk_coherence.Shard
module Addr = Lk_coherence.Addr
module Txstate = Lk_htm.Txstate
module Store = Lk_htm.Store
module Oracle = Lk_htm.Oracle
module Policy = Lk_htm.Policy
module Sw_path = Lk_htm.Sw_path
module Ledger = Lk_engine.Ledger
module Runtime = Lk_lockiller.Runtime
module Sysconf = Lk_lockiller.Sysconf

type violation = { invariant : string; detail : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.invariant v.detail

let violation_to_string v = v.invariant ^ ": " ^ v.detail

let fail invariant fmt =
  Format.kasprintf (fun detail -> Some { invariant; detail }) fmt

(* --- State predicates -------------------------------------------------- *)

let check_coherence rt =
  match Protocol.check_invariants (Runtime.protocol rt) with
  | () -> None
  | exception Failure msg -> Some { invariant = "coherence"; detail = msg }

let check_tx_sets rt =
  let proto = Runtime.protocol rt in
  let store = Runtime.store rt in
  let cores = (Protocol.config proto).Protocol.cores in
  let found = ref None in
  (try
     for c = 0 to cores - 1 do
       let mode = (Runtime.ctx rt c).Txstate.mode in
       let buffered = Store.buffered store ~core:c in
       (* Software transactions also defer their writes in the
          speculative buffer, but without tx_write L1 bits — only the
          HTM residency check below applies to them. *)
       if buffered > 0 && mode <> Txstate.Htm && mode <> Txstate.Sw then begin
         found :=
           fail "tx-write-set"
             "core %d holds %d speculative writes outside HTM/SW mode" c
             buffered;
         raise Exit
       end;
       if mode = Txstate.Htm then
         Store.iter_buffered store ~core:c (fun addr _ ->
             let line = Addr.line_of_byte addr in
             match L1_cache.lookup (Protocol.l1 proto c) line with
             | Some v when v.L1_cache.tx_write -> ()
             | Some _ ->
               found :=
                 fail "tx-write-set"
                   "core %d buffers %#x but line %d is resident without \
                    tx_write"
                   c addr line;
               raise Exit
             | None ->
               found :=
                 fail "tx-write-set"
                   "core %d buffers %#x but line %d is not L1-resident" c addr
                   line;
               raise Exit)
     done
   with Exit -> ());
  !found

let lock_tx_cores rt =
  let cores = (Protocol.config (Runtime.protocol rt)).Protocol.cores in
  let out = ref [] in
  for c = cores - 1 downto 0 do
    match (Runtime.ctx rt c).Txstate.mode with
    | Txstate.Tl | Txstate.Stl -> out := c :: !out
    | Txstate.Idle | Txstate.Htm | Txstate.Sw -> ()
  done;
  !out

let pp_cores cs = String.concat "," (List.map string_of_int cs)

let check_htmlock rt =
  match lock_tx_cores rt with
  | [] | [ _ ] -> None
  | cs ->
    fail "htmlock-unique" "cores {%s} are all in HTMLock (TL/STL) mode"
      (pp_cores cs)

let check_lock rt =
  let holders = Runtime.lock_holders rt in
  match holders with
  | _ :: _ :: _ ->
    fail "lock-unique" "cores {%s} all believe they hold the global lock"
      (pp_cores holders)
  | _ -> (
    match (Runtime.sysconf rt).Sysconf.lock with
    | Policy.Ticket -> None
    | Policy.Ttas -> (
      let v = Store.committed (Runtime.store rt) (Runtime.lock_addr rt) in
      if v <> 0 && v <> 1 then
        fail "lock-value" "TTAS lock word holds %d (expected 0 or 1)" v
      else
        match (holders, v) with
        | [ c ], 0 ->
          fail "lock-value" "core %d holds the lock but the lock word is 0" c
        | [], _ | [ _ ], _ -> None
        | _ :: _ :: _, _ -> assert false))

(* Sharded-directory consistency, checked through the public plan API
   (the deeper bank/FIFO checks run inside [check_coherence] via
   [Protocol.check_invariants]): every line resident in any bank sits
   in the bank its address hashes to, and the protocol serves it at
   that shard's home tile. One wrong hash would let two shards serve
   the same line concurrently — the sharded equivalent of an SWMR
   violation. *)
let check_shards rt =
  let proto = Runtime.protocol rt in
  let llc = Protocol.llc proto in
  let plan = Protocol.plan proto in
  let found = ref None in
  (try
     for s = 0 to Shard.count plan - 1 do
       Llc.iter_shard llc s (fun v ->
           let line = v.Llc.line in
           let hashed = Shard.of_line plan line in
           if hashed <> s then begin
             found :=
               fail "shard-consistency"
                 "line %d sits in bank %d but hashes to shard %d" line s
                 hashed;
             raise Exit
           end;
           let home = Protocol.home_of proto line in
           if home <> Shard.home_tile plan s then begin
             found :=
               fail "shard-consistency"
                 "line %d is served at tile %d but its shard %d lives at \
                  tile %d"
                 line home s (Shard.home_tile plan s);
             raise Exit
           end)
     done
   with Exit -> ());
  !found

let registry =
  [
    ("coherence", check_coherence);
    ("shard-consistency", check_shards);
    ("tx-write-set", check_tx_sets);
    ("htmlock-unique", check_htmlock);
    ("lock", check_lock);
  ]

let names = List.map fst registry

let check_state rt =
  let rec go = function
    | [] -> None
    | (_, f) :: rest -> ( match f rt with Some _ as v -> v | None -> go rest)
  in
  go registry

(* --- Event predicates -------------------------------------------------- *)

let mode_label m = Format.asprintf "%a" Txstate.pp_mode m

let check_event rt ~kind ~core ~arg =
  ignore arg;
  let mode () = (Runtime.ctx rt core).Txstate.mode in
  match (kind : Ledger.kind) with
  | Ledger.Tx_begin | Ledger.Tx_commit ->
    if mode () <> Txstate.Htm then
      fail
        (match kind with Ledger.Tx_commit -> "dirty-commit" | _ -> "event-mode")
        "core %d emitted %s while in %s mode" core (Ledger.kind_label kind)
        (mode_label (mode ()))
    else None
  | Ledger.Hl_begin -> (
    if mode () <> Txstate.Tl then
      fail "event-mode" "core %d emitted hlbegin while not in TL mode" core
    else
      match lock_tx_cores rt with
      | [] | [ _ ] -> None
      | cs ->
        fail "htmlock-unique" "hlbegin on core %d with cores {%s} in HTMLock"
          core (pp_cores cs))
  | Ledger.Hl_end -> (
    match mode () with
    | Txstate.Tl | Txstate.Stl -> None
    | m ->
      fail "event-mode" "core %d emitted hlend while in %s mode" core
        (mode_label m))
  | Ledger.Spec_publish -> (
    match mode () with
    | Txstate.Idle ->
      fail "dirty-commit"
        "core %d published its speculative buffer with no live transaction"
        core
    | _ -> None)
  | Ledger.Lock_acquire ->
    if not (Runtime.lock_held rt) then
      fail "lock-value" "core %d emitted lock-acquire but the lock is free"
        core
    else None
  | Ledger.Park ->
    if not (Runtime.is_parked rt core) then
      fail "wakeup" "core %d emitted park but is not parked" core
    else None
  | Ledger.Sw_begin | Ledger.Sw_commit | Ledger.Sw_abort
  | Ledger.Clock_advance ->
    (* All four fire from inside a live software transaction (commit
       and abort events are emitted before the mode transition back to
       Idle; clock advances only happen on software reads/commits). *)
    if mode () <> Txstate.Sw then
      fail "event-mode" "core %d emitted %s while in %s mode" core
        (Ledger.kind_label kind)
        (mode_label (mode ()))
    else None
  | Ledger.Tx_abort | Ledger.Nack | Ledger.Reject | Ledger.Abort_kill
  | Ledger.Wake | Ledger.Lock_release | Ledger.Switch_granted
  | Ledger.Switch_denied | Ledger.Spill | Ledger.Spec_discard ->
    None

(* --- End-of-run checks ------------------------------------------------- *)

let check_end rt =
  let proto = Runtime.protocol rt in
  let store = Runtime.store rt in
  let cores = (Protocol.config proto).Protocol.cores in
  let vs = ref [] in
  let push v = match v with Some v -> vs := v :: !vs | None -> () in
  for c = 0 to cores - 1 do
    (match (Runtime.ctx rt c).Txstate.mode with
    | Txstate.Idle -> ()
    | m ->
      push (fail "quiescence" "core %d finished in mode %s" c (mode_label m)));
    if Store.buffered store ~core:c > 0 then
      push
        (fail "quiescence" "core %d finished with %d buffered writes" c
           (Store.buffered store ~core:c));
    let held = Sw_path.locks_held (Runtime.sw_path rt) ~core:c in
    if held > 0 then
      push
        (fail "quiescence" "core %d finished holding %d slot write locks" c
           held)
  done;
  if Runtime.sw_population rt > 0 then
    push
      (fail "quiescence" "%d software transactions still counted live"
         (Runtime.sw_population rt));
  (match Runtime.parked_cores rt with
  | [] -> ()
  | cs -> push (fail "wakeup" "cores {%s} are still parked" (pp_cores cs)));
  if Runtime.watchdog_rescues rt > 0 then
    push
      (fail "lost-wakeup" "the quiescence watchdog rescued parked cores %d \
                           times (a healthy run has none)"
         (Runtime.watchdog_rescues rt));
  if Runtime.wake_pending rt > 0 then
    push
      (fail "wakeup" "%d wake-table subscriptions were never drained"
         (Runtime.wake_pending rt));
  (match Runtime.arbiter_holder rt with
  | None -> ()
  | Some c -> push (fail "quiescence" "core %d still holds the arbiter" c));
  (match Runtime.sig_owner rt with
  | None -> ()
  | Some c ->
    push (fail "quiescence" "core %d still owns the overflow signatures" c));
  (match Runtime.lock_holders rt with
  | [] -> ()
  | cs ->
    push (fail "quiescence" "cores {%s} finished holding the lock"
            (pp_cores cs)));
  push (check_state rt);
  (match Runtime.oracle rt with
  | None -> ()
  | Some o -> (
    match Oracle.verify o with
    | Ok () -> ()
    | Error v ->
      push
        (fail "serializability" "%s"
           (Format.asprintf "%a" Oracle.pp_violation v))));
  List.rev !vs
