type t = int array

let to_string s =
  "["
  ^ String.concat " " (Array.to_list (Array.map string_of_int s))
  ^ "]"

let pp ppf s = Format.pp_print_string ppf (to_string s)

let strip_trailing_zeros s =
  let n = ref (Array.length s) in
  while !n > 0 && s.(!n - 1) = 0 do
    decr n
  done;
  Array.sub s 0 !n

(* Smallest L such that the first L decisions still fail, assuming
   failure is monotone in the prefix length (verified: the binary
   search result is re-checked by the caller's later candidates). *)
let shortest_failing_prefix ~still_fails s =
  let lo = ref 0 and hi = ref (Array.length s) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if still_fails (Array.sub s 0 mid) then hi := mid else lo := mid + 1
  done;
  let s' = Array.sub s 0 !lo in
  if still_fails s' then s' else s

let shrink ~still_fails s =
  let s = strip_trailing_zeros s in
  let s = shortest_failing_prefix ~still_fails s in
  let s = Array.copy s in
  (* Greedy left-to-right: revert each non-default choice to 0 when the
     failure survives. Replay treats trailing zeros as absent, so the
     result is the minimal non-default decision set this greedy pass
     can reach. *)
  for i = 0 to Array.length s - 1 do
    if s.(i) <> 0 then begin
      let saved = s.(i) in
      s.(i) <- 0;
      if not (still_fails s) then s.(i) <- saved
    end
  done;
  strip_trailing_zeros s
