(** Controlled execution of a {!Scenario} under an explicit schedule.

    The simulator's event queue fires pending events in (time,
    insertion order); whenever two or more events are runnable at the
    same cycle, the real hardware provides no ordering guarantee, so
    any permutation is a legal execution. The harness installs a
    {!Lk_engine.Sim.set_chooser} hook and delegates each such decision
    to a caller-supplied [choose] function — the explorer enumerates
    the choices, the fuzzer randomises them, and [replay] fixes them to
    a recorded schedule.

    Every run is built from scratch on a tiny machine (1×N mesh,
    1 KB 2-way L1s, small latencies) with the serializability oracle
    and the event ledger enabled; invariant checks run at every event
    boundary ([check_states]), at every ledger emission, and at the end
    of the run. Runs are fully deterministic functions of the scenario
    and the schedule. *)

exception Violation_found of Invariant.violation
(** Raised from inside the simulation loop by the per-event checks;
    callers of {!run} never see it (it is converted to a status). *)

type status =
  | Completed  (** All threads finished; every check passed. *)
  | Violated of Invariant.violation
  | Livelocked of string
      (** Threads still unfinished at the cycle limit, or the
          simulator's quiescence watchdog gave up. *)

type run = {
  status : status;
  decisions : (int * int) array;
      (** Per decision point, the (choice, arity) taken: [choice] is
          the insertion-order rank fired among [arity] same-cycle
          runnable events. *)
  fingerprints : int array;
      (** State fingerprint at each decision point, taken {e before}
          the choice fired. Same length as [decisions]. *)
  cycles : int;
  events : int;
}

val default_cycle_limit : int

val fingerprint : Lk_lockiller.Runtime.t -> pending:int -> int
(** Hash of the architecturally visible state (L1s, directory,
    committed and speculative values, transactional contexts, wake
    tables, arbiter) plus the pending-event count. Canonical: container
    iteration order does not leak into the hash. *)

val run :
  ?check_states:bool ->
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  choose:(index:int -> arity:int -> int) ->
  Scenario.t ->
  run
(** Execute the scenario once. [choose ~index ~arity] is called at the
    [index]-th decision point (0-based) with [arity >= 2] runnable
    events and returns the insertion rank to fire; out-of-range returns
    are clamped to 0. [check_states] (default true) evaluates the state
    predicates after every event — disable it only to time raw
    exploration. *)

val replay :
  ?check_states:bool ->
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  schedule:int array ->
  Scenario.t ->
  run
(** Run with decisions fixed to [schedule]; beyond its end (or above
    the arity) the default choice 0 — oldest runnable event first,
    i.e. the production schedule — is taken. *)

val default :
  ?check_states:bool ->
  ?cycle_limit:int ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  Scenario.t ->
  run
(** [replay ~schedule:[||]]: the exact schedule a production run uses. *)

val choices : run -> int array
(** The schedule this run took ([fst] of each decision). *)
