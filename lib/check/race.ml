module Types = Lk_coherence.Types
module Pdes = Lk_engine.Pdes

type report = {
  fault : Types.injected_fault;
  scenario : string;
  violation : Invariant.violation;
  schedule : Schedule.t;
  schedules : int;
}

let mutations =
  [
    (Types.Cross_partition_write, Scenario.partitioned);
    (Types.Short_hop_schedule, Scenario.partitioned_wake);
  ]

(* --- sequenced kernel (explorer-driven) ------------------------------- *)

let clean ?max_schedules (scenario : Scenario.t) =
  match Explorer.explore ?max_schedules scenario with
  | Explorer.Exhausted _ | Explorer.Bounded _ -> Ok ()
  | Explorer.Violation { violation; _ } ->
    Error
      ("clean run of " ^ scenario.Scenario.name ^ " reported "
      ^ Invariant.violation_to_string violation)

let sequenced ?max_schedules ~inject (scenario : Scenario.t) =
  match Explorer.explore ?max_schedules ~inject_bug:inject scenario with
  | Explorer.Exhausted _ | Explorer.Bounded _ ->
    Error
      (Types.fault_label inject ^ " in " ^ scenario.Scenario.name
     ^ ": the detector caught nothing")
  | Explorer.Violation { schedule; violation; schedules } ->
    if violation.Invariant.invariant <> "race" then
      Error
        (Types.fault_label inject ^ " in " ^ scenario.Scenario.name
       ^ ": expected a race violation but got "
        ^ Invariant.violation_to_string violation)
    else begin
      (* The explorer's schedule must stand on its own: replay it and
         require the same invariant to fire again. *)
      let r = Harness.replay ~inject_bug:inject ~schedule scenario in
      match r.Harness.status with
      | Harness.Violated v when v.Invariant.invariant = "race" ->
        Ok
          {
            fault = inject;
            scenario = scenario.Scenario.name;
            violation;
            schedule;
            schedules;
          }
      | Harness.Violated v ->
        Error
          ("replay of the shrunk schedule reported "
          ^ Invariant.violation_to_string v ^ " instead of the race")
      | Harness.Completed | Harness.Livelocked _ ->
        Error "the shrunk schedule did not replay to a race violation"
    end

(* --- true-parallel kernel --------------------------------------------- *)

(* A partition-confined model small enough to reason about by hand: two
   partitions, each owning one counter region, each running a short
   chain of self-increments, and exchanging one boundary-legal
   (delay = lookahead) message per chain — which doubles as the
   boundary test that [Pdes.post] accepts exactly-lookahead sends. *)
let lookahead = 4

let build () =
  let p = Pdes.create ~tiles:2 ~domains:2 ~lookahead () in
  Pdes.set_race_check p true;
  let regions =
    [|
      Pdes.register_region p ~name:"counter[0]" ~owner:0;
      Pdes.register_region p ~name:"counter[1]" ~owner:1;
    |]
  in
  let counters = [| 0; 0 |] in
  (p, regions, counters)

let parallel_clean () =
  let p, regions, counters = build () in
  let rec tick n port =
    let me = Pdes.id port in
    Pdes.witness p port regions.(me);
    counters.(me) <- counters.(me) + 1;
    if n > 1 then Pdes.schedule port ~delay:1 (tick (n - 1))
    else
      (* Hand the other partition one last increment of ITS OWN
         counter, across the boundary at exactly the lookahead. *)
      Pdes.post port ~dst:(1 - me) ~delay:lookahead (fun port' ->
          let me' = Pdes.id port' in
          Pdes.witness p port' regions.(me');
          counters.(me') <- counters.(me') + 1)
  in
  Pdes.schedule (Pdes.port p 0) ~delay:1 (tick 8);
  Pdes.schedule (Pdes.port p 1) ~delay:1 (tick 8);
  Pdes.run p;
  if counters.(0) <> 9 || counters.(1) <> 9 then
    Error "the partition-confined model lost increments"
  else
    match Pdes.violation_count p with
    | 0 -> Ok ()
    | n -> Error (string_of_int n ^ " violations on a clean parallel run")

let parallel ~inject =
  match inject with
  | Types.Cross_partition_write ->
    (* Partition 0 reaches across and bumps partition 1's counter from
       its own event — the exact shape of the planted protocol bug,
       reproduced on real domains. Partition 1 stays quiet so the only
       unsynchronised access is the one under test. *)
    let p, regions, counters = build () in
    Pdes.schedule (Pdes.port p 0) ~delay:1 (fun port ->
        Pdes.witness p port regions.(1);
        counters.(1) <- counters.(1) + 1);
    Pdes.run p;
    (match Pdes.violations p with
    | [ v ] when v.Pdes.owner = 1 && v.Pdes.offender = 0 -> Ok ()
    | vs ->
      Error
        ("expected exactly one foreign-write violation, got "
        ^ string_of_int (List.length vs)))
  | Types.Short_hop_schedule ->
    (* The parallel kernel needs no detector for this half of the
       contract: [post] rejects the sub-lookahead hop outright (and
       accepts the boundary case, checked by [parallel_clean]). *)
    let p, _regions, _counters = build () in
    let accepted =
      match
        Pdes.post (Pdes.port p 0) ~dst:1 ~delay:(lookahead - 1) (fun _ -> ())
      with
      | () -> true
      | exception Invalid_argument _ -> false
    in
    if accepted then Error "Pdes.post accepted a sub-lookahead hop"
    else Ok ()
  | Types.Swmr_violation | Types.Lost_wakeup | Types.Dirty_commit ->
    Error "not a race-class fault"

let pp_report ppf r =
  Format.fprintf ppf "%s in %s: %s caught after %d schedule(s), %a"
    (Types.fault_label r.fault) r.scenario r.violation.Invariant.invariant
    r.schedules Schedule.pp r.schedule
