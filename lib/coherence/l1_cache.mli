(** Private L1 data cache with transactional metadata.

    Set-associative, LRU within a set. Each resident line carries a
    MESI state (Invalid is represented by absence), a dirty bit, and
    the two per-line transactional bits ([tx_read]/[tx_write]) used by
    best-effort HTM for conflict detection and by HTMLock's TL/STL
    modes for bookkeeping.

    Victim selection prefers a free way, then the LRU non-transactional
    line; a transactional line is only chosen when the whole set is
    transactional — that is precisely the capacity-overflow event the
    paper's switchingMode mechanism targets. *)

type state = M | E | S

type view = {
  line : Types.line;
  state : state;
  dirty : bool;
  tx_read : bool;
  tx_write : bool;
}

type room =
  | Present  (** The line is already resident — no allocation needed. *)
  | Free  (** A way is free in the target set. *)
  | Evict of view  (** This resident line must be evicted first. *)

type t

val create : size_bytes:int -> ways:int -> t
(** Line size is fixed by {!Addr.line_size}. [size_bytes] must be a
    positive multiple of [ways * line_size]. *)

val sets : t -> int
val ways : t -> int

val lookup : t -> Types.line -> view option
(** Resident view of a line, without touching LRU state. *)

val touch : t -> Types.line -> unit
(** Mark the line most-recently used. No-op when absent. *)

val room_for : t -> Types.line -> room
(** What allocating [line] requires right now. *)

val insert : t -> Types.line -> state -> unit
(** Install an absent line; requires a free way (evict first). Raises
    [Invalid_argument] if the line is present or the set is full. The
    new line is most-recently used and carries no tx bits. *)

val set_state : t -> Types.line -> state -> unit
(** Change the MESI state of a resident line. [M] implies dirty. *)

val mark_dirty : t -> Types.line -> unit

val clear_dirty : t -> Types.line -> unit
(** After a writeback: the LLC copy is current again. *)

val mark_tx : t -> Types.line -> write:bool -> unit
(** Set the transactional read (or write) bit of a resident line. *)

val remove : t -> Types.line -> view
(** Invalidate a resident line, returning its final view (the caller
    decides about writebacks). Raises if absent. *)

val resident : t -> Types.line -> bool

val tx_lines : t -> view list
(** All lines with a transactional bit set. O(tracked lines). *)

val clear_tx : t -> drop_written:bool -> view list
(** End-of-transaction bulk operation: clear every tx bit. When
    [drop_written] (abort path) lines that were transactionally written
    are invalidated — their speculative data is discarded. Returns the
    views (pre-clear) of all lines that carried tx bits. *)

val occupancy : t -> int
(** Resident line count (for tests). *)

val tx_count : t -> int
(** Number of transactionally marked resident lines (the length of
    {!tx_lines}, without building the list — allocation-free, for the
    telemetry sampler). *)

val iter : t -> (view -> unit) -> unit
