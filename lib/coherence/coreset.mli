(** Compact sets of core ids (directory sharer lists).

    Backed by a canonical multi-word bitset (32 ids per word, no
    trailing zero words), which supports machines up to
    {!max_cores} = 1024 cores; sets confined to cores 0..31 — every
    set on the paper's 32-core machine — stay one word wide. The
    interface is functional, as the directory code expects. *)

type t

val max_cores : int

val empty : t
val singleton : Types.core_id -> t
val add : Types.core_id -> t -> t
val remove : Types.core_id -> t -> t
val mem : Types.core_id -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val elements : t -> Types.core_id list
(** Ascending order. *)

val iter : (Types.core_id -> unit) -> t -> unit
val fold : (Types.core_id -> 'a -> 'a) -> t -> 'a -> 'a
val of_list : Types.core_id list -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
