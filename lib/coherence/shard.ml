(* Address->shard hash and shard->home-tile map of the multi-bank LLC
   directory.

   A machine has [tiles] mesh tiles and [count] directory shards
   (1 <= count <= tiles); each shard owns one LLC bank and the request
   FIFOs of the lines hashing to it, and lives at a fixed home tile.
   The default plan — one shard per tile with the [Mod] hash — is
   exactly the historical [line mod tiles] interleaving, bit for bit,
   so existing fixtures and cache keys are unaffected.

   Everything here is pure integer arithmetic on the hot path: no
   tables, no allocation. *)

type hash = Mod | Mix

type t = { count : int; tiles : int; hash : hash }

let make ~count ~tiles ~hash =
  if tiles <= 0 then invalid_arg "Shard.make: tiles must be positive";
  if count <= 0 || count > tiles then
    invalid_arg
      ("Shard.make: shard count must be in [1, tiles]; got "
      ^ string_of_int count ^ " shards for " ^ string_of_int tiles ^ " tiles");
  { count; tiles; hash }

let count t = t.count
let tiles t = t.tiles
let hash t = t.hash

(* Fibonacci-style multiplicative mix (constant < 2^62, result masked
   non-negative): decorrelates shard choice from low address bits so
   strided accesses spread instead of hammering shard [stride mod n]. *)
let mix l =
  let x = l lxor (l lsr 33) in
  let x = x * 0x2545F4914F6CDD1D land max_int in
  x lxor (x lsr 29)

let of_line t line =
  match t.hash with Mod -> line mod t.count | Mix -> mix line mod t.count

(* Shards spread evenly across the tile grid; identity when there is
   one shard per tile. *)
let home_tile t s = s * t.tiles / t.count

let equal a b = a.count = b.count && a.tiles = b.tiles && a.hash = b.hash

let hash_name t = match t.hash with Mod -> "mod" | Mix -> "mix"
