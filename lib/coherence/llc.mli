(** Shared, banked, inclusive last-level cache with a full-map
    directory.

    One bank per directory shard; a line's bank is chosen by the
    {!Shard} plan's address hash (under the default one-shard-per-tile
    [Mod] plan, exactly the historical [line mod tiles] home
    interleaving). Each resident LLC line embeds its directory state:
    either unowned with a (possibly empty) sharer set, or exclusively
    owned by one L1. The LLC is inclusive: every line resident in any
    L1 is resident here, so evicting an LLC line forces
    back-invalidation of L1 copies — the protocol layer performs that
    and must call [evict] only after it has done so. *)

type dir = Sharers of Coreset.t | Owner of Types.core_id

type view = {
  line : Types.line;
  dir : dir;
  dirty : bool;  (** Holds data newer than memory. *)
}

type room = Present | Free | Evict of view

type t

val create : plan:Shard.t -> bank_size_bytes:int -> ways:int -> t
(** One bank per shard of [plan]. *)

val plan : t -> Shard.t
val banks : t -> int
val sets_per_bank : t -> int

val lookup : t -> Types.line -> view option

val room_for : t -> Types.line -> room
(** Allocation requirement for [line] in its home bank. Victim choice
    prefers lines with no L1 copies (their eviction is invisible to the
    cores), then LRU. *)

val insert : t -> Types.line -> unit
(** Install an absent line (clean, no sharers); requires a free way. *)

val evict : t -> Types.line -> view
(** Remove a resident line, returning its final view. The caller is
    responsible for back-invalidation and memory writeback. *)

val touch : t -> Types.line -> unit

val dir_of : t -> Types.line -> dir
(** Directory state of a resident line. Raises if absent. *)

val set_dir : t -> Types.line -> dir -> unit
val set_dirty : t -> Types.line -> bool -> unit

val resident : t -> Types.line -> bool
val occupancy : t -> int

val iter : t -> (view -> unit) -> unit

val iter_shard : t -> int -> (view -> unit) -> unit
(** [iter_shard t s f] applies [f] to every view resident in shard
    [s]'s bank — the shard-consistency invariant walk. *)
