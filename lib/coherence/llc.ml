type dir = Sharers of Coreset.t | Owner of Types.core_id

type view = { line : Types.line; dir : dir; dirty : bool }

type room = Present | Free | Evict of view

type slot = {
  mutable tag : int;  (* -1 = invalid *)
  mutable dir : dir;
  mutable dirty : bool;
  mutable used : int;
}

type t = {
  plan : Shard.t;
  nbanks : int;  (* = Shard.count plan: one bank per directory shard *)
  nsets : int;  (* per bank *)
  nways : int;
  slots : slot array;  (* bank-major, then set, then way *)
  mutable tick : int;
}

let create ~plan ~bank_size_bytes ~ways =
  if ways <= 0 then invalid_arg "Llc.create: ways must be positive";
  let set_bytes = ways * Addr.line_size in
  if bank_size_bytes <= 0 || bank_size_bytes mod set_bytes <> 0 then
    invalid_arg "Llc.create: bank size must be a multiple of ways * line size";
  let banks = Shard.count plan in
  let nsets = bank_size_bytes / set_bytes in
  let mk _ = { tag = -1; dir = Sharers Coreset.empty; dirty = false; used = 0 } in
  {
    plan;
    nbanks = banks;
    nsets;
    nways = ways;
    slots = Array.init (banks * nsets * ways) mk;
    tick = 0;
  }

let plan t = t.plan
let banks t = t.nbanks
let sets_per_bank t = t.nsets

(* Line placement: the bank is the line's directory shard (the plan's
   address hash — [line mod nbanks] under the default [Mod] plan), the
   set is the historical [(line / nbanks) mod nsets]. Slots store the
   full line number as the tag, so placement is free to use any hash
   without a tag/line reconstruction becoming ambiguous. *)
let bank_of t line = Shard.of_line t.plan line
let set_of t line = line / t.nbanks mod t.nsets

let slot_range t line =
  let base = ((bank_of t line * t.nsets) + set_of t line) * t.nways in
  (base, base + t.nways - 1)

let find_slot t line =
  let lo, hi = slot_range t line in
  let rec go i =
    if i > hi then None
    else if t.slots.(i).tag = line then Some t.slots.(i)
    else go (i + 1)
  in
  go lo

let view_of slot = { line = slot.tag; dir = slot.dir; dirty = slot.dirty }

let lookup t line =
  match find_slot t line with
  | None -> None
  | Some slot -> Some (view_of slot)

let bump t slot =
  t.tick <- t.tick + 1;
  slot.used <- t.tick

let has_l1_copies slot =
  match slot.dir with
  | Owner _ -> true
  | Sharers s -> not (Coreset.is_empty s)

let room_for t line =
  match find_slot t line with
  | Some _ -> Present
  | None ->
    let lo, hi = slot_range t line in
    let free = ref false in
    let best_private = ref None in
    (* lines with L1 copies *)
    let best_quiet = ref None in
    (* lines with no L1 copies *)
    for i = lo to hi do
      let slot = t.slots.(i) in
      if slot.tag = -1 then free := true
      else begin
        let consider best =
          match !best with
          | Some (b : slot) when b.used <= slot.used -> ()
          | _ -> best := Some slot
        in
        if has_l1_copies slot then consider best_private
        else consider best_quiet
      end
    done;
    if !free then Free
    else
      let victim =
        match !best_quiet with Some s -> s | None -> Option.get !best_private
      in
      Evict (view_of victim)

let insert t line =
  (match find_slot t line with
  | Some _ -> invalid_arg "Llc.insert: line already resident"
  | None -> ());
  let lo, hi = slot_range t line in
  let rec free i =
    if i > hi then invalid_arg "Llc.insert: set is full"
    else if t.slots.(i).tag = -1 then t.slots.(i)
    else free (i + 1)
  in
  let slot = free lo in
  slot.tag <- line;
  slot.dir <- Sharers Coreset.empty;
  slot.dirty <- false;
  bump t slot

let with_slot t line name f =
  match find_slot t line with
  | None -> invalid_arg ("Llc." ^ name ^ ": line not resident")
  | Some slot -> f slot

let evict t line =
  with_slot t line "evict" (fun slot ->
      let v = view_of slot in
      slot.tag <- -1;
      slot.dir <- Sharers Coreset.empty;
      slot.dirty <- false;
      v)

let touch t line =
  match find_slot t line with None -> () | Some slot -> bump t slot

let dir_of t line = with_slot t line "dir_of" (fun slot -> slot.dir)

let set_dir t line dir = with_slot t line "set_dir" (fun slot -> slot.dir <- dir)

let set_dirty t line dirty =
  with_slot t line "set_dirty" (fun slot -> slot.dirty <- dirty)

let resident t line = find_slot t line <> None

let occupancy t =
  Array.fold_left (fun acc slot -> if slot.tag = -1 then acc else acc + 1) 0
    t.slots

let iter t f =
  Array.iter (fun slot -> if slot.tag <> -1 then f (view_of slot)) t.slots

(* Per-shard (= per-bank) iteration, for the shard-consistency
   invariants: every resident view of bank [shard], in slot order. *)
let iter_shard t shard f =
  if shard < 0 || shard >= t.nbanks then
    invalid_arg "Llc.iter_shard: shard out of range";
  let per_bank = t.nsets * t.nways in
  for i = shard * per_bank to ((shard + 1) * per_bank) - 1 do
    let slot = t.slots.(i) in
    if slot.tag <> -1 then f (view_of slot)
  done
