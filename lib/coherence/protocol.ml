module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats
module Net = Lk_mesh.Network
module Msg = Lk_mesh.Message

type config = {
  cores : int;
  l1_size : int;
  l1_ways : int;
  l1_hit_latency : int;
  llc_size : int;
  llc_ways : int;
  llc_hit_latency : int;
  mem_latency : int;
  exclusive_state : bool;
  dir_pointers : int option;
  (* Directory shards (LLC banks + request FIFOs). 0 means one shard
     per tile — the historical machine. *)
  dir_shards : int;
  dir_hash : Shard.hash;
}

let default_config =
  {
    cores = 32;
    l1_size = 32 * 1024;
    l1_ways = 4;
    l1_hit_latency = 2;
    llc_size = 8 * 1024 * 1024;
    llc_ways = 16;
    llc_hit_latency = 12;
    mem_latency = 100;
    exclusive_state = true;
    dir_pointers = None;
    dir_shards = 0;
    dir_hash = Shard.Mod;
  }

type request = {
  core : Types.core_id;
  line : Types.line;
  what : Types.access;
  epoch : int;
  k : Types.outcome -> unit;
}

type t = {
  sim : Sim.t;
  net : Net.t;
  cfg : config;
  l1s : L1_cache.t array;
  plan : Shard.t;
  llc : Llc.t;
  mutable client : Client.t;
  (* Lines with a request being served at their home shard; waiters
     are served FIFO when the current request completes. One
     int-specialised table per shard, keyed on the line number — this
     is touched twice per L1 miss, and keeping the tables per shard
     both shrinks each one and confines the structure a partitioned
     executor would have to own per domain. *)
  busy : request Queue.t Lk_engine.Int_table.t array;
  (* Ownership tags for the partition race detector: one region per
     directory shard (busy table + LLC bank + directory state, owned by
     the shard's home tile) and one per private L1 (owned by its core's
     tile). Registered unconditionally — the witness calls are a single
     branch while the detector is off. *)
  shard_regions : Sim.region array;
  l1_regions : Sim.region array;
  mutable ledger : Lk_engine.Ledger.t option;
  (* Deliberately broken variant for the checker-of-the-checker
     mutation tests; [None] in every real run. *)
  mutable inject : Types.injected_fault option;
  stats : Stats.group;
  s_l1_hits : Stats.counter;
  s_l1_misses : Stats.counter;
  s_stale : Stats.counter;
  s_llc_misses : Stats.counter;
  s_llc_evictions : Stats.counter;
  s_owner_rejects : Stats.counter;
  s_sharer_rejects : Stats.counter;
  s_sig_rejects : Stats.counter;
  s_conflict_aborts : Stats.counter;
  s_invalidations : Stats.counter;
  s_writebacks : Stats.counter;
  s_spills : Stats.counter;
  s_evict_tx_aborts : Stats.counter;
  s_broadcast_invs : Stats.counter;
}

let create ~sim ~network cfg =
  let tiles = Lk_mesh.Topology.tiles (Net.topology network) in
  if tiles <> cfg.cores then
    invalid_arg
      ("Protocol.create: " ^ string_of_int cfg.cores ^ " cores but "
      ^ string_of_int tiles ^ " mesh tiles");
  if cfg.cores > Coreset.max_cores then
    invalid_arg "Protocol.create: too many cores for the directory bitset";
  let shards = if cfg.dir_shards = 0 then cfg.cores else cfg.dir_shards in
  let plan = Shard.make ~count:shards ~tiles:cfg.cores ~hash:cfg.dir_hash in
  let stats = Stats.group "protocol" in
  {
    sim;
    net = network;
    cfg;
    l1s =
      Array.init cfg.cores (fun _ ->
          L1_cache.create ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways);
    plan;
    llc =
      (* Shard counts that do not divide the LLC size round each bank
         down to whole sets (at least one), undershooting [llc_size]
         by less than one set per bank; divisor counts — every
         historical configuration — are unchanged. *)
      (let set_bytes = cfg.llc_ways * Addr.line_size in
       let bank_size_bytes =
         Int.max set_bytes (cfg.llc_size / shards / set_bytes * set_bytes)
       in
       Llc.create ~plan ~bank_size_bytes ~ways:cfg.llc_ways);
    client = Client.plain;
    busy =
      (* Aggregate initial capacity matches the historical single
         table, so footprint does not scale with the shard count. *)
      (let capacity = Int.max 16 (256 / shards) in
       Array.init shards (fun _ ->
           Lk_engine.Int_table.create ~capacity ~dummy:(Queue.create ()) ()));
    shard_regions =
      Array.init shards (fun s ->
          Sim.register_region sim
            ~name:("dir-shard[" ^ string_of_int s ^ "]")
            ~tile:(Shard.home_tile plan s));
    l1_regions =
      Array.init cfg.cores (fun c ->
          Sim.register_region sim
            ~name:("l1[" ^ string_of_int c ^ "]")
            ~tile:c);
    ledger = None;
    inject = None;
    stats;
    s_l1_hits = Stats.counter stats "l1_hits";
    s_l1_misses = Stats.counter stats "l1_misses";
    s_stale = Stats.counter stats "stale_requests";
    s_llc_misses = Stats.counter stats "llc_misses";
    s_llc_evictions = Stats.counter stats "llc_evictions";
    s_owner_rejects = Stats.counter stats "owner_rejects";
    s_sharer_rejects = Stats.counter stats "sharer_rejects";
    s_sig_rejects = Stats.counter stats "signature_rejects";
    s_conflict_aborts = Stats.counter stats "conflict_aborts";
    s_invalidations = Stats.counter stats "invalidations";
    s_writebacks = Stats.counter stats "writebacks";
    s_spills = Stats.counter stats "tx_spills";
    s_evict_tx_aborts = Stats.counter stats "tx_eviction_aborts";
    s_broadcast_invs = Stats.counter stats "broadcast_invalidations";
  }

let set_client t client = t.client <- client
let set_ledger t ledger = t.ledger <- Some ledger
let set_inject_bug t fault = t.inject <- fault

(* Ledger feeds from the coherence layer: a [Nack] when the home sends
   a reject reply, an [Abort_kill] when a conflicting holder is aborted
   on behalf of a requester ([core] = victim). Both args are
   [Ledger.pack_attr] of the responsible core (-1 for the LLC overflow
   signatures) and the record core's stall-excluded attempt age, read from the
   client so every conflict edge is causally attributable. *)
let note_nack t ~requester ~by =
  match t.ledger with
  | None -> ()
  | Some l ->
    Lk_engine.Ledger.emit l ~core:requester Lk_engine.Ledger.Nack
      ~arg:
        (Lk_engine.Ledger.pack_attr ~who:by
           ~age:(t.client.Client.tx_age requester))

let note_kill t ~victim ~aggressor =
  match t.ledger with
  | None -> ()
  | Some l ->
    Lk_engine.Ledger.emit l ~core:victim Lk_engine.Ledger.Abort_kill
      ~arg:
        (Lk_engine.Ledger.pack_attr ~who:aggressor
           ~age:(t.client.Client.tx_age victim))
let sim t = t.sim
let network t = t.net
let config t = t.cfg
let l1 t core = t.l1s.(core)
let llc t = t.llc
let stats t = t.stats

let plan t = t.plan
let shards t = Shard.count t.plan
let shard_of t line = Shard.of_line t.plan line
let home_of t line = Shard.home_tile t.plan (Shard.of_line t.plan line)

(* Message helpers. [bg_*] charge traffic for messages that are off the
   request's critical path (writebacks, unblocks, invalidation sends
   overlapped with data). *)
let ctrl t ~src ~dst =
  Net.send ~now:(Sim.now t.sim) t.net ~src ~dst ~class_:Msg.Control

let data t ~src ~dst =
  Net.send ~now:(Sim.now t.sim) t.net ~src ~dst ~class_:Msg.Data
let bg_ctrl t ~src ~dst = ignore (ctrl t ~src ~dst)
let bg_data t ~src ~dst = ignore (data t ~src ~dst)

let in_tx_mode (party : Types.party) = party.Types.mode <> Types.Non_tx

(* Drop [core] from the directory entry of [line] (silent eviction or
   speculative-line drop). *)
let dir_remove_core t line core =
  if Llc.resident t.llc line then
    match Llc.dir_of t.llc line with
    | Llc.Owner o ->
      if o = core then Llc.set_dir t.llc line (Llc.Sharers Coreset.empty)
    | Llc.Sharers s ->
      if Coreset.mem core s then
        Llc.set_dir t.llc line (Llc.Sharers (Coreset.remove core s))

let commit_flush t core =
  let views = L1_cache.clear_tx t.l1s.(core) ~drop_written:false in
  List.length views

let abort_flush t core =
  let views = L1_cache.clear_tx t.l1s.(core) ~drop_written:true in
  List.iter
    (fun (v : L1_cache.view) ->
      (* Speculatively written lines were dropped by [clear_tx]; the
         directory must stop naming this core as owner. The LLC still
         holds the pre-transactional data. *)
      if v.tx_write then dir_remove_core t v.line core)
    views;
  List.length views

(* Invalidate [core]'s copy of [line] (back-invalidation or write
   request), handling transactional copies through the client's
   eviction hook. Returns extra latency charged by the directive. *)
let rec flush_l1_copy t ~core ~line ~extra =
  let l1 = t.l1s.(core) in
  match L1_cache.lookup l1 line with
  | None -> extra
  | Some v when v.tx_read || v.tx_write -> begin
    match t.client.Client.on_tx_eviction ~core ~view:v with
    | Client.Abort_tx e ->
      Stats.incr t.s_evict_tx_aborts;
      (* The abort cleared tx metadata; written lines are gone, read
         lines remain and are flushed below. *)
      flush_l1_copy t ~core ~line ~extra:(extra + e)
    | Client.Spill { write; extra = e } ->
      Stats.incr t.s_spills;
      ignore write;
      let v2 = L1_cache.remove l1 line in
      dir_remove_core t line core;
      if v2.dirty then begin
        Stats.incr t.s_writebacks;
        bg_data t ~src:core ~dst:(home_of t line);
        Llc.set_dirty t.llc line true
      end
      else bg_ctrl t ~src:core ~dst:(home_of t line);
      extra + e
  end
  | Some v ->
    ignore (L1_cache.remove l1 line);
    dir_remove_core t line core;
    Stats.incr t.s_invalidations;
    if v.dirty then begin
      Stats.incr t.s_writebacks;
      bg_data t ~src:core ~dst:(home_of t line);
      Llc.set_dirty t.llc line true
    end
    else bg_ctrl t ~src:core ~dst:(home_of t line);
    extra

(* Make the line resident in its home LLC bank. Returns extra latency
   (memory fetch, back-invalidation fallout). *)
let ensure_llc_resident t line =
  match Llc.room_for t.llc line with
  | Llc.Present -> 0
  | room ->
    Stats.incr t.s_llc_misses;
    let extra = ref t.cfg.mem_latency in
    (match room with
    | Llc.Present | Llc.Free -> ()
    | Llc.Evict victim ->
      Stats.incr t.s_llc_evictions;
      (* Inclusive LLC: L1 copies of the victim must die first. *)
      let copies =
        match victim.dir with
        | Llc.Owner o -> [ o ]
        | Llc.Sharers s -> Coreset.elements s
      in
      List.iter
        (fun c -> extra := flush_l1_copy t ~core:c ~line:victim.line ~extra:!extra)
        copies;
      let v = Llc.evict t.llc victim.line in
      if v.dirty then bg_data t ~src:(home_of t victim.line) ~dst:(home_of t victim.line));
    Llc.insert t.llc line;
    !extra

(* Make room in the requester's L1 for [line]. Returns extra latency. *)
let make_room t ~core ~line =
  let l1 = t.l1s.(core) in
  let rec go extra guard =
    if guard > 2 * t.cfg.l1_ways then
      failwith "Protocol.make_room: cannot free a way";
    match L1_cache.room_for l1 line with
    | L1_cache.Present | L1_cache.Free -> extra
    | L1_cache.Evict v ->
      let extra = flush_l1_copy t ~core ~line:v.line ~extra in
      go extra (guard + 1)
  in
  go 0 0

(* Install a granted line in the requester's L1 (or upgrade in place).
   Returns extra latency from evictions. The requester's transaction
   may have died while the request was in flight (or may die right here
   if its own victim line is transactional): we re-check the context
   and skip tx marking for stale requests. *)
let install t req ~state =
  let l1 = t.l1s.(req.core) in
  let write = Types.is_write req.what in
  let extra =
    match L1_cache.room_for l1 req.line with
    | L1_cache.Present ->
      L1_cache.set_state l1 req.line state;
      L1_cache.touch l1 req.line;
      0
    | L1_cache.Free | L1_cache.Evict _ ->
      let extra = make_room t ~core:req.core ~line:req.line in
      L1_cache.insert l1 req.line state;
      extra
  in
  (match t.client.Client.context ~core:req.core ~epoch:req.epoch with
  | Some party when in_tx_mode party ->
    L1_cache.mark_tx l1 req.line ~write
  | Some _ | None -> ());
  extra

let finish t req outcome ~latency =
  let home = home_of t req.line in
  (* Unblock message closing the directory transaction (traffic only). *)
  bg_ctrl t ~src:req.core ~dst:home;
  (* The completion runs at the requester's tile. *)
  Sim.schedule_tile t.sim ~tile:req.core ~delay:latency (fun () ->
      req.k outcome)

(* --- The decision procedure, running at the home bank. --------------
   Returns the request outcome and its completion latency relative to
   the decision cycle; all state changes happen here, atomically. *)

let rec dispatch t req (party : Types.party) ~extra ~depth =
  if depth > 3 then failwith "Protocol.dispatch: conflict resolution loop";
  let write = Types.is_write req.what in
  let home = home_of t req.line in
  let llc_lat = t.cfg.llc_hit_latency in
  match Llc.dir_of t.llc req.line with
  | Llc.Owner o when o = req.core ->
    failwith "Protocol.dispatch: request from the current owner"
  | Llc.Owner o -> begin
    let ov =
      match L1_cache.lookup t.l1s.(o) req.line with
      | Some v -> v
      | None ->
        failwith "Protocol.dispatch: directory owner has no L1 copy"
    in
    let conflict =
      if write then ov.tx_read || ov.tx_write else ov.tx_write
    in
    if conflict then begin
      let holder = t.client.Client.party_of o in
      match
        t.client.Client.resolve ~requester:(req.core, party) ~holder:(o, holder)
          ~line:req.line ~write
      with
      | Client.Reject_requester ->
        Stats.incr t.s_owner_rejects;
        note_nack t ~requester:req.core ~by:o;
        t.client.Client.on_reject ~requester:req.core ~by:(Some o)
          ~line:req.line;
        let lat =
          llc_lat + extra
          + ctrl t ~src:home ~dst:o
          + t.cfg.l1_hit_latency
          + ctrl t ~src:o ~dst:home
          + ctrl t ~src:home ~dst:req.core
        in
        (Types.Rejected { by = Some o }, lat)
      | Client.Abort_holder ->
        Stats.incr t.s_conflict_aborts;
        note_kill t ~victim:o ~aggressor:req.core;
        t.client.Client.abort ~victim:o ~aggressor:req.core
          ~aggressor_mode:party.Types.mode ~line:req.line;
        (* NACK leg: home -> owner -> home, then retry the decision
           against the post-abort state (Fig 3's red-arrow flow). *)
        let leg =
          ctrl t ~src:home ~dst:o + t.cfg.l1_hit_latency
          + ctrl t ~src:o ~dst:home
        in
        dispatch t req party ~extra:(extra + leg) ~depth:(depth + 1)
    end
    else begin
      (* Plain MESI forward. *)
      let fwd = ctrl t ~src:home ~dst:o + t.cfg.l1_hit_latency in
      if write then begin
        let v = L1_cache.remove t.l1s.(o) req.line in
        Stats.incr t.s_invalidations;
        if v.dirty then begin
          Stats.incr t.s_writebacks;
          bg_data t ~src:o ~dst:home;
          Llc.set_dirty t.llc req.line true
        end;
        Llc.set_dir t.llc req.line (Llc.Owner req.core);
        let inst = install t req ~state:L1_cache.M in
        (Types.Granted, llc_lat + extra + fwd + data t ~src:o ~dst:req.core + inst)
      end
      else begin
        if ov.dirty then begin
          Stats.incr t.s_writebacks;
          bg_data t ~src:o ~dst:home;
          Llc.set_dirty t.llc req.line true;
          L1_cache.clear_dirty t.l1s.(o) req.line
        end;
        (* The injected SWMR mutation skips exactly this downgrade: the
           directory then lists two sharers while the old owner still
           holds the line in M/E. *)
        (match t.inject with
        | Some Types.Swmr_violation -> ()
        | Some _ | None -> L1_cache.set_state t.l1s.(o) req.line L1_cache.S);
        Llc.set_dir t.llc req.line
          (Llc.Sharers (Coreset.of_list [ o; req.core ]));
        let inst = install t req ~state:L1_cache.S in
        (Types.Granted, llc_lat + extra + fwd + data t ~src:o ~dst:req.core + inst)
      end
    end
  end
  | Llc.Sharers s when not write ->
    let alone =
      t.cfg.exclusive_state && Coreset.is_empty (Coreset.remove req.core s)
    in
    let state = if alone then L1_cache.E else L1_cache.S in
    (* An Exclusive grant makes the requester the owner in the
       directory's eyes; a shared grant extends the sharer list. *)
    if alone then Llc.set_dir t.llc req.line (Llc.Owner req.core)
    else Llc.set_dir t.llc req.line (Llc.Sharers (Coreset.add req.core s));
    Llc.touch t.llc req.line;
    let inst = install t req ~state in
    (Types.Granted, llc_lat + extra + data t ~src:home ~dst:req.core + inst)
  | Llc.Sharers s ->
    (* Write (possibly an upgrade): every other sharer must go. *)
    let others = Coreset.elements (Coreset.remove req.core s) in
    let winners = ref [] and losers = ref [] and plain = ref [] in
    List.iter
      (fun c ->
        let v =
          match L1_cache.lookup t.l1s.(c) req.line with
          | Some v -> v
          | None -> failwith "Protocol.dispatch: directory sharer has no copy"
        in
        if v.tx_read || v.tx_write then begin
          let holder = t.client.Client.party_of c in
          match
            t.client.Client.resolve ~requester:(req.core, party)
              ~holder:(c, holder) ~line:req.line ~write:true
          with
          | Client.Reject_requester -> winners := c :: !winners
          | Client.Abort_holder -> losers := c :: !losers
        end
        else plain := c :: !plain)
      others;
    let winners = List.rev !winners
    and losers = List.rev !losers
    and plain = List.rev !plain in
    (* Losers abort even when the request is ultimately rejected: each
       sharer arbitrates locally (Fig 4). *)
    List.iter
      (fun c ->
        Stats.incr t.s_conflict_aborts;
        note_kill t ~victim:c ~aggressor:req.core;
        t.client.Client.abort ~victim:c ~aggressor:req.core
          ~aggressor_mode:party.Types.mode ~line:req.line)
      losers;
    (* Invalidate every non-winner copy still resident (aborts keep
       read lines valid). Latency is the slowest invalidation
       round-trip, all in parallel. Under a limited-pointer directory
       whose pointers have overflowed, the home does not know the
       sharers and must broadcast to every core. *)
    let broadcast =
      match t.cfg.dir_pointers with
      | Some k -> Coreset.cardinal s > k
      | None -> false
    in
    let inv_rtt = ref 0 in
    let charge_rtt c =
      let rtt =
        ctrl t ~src:home ~dst:c + t.cfg.l1_hit_latency
        + ctrl t ~src:c ~dst:home
      in
      if rtt > !inv_rtt then inv_rtt := rtt
    in
    if broadcast then begin
      Stats.incr t.s_broadcast_invs;
      for c = 0 to t.cfg.cores - 1 do
        if c <> req.core then charge_rtt c
      done
    end
    else List.iter charge_rtt (plain @ losers);
    List.iter
      (fun c -> ignore (flush_l1_copy t ~core:c ~line:req.line ~extra:0))
      (plain @ losers);
    if winners <> [] then begin
      Stats.incr t.s_sharer_rejects;
      note_nack t ~requester:req.core ~by:(List.hd winners);
      let keep =
        if L1_cache.resident t.l1s.(req.core) req.line then req.core :: winners
        else winners
      in
      Llc.set_dir t.llc req.line (Llc.Sharers (Coreset.of_list keep));
      let by = List.hd winners in
      t.client.Client.on_reject ~requester:req.core ~by:(Some by)
        ~line:req.line;
      let lat =
        llc_lat + extra + !inv_rtt + ctrl t ~src:home ~dst:req.core
      in
      (Types.Rejected { by = Some by }, lat)
    end
    else begin
      Llc.set_dir t.llc req.line (Llc.Owner req.core);
      Llc.touch t.llc req.line;
      let was_resident = L1_cache.resident t.l1s.(req.core) req.line in
      let inst = install t req ~state:L1_cache.M in
      let transfer =
        if was_resident then ctrl t ~src:home ~dst:req.core
        else data t ~src:home ~dst:req.core
      in
      let slower = if !inv_rtt > transfer then !inv_rtt else transfer in
      (Types.Granted, llc_lat + extra + inst + slower)
    end

(* Serve a request at the head of its line queue. Returns the busy
   window (cycles until the home frees the line). *)
let process t req =
  match t.client.Client.context ~core:req.core ~epoch:req.epoch with
  | None ->
    (* The issuing transaction died after issue: drop without side
       effects. The continuation still fires (the core discards it by
       epoch). *)
    Stats.incr t.s_stale;
    req.k Types.Granted;
    0
  | Some party ->
    let write = Types.is_write req.what in
    let home = home_of t req.line in
    let extra = ensure_llc_resident t req.line in
    Llc.touch t.llc req.line;
    let would_be_exclusive =
      (not write)
      &&
      match Llc.dir_of t.llc req.line with
      | Llc.Owner _ -> false
      | Llc.Sharers s -> Coreset.is_empty s
    in
    let sig_verdict =
      t.client.Client.llc_check ~requester:req.core
        ~requester_mode:party.Types.mode ~line:req.line ~write
        ~would_be_exclusive
    in
    let outcome, lat =
      match sig_verdict with
      | Some Client.Reject_requester ->
        Stats.incr t.s_sig_rejects;
        note_nack t ~requester:req.core ~by:(-1);
        t.client.Client.on_reject ~requester:req.core ~by:None ~line:req.line;
        ( Types.Rejected { by = None },
          t.cfg.llc_hit_latency + extra + ctrl t ~src:home ~dst:req.core )
      | Some Client.Abort_holder ->
        failwith "Protocol.process: llc_check returned Abort_holder"
      | None -> dispatch t req party ~extra ~depth:0
    in
    finish t req outcome ~latency:lat;
    lat

let rec release t line =
  (* Home-tile events own the shard's busy table, LLC bank and
     directory state; the witness holds them to that. *)
  Sim.witness t.sim t.shard_regions.(shard_of t line);
  let busy = t.busy.(shard_of t line) in
  match Lk_engine.Int_table.find_opt busy line with
  | None -> failwith "Protocol.release: line not busy"
  | Some q ->
    if Queue.is_empty q then Lk_engine.Int_table.remove busy line
    else begin
      let req = Queue.pop q in
      let lat = process t req in
      Sim.schedule_tile t.sim ~tile:(home_of t line) ~delay:lat (fun () ->
          release t line)
    end

let arrive t req =
  Sim.witness t.sim t.shard_regions.(shard_of t req.line);
  let busy = t.busy.(shard_of t req.line) in
  match Lk_engine.Int_table.find_opt busy req.line with
  | Some q -> Queue.push req q
  | None ->
    Lk_engine.Int_table.replace busy req.line (Queue.create ());
    let lat = process t req in
    Sim.schedule_tile t.sim ~tile:(home_of t req.line) ~delay:lat (fun () ->
        release t req.line)

let access t ~core ~line ~what ~epoch ~k =
  if core < 0 || core >= t.cfg.cores then
    invalid_arg "Protocol.access: core out of range";
  if line < 0 then invalid_arg "Protocol.access: negative line";
  let write = Types.is_write what in
  let l1c = t.l1s.(core) in
  match L1_cache.lookup l1c line with
  | Some v when (not write) || v.state = L1_cache.M || v.state = L1_cache.E ->
    (* Hit path: runs in the requesting core's own event and mutates
       only its private L1. *)
    Sim.witness t.sim t.l1_regions.(core);
    Stats.incr t.s_l1_hits;
    L1_cache.touch l1c line;
    let party = t.client.Client.party_of core in
    if write then begin
      if in_tx_mode party && v.dirty && not v.tx_write then begin
        (* First speculative write to a non-speculatively dirty line:
           push the pre-transactional data to the LLC so an abort can
           recover it (eager-versioning bookkeeping). *)
        Stats.incr t.s_writebacks;
        bg_data t ~src:core ~dst:(home_of t line);
        Llc.set_dirty t.llc line true
      end;
      L1_cache.set_state l1c line L1_cache.M
    end;
    if in_tx_mode party then L1_cache.mark_tx l1c line ~write;
    Sim.schedule_tile t.sim ~tile:core ~delay:t.cfg.l1_hit_latency (fun () ->
        k Types.Granted)
  | Some _ | None ->
    Stats.incr t.s_l1_misses;
    let home = home_of t line in
    let lat = t.cfg.l1_hit_latency + ctrl t ~src:core ~dst:home in
    let req = { core; line; what; epoch; k } in
    (match t.inject with
    | Some Types.Cross_partition_write ->
      (* Injected race: deliver the miss with a bare [schedule] — the
         home-directory mutation then executes in the requester's
         partition, which the ownership witness in [arrive] must
         catch. (time, seq) are unchanged, so the sequenced run is
         otherwise identical. *)
      Sim.schedule t.sim ~delay:lat (fun () -> arrive t req) (* lint-ok *)
    | Some _ | None ->
      Sim.schedule_tile t.sim ~tile:home ~delay:lat (fun () -> arrive t req))

let flush_core t core =
  let l1c = t.l1s.(core) in
  let lines = ref [] in
  L1_cache.iter l1c (fun v -> lines := v.L1_cache.line :: !lines);
  List.iter
    (fun line ->
      let v = L1_cache.remove l1c line in
      dir_remove_core t line core;
      if v.L1_cache.dirty then begin
        Stats.incr t.s_writebacks;
        bg_data t ~src:core ~dst:(home_of t line);
        Llc.set_dirty t.llc line true
      end)
    !lines;
  List.length !lines

(* --- Invariant checking (tests). ------------------------------------ *)

let check_invariants t =
  let fail fmt = Format.kasprintf failwith fmt in
  (* Directory exactness and SWMR, from the LLC's point of view. *)
  Llc.iter t.llc (fun (v : Llc.view) ->
      match v.dir with
      | Llc.Owner o ->
        (match L1_cache.lookup t.l1s.(o) v.line with
        | Some lv
          when lv.L1_cache.state = L1_cache.M || lv.L1_cache.state = L1_cache.E
          ->
          ()
        | Some _ ->
          fail "line %d: directory owner %d holds it in S" v.line o
        | None -> fail "line %d: directory owner %d has no copy" v.line o);
        Array.iteri
          (fun c l1c ->
            if c <> o && L1_cache.resident l1c v.line then
              fail "line %d: owned by %d but also resident at %d" v.line o c)
          t.l1s
      | Llc.Sharers s ->
        Array.iteri
          (fun c l1c ->
            match L1_cache.lookup l1c v.line with
            | None ->
              if Coreset.mem c s then
                fail "line %d: directory lists %d but no copy" v.line c
            | Some lv ->
              if not (Coreset.mem c s) then
                fail "line %d: resident at %d but not in directory" v.line c;
              if lv.L1_cache.state <> L1_cache.S then
                fail "line %d: sharer %d holds it in M/E" v.line c)
          t.l1s);
  (* Inclusivity: every L1 line is LLC-resident. *)
  Array.iteri
    (fun c l1c ->
      L1_cache.iter l1c (fun lv ->
          if not (Llc.resident t.llc lv.L1_cache.line) then
            fail "line %d: resident in L1 %d but not in LLC" lv.L1_cache.line c))
    t.l1s;
  (* Shard consistency: every line resident in a bank hashes to that
     shard, every busy-FIFO entry sits in its line's shard table, and
     every shard's home tile is a valid mesh tile. One wrong hash or a
     FIFO filed under the wrong shard would let two shards serve the
     same line concurrently — the sharded equivalent of an SWMR
     violation. *)
  for s = 0 to Shard.count t.plan - 1 do
    let home = Shard.home_tile t.plan s in
    if home < 0 || home >= t.cfg.cores then
      fail "shard %d: home tile %d out of range" s home;
    Llc.iter_shard t.llc s (fun (v : Llc.view) ->
        if Shard.of_line t.plan v.line <> s then
          fail "line %d: resident in bank %d but hashes to shard %d" v.line s
            (Shard.of_line t.plan v.line));
    Lk_engine.Int_table.iter t.busy.(s) (fun line _q ->
        if Shard.of_line t.plan line <> s then
          fail "line %d: busy at shard %d but hashes to shard %d" line s
            (Shard.of_line t.plan line))
  done
