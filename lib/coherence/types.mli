(** Shared vocabulary of the memory subsystem. *)

type core_id = int
(** Index of a core / private L1 / tile (cores are bound 1:1 to tiles). *)

type line = int
(** Cache-line index: byte address [lsr] log2(line size). All coherence
    and conflict detection is line-granular, like the modelled
    hardware. *)

type access =
  | Read
  | Write
  | Rmw
      (** Atomic read-modify-write (lock acquire). Coherence-wise an
          [Rmw] behaves like a [Write] (needs exclusive ownership); the
          distinction is kept for statistics and for the value layer. *)

val is_write : access -> bool

(** How the requesting core was executing when it issued a request.
    Conflict arbitration (Fig 4 of the paper) depends on it. *)
type mode =
  | Htm_tx  (** Speculative HTM transaction. *)
  | Lock_tx
      (** Irrevocable lock transaction in HTMLock mode (TL or STL). *)
  | Non_tx  (** Ordinary, non-speculative execution. *)

type party = { mode : mode; priority : int }
(** Identity of a requester or holder in a conflict: its execution mode
    and its user-defined priority (the paper carries it in the ARUSER
    bus field). [Lock_tx] parties always use [max_int]. *)

val non_tx_party : party
(** Non-transactional accesses: they win against speculative
    transactions (best-effort HTM semantics) which we encode as
    [max_int] priority with mode [Non_tx]. *)

type outcome =
  | Granted
  | Rejected of { by : core_id option }
      (** The request was withdrawn by the recovery mechanism. [by] is
          the core whose transaction caused the rejection, or [None]
          when the LLC overflow signatures rejected it. *)

(** A deliberately broken protocol variant, used only by the mutation
    self-tests of the correctness checkers ([lockiller.check]): each
    fault disables exactly one guard the invariant catalogue is
    supposed to police, proving the checkers actually detect real
    violations (checker-of-the-checker).

    - [Swmr_violation]: the directory forwards a read from an exclusive
      owner without downgrading the owner to shared — two cores end up
      with incompatible views of the line.
    - [Lost_wakeup]: the runtime drops the first waiter when draining a
      wake table — a parked core that nobody will ever wake.
    - [Dirty_commit]: [xend] skips the epoch check that turns a
      committed-but-killed transaction into an abort — a killed
      transaction publishes its speculative writes.
    - [Cross_partition_write]: the protocol delivers a miss to the home
      directory with a bare [Sim.schedule] instead of
      [Sim.schedule_tile] — the request executes in the requester's
      partition and mutates the home tile's directory state from
      there, the exact bug the partition-ownership race detector
      exists to catch.
    - [Short_hop_schedule]: a commit's wakeup is sent with zero delay
      instead of the NoC latency — a cross-partition event below the
      lookahead, violating the conservative-PDES window contract. *)
type injected_fault =
  | Swmr_violation
  | Lost_wakeup
  | Dirty_commit
  | Cross_partition_write
  | Short_hop_schedule

val fault_label : injected_fault -> string
(** Stable CLI/report label: ["swmr-violation"], ["lost-wakeup"],
    ["dirty-commit"], ["cross-partition-write"],
    ["short-hop-schedule"]. *)

val pp_access : Format.formatter -> access -> unit
val pp_mode : Format.formatter -> mode -> unit
val pp_outcome : Format.formatter -> outcome -> unit
