(** MESI directory protocol engine with HTM conflict hooks.

    One instance owns all private L1s, the banked inclusive LLC with
    its directory, and the mesh network. Requests are serialised per
    line at the home bank (atomic-directory model, see DESIGN.md):
    when a request reaches the head of its line's queue the full
    protocol action is decided against current state, latencies of the
    constituent messages (Table I) are charged on the simulated clock,
    and the requester's continuation fires at the computed completion
    time.

    Transactional policy is delegated to a {!Client.t}: the protocol
    detects conflicts from L1 tx bits and asks the client to arbitrate
    (requester-win, recovery/NACK, HTMLock, ...). *)

type t

type config = {
  cores : int;
  l1_size : int;  (** bytes, per core *)
  l1_ways : int;
  l1_hit_latency : int;
  llc_size : int;  (** bytes, total across banks *)
  llc_ways : int;
  llc_hit_latency : int;
  mem_latency : int;
  exclusive_state : bool;
      (** MESI vs MSI: with [false] a sole reader is granted S rather
          than E, so first writes always pay a directory upgrade (no
          silent E->M). Ablation knob; the paper's protocol is MESI. *)
  dir_pointers : int option;
      (** Full-map directory ([None]) or a limited-pointer one: when a
          line has more sharers than pointers, invalidations broadcast
          to every core (cost model only — correctness is unchanged
          because the simulator always knows the true sharers). *)
  dir_shards : int;
      (** Directory shards = LLC banks = per-shard request FIFOs. [0]
          (the default) means one shard per tile — the historical
          machine, bit for bit. A smaller count models a hierarchical
          directory where several tiles share an LLC slice; must not
          exceed [cores]. *)
  dir_hash : Shard.hash;
      (** Address→shard hash; {!Shard.Mod} is the historical
          interleaving. *)
}

val default_config : config
(** Table I values: 32 cores, 32KB 4-way L1 (2 cycles), 8MB 16-way
    shared LLC (12 cycles), 100-cycle memory. *)

val create :
  sim:Lk_engine.Sim.t -> network:Lk_mesh.Network.t -> config -> t
(** The network's topology must have exactly [config.cores] tiles. *)

val set_client : t -> Client.t -> unit
(** Install the transactional policy. Defaults to {!Client.plain}. *)

val set_ledger : t -> Lk_engine.Ledger.t -> unit
(** Feed coherence-level transactional events into an event ledger:
    [Nack] whenever the home replies with a reject ([arg] = winning
    holder core, or [-1] when the LLC overflow signatures rejected) and
    [Abort_kill] whenever a conflicting holder is aborted on behalf of
    a requester ([core] = victim, [arg] = aggressor). Off (and free)
    until called; normally wired by
    [Lk_lockiller.Runtime.enable_ledger]. *)

val set_inject_bug : t -> Types.injected_fault option -> unit
(** Arm (or disarm) a deliberately broken protocol variant for the
    checker mutation self-tests. The only fault this layer implements
    is {!Types.Swmr_violation} — the owner downgrade on a read forward
    is skipped; the other faults live in the runtime and are ignored
    here. Never set in real runs. *)

val sim : t -> Lk_engine.Sim.t
val network : t -> Lk_mesh.Network.t
val config : t -> config

val access :
  t ->
  core:Types.core_id ->
  line:Types.line ->
  what:Types.access ->
  epoch:int ->
  k:(Types.outcome -> unit) ->
  unit
(** Issue a memory access at the current cycle. [epoch] is the
    requester's abort epoch at issue; if the client reports the context
    stale at decision time the request is dropped (its continuation
    still fires, with [Granted], and the core discards it by epoch).
    [k] runs when the access completes or its reject reply arrives. *)

val commit_flush : t -> Types.core_id -> int
(** Clear every transactional bit in the core's L1, keeping all lines
    valid (commit semantics). Returns the number of lines that carried
    tx metadata. *)

val abort_flush : t -> Types.core_id -> int
(** Clear transactional metadata on abort: speculatively written lines
    are invalidated (their data never reached the LLC) and the
    directory is updated accordingly; read lines stay resident.
    Returns the number of lines that carried tx metadata. *)

val flush_core : t -> Types.core_id -> int
(** Drop every line of the core's L1 (dirty lines are written back,
    the directory is updated) — models cache pollution by an OS-level
    event such as a fault handler or context switch. Transactional
    metadata must already be clear. Returns the number of lines
    flushed. *)

val l1 : t -> Types.core_id -> L1_cache.t
(** The core's private L1 (inspection: tests, reports). *)

val llc : t -> Llc.t

val stats : t -> Lk_engine.Stats.group

val check_invariants : t -> unit
(** Assert SWMR, directory exactness, LLC inclusivity and shard
    consistency (bank placement matches the shard hash, busy FIFOs are
    filed under their line's shard, shard homes are valid tiles) over
    the whole machine. Raises [Failure] with a description on
    violation. O(cache capacity); intended for tests. *)

val home_of : t -> Types.line -> Types.core_id
(** Home tile of a line under this configuration: the tile hosting the
    line's directory shard. *)

val plan : t -> Shard.t
(** The directory sharding plan in force. *)

val shards : t -> int

val shard_of : t -> Types.line -> int
(** The directory shard serving a line. *)
