(* Multi-word bitset keyed by core id, 32 bits per word (shift/mask
   index arithmetic, no division). The representation is canonical —
   no trailing zero words, the empty set is the shared [[||]] — so
   structural word-by-word comparison decides equality and [is_empty]
   is a length test. Values are immutable: [add]/[remove] return fresh
   arrays (a one-word array for sets confined to cores 0..31, the
   common case at the paper's machine sizes), which keeps the
   functional interface the directory code was written against. *)

type t = int array

let max_cores = 1024
let word_bits = 5 (* 32 ids per word *)
let word_mask = 31

let check c =
  if c < 0 || c >= max_cores then
    invalid_arg ("Coreset: core id " ^ string_of_int c ^ " out of range")

let empty : t = [||]

let singleton c =
  check c;
  let w = c lsr word_bits in
  let a = Array.make (w + 1) 0 in
  a.(w) <- 1 lsl (c land word_mask);
  a

let mem c s =
  check c;
  let w = c lsr word_bits in
  w < Array.length s && s.(w) land (1 lsl (c land word_mask)) <> 0

let add c s =
  check c;
  let w = c lsr word_bits in
  let n = Array.length s in
  if w < n then
    if s.(w) land (1 lsl (c land word_mask)) <> 0 then s
    else begin
      let a = Array.copy s in
      a.(w) <- a.(w) lor (1 lsl (c land word_mask));
      a
    end
  else begin
    let a = Array.make (w + 1) 0 in
    Array.blit s 0 a 0 n;
    a.(w) <- 1 lsl (c land word_mask);
    a
  end

(* Drop trailing zero words so the result stays canonical. *)
let trim (a : t) =
  let n = ref (Array.length a) in
  while !n > 0 && a.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then empty
  else if !n = Array.length a then a
  else Array.sub a 0 !n

let remove c s =
  check c;
  let w = c lsr word_bits in
  if w >= Array.length s || s.(w) land (1 lsl (c land word_mask)) = 0 then s
  else begin
    let a = Array.copy s in
    a.(w) <- a.(w) land lnot (1 lsl (c land word_mask));
    trim a
  end

let is_empty (s : t) = Array.length s = 0

let cardinal (s : t) =
  let total = ref 0 in
  for i = 0 to Array.length s - 1 do
    let w = ref s.(i) in
    while !w <> 0 do
      w := !w land (!w - 1);
      incr total
    done
  done;
  !total

let fold f (s : t) init =
  let acc = ref init in
  for i = 0 to Array.length s - 1 do
    let w = ref s.(i) in
    let base = i lsl word_bits in
    let b = ref 0 in
    while !w <> 0 do
      if !w land 1 <> 0 then acc := f (base + !b) !acc;
      w := !w lsr 1;
      incr b
    done
  done;
  !acc

let elements s = List.rev (fold (fun c acc -> c :: acc) s [])

let iter f (s : t) =
  for i = 0 to Array.length s - 1 do
    let w = ref s.(i) in
    let base = i lsl word_bits in
    let b = ref 0 in
    while !w <> 0 do
      if !w land 1 <> 0 then f (base + !b);
      w := !w lsr 1;
      incr b
    done
  done

let of_list l = List.fold_left (fun s c -> add c s) empty l

let equal (a : t) (b : t) =
  let n = Array.length a in
  n = Array.length b
  &&
  let i = ref 0 in
  while !i < n && a.(!i) = b.(!i) do
    incr i
  done;
  !i = n

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))
