type t = int

let max_cores = 62

let check c =
  if c < 0 || c >= max_cores then
    invalid_arg ("Coreset: core id " ^ string_of_int c ^ " out of range")

let empty = 0

let singleton c =
  check c;
  1 lsl c

let add c s =
  check c;
  s lor (1 lsl c)

let remove c s =
  check c;
  s land lnot (1 lsl c)

let mem c s =
  check c;
  s land (1 lsl c) <> 0

let is_empty s = s = 0

let cardinal s =
  let rec go s acc = if s = 0 then acc else go (s lsr 1) (acc + (s land 1)) in
  go s 0

let fold f s init =
  let rec go c s acc =
    if s = 0 then acc
    else
      let acc = if s land 1 <> 0 then f c acc else acc in
      go (c + 1) (s lsr 1) acc
  in
  go 0 s init

let elements s = List.rev (fold (fun c acc -> c :: acc) s [])

let iter f s = List.iter f (elements s)

let of_list l = List.fold_left (fun s c -> add c s) empty l

let equal (a : t) b = a = b

let pp ppf s =
  Format.fprintf ppf "{%s}"
    (String.concat "," (List.map string_of_int (elements s)))
