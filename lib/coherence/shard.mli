(** Directory sharding plan: the address→shard hash and the
    shard→home-tile placement of the multi-bank LLC directory.

    The default plan — one shard per tile, {!hash} [Mod] — reproduces
    the historical [line mod tiles] home interleaving exactly. Fewer
    shards than tiles model a hierarchical directory (several tiles per
    LLC slice); the [Mix] hash decorrelates shard choice from low
    address bits for strided workloads. All maps are pure arithmetic:
    allocation-free and identical on every domain. *)

type hash = Mod  (** [line mod count] — the historical interleaving *)
          | Mix  (** multiplicative bit-mix, then mod *)

type t

val make : count:int -> tiles:int -> hash:hash -> t
(** Requires [1 <= count <= tiles]. *)

val count : t -> int
val tiles : t -> int
val hash : t -> hash

val of_line : t -> Types.line -> int
(** Shard owning a line. Allocation-free. *)

val home_tile : t -> int -> int
(** Tile hosting a shard ([s * tiles / count]; identity when
    [count = tiles]). *)

val equal : t -> t -> bool

val hash_name : t -> string
(** ["mod"] or ["mix"] — the fingerprint token. *)
