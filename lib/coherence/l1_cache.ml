type state = M | E | S

type view = {
  line : Types.line;
  state : state;
  dirty : bool;
  tx_read : bool;
  tx_write : bool;
}

type room = Present | Free | Evict of view

(* One mutable slot per way. [tag = -1] encodes an invalid slot. *)
type slot = {
  mutable tag : int;
  mutable st : state;
  mutable dirty : bool;
  mutable tx_read : bool;
  mutable tx_write : bool;
  mutable used : int;  (* LRU timestamp *)
}

type t = {
  nsets : int;
  nways : int;
  slots : slot array;  (* nsets * nways, row-major by set *)
  mutable tick : int;
  (* Lines with a tx bit set, for O(tx-set) commit/abort clearing.
     Kept as a sorted array maintained incrementally (binary-search
     insert/delete), so conflict queries walk it in line order without
     re-sorting and membership tests cost one binary search instead of
     a polymorphic hash. *)
  mutable tx_lines_sorted : int array;
  mutable tx_count : int;
}

let create ~size_bytes ~ways =
  if ways <= 0 then invalid_arg "L1_cache.create: ways must be positive";
  let set_bytes = ways * Addr.line_size in
  if size_bytes <= 0 || size_bytes mod set_bytes <> 0 then
    invalid_arg "L1_cache.create: size must be a multiple of ways * line size";
  let nsets = size_bytes / set_bytes in
  let mk _ =
    { tag = -1; st = S; dirty = false; tx_read = false; tx_write = false;
      used = 0 }
  in
  {
    nsets;
    nways = ways;
    slots = Array.init (nsets * ways) mk;
    tick = 0;
    tx_lines_sorted = Array.make 64 0;
    tx_count = 0;
  }

(* --- tracked-set maintenance ----------------------------------------- *)

(* Index of [line] in the sorted prefix, or [- insertion_point - 1]. *)
let tx_search t line =
  let lo = ref 0 and hi = ref t.tx_count in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.tx_lines_sorted.(mid) < line then lo := mid + 1 else hi := mid
  done;
  if !lo < t.tx_count && t.tx_lines_sorted.(!lo) = line then !lo
  else - !lo - 1

let tx_track t line =
  let i = tx_search t line in
  if i < 0 then begin
    let at = -i - 1 in
    let cap = Array.length t.tx_lines_sorted in
    if t.tx_count = cap then begin
      let bigger = Array.make (2 * cap) 0 in
      Array.blit t.tx_lines_sorted 0 bigger 0 t.tx_count;
      t.tx_lines_sorted <- bigger
    end;
    Array.blit t.tx_lines_sorted at t.tx_lines_sorted (at + 1)
      (t.tx_count - at);
    t.tx_lines_sorted.(at) <- line;
    t.tx_count <- t.tx_count + 1
  end

let tx_untrack t line =
  let i = tx_search t line in
  if i >= 0 then begin
    Array.blit t.tx_lines_sorted (i + 1) t.tx_lines_sorted i
      (t.tx_count - i - 1);
    t.tx_count <- t.tx_count - 1
  end

let sets t = t.nsets
let ways t = t.nways

let set_of t line = line mod t.nsets
let tag_of t line = line / t.nsets
let line_of t ~set ~tag = (tag * t.nsets) + set

let slot_range t line =
  let s = set_of t line in
  (s * t.nways, ((s + 1) * t.nways) - 1)

let find_slot t line =
  let lo, hi = slot_range t line in
  let tag = tag_of t line in
  let rec go i =
    if i > hi then None
    else if t.slots.(i).tag = tag then Some t.slots.(i)
    else go (i + 1)
  in
  go lo

let view_of t ~set slot =
  {
    line = line_of t ~set ~tag:slot.tag;
    state = slot.st;
    dirty = slot.dirty;
    tx_read = slot.tx_read;
    tx_write = slot.tx_write;
  }

let lookup t line =
  match find_slot t line with
  | None -> None
  | Some slot -> Some (view_of t ~set:(set_of t line) slot)

let bump t slot =
  t.tick <- t.tick + 1;
  slot.used <- t.tick

let touch t line =
  match find_slot t line with None -> () | Some slot -> bump t slot

let room_for t line =
  match find_slot t line with
  | Some _ -> Present
  | None ->
    let lo, hi = slot_range t line in
    let free = ref false in
    let best_non_tx = ref None in
    let best_tx = ref None in
    for i = lo to hi do
      let slot = t.slots.(i) in
      if slot.tag = -1 then free := true
      else begin
        let consider best =
          match !best with
          | Some (b : slot) when b.used <= slot.used -> ()
          | _ -> best := Some slot
        in
        if slot.tx_read || slot.tx_write then consider best_tx
        else consider best_non_tx
      end
    done;
    if !free then Free
    else
      let victim =
        match !best_non_tx with Some s -> s | None -> Option.get !best_tx
      in
      Evict (view_of t ~set:(set_of t line) victim)

let insert t line state =
  (match find_slot t line with
  | Some _ -> invalid_arg "L1_cache.insert: line already resident"
  | None -> ());
  let lo, hi = slot_range t line in
  let rec free i =
    if i > hi then invalid_arg "L1_cache.insert: set is full"
    else if t.slots.(i).tag = -1 then t.slots.(i)
    else free (i + 1)
  in
  let slot = free lo in
  slot.tag <- tag_of t line;
  slot.st <- state;
  slot.dirty <- (state = M);
  slot.tx_read <- false;
  slot.tx_write <- false;
  bump t slot

let with_slot t line name f =
  match find_slot t line with
  | None -> invalid_arg ("L1_cache." ^ name ^ ": line not resident")
  | Some slot -> f slot

let set_state t line state =
  with_slot t line "set_state" (fun slot ->
      slot.st <- state;
      if state = M then slot.dirty <- true)

let mark_dirty t line =
  with_slot t line "mark_dirty" (fun slot -> slot.dirty <- true)

let clear_dirty t line =
  with_slot t line "clear_dirty" (fun slot -> slot.dirty <- false)

let mark_tx t line ~write =
  with_slot t line "mark_tx" (fun slot ->
      if write then slot.tx_write <- true else slot.tx_read <- true;
      tx_track t line)

let remove t line =
  with_slot t line "remove" (fun slot ->
      let v = view_of t ~set:(set_of t line) slot in
      slot.tag <- -1;
      slot.dirty <- false;
      slot.tx_read <- false;
      slot.tx_write <- false;
      tx_untrack t line;
      v)

let resident t line = find_slot t line <> None

(* The tracked set is already in ascending line order; collecting back
   to front builds the sorted view list with no sort and no reversal. *)
let tx_lines t =
  let acc = ref [] in
  for i = t.tx_count - 1 downto 0 do
    match lookup t t.tx_lines_sorted.(i) with
    | Some v when v.tx_read || v.tx_write -> acc := v :: !acc
    | _ -> ()
  done;
  !acc

let clear_tx t ~drop_written =
  let views = tx_lines t in
  List.iter
    (fun (v : view) ->
      if drop_written && v.tx_write then ignore (remove t v.line)
      else
        with_slot t v.line "clear_tx" (fun slot ->
            slot.tx_read <- false;
            slot.tx_write <- false))
    views;
  t.tx_count <- 0;
  views

let occupancy t =
  Array.fold_left (fun acc slot -> if slot.tag = -1 then acc else acc + 1) 0
    t.slots

let tx_count t = t.tx_count

let iter t f =
  Array.iteri
    (fun i slot ->
      if slot.tag <> -1 then f (view_of t ~set:(i / t.nways) slot))
    t.slots
