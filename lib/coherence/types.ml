type core_id = int
type line = int

type access = Read | Write | Rmw

let is_write = function Read -> false | Write | Rmw -> true

type mode = Htm_tx | Lock_tx | Non_tx

type party = { mode : mode; priority : int }

let non_tx_party = { mode = Non_tx; priority = max_int }

type outcome = Granted | Rejected of { by : core_id option }

type injected_fault =
  | Swmr_violation
  | Lost_wakeup
  | Dirty_commit
  | Cross_partition_write
  | Short_hop_schedule

let fault_label = function
  | Swmr_violation -> "swmr-violation"
  | Lost_wakeup -> "lost-wakeup"
  | Dirty_commit -> "dirty-commit"
  | Cross_partition_write -> "cross-partition-write"
  | Short_hop_schedule -> "short-hop-schedule"

let pp_access ppf a =
  Format.pp_print_string ppf
    (match a with Read -> "read" | Write -> "write" | Rmw -> "rmw")

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with Htm_tx -> "htm" | Lock_tx -> "lock" | Non_tx -> "non-tx")

let pp_outcome ppf = function
  | Granted -> Format.pp_print_string ppf "granted"
  | Rejected { by = Some c } -> Format.fprintf ppf "rejected(by core %d)" c
  | Rejected { by = None } -> Format.pp_print_string ppf "rejected(by llc)"
