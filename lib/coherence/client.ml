(* Hooks the transactional layer (htm / lockiller) installs into the
   coherence protocol. The protocol detects conflicts using L1/LLC
   transactional metadata; *policy* — who wins, what an overflow does,
   what the LLC signatures contain — lives behind this interface, so
   the same protocol engine runs everything from plain requester-win
   best-effort HTM to full LockillerTM. *)

type verdict =
  | Abort_holder
      (* Original requester-win outcome: the transaction holding the
         line dies and the request proceeds. *)
  | Reject_requester
      (* Recovery mechanism: the request is withdrawn with a NACK-like
         reply and the holder's state is untouched. *)

type eviction_directive =
  | Abort_tx of int
      (* The victim's transaction was aborted (capacity overflow); the
         payload is extra latency charged to the triggering request. *)
  | Spill of { write : bool; extra : int }
      (* Lock-transaction overflow: move the line into the LLC overflow
         signature (OfWrSig when [write]) and continue. [extra] covers
         e.g. a successful switchingMode round-trip to the LLC. *)

type t = {
  context : core:Types.core_id -> epoch:int -> Types.party option;
      (* Requester context at decision time. [None] means the request
         is stale: the issuing transaction aborted after issue and the
         protocol must drop the request without side effects. *)
  party_of : Types.core_id -> Types.party;
      (* Live execution mode/priority of a core (used for holders). *)
  resolve :
    requester:Types.core_id * Types.party ->
    holder:Types.core_id * Types.party ->
    line:Types.line ->
    write:bool ->
    verdict;
      (* Conflict arbitration (Fig 4). Must never return [Abort_holder]
         for a [Lock_tx] holder — lock transactions are irrevocable. *)
  abort :
    victim:Types.core_id ->
    aggressor:Types.core_id ->
    aggressor_mode:Types.mode ->
    line:Types.line ->
    unit;
      (* Perform the software-visible side of a conflict abort (classify
         the reason, roll back the value layer, schedule the retry). The
         implementation must call [Protocol.abort_flush] to clear the
         victim's cache metadata. Capacity-induced aborts (L1 or LLC
         eviction of a transactional line) go through [on_tx_eviction]
         instead. *)
  on_tx_eviction :
    core:Types.core_id -> view:L1_cache.view -> eviction_directive;
      (* A transactional line must leave the victim core's L1 (capacity).
         Decide between aborting (best-effort HTM), spilling to the LLC
         signatures (TL mode), or switching to STL first and then
         spilling (switchingMode). *)
  llc_check :
    requester:Types.core_id ->
    requester_mode:Types.mode ->
    line:Types.line ->
    write:bool ->
    would_be_exclusive:bool ->
    verdict option;
      (* HTMLock overflow-signature filter at the LLC. [None] = no
         opinion (normal flow); [Some Reject_requester] = NACK the
         request. Never returns [Some Abort_holder]. *)
  on_reject :
    requester:Types.core_id -> by:Types.core_id option -> line:Types.line -> unit;
      (* A reject reply is on its way to [requester]; used to populate
         wake-up tables. *)
  tx_age : Types.core_id -> int;
      (* Cycles since the core's current transactional attempt began
         (xbegin / swbegin / HTMLock entry), 0 when it is not in one.
         Feeds the ledger's causal-attribution packing
         ({!Lk_engine.Ledger.pack_attr}) so every conflict record
         carries the victim's wasted-work age. Must not allocate. *)
}

(* A client that never detects transactions: plain MESI. Useful for the
   CGL system and for protocol unit tests. *)
let plain =
  {
    context = (fun ~core:_ ~epoch:_ -> Some Types.non_tx_party);
    party_of = (fun _ -> Types.non_tx_party);
    resolve = (fun ~requester:_ ~holder:_ ~line:_ ~write:_ -> Abort_holder);
    abort = (fun ~victim:_ ~aggressor:(_ : Types.core_id) ~aggressor_mode:_ ~line:_ -> ());
    on_tx_eviction = (fun ~core:_ ~view:_ -> Abort_tx 0);
    llc_check =
      (fun ~requester:_ ~requester_mode:_ ~line:_ ~write:_
           ~would_be_exclusive:_ -> None);
    on_reject = (fun ~requester:_ ~by:_ ~line:_ -> ());
    tx_age = (fun _ -> 0);
  }
