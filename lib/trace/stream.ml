(* lint: allow printf — decode errors and the text codec build their
   messages with [Printf.sprintf]; the per-record binary path does
   not allocate strings. *)

type format = Text | Binary

let format_of_string = function
  | "text" -> Ok Text
  | "bin" -> Ok Binary
  | s -> Error (Printf.sprintf "unknown trace format %S (expected text or bin)" s)

let format_to_string = function Text -> "text" | Binary -> "bin"

let magic = "lktrace"
let version = 1

(* {1 Reading} *)

type state = Streaming | Done | Failed of string

type reader = {
  ic : in_channel;
  name : string;
  fmt : format;
  mutable line : int;  (** 1-based; the header is line 1. *)
  mutable last_arrival : int;
  mutable n_read : int;
  mutable state : state;
}

let err r fmt_str =
  Printf.ksprintf
    (fun msg -> Printf.sprintf "%s, line %d: %s" r.name r.line msg)
    fmt_str

let reader_of_channel ?(name = "<trace>") ic =
  match input_line ic with
  | exception End_of_file -> Error (Printf.sprintf "%s: empty input, missing trace header" name)
  | header -> (
      match String.split_on_char ' ' header with
      | [ m; v; f ] when m = magic -> (
          match (int_of_string_opt v, format_of_string f) with
          | Some v, Ok fmt when v = version ->
              Ok
                {
                  ic;
                  name;
                  fmt;
                  line = 1;
                  last_arrival = 0;
                  n_read = 0;
                  state = Streaming;
                }
          | Some v, Ok _ when v <> version ->
              Error
                (Printf.sprintf "%s: unsupported trace version %d (this build reads version %d)"
                   name v version)
          | _ ->
              Error (Printf.sprintf "%s: malformed trace header %S" name header))
      | _ ->
          Error
            (Printf.sprintf
               "%s: not a trace (expected header \"%s %d text|bin\", got %S)" name
               magic version header))

let format r = r.fmt

(* The binary decode path runs once per trace record inside the replay
   feeder, so it is written exception-style: the five varints come back
   as bare ints (no [Ok] box, no [Result.bind] closure per field) and
   malformed input raises [Decode_error], converted to [Error] once at
   the record boundary. The only allocations left per record are the
   record itself and its [Ok (Some _)] wrapping — callers may retain
   returned records, so those stay fresh. *)
exception Decode_error of string

let truncated r =
  raise
    (Decode_error
       (err r "truncated record (unexpected end of input mid-varint)"))

(* LEB128 unsigned varint, continuing from [acc] at bit [shift]. *)
let rec varint_tail r shift acc =
  if shift > 62 then raise (Decode_error (err r "varint overflows 63 bits"))
  else
    match input_byte r.ic with
    | exception End_of_file -> truncated r
    | b ->
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then acc else varint_tail r (shift + 7) acc

let read_varint r =
  match input_byte r.ic with
  | exception End_of_file -> truncated r
  | b0 -> if b0 land 0x80 = 0 then b0 else varint_tail r 7 (b0 land 0x7f)

let check_monotone r (rec_ : Record.t) =
  if rec_.arrival < r.last_arrival then
    Error
      (err r "arrival cycle %d is earlier than the previous record's (%d)"
         rec_.arrival r.last_arrival)
  else begin
    r.last_arrival <- rec_.arrival;
    r.n_read <- r.n_read + 1;
    Ok (Some rec_)
  end

let read_text r =
  match input_line r.ic with
  | exception End_of_file ->
      r.state <- Done;
      Ok None
  | line -> (
      r.line <- r.line + 1;
      match Record.of_line line with
      | Error e -> Error (err r "%s" e)
      | Ok rec_ -> check_monotone r rec_)

let read_binary r =
  match input_byte r.ic with
  | exception End_of_file ->
      r.state <- Done;
      Ok None
  | b0 -> (
      r.line <- r.line + 1;
      (* [line] counts records past the header in binary mode. *)
      match
        let delta =
          if b0 land 0x80 = 0 then b0 else varint_tail r 7 (b0 land 0x7f)
        in
        let core1 = read_varint r in
        let reads = read_varint r in
        let writes = read_varint r in
        let phase = read_varint r in
        ({
           arrival = r.last_arrival + delta;
           core = core1 - 1;
           reads;
           writes;
           phase;
         }
          : Record.t)
      with
      | rec_ -> (
          match Record.validate rec_ with
          | Ok () -> check_monotone r rec_
          | Error e -> Error (err r "%s" e))
      | exception Decode_error e -> Error e)

let read r =
  match r.state with
  | Done -> Ok None
  | Failed e -> Error e
  | Streaming -> (
      let res = match r.fmt with Text -> read_text r | Binary -> read_binary r in
      match res with
      | Error e ->
          r.state <- Failed e;
          res
      | Ok _ -> res)

let fold r ~init ~f =
  let rec go acc =
    match read r with
    | Error _ as e -> e
    | Ok None -> Ok acc
    | Ok (Some rec_) -> go (f acc rec_)
  in
  go init

(* {1 Writing} *)

type writer = {
  oc : out_channel;
  wfmt : format;
  mutable w_last : int;
  mutable n_written : int;
}

let writer_to_channel fmt oc =
  Printf.fprintf oc "%s %d %s\n" magic version (format_to_string fmt);
  { oc; wfmt = fmt; w_last = 0; n_written = 0 }

let write_varint oc v =
  let rec go v =
    if v < 0x80 then output_byte oc v
    else begin
      output_byte oc (v land 0x7f lor 0x80);
      go (v lsr 7)
    end
  in
  go v

let write w (rec_ : Record.t) =
  match Record.validate rec_ with
  | Error _ as e -> e
  | Ok () ->
      if rec_.arrival < w.w_last then
        Error
          (Printf.sprintf
             "record %d: arrival cycle %d is earlier than the previous record's (%d)"
             (w.n_written + 1) rec_.arrival w.w_last)
      else begin
        (match w.wfmt with
        | Text -> output_string w.oc (Record.to_line rec_ ^ "\n")
        | Binary ->
            write_varint w.oc (rec_.arrival - w.w_last);
            write_varint w.oc (rec_.core + 1);
            write_varint w.oc rec_.reads;
            write_varint w.oc rec_.writes;
            write_varint w.oc rec_.phase);
        w.w_last <- rec_.arrival;
        w.n_written <- w.n_written + 1;
        Ok ()
      end

let count w = w.n_written
