(* lint: allow printf — the [Printf.sprintf] uses are validation and
   text-encoding error messages on cold paths; the binary codec in
   [Stream] is the hot path and stays formatter-free. *)

type t = { arrival : int; core : int; reads : int; writes : int; phase : int }

let max_phase = 15

let validate r =
  if r.arrival < 0 then Error (Printf.sprintf "arrival must be non-negative (got %d)" r.arrival)
  else if r.core < -1 then Error (Printf.sprintf "core must be >= -1 (got %d)" r.core)
  else if r.reads < 0 then Error (Printf.sprintf "reads must be non-negative (got %d)" r.reads)
  else if r.writes < 0 then
    Error (Printf.sprintf "writes must be non-negative (got %d)" r.writes)
  else if r.phase < 0 || r.phase > max_phase then
    Error (Printf.sprintf "phase must be in [0, %d] (got %d)" max_phase r.phase)
  else Ok ()

let equal (a : t) (b : t) = a = b

let pp ppf r =
  Format.fprintf ppf "@[<h>{arrival=%d; core=%d; reads=%d; writes=%d; phase=%d}@]"
    r.arrival r.core r.reads r.writes r.phase

let to_line r =
  Printf.sprintf "%d %d %d %d %d" r.arrival r.core r.reads r.writes r.phase

let of_line line =
  let fields =
    String.split_on_char ' ' line |> List.filter (fun s -> s <> "")
  in
  match fields with
  | [ a; c; r; w; p ] -> (
      let int_field what s =
        match int_of_string_opt s with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "%s is not an integer (got %S)" what s)
      in
      let ( let* ) = Result.bind in
      let* arrival = int_field "arrival" a in
      let* core = int_field "core" c in
      let* reads = int_field "reads" r in
      let* writes = int_field "writes" w in
      let* phase = int_field "phase" p in
      let rec_ = { arrival; core; reads; writes; phase } in
      let* () = validate rec_ in
      Ok rec_)
  | fields ->
      Error
        (Printf.sprintf "expected 5 fields (arrival core reads writes phase), got %d"
           (List.length fields))
