(* lint: allow printf — error messages for profile validation are
   built with [Printf.sprintf] on the cold setup path; generation
   itself reports nothing.
   lint: allow hashtbl — a single [Hashtbl.hash] seeds the stream RNG
   at setup; no table is ever built. *)

open Lk_engine

type affinity = Any | Uniform | Sticky

type profile = {
  users : int;
  think_time : float;
  duration : int;
  day : int;
  diurnal_amp : float;
  burst_every : int;
  burst_len : int;
  burst_mult : float;
  reads_per_tx : int * int;
  writes_per_tx : int * int;
  cores : int;
  affinity : affinity;
  sticky_skew : float;
}

let default =
  {
    users = 10_000;
    think_time = 100_000.;
    duration = 1_000_000;
    day = 250_000;
    diurnal_amp = 0.3;
    burst_every = 200_000;
    burst_len = 20_000;
    burst_mult = 3.0;
    reads_per_tx = (4, 8);
    writes_per_tx = (2, 4);
    cores = 8;
    affinity = Any;
    sticky_skew = 0.8;
  }

let validate p =
  let range what (lo, hi) =
    if lo < 0 then Error (Printf.sprintf "%s lower bound must be non-negative (got %d)" what lo)
    else if hi < lo then
      Error (Printf.sprintf "%s range is empty (%d > %d)" what lo hi)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let* () =
    if p.users <= 0 then Error (Printf.sprintf "users must be positive (got %d)" p.users)
    else Ok ()
  in
  let* () =
    if p.think_time <= 0. then
      Error (Printf.sprintf "think-time must be positive (got %g)" p.think_time)
    else Ok ()
  in
  let* () =
    if p.duration <= 0 then
      Error (Printf.sprintf "duration must be positive (got %d)" p.duration)
    else Ok ()
  in
  let* () =
    if p.day <= 0 then Error (Printf.sprintf "day must be positive (got %d)" p.day)
    else Ok ()
  in
  let* () =
    if p.diurnal_amp < 0. || p.diurnal_amp >= 1. then
      Error
        (Printf.sprintf "diurnal amplitude must be in [0, 1) (got %g)" p.diurnal_amp)
    else Ok ()
  in
  let* () =
    if p.burst_every < 0 then
      Error (Printf.sprintf "burst period must be non-negative (got %d)" p.burst_every)
    else if p.burst_every > 0 && (p.burst_len <= 0 || p.burst_len > p.burst_every)
    then
      Error
        (Printf.sprintf "burst length must be in [1, burst period] (got %d)" p.burst_len)
    else Ok ()
  in
  let* () =
    if p.burst_mult < 1. then
      Error (Printf.sprintf "burst multiplier must be >= 1 (got %g)" p.burst_mult)
    else Ok ()
  in
  let* () = range "reads-per-tx" p.reads_per_tx in
  let* () = range "writes-per-tx" p.writes_per_tx in
  let* () =
    if p.cores <= 0 then Error (Printf.sprintf "cores must be positive (got %d)" p.cores)
    else Ok ()
  in
  if p.sticky_skew < 0. then
    Error (Printf.sprintf "sticky skew must be non-negative (got %g)" p.sticky_skew)
  else Ok ()

let pi = 4.0 *. atan 1.0

(* Instantaneous arrival rate at cycle [t] (arrivals per cycle). *)
let rate p t =
  let base = float_of_int p.users /. p.think_time in
  let diurnal =
    1. +. (p.diurnal_amp *. sin (2. *. pi *. float_of_int (t mod p.day) /. float_of_int p.day))
  in
  let burst =
    if p.burst_every > 0 && t mod p.burst_every < p.burst_len then p.burst_mult
    else 1.
  in
  base *. diurnal *. burst

let uniform_in rng (lo, hi) = if hi <= lo then lo else lo + Rng.int rng (hi - lo + 1)

(* Phase tag: the quarter of the diurnal day the cycle falls in. *)
let t_phase p cycle = 4 * (cycle mod p.day) / p.day

let generate p ~seed ~emit =
  match validate p with
  | Error _ as e -> e
  | Ok () ->
      let rng = Rng.create (seed + (1299721 * Hashtbl.hash "gen-trace")) in
      let arrivals = Rng.split rng in
      let bodies = Rng.split rng in
      let users = Rng.split rng in
      let rate_max =
        float_of_int p.users /. p.think_time
        *. (1. +. p.diurnal_amp)
        *. (if p.burst_every > 0 then p.burst_mult else 1.)
      in
      let count = ref 0 in
      (* Thinning: candidate arrivals at the envelope rate [rate_max],
         each kept with probability rate(t) / rate_max. *)
      let t = ref 0.0 in
      let continue = ref true in
      while !continue do
        t := !t +. Rng.exponential arrivals (1. /. rate_max);
        let cycle = int_of_float !t in
        if cycle >= p.duration then continue := false
        else if Rng.chance arrivals (rate p cycle /. rate_max) then begin
          let core =
            match p.affinity with
            | Any -> -1
            | Uniform -> Rng.int users p.cores
            | Sticky ->
                let user = Rng.zipf users ~n:p.users ~s:p.sticky_skew in
                user mod p.cores
          in
          let phase = t_phase p cycle in
          emit
            {
              Record.arrival = cycle;
              core;
              reads = uniform_in bodies p.reads_per_tx;
              writes = uniform_in bodies p.writes_per_tx;
              phase;
            };
          incr count
        end
      done;
      Ok !count
