(** Deterministic open-loop traffic generator.

    Models a large population of users issuing transactions as a
    non-homogeneous Poisson process: the instantaneous arrival rate is

    {v rate(t) = users / think_time * (1 + diurnal_amp * sin(2*pi*t / day))
               * (burst_mult when t falls inside a burst window) v}

    sampled by thinning, so generation is O(1) memory regardless of
    [users] or [duration]. Each arrival's phase tag is the quarter of
    the diurnal [day] it falls in (0..3). *)

type affinity =
  | Any  (** No affinity: records carry core [-1]. *)
  | Uniform  (** Each arrival picks a uniform core in [0, cores). *)
  | Sticky
      (** Each arrival belongs to a Zipf-distributed user (skew
          [sticky_skew]) pinned to [user mod cores] — popular users hammer
          the same core, a service-mesh session-affinity pattern. *)

type profile = {
  users : int;  (** Simulated user population. *)
  think_time : float;  (** Mean cycles between one user's transactions. *)
  duration : int;  (** Trace horizon in cycles. *)
  day : int;  (** Diurnal period in cycles. *)
  diurnal_amp : float;  (** Rate modulation amplitude in [0, 1). *)
  burst_every : int;  (** Burst window period in cycles; 0 disables. *)
  burst_len : int;  (** Burst window length in cycles. *)
  burst_mult : float;  (** Rate multiplier inside a burst (>= 1). *)
  reads_per_tx : int * int;  (** Inclusive uniform range. *)
  writes_per_tx : int * int;
  cores : int;  (** Target core count for affinity tagging. *)
  affinity : affinity;
  sticky_skew : float;  (** Zipf skew for [Sticky]. *)
}

val default : profile
(** 10k users, think time 100k cycles, 1M-cycle horizon over a
    250k-cycle day, 30% diurnal swing, 3x bursts, vacation-like 4-8
    read / 2-4 write footprints, 8 cores, no affinity. *)

val validate : profile -> (unit, string) result

val generate :
  profile -> seed:int -> emit:(Record.t -> unit) -> (int, string) result
(** Streams the trace through [emit] in arrival order and returns the
    record count. Deterministic in (profile, seed). *)
