(** One trace record: a transaction arrival.

    A trace is a sequence of records with nondecreasing [arrival]
    cycles. The record carries only the transaction's *footprint* —
    how many shared reads and writes its body performs — not the body
    itself; the replay engine synthesises a concrete body from the
    footprint and a workload profile at service time, so a trace of
    millions of arrivals costs a few bytes per transaction on disk and
    O(1) memory to replay. *)

type t = {
  arrival : int;  (** Absolute arrival cycle (>= 0, nondecreasing). *)
  core : int;
      (** Preferred service core, or [-1] for no affinity (the replay
          dispatcher balances round-robin). *)
  reads : int;  (** Shared-region reads in the body. *)
  writes : int;  (** Writes in the body. *)
  phase : int;
      (** Workload phase tag in [0, 15] — e.g. the generator's
          time-of-day quarter. Replay reports completions per phase. *)
}

val max_phase : int
(** 15: phases fit 4 bits in the binary encoding. *)

val validate : t -> (unit, string) result
(** Field-range check (arrival/reads/writes non-negative, core >= -1,
    phase in [0, {!max_phase}]). Monotonicity across records is checked
    by the streaming reader/writer, not here. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Line codec} — one record per line, [arrival core reads writes
    phase] as space-separated decimals. *)

val to_line : t -> string

val of_line : string -> (t, string) result
(** Parses one line; rejects missing/extra/ill-typed fields and any
    field out of range. *)
