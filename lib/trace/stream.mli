(** Streaming trace I/O.

    A trace file starts with a one-line header identifying the format,
    followed by the records:

    - [lktrace 1 text] — one record per line ({!Record.to_line}).
    - [lktrace 1 bin] — per record, five LEB128 varints: the arrival
      delta from the previous record, [core + 1], [reads], [writes],
      [phase]. Delta encoding makes nondecreasing arrivals cheap (a
      steady stream costs ~5 bytes per transaction).

    Readers and writers are strictly streaming: memory use is
    independent of trace length. Both enforce nondecreasing arrival
    cycles; readers reject truncated or garbage input with a
    position-tagged error. *)

type format = Text | Binary

val format_of_string : string -> (format, string) result
(** ["text"] or ["bin"]. *)

val format_to_string : format -> string

(** {1 Reading} *)

type reader

val reader_of_channel : ?name:string -> in_channel -> (reader, string) result
(** Consumes and checks the header. [name] labels errors (defaults to
    ["<trace>"]); the channel is not closed by the reader. *)

val format : reader -> format

val read : reader -> (Record.t option, string) result
(** Next record; [Ok None] at clean end-of-trace. Errors on malformed
    input, mid-record truncation, or an arrival earlier than its
    predecessor; after an error or end-of-trace, subsequent calls
    return the same result. *)

val fold :
  reader -> init:'a -> f:('a -> Record.t -> 'a) -> ('a, string) result
(** Folds [f] over the remaining records. *)

(** {1 Writing} *)

type writer

val writer_to_channel : format -> out_channel -> writer
(** Emits the header immediately. The channel is not closed (nor
    flushed) by the writer; call [flush] on completion. *)

val write : writer -> Record.t -> (unit, string) result
(** Appends a record; rejects invalid fields and arrivals earlier than
    the previous record's. *)

val count : writer -> int
(** Records written so far. *)
