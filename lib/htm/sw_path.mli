(** Bookkeeping for the TL2-style software fallback path.

    A software transaction reads optimistically, buffers its writes in
    the speculative {!Store} buffer, and at commit time locks its
    write set, validates its read set and publishes. The unit of
    versioning is a {e slot}: cache lines hash onto a fixed table of
    {!slots} version stamps (TL2's striped lock table), so false
    conflicts between lines sharing a slot are possible — exactly as
    in the real algorithm.

    Each slot's stamp is one word of committed memory at a reserved
    meta line ({!meta_line_of_slot}), encoded by {!stamp_word} /
    {!version_of} / {!locked}: low bit = commit-time write lock, upper
    bits = the version (a {!Global_clock} write stamp). Keeping stamps
    in ordinary memory means software validation traffic flows through
    the coherence protocol and — under the [Access_check]
    instrumentation scheme — conflicts with hardware transactions that
    touched the same meta line.

    This module itself is pure bookkeeping (no coherence traffic, no
    allocation after {!create}): per-core read/write sets on fixed
    scratch arrays and the lock-ownership table the runtime uses to
    detect lock conflicts. *)

val slots : int
(** Number of version-stamp slots (256). *)

val meta_base_line : Lk_coherence.Types.line
(** First meta line; the table occupies
    [meta_base_line .. meta_base_line + slots - 1], far above any
    workload data line. *)

val slot_of_line : Lk_coherence.Types.line -> int
(** The slot a data line hashes to ([line mod slots]). *)

val meta_line : Lk_coherence.Types.line -> Lk_coherence.Types.line
(** The meta line carrying [slot_of_line line]'s stamp. *)

val meta_line_of_slot : int -> Lk_coherence.Types.line
val meta_addr_of_slot : int -> int
(** Byte address of a slot's stamp word. *)

val gate_line : Lk_coherence.Types.line
(** The software-mode gate of the [Uninstrumented] scheme (line 3): a
    population count of running software transactions. Hardware
    transactions subscribe to it at begin and abort unless it is 0;
    software transactions RMW it on entry/exit, so entering software
    mode kills every subscribed hardware transaction. *)

val gate_addr : int

(** {1 Meta-word encoding} *)

val locked : int -> bool
(** Low bit: a writer holds the slot's commit-time lock. *)

val version_of : int -> int
(** The version stamp (upper bits). *)

val stamp_word : int -> int
(** [stamp_word v] is the unlocked word carrying version [v]. *)

val lock_word : int -> int
(** Set the lock bit, preserving the version. *)

(** {1 Per-core transaction state} *)

type t

val create : cores:int -> t

val set_witness : t -> (int -> unit) -> unit
(** Install a race-detector witness, called with [core] from
    {!note_read} and {!note_write} — the per-core sets are core-local
    state. The global lock-owner table is commit-time shared state and
    is not hooked (see {!Store.set_witness}). Defaults to a no-op. *)

val reset : t -> int -> unit
(** Clear a core's read and write sets (begin / after abort). Locks
    are released separately ({!unlock_all}). *)

val note_read : t -> core:int -> slot:int -> version:int -> unit
(** Record a read of [slot] at [version] (the first observation wins;
    commit-time validation exact-matches it). *)

val note_write : t -> core:int -> slot:int -> unit

val reads : t -> core:int -> int
val writes : t -> core:int -> int

val iter_reads : t -> core:int -> (int -> int -> unit) -> unit
(** [iter_reads t ~core f] calls [f slot version] per read-set entry. *)

val sort_writes : t -> core:int -> unit
(** Sort the write set ascending — locks must be taken in slot order
    so concurrent software commits cannot deadlock. *)

val iter_writes : t -> core:int -> (int -> unit) -> unit

(** {1 Commit-time write locks} *)

val owner : t -> int -> int option

val owner_id : t -> int -> int
(** Like {!owner} but allocation-free: the core holding the slot's
    write lock, or -1 when free. The validation-abort attribution path
    reads this to name the aggressor without boxing an option. *)

val try_lock : t -> core:int -> int -> bool
(** Take [slot]'s lock for [core]; true if acquired (or already held
    by [core]), false if another core holds it. *)

val unlock : t -> core:int -> int -> unit
val unlock_all : t -> core:int -> unit
val locks_held : t -> core:int -> int
