type reject_policy = Self_abort | Retry_later of int | Wait_wakeup

type priority_policy =
  | No_priority
  | Insts_based
  | Progression_based
  | Static_based

type lock_impl = Ttas | Ticket

type retry = { max_retries : int; backoff_base : int; backoff_cap : int }

let default_retry = { max_retries = 6; backoff_base = 32; backoff_cap = 2048 }

let backoff_delay r ~attempt =
  if attempt < 0 then invalid_arg "Policy.backoff_delay: negative attempt";
  let shift = Int.min attempt 20 in
  Int.min r.backoff_cap (r.backoff_base * (1 lsl shift))

let pp_reject_policy ppf = function
  | Self_abort -> Format.pp_print_string ppf "self-abort"
  | Retry_later n -> Format.fprintf ppf "retry-later(%d)" n
  | Wait_wakeup -> Format.pp_print_string ppf "wait-wakeup"

let pp_priority_policy ppf = function
  | No_priority -> Format.pp_print_string ppf "none"
  | Insts_based -> Format.pp_print_string ppf "insts-based"
  | Progression_based -> Format.pp_print_string ppf "progression-based"
  | Static_based -> Format.pp_print_string ppf "static"

let pp_lock_impl ppf = function
  | Ttas -> Format.pp_print_string ppf "ttas"
  | Ticket -> Format.pp_print_string ppf "ticket"
