type reject_policy = Self_abort | Retry_later of int | Wait_wakeup

type priority_policy =
  | No_priority
  | Insts_based
  | Progression_based
  | Static_based

type lock_impl = Ttas | Ticket

type retry = { max_retries : int; backoff_base : int; backoff_cap : int }

let default_retry = { max_retries = 6; backoff_base = 32; backoff_cap = 2048 }

let backoff_delay r ~attempt =
  if attempt < 0 then invalid_arg "Policy.backoff_delay: negative attempt";
  let shift = Int.min attempt 20 in
  Int.min r.backoff_cap (r.backoff_base * (1 lsl shift))

let pp_reject_policy ppf = function
  | Self_abort -> Format.pp_print_string ppf "self-abort"
  | Retry_later n -> Format.fprintf ppf "retry-later(%d)" n
  | Wait_wakeup -> Format.pp_print_string ppf "wait-wakeup"

let pp_priority_policy ppf = function
  | No_priority -> Format.pp_print_string ppf "none"
  | Insts_based -> Format.pp_print_string ppf "insts-based"
  | Progression_based -> Format.pp_print_string ppf "progression-based"
  | Static_based -> Format.pp_print_string ppf "static"

let pp_lock_impl ppf = function
  | Ttas -> Format.pp_print_string ppf "ttas"
  | Ticket -> Format.pp_print_string ppf "ticket"

type clock_scheme = Gv1 | Gv5

type fallback_path = Cgl_lock | Tl2

type instrumentation = Uninstrumented | Read_check | Access_check

let pp_clock_scheme ppf = function
  | Gv1 -> Format.pp_print_string ppf "gv1"
  | Gv5 -> Format.pp_print_string ppf "gv5"

let pp_fallback_path ppf = function
  | Cgl_lock -> Format.pp_print_string ppf "cgl-lock"
  | Tl2 -> Format.pp_print_string ppf "tl2"

let pp_instrumentation ppf = function
  | Uninstrumented -> Format.pp_print_string ppf "none"
  | Read_check -> Format.pp_print_string ppf "read-check"
  | Access_check -> Format.pp_print_string ppf "access-check"
