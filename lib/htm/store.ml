module Int_table = Lk_engine.Int_table

type addr = int

(* Committed memory and the per-core buffers are read or written on
   every simulated load/store, so both live in the int-specialised
   open-addressing table rather than a polymorphic [Hashtbl]. *)
type t = {
  mem : int Int_table.t;
  buffers : int Int_table.t array;
  mutable ledger : Lk_engine.Ledger.t option;
  (* Race-detector hook, called with the core whose speculative buffer
     a write mutates. The buffers are core-local state (the modelled
     L1 write buffer), so the runtime points this at its per-core
     region witness; committed memory is deliberately not hooked — a
     commit publishes from whatever event performs it. *)
  mutable witness : int -> unit;
  (* Cycles since the core's current attempt began, for the wasted-work
     attribution packed into [Spec_discard]; installed by the runtime,
     0 outside an attempt. *)
  mutable age_of : int -> int;
}

let create ~cores =
  if cores <= 0 then invalid_arg "Store.create: cores must be positive";
  {
    mem = Int_table.create ~capacity:4096 ~dummy:0 ();
    buffers =
      Array.init cores (fun _ -> Int_table.create ~capacity:64 ~dummy:0 ());
    ledger = None;
    witness = ignore;
    age_of = (fun _ -> 0);
  }

let set_ledger t ledger = t.ledger <- Some ledger
let set_witness t f = t.witness <- f
let set_age_of t f = t.age_of <- f

let committed t addr = Int_table.find t.mem addr ~default:0

let poke t addr v = Int_table.replace t.mem addr v

let read t ~core ~speculative addr =
  if speculative then
    match Int_table.find_opt t.buffers.(core) addr with
    | Some v -> v
    | None -> committed t addr
  else committed t addr

let write t ~core ~speculative addr v =
  if speculative then begin
    t.witness core;
    Int_table.replace t.buffers.(core) addr v
  end
  else Int_table.replace t.mem addr v

let commit t ~core =
  let buf = t.buffers.(core) in
  let n = Int_table.length buf in
  Int_table.iter buf (fun addr v -> Int_table.replace t.mem addr v);
  Int_table.reset buf;
  (match t.ledger with
  | None -> ()
  | Some l -> Lk_engine.Ledger.emit l ~core Lk_engine.Ledger.Spec_publish ~arg:n);
  n

let discard t ~core =
  let buf = t.buffers.(core) in
  let n = Int_table.length buf in
  Int_table.reset buf;
  (match t.ledger with
  | None -> ()
  | Some l ->
    Lk_engine.Ledger.emit l ~core Lk_engine.Ledger.Spec_discard
      ~arg:(Lk_engine.Ledger.pack_discard ~writes:n ~age:(t.age_of core)));
  n

let buffered t ~core = Int_table.length t.buffers.(core)

let iter_buffered t ~core f = Int_table.iter t.buffers.(core) f

let iter_committed t f = Int_table.iter t.mem f

let footprint t = Int_table.length t.mem
