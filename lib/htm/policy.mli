(** Configuration knobs of the transactional systems in Table II.

    The paper composes its systems from: the recovery mechanism
    (reject/NACK support), a requester-side policy for rejected
    requests, a transaction priority scheme, the HTMLock mechanism and
    the switchingMode mechanism. *)

(** What a requester does when its conflicting request is withdrawn by
    the recovery mechanism (Section III-A: "abort directly, pause for
    a fixed period before retrying, or wait for a wake-up"). *)
type reject_policy =
  | Self_abort  (** Abort the requesting transaction ("SelfAbort"). *)
  | Retry_later of int
      (** Reissue after a fixed pause in cycles ("SelfRetryLater"). *)
  | Wait_wakeup
      (** Park until the rejector commits or aborts ("WaitWakeup"). *)

(** Global transaction priority scheme carried on requests. *)
type priority_policy =
  | No_priority
      (** All transactions tie; the lower core id wins (the paper's
          tie-break). Used by LockillerTM-RWL. *)
  | Insts_based
      (** Committed-instructions-based dynamic priority: a transaction
          that re-executes after an abort restarts at the lowest
          priority (the paper's scheme). *)
  | Progression_based
      (** LosaTM's scheme: progress through the transaction body. *)
  | Static_based
      (** A priority fixed before the transaction starts and unchanged
          across its retries (the paper's Section III-A alternative:
          no priority inversion, but "selecting a reasonable priority
          is difficult"). Implemented as a per-(core, transaction)
          pseudo-random draw. *)

(** Spinlock implementation for coarse-grained locking (ablation of the
    CGL baseline; the fallback path always uses the paper's
    test-and-set idiom of Listing 1). *)
type lock_impl =
  | Ttas  (** Test-and-test-and-set with bounded exponential backoff. *)
  | Ticket
      (** FIFO ticket lock: a fetch-and-increment ticket plus a
          now-serving counter on a separate line; fair and free of
          release-time RMW storms. *)

type retry = {
  max_retries : int;
      (** HTM attempts before taking the fallback path (Listing 1's
          TME_MAX_RETRIES). *)
  backoff_base : int;
      (** Cycles of exponential backoff unit between HTM retries. *)
  backoff_cap : int;  (** Upper bound on a single backoff pause. *)
}

val default_retry : retry

val backoff_delay : retry -> attempt:int -> int
(** Deterministic bounded exponential backoff for the [attempt]-th
    retry (0-based). *)

val pp_reject_policy : Format.formatter -> reject_policy -> unit
val pp_priority_policy : Format.formatter -> priority_policy -> unit
val pp_lock_impl : Format.formatter -> lock_impl -> unit

(** {1 Hybrid-TM comparator family}

    The knobs below configure the hybrid-TM comparators (not part of
    the paper's Table II): a TL2-style software transaction path that
    replaces the CGL fallback, coordinated through a global version
    clock, with a selectable instrumentation scheme on the hardware
    path. See [docs/HYBRID.md] for how the combinations map onto the
    HyTM literature's claims. *)

(** How software-commit timestamps relate to the global version clock
    (one contended cache line served by the sharded directory). *)
type clock_scheme =
  | Gv1
      (** Eager (TL2's GV1): every software writer commit
          fetch-and-adds the clock, so the clock line is written once
          per software commit and any hardware transaction subscribed
          to it is killed. *)
  | Gv5
      (** Lazy (TL2's GV5 family): writers stamp [clock + 1] without
          advancing the clock; a reader that observes a stamp beyond
          its read version advances the clock to the stamp (one extra
          RMW on its abort path) and retries. Fewer clock writes,
          slightly staler read versions. *)

(** What a best-effort HTM transaction falls back to when its retry
    budget is exhausted. *)
type fallback_path =
  | Cgl_lock
      (** The paper's fallback: a coarse-grained spinlock (Listing 1),
          possibly elided through HTMLock. *)
  | Tl2
      (** A TL2-style software transaction: per-location version
          stamps, commit-time write locks and read-set validation —
          software transactions run concurrently with each other and
          (depending on {!instrumentation}) with hardware ones. *)

(** What the {e hardware} path pays so that software transactions can
    run concurrently with it ([fallback = Tl2] only). The extra
    accesses are charged inside the transaction, so they enlarge its
    window of vulnerability exactly as the HyTM papers describe. *)
type instrumentation =
  | Uninstrumented
      (** The hardware path is left untouched; soundness then requires
          mutual exclusion, so hardware transactions subscribe to a
          software-mode gate and cannot start (or survive) while any
          software transaction runs. *)
  | Read_check
      (** One extra transactional load of the global clock per
          transactional read: under {!Gv1} any software writer commit
          kills every running hardware transaction (coarse but
          cheap). Requires {!Gv1}. *)
  | Access_check
      (** One extra transactional load of the location's version-stamp
          line per transactional read {e and} write: software commits
          kill exactly the hardware transactions they overlap
          (precise, twice the coherence traffic). *)

val pp_clock_scheme : Format.formatter -> clock_scheme -> unit
val pp_fallback_path : Format.formatter -> fallback_path -> unit
val pp_instrumentation : Format.formatter -> instrumentation -> unit
