(* The clock is one word of ordinary committed memory at a fixed,
   reserved line, so every read or advance of it is a plain coherence
   access to that line's home bank — the contention it causes is the
   point of modelling it this way. *)

module Addr = Lk_coherence.Addr

let line = 2
let addr = line * Addr.line_size

(* Second word of the same line: the commit-in-progress flag of the
   Read_check scheme (a sequence-lock, as in Hybrid NOrec). Sharing the
   clock's line means one subscription covers both words. *)
let flag_addr = addr + 8

let read store = Store.committed store addr

let commit_locked store = Store.committed store flag_addr <> 0

let set_commit_flag store flag =
  Store.poke store flag_addr (if flag then 1 else 0)

let write_stamp store = read store + 1

let advance store ~to_ =
  let v = Store.committed store addr in
  if to_ > v then begin
    Store.poke store addr to_;
    true
  end
  else false
