(** The global version clock of the hybrid-TM comparator family.

    TL2-style software transactions order themselves through a single
    monotonically increasing counter. Here the counter is one word of
    committed memory at a {e reserved, fixed cache line}, so clock
    reads and advances are ordinary coherence accesses: they travel to
    the line's home tile through the sharded LLC directory, appear in
    the flit counters, and — when a hardware transaction holds the
    line transactionally — participate in conflict detection like any
    other access. The value itself is held in {!Store} (committed
    memory); this module only fixes the location and the advance
    discipline.

    The two schemes of {!Policy.clock_scheme} share this module: under
    [Gv1] every software writer commit calls {!advance} with
    {!write_stamp}; under [Gv5] writers skip the advance and readers
    catch the clock up when they trip over a stamp from the future.

    This module performs no coherence traffic itself — callers issue
    the access for {!line} first and then read or update the value. *)

val line : Lk_coherence.Types.line
(** The reserved cache line holding the clock (line 2 — between the
    fallback-lock lines and the workload's data region). *)

val addr : int
(** Byte address of the clock word ([line * line_size]). *)

val flag_addr : int
(** Second word of the clock line: the commit-in-progress flag used by
    the [Read_check] instrumentation scheme as a sequence lock. A
    software writer commit raises it while it validates and publishes;
    instrumented hardware reads check it (one load covers clock and
    flag — same line) and abort while it is set, so no hardware
    transaction can commit a read of a half-published write set. *)

val commit_locked : Store.t -> bool
(** Whether a software writer commit is in progress ([flag_addr] word
    non-zero). *)

val set_commit_flag : Store.t -> bool -> unit
(** Raise or clear the flag (no coherence traffic — callers issue the
    access for {!line}). *)

val read : Store.t -> int
(** Current clock value (0 before any advance). *)

val write_stamp : Store.t -> int
(** The version a software writer commit stamps its write set with:
    [read store + 1]. *)

val advance : Store.t -> to_:int -> bool
(** [advance store ~to_] raises the clock to [to_] if it is currently
    below it (a fetch-and-add under GV1, a reader catch-up under GV5);
    returns whether the clock moved. Never moves the clock backwards. *)
