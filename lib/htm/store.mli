(** The value layer: committed memory plus per-core speculative write
    buffers.

    Conflict detection happens entirely in the coherence metadata (like
    the hardware); this module only tracks *values* so that programs
    have real semantics and tests can verify atomicity. Eager HTM
    buffers speculative data in the L1; here the equivalent is a
    per-core buffer applied to committed memory atomically at commit
    (or flushed when a transaction becomes irrevocable by switching to
    STL mode) and discarded on abort. Irrevocable transactions (TL/STL,
    plain lock-based critical sections) write through. *)

type addr = int

type t

val create : cores:int -> t

val set_ledger : t -> Lk_engine.Ledger.t -> unit
(** Feed the value layer's lifecycle into an event ledger: every
    {!commit} emits [Spec_publish] carrying the number of buffered
    speculative writes applied, and every {!discard} emits
    [Spec_discard] with [Lk_engine.Ledger.pack_discard] of the writes
    dropped and the victim's attempt age (see {!set_age_of}).
    Normally wired by [Lk_lockiller.Runtime.enable_ledger], which
    attaches one ledger to all three emitting layers at once. *)

val set_age_of : t -> (Lk_coherence.Types.core_id -> int) -> unit
(** Install the attempt-age probe used by the [Spec_discard] packing:
    cycles of actual work since the core's current transactional
    attempt began (deliberate stalls excluded), 0 outside one. The
    runtime wires this to its per-core attempt clocks; defaults to a
    constant 0. Must not allocate. *)

val set_witness : t -> (Lk_coherence.Types.core_id -> unit) -> unit
(** Install a race-detector witness, called with [core] on every
    speculative {!write} (the per-core buffer is core-local state, so a
    write from the wrong partition is an ownership violation). The
    runtime points this at [Lk_engine.Sim.witness] on its per-core
    regions; defaults to a no-op. Committed memory is deliberately not
    hooked: commits and pokes publish from whatever event performs
    them, which the ownership contract exempts. *)

val committed : t -> addr -> int
(** Committed value of an address (0 if never written). *)

val poke : t -> addr -> int -> unit
(** Initialise committed memory directly (workload setup). *)

val read : t -> core:Lk_coherence.Types.core_id -> speculative:bool -> addr -> int
(** Transactional reads see the core's own buffered writes first. *)

val write :
  t -> core:Lk_coherence.Types.core_id -> speculative:bool -> addr -> int -> unit
(** [speculative:true] buffers; [speculative:false] writes through. *)

val commit : t -> core:Lk_coherence.Types.core_id -> int
(** Apply the core's buffer to committed memory (transaction commit, or
    the moment an HTM transaction switches to irrevocable STL mode).
    Returns the number of addresses applied. *)

val discard : t -> core:Lk_coherence.Types.core_id -> int
(** Drop the core's buffer (abort). Returns the number of addresses
    dropped. *)

val buffered : t -> core:Lk_coherence.Types.core_id -> int
(** Current buffer size (tests). *)

val iter_buffered :
  t -> core:Lk_coherence.Types.core_id -> (addr -> int -> unit) -> unit
(** Visit the core's buffered speculative writes, unspecified order.
    Used by the invariant checkers ([lockiller.check]) to relate the
    speculative write set to the lines the L1 tracks, and by state
    fingerprinting. *)

val iter_committed : t -> (addr -> int -> unit) -> unit
(** Visit every committed address/value pair, unspecified order
    (checkers and state fingerprinting). *)

val footprint : t -> int
(** Number of distinct committed addresses (tests). *)
