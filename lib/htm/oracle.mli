(** Serializability oracle.

    Every committed critical section (an HTM transaction, an HTMLock
    TL/STL lock transaction, or a plain critical section under the
    lock) records its operation log: reads with the value observed,
    writes with the value stored. [verify] replays the records in
    completion order against a model store; every observed read must
    equal the model's value at that point (reads-after-own-writes see
    the section's own effects).

    Completion order is a valid serialization order for this system:
    plain sections are totally ordered by the lock and exclude
    speculation (fallback-lock subscription); HTM transactions are
    atomic at commit; TL/STL sections only ever read data that no
    concurrent transaction can overwrite (rejects) — so any read they
    performed is consistent with serialising at their end. A
    verification failure therefore means isolation was broken. *)

type op =
  | R of int * int  (** address, value observed *)
  | W of int * int  (** address, value written *)

(** How the critical section executed (for diagnostics). [Sw_commit]
    is a committed TL2-style software transaction of the hybrid-TM
    comparators: its serialization point is the commit (locks held,
    read set validated), so completion order remains valid. *)
type kind = Htm_commit | Tl_commit | Stl_commit | Sw_commit | Plain_section

type record = {
  core : Lk_coherence.Types.core_id;
  end_time : int;  (** Simulated cycle of the serialization point. *)
  seq : int;  (** Tie-break: recording order. *)
  kind : kind;
  ops : op list;  (** Program order. *)
}

type violation = {
  culprit : record;
  at : op;  (** The read that observed an impossible value. *)
  expected : int;  (** What the model store held. *)
}

type t

val create : ?initial:(int * int) list -> unit -> t
(** [initial] seeds the model store (addresses default to 0). *)

val record :
  t ->
  core:Lk_coherence.Types.core_id ->
  end_time:int ->
  kind:kind ->
  ops:op list ->
  unit

val records : t -> record list
(** In recording order. *)

val size : t -> int

val verify : t -> (unit, violation) result
(** Replay in (end_time, seq) order. *)

val pp_violation : Format.formatter -> violation -> unit
val kind_label : kind -> string
