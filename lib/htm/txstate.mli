(** Per-core transactional execution state.

    The mode distinguishes TL from STL (both are lock transactions in
    HTMLock mode, i.e. [Lock_tx] at the coherence layer) because the
    release idiom differs (Listing 2: STL never touched the fallback
    lock, TL must release it) and because the paper's extended [ttest]
    instruction reports them separately. *)

type mode =
  | Idle  (** Not inside any critical section. *)
  | Htm  (** Speculative HTM transaction. *)
  | Tl  (** Lock transaction that entered HTMLock mode via hlbegin. *)
  | Stl  (** HTM transaction that proactively switched to HTMLock. *)
  | Sw
      (** TL2-style software transaction on the hybrid fallback path.
          At the coherence layer it is an ordinary non-transactional
          party (its reads and writes cannot be conflict-aborted); the
          transactional semantics come from version validation at
          commit time. *)

type t = {
  core : Lk_coherence.Types.core_id;
  mutable mode : mode;
  mutable epoch : int;
      (** Bumped on every abort; in-flight requests from older epochs
          are stale. *)
  mutable insts : int;
      (** Instructions executed in the current attempt (the paper's
          committed-instructions priority). *)
  mutable progress : int;
      (** Body operations completed in the current attempt (LosaTM's
          progression priority). *)
  mutable attempt : int;
      (** HTM attempt number for the current critical section (0 on
          first try). *)
  mutable switch_tried : bool;
      (** switchingMode is attempted at most once per transaction
          attempt. *)
  mutable pending_abort : Reason.t option;
      (** Set when the transaction was aborted asynchronously; the core
          observes it at its next step boundary. *)
  mutable tx_seq : int;
      (** Critical sections completed by this core (feeds the static
          priority draw). *)
  mutable static_priority : int;
      (** Fixed priority of the current transaction under the
          [Static_based] policy; drawn at the first attempt and kept
          across retries. *)
  mutable rv : int;
      (** Read version of the current software ([Sw]) transaction: the
          {!Global_clock} value sampled at swbegin. Reads observing a
          stamp beyond it abort (after catching the clock up). *)
}

val create : Lk_coherence.Types.core_id -> t

val coherence_mode : t -> Lk_coherence.Types.mode
(** The mode the coherence layer sees. *)

val in_critical : t -> bool

val reset_attempt : t -> unit
(** Clear per-attempt counters (insts, progress, switch flag) when a
    transaction (re)starts. *)

val begin_htm : t -> unit
(** Enter speculative mode for a new attempt; bumps nothing. *)

val abort : t -> Reason.t -> unit
(** Asynchronous abort: bump the epoch, record the reason, leave
    critical mode. The value-layer rollback is the runtime's job. *)

val finish : t -> unit
(** Leave critical mode after a commit or hlend; resets attempt
    bookkeeping for the next transaction. *)

val pp_mode : Format.formatter -> mode -> unit
