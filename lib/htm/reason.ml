type t =
  | Conflict_htm
  | Conflict_lock
  | Conflict_mutex
  | Conflict_non_tx
  | Capacity
  | Fault
  | Validation

let all =
  [
    Conflict_htm;
    Conflict_lock;
    Conflict_mutex;
    Conflict_non_tx;
    Capacity;
    Fault;
    Validation;
  ]

let index = function
  | Conflict_htm -> 0
  | Conflict_lock -> 1
  | Conflict_mutex -> 2
  | Conflict_non_tx -> 3
  | Capacity -> 4
  | Fault -> 5
  | Validation -> 6

let count = 7

let label = function
  | Conflict_htm -> "mc"
  | Conflict_lock -> "lock"
  | Conflict_mutex -> "mutex"
  | Conflict_non_tx -> "non_tran"
  | Capacity -> "of"
  | Fault -> "fault"
  | Validation -> "valid"

let classify_conflict ~aggressor_mode ~line ~lock_line =
  match (aggressor_mode : Lk_coherence.Types.mode) with
  | Lk_coherence.Types.Lock_tx -> Conflict_lock
  | Lk_coherence.Types.Htm_tx -> Conflict_htm
  | Lk_coherence.Types.Non_tx ->
    if line = lock_line then Conflict_mutex else Conflict_non_tx

let pp ppf t = Format.pp_print_string ppf (label t)
let equal (a : t) b = a = b
