(** Abort reasons, matching the six categories of Fig 10 in the paper.

    - [Conflict_htm] ("mc"): memory conflict with another HTM
      transaction.
    - [Conflict_lock] ("lock"): conflict with a lock transaction running
      under the HTMLock mechanism (TL or STL mode).
    - [Conflict_mutex] ("mutex"): killed by a thread acquiring the
      fallback lock the transaction had subscribed to (best-effort HTM
      lock-elision idiom).
    - [Conflict_non_tx] ("non_tran"): conflict with an ordinary
      non-transactional access (excluding the two cases above).
    - [Capacity] ("of"): transactional read/write set overflowed the
      cache (or an inclusivity back-invalidation evicted a
      transactional line).
    - [Fault] ("fault"): exception inside the transaction; best-effort
      HTM aborts unconditionally.

    One extra category beyond Fig 10 exists for the hybrid-TM
    comparators:

    - [Validation] ("valid"): a TL2-style software transaction failed
      commit-time read-set validation (or lost a commit-lock /
      stamp-freshness race). Never raised by the paper's systems. *)

type t =
  | Conflict_htm
  | Conflict_lock
  | Conflict_mutex
  | Conflict_non_tx
  | Capacity
  | Fault
  | Validation

val all : t list
(** In the paper's presentation order: mc, lock, mutex, non_tran, of,
    fault — followed by the hybrid-only valid. *)

val label : t -> string
(** The paper's short label for the category. *)

val index : t -> int
(** Position in [all]; stable array index for per-reason counters. *)

val count : int
(** [List.length all]. *)

val classify_conflict :
  aggressor_mode:Lk_coherence.Types.mode ->
  line:Lk_coherence.Types.line ->
  lock_line:Lk_coherence.Types.line ->
  t
(** Category of a conflict abort given who won: a non-transactional
    access to the fallback lock is [Conflict_mutex]; other non-tx
    accesses are [Conflict_non_tx]; lock transactions give
    [Conflict_lock]; HTM transactions give [Conflict_htm]. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
