type mode = Idle | Htm | Tl | Stl | Sw

type t = {
  core : Lk_coherence.Types.core_id;
  mutable mode : mode;
  mutable epoch : int;
  mutable insts : int;
  mutable progress : int;
  mutable attempt : int;
  mutable switch_tried : bool;
  mutable pending_abort : Reason.t option;
  mutable tx_seq : int;
  mutable static_priority : int;
  mutable rv : int;
}

let create core =
  {
    core;
    mode = Idle;
    epoch = 0;
    insts = 0;
    progress = 0;
    attempt = 0;
    switch_tried = false;
    pending_abort = None;
    tx_seq = 0;
    static_priority = 0;
    rv = 0;
  }

let coherence_mode t =
  match t.mode with
  | Idle -> Lk_coherence.Types.Non_tx
  | Htm -> Lk_coherence.Types.Htm_tx
  | Tl | Stl -> Lk_coherence.Types.Lock_tx
  | Sw -> Lk_coherence.Types.Non_tx

let in_critical t = t.mode <> Idle

let reset_attempt t =
  t.insts <- 0;
  t.progress <- 0;
  t.switch_tried <- false

let begin_htm t =
  t.mode <- Htm;
  t.pending_abort <- None;
  reset_attempt t

let abort t reason =
  t.epoch <- t.epoch + 1;
  t.pending_abort <- Some reason;
  t.mode <- Idle;
  t.insts <- 0;
  t.progress <- 0

let finish t =
  t.mode <- Idle;
  t.attempt <- 0;
  t.pending_abort <- None;
  t.tx_seq <- t.tx_seq + 1;
  reset_attempt t

let pp_mode ppf m =
  Format.pp_print_string ppf
    (match m with
    | Idle -> "idle"
    | Htm -> "htm"
    | Tl -> "tl"
    | Stl -> "stl"
    | Sw -> "sw")
