module Addr = Lk_coherence.Addr

let slots = 256
let meta_base_line = 1 lsl 20

(* Software-mode gate of the Uninstrumented scheme: a population count
   of running software transactions on its own reserved line (3, next
   to the global clock's line 2). Hardware transactions subscribe to it
   at xbegin and abort unless it reads 0; software transactions RMW it
   up on entry (killing every subscribed hardware transaction) and down
   on exit — mutual exclusion without touching the hardware path. *)
let gate_line = 3
let gate_addr = gate_line * Addr.line_size
let slot_of_line line = line land (slots - 1)
let meta_line_of_slot s = meta_base_line + s
let meta_line line = meta_line_of_slot (slot_of_line line)
let meta_addr_of_slot s = meta_line_of_slot s * Addr.line_size

(* Meta-word encoding: low bit = commit-time write lock, the rest the
   version stamp. The word itself lives in committed memory (so it is
   architectural state the checkers see); this module only tracks the
   per-core sets and which core holds each lock. *)
let locked word = word land 1 = 1
let version_of word = word asr 1
let stamp_word version = version lsl 1
let lock_word word = word lor 1

type t = {
  owners : int array;  (* slot -> core holding its write lock, -1 free *)
  (* Per-core read and write sets as fixed scratch arrays (slot-level,
     deduplicated, so [slots] entries bound each); versions are the
     meta-word version fields observed at first read. *)
  read_slots : int array array;
  read_vers : int array array;
  read_len : int array;
  write_slots : int array array;
  write_len : int array;
  (* Race-detector hook for the per-core sets (see {!Store.set_witness};
     the global [owners] table is commit-time shared state and is not
     hooked). *)
  mutable witness : int -> unit;
}

let create ~cores =
  if cores <= 0 then invalid_arg "Sw_path.create: cores must be positive";
  {
    owners = Array.make slots (-1);
    read_slots = Array.init cores (fun _ -> Array.make slots 0);
    read_vers = Array.init cores (fun _ -> Array.make slots 0);
    read_len = Array.make cores 0;
    write_slots = Array.init cores (fun _ -> Array.make slots 0);
    write_len = Array.make cores 0;
    witness = ignore;
  }

let set_witness t f = t.witness <- f

let reset t core =
  t.read_len.(core) <- 0;
  t.write_len.(core) <- 0

let note_read t ~core ~slot ~version =
  t.witness core;
  let rs = t.read_slots.(core) in
  let n = t.read_len.(core) in
  let seen = ref false in
  for i = 0 to n - 1 do
    if rs.(i) = slot then seen := true
  done;
  if not !seen then begin
    rs.(n) <- slot;
    t.read_vers.(core).(n) <- version;
    t.read_len.(core) <- n + 1
  end

let note_write t ~core ~slot =
  t.witness core;
  let ws = t.write_slots.(core) in
  let n = t.write_len.(core) in
  let seen = ref false in
  for i = 0 to n - 1 do
    if ws.(i) = slot then seen := true
  done;
  if not !seen then begin
    ws.(n) <- slot;
    t.write_len.(core) <- n + 1
  end

let reads t ~core = t.read_len.(core)
let writes t ~core = t.write_len.(core)

let iter_reads t ~core f =
  for i = 0 to t.read_len.(core) - 1 do
    f t.read_slots.(core).(i) t.read_vers.(core).(i)
  done

(* Locks are taken in ascending slot order (the classic deadlock-free
   discipline), so sort the write set before iterating at commit.
   Insertion sort: the sets are tiny and already deduplicated. *)
let sort_writes t ~core =
  let ws = t.write_slots.(core) in
  for i = 1 to t.write_len.(core) - 1 do
    let v = ws.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && ws.(!j) > v do
      ws.(!j + 1) <- ws.(!j);
      decr j
    done;
    ws.(!j + 1) <- v
  done

let iter_writes t ~core f =
  for i = 0 to t.write_len.(core) - 1 do
    f t.write_slots.(core).(i)
  done

let owner t slot = if t.owners.(slot) < 0 then None else Some t.owners.(slot)

(* Allocation-free variant for the abort-attribution hot path: -1 when
   the slot's write lock is free. *)
let owner_id t slot = t.owners.(slot)

let try_lock t ~core slot =
  if t.owners.(slot) < 0 then begin
    t.owners.(slot) <- core;
    true
  end
  else t.owners.(slot) = core

let unlock t ~core slot =
  if t.owners.(slot) = core then t.owners.(slot) <- -1

let unlock_all t ~core =
  for s = 0 to slots - 1 do
    if t.owners.(s) = core then t.owners.(s) <- -1
  done

let locks_held t ~core =
  let n = ref 0 in
  for s = 0 to slots - 1 do
    if t.owners.(s) = core then incr n
  done;
  !n
