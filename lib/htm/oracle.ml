(* lint: allow hashtbl — [verify] replays the run once, after the
   simulation has finished; nothing here is on the simulated hot path. *)

type op = R of int * int | W of int * int

type kind = Htm_commit | Tl_commit | Stl_commit | Sw_commit | Plain_section

type record = {
  core : Lk_coherence.Types.core_id;
  end_time : int;
  seq : int;
  kind : kind;
  ops : op list;
}

type violation = { culprit : record; at : op; expected : int }

type t = {
  initial : (int * int) list;
  mutable recs : record list;  (* reversed *)
  mutable next_seq : int;
}

let create ?(initial = []) () = { initial; recs = []; next_seq = 0 }

let record t ~core ~end_time ~kind ~ops =
  let r = { core; end_time; seq = t.next_seq; kind; ops } in
  t.next_seq <- t.next_seq + 1;
  t.recs <- r :: t.recs

let records t = List.rev t.recs

let size t = t.next_seq

let kind_label = function
  | Htm_commit -> "htm"
  | Tl_commit -> "tl"
  | Stl_commit -> "stl"
  | Sw_commit -> "sw"
  | Plain_section -> "plain"

let verify t =
  let model = Hashtbl.create 1024 in
  List.iter (fun (a, v) -> Hashtbl.replace model a v) t.initial;
  let value a = Option.value ~default:0 (Hashtbl.find_opt model a) in
  let ordered =
    List.sort
      (fun a b ->
        match Int.compare a.end_time b.end_time with
        | 0 -> Int.compare a.seq b.seq
        | c -> c)
      (records t)
  in
  let rec replay_ops r = function
    | [] -> Ok ()
    | R (a, v) :: rest ->
      let expected = value a in
      if v <> expected then Error { culprit = r; at = R (a, v); expected }
      else replay_ops r rest
    | W (a, v) :: rest ->
      Hashtbl.replace model a v;
      replay_ops r rest
  in
  let rec go = function
    | [] -> Ok ()
    | r :: rest -> (
      match replay_ops r r.ops with Ok () -> go rest | Error _ as e -> e)
  in
  go ordered

let pp_violation ppf v =
  let a, observed = match v.at with R (a, x) | W (a, x) -> (a, x) in
  Format.fprintf ppf
    "core %d (%s section ending at cycle %d) read %#x = %d but a serial \
     execution gives %d"
    v.culprit.core (kind_label v.culprit.kind) v.culprit.end_time a observed
    v.expected
