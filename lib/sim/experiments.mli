(** One entry per table and figure of the paper's evaluation (plus the
    headline-claims check and a mechanism ablation). Each experiment
    renders plain-text tables whose rows correspond to the bars/series
    of the original artefact.

    Every experiment declares its simulation grid up front ([plan]), so
    the harness can run the jobs through a {!Pool} of domains and an
    optional on-disk {!Cache} before rendering touches any result.
    Results are also memoised inside a {!context}, so experiments
    sharing runs (e.g. every speedup needs the CGL reference) pay for
    each simulation once per process even without a cache. *)

type context

val make_context :
  ?seed:int ->
  ?scale:float ->
  ?cores:int ->
  ?threads:int list ->
  ?jobs:int ->
  ?cache:Cache.t ->
  unit ->
  context
(** Defaults: seed 1, scale 1.0, the paper's 32-core machine, thread
    counts 2/4/8/16/32, one job (sequential), no on-disk cache. Tests
    use smaller machines and fewer thread counts. [jobs] > 1 runs
    planned jobs on that many domains ({!Pool.map}); results are
    collected deterministically, so the rendered output is identical
    for any job count. *)

val thread_counts : context -> int list

val cache : context -> Cache.t option

val simulations : context -> int
(** Simulations actually executed through this context (cache hits and
    memo hits excluded) — the cold-vs-warm observability counter. *)

(** {1 Jobs}

    A job is one (options, system, workload, threads) simulation
    request. Experiments build jobs with {!job}, list them in [plan],
    and read them back with {!run_job} while rendering; {!prefetch}
    (called by {!execute}) runs any jobs missing from the memo and the
    cache through the pool first. *)

type job

val job :
  context ->
  ?cache:Config.cache_profile ->
  ?machine:Config.t ->
  ?placement:Runner.placement ->
  ?seed:int ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  job
(** [machine], [placement] and [seed] default to the context's; [cache]
    picks one of the three cache profiles on the default machine. *)

val job_key : context -> job -> string
(** The job's content digest (also its {!Cache} key). *)

val run_job : context -> job -> Runner.result
(** Memo, then cache, then simulate (and write through). *)

val prefetch : context -> job list -> unit
(** Run every job not already in the memo or the cache — through
    {!Pool.map} when the context has [jobs] > 1 — and commit the
    results in job order. *)

val result :
  context ->
  ?cache:Config.cache_profile ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  Runner.result
(** Memoised {!Runner.run} (equivalent to {!job} + {!run_job}). *)

val speedup_vs_cgl :
  context ->
  ?cache:Config.cache_profile ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  float

(** An experiment: identifier (the bench target name), the paper
    artefact it reproduces, the simulation grid it needs ([plan]) and
    the renderer. [render] may run jobs outside its plan (they fall
    back to sequential simulation); the acceptance harness keeps plans
    exact so warm-cache runs perform zero simulations. *)
type experiment = {
  id : string;
  artefact : string;
  describe : string;
  plan : context -> job list;
  render : context -> Report.table list;
}

val execute : context -> experiment -> Report.table list
(** [prefetch] the experiment's plan, then render. *)

val table1 : experiment
val table2 : experiment
val fig1 : experiment
val fig7 : experiment
val fig8 : experiment
val fig9 : experiment
val fig10 : experiment
val fig11 : experiment
val fig12 : experiment
val fig13 : experiment
val headline : experiment
val ablation : experiment

val txsize : experiment
(** Extension (the paper's stated future work): sensitivity to
    transaction size — read/write sets scaled 0.5x to 8x on a
    vacation-style workload. *)

val noc : experiment
(** Model-fidelity ablation: per-link NoC contention on/off. *)

val topology : experiment
(** Section III-A claim: the framework works over mesh, torus, ring and
    crossbar interconnects. *)

val placement : experiment
(** Compact vs spread thread placement on a partially occupied fabric. *)

val protocol_knobs : experiment
(** Coherence-protocol ablation: MESI vs MSI, full-map vs
    limited-pointer directory. *)

val variance : experiment
(** Seed-robustness of the headline comparison (mean / stddev / min /
    max over several workload-generation seeds). *)

val hytm : experiment
(** Hybrid-TM instrumentation-cost sweep: the TL2-style software
    fallback and the three hardware instrumentation schemes
    ({!Lk_htm.Policy.instrumentation}) against pure software across
    three contention levels — speedup over SW-TL2 plus per-path
    commit/abort and version-clock detail. See docs/HYBRID.md. *)

val wasted : experiment
(** Causal-profiler companion to Fig 10: wasted-cycle share (cycles
    inside aborted attempts over total core-cycles) for Baseline,
    LosaTM-SAFU and LockillerTM on the contended STAMP profiles, in
    both closed-loop and open-loop replay form, with each run's
    aggressor-attribution split (attributed + environmental = aborts)
    from a streaming {!Profile} tap. Plans no cacheable jobs — the
    profiler hook bypasses the result cache. *)

val all : experiment list
(** Paper order; [find] looks one up by id. *)

val find : string -> experiment option
