(** Single source of truth for the result-JSON / cache schema version.

    Every serialised result embeds this version, and the on-disk cache
    partitions entries by it. Bump {!version} (and extend {!history})
    whenever the result record or its serialisation changes shape. *)

val version : int
(** The schema version this build reads and writes. *)

val version_string : string

val history : (int * string) list
(** [(version, what changed)] in increasing order — the upgrade path. *)

val check : int -> (unit, string) result
(** [check v] accepts only the current {!version}. Future versions get
    a "produced by a newer build" error, past versions a "predates this
    build, re-run to regenerate" error naming what changed since. *)
