(** A minimal, dependency-free JSON codec.

    Serves three masters with one representation: the machine-readable
    output of the CLI ([--format json]), the on-disk {!Cache} entries,
    and the tests that round-trip {!Runner.result} values. Only the
    features those need are implemented: UTF-8 pass-through strings
    with the mandatory escapes, exact [int] round-tripping, and floats
    printed with enough digits ([%.17g]) to reconstruct the same IEEE
    double. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** Member order is preserved. *)

val to_string : t -> string
(** Compact single-line rendering (no trailing newline). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, one member/element per line. *)

val of_string : string -> (t, string) result
(** Parse one JSON document; trailing whitespace is allowed, trailing
    garbage is an error. Numbers with a fraction or exponent become
    [Float]; all others become [Int]. *)

(** {1 Accessors} — total functions returning [Error] with a path hint
    rather than raising. *)

val member : string -> t -> (t, string) result
(** Field of an [Obj]. *)

val to_int : t -> (int, string) result
val to_float : t -> (float, string) result
(** [to_float] accepts [Int] too (JSON does not distinguish). *)

val to_str : t -> (string, string) result
val to_list : t -> (t list, string) result
val to_obj : t -> ((string * t) list, string) result
