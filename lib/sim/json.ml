type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- printing ---------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* %.17g round-trips every finite IEEE double; JSON has no inf/nan, so
   clamp those to null (no simulator metric produces them). *)
let add_float b f =
  match Float.classify_float f with
  | FP_infinite | FP_nan -> Buffer.add_string b "null"
  | _ ->
    let s = Printf.sprintf "%.17g" f in
    (* Ensure the token stays a JSON number that parses back as Float. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
      Buffer.add_string b s
    else begin
      Buffer.add_string b s;
      Buffer.add_string b ".0"
    end

let rec write ~indent ~level b v =
  let nl pad =
    match indent with
    | None -> ()
    | Some step ->
      Buffer.add_char b '\n';
      Buffer.add_string b (String.make (step * pad) ' ')
  in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f -> add_float b f
  | String s -> escape_string b s
  | List [] -> Buffer.add_string b "[]"
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        write ~indent ~level:(level + 1) b item)
      items;
    nl level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj members ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, item) ->
        if i > 0 then Buffer.add_char b ',';
        nl (level + 1);
        escape_string b k;
        Buffer.add_char b ':';
        (match indent with None -> () | Some _ -> Buffer.add_char b ' ');
        write ~indent ~level:(level + 1) b item)
      members;
    nl level;
    Buffer.add_char b '}'

let render indent v =
  let b = Buffer.create 256 in
  write ~indent ~level:0 b v;
  Buffer.contents b

let to_string v = render None v
let to_string_pretty v = render (Some 2) v

(* --- parsing ----------------------------------------------------------- *)

exception Parse_error of string

let parse_error pos msg =
  raise (Parse_error (Printf.sprintf "at offset %d: %s" pos msg))

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some got when got = c -> advance ()
    | Some got -> parse_error !pos (Printf.sprintf "expected %c, got %c" c got)
    | None -> parse_error !pos (Printf.sprintf "expected %c, got end" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else parse_error !pos ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then parse_error !pos "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents b
      | '\\' -> begin
        if !pos >= n then parse_error !pos "unterminated escape";
        let e = s.[!pos] in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if !pos + 4 > n then parse_error !pos "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          pos := !pos + 4;
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> parse_error !pos ("bad \\u escape " ^ hex)
          in
          (* Encode the code point as UTF-8 (surrogate pairs are passed
             through as-is; the simulator never emits them). *)
          if code < 0x80 then Buffer.add_char b (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> parse_error !pos (Printf.sprintf "bad escape \\%c" c));
        go ()
      end
      | c -> Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let token = String.sub s start (!pos - start) in
    let floaty =
      String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token
    in
    if floaty then
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> parse_error start ("bad number " ^ token)
    else
      match int_of_string_opt token with
      | Some i -> Int i
      | None -> parse_error start ("bad number " ^ token)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> parse_error !pos "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> parse_error !pos "expected , or ] in array"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let member () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let rec members acc =
          let m = member () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members (m :: acc)
          | Some '}' ->
            advance ();
            List.rev (m :: acc)
          | _ -> parse_error !pos "expected , or } in object"
        in
        Obj (members [])
      end
    | Some c -> parse_error !pos (Printf.sprintf "unexpected character %c" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then parse_error !pos "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let kind = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member name = function
  | Obj members -> (
    match List.assoc_opt name members with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing member %S" name))
  | v -> Error (Printf.sprintf "expected object for member %S, got %s" name (kind v))

let to_int = function
  | Int i -> Ok i
  | v -> Error ("expected int, got " ^ kind v)

let to_float = function
  | Float f -> Ok f
  | Int i -> Ok (float_of_int i)
  | v -> Error ("expected number, got " ^ kind v)

let to_str = function
  | String s -> Ok s
  | v -> Error ("expected string, got " ^ kind v)

let to_list = function
  | List l -> Ok l
  | v -> Error ("expected array, got " ^ kind v)

let to_obj = function
  | Obj o -> Ok o
  | v -> Error ("expected object, got " ^ kind v)
