(** Post-run analysis of the structured transaction-event ledger.

    {!Lk_engine.Ledger} records what happened; this module turns those
    flat integer records back into domain terms: an abort-cause
    breakdown that cross-checks the {!Runner.result} counters, and a
    Chrome/Perfetto trace export for interactive timeline inspection.

    Both consumers decode the ledger the same way: [Tx_abort] args are
    {!Lk_htm.Reason.index} values, [Nack]/[Reject] args are the winning
    holder's core (or [-1] for an LLC overflow-signature reject),
    [Abort_kill] records carry the victim as [core] and the aggressor
    as [arg]. See {!Lk_engine.Ledger} for the full argument
    conventions. *)

(** Aggregated event counts over one ledger. When [dropped > 0] the
    ring overflowed and every count is a lower bound — rerun with a
    larger [capacity] for exact numbers. *)
type breakdown = {
  aborts : int;  (** Total [Tx_abort] plus [Sw_abort] records. *)
  by_reason : (Lk_htm.Reason.t * int) list;
      (** Aborts per cause, paper order — same shape as
          [Runner.result.abort_mix], and equal to it whenever the
          ledger did not drop records. Software aborts fold in here
          too (their [Validation] / conflict reason indices share the
          table). *)
  nacks : int;  (** Coherence-level reject replies observed. *)
  kills : int;  (** Holders aborted on behalf of a requester. *)
  rejects : int;  (** Runtime-level rejects (transactions parked or
                      backed off after a NACK resolution). *)
  parks : int;
  wakes : int;
  sw_commits : int;  (** [Sw_commit] records (hybrid-TM software path). *)
  sw_aborts : int;  (** [Sw_abort] records (also counted in [aborts]). *)
  clock_advances : int;  (** Global version-clock advances observed. *)
  dropped : int;  (** Records lost to ring overflow. *)
}

val abort_breakdown : Lk_engine.Ledger.t -> breakdown

val breakdown_table : ?title:string -> breakdown -> Report.table
(** One row per abort cause (label, count, share of all aborts) plus a
    totals row; conflict-resolution traffic (NACKs, kills, rejects,
    parks/wakes) goes in the notes. Render with {!Report.pp_table},
    {!Report.to_csv} or {!Report.json_of_table}. *)

val json_of_breakdown : breakdown -> Json.t
(** Label-keyed counts ([{"aborts": ..., "by_reason": {"mc": ...}}]). *)

(** {1 Perfetto export}

    The Chrome trace-event JSON format ([{"traceEvents": [...]}]),
    loadable in {{:https://ui.perfetto.dev}Perfetto} or
    [chrome://tracing]. Each simulated core becomes one track
    ([tid] = core id, thread names ["core N"]); timestamps are
    simulated cycles reported as microseconds.

    Span reconstruction pairs begin/end records per core:
    - [Tx_begin]..[Tx_commit] becomes a ["tx"] slice (args: attempt
      number and attempts-to-commit);
    - [Tx_begin]..[Tx_abort] becomes an ["abort:<reason>"] slice
      tagged with the {!Lk_htm.Reason.label}, the aggressor core
      ([by], -1 environmental) and the victim's stall-excluded
      attempt age ([age]);
    - [Hl_begin]..[Hl_end] becomes ["TL"] or ["STL"];
    - [Lock_acquire]..[Lock_release] becomes ["lock"];
    - [Sw_begin]..[Sw_commit] becomes an ["sw"] slice (args: the read
      version [rv] and write stamp [wt]), [Sw_begin]..[Sw_abort] an
      ["sw-abort:<reason>"] slice; [Clock_advance] is an instant
      carrying the new clock value.

    Everything else (NACKs, kills, rejects, parks/wakes, switch
    decisions, spills, speculative publishes/discards) is emitted as an
    instant event on the core's track. Spans still open when the ledger
    ends are closed at the last recorded timestamp with an ["(open)"]
    suffix.

    Every abort attributed to an aggressor core additionally emits a
    {e flow-event} pair (ph ["s"] on the aggressor's track, ph ["f"]
    with [bp:"e"] on the victim's, one fresh id per edge): Perfetto
    draws the kill as an arrow from the aggressor's slice to the
    victim's abort, the timeline rendering of the causal profiler's
    who-killed-whom graph.

    With [?telemetry] the sampled gauges are appended as counter
    tracks (ph ["C"]) alongside the slices: per-core phase, signature
    fill, queue depth, lock-holder/parked occupancy and link
    utilization — see {!Telemetry.perfetto_counters}. *)

val perfetto_json : ?telemetry:Telemetry.t -> Lk_engine.Ledger.t -> Json.t

val write_perfetto :
  ?telemetry:Telemetry.t -> file:string -> Lk_engine.Ledger.t -> unit
(** {!perfetto_json} pretty-printed to [file]. *)

val write_dump : file:string -> Lk_engine.Ledger.t -> unit
(** The raw deterministic text dump ({!Lk_engine.Ledger.dump}, no
    [limit]) to [file] — the differential-testing format: byte-identical
    across event-queue backends and [--jobs] values. *)
