(** Run one (system, workload, threads) combination to completion and
    collect every metric the paper reports.

    Each run verifies its own correctness twice over: the committed
    values of the workload's hot records must equal the increments the
    generated program performs (conservation), and — unless [oracle] is
    disabled — the serializability oracle replays every committed
    critical section in completion order and checks each observed read
    ({!Lk_htm.Oracle}). These checks run on every simulation, not only
    in the test suite. *)

(** Where the participating threads sit on the fabric. The paper pins
    thread [i] to core [i] ([Compact]); [Spread] distributes them
    evenly over the tiles, changing every NoC distance (home banks are
    always interleaved over all tiles). *)
type placement = Compact | Spread

(** Open-loop replay statistics, present on results produced by
    {!replay} / {!run_source} with a [Replay] source. Delays are in
    cycles, from the same log-linear histograms as the tx-latency
    percentiles (<= ~3% bucketing error), recorded incrementally so
    replay memory is independent of trace length. *)
type open_loop_stats = {
  arrivals : int;  (** Trace records ingested. *)
  completed : int;  (** Transactions that ran to completion. *)
  max_backlog : int;
      (** Peak number of arrivals admitted but not yet completed — the
          high-water mark of the service queues. *)
  queue_delay_p50 : int;
      (** Median arrival-to-service-start wait in cycles. *)
  queue_delay_p95 : int;
  queue_delay_p99 : int;
  sojourn_p50 : int;
      (** Median arrival-to-completion time in cycles (queueing delay
          plus service). *)
  sojourn_p95 : int;
  sojourn_p99 : int;
  phase_mix : (int * int) list;
      (** Completions per trace phase tag, nonzero phases only,
          increasing phase order. *)
}

type result = {
  system : string;
  workload : string;
  threads : int;
  cache : Config.cache_profile;
  cycles : int;  (** Completion time (the slowest thread's finish). *)
  commit_rate : float;
      (** Committed critical sections (HTM + software) / attempts. *)
  htm_commits : int;
  stl_commits : int;
  lock_commits : int;
  sw_commits : int;
      (** Commits on the TL2-style software fallback path of the
          hybrid-TM comparators (0 under the CGL fallback). *)
  aborts : int;
  abort_mix : (Lk_htm.Reason.t * int) list;
      (** Counts per reason, paper order. *)
  wasted_cycles : int;
      (** Cycles of work inside transactional attempts that aborted,
          summed over every abort on every participating core.
          Deliberate stalls (reject back-off pauses, time parked on a
          wake-up list) are excluded — a stalled core wastes nothing
          while it waits, so systems that stall-and-retry are not
          charged for their patience. Always on: the accounting never
          depends on the ledger or the profiler being attached. *)
  wasted_by_reason : (Lk_htm.Reason.t * int) list;
      (** [wasted_cycles] split by abort reason, paper order. *)
  breakdown : (Lk_cpu.Accounting.category * int) list;
      (** Execution-time categories summed over participating cores. *)
  rejects : int;
  parks : int;
  wakeups : int;
  switches_granted : int;
  switches_denied : int;
  spilled_lines : int;
  lock_dwell_cycles : int;
      (** Cycles the fallback spinlock was held, summed over all
          acquisitions (acquire-to-release, per the event ledger's
          clock). High dwell with low [lock_commits] flags convoying. *)
  clock_advances : int;
      (** Global version-clock advances (GV1 writer commits plus GV5
          reader catch-ups); 0 outside the hybrid-TM comparators. *)
  watchdog_rescues : int;
  network_messages : int;
  network_flits : int;
  oracle_sections : int;
      (** Critical sections checked by the serializability oracle (0
          when disabled). *)
  avg_attempts_per_commit : float;
      (** Mean HTM attempts a committed transaction needed (1.0 =
          everything committed first try); 0 when nothing committed
          speculatively. *)
  tx_latency_p50 : int;
      (** Median critical-section latency in cycles: first attempt
          ([xbegin]/[hlbegin]) to commit, across HTM, STL and fallback
          completions — from the runtime's always-on log-linear
          histogram (see {!Lk_lockiller.Runtime.tx_latency_hdr}), so
          values carry its <= ~3% bucketing error. 0 when no critical
          section completed. *)
  tx_latency_p95 : int;  (** 95th percentile of the same histogram. *)
  tx_latency_p99 : int;  (** 99th percentile of the same histogram. *)
  open_loop : open_loop_stats option;
      (** [Some] on open-loop replay results, [None] on closed-loop
          runs. *)
}

type telemetry_request = {
  sample_interval : int;  (** Sampling period in cycles. *)
  sample_capacity : int;  (** Ring capacity in samples. *)
  consume : Telemetry.t -> unit;
      (** Called with the attached sampler after the run completes
          (e.g. to {!Telemetry.write} an export). *)
}

val telemetry_request :
  ?interval:int -> ?capacity:int -> (Telemetry.t -> unit) -> telemetry_request
(** Convenience constructor with {!Telemetry.attach}'s defaults
    (interval 1024 cycles, capacity 4096 samples). *)

type options = {
  seed : int;  (** Workload-generation RNG seed. *)
  scale : float;  (** Multiplier on transactions per thread. *)
  machine : Config.t;
      (** The simulated machine (Table I by default); build variants
          with {!Config.machine}. *)
  oracle : bool;  (** Run the serializability oracle. *)
  on_runtime : Lk_lockiller.Runtime.t -> unit;
      (** Called with the freshly built runtime before any core starts
          — use it to enable tracing or keep a handle for post-run
          inspection. Excluded from cache keys: runs that need it must
          bypass the {!Cache}. *)
  placement : placement;  (** Thread-to-tile binding, see {!placement}. *)
  cycle_limit : int;  (** Runaway guard; exceeding it is a [Failure]. *)
  queue_backend : Lk_engine.Event_queue.backend;
      (** Pending-event set implementation (default wheel). Both
          backends produce bit-identical results — the heap is the
          differential-testing reference — so, like [on_runtime], this
          field is excluded from cache keys. *)
  pdes_domains : int;
      (** PDES partitions the kernel splits the pending-event set into
          (default 1; clamped to the core count; the NoC link latency
          is the lookahead). The partitioned kernel merges its queues
          in global (time, seq) order, so results are byte-identical
          for any value — like [queue_backend], excluded from cache
          keys. See {!Lk_engine.Sim} and DESIGN.md "Parallel engine". *)
  check : bool;
      (** Attach the invariant sanitizer ({!Lk_check.Sanitizer}): the
          event-level invariant predicates run at every ledger emission
          and the end-of-run checks after the last thread finishes; any
          violation fails the run with a diagnostic. Does not change
          simulated behaviour, so — like [queue_backend] — it is
          excluded from cache keys (a warm-cache hit skips the run and
          therefore the checks; use the cache-bypassing paths to force
          a checked execution). Default false: no sink is installed and
          the only cost is the ledger's per-emission [None] branch. *)
  race_check : bool;
      (** Arm the partition-ownership race detector
          ({!Lk_engine.Sim.set_race_check}): every registered mutable
          region's witness hook checks that the mutating event runs in
          the region's owning partition, and per-partition vector
          clocks flag sub-lookahead cross-partition hops. Purely
          observational — witnesses never change scheduling, so results
          stay byte-identical with the detector on or off and, like
          [check], the field is excluded from cache keys. Any recorded
          violation fails the run post-hoc with the first finding's
          diagnostic. Default false: the witness hooks short-circuit on
          a single flag test. *)
  telemetry : telemetry_request option;
      (** Attach the periodic {!Telemetry} sampler and hand the result
          to [consume] after the run. The sampler is read-only and
          allocation-free, so it changes no simulation result — like
          [on_runtime] it is excluded from cache keys (a warm-cache hit
          skips the run and produces no telemetry; bypass the cache to
          force a sampled execution). Default [None]: zero cost. *)
}
(** Everything {!run} needs besides the (system, workload, threads)
    triple, collapsed from the former pile of optional arguments.
    Build variations with record update:
    [{ Runner.default_options with seed = 7 }]. *)

val default_options : options
(** Seed 1, scale 1.0, the paper's 32-core machine, oracle enabled,
    no [on_runtime] hook, [Compact] placement, a 2^30-cycle guard, the
    wheel event queue, one PDES domain, checking off. *)

val run :
  ?options:options ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  unit ->
  result
(** Closed-loop run. [?options] defaults to {!default_options}; build
    variations with record update
    ([{ Runner.default_options with seed = 7 }]) — the pre-[options]
    per-field optional arguments were removed.

    [threads] must not exceed the machine's cores. Raises [Failure] if
    the run violates conservation or serializability, leaves a thread
    unfinished, or exceeds the cycle limit (a livelock diagnostic, not
    an expected outcome). *)

val run_program :
  ?options:options ->
  ?name:string ->
  sysconf:Lk_lockiller.Sysconf.t ->
  program:Lk_cpu.Program.t ->
  unit ->
  result
(** Run a hand-written program (e.g. parsed with
    {!Lk_cpu.Program.of_text}): one thread per array slot, threads must
    fit the machine. The serializability oracle and protocol invariants
    still verify the run; there is no conservation check (the runner
    does not know the program's intent). The program must use addresses
    clear of the reserved lock/clock/gate lines (bytes 0-255). *)

val replay :
  ?options:options ->
  sysconf:Lk_lockiller.Sysconf.t ->
  open_loop:Workload_source.open_loop ->
  threads:int ->
  unit ->
  result
(** Open-loop replay: [threads] stream cores serve the arrival stream.
    Each record is admitted at its arrival cycle (immediately if the
    trace is behind simulated time), queued FIFO at a core — its own
    [core mod threads] when it has affinity, round-robin otherwise —
    and its body is synthesised from [open_loop.body] plus the record's
    footprint only when service begins, so memory use is
    O(threads + backlog), independent of trace length. The result's
    [open_loop] field reports arrivals, queueing-delay and sojourn
    percentiles, peak backlog and the per-phase completion mix;
    [options.scale] is ignored (the trace dictates offered load).

    The serializability oracle ([options.oracle]) stores every
    committed section, which defeats the bounded-memory property on
    long traces — disable it for capacity-planning replays (the CLI's
    [replay] does by default). Raises [Failure] on a malformed or
    non-monotone trace (the feeder's position-tagged error), and on the
    same conservation/serializability/invariant violations as {!run}
    (hot-counter increments are tallied during body synthesis, so
    conservation needs no second trace pass). *)

val run_source :
  ?options:options ->
  sysconf:Lk_lockiller.Sysconf.t ->
  source:Workload_source.t ->
  threads:int ->
  unit ->
  result
(** Dispatch on the workload source: [Workload] -> {!run}, [Program] ->
    {!run_program} ([threads] must equal the program's width),
    [Replay] -> {!replay}. *)

val abort_fraction : result -> Lk_htm.Reason.t -> float
(** Share of a reason among all aborts (0 when no aborts). *)

val pp : Format.formatter -> result -> unit

(** {1 Serialisation}

    The machine-readable results API: one JSON object per {!result},
    one member per field in declaration order; [abort_mix] and
    [breakdown] are label-keyed objects (paper labels, paper order).
    The on-disk {!Cache} stores exactly this encoding, so every
    warm-cache run round-trips it.

    Since schema v4 the object leads with a ["schema"] member
    ({!Schema.version}); the decoder rejects documents whose version is
    missing, older or newer with an explanatory error (see
    {!Schema.check}). The trailing ["open_loop"] member is [null] for
    closed-loop results. *)

val json_of_result : result -> Json.t

val result_to_json : result -> string
(** Compact single-line JSON. *)

val result_of_json : string -> (result, string) Stdlib.result
(** Inverse of {!result_to_json}; [Error] describes the first missing
    or ill-typed member. Floats round-trip exactly ([%.17g]). *)

val result_of_json_value : Json.t -> (result, string) Stdlib.result
