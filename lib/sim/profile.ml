(* Causal abort profiler: a streaming fold of the event ledger into a
   who-killed-whom graph plus wasted-work accounting. See the .mli for
   the model. [feed] runs on the ledger's tap — the simulator's emit
   path — so everything below it is fixed preallocated int arrays; the
   renderers at the bottom run after the simulation and allocate
   freely. *)

module Ledger = Lk_engine.Ledger
module Reason = Lk_htm.Reason

type t = {
  cores : int;
  (* Kill matrix, row-major: [(aggressor + 1) * cores + victim]. Row 0
     is the environmental pseudo-aggressor (-1). *)
  matrix : int array;
  (* Per-core accumulators. *)
  aborts_of : int array;
  wasted_arr : int array;
  commits_of : int array;
  (* Kill-chain depth per core (0 = not currently a victim); the max
     observed is the report's chain depth. *)
  depth : int array;
  reason_wasted : int array;
  (* Begin time of the core's current attempt (-1 outside one), from
     the begin events — feeds the commit critical-path estimate. *)
  begin_time : int array;
  (* Fallback-lock stream state. *)
  lock_since : int array;
  mutable last_holder : int;
  mutable holder_run : int;
  mutable best_run : int;
  mutable best_run_core : int;
  mutable acquisitions : int;
  mutable handoffs : int;
  mutable dwell_total : int;
  mutable dwell_max : int;
  (* Scalars. *)
  mutable total_aborts : int;
  mutable environmental : int;
  mutable wasted : int;
  mutable discarded_writes : int;
  mutable max_depth : int;
  mutable commits : int;
  mutable nacks : int;
  mutable rejects : int;
  mutable protocol_kills : int;
  mutable last_commit : int;
  mutable serial_commit : int;
  mutable dropped : int;
}

let create ~cores =
  if cores <= 0 then invalid_arg "Profile.create: cores must be positive";
  {
    cores;
    matrix = Array.make ((cores + 1) * cores) 0;
    aborts_of = Array.make cores 0;
    wasted_arr = Array.make cores 0;
    commits_of = Array.make cores 0;
    depth = Array.make cores 0;
    reason_wasted = Array.make Reason.count 0;
    begin_time = Array.make cores (-1);
    lock_since = Array.make cores (-1);
    last_holder = -1;
    holder_run = 0;
    best_run = 0;
    best_run_core = -1;
    acquisitions = 0;
    handoffs = 0;
    dwell_total = 0;
    dwell_max = 0;
    total_aborts = 0;
    environmental = 0;
    wasted = 0;
    discarded_writes = 0;
    max_depth = 0;
    commits = 0;
    nacks = 0;
    rejects = 0;
    protocol_kills = 0;
    last_commit = 0;
    serial_commit = 0;
    dropped = 0;
  }

let cores t = t.cores
let dropped t = t.dropped

(* One abort edge: self-contained (aggressor and age ride in the packed
   arg), so totals are exact under the streaming tap and survive ring
   wraparound for every record that itself survives. *)
let abort_edge t ~core ~arg =
  let reason = Ledger.abort_reason arg in
  let who = Ledger.abort_who arg in
  let age = Ledger.abort_age arg in
  t.total_aborts <- t.total_aborts + 1;
  t.aborts_of.(core) <- t.aborts_of.(core) + 1;
  t.wasted <- t.wasted + age;
  t.wasted_arr.(core) <- t.wasted_arr.(core) + age;
  if reason >= 0 && reason < Reason.count then
    t.reason_wasted.(reason) <- t.reason_wasted.(reason) + age;
  let who = if who >= 0 && who < t.cores then who else -1 in
  if who < 0 then t.environmental <- t.environmental + 1;
  let idx = ((who + 1) * t.cores) + core in
  t.matrix.(idx) <- t.matrix.(idx) + 1;
  (* Chain depth: the victim inherits the aggressor's depth + 1 (an
     environmental kill starts a chain of depth 1); commits reset. *)
  let d = if who >= 0 then t.depth.(who) + 1 else 1 in
  t.depth.(core) <- d;
  if d > t.max_depth then t.max_depth <- d;
  t.begin_time.(core) <- -1

let commit_event t ~time ~core =
  t.commits <- t.commits + 1;
  t.commits_of.(core) <- t.commits_of.(core) + 1;
  t.depth.(core) <- 0;
  let b = t.begin_time.(core) in
  if b >= 0 then begin
    (* Non-overlapped portion of this committed attempt: work after the
       previous commit's serialization point cannot have run in its
       shadow, so it lower-bounds the run's serial spine. *)
    let from = if t.last_commit > b then t.last_commit else b in
    if time > from then t.serial_commit <- t.serial_commit + (time - from)
  end;
  if time > t.last_commit then t.last_commit <- time;
  t.begin_time.(core) <- -1

let feed t ~time ~core ~kind ~arg =
  match (kind : Ledger.kind) with
  | Ledger.Tx_begin | Ledger.Hl_begin | Ledger.Sw_begin ->
    t.begin_time.(core) <- time
  | Ledger.Tx_abort | Ledger.Sw_abort -> abort_edge t ~core ~arg
  | Ledger.Tx_commit | Ledger.Hl_end | Ledger.Sw_commit ->
    commit_event t ~time ~core
  | Ledger.Nack -> t.nacks <- t.nacks + 1
  | Ledger.Reject -> t.rejects <- t.rejects + 1
  | Ledger.Abort_kill -> t.protocol_kills <- t.protocol_kills + 1
  | Ledger.Spec_discard ->
    t.discarded_writes <- t.discarded_writes + Ledger.discard_writes arg
  | Ledger.Lock_acquire ->
    t.acquisitions <- t.acquisitions + 1;
    t.lock_since.(core) <- time;
    if core = t.last_holder then t.holder_run <- t.holder_run + 1
    else begin
      if t.last_holder >= 0 then t.handoffs <- t.handoffs + 1;
      t.last_holder <- core;
      t.holder_run <- 1
    end;
    if t.holder_run > t.best_run then begin
      t.best_run <- t.holder_run;
      t.best_run_core <- core
    end
  | Ledger.Lock_release ->
    let since = t.lock_since.(core) in
    if since >= 0 then begin
      let d = time - since in
      t.dwell_total <- t.dwell_total + d;
      if d > t.dwell_max then t.dwell_max <- d;
      t.lock_since.(core) <- -1
    end
  | Ledger.Park | Ledger.Wake | Ledger.Switch_granted | Ledger.Switch_denied
  | Ledger.Spill | Ledger.Spec_publish | Ledger.Clock_advance ->
    ()

let attach t ledger =
  Ledger.set_tap ledger
    (Some (fun ~time ~core ~kind ~arg -> feed t ~time ~core ~kind ~arg))

let of_ledger ~cores ledger =
  let t = create ~cores in
  t.dropped <- Ledger.dropped ledger;
  Ledger.iter ledger (fun ~time ~core ~kind ~arg ->
      feed t ~time ~core ~kind ~arg);
  t

(* --- Accessors --------------------------------------------------------- *)

let total_aborts t = t.total_aborts
let attributed t = t.total_aborts - t.environmental
let environmental t = t.environmental

let kills t ~aggressor ~victim =
  if victim < 0 || victim >= t.cores then
    invalid_arg "Profile.kills: victim out of range";
  if aggressor < -1 || aggressor >= t.cores then
    invalid_arg "Profile.kills: aggressor out of range";
  t.matrix.(((aggressor + 1) * t.cores) + victim)

let killed_by t ~victim = t.aborts_of.(victim)

let kills_of t ~aggressor =
  let sum = ref 0 in
  for v = 0 to t.cores - 1 do
    sum := !sum + t.matrix.(((aggressor + 1) * t.cores) + v)
  done;
  !sum

let top_pairs t ~k =
  let pairs = ref [] in
  for a = -1 to t.cores - 1 do
    for v = 0 to t.cores - 1 do
      let n = t.matrix.(((a + 1) * t.cores) + v) in
      if n > 0 then pairs := (a, v, n) :: !pairs
    done
  done;
  let sorted =
    List.sort
      (fun (a1, v1, n1) (a2, v2, n2) ->
        if n1 <> n2 then compare n2 n1
        else if a1 <> a2 then compare a1 a2
        else compare v1 v2)
      !pairs
  in
  List.filteri (fun i _ -> i < k) sorted

let wasted t = t.wasted
let wasted_of t ~core = t.wasted_arr.(core)
let wasted_by_reason t r = t.reason_wasted.(Reason.index r)
let discarded_writes t = t.discarded_writes
let max_chain_depth t = t.max_depth
let commits t = t.commits
let serial_commit_cycles t = t.serial_commit
let nacks t = t.nacks
let rejects t = t.rejects
let protocol_kills t = t.protocol_kills
let lock_acquisitions t = t.acquisitions
let lock_handoffs t = t.handoffs
let longest_holder_run t = t.best_run
let longest_holder t = t.best_run_core
let lock_dwell_total t = t.dwell_total
let lock_dwell_max t = t.dwell_max

(* --- Renderers --------------------------------------------------------- *)

let who_label a = if a < 0 then "env" else "core" ^ string_of_int a

let to_text t =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  if t.dropped > 0 then
    line "WARNING: %d ledger record(s) dropped before the fold; totals cover the retained suffix only"
      t.dropped;
  line "causal abort profile (%d cores)" t.cores;
  line "  aborts         %d (%d attributed, %d environmental)"
    t.total_aborts (attributed t) t.environmental;
  line "  commits        %d" t.commits;
  line "  wasted cycles  %d" t.wasted;
  line "  discarded speculative writes  %d" t.discarded_writes;
  line "  nacks %d  rejects %d  protocol kills %d" t.nacks t.rejects
    t.protocol_kills;
  line "  kill-chain depth (max)  %d" t.max_depth;
  line "  commit critical path    %d cycles" t.serial_commit;
  line "wasted by reason:";
  List.iter
    (fun r ->
      let w = wasted_by_reason t r in
      if w > 0 then line "  %-10s %d" (Reason.label r) w)
    Reason.all;
  let top = top_pairs t ~k:10 in
  if top <> [] then begin
    line "top aggressor -> victim pairs:";
    List.iter
      (fun (a, v, n) -> line "  %-7s -> core%-3d  %d" (who_label a) v n)
      top
  end;
  line "per-core:";
  line "  core  aborts  commits  wasted  inflicted";
  for c = 0 to t.cores - 1 do
    if t.aborts_of.(c) > 0 || t.commits_of.(c) > 0 || kills_of t ~aggressor:c > 0
    then
      line "  %4d  %6d  %7d  %6d  %9d" c t.aborts_of.(c) t.commits_of.(c)
        t.wasted_arr.(c)
        (kills_of t ~aggressor:c)
  done;
  if t.acquisitions > 0 then begin
    line "fallback lock:";
    line "  acquisitions %d  handoffs %d  longest run %d (core %d)"
      t.acquisitions t.handoffs t.best_run t.best_run_core;
    line "  dwell total %d  max %d  mean %.1f" t.dwell_total t.dwell_max
      (float_of_int t.dwell_total /. float_of_int t.acquisitions)
  end;
  Buffer.contents buf

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "aggressor,victim,count,victim_wasted\n";
  for a = -1 to t.cores - 1 do
    for v = 0 to t.cores - 1 do
      let n = t.matrix.(((a + 1) * t.cores) + v) in
      if n > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%d,%d,%d,%d\n" a v n t.wasted_arr.(v))
    done
  done;
  Buffer.contents buf

let to_json_value t =
  let ints arr = Json.List (Array.to_list (Array.map (fun v -> Json.Int v) arr)) in
  let edges =
    let out = ref [] in
    for a = t.cores - 1 downto -1 do
      for v = t.cores - 1 downto 0 do
        let n = t.matrix.(((a + 1) * t.cores) + v) in
        if n > 0 then
          out :=
            Json.Obj
              [
                ("aggressor", Json.Int a);
                ("victim", Json.Int v);
                ("count", Json.Int n);
              ]
            :: !out
      done
    done;
    Json.List !out
  in
  Json.Obj
    [
      ("cores", Json.Int t.cores);
      ("dropped", Json.Int t.dropped);
      ("aborts", Json.Int t.total_aborts);
      ("attributed", Json.Int (attributed t));
      ("environmental", Json.Int t.environmental);
      ("commits", Json.Int t.commits);
      ("wasted_cycles", Json.Int t.wasted);
      ( "wasted_by_reason",
        Json.Obj
          (List.map
             (fun r -> (Reason.label r, Json.Int (wasted_by_reason t r)))
             Reason.all) );
      ("discarded_writes", Json.Int t.discarded_writes);
      ("nacks", Json.Int t.nacks);
      ("rejects", Json.Int t.rejects);
      ("protocol_kills", Json.Int t.protocol_kills);
      ("max_chain_depth", Json.Int t.max_depth);
      ("serial_commit_cycles", Json.Int t.serial_commit);
      ("aborts_per_core", ints t.aborts_of);
      ("commits_per_core", ints t.commits_of);
      ("wasted_per_core", ints t.wasted_arr);
      ("kill_edges", edges);
      ( "lock",
        Json.Obj
          [
            ("acquisitions", Json.Int t.acquisitions);
            ("handoffs", Json.Int t.handoffs);
            ("longest_run", Json.Int t.best_run);
            ("longest_run_core", Json.Int t.best_run_core);
            ("dwell_total", Json.Int t.dwell_total);
            ("dwell_max", Json.Int t.dwell_max);
          ] );
    ]

let to_json t = Json.to_string_pretty (to_json_value t)
