(** Wall-clock and allocation counters for the simulator hot loop.

    A probe brackets a stretch of work with [Unix.gettimeofday] and
    [Gc.quick_stat]; combined with the simulator's event and cycle
    counters ({!Lk_engine.Sim.events}, {!Lk_engine.Sim.now}) this yields
    the three rates the perf harness tracks: events/sec, cycles/sec and
    minor-heap words allocated per event. {!Runner} records one sample
    per simulation into a process-wide aggregate (atomic counters, safe
    under the {!Pool} domains) that the bench harness prints as a
    per-experiment throughput section. *)

type sample = {
  wall_seconds : float;
  minor_words : float;  (** Minor-heap words allocated in the window. *)
  events : int;  (** Simulator events fired in the window. *)
  cycles : int;  (** Simulated cycles covered by the window. *)
}

type probe

val start : unit -> probe
(** Capture the wall clock and allocation counter now. *)

val stop : probe -> events:int -> cycles:int -> sample
(** Close the window; the caller supplies its own event/cycle deltas
    (e.g. pop counts for a raw queue benchmark). *)

val observe : Lk_engine.Sim.t -> (unit -> 'a) -> 'a * sample
(** [observe sim f] runs [f ()] under a probe, reading the event and
    cycle deltas from [sim]. *)

val events_per_sec : sample -> float
val cycles_per_sec : sample -> float

val minor_words_per_event : sample -> float
(** 0 when the window fired no events. *)

val json_of_sample : sample -> Json.t
(** Object with the raw fields plus the three derived rates. *)

(** {1 Process-wide aggregate} *)

type totals = {
  runs : int;  (** Samples folded in (one per simulation). *)
  total_wall_seconds : float;
      (** Sum of per-simulation wall time — under the parallel pool this
          exceeds elapsed time. *)
  total_events : int;
  total_cycles : int;
  total_minor_words : float;
}

val note : sample -> unit
(** Fold a sample into the aggregate (atomic; any domain may call). *)

val totals : unit -> totals
val reset_totals : unit -> unit

val pp_totals : Format.formatter -> totals -> unit
(** One-line summary: sims, sim-wall seconds, events/s, cycles/s, minor
    words/event. *)
