(** Causal abort profiler: folds the structured event ledger into a
    who-killed-whom graph with wasted-work accounting.

    A profile consumes {!Lk_engine.Ledger} records — either streamed
    live through the ledger's tap slot ({!attach}), so fixed-capacity
    ring wraparound cannot lose edges, or by folding a retained ledger
    after the run ({!of_ledger}) — and accumulates, in fixed
    preallocated arrays:

    - the {e kill matrix}: attributed abort edges
      (aggressor, victim, count), with aggressor [-1] for environmental
      aborts (capacity, faults, mutex subscriptions) that have no
      single core to blame. Every [Tx_abort] / [Sw_abort] record
      contributes exactly one edge, so the matrix total equals the
      run's abort count;
    - per-core and per-reason {e wasted cycles}, decoded from the age
      packed into each abort record (self-contained: totals survive
      ring wraparound as long as the record itself does, and are exact
      under the streaming tap);
    - {e kill-chain depth}: on edge [(a, v)] the victim's depth becomes
      the aggressor's + 1 (1 for environmental edges), resetting to 0
      when a core commits — so A kills B kills C yields depth 2;
    - {e fallback-lock convoy detection}: acquisition count, hand-offs
      (holder differs from the previous holder), the longest
      consecutive same-holder run, and dwell (total / max) from the
      acquire/release stream;
    - a {e commit critical-path estimate}: the non-overlapped portion
      of committed attempts, [sum over commits of
      max 0 (commit - max begin prev_commit)] — a lower bound on the
      serialized work the run cannot parallelise away.

    {!feed} is allocation-free (the tap runs on the simulator's emit
    path); the renderers allocate freely and run after the run. The
    profiler is purely observational: attaching it changes no
    simulation result. *)

type t

val create : cores:int -> t
val cores : t -> int

val feed : t -> time:int -> core:int -> kind:Lk_engine.Ledger.kind -> arg:int -> unit
(** Fold one ledger record. Allocation-free. *)

val attach : t -> Lk_engine.Ledger.t -> unit
(** Install {!feed} as the ledger's tap ({!Lk_engine.Ledger.set_tap}):
    every subsequent emission streams through the profile, immune to
    ring wraparound. *)

val of_ledger : cores:int -> Lk_engine.Ledger.t -> t
(** Fold a ledger's retained records (oldest first). Sets {!dropped}
    from the ledger, so renderers can warn that totals cover only the
    retained suffix. *)

val dropped : t -> int
(** Records lost before the fold ({!of_ledger} only; 0 when
    streaming). *)

(** {1 Graph totals} *)

val total_aborts : t -> int
(** Abort edges folded ([Tx_abort] + [Sw_abort] records). *)

val attributed : t -> int
(** Edges naming an aggressor core. [attributed + environmental =
    total_aborts]. *)

val environmental : t -> int

val kills : t -> aggressor:int -> victim:int -> int
(** Edge count for one (aggressor, victim) pair; [aggressor] may be
    [-1] for the environmental row. *)

val killed_by : t -> victim:int -> int
(** Incoming edges (aborts suffered) of a core. *)

val kills_of : t -> aggressor:int -> int
(** Outgoing edges (aborts inflicted) of a core. *)

val top_pairs : t -> k:int -> (int * int * int) list
(** The [k] heaviest (aggressor, victim, count) edges, count
    descending, ties broken by (aggressor, victim) ascending —
    deterministic. Excludes zero-count pairs. *)

(** {1 Wasted work} *)

val wasted : t -> int
(** Total cycles inside attempts that aborted, from the packed ages. *)

val wasted_of : t -> core:int -> int
val wasted_by_reason : t -> Lk_htm.Reason.t -> int

val discarded_writes : t -> int
(** Speculative writes dropped by aborts ([Spec_discard] records). *)

(** {1 Structure} *)

val max_chain_depth : t -> int
val commits : t -> int
(** Commit events folded ([Tx_commit] + [Hl_end] + [Sw_commit]). *)

val serial_commit_cycles : t -> int
(** The commit critical-path estimate (see the module preamble). *)

val nacks : t -> int
val rejects : t -> int
val protocol_kills : t -> int
(** [Abort_kill] records (the coherence protocol's view of conflict
    kills; each is also counted as a [Tx_abort] edge). *)

(** {1 Convoy detection} *)

val lock_acquisitions : t -> int
val lock_handoffs : t -> int
(** Acquisitions whose holder differs from the previous holder. A high
    hand-off fraction with short dwell is the convoy signature. *)

val longest_holder_run : t -> int
(** Longest streak of consecutive acquisitions by one core. *)

val longest_holder : t -> int
(** The core of {!longest_holder_run} (-1 when the lock was never
    taken). *)

val lock_dwell_total : t -> int
val lock_dwell_max : t -> int

(** {1 Renderers} *)

val to_text : t -> string
(** Human-readable report: totals, wasted-by-reason table, top-10
    aggressor/victim pairs, per-core table, convoy and critical-path
    summary. Warns when {!dropped} > 0. *)

val to_csv : t -> string
(** The kill matrix as [aggressor,victim,count,wasted_of_victim] rows
    (attributed and environmental), deterministic order. *)

val to_json_value : t -> Json.t
val to_json : t -> string
(** Everything above as one JSON document (totals, per-core arrays,
    kill edges, convoy block, critical path). Deterministic. *)
