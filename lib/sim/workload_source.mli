(** What drives a simulation: the workload-source abstraction.

    The paper's experiments are {e closed-loop} — each thread owns a
    fixed program and issues its next transaction as soon as the
    previous one finishes, so offered load adapts to service capacity.
    The replay mode is {e open-loop}: arrivals come from a trace on
    their own clock whether or not the cores keep up, which is what
    exposes queueing collapse when a policy's service rate degrades
    under contention. *)

type open_loop = {
  trace_name : string;  (** Result/report label for the stream. *)
  next : unit -> (Lk_trace.Record.t option, string) result;
      (** Pull the next arrival ([Ok None] = end of trace). Called one
          record ahead of simulated time, so a reader backed by a file
          keeps replay memory constant. Arrival cycles must be
          nondecreasing ({!Lk_trace.Stream.read} guarantees this). *)
  body : Lk_stamp.Workload.profile;
      (** Access-pattern template: hot/shared/private mix, compute
          interleave, fault rate. Per-transaction footprints come from
          the trace records; the profile's own per-tx ranges and
          [txs_per_thread] are ignored. *)
}

type t =
  | Workload of Lk_stamp.Workload.profile
      (** Closed-loop generated STAMP-style workload. *)
  | Program of { name : string; program : Lk_cpu.Program.t }
      (** Closed-loop hand-written program, one thread per slot. *)
  | Replay of open_loop  (** Open-loop trace stream. *)

val name : t -> string

val of_reader :
  ?name:string ->
  body:Lk_stamp.Workload.profile ->
  Lk_trace.Stream.reader ->
  t
(** [Replay] source pulling from a {!Lk_trace.Stream.reader} ([name]
    defaults to ["trace"]). *)
