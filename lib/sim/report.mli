(** Plain-text table rendering for the experiment harness. *)

type table = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;  (** Free-form lines printed under the table. *)
}

val table :
  ?notes:string list -> title:string -> headers:string list ->
  string list list -> table
(** Build a table; every row must have as many cells as [headers]
    (renderers pad, they do not check). [notes] default to none. *)

val f1 : float -> string
(** One decimal ("1.9"). *)

val f2 : float -> string
(** Two decimals ("1.86"). *)

val pct : float -> string
(** Fraction as percentage ("62.5%"). *)

val pp_table : Format.formatter -> table -> unit
(** Column-aligned ASCII rendering. *)

val print : table -> unit
(** [pp_table] to stdout, followed by a blank line. *)

val to_csv : table -> string
(** RFC-4180-ish CSV: header row then data rows; cells containing
    commas or quotes are quoted. Notes are omitted. *)

val csv_filename : table -> string
(** A filesystem-friendly name derived from the title
    ("fig_7_speedup_over_cgl_2_threads.csv"-style). *)

val json_of_table : table -> Json.t
(** [{"title": ..., "headers": [...], "rows": [[...]], "notes": [...]}]
    — cells stay the strings the text renderer shows. *)

val to_json : table -> string
(** Compact JSON rendering of {!json_of_table}. *)
