(* Periodic telemetry sampler.

   [attach] hooks a self-rescheduling sampler event into the existing
   event queue: every [interval] cycles it snapshots a set of gauges
   into three fixed-capacity {!Lk_engine.Timeseries} rings (per-core
   execution phase, machine-wide gauges, per-link flit counters). The
   sampler is strictly read-only — it never perturbs the machine — and
   the sampling path is allocation-free (asserted by the test suite),
   so enabling telemetry changes no simulation result.

   Termination: after each sample the event re-arms itself only while
   other work remains in the queue ([Sim.pending] > 0). It must never
   re-arm from a quiescence hook — that would keep the simulation
   alive to the cycle limit. *)

module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats
module Timeseries = Lk_engine.Timeseries
module Protocol = Lk_coherence.Protocol
module L1 = Lk_coherence.L1_cache
module Llc = Lk_coherence.Llc
module Network = Lk_mesh.Network
module Runtime = Lk_lockiller.Runtime

(* Machine-wide gauge channels, in slot order. *)
let gauge_channels =
  [
    "lock_holders";  (* cores holding the fallback spinlock *)
    "arbiter";  (* 1 when the HTMLock/switching authorization is held *)
    "sig_rd";  (* overflow read-signature population (set bits) *)
    "sig_wr";  (* overflow write-signature population *)
    "parked";  (* cores parked waiting for a wake-up *)
    "wake_pending";  (* recorded (rejector, waiter) pairs *)
    "queue_depth";  (* simulator events pending (sampler excluded) *)
    "l1_tx_lines";  (* transactionally marked L1 lines, all cores *)
    "llc_lines";  (* resident LLC lines *)
    "flits";  (* cumulative network flits sent *)
    "messages";  (* cumulative network messages sent *)
    "clock";  (* global version-clock value (hybrid-TM comparators) *)
    "sw_mode";  (* cores running a software (TL2) transaction *)
    "backlog";  (* open-loop replay: transactions arrived but unfinished *)
    "pdes_windows";  (* lookahead windows opened (PDES diagnostics) *)
    "pdes_cross_events";  (* events scheduled across a partition boundary *)
    "pdes_short_hops";  (* cross-partition events under the lookahead *)
  ]

let g_lock_holders = 0
let g_arbiter = 1
let g_sig_rd = 2
let g_sig_wr = 3
let g_parked = 4
let g_wake_pending = 5
let g_queue_depth = 6
let g_l1_tx_lines = 7
let g_llc_lines = 8
let g_flits = 9
let g_messages = 10
let g_clock = 11
let g_sw_mode = 12
let g_backlog = 13
let g_pdes_windows = 14
let g_pdes_cross_events = 15
let g_pdes_short_hops = 16

type t = {
  rt : Runtime.t;
  sim : Sim.t;
  proto : Protocol.t;
  net : Network.t;
  llc : Llc.t;
  cores : int;
  interval : int;
  phases : Timeseries.t;
  gauges : Timeseries.t;
  links : Timeseries.t;
  (* Scratch accumulator for the counting loops below: sampling must
     not allocate, so no refs and no closures on this path. *)
  mutable acc : int;
  (* Open-loop backlog gauge. The replay runner installs a probe over
     its in-flight counter; closed-loop runs leave the default constant
     0. Must not allocate. *)
  mutable backlog_probe : unit -> int;
}

let interval t = t.interval
let set_backlog_probe t f = t.backlog_probe <- f
let phases t = t.phases
let gauges t = t.gauges
let links t = t.links
let samples t = Timeseries.recorded t.phases
let dropped t = Timeseries.dropped t.phases

let sample_now t =
  let time = Sim.now t.sim in
  (* Per-core phase codes. *)
  for c = 0 to t.cores - 1 do
    Timeseries.set t.phases c (Runtime.phase_code t.rt c)
  done;
  Timeseries.commit t.phases ~time;
  (* Machine-wide gauges. *)
  t.acc <- 0;
  for c = 0 to t.cores - 1 do
    if Runtime.holds_lock t.rt c then t.acc <- t.acc + 1
  done;
  Timeseries.set t.gauges g_lock_holders t.acc;
  Timeseries.set t.gauges g_arbiter
    (if Runtime.arbiter_engaged t.rt then 1 else 0);
  Timeseries.set t.gauges g_sig_rd (Runtime.sig_rd_population t.rt);
  Timeseries.set t.gauges g_sig_wr (Runtime.sig_wr_population t.rt);
  t.acc <- 0;
  for c = 0 to t.cores - 1 do
    if Runtime.is_parked t.rt c then t.acc <- t.acc + 1
  done;
  Timeseries.set t.gauges g_parked t.acc;
  Timeseries.set t.gauges g_wake_pending (Runtime.wake_pending t.rt);
  Timeseries.set t.gauges g_queue_depth (Sim.pending t.sim);
  t.acc <- 0;
  for c = 0 to t.cores - 1 do
    t.acc <- t.acc + L1.tx_count (Protocol.l1 t.proto c)
  done;
  Timeseries.set t.gauges g_l1_tx_lines t.acc;
  Timeseries.set t.gauges g_llc_lines (Llc.occupancy t.llc);
  Timeseries.set t.gauges g_flits (Network.flits_sent t.net);
  Timeseries.set t.gauges g_messages (Network.messages_sent t.net);
  Timeseries.set t.gauges g_clock (Runtime.clock_value t.rt);
  Timeseries.set t.gauges g_sw_mode (Runtime.sw_population t.rt);
  Timeseries.set t.gauges g_backlog (t.backlog_probe ());
  Timeseries.set t.gauges g_pdes_windows (Sim.pdes_windows t.sim);
  Timeseries.set t.gauges g_pdes_cross_events (Sim.pdes_cross_events t.sim);
  Timeseries.set t.gauges g_pdes_short_hops (Sim.pdes_short_hops t.sim);
  Timeseries.commit t.gauges ~time;
  (* Per-link cumulative flit counters. *)
  let nlinks = Network.num_links t.net in
  for i = 0 to nlinks - 1 do
    Timeseries.set t.links i (Network.link_flits t.net i)
  done;
  Timeseries.commit t.links ~time

let attach ?(interval = 1024) ?(capacity = 4096) rt =
  if interval <= 0 then
    invalid_arg "Telemetry.attach: interval must be positive";
  let proto = Runtime.protocol rt in
  let sim = Protocol.sim proto in
  let net = Protocol.network proto in
  let cores = (Protocol.config proto).Protocol.cores in
  let core_channels = List.init cores (fun c -> Printf.sprintf "core%d" c) in
  let link_channels =
    List.init (Network.num_links net) (fun i -> Printf.sprintf "link%d" i)
  in
  let t =
    {
      rt;
      sim;
      proto;
      net;
      llc = Protocol.llc proto;
      cores;
      interval;
      phases = Timeseries.create ~capacity ~channels:core_channels ();
      gauges = Timeseries.create ~capacity ~channels:gauge_channels ();
      links = Timeseries.create ~capacity ~channels:link_channels ();
      acc = 0;
      backlog_probe = (fun () -> 0);
    }
  in
  (* One closure, allocated here once; the wheel backend recycles the
     queue entry, so steady-state re-arming allocates nothing. *)
  let rec tick () =
    sample_now t;
    if Sim.pending sim > 0 then Sim.schedule sim ~delay:t.interval tick
  in
  (* Baseline row at attach time, then periodic samples while the
     machine still has work. *)
  sample_now t;
  Sim.schedule sim ~delay:interval tick;
  t

(* --- Histogram summaries ---------------------------------------------- *)

let json_of_hdr d =
  Json.Obj
    [
      ("count", Json.Int (Stats.hdr_count d));
      ("sum", Json.Int (Stats.hdr_sum d));
      ("mean", Json.Float (Stats.hdr_mean d));
      ("min", Json.Int (match Stats.hdr_min d with Some v -> v | None -> 0));
      ("max", Json.Int (match Stats.hdr_max d with Some v -> v | None -> 0));
      ("p50", Json.Int (Stats.percentile d 50.));
      ("p90", Json.Int (Stats.percentile d 90.));
      ("p95", Json.Int (Stats.percentile d 95.));
      ("p99", Json.Int (Stats.percentile d 99.));
    ]

let histograms t =
  [
    ("tx_latency", Runtime.tx_latency_hdr t.rt);
    ("retry_gap", Runtime.retry_gap_hdr t.rt);
    ("lock_dwell", Runtime.lock_dwell_hdr t.rt);
  ]

(* --- Perfetto counter tracks ------------------------------------------- *)

(* Chrome trace-event counters: ph "C", numeric [args] members become
   stacked series on one counter track. *)
let counter ~name ~ts ~args =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "C");
      ("ts", Json.Int ts);
      ("pid", Json.Int 0);
      ("args", Json.Obj args);
    ]

let perfetto_counters t =
  let out = ref [] in
  let push e = out := e :: !out in
  Timeseries.iter t.phases (fun ~time ~row ->
      Array.iteri
        (fun c v ->
          push
            (counter
               ~name:(Printf.sprintf "phase core %d" c)
               ~ts:time
               ~args:[ ("phase", Json.Int v) ]))
        row);
  Timeseries.iter t.gauges (fun ~time ~row ->
      push
        (counter ~name:"signature fill" ~ts:time
           ~args:
             [
               ("rd", Json.Int row.(g_sig_rd));
               ("wr", Json.Int row.(g_sig_wr));
             ]);
      push
        (counter ~name:"queue depth" ~ts:time
           ~args:[ ("events", Json.Int row.(g_queue_depth)) ]);
      push
        (counter ~name:"cores waiting" ~ts:time
           ~args:
             [
               ("lock_holders", Json.Int row.(g_lock_holders));
               ("parked", Json.Int row.(g_parked));
             ]);
      push
        (counter ~name:"hybrid sw" ~ts:time
           ~args:
             [
               ("clock", Json.Int row.(g_clock));
               ("sw_mode", Json.Int row.(g_sw_mode));
             ]);
      push
        (counter ~name:"backlog" ~ts:time
           ~args:[ ("inflight", Json.Int row.(g_backlog)) ]);
      push
        (counter ~name:"pdes" ~ts:time
           ~args:
             [
               ("windows", Json.Int row.(g_pdes_windows));
               ("cross_events", Json.Int row.(g_pdes_cross_events));
               ("short_hops", Json.Int row.(g_pdes_short_hops));
             ]));
  (* Link counters are cumulative; the track shows per-sample deltas
     (flits moved since the previous sample) summed over all links. *)
  let prev = ref 0 in
  Timeseries.iter t.links (fun ~time ~row ->
      let total = Array.fold_left ( + ) 0 row in
      push
        (counter ~name:"link utilization" ~ts:time
           ~args:[ ("flits", Json.Int (total - !prev)) ]);
      prev := total);
  List.rev !out

(* --- Export ------------------------------------------------------------ *)

let json_of_ring ts =
  let rows = ref [] in
  Timeseries.iter ts (fun ~time ~row ->
      let cells =
        Json.Int time :: Array.to_list (Array.map (fun v -> Json.Int v) row)
      in
      rows := Json.List cells :: !rows);
  Json.Obj
    [
      ( "channels",
        Json.List
          (List.map (fun c -> Json.String c) (Timeseries.channels ts)) );
      ("dropped", Json.Int (Timeseries.dropped ts));
      ("rows", Json.List (List.rev !rows));
    ]

let to_json_value t =
  Json.Obj
    [
      ("version", Json.Int 1);
      ("interval", Json.Int t.interval);
      ("samples", Json.Int (samples t));
      ("phases", json_of_ring t.phases);
      ("gauges", json_of_ring t.gauges);
      ("links", json_of_ring t.links);
      ( "histograms",
        Json.Obj
          (List.map (fun (name, d) -> (name, json_of_hdr d)) (histograms t))
      );
    ]

let to_json t = Json.to_string_pretty (to_json_value t)

(* One wide CSV: the three rings commit in lockstep (same times, same
   capacity), so their rows zip into one line per sample. *)
let to_csv t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "time";
  List.iter
    (fun ts ->
      List.iter
        (fun c ->
          Buffer.add_char buf ',';
          Buffer.add_string buf c)
        (Timeseries.channels ts))
    [ t.phases; t.gauges; t.links ];
  Buffer.add_char buf '\n';
  let n = Timeseries.length t.phases in
  for s = 0 to n - 1 do
    Buffer.add_string buf (string_of_int (Timeseries.time t.phases ~sample:s));
    List.iter
      (fun ts ->
        for ch = 0 to Timeseries.width ts - 1 do
          Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int (Timeseries.get ts ~sample:s ~channel:ch))
        done)
      [ t.phases; t.gauges; t.links ];
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let write t ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      if Filename.check_suffix file ".csv" then output_string oc (to_csv t)
      else begin
        output_string oc (to_json t);
        output_char oc '\n'
      end)
