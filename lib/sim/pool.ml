let default_jobs () = Domain.recommended_domain_count ()

type 'b outcome = Value of 'b | Raised of exn * Printexc.raw_backtrace

let map ~jobs f xs =
  let n = Array.length xs in
  (* Never more workers than jobs, grid slots, or hardware threads:
     oversubscribing domains only adds GC coordination cost. *)
  let jobs = max 1 (min jobs (min n (default_jobs ()))) in
  if jobs <= 1 then Array.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          let out =
            match f xs.(i) with
            | v -> Value v
            | exception e -> Raised (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some out;
          go ()
        end
      in
      go ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (* Deterministic error reporting: scan in job order, so the same
       failing grid raises the same exception under any worker count. *)
    Array.map
      (function
        | Some (Value v) -> v
        | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
      results
  end
