module Protocol = Lk_coherence.Protocol

type cache_profile = Typical | Small | Large

type t = {
  cores : int;
  rows : int;
  cols : int;
  cache : cache_profile;
  protocol : Protocol.config;
  link_latency : int;
  router_latency : int;
  noc_contention : bool;
  topology : Lk_mesh.Topology.kind;
}

let cache_profile_name = function
  | Typical -> "typical (32KB L1 / 8MB LLC)"
  | Small -> "small (8KB L1 / 1MB LLC)"
  | Large -> "large (128KB L1 / 32MB LLC)"

let cache_profile_id = function
  | Typical -> "typical"
  | Small -> "small"
  | Large -> "large"

let cache_profile_of_id = function
  | "typical" -> Some Typical
  | "small" -> Some Small
  | "large" -> Some Large
  | _ -> None

let max_cores = 1024

(* Nearest-square factorisation: rows is the largest divisor of [n]
   not exceeding sqrt n, cols = n / rows. Reproduces the historical
   table exactly (2->1x2, 4->2x2, 8->2x4, 16->4x4, 32->4x8) and
   extends it to any count up to [max_cores]: every k*k and 2k*k mesh
   has an exact factorisation, primes degrade to a 1xN chain. *)
let mesh_shape n =
  if n < 1 || n > max_cores then
    invalid_arg
      (Printf.sprintf
         "Config.machine: unsupported core count %d (supported: 1-%d)" n
         max_cores);
  let rows = ref 1 in
  let d = ref 1 in
  while !d * !d <= n do
    if n mod !d = 0 then rows := !d;
    incr d
  done;
  (!rows, n / !rows)

let cache_sizes = function
  | Typical -> (32 * 1024, 8 * 1024 * 1024)
  | Small -> (8 * 1024, 1024 * 1024)
  | Large -> (128 * 1024, 32 * 1024 * 1024)

let machine ?(cache = Typical) ?(cores = 32) ?(noc_contention = false)
    ?(topology = Lk_mesh.Topology.Mesh) ?(exclusive_state = true)
    ?(dir_pointers = None) ?(dir_shards = 0) ?(dir_hash = Lk_coherence.Shard.Mod)
    () =
  let rows, cols = mesh_shape cores in
  let l1_size, llc_size = cache_sizes cache in
  {
    cores;
    rows;
    cols;
    cache;
    protocol =
      {
        Protocol.cores;
        l1_size;
        l1_ways = 4;
        l1_hit_latency = 2;
        llc_size;
        llc_ways = 16;
        llc_hit_latency = 12;
        mem_latency = 100;
        exclusive_state;
        dir_pointers;
        dir_shards;
        dir_hash;
      };
    link_latency = 1;
    router_latency = 1;
    noc_contention;
    topology;
  }

let table1 t =
  let p = t.protocol in
  [
    ("Number of Cores", string_of_int t.cores);
    ("Frequency", "2 GHz (1 cycle = 0.5 ns)");
    ("Core Detail", "In-Order, Single-issue");
    ("Cache Line Size", "64 bytes");
    ( "L1 I&D caches",
      Printf.sprintf "Private, %dKB, %d-way, %d-cycle hit latency"
        (p.Protocol.l1_size / 1024) p.Protocol.l1_ways
        p.Protocol.l1_hit_latency );
    ( "L2 cache",
      Printf.sprintf "Shared, unified, %dMB, %d-way, %d-cycle hit latency"
        (p.Protocol.llc_size / 1024 / 1024)
        p.Protocol.llc_ways p.Protocol.llc_hit_latency );
    ("Memory", Printf.sprintf "%d-cycle latency" p.Protocol.mem_latency);
    ("Coherence protocol", "MESI, directory-based");
    ( "Topology and Routing",
      match t.topology with
      | Lk_mesh.Topology.Mesh ->
        Printf.sprintf "2-D mesh (%dx%d), X-Y" t.rows t.cols
      | Lk_mesh.Topology.Torus ->
        Printf.sprintf "2-D torus (%dx%d), X-Y" t.rows t.cols
      | Lk_mesh.Topology.Ring -> Printf.sprintf "ring (%d)" t.cores
      | Lk_mesh.Topology.Crossbar -> Printf.sprintf "crossbar (%d)" t.cores );
    ("Flit size/message size", "16 bytes / 5 flits (data), 1 flit (control)");
    ( "Link latency/bandwidth",
      Printf.sprintf "%d cycle / 1 flit per cycle" t.link_latency );
  ]

let build ?backend ?(pdes_domains = 1) t =
  if pdes_domains < 1 then
    invalid_arg "Config.build: pdes_domains must be positive";
  (* Clamp to the core count (a 2-core machine cannot feed 4 domains);
     the lookahead of the PDES window is the NoC link latency — the
     minimum time any cross-tile interaction takes. *)
  let domains = if pdes_domains > t.cores then t.cores else pdes_domains in
  let sim =
    Lk_engine.Sim.create ?backend ~domains ~lookahead:t.link_latency ()
  in
  (if domains > 1 then
     let part = Lk_engine.Partition.create ~items:t.cores ~domains in
     Lk_engine.Sim.set_tile_map sim (Lk_engine.Partition.of_item part));
  let topo =
    match t.topology with
    | Lk_mesh.Topology.Mesh ->
      Lk_mesh.Topology.create ~rows:t.rows ~cols:t.cols
    | Lk_mesh.Topology.Torus ->
      Lk_mesh.Topology.create_torus ~rows:t.rows ~cols:t.cols
    | Lk_mesh.Topology.Ring -> Lk_mesh.Topology.create_ring ~tiles:t.cores
    | Lk_mesh.Topology.Crossbar ->
      Lk_mesh.Topology.create_crossbar ~tiles:t.cores
  in
  let net =
    Lk_mesh.Network.create ~link_latency:t.link_latency
      ~router_latency:t.router_latency ~contention:t.noc_contention topo
  in
  let proto = Protocol.create ~sim ~network:net t.protocol in
  (sim, net, proto)

(* Canonical one-line description of every field that changes simulated
   behaviour — the machine component of a cache key. Any new knob added
   to [t] or [Protocol.config] must appear here (bump
   [Cache.schema_version] when the encoding itself changes). *)
let fingerprint t =
  let p = t.protocol in
  Printf.sprintf
    "cores=%d rows=%d cols=%d cache=%s l1=%d/%d/%d llc=%d/%d/%d mem=%d \
     mesi=%b dirptr=%s shards=%d shash=%s link=%d router=%d contention=%b \
     topology=%s"
    t.cores t.rows t.cols (cache_profile_id t.cache) p.Protocol.l1_size
    p.Protocol.l1_ways p.Protocol.l1_hit_latency p.Protocol.llc_size
    p.Protocol.llc_ways p.Protocol.llc_hit_latency p.Protocol.mem_latency
    p.Protocol.exclusive_state
    (match p.Protocol.dir_pointers with
    | None -> "full"
    | Some k -> string_of_int k)
    p.Protocol.dir_shards
    (match p.Protocol.dir_hash with
    | Lk_coherence.Shard.Mod -> "mod"
    | Lk_coherence.Shard.Mix -> "mix")
    t.link_latency t.router_latency t.noc_contention
    (Lk_mesh.Topology.kind_name t.topology)
