let version = 6
let version_string = string_of_int version

let history =
  [
    (1, "initial result record");
    (2, "tx-latency HDR percentiles added to results");
    (3, "abort-reason breakdown and telemetry counters added");
    (4, "embedded schema member and open-loop replay statistics added");
    (5, "hybrid-TM software-path counters (sw_commits, clock advances, \
         validation aborts, sw breakdown category) added");
    (6, "always-on wasted-cycle accounting (wasted_cycles, \
         wasted_by_reason) added");
  ]

let check v =
  if v = version then Ok ()
  else if v > version then
    Error
      (Printf.sprintf
         "result schema v%d is newer than this build understands (v%d); upgrade the binary to read it"
         v version)
  else
    let changes =
      List.filter_map
        (fun (ver, what) -> if ver > v then Some (Printf.sprintf "v%d: %s" ver what) else None)
        history
    in
    Error
      (Printf.sprintf
         "result schema v%d predates this build (v%d); re-run the simulation to regenerate it (changed since: %s)"
         v version
         (String.concat "; " changes))
