(** Derived metrics: speedups and their aggregates. *)

val speedup : baseline_cycles:int -> cycles:int -> float
(** Classic speedup: time of the reference / time of the candidate.
    Raises [Invalid_argument] on non-positive cycle counts. *)

val geomean : float list -> float
(** Geometric mean — the conventional aggregate for speedups (used by
    the paper's "average speedup" figures). 1.0 for the empty list. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val max_of : float list -> float option
(** Maximum; [None] for the empty list (a [0.] sentinel would be
    indistinguishable from a genuine zero sample). *)

val min_of : float list -> float option
(** Minimum; [None] for the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 for fewer than two samples. *)

val pct : float -> float
(** Fraction -> percentage. *)
