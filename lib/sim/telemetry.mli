(** Periodic time-series telemetry for a simulated machine.

    {!attach} schedules a sampler through the machine's own event
    queue: every [interval] cycles it snapshots a set of gauges into
    three fixed-capacity {!Lk_engine.Timeseries} rings —

    - {!phases}: one channel per core holding its
      {!Lk_lockiller.Runtime.phase_code} (non-tx / HTM / STL /
      lock-held / parked / aborting / software);
    - {!gauges}: machine-wide state — fallback-lock holders, arbiter
      hold state, overflow-signature populations, parked cores,
      wake-table occupancy, event-queue depth, transactional L1 lines,
      resident LLC lines, cumulative network flits and messages, the
      global version-clock value, the count of cores in a software
      (TL2) transaction, the open-loop replay backlog (see
      {!set_backlog_probe}; constant 0 in closed-loop runs) and the
      cumulative PDES diagnostics (lookahead windows, cross-partition
      events, short hops — constant 0 under one domain);
    - {!links}: one channel per mesh link with its cumulative flit
      counter.

    The sampler is read-only and the sampling path is allocation-free
    (the test suite asserts < 0.01 minor words per sample), so
    attaching telemetry changes no simulation result. It re-arms
    itself only while other events remain queued, so it never keeps
    the simulation alive on its own.

    Exports ({!to_json} / {!to_csv} / {!write}) also carry summaries
    of the runtime's always-on latency histograms (tx latency,
    abort-to-retry gap, lock dwell) with p50/p90/p95/p99. Exports are
    deterministic: byte-identical across event-queue backends and
    worker counts. *)

type t

val attach :
  ?interval:int -> ?capacity:int -> Lk_lockiller.Runtime.t -> t
(** [attach rt] takes a baseline sample immediately and then samples
    every [interval] cycles (default 1024) while the machine has work
    queued. Each ring retains the last [capacity] samples (default
    4096; earlier ones are counted by {!dropped}).
    @raise Invalid_argument if [interval <= 0]. *)

val interval : t -> int

val set_backlog_probe : t -> (unit -> int) -> unit
(** Install the gauge behind the [backlog] channel (and Perfetto
    counter track). The open-loop replay runner points this at its
    in-flight transaction counter; the default is a constant 0. The
    probe runs on the sampling path and must not allocate or perturb
    the machine. *)

val samples : t -> int
(** Total samples taken (including any no longer retained). *)

val dropped : t -> int
(** Samples lost to ring wraparound. *)

val phases : t -> Lk_engine.Timeseries.t
val gauges : t -> Lk_engine.Timeseries.t
val links : t -> Lk_engine.Timeseries.t

val gauge_channels : string list
(** Channel names of the {!gauges} ring, in slot order. *)

val sample_now : t -> unit
(** Take one sample at the current simulation time (the sampler calls
    this; exposed for tests, notably the allocation assertion). *)

val histograms : t -> (string * Lk_engine.Stats.hdr) list
(** The runtime's always-on latency histograms, by export name:
    [tx_latency], [retry_gap], [lock_dwell]. *)

val perfetto_counters : t -> Json.t list
(** The retained samples as Chrome trace-event counter tracks (ph
    ["C"]): one [phase core N] track per core, [signature fill]
    (rd/wr series), [queue depth], [cores waiting]
    (lock-holders/parked series), [hybrid sw] (clock value and
    software-transaction population), [backlog] (open-loop in-flight
    transactions), [pdes] (windows / cross-partition events / short
    hops) and [link utilization] (per-sample flit deltas summed over
    all links).
    {!Tracing.write_perfetto} appends these to the slice/instant
    events. *)

val to_json_value : t -> Json.t
val to_json : t -> string
(** Pretty-printed JSON document: interval, sample count, the three
    rings (channel names + rows of [[time, v0, v1, ...]]) and the
    histogram summaries. *)

val to_csv : t -> string
(** One wide CSV: a [time] column followed by every channel of the
    three rings (they sample in lockstep, so rows align). *)

val write : t -> file:string -> unit
(** Write {!to_csv} if [file] ends in [.csv], {!to_json} otherwise. *)
