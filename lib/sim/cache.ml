module Sysconf = Lk_lockiller.Sysconf
module Workload = Lk_stamp.Workload

(* The version lives in [Schema] (single source of truth with the
   result-JSON codec; see [Schema.history] for the migration trail).
   Entries live under a per-schema directory, so entries from another
   version are simply never read again ([cache stats] counts them as
   stale, [cache clear] removes them). *)
let schema_version = Schema.version_string

type t = {
  root : string;
  schema : string;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let default_dir () =
  match Sys.getenv_opt "LOCKILLER_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
    match Sys.getenv_opt "XDG_CACHE_HOME" with
    | Some d when d <> "" -> Filename.concat d "lockiller"
    | _ -> (
      match Sys.getenv_opt "HOME" with
      | Some h when h <> "" ->
        Filename.concat (Filename.concat h ".cache") "lockiller"
      | _ -> ".lockiller-cache"))

let create ?(schema = schema_version) ~dir () =
  { root = dir; schema; hits = 0; misses = 0; stores = 0 }

let dir t = t.root
let schema_dir t = Filename.concat t.root ("v" ^ t.schema)
let entry_path t key = Filename.concat (schema_dir t) (key ^ ".json")
let counters_path t = Filename.concat (schema_dir t) "counters"

let rec mkdir_p path =
  if path <> "" && path <> "/" && path <> "." && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ -> ()
  end

(* --- keys --------------------------------------------------------------- *)

let workload_fingerprint (w : Workload.profile) =
  let range (lo, hi) = Printf.sprintf "%d-%d" lo hi in
  Printf.sprintf
    "name=%s txs=%d reads=%s writes=%s hot=%d hot_frac=%.17g zipf=%.17g \
     shared=%d private=%d compute=%d pre=%s post=%s fault=%.17g barrier=%s"
    w.Workload.name w.Workload.txs_per_thread (range w.Workload.reads_per_tx)
    (range w.Workload.writes_per_tx)
    w.Workload.hot_lines w.Workload.hot_fraction w.Workload.zipf_skew
    w.Workload.shared_lines w.Workload.private_lines w.Workload.compute_per_op
    (range w.Workload.pre_compute)
    (range w.Workload.post_compute)
    w.Workload.fault_prob
    (match w.Workload.barrier_every with
    | None -> "none"
    | Some k -> string_of_int k)

let sysconf_fingerprint (s : Sysconf.t) =
  (* The name distinguishes the predefined Table II systems (and the
     ablation extras); the printed composition catches edits to a
     system's knobs between versions. *)
  Printf.sprintf "%s [%s]" s.Sysconf.name (Format.asprintf "%a" Sysconf.pp s)

let fingerprint ~schema ~(options : Runner.options) ~sysconf ~workload
    ~threads =
  String.concat "\n"
    [
      "schema=" ^ schema;
      Printf.sprintf "seed=%d" options.Runner.seed;
      Printf.sprintf "scale=%.17g" options.Runner.scale;
      "machine=" ^ Config.fingerprint options.Runner.machine;
      Printf.sprintf "oracle=%b" options.Runner.oracle;
      (match options.Runner.placement with
      | Runner.Compact -> "placement=compact"
      | Runner.Spread -> "placement=spread");
      Printf.sprintf "cycle_limit=%d" options.Runner.cycle_limit;
      "sysconf=" ^ sysconf_fingerprint sysconf;
      "workload=" ^ workload_fingerprint workload;
      Printf.sprintf "threads=%d" threads;
    ]

let key t ~options ~sysconf ~workload ~threads =
  Digest.to_hex
    (Digest.string
       (fingerprint ~schema:t.schema ~options ~sysconf ~workload ~threads))

(* --- lookup / store ----------------------------------------------------- *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let contents =
      try Some (really_input_string ic (in_channel_length ic))
      with _ -> None
    in
    close_in_noerr ic;
    contents

let find t key =
  let path = entry_path t key in
  match read_file path with
  | None ->
    t.misses <- t.misses + 1;
    None
  | Some contents -> (
    match Runner.result_of_json contents with
    | Ok r ->
      t.hits <- t.hits + 1;
      Some r
    | Error _ ->
      (* Corrupt entry (torn write, hand edit): drop it and re-simulate. *)
      (try Sys.remove path with Sys_error _ -> ());
      t.misses <- t.misses + 1;
      None)

let store t key r =
  t.stores <- t.stores + 1;
  let path = entry_path t key in
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    let ok =
      try
        output_string oc (Runner.result_to_json r);
        output_char oc '\n';
        true
      with Sys_error _ -> false
    in
    close_out_noerr oc;
    if ok then (
      try Sys.rename tmp path
      with Sys_error _ -> ( try Sys.remove tmp with Sys_error _ -> ()))
    else try Sys.remove tmp with Sys_error _ -> ()

let hits t = t.hits
let misses t = t.misses
let stores t = t.stores

(* --- cumulative counters ------------------------------------------------ *)

let read_counters path =
  match read_file path with
  | None -> (0, 0, 0)
  | Some s -> (
    match
      String.split_on_char '\n' s
      |> List.filter_map (fun line ->
             match String.split_on_char ' ' (String.trim line) with
             | [ k; v ] -> (
               match int_of_string_opt v with
               | Some n -> Some (k, n)
               | None -> None)
             | _ -> None)
    with
    | pairs ->
      let get k =
        match List.assoc_opt k pairs with Some n -> n | None -> 0
      in
      (get "hits", get "misses", get "stores"))

let persist_counters t =
  if t.hits + t.misses + t.stores > 0 then begin
    let path = counters_path t in
    mkdir_p (Filename.dirname path);
    let h, m, s = read_counters path in
    (try
       let oc = open_out path in
       Printf.fprintf oc "hits %d\nmisses %d\nstores %d\n" (h + t.hits)
         (m + t.misses) (s + t.stores);
       close_out_noerr oc
     with Sys_error _ -> ());
    t.hits <- 0;
    t.misses <- 0;
    t.stores <- 0
  end

(* --- inspection / eviction ---------------------------------------------- *)

type disk_stats = {
  entries : int;
  bytes : int;
  stale_entries : int;
  lifetime_hits : int;
  lifetime_misses : int;
  lifetime_stores : int;
}

let is_entry name = Filename.check_suffix name ".json"

let schema_dirs t =
  match Sys.readdir t.root with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter (fun n ->
           String.length n > 1
           && n.[0] = 'v'
           && Sys.is_directory (Filename.concat t.root n))
    |> List.sort compare

let disk_stats t =
  let current = "v" ^ t.schema in
  let entries = ref 0 and bytes = ref 0 and stale = ref 0 in
  List.iter
    (fun sub ->
      let subdir = Filename.concat t.root sub in
      match Sys.readdir subdir with
      | exception Sys_error _ -> ()
      | names ->
        Array.iter
          (fun name ->
            if is_entry name then
              if sub = current then begin
                incr entries;
                match Unix.stat (Filename.concat subdir name) with
                | exception Unix.Unix_error _ -> ()
                | st -> bytes := !bytes + st.Unix.st_size
              end
              else incr stale)
          names)
    (schema_dirs t);
  let h, m, s = read_counters (counters_path t) in
  {
    entries = !entries;
    bytes = !bytes;
    stale_entries = !stale;
    lifetime_hits = h + t.hits;
    lifetime_misses = m + t.misses;
    lifetime_stores = s + t.stores;
  }

let clear t =
  let removed = ref 0 in
  List.iter
    (fun sub ->
      let subdir = Filename.concat t.root sub in
      (match Sys.readdir subdir with
      | exception Sys_error _ -> ()
      | names ->
        Array.iter
          (fun name ->
            let path = Filename.concat subdir name in
            if is_entry name then (
              try
                Sys.remove path;
                incr removed
              with Sys_error _ -> ())
            else if name = "counters" then
              try Sys.remove path with Sys_error _ -> ())
          names);
      try Sys.rmdir subdir with Sys_error _ -> ())
    (schema_dirs t);
  !removed
