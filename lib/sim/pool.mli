(** A [Domain]-based worker pool for embarrassingly parallel job grids.

    Every {!Runner.run} builds its own simulator, network, protocol and
    runtime, and touches no global mutable state, so the (system,
    workload, threads) grids of {!Experiments} can run one job per
    domain. Results are collected positionally — slot [i] of the output
    always holds [f input.(i)] — so the outcome is bit-identical to a
    sequential run regardless of completion order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — the worker count the
    CLI's [--jobs] flag defaults to. *)

val map : jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] applies [f] to every element of [xs] using
    [min jobs (min (Array.length xs) (default_jobs ()))] domains (the
    calling domain counts as one worker). With an effective worker
    count of 1 no domain is spawned and the calls happen in order in
    the caller — the reference behaviour the parallel path must match.

    If any [f xs.(i)] raises, the first exception in {e job order}
    (not completion order) is re-raised after all workers have
    drained, with its original backtrace. *)
