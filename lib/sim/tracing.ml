module Ledger = Lk_engine.Ledger
module Reason = Lk_htm.Reason

type breakdown = {
  aborts : int;
  by_reason : (Reason.t * int) list;
  nacks : int;
  kills : int;
  rejects : int;
  parks : int;
  wakes : int;
  sw_commits : int;
  sw_aborts : int;
  clock_advances : int;
  dropped : int;
}

let reason_of_index =
  let arr = Array.of_list Reason.all in
  fun i -> if i >= 0 && i < Array.length arr then Some arr.(i) else None

let abort_breakdown l =
  let by = Array.make Reason.count 0 in
  let aborts = ref 0
  and nacks = ref 0
  and kills = ref 0
  and rejects = ref 0
  and parks = ref 0
  and wakes = ref 0
  and sw_commits = ref 0
  and sw_aborts = ref 0
  and clock_advances = ref 0 in
  Ledger.iter l (fun ~time:_ ~core:_ ~kind ~arg ->
      match kind with
      | Ledger.Tx_abort | Ledger.Sw_abort -> (
        (* Software aborts carry a reason index too (typically
           Validation or a lock conflict), so they fold into the same
           per-cause table as hardware aborts. The reason shares the
           packed arg with the aggressor and the victim's age. *)
        incr aborts;
        if kind = Ledger.Sw_abort then incr sw_aborts;
        match reason_of_index (Ledger.abort_reason arg) with
        | Some r -> by.(Reason.index r) <- by.(Reason.index r) + 1
        | None -> ())
      | Ledger.Nack -> incr nacks
      | Ledger.Abort_kill -> incr kills
      | Ledger.Reject -> incr rejects
      | Ledger.Park -> incr parks
      | Ledger.Wake -> incr wakes
      | Ledger.Sw_commit -> incr sw_commits
      | Ledger.Clock_advance -> incr clock_advances
      | _ -> ());
  {
    aborts = !aborts;
    by_reason = List.map (fun r -> (r, by.(Reason.index r))) Reason.all;
    nacks = !nacks;
    kills = !kills;
    rejects = !rejects;
    parks = !parks;
    wakes = !wakes;
    sw_commits = !sw_commits;
    sw_aborts = !sw_aborts;
    clock_advances = !clock_advances;
    dropped = Ledger.dropped l;
  }

let breakdown_table ?(title = "Abort breakdown") b =
  let share n =
    if b.aborts = 0 then "-"
    else Report.pct (float_of_int n /. float_of_int b.aborts)
  in
  let rows =
    List.map
      (fun (r, n) -> [ Reason.label r; string_of_int n; share n ])
      b.by_reason
    @ [ [ "total"; string_of_int b.aborts; share b.aborts ] ]
  in
  let notes =
    [
      Printf.sprintf
        "conflict traffic: %d nacks, %d kills, %d rejects, %d parks, %d wakes"
        b.nacks b.kills b.rejects b.parks b.wakes;
    ]
    @ (if b.sw_commits = 0 && b.sw_aborts = 0 && b.clock_advances = 0 then []
       else
         [
           Printf.sprintf
             "software path: %d commits, %d aborts, %d clock advances"
             b.sw_commits b.sw_aborts b.clock_advances;
         ])
    @
    if b.dropped = 0 then []
    else
      [
        Printf.sprintf
          "WARNING: %d ledger records dropped; counts are lower bounds"
          b.dropped;
      ]
  in
  Report.table ~notes ~title ~headers:[ "reason"; "aborts"; "share" ] rows

let json_of_breakdown b =
  Json.Obj
    [
      ("aborts", Json.Int b.aborts);
      ( "by_reason",
        Json.Obj
          (List.map (fun (r, n) -> (Reason.label r, Json.Int n)) b.by_reason)
      );
      ("nacks", Json.Int b.nacks);
      ("kills", Json.Int b.kills);
      ("rejects", Json.Int b.rejects);
      ("parks", Json.Int b.parks);
      ("wakes", Json.Int b.wakes);
      ("sw_commits", Json.Int b.sw_commits);
      ("sw_aborts", Json.Int b.sw_aborts);
      ("clock_advances", Json.Int b.clock_advances);
      ("dropped", Json.Int b.dropped);
    ]

(* --- Perfetto export --------------------------------------------------- *)

let slice ~name ~ts ~dur ~tid ~args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "X");
       ("ts", Json.Int ts);
       ("dur", Json.Int dur);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

let instant ~name ~ts ~tid ~args =
  Json.Obj
    ([
       ("name", Json.String name);
       ("ph", Json.String "i");
       ("s", Json.String "t");
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ match args with [] -> [] | a -> [ ("args", Json.Obj a) ])

(* Flow events: a "s"/"f" pair with one id draws an arrow from the
   aggressor's track to the victim's abort at the kill instant —
   Perfetto renders the who-killed-whom graph directly on the
   timeline. [bp:"e"] binds the finish to the enclosing slice. *)
let flow ~phase ~id ~ts ~tid =
  Json.Obj
    ([
       ("name", Json.String "kill");
       ("cat", Json.String "abort");
       ("ph", Json.String phase);
       ("id", Json.Int id);
       ("ts", Json.Int ts);
       ("pid", Json.Int 0);
       ("tid", Json.Int tid);
     ]
    @ if phase = "f" then [ ("bp", Json.String "e") ] else [])

let metadata ~name ~tid value =
  Json.Obj
    [
      ("name", Json.String name);
      ("ph", Json.String "M");
      ("pid", Json.Int 0);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String value) ]);
    ]

let perfetto_json ?telemetry l =
  let entries = Ledger.entries l in
  let cores =
    List.fold_left (fun m e -> max m (e.Ledger.core + 1)) 0 entries
  in
  let last_time = List.fold_left (fun m e -> max m e.Ledger.time) 0 entries in
  (* Per-core open spans: start time of the pending transaction (with
     its attempt number), HTMLock section and lock hold. *)
  let tx_open = Array.make (max cores 1) None in
  let hl_open = Array.make (max cores 1) None in
  let lock_open = Array.make (max cores 1) None in
  let sw_open = Array.make (max cores 1) None in
  let events = ref [] in
  let push e = events := e :: !events in
  (* One fresh id per attributed abort edge, sequential in ledger
     order — deterministic across backends. *)
  let flow_seq = ref 0 in
  let push_kill_flow ~time ~aggressor ~victim =
    if aggressor >= 0 && aggressor <> victim then begin
      incr flow_seq;
      push (flow ~phase:"s" ~id:!flow_seq ~ts:time ~tid:aggressor);
      push (flow ~phase:"f" ~id:!flow_seq ~ts:time ~tid:victim)
    end
  in
  List.iter
    (fun { Ledger.time; core; kind; arg } ->
      match kind with
      | Ledger.Tx_begin -> tx_open.(core) <- Some (time, arg)
      | Ledger.Tx_commit -> (
        match tx_open.(core) with
        | Some (t0, attempt) ->
          tx_open.(core) <- None;
          push
            (slice ~name:"tx" ~ts:t0 ~dur:(time - t0) ~tid:core
               ~args:[ ("attempt", Json.Int attempt);
                       ("attempts", Json.Int arg) ])
        | None -> push (instant ~name:"commit" ~ts:time ~tid:core ~args:[]))
      | Ledger.Tx_abort ->
        let label =
          match reason_of_index (Ledger.abort_reason arg) with
          | Some r -> Reason.label r
          | None -> "?"
        in
        let who = Ledger.abort_who arg in
        let args =
          [
            ("reason", Json.String label);
            ("by", Json.Int who);
            ("age", Json.Int (Ledger.abort_age arg));
          ]
        in
        (match tx_open.(core) with
        | Some (t0, attempt) ->
          tx_open.(core) <- None;
          push
            (slice ~name:("abort:" ^ label) ~ts:t0 ~dur:(time - t0) ~tid:core
               ~args:(("attempt", Json.Int attempt) :: args))
        | None ->
          push (instant ~name:("abort:" ^ label) ~ts:time ~tid:core ~args));
        push_kill_flow ~time ~aggressor:who ~victim:core
      | Ledger.Hl_begin -> hl_open.(core) <- Some time
      | Ledger.Hl_end -> (
        let name = if arg = 1 then "STL" else "TL" in
        match hl_open.(core) with
        | Some t0 ->
          hl_open.(core) <- None;
          push (slice ~name ~ts:t0 ~dur:(time - t0) ~tid:core ~args:[])
        | None -> push (instant ~name:"hlend" ~ts:time ~tid:core ~args:[]))
      | Ledger.Lock_acquire -> lock_open.(core) <- Some time
      | Ledger.Lock_release -> (
        match lock_open.(core) with
        | Some t0 ->
          lock_open.(core) <- None;
          push (slice ~name:"lock" ~ts:t0 ~dur:(time - t0) ~tid:core ~args:[])
        | None ->
          push (instant ~name:"lock-release" ~ts:time ~tid:core ~args:[]))
      | Ledger.Nack ->
        push
          (instant ~name:"nack" ~ts:time ~tid:core
             ~args:
               [
                 ("by", Json.Int (Ledger.attr_who arg));
                 ("age", Json.Int (Ledger.attr_age arg));
               ])
      | Ledger.Reject ->
        push
          (instant ~name:"reject" ~ts:time ~tid:core
             ~args:
               [
                 ("by", Json.Int (Ledger.attr_who arg));
                 ("age", Json.Int (Ledger.attr_age arg));
               ])
      | Ledger.Abort_kill ->
        push
          (instant ~name:"kill" ~ts:time ~tid:core
             ~args:
               [
                 ("by", Json.Int (Ledger.attr_who arg));
                 ("age", Json.Int (Ledger.attr_age arg));
               ])
      | Ledger.Park | Ledger.Wake | Ledger.Switch_granted
      | Ledger.Switch_denied ->
        push (instant ~name:(Ledger.kind_label kind) ~ts:time ~tid:core ~args:[])
      | Ledger.Spill ->
        push
          (instant ~name:"spill" ~ts:time ~tid:core
             ~args:[ ("line", Json.Int arg) ])
      | Ledger.Spec_publish ->
        push
          (instant ~name:(Ledger.kind_label kind) ~ts:time ~tid:core
             ~args:[ ("writes", Json.Int arg) ])
      | Ledger.Spec_discard ->
        push
          (instant ~name:(Ledger.kind_label kind) ~ts:time ~tid:core
             ~args:
               [
                 ("writes", Json.Int (Ledger.discard_writes arg));
                 ("age", Json.Int (Ledger.discard_age arg));
               ])
      | Ledger.Sw_begin -> sw_open.(core) <- Some (time, arg)
      | Ledger.Sw_commit -> (
        match sw_open.(core) with
        | Some (t0, rv) ->
          sw_open.(core) <- None;
          push
            (slice ~name:"sw" ~ts:t0 ~dur:(time - t0) ~tid:core
               ~args:[ ("rv", Json.Int rv); ("wt", Json.Int arg) ])
        | None -> push (instant ~name:"sw-commit" ~ts:time ~tid:core ~args:[]))
      | Ledger.Sw_abort ->
        let label =
          match reason_of_index (Ledger.abort_reason arg) with
          | Some r -> Reason.label r
          | None -> "?"
        in
        let who = Ledger.abort_who arg in
        let args =
          [
            ("reason", Json.String label);
            ("by", Json.Int who);
            ("age", Json.Int (Ledger.abort_age arg));
          ]
        in
        (match sw_open.(core) with
        | Some (t0, rv) ->
          sw_open.(core) <- None;
          push
            (slice
               ~name:("sw-abort:" ^ label)
               ~ts:t0 ~dur:(time - t0) ~tid:core
               ~args:(("rv", Json.Int rv) :: args))
        | None ->
          push (instant ~name:("sw-abort:" ^ label) ~ts:time ~tid:core ~args));
        push_kill_flow ~time ~aggressor:who ~victim:core
      | Ledger.Clock_advance ->
        push
          (instant ~name:"clock" ~ts:time ~tid:core
             ~args:[ ("value", Json.Int arg) ]))
    entries;
  (* Anything still open when the ledger ends (e.g. a thread parked at
     simulation exit) is closed at the last recorded timestamp. *)
  Array.iteri
    (fun core -> function
      | Some (t0, attempt) ->
        push
          (slice ~name:"tx (open)" ~ts:t0 ~dur:(last_time - t0) ~tid:core
             ~args:[ ("attempt", Json.Int attempt) ])
      | None -> ())
    tx_open;
  Array.iteri
    (fun core -> function
      | Some t0 ->
        push
          (slice ~name:"hl (open)" ~ts:t0 ~dur:(last_time - t0) ~tid:core
             ~args:[])
      | None -> ())
    hl_open;
  Array.iteri
    (fun core -> function
      | Some t0 ->
        push
          (slice ~name:"lock (open)" ~ts:t0 ~dur:(last_time - t0) ~tid:core
             ~args:[])
      | None -> ())
    lock_open;
  Array.iteri
    (fun core -> function
      | Some (t0, rv) ->
        push
          (slice ~name:"sw (open)" ~ts:t0 ~dur:(last_time - t0) ~tid:core
             ~args:[ ("rv", Json.Int rv) ])
      | None -> ())
    sw_open;
  let meta =
    metadata ~name:"process_name" ~tid:0 "lockiller_sim"
    :: List.init cores (fun c ->
           metadata ~name:"thread_name" ~tid:c (Printf.sprintf "core %d" c))
  in
  let counters =
    match telemetry with
    | None -> []
    | Some tele -> Telemetry.perfetto_counters tele
  in
  Json.Obj [ ("traceEvents", Json.List (meta @ List.rev !events @ counters)) ]

let with_out_file file f =
  let oc = open_out file in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write_perfetto ?telemetry ~file l =
  with_out_file file (fun oc ->
      output_string oc (Json.to_string_pretty (perfetto_json ?telemetry l));
      output_char oc '\n')

let write_dump ~file l =
  with_out_file file (fun oc ->
      let ppf = Format.formatter_of_out_channel oc in
      Ledger.dump ppf l;
      Format.pp_print_flush ppf ())
