type table = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let table ?(notes = []) ~title ~headers rows = { title; headers; rows; notes }

let f1 f = Printf.sprintf "%.1f" f
let f2 f = Printf.sprintf "%.2f" f
let pct f = Printf.sprintf "%.1f%%" (100.0 *. f)

let widths t =
  let ncols =
    List.fold_left
      (fun acc row -> max acc (List.length row))
      (List.length t.headers) t.rows
  in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri
      (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  feed t.headers;
  List.iter feed t.rows;
  w

let pp_row ppf w row =
  List.iteri
    (fun i cell ->
      let pad = if i < Array.length w then w.(i) - String.length cell else 0 in
      if i > 0 then Format.pp_print_string ppf "  ";
      Format.pp_print_string ppf cell;
      Format.pp_print_string ppf (String.make (max pad 0) ' '))
    row;
  Format.pp_print_newline ppf ()

let pp_table ppf t =
  let w = widths t in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun n -> String.make n '-') w))
  in
  Format.fprintf ppf "== %s ==@." t.title;
  if t.headers <> [] then begin
    pp_row ppf w t.headers;
    Format.fprintf ppf "%s@." rule
  end;
  List.iter (pp_row ppf w) t.rows;
  List.iter (fun n -> Format.fprintf ppf "%s@." n) t.notes

let print t =
  pp_table Format.std_formatter t;
  Format.print_newline ()

let csv_cell cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let row cells = String.concat "," (List.map csv_cell cells) in
  String.concat "\n"
    ((if t.headers = [] then [] else [ row t.headers ]) @ List.map row t.rows)
  ^ "\n"

let csv_filename t =
  let b = Buffer.create 64 in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | '0' .. '9' -> Buffer.add_char b c
      | 'A' .. 'Z' -> Buffer.add_char b (Char.lowercase_ascii c)
      | ' ' | '-' | '/' | ':' | ',' | '(' | ')' | '.' ->
        if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '_'
        then Buffer.add_char b '_'
      | _ -> ())
    t.title;
  let s = Buffer.contents b in
  let s =
    if String.length s > 0 && s.[String.length s - 1] = '_' then
      String.sub s 0 (String.length s - 1)
    else s
  in
  s ^ ".csv"

let json_of_table t =
  Json.Obj
    [
      ("title", Json.String t.title);
      ("headers", Json.List (List.map (fun h -> Json.String h) t.headers));
      ( "rows",
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.String c) row))
             t.rows) );
      ("notes", Json.List (List.map (fun n -> Json.String n) t.notes));
    ]

let to_json t = Json.to_string (json_of_table t)
