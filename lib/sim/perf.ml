module Sim = Lk_engine.Sim

(* Wall-clock and allocation probes around simulator work.

   A [probe] captures the wall clock and the minor-heap allocation
   counter ([Gc.quick_stat]); [stop] turns the deltas plus the caller's
   event/cycle counts into a [sample]. Samples from every simulation in
   the process (including pool domains — the counters are atomics) are
   additionally folded into a global aggregate, which the bench harness
   reads to print a per-experiment wall-clock/throughput section. *)

type sample = {
  wall_seconds : float;
  minor_words : float;  (** Minor-heap words allocated in the window. *)
  events : int;  (** Simulator events fired in the window. *)
  cycles : int;  (** Simulated cycles covered by the window. *)
}

type probe = { p_wall : float; p_minor : float }

let start () =
  let st = Gc.quick_stat () in
  { p_wall = Unix.gettimeofday (); p_minor = st.Gc.minor_words }

let stop probe ~events ~cycles =
  let st = Gc.quick_stat () in
  {
    wall_seconds = Unix.gettimeofday () -. probe.p_wall;
    minor_words = st.Gc.minor_words -. probe.p_minor;
    events;
    cycles;
  }

let per_second n sample =
  if sample.wall_seconds <= 0.0 then 0.0
  else float_of_int n /. sample.wall_seconds

let events_per_sec s = per_second s.events s
let cycles_per_sec s = per_second s.cycles s

let minor_words_per_event s =
  if s.events = 0 then 0.0 else s.minor_words /. float_of_int s.events

let json_of_sample s =
  Json.Obj
    [
      ("wall_seconds", Json.Float s.wall_seconds);
      ("events", Json.Int s.events);
      ("cycles", Json.Int s.cycles);
      ("minor_words", Json.Float s.minor_words);
      ("events_per_sec", Json.Float (events_per_sec s));
      ("cycles_per_sec", Json.Float (cycles_per_sec s));
      ("minor_words_per_event", Json.Float (minor_words_per_event s));
    ]

(* Run [f] with a probe, reading event/cycle deltas from [sim]. *)
let observe sim f =
  let e0 = Sim.events sim and c0 = Sim.now sim in
  let probe = start () in
  let x = f () in
  let s =
    stop probe ~events:(Sim.events sim - e0) ~cycles:(Sim.now sim - c0)
  in
  (x, s)

(* --- process-wide aggregate ------------------------------------------ *)

type totals = {
  runs : int;
  total_wall_seconds : float;
  total_events : int;
  total_cycles : int;
  total_minor_words : float;
}

(* Atomics so pool domains contribute safely; wall time and minor words
   are kept in integer microseconds/words (atomic float add does not
   exist). *)
let g_runs = Atomic.make 0
let g_wall_us = Atomic.make 0
let g_events = Atomic.make 0
let g_cycles = Atomic.make 0
let g_minor = Atomic.make 0

let note s =
  Atomic.incr g_runs;
  ignore
    (Atomic.fetch_and_add g_wall_us
       (int_of_float (s.wall_seconds *. 1_000_000.)));
  ignore (Atomic.fetch_and_add g_events s.events);
  ignore (Atomic.fetch_and_add g_cycles s.cycles);
  ignore (Atomic.fetch_and_add g_minor (int_of_float s.minor_words))

let totals () =
  {
    runs = Atomic.get g_runs;
    total_wall_seconds = float_of_int (Atomic.get g_wall_us) /. 1_000_000.;
    total_events = Atomic.get g_events;
    total_cycles = Atomic.get g_cycles;
    total_minor_words = float_of_int (Atomic.get g_minor);
  }

let reset_totals () =
  Atomic.set g_runs 0;
  Atomic.set g_wall_us 0;
  Atomic.set g_events 0;
  Atomic.set g_cycles 0;
  Atomic.set g_minor 0

let pp_rate ppf r =
  if r >= 1e9 then Format.fprintf ppf "%.2fG" (r /. 1e9)
  else if r >= 1e6 then Format.fprintf ppf "%.2fM" (r /. 1e6)
  else if r >= 1e3 then Format.fprintf ppf "%.1fk" (r /. 1e3)
  else Format.fprintf ppf "%.0f" r

let pp_totals ppf t =
  let rate n =
    if t.total_wall_seconds <= 0.0 then 0.0
    else float_of_int n /. t.total_wall_seconds
  in
  let wpe =
    if t.total_events = 0 then 0.0
    else t.total_minor_words /. float_of_int t.total_events
  in
  Format.fprintf ppf
    "%d sims, %.1fs sim-wall, %a events/s, %a cycles/s, %.1f minor words/event"
    t.runs t.total_wall_seconds pp_rate (rate t.total_events) pp_rate
    (rate t.total_cycles) wpe
