let positive_int ~what s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "%s must be an integer (got %S)" what s)
  | Some n when n <= 0 ->
    Error (Printf.sprintf "%s must be positive (got %d)" what n)
  | Some n -> Ok n

let non_negative_int ~what s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "%s must be an integer (got %S)" what s)
  | Some n when n < 0 ->
    Error (Printf.sprintf "%s must be non-negative (got %d)" what n)
  | Some n -> Ok n

let cores ~what s =
  match int_of_string_opt s with
  | None -> Error (Printf.sprintf "%s must be an integer (got %S)" what s)
  | Some n when n < 1 || n > Config.max_cores ->
    Error
      (Printf.sprintf "%s must be a core count in 1-%d (got %d)" what
         Config.max_cores n)
  | Some n -> Ok n

(* Cross-field check, so it runs after parsing rather than inside a
   converter: the PDES partition count cannot exceed the machine size
   (a partition with no tiles would never fire an event). The engine
   enforces the same bound ([Pdes.create] raises); rejecting it here
   turns the crash into a named usage error. *)
let pdes_domains ~cores n =
  if n < 1 then
    Error (Printf.sprintf "--pdes-domains must be positive (got %d)" n)
  else if n > cores then
    Error
      (Printf.sprintf
         "--pdes-domains must not exceed the machine size (got %d domains \
          for %d cores)"
         n cores)
  else Ok n

let cache_profile s =
  match Config.cache_profile_of_id s with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown cache profile %S" s)

let writable_path s =
  if s = "" then Error "output path must not be empty"
  else
    let dir = Filename.dirname s in
    if not (Sys.file_exists dir) then
      Error
        (Printf.sprintf "cannot write %s: directory %s does not exist" s dir)
    else if not (Sys.is_directory dir) then
      Error (Printf.sprintf "cannot write %s: %s is not a directory" s dir)
    else if Sys.file_exists s && Sys.is_directory s then
      Error (Printf.sprintf "cannot write %s: it is a directory" s)
    else Ok s
