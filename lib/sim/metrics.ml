let speedup ~baseline_cycles ~cycles =
  if baseline_cycles <= 0 || cycles <= 0 then
    invalid_arg "Metrics.speedup: cycle counts must be positive";
  float_of_int baseline_cycles /. float_of_int cycles

let geomean = function
  | [] -> 1.0
  | xs ->
    let n = List.length xs in
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Metrics.geomean: non-positive value"
          else acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int n)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let max_of = function [] -> None | x :: xs -> Some (List.fold_left max x xs)
let min_of = function [] -> None | x :: xs -> Some (List.fold_left min x xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let var =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
      /. float_of_int (List.length xs)
    in
    sqrt var

let pct f = 100.0 *. f
