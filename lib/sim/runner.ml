module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Store = Lk_htm.Store
module Reason = Lk_htm.Reason
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime
module Program = Lk_cpu.Program
module Accounting = Lk_cpu.Accounting
module Core = Lk_cpu.Core
module Workload = Lk_stamp.Workload

type result = {
  system : string;
  workload : string;
  threads : int;
  cache : Config.cache_profile;
  cycles : int;
  commit_rate : float;
  htm_commits : int;
  stl_commits : int;
  lock_commits : int;
  aborts : int;
  abort_mix : (Reason.t * int) list;
  breakdown : (Accounting.category * int) list;
  rejects : int;
  parks : int;
  wakeups : int;
  switches_granted : int;
  switches_denied : int;
  spilled_lines : int;
  lock_dwell_cycles : int;
  watchdog_rescues : int;
  network_messages : int;
  network_flits : int;
  oracle_sections : int;
  avg_attempts_per_commit : float;
  tx_latency_p50 : int;
  tx_latency_p95 : int;
  tx_latency_p99 : int;
}

type telemetry_request = {
  sample_interval : int;
  sample_capacity : int;
  consume : Telemetry.t -> unit;
}

let telemetry_request ?(interval = 1024) ?(capacity = 4096) consume =
  { sample_interval = interval; sample_capacity = capacity; consume }

let counter_value stats name =
  match List.assoc_opt name (Stats.counters stats) with
  | Some v -> v
  | None -> 0

type placement = Compact | Spread

(* Thread index -> core id. *)
let place ~placement ~cores ~threads i =
  match placement with
  | Compact -> i
  | Spread -> i * cores / threads

(* Shared execution engine for generated workloads and hand-written
   programs. *)
let execute ?barrier_every ?queue_backend ?(check = false) ?telemetry ~machine
    ~oracle ~on_runtime ~placement ~cycle_limit ~sysconf ~program
    ~(workload_name : string) ~cache () =
  let threads = Array.length program in
  if threads <= 0 || threads > machine.Config.cores then
    invalid_arg "Runner.run: thread count out of range";
  let core_of = place ~placement ~cores:machine.Config.cores ~threads in
  let sim, net, protocol = Config.build ?backend:queue_backend machine in
  let store = Store.create ~cores:machine.Config.cores in
  let runtime =
    Runtime.create ~protocol ~store ~sysconf
      ~lock_addr:Workload.lock_addr ()
  in
  let oracle_handle =
    if oracle then Some (Runtime.enable_oracle runtime) else None
  in
  on_runtime runtime;
  let tele =
    Option.map
      (fun req ->
        ( req,
          Telemetry.attach ~interval:req.sample_interval
            ~capacity:req.sample_capacity runtime ))
      telemetry
  in
  let sanitizer =
    if check then Some (Lk_check.Sanitizer.attach runtime) else None
  in
  let acct = Accounting.create ~cores:machine.Config.cores in
  let finished = ref 0 in
  let barrier =
    Option.map
      (fun k -> (Lk_cpu.Barrier.create ~parties:threads, k))
      barrier_every
  in
  let cpus =
    Array.mapi
      (fun i thread ->
        Core.spawn ?barrier ~runtime ~core:(core_of i) ~thread
          ~accounting:acct
          ~on_done:(fun () -> incr finished)
          ())
      program
  in
  Array.iter Core.start cpus;
  let (), perf_sample =
    Perf.observe sim (fun () -> Sim.run ~limit:cycle_limit sim)
  in
  Perf.note perf_sample;
  if !finished <> threads then
    failwith
      (Printf.sprintf "Runner.run: %s/%s/%d threads: only %d threads finished"
         sysconf.Sysconf.name workload_name threads !finished);
  Protocol.check_invariants protocol;
  (* Serializability: replay the committed sections in completion order
     and check every observed read. *)
  (match oracle_handle with
  | None -> ()
  | Some o -> (
    match Lk_htm.Oracle.verify o with
    | Ok () -> ()
    | Error v ->
      failwith
        (Format.asprintf "Runner.run: %s/%s: serializability violated: %a"
           sysconf.Sysconf.name workload_name
           Lk_htm.Oracle.pp_violation v)));
  (match sanitizer with
  | None -> ()
  | Some s -> (
    match Lk_check.Sanitizer.finish s with
    | [] -> ()
    | v :: _ as vs ->
      failwith
        (Printf.sprintf "Runner.run: %s/%s: invariant sanitizer: %s%s"
           sysconf.Sysconf.name workload_name
           (Lk_check.Invariant.violation_to_string v)
           (match List.length vs with
           | 1 -> ""
           | n -> Printf.sprintf " (+%d more)" (n - 1)))));
  let cycles =
    Array.fold_left (fun acc cpu -> max acc (Core.finish_time cpu)) 0 cpus
  in
  let htm_commits = ref 0
  and stl_commits = ref 0
  and lock_commits = ref 0
  and aborts = ref 0
  and rejects = ref 0
  and parks = ref 0
  and attempts = ref 0 in
  let mix = Array.make Reason.count 0 in
  for i = 0 to threads - 1 do
    let cs = Runtime.core_stats runtime (core_of i) in
    htm_commits := !htm_commits + cs.Runtime.commits;
    stl_commits := !stl_commits + cs.Runtime.stl_commits;
    lock_commits := !lock_commits + cs.Runtime.lock_commits;
    aborts := !aborts + cs.Runtime.aborts;
    rejects := !rejects + cs.Runtime.rejects_received;
    parks := !parks + cs.Runtime.parks;
    attempts := !attempts + cs.Runtime.attempts_at_commit;
    Array.iteri
      (fun i n -> mix.(i) <- mix.(i) + n)
      cs.Runtime.abort_reasons
  done;
  (match tele with
  | Some (req, handle) -> req.consume handle
  | None -> ());
  let stats = Runtime.stats runtime in
  let latency = Runtime.tx_latency_hdr runtime in
  ( store,
    {
    system = sysconf.Sysconf.name;
    workload = workload_name;
    threads;
    cache;
    cycles;
    commit_rate = Runtime.commit_rate runtime;
    htm_commits = !htm_commits;
    stl_commits = !stl_commits;
    lock_commits = !lock_commits;
    aborts = !aborts;
    abort_mix = List.map (fun r -> (r, mix.(Reason.index r))) Reason.all;
    breakdown = Accounting.total acct;
    rejects = !rejects;
    parks = !parks;
    wakeups = counter_value stats "wakeups";
    switches_granted = counter_value stats "switches_granted";
    switches_denied = counter_value stats "switches_denied";
    spilled_lines = counter_value stats "spilled_lines";
    lock_dwell_cycles = counter_value stats "lock_dwell_cycles";
    watchdog_rescues = Runtime.watchdog_rescues runtime;
    network_messages = Network.messages_sent net;
    network_flits = Network.flits_sent net;
    oracle_sections =
      (match oracle_handle with
      | None -> 0
      | Some o -> Lk_htm.Oracle.size o);
    avg_attempts_per_commit =
      (if !htm_commits = 0 then 0.0
       else float_of_int !attempts /. float_of_int !htm_commits);
    tx_latency_p50 = Stats.percentile latency 50.;
    tx_latency_p95 = Stats.percentile latency 95.;
    tx_latency_p99 = Stats.percentile latency 99.;
  } )

type options = {
  seed : int;
  scale : float;
  machine : Config.t;
  oracle : bool;
  on_runtime : Runtime.t -> unit;
  placement : placement;
  cycle_limit : int;
  queue_backend : Lk_engine.Event_queue.backend;
  check : bool;
  telemetry : telemetry_request option;
}

let default_options =
  {
    seed = 1;
    scale = 1.0;
    machine = Config.machine ();
    oracle = true;
    on_runtime = (fun _ -> ());
    placement = Compact;
    cycle_limit = 1 lsl 30;
    queue_backend = Lk_engine.Event_queue.Wheel;
    check = false;
    telemetry = None;
  }

(* The per-field optional arguments are the deprecated pre-[options]
   interface; each one overrides the corresponding [options] field so
   old call shapes keep compiling and behaving identically. *)
let resolve_options ?(options = default_options) ?seed ?scale ?machine ?oracle
    ?on_runtime ?placement ?cycle_limit () =
  {
    seed = Option.value seed ~default:options.seed;
    scale = Option.value scale ~default:options.scale;
    machine = Option.value machine ~default:options.machine;
    oracle = Option.value oracle ~default:options.oracle;
    on_runtime = Option.value on_runtime ~default:options.on_runtime;
    placement = Option.value placement ~default:options.placement;
    cycle_limit = Option.value cycle_limit ~default:options.cycle_limit;
    queue_backend = options.queue_backend;
    check = options.check;
    telemetry = options.telemetry;
  }

let run ?options ?seed ?scale ?machine ?oracle ?on_runtime ?placement
    ?cycle_limit ~sysconf ~workload ~threads () =
  let o =
    resolve_options ?options ?seed ?scale ?machine ?oracle ?on_runtime
      ?placement ?cycle_limit ()
  in
  let {
    seed;
    scale;
    machine;
    oracle;
    on_runtime;
    placement;
    cycle_limit;
    queue_backend;
    check;
    telemetry;
  } =
    o
  in
  let program = Workload.generate workload ~threads ~seed ~scale in
  let store, result =
    execute ?barrier_every:workload.Workload.barrier_every ~queue_backend
      ~check ?telemetry ~machine ~oracle ~on_runtime ~placement ~cycle_limit
      ~sysconf ~program ~workload_name:workload.Workload.name
      ~cache:machine.Config.cache ()
  in
  (* End-to-end atomicity check: committed hot counters must equal the
     increments the program performs. *)
  List.iter
    (fun (addr, expected) ->
      let got = Store.committed store addr in
      if got <> expected then
        failwith
          (Printf.sprintf
             "Runner.run: %s/%s: conservation violated at %#x: %d <> %d"
             sysconf.Sysconf.name workload.Workload.name addr got expected))
    (Workload.expected_hot_increments workload ~threads ~seed ~scale);
  result

let run_program ?options ?machine ?oracle ?on_runtime ?placement ?cycle_limit
    ?(name = "custom") ~sysconf ~program () =
  let {
    machine;
    oracle;
    on_runtime;
    placement;
    cycle_limit;
    queue_backend;
    check;
    telemetry;
    _;
  } =
    resolve_options ?options ?machine ?oracle ?on_runtime ?placement
      ?cycle_limit ()
  in
  (match Lk_cpu.Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.run_program: " ^ msg));
  List.iter
    (fun addr ->
      if addr < 128 then
        invalid_arg
          (Printf.sprintf
             "Runner.run_program: address %#x collides with the lock lines"
             addr))
    (Lk_cpu.Program.touched_addresses program);
  let _, result =
    execute ~queue_backend ~check ?telemetry ~machine ~oracle ~on_runtime
      ~placement ~cycle_limit ~sysconf ~program ~workload_name:name
      ~cache:machine.Config.cache ()
  in
  result

let abort_fraction r reason =
  if r.aborts = 0 then 0.0
  else
    float_of_int (List.assoc reason r.abort_mix) /. float_of_int r.aborts

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s / %s / %d threads: %d cycles, commit rate %.2f, %d commits \
     (%d stl, %d lock), %d aborts@]"
    r.system r.workload r.threads r.cycles r.commit_rate r.htm_commits
    r.stl_commits r.lock_commits r.aborts

(* --- JSON codec --------------------------------------------------------- *)

(* One member per [result] field, in declaration order; [abort_mix] and
   [breakdown] become label-keyed objects. The cache and the CLI's
   [--format json] share this encoding, so round-tripping is exercised
   on every warm-cache run. *)
let json_of_result r =
  Json.Obj
    [
      ("system", Json.String r.system);
      ("workload", Json.String r.workload);
      ("threads", Json.Int r.threads);
      ("cache", Json.String (Config.cache_profile_id r.cache));
      ("cycles", Json.Int r.cycles);
      ("commit_rate", Json.Float r.commit_rate);
      ("htm_commits", Json.Int r.htm_commits);
      ("stl_commits", Json.Int r.stl_commits);
      ("lock_commits", Json.Int r.lock_commits);
      ("aborts", Json.Int r.aborts);
      ( "abort_mix",
        Json.Obj
          (List.map
             (fun (reason, n) -> (Reason.label reason, Json.Int n))
             r.abort_mix) );
      ( "breakdown",
        Json.Obj
          (List.map
             (fun (cat, n) -> (Accounting.label cat, Json.Int n))
             r.breakdown) );
      ("rejects", Json.Int r.rejects);
      ("parks", Json.Int r.parks);
      ("wakeups", Json.Int r.wakeups);
      ("switches_granted", Json.Int r.switches_granted);
      ("switches_denied", Json.Int r.switches_denied);
      ("spilled_lines", Json.Int r.spilled_lines);
      ("lock_dwell_cycles", Json.Int r.lock_dwell_cycles);
      ("watchdog_rescues", Json.Int r.watchdog_rescues);
      ("network_messages", Json.Int r.network_messages);
      ("network_flits", Json.Int r.network_flits);
      ("oracle_sections", Json.Int r.oracle_sections);
      ("avg_attempts_per_commit", Json.Float r.avg_attempts_per_commit);
      ("tx_latency_p50", Json.Int r.tx_latency_p50);
      ("tx_latency_p95", Json.Int r.tx_latency_p95);
      ("tx_latency_p99", Json.Int r.tx_latency_p99);
    ]

let result_to_json r = Json.to_string (json_of_result r)

let ( let* ) = Result.bind

let result_of_json_value v =
  let int name = let* m = Json.member name v in Json.to_int m in
  let float name = let* m = Json.member name v in Json.to_float m in
  let str name = let* m = Json.member name v in Json.to_str m in
  let labelled name all label of_pairs =
    let* m = Json.member name v in
    let* obj = Json.to_obj m in
    let* pairs =
      List.fold_left
        (fun acc key ->
          let* acc = acc in
          match List.assoc_opt (label key) obj with
          | Some (Json.Int n) -> Ok ((key, n) :: acc)
          | Some j ->
            Error
              (Printf.sprintf "%s.%s: expected int, got %s" name (label key)
                 (Json.to_string j))
          | None ->
            Error (Printf.sprintf "%s: missing count for %S" name (label key)))
        (Ok []) all
    in
    Ok (of_pairs (List.rev pairs))
  in
  let* system = str "system" in
  let* workload = str "workload" in
  let* threads = int "threads" in
  let* cache =
    let* id = str "cache" in
    match Config.cache_profile_of_id id with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown cache profile %S" id)
  in
  let* cycles = int "cycles" in
  let* commit_rate = float "commit_rate" in
  let* htm_commits = int "htm_commits" in
  let* stl_commits = int "stl_commits" in
  let* lock_commits = int "lock_commits" in
  let* aborts = int "aborts" in
  let* abort_mix = labelled "abort_mix" Reason.all Reason.label Fun.id in
  let* breakdown =
    labelled "breakdown" Accounting.categories Accounting.label Fun.id
  in
  let* rejects = int "rejects" in
  let* parks = int "parks" in
  let* wakeups = int "wakeups" in
  let* switches_granted = int "switches_granted" in
  let* switches_denied = int "switches_denied" in
  let* spilled_lines = int "spilled_lines" in
  let* lock_dwell_cycles = int "lock_dwell_cycles" in
  let* watchdog_rescues = int "watchdog_rescues" in
  let* network_messages = int "network_messages" in
  let* network_flits = int "network_flits" in
  let* oracle_sections = int "oracle_sections" in
  let* avg_attempts_per_commit = float "avg_attempts_per_commit" in
  let* tx_latency_p50 = int "tx_latency_p50" in
  let* tx_latency_p95 = int "tx_latency_p95" in
  let* tx_latency_p99 = int "tx_latency_p99" in
  Ok
    {
      system;
      workload;
      threads;
      cache;
      cycles;
      commit_rate;
      htm_commits;
      stl_commits;
      lock_commits;
      aborts;
      abort_mix;
      breakdown;
      rejects;
      parks;
      wakeups;
      switches_granted;
      switches_denied;
      spilled_lines;
      lock_dwell_cycles;
      watchdog_rescues;
      network_messages;
      network_flits;
      oracle_sections;
      avg_attempts_per_commit;
      tx_latency_p50;
      tx_latency_p95;
      tx_latency_p99;
    }

let result_of_json s =
  let* v = Json.of_string s in
  result_of_json_value v
