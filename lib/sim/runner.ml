module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats
module Network = Lk_mesh.Network
module Protocol = Lk_coherence.Protocol
module Store = Lk_htm.Store
module Reason = Lk_htm.Reason
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime
module Program = Lk_cpu.Program
module Accounting = Lk_cpu.Accounting
module Core = Lk_cpu.Core
module Workload = Lk_stamp.Workload

(* Open-loop replay statistics: how the service kept up with the
   arrival stream. Queueing delay is arrival -> service start, sojourn
   is arrival -> completion; both come from log-linear histograms
   recorded incrementally, so a multi-gigabyte trace needs no
   per-transaction storage. *)
type open_loop_stats = {
  arrivals : int;
  completed : int;
  max_backlog : int;
  queue_delay_p50 : int;
  queue_delay_p95 : int;
  queue_delay_p99 : int;
  sojourn_p50 : int;
  sojourn_p95 : int;
  sojourn_p99 : int;
  phase_mix : (int * int) list;
}

type result = {
  system : string;
  workload : string;
  threads : int;
  cache : Config.cache_profile;
  cycles : int;
  commit_rate : float;
  htm_commits : int;
  stl_commits : int;
  lock_commits : int;
  sw_commits : int;
  aborts : int;
  abort_mix : (Reason.t * int) list;
  wasted_cycles : int;
  wasted_by_reason : (Reason.t * int) list;
  breakdown : (Accounting.category * int) list;
  rejects : int;
  parks : int;
  wakeups : int;
  switches_granted : int;
  switches_denied : int;
  spilled_lines : int;
  lock_dwell_cycles : int;
  clock_advances : int;
  watchdog_rescues : int;
  network_messages : int;
  network_flits : int;
  oracle_sections : int;
  avg_attempts_per_commit : float;
  tx_latency_p50 : int;
  tx_latency_p95 : int;
  tx_latency_p99 : int;
  open_loop : open_loop_stats option;
}

type telemetry_request = {
  sample_interval : int;
  sample_capacity : int;
  consume : Telemetry.t -> unit;
}

let telemetry_request ?(interval = 1024) ?(capacity = 4096) consume =
  { sample_interval = interval; sample_capacity = capacity; consume }

let counter_value stats name =
  match List.assoc_opt name (Stats.counters stats) with
  | Some v -> v
  | None -> 0

type placement = Compact | Spread

(* Thread index -> core id. *)
let place ~placement ~cores ~threads i =
  match placement with
  | Compact -> i
  | Spread -> i * cores / threads

(* How [execute] drives the cores: a closed-loop pre-built program or
   an open-loop arrival stream served by stream cores. *)
type exec_mode =
  | Closed of { program : Program.t; barrier_every : int option }
  | Open of {
      ol : Workload_source.open_loop;
      threads : int;
      seed : int;
      expected : (int, int) Hashtbl.t;
          (* Hot-counter increments accumulated as bodies are
             synthesised, for the post-run conservation check. *)
    }

(* Shared execution engine for generated workloads, hand-written
   programs and trace replay. *)
let execute ?queue_backend ?(pdes_domains = 1) ?(check = false)
    ?(race_check = false) ?telemetry
    ~machine ~oracle ~on_runtime ~placement ~cycle_limit ~sysconf ~mode
    ~(workload_name : string) ~cache () =
  let threads =
    match mode with
    | Closed { program; _ } -> Array.length program
    | Open { threads; _ } -> threads
  in
  if threads <= 0 || threads > machine.Config.cores then
    invalid_arg "Runner.run: thread count out of range";
  let core_of = place ~placement ~cores:machine.Config.cores ~threads in
  let sim, net, protocol =
    Config.build ?backend:queue_backend ~pdes_domains machine
  in
  (* The ownership race detector: purely observational (witnesses never
     change scheduling), so the result stays byte-identical with it on
     or off — which is why the flag is excluded from the cache key. *)
  if race_check then Sim.set_race_check sim true;
  let store = Store.create ~cores:machine.Config.cores in
  let runtime =
    Runtime.create ~protocol ~store ~sysconf
      ~lock_addr:Workload.lock_addr ()
  in
  let oracle_handle =
    if oracle then Some (Runtime.enable_oracle runtime) else None
  in
  on_runtime runtime;
  let tele =
    Option.map
      (fun req ->
        ( req,
          Telemetry.attach ~interval:req.sample_interval
            ~capacity:req.sample_capacity runtime ))
      telemetry
  in
  let sanitizer =
    if check then Some (Lk_check.Sanitizer.attach runtime) else None
  in
  let acct = Accounting.create ~cores:machine.Config.cores in
  let finished = ref 0 in
  let cpus, post_run, collect_open =
    match mode with
    | Closed { program; barrier_every } ->
      let barrier =
        Option.map
          (fun k -> (Lk_cpu.Barrier.create ~parties:threads, k))
          barrier_every
      in
      let cpus =
        Array.mapi
          (fun i thread ->
            Core.spawn ?barrier ~runtime ~core:(core_of i) ~thread
              ~accounting:acct
              ~on_done:(fun () -> incr finished)
              ())
          program
      in
      Array.iter Core.start cpus;
      (cpus, (fun () -> ()), fun () -> None)
    | Open { ol; seed; expected; _ } ->
      let cpus =
        Array.init threads (fun i ->
            Core.spawn_stream ~runtime ~core:(core_of i) ~accounting:acct
              ~on_done:(fun () -> incr finished)
              ())
      in
      let body = ol.Workload_source.body in
      (* Per-slot body RNGs, seeded exactly like [Workload.generate]'s
         per-thread streams so replay bodies are deterministic in
         (profile, seed, threads). *)
      let root =
        Lk_engine.Rng.create
          (seed + (1299721 * Hashtbl.hash body.Workload.name))
      in
      let rngs = Array.init threads (fun _ -> Lk_engine.Rng.split root) in
      let group = Stats.group "replay" in
      let qdelay = Stats.hdr group "queue_delay" in
      let sojourn = Stats.hdr group "sojourn" in
      let phases = Array.make (Lk_trace.Record.max_phase + 1) 0 in
      let arrivals = ref 0
      and completed = ref 0
      and inflight = ref 0
      and max_backlog = ref 0 in
      (* Surface the open-loop backlog as a telemetry gauge (and
         Perfetto counter track): the replay overlay the closed-loop
         channels cannot see. Observational only — the probe never
         perturbs the run. *)
      (match tele with
      | Some (_, handle) ->
        Telemetry.set_backlog_probe handle (fun () -> !inflight)
      | None -> ());
      let feed_error = ref None in
      let rr = ref 0 in
      let dispatch (r : Lk_trace.Record.t) =
        let slot =
          if r.core >= 0 then r.core mod threads
          else begin
            let s = !rr in
            rr := (s + 1) mod threads;
            s
          end
        in
        incr arrivals;
        incr inflight;
        if !inflight > !max_backlog then max_backlog := !inflight;
        let arrival = r.arrival and phase = r.phase in
        let reads = r.reads and writes = r.writes in
        Core.submit cpus.(slot)
          ~gen:(fun () ->
            let tx =
              Workload.synthesize body rngs.(slot) ~threads ~thread:slot
                ~reads ~writes
            in
            List.iter
              (function
                | Program.Incr a ->
                  Hashtbl.replace expected a
                    (1 + Option.value ~default:0 (Hashtbl.find_opt expected a))
                | Program.Add _ | Program.Read _ | Program.Write _
                | Program.Compute _ | Program.Fault ->
                  ())
              tx.Program.ops;
            tx)
          ~notify:(fun ~started ->
            decr inflight;
            incr completed;
            phases.(phase) <- phases.(phase) + 1;
            Stats.record qdelay (started - arrival);
            Stats.record sojourn (Sim.now sim - arrival))
      in
      let seal_all () = Array.iter Core.seal cpus in
      (* Pull-one-ahead feeder: at most one unscheduled record is in
         memory at any time, so replay is O(1) in trace length. *)
      let rec feed () =
        let live = ref true in
        while !live do
          match ol.Workload_source.next () with
          | Error e ->
            feed_error := Some e;
            seal_all ();
            live := false
          | Ok None ->
            seal_all ();
            live := false
          | Ok (Some r) ->
            if r.Lk_trace.Record.arrival <= Sim.now sim then dispatch r
            else begin
              Sim.schedule_at sim ~time:r.Lk_trace.Record.arrival (fun () ->
                  dispatch r;
                  feed ());
              live := false
            end
        done
      in
      feed ();
      let post_run () =
        match !feed_error with
        | Some e ->
          failwith
            (Printf.sprintf "Runner.replay: %s/%s: %s" sysconf.Sysconf.name
               workload_name e)
        | None -> ()
      in
      let collect () =
        Some
          {
            arrivals = !arrivals;
            completed = !completed;
            max_backlog = !max_backlog;
            queue_delay_p50 = Stats.percentile qdelay 50.;
            queue_delay_p95 = Stats.percentile qdelay 95.;
            queue_delay_p99 = Stats.percentile qdelay 99.;
            sojourn_p50 = Stats.percentile sojourn 50.;
            sojourn_p95 = Stats.percentile sojourn 95.;
            sojourn_p99 = Stats.percentile sojourn 99.;
            phase_mix =
              Array.to_list phases
              |> List.mapi (fun i n -> (i, n))
              |> List.filter (fun (_, n) -> n > 0);
          }
      in
      (cpus, post_run, collect)
  in
  let (), perf_sample =
    Perf.observe sim (fun () -> Sim.run ~limit:cycle_limit sim)
  in
  Perf.note perf_sample;
  (* Partition/window diagnostics go to stderr only: the result JSON
     must stay byte-identical for every [pdes_domains]. *)
  if pdes_domains > 1 then begin
    let s = Sim.pdes_stats sim in
    Printf.eprintf
      "pdes: domains=%d lookahead=%d windows=%d cross_events=%d \
       short_hops=%d%s\n%!"
      s.Sim.domains s.Sim.lookahead s.Sim.windows s.Sim.cross_events
      s.Sim.short_hops
      (if race_check then
         Printf.sprintf " race_violations=%d" s.Sim.race_violations
       else "")
  end;
  post_run ();
  if !finished <> threads then
    failwith
      (Printf.sprintf "Runner.run: %s/%s/%d threads: only %d threads finished"
         sysconf.Sysconf.name workload_name threads !finished);
  Protocol.check_invariants protocol;
  (* Serializability: replay the committed sections in completion order
     and check every observed read. *)
  (match oracle_handle with
  | None -> ()
  | Some o -> (
    match Lk_htm.Oracle.verify o with
    | Ok () -> ()
    | Error v ->
      failwith
        (Format.asprintf "Runner.run: %s/%s: serializability violated: %a"
           sysconf.Sysconf.name workload_name
           Lk_htm.Oracle.pp_violation v)));
  (match sanitizer with
  | None -> ()
  | Some s -> (
    match Lk_check.Sanitizer.finish s with
    | [] -> ()
    | v :: _ as vs ->
      failwith
        (Printf.sprintf "Runner.run: %s/%s: invariant sanitizer: %s%s"
           sysconf.Sysconf.name workload_name
           (Lk_check.Invariant.violation_to_string v)
           (match List.length vs with
           | 1 -> ""
           | n -> Printf.sprintf " (+%d more)" (n - 1)))));
  if race_check && Sim.race_count sim > 0 then begin
    let n = Sim.race_count sim in
    let first =
      match Sim.race_violations sim with
      | v :: _ -> Format.asprintf "%a" Sim.pp_race_violation v
      | [] -> "(no detail)"
    in
    failwith
      (Printf.sprintf
         "Runner.run: %s/%s: partition-ownership race detector: %d \
          violation(s); first: %s"
         sysconf.Sysconf.name workload_name n first)
  end;
  let cycles =
    Array.fold_left (fun acc cpu -> max acc (Core.finish_time cpu)) 0 cpus
  in
  let htm_commits = ref 0
  and stl_commits = ref 0
  and lock_commits = ref 0
  and sw_commits = ref 0
  and aborts = ref 0
  and rejects = ref 0
  and parks = ref 0
  and attempts = ref 0
  and wasted = ref 0 in
  let mix = Array.make Reason.count 0 in
  let wasted_mix = Array.make Reason.count 0 in
  for i = 0 to threads - 1 do
    let cs = Runtime.core_stats runtime (core_of i) in
    htm_commits := !htm_commits + cs.Runtime.commits;
    stl_commits := !stl_commits + cs.Runtime.stl_commits;
    lock_commits := !lock_commits + cs.Runtime.lock_commits;
    sw_commits := !sw_commits + cs.Runtime.sw_commits;
    aborts := !aborts + cs.Runtime.aborts;
    rejects := !rejects + cs.Runtime.rejects_received;
    parks := !parks + cs.Runtime.parks;
    attempts := !attempts + cs.Runtime.attempts_at_commit;
    wasted := !wasted + cs.Runtime.wasted;
    Array.iteri
      (fun i n -> mix.(i) <- mix.(i) + n)
      cs.Runtime.abort_reasons;
    Array.iteri
      (fun i n -> wasted_mix.(i) <- wasted_mix.(i) + n)
      cs.Runtime.wasted_by_reason
  done;
  (match tele with
  | Some (req, handle) -> req.consume handle
  | None -> ());
  let stats = Runtime.stats runtime in
  let latency = Runtime.tx_latency_hdr runtime in
  ( store,
    {
    system = sysconf.Sysconf.name;
    workload = workload_name;
    threads;
    cache;
    cycles;
    commit_rate = Runtime.commit_rate runtime;
    htm_commits = !htm_commits;
    stl_commits = !stl_commits;
    lock_commits = !lock_commits;
    sw_commits = !sw_commits;
    aborts = !aborts;
    abort_mix = List.map (fun r -> (r, mix.(Reason.index r))) Reason.all;
    wasted_cycles = !wasted;
    wasted_by_reason =
      List.map (fun r -> (r, wasted_mix.(Reason.index r))) Reason.all;
    breakdown = Accounting.total acct;
    rejects = !rejects;
    parks = !parks;
    wakeups = counter_value stats "wakeups";
    switches_granted = counter_value stats "switches_granted";
    switches_denied = counter_value stats "switches_denied";
    spilled_lines = counter_value stats "spilled_lines";
    lock_dwell_cycles = counter_value stats "lock_dwell_cycles";
    clock_advances = counter_value stats "clock_advances";
    watchdog_rescues = Runtime.watchdog_rescues runtime;
    network_messages = Network.messages_sent net;
    network_flits = Network.flits_sent net;
    oracle_sections =
      (match oracle_handle with
      | None -> 0
      | Some o -> Lk_htm.Oracle.size o);
    avg_attempts_per_commit =
      (if !htm_commits = 0 then 0.0
       else float_of_int !attempts /. float_of_int !htm_commits);
    tx_latency_p50 = Stats.percentile latency 50.;
    tx_latency_p95 = Stats.percentile latency 95.;
    tx_latency_p99 = Stats.percentile latency 99.;
    open_loop = collect_open ();
  } )

type options = {
  seed : int;
  scale : float;
  machine : Config.t;
  oracle : bool;
  on_runtime : Runtime.t -> unit;
  placement : placement;
  cycle_limit : int;
  queue_backend : Lk_engine.Event_queue.backend;
  pdes_domains : int;
  check : bool;
  race_check : bool;
  telemetry : telemetry_request option;
}

let default_options =
  {
    seed = 1;
    scale = 1.0;
    machine = Config.machine ();
    oracle = true;
    on_runtime = (fun _ -> ());
    placement = Compact;
    cycle_limit = 1 lsl 30;
    queue_backend = Lk_engine.Event_queue.Wheel;
    pdes_domains = 1;
    check = false;
    race_check = false;
    telemetry = None;
  }

let run ?(options = default_options) ~sysconf ~workload ~threads () =
  let {
    seed;
    scale;
    machine;
    oracle;
    on_runtime;
    placement;
    cycle_limit;
    queue_backend;
    pdes_domains;
    check;
    race_check;
    telemetry;
  } =
    options
  in
  let program = Workload.generate workload ~threads ~seed ~scale in
  let store, result =
    execute ~queue_backend ~pdes_domains ~check ~race_check ?telemetry
      ~machine ~oracle
      ~on_runtime
      ~placement ~cycle_limit ~sysconf
      ~mode:
        (Closed
           { program; barrier_every = workload.Workload.barrier_every })
      ~workload_name:workload.Workload.name ~cache:machine.Config.cache ()
  in
  (* End-to-end atomicity check: committed hot counters must equal the
     increments the program performs. *)
  List.iter
    (fun (addr, expected) ->
      let got = Store.committed store addr in
      if got <> expected then
        failwith
          (Printf.sprintf
             "Runner.run: %s/%s: conservation violated at %#x: %d <> %d"
             sysconf.Sysconf.name workload.Workload.name addr got expected))
    (Workload.expected_hot_increments workload ~threads ~seed ~scale);
  result

let run_program ?(options = default_options) ?(name = "custom") ~sysconf
    ~program () =
  let {
    machine;
    oracle;
    on_runtime;
    placement;
    cycle_limit;
    queue_backend;
    pdes_domains;
    check;
    race_check;
    telemetry;
    seed = _;
    scale = _;
  } =
    options
  in
  (match Lk_cpu.Program.validate program with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.run_program: " ^ msg));
  List.iter
    (fun addr ->
      (* Lines 0-1 hold the fallback lock, line 2 the global version
         clock, line 3 the software-mode gate. *)
      if addr < 256 then
        invalid_arg
          (Printf.sprintf
             "Runner.run_program: address %#x collides with the reserved \
              lock/clock/gate lines"
             addr))
    (Lk_cpu.Program.touched_addresses program);
  let _, result =
    execute ~queue_backend ~pdes_domains ~check ~race_check ?telemetry
      ~machine ~oracle
      ~on_runtime ~placement ~cycle_limit ~sysconf
      ~mode:(Closed { program; barrier_every = None })
      ~workload_name:name ~cache:machine.Config.cache ()
  in
  result

let replay ?(options = default_options) ~sysconf ~open_loop ~threads () =
  let {
    seed;
    machine;
    oracle;
    on_runtime;
    placement;
    cycle_limit;
    queue_backend;
    pdes_domains;
    check;
    race_check;
    telemetry;
    scale = _;
  } =
    options
  in
  (match Workload.validate open_loop.Workload_source.body with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.replay: body profile: " ^ msg));
  let expected = Hashtbl.create 64 in
  let store, result =
    execute ~queue_backend ~pdes_domains ~check ~race_check ?telemetry
      ~machine ~oracle
      ~on_runtime ~placement ~cycle_limit ~sysconf
      ~mode:(Open { ol = open_loop; threads; seed; expected })
      ~workload_name:open_loop.Workload_source.trace_name
      ~cache:machine.Config.cache ()
  in
  (* Conservation, open-loop flavour: hot increments are tallied as
     bodies are synthesised, so the check needs no second trace pass. *)
  Hashtbl.iter
    (fun addr want ->
      let got = Store.committed store addr in
      if got <> want then
        failwith
          (Printf.sprintf
             "Runner.replay: %s/%s: conservation violated at %#x: %d <> %d"
             sysconf.Sysconf.name open_loop.Workload_source.trace_name addr
             got want))
    expected;
  result

let run_source ?(options = default_options) ~sysconf ~source ~threads () =
  match (source : Workload_source.t) with
  | Workload_source.Workload workload -> run ~options ~sysconf ~workload ~threads ()
  | Workload_source.Program { name; program } ->
    if Array.length program <> threads then
      invalid_arg
        (Printf.sprintf
           "Runner.run_source: %d threads requested but the program has %d"
           threads (Array.length program));
    run_program ~options ~name ~sysconf ~program ()
  | Workload_source.Replay open_loop ->
    replay ~options ~sysconf ~open_loop ~threads ()

let abort_fraction r reason =
  if r.aborts = 0 then 0.0
  else
    float_of_int (List.assoc reason r.abort_mix) /. float_of_int r.aborts

let pp ppf r =
  Format.fprintf ppf
    "@[<v>%s / %s / %d threads: %d cycles, commit rate %.2f, %d commits \
     (%d stl, %d lock, %d sw), %d aborts@]"
    r.system r.workload r.threads r.cycles r.commit_rate r.htm_commits
    r.stl_commits r.lock_commits r.sw_commits r.aborts

(* --- JSON codec --------------------------------------------------------- *)

(* One member per [result] field, in declaration order; [abort_mix] and
   [breakdown] become label-keyed objects. The cache and the CLI's
   [--format json] share this encoding, so round-tripping is exercised
   on every warm-cache run. *)
let json_of_open_loop o =
  Json.Obj
    [
      ("arrivals", Json.Int o.arrivals);
      ("completed", Json.Int o.completed);
      ("max_backlog", Json.Int o.max_backlog);
      ("queue_delay_p50", Json.Int o.queue_delay_p50);
      ("queue_delay_p95", Json.Int o.queue_delay_p95);
      ("queue_delay_p99", Json.Int o.queue_delay_p99);
      ("sojourn_p50", Json.Int o.sojourn_p50);
      ("sojourn_p95", Json.Int o.sojourn_p95);
      ("sojourn_p99", Json.Int o.sojourn_p99);
      ( "phase_mix",
        Json.Obj
          (List.map
             (fun (phase, n) -> (string_of_int phase, Json.Int n))
             o.phase_mix) );
    ]

let json_of_result r =
  Json.Obj
    [
      ("schema", Json.Int Schema.version);
      ("system", Json.String r.system);
      ("workload", Json.String r.workload);
      ("threads", Json.Int r.threads);
      ("cache", Json.String (Config.cache_profile_id r.cache));
      ("cycles", Json.Int r.cycles);
      ("commit_rate", Json.Float r.commit_rate);
      ("htm_commits", Json.Int r.htm_commits);
      ("stl_commits", Json.Int r.stl_commits);
      ("lock_commits", Json.Int r.lock_commits);
      ("sw_commits", Json.Int r.sw_commits);
      ("aborts", Json.Int r.aborts);
      ( "abort_mix",
        Json.Obj
          (List.map
             (fun (reason, n) -> (Reason.label reason, Json.Int n))
             r.abort_mix) );
      ("wasted_cycles", Json.Int r.wasted_cycles);
      ( "wasted_by_reason",
        Json.Obj
          (List.map
             (fun (reason, n) -> (Reason.label reason, Json.Int n))
             r.wasted_by_reason) );
      ( "breakdown",
        Json.Obj
          (List.map
             (fun (cat, n) -> (Accounting.label cat, Json.Int n))
             r.breakdown) );
      ("rejects", Json.Int r.rejects);
      ("parks", Json.Int r.parks);
      ("wakeups", Json.Int r.wakeups);
      ("switches_granted", Json.Int r.switches_granted);
      ("switches_denied", Json.Int r.switches_denied);
      ("spilled_lines", Json.Int r.spilled_lines);
      ("lock_dwell_cycles", Json.Int r.lock_dwell_cycles);
      ("clock_advances", Json.Int r.clock_advances);
      ("watchdog_rescues", Json.Int r.watchdog_rescues);
      ("network_messages", Json.Int r.network_messages);
      ("network_flits", Json.Int r.network_flits);
      ("oracle_sections", Json.Int r.oracle_sections);
      ("avg_attempts_per_commit", Json.Float r.avg_attempts_per_commit);
      ("tx_latency_p50", Json.Int r.tx_latency_p50);
      ("tx_latency_p95", Json.Int r.tx_latency_p95);
      ("tx_latency_p99", Json.Int r.tx_latency_p99);
      ( "open_loop",
        match r.open_loop with
        | None -> Json.Null
        | Some o -> json_of_open_loop o );
    ]

let result_to_json r = Json.to_string (json_of_result r)

let ( let* ) = Result.bind

let open_loop_of_json_value v =
  let int name = let* m = Json.member name v in Json.to_int m in
  let* arrivals = int "arrivals" in
  let* completed = int "completed" in
  let* max_backlog = int "max_backlog" in
  let* queue_delay_p50 = int "queue_delay_p50" in
  let* queue_delay_p95 = int "queue_delay_p95" in
  let* queue_delay_p99 = int "queue_delay_p99" in
  let* sojourn_p50 = int "sojourn_p50" in
  let* sojourn_p95 = int "sojourn_p95" in
  let* sojourn_p99 = int "sojourn_p99" in
  let* phase_mix =
    let* m = Json.member "phase_mix" v in
    let* obj = Json.to_obj m in
    List.fold_left
      (fun acc (key, j) ->
        let* acc = acc in
        match (int_of_string_opt key, j) with
        | Some phase, Json.Int n when phase >= 0 -> Ok ((phase, n) :: acc)
        | _ ->
          Error
            (Printf.sprintf "phase_mix: bad entry %S: %s" key
               (Json.to_string j)))
      (Ok []) obj
    |> Result.map List.rev
  in
  Ok
    {
      arrivals;
      completed;
      max_backlog;
      queue_delay_p50;
      queue_delay_p95;
      queue_delay_p99;
      sojourn_p50;
      sojourn_p95;
      sojourn_p99;
      phase_mix;
    }

let result_of_json_value v =
  let int name = let* m = Json.member name v in Json.to_int m in
  let float name = let* m = Json.member name v in Json.to_float m in
  let str name = let* m = Json.member name v in Json.to_str m in
  let* () =
    match Json.member "schema" v with
    | Error _ ->
      Error
        (Printf.sprintf
           "missing \"schema\" member (result predates schema v%d); re-run \
            to regenerate"
           Schema.version)
    | Ok m ->
      let* s = Json.to_int m in
      Schema.check s
  in
  let labelled name all label of_pairs =
    let* m = Json.member name v in
    let* obj = Json.to_obj m in
    let* pairs =
      List.fold_left
        (fun acc key ->
          let* acc = acc in
          match List.assoc_opt (label key) obj with
          | Some (Json.Int n) -> Ok ((key, n) :: acc)
          | Some j ->
            Error
              (Printf.sprintf "%s.%s: expected int, got %s" name (label key)
                 (Json.to_string j))
          | None ->
            Error (Printf.sprintf "%s: missing count for %S" name (label key)))
        (Ok []) all
    in
    Ok (of_pairs (List.rev pairs))
  in
  let* system = str "system" in
  let* workload = str "workload" in
  let* threads = int "threads" in
  let* cache =
    let* id = str "cache" in
    match Config.cache_profile_of_id id with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "unknown cache profile %S" id)
  in
  let* cycles = int "cycles" in
  let* commit_rate = float "commit_rate" in
  let* htm_commits = int "htm_commits" in
  let* stl_commits = int "stl_commits" in
  let* lock_commits = int "lock_commits" in
  let* sw_commits = int "sw_commits" in
  let* aborts = int "aborts" in
  let* abort_mix = labelled "abort_mix" Reason.all Reason.label Fun.id in
  let* wasted_cycles = int "wasted_cycles" in
  let* wasted_by_reason =
    labelled "wasted_by_reason" Reason.all Reason.label Fun.id
  in
  let* breakdown =
    labelled "breakdown" Accounting.categories Accounting.label Fun.id
  in
  let* rejects = int "rejects" in
  let* parks = int "parks" in
  let* wakeups = int "wakeups" in
  let* switches_granted = int "switches_granted" in
  let* switches_denied = int "switches_denied" in
  let* spilled_lines = int "spilled_lines" in
  let* lock_dwell_cycles = int "lock_dwell_cycles" in
  let* clock_advances = int "clock_advances" in
  let* watchdog_rescues = int "watchdog_rescues" in
  let* network_messages = int "network_messages" in
  let* network_flits = int "network_flits" in
  let* oracle_sections = int "oracle_sections" in
  let* avg_attempts_per_commit = float "avg_attempts_per_commit" in
  let* tx_latency_p50 = int "tx_latency_p50" in
  let* tx_latency_p95 = int "tx_latency_p95" in
  let* tx_latency_p99 = int "tx_latency_p99" in
  let* open_loop =
    let* m = Json.member "open_loop" v in
    match m with
    | Json.Null -> Ok None
    | m -> Result.map Option.some (open_loop_of_json_value m)
  in
  Ok
    {
      system;
      workload;
      threads;
      cache;
      cycles;
      commit_rate;
      htm_commits;
      stl_commits;
      lock_commits;
      sw_commits;
      aborts;
      abort_mix;
      wasted_cycles;
      wasted_by_reason;
      breakdown;
      rejects;
      parks;
      wakeups;
      switches_granted;
      switches_denied;
      spilled_lines;
      lock_dwell_cycles;
      clock_advances;
      watchdog_rescues;
      network_messages;
      network_flits;
      oracle_sections;
      avg_attempts_per_commit;
      tx_latency_p50;
      tx_latency_p95;
      tx_latency_p99;
      open_loop;
    }

let result_of_json s =
  let* v = Json.of_string s in
  result_of_json_value v
