module Sysconf = Lk_lockiller.Sysconf
module Reason = Lk_htm.Reason
module Accounting = Lk_cpu.Accounting
module Workload = Lk_stamp.Workload
module Suite = Lk_stamp.Suite

type context = {
  seed : int;
  scale : float;
  cores : int;
  threads : int list;
  jobs : int;
  cache : Cache.t option;
  keyer : Cache.t;
      (* Key computation needs a schema tag even when no disk cache is
         attached; this is [cache] when present, else a directory-less
         stand-in that never touches the filesystem. *)
  memo : (string, Runner.result) Hashtbl.t;
  mutable simulated : int;
}

let make_context ?(seed = 1) ?(scale = 1.0) ?(cores = 32)
    ?(threads = [ 2; 4; 8; 16; 32 ]) ?(jobs = 1) ?cache () =
  let threads = List.filter (fun t -> t <= cores) threads in
  if threads = [] then invalid_arg "Experiments.make_context: no thread counts";
  {
    seed;
    scale;
    cores;
    threads;
    jobs = max 1 jobs;
    cache;
    keyer =
      (match cache with Some c -> c | None -> Cache.create ~dir:"" ());
    memo = Hashtbl.create 256;
    simulated = 0;
  }

let thread_counts ctx = ctx.threads
let simulations ctx = ctx.simulated
let cache ctx = ctx.cache

(* --- jobs --------------------------------------------------------------- *)

type job = {
  j_options : Runner.options;
  j_sysconf : Sysconf.t;
  j_workload : Workload.profile;
  j_threads : int;
}

let job ctx ?(cache = Config.Typical) ?machine ?placement ?seed ~sysconf
    ~workload ~threads () =
  let machine =
    match machine with
    | Some m -> m
    | None -> Config.machine ~cache ~cores:ctx.cores ()
  in
  {
    j_options =
      {
        Runner.default_options with
        Runner.seed = Option.value seed ~default:ctx.seed;
        scale = ctx.scale;
        machine;
        placement = Option.value placement ~default:Runner.Compact;
      };
    j_sysconf = sysconf;
    j_workload = workload;
    j_threads = threads;
  }

let job_key ctx j =
  Cache.key ctx.keyer ~options:j.j_options ~sysconf:j.j_sysconf
    ~workload:j.j_workload ~threads:j.j_threads

let simulate ctx j =
  let r =
    Runner.run ~options:j.j_options ~sysconf:j.j_sysconf
      ~workload:j.j_workload ~threads:j.j_threads ()
  in
  ctx.simulated <- ctx.simulated + 1;
  r

let commit ctx key r =
  (match ctx.cache with Some c -> Cache.store c key r | None -> ());
  Hashtbl.replace ctx.memo key r

let run_job ctx j =
  let key = job_key ctx j in
  match Hashtbl.find_opt ctx.memo key with
  | Some r -> r
  | None -> (
    match Option.bind ctx.cache (fun c -> Cache.find c key) with
    | Some r ->
      Hashtbl.replace ctx.memo key r;
      r
    | None ->
      let r = simulate ctx j in
      commit ctx key r;
      r)

let prefetch ctx jobs =
  (* Deduplicate in job order and satisfy what we can from the memo and
     the disk cache; only the remainder hits the pool. Results commit
     in job order, so the memo (and therefore any rendering) is
     independent of completion order. *)
  let seen = Hashtbl.create 64 in
  let todo =
    List.filter_map
      (fun j ->
        let key = job_key ctx j in
        if Hashtbl.mem seen key || Hashtbl.mem ctx.memo key then None
        else begin
          Hashtbl.add seen key ();
          match Option.bind ctx.cache (fun c -> Cache.find c key) with
          | Some r ->
            Hashtbl.replace ctx.memo key r;
            None
          | None -> Some (key, j)
        end)
      jobs
    |> Array.of_list
  in
  let results =
    Pool.map ~jobs:ctx.jobs
      (fun (_, j) ->
        Runner.run ~options:j.j_options ~sysconf:j.j_sysconf
          ~workload:j.j_workload ~threads:j.j_threads ())
      todo
  in
  Array.iteri
    (fun i (key, _) ->
      ctx.simulated <- ctx.simulated + 1;
      commit ctx key results.(i))
    todo

let result ctx ?(cache = Config.Typical) ~sysconf ~workload ~threads () =
  run_job ctx (job ctx ~cache ~sysconf ~workload ~threads ())

let speedup_vs_cgl ctx ?(cache = Config.Typical) ~sysconf ~workload ~threads ()
    =
  let cgl = result ctx ~cache ~sysconf:Sysconf.cgl ~workload ~threads () in
  let r = result ctx ~cache ~sysconf ~workload ~threads () in
  Metrics.speedup ~baseline_cycles:cgl.Runner.cycles ~cycles:r.Runner.cycles

type experiment = {
  id : string;
  artefact : string;
  describe : string;
  plan : context -> job list;
  render : context -> Report.table list;
}

(* The full (cache, system, workload, threads) cross product — the
   planning vocabulary of almost every experiment. *)
let grid ctx ?(cache = Config.Typical) ~systems ~workloads ~threads () =
  List.concat_map
    (fun t ->
      List.concat_map
        (fun w ->
          List.map
            (fun s -> job ctx ~cache ~sysconf:s ~workload:w ~threads:t ())
            systems)
        workloads)
    threads

let no_plan _ctx = []

let execute ctx e =
  prefetch ctx (e.plan ctx);
  e.render ctx

(* --- Table I ---------------------------------------------------------- *)

let table1 =
  {
    id = "table1";
    artefact = "Table I";
    describe = "System model parameters";
    plan = no_plan;
    render =
      (fun ctx ->
        let machine = Config.machine ~cores:ctx.cores () in
        [
          Report.table ~title:"Table I: System Model Parameters"
            ~headers:[ "Component"; "Value" ]
            (List.map (fun (k, v) -> [ k; v ]) (Config.table1 machine));
        ]);
  }

(* --- Table II --------------------------------------------------------- *)

let table2 =
  {
    id = "table2";
    artefact = "Table II";
    describe = "Evaluated systems";
    plan = no_plan;
    render =
      (fun _ctx ->
        [
          Report.table ~title:"Table II: Evaluated Systems"
            ~headers:[ "System"; "Composition" ]
            (List.map
               (fun s -> [ s.Sysconf.name; Format.asprintf "%a" Sysconf.pp s ])
               Sysconf.all);
        ]);
  }

(* --- Fig 1: motivation ------------------------------------------------ *)

let fig1 =
  {
    id = "fig1";
    artefact = "Fig 1";
    describe =
      "Speedup of requester-win best-effort HTM vs coarse-grained locking, \
       2 threads";
    plan =
      (fun ctx ->
        grid ctx
          ~systems:[ Sysconf.cgl; Sysconf.baseline ]
          ~workloads:Suite.all ~threads:[ 2 ] ());
    render =
      (fun ctx ->
        let rows =
          List.map
            (fun w ->
              let s =
                speedup_vs_cgl ctx ~sysconf:Sysconf.baseline ~workload:w
                  ~threads:2 ()
              in
              [ w.Workload.name; Report.f2 s ])
            Suite.all
        in
        [
          Report.table
            ~title:
              "Fig 1: Best-effort HTM (requester-win) speedup over CGL, 2 \
               threads"
            ~headers:[ "workload"; "speedup" ]
            ~notes:
              [
                "< 1.00 means HTM loses to coarse-grained locking — the \
                 paper's motivation.";
              ]
            rows;
        ]);
  }

(* --- Fig 7: per-workload speedups ------------------------------------- *)

let fig7_systems =
  [
    Sysconf.baseline;
    Sysconf.losa_safu;
    Sysconf.lockiller_rai;
    Sysconf.lockiller_rri;
    Sysconf.lockiller_rwi;
    Sysconf.lockiller_rwl;
    Sysconf.lockiller_rwil;
    Sysconf.lockiller;
  ]

let fig7 =
  {
    id = "fig7";
    artefact = "Fig 7";
    describe =
      "Per-workload speedup over CGL for every evaluated system and thread \
       count, typical cache";
    plan =
      (fun ctx ->
        grid ctx
          ~systems:(Sysconf.cgl :: fig7_systems)
          ~workloads:Suite.all ~threads:ctx.threads ());
    render =
      (fun ctx ->
        List.map
          (fun threads ->
            let rows =
              List.map
                (fun w ->
                  w.Workload.name
                  :: List.map
                       (fun sysconf ->
                         Report.f2
                           (speedup_vs_cgl ctx ~sysconf ~workload:w ~threads ()))
                       fig7_systems)
                Suite.all
            in
            Report.table
              ~title:
                (Printf.sprintf "Fig 7: speedup over CGL, %d threads" threads)
              ~headers:
                ("workload"
                :: List.map (fun s -> s.Sysconf.name) fig7_systems)
              rows)
          ctx.threads);
  }

(* --- Fig 8: recovery commit rates ------------------------------------- *)

let fig8_systems =
  [
    Sysconf.baseline;
    Sysconf.lockiller_rai;
    Sysconf.lockiller_rri;
    Sysconf.lockiller_rwi;
  ]

let fig8 =
  {
    id = "fig8";
    artefact = "Fig 8";
    describe =
      "Average transaction commit rate of the recovery-equipped systems \
       across thread counts";
    plan =
      (fun ctx ->
        grid ctx ~systems:fig8_systems ~workloads:Suite.all
          ~threads:ctx.threads ());
    render =
      (fun ctx ->
        let avg_rate sysconf threads =
          Metrics.mean
            (List.map
               (fun w ->
                 (result ctx ~sysconf ~workload:w ~threads ()).Runner
                   .commit_rate)
               Suite.all)
        in
        let rows =
          List.map
            (fun threads ->
              string_of_int threads
              :: List.map
                   (fun s -> Report.pct (avg_rate s threads))
                   fig8_systems)
            ctx.threads
        in
        let base_avg =
          Metrics.mean
            (List.map (fun t -> avg_rate Sysconf.baseline t) ctx.threads)
        in
        let improvement s =
          let v =
            Metrics.mean (List.map (fun t -> avg_rate s t) ctx.threads)
          in
          if base_avg > 0.0 then v /. base_avg else 0.0
        in
        [
          Report.table
            ~title:"Fig 8: average transaction commit rate (recovery systems)"
            ~headers:
              ("threads" :: List.map (fun s -> s.Sysconf.name) fig8_systems)
            ~notes:
              [
                Printf.sprintf
                  "Commit-rate improvement over Baseline: RAI %.2fx, RRI \
                   %.2fx, RWI %.2fx (paper: 1.40x, 1.69x, 1.63x)."
                  (improvement Sysconf.lockiller_rai)
                  (improvement Sysconf.lockiller_rri)
                  (improvement Sysconf.lockiller_rwi);
              ]
            rows;
        ]);
  }

(* --- Breakdown figures (9 and 11) ------------------------------------- *)

let breakdown_table ctx ~title ~threads systems =
  let cats = Accounting.categories in
  let rows =
    List.concat_map
      (fun w ->
        List.map
          (fun sysconf ->
            let r = result ctx ~sysconf ~workload:w ~threads () in
            let total =
              List.fold_left (fun acc (_, n) -> acc + n) 0 r.Runner.breakdown
            in
            let cell cat =
              let n = List.assoc cat r.Runner.breakdown in
              if total = 0 then "0.0%"
              else Report.pct (float_of_int n /. float_of_int total)
            in
            [ w.Workload.name; r.Runner.system ]
            @ List.map cell cats
            @ [ Report.pct r.Runner.commit_rate ])
          systems)
      Suite.all
  in
  Report.table ~title
    ~headers:
      ([ "workload"; "system" ]
      @ List.map Accounting.label cats
      @ [ "commit rate" ])
    rows

let fig9_systems = [ Sysconf.baseline; Sysconf.lockiller_rwi; Sysconf.lockiller_rwil ]

let fig9 =
  {
    id = "fig9";
    artefact = "Fig 9";
    describe =
      "Execution-time breakdown and commit rate at the maximum thread count \
       (HTMLock benefit)";
    plan =
      (fun ctx ->
        grid ctx ~systems:fig9_systems ~workloads:Suite.all
          ~threads:[ List.fold_left max 2 ctx.threads ] ());
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        [
          breakdown_table ctx
            ~title:
              (Printf.sprintf
                 "Fig 9: execution-time breakdown and commit rate, %d threads"
                 threads)
            ~threads fig9_systems;
        ]);
  }

let fig11_systems =
  [ Sysconf.baseline; Sysconf.lockiller_rwil; Sysconf.lockiller ]

let fig11 =
  {
    id = "fig11";
    artefact = "Fig 11";
    describe =
      "Execution-time breakdown and commit rate at 2 threads, including the \
       switchLock category";
    plan =
      (fun ctx ->
        grid ctx ~systems:fig11_systems ~workloads:Suite.all ~threads:[ 2 ]
          ());
    render =
      (fun ctx ->
        [
          breakdown_table ctx
            ~title:
              "Fig 11: execution-time breakdown and commit rate, 2 threads \
               (switchingMode)"
            ~threads:2 fig11_systems;
        ]);
  }

(* --- Fig 10: abort reasons -------------------------------------------- *)

let fig10 =
  {
    id = "fig10";
    artefact = "Fig 10";
    describe = "Abort-reason percentages at 2 threads";
    plan =
      (fun ctx ->
        grid ctx ~systems:fig11_systems ~workloads:Suite.all ~threads:[ 2 ]
          ());
    render =
      (fun ctx ->
        let rows =
          List.concat_map
            (fun w ->
              List.map
                (fun sysconf ->
                  let r = result ctx ~sysconf ~workload:w ~threads:2 () in
                  [ w.Workload.name; r.Runner.system; string_of_int r.Runner.aborts ]
                  @ List.map
                      (fun reason ->
                        Report.pct (Runner.abort_fraction r reason))
                      Reason.all)
                fig11_systems)
            Suite.all
        in
        [
          Report.table
            ~title:"Fig 10: abort reasons, 2 threads"
            ~headers:
              ([ "workload"; "system"; "aborts" ]
              @ List.map Reason.label Reason.all)
            ~notes:
              [
                "HTMLock eliminates mutex aborts; switchingMode shrinks the \
                 'of' column.";
              ]
            rows;
        ]);
  }

(* --- Fig 12: average speedups ----------------------------------------- *)

let fig12 =
  {
    id = "fig12";
    artefact = "Fig 12";
    describe =
      "Average (geometric-mean) speedup over CGL of every system per thread \
       count";
    plan =
      (fun ctx ->
        grid ctx
          ~systems:(Sysconf.cgl :: fig7_systems)
          ~workloads:Suite.all ~threads:ctx.threads ());
    render =
      (fun ctx ->
        let rows =
          List.map
            (fun threads ->
              string_of_int threads
              :: List.map
                   (fun sysconf ->
                     Report.f2
                       (Metrics.geomean
                          (List.map
                             (fun w ->
                               speedup_vs_cgl ctx ~sysconf ~workload:w ~threads
                                 ())
                             Suite.all)))
                   fig7_systems)
            ctx.threads
        in
        [
          Report.table
            ~title:"Fig 12: average speedup over CGL (geomean across workloads)"
            ~headers:
              ("threads" :: List.map (fun s -> s.Sysconf.name) fig7_systems)
            rows;
        ]);
  }

(* --- Fig 13: cache-size sensitivity ----------------------------------- *)

let fig13_systems = [ Sysconf.baseline; Sysconf.losa_safu; Sysconf.lockiller ]

let fig13 =
  {
    id = "fig13";
    artefact = "Fig 13";
    describe =
      "Average speedup over CGL under the small (8KB L1 / 1MB LLC) and large \
       (128KB L1 / 32MB LLC) cache configurations";
    plan =
      (fun ctx ->
        List.concat_map
          (fun cache ->
            grid ctx ~cache
              ~systems:(Sysconf.cgl :: fig13_systems)
              ~workloads:Suite.all ~threads:ctx.threads ())
          [ Config.Small; Config.Large ]);
    render =
      (fun ctx ->
        List.map
          (fun cache ->
            let rows =
              List.map
                (fun threads ->
                  string_of_int threads
                  :: List.map
                       (fun sysconf ->
                         Report.f2
                           (Metrics.geomean
                              (List.map
                                 (fun w ->
                                   speedup_vs_cgl ctx ~cache ~sysconf
                                     ~workload:w ~threads ())
                                 Suite.all)))
                       fig13_systems)
                ctx.threads
            in
            Report.table
              ~title:
                (Printf.sprintf "Fig 13: average speedup over CGL, %s cache"
                   (Config.cache_profile_name cache))
              ~headers:
                ("threads" :: List.map (fun s -> s.Sysconf.name) fig13_systems)
              rows)
          [ Config.Small; Config.Large ]);
  }

(* --- Headline claims --------------------------------------------------- *)

let headline =
  {
    id = "headline";
    artefact = "Abstract / Section IV";
    describe =
      "Average speedup of LockillerTM vs best-effort HTM and LosaTM-SAFU, \
       plus the extreme-case (8KB L1, max threads, high contention) maxima";
    plan =
      (fun ctx ->
        let systems =
          [ Sysconf.lockiller; Sysconf.baseline; Sysconf.losa_safu ]
        in
        grid ctx ~systems ~workloads:Suite.all ~threads:ctx.threads ()
        @ grid ctx ~cache:Config.Small ~systems
            ~workloads:Suite.high_contention
            ~threads:[ List.fold_left max 2 ctx.threads ]
            ());
    render =
      (fun ctx ->
        let rel ~cache ~of_ ~vs ~workloads ~threads =
          List.map
            (fun w ->
              let a = result ctx ~cache ~sysconf:of_ ~workload:w ~threads () in
              let b = result ctx ~cache ~sysconf:vs ~workload:w ~threads () in
              Metrics.speedup ~baseline_cycles:b.Runner.cycles
                ~cycles:a.Runner.cycles)
            workloads
        in
        let typical_avg vs =
          Metrics.geomean
            (List.concat_map
               (fun threads ->
                 rel ~cache:Config.Typical ~of_:Sysconf.lockiller ~vs
                   ~workloads:Suite.all ~threads)
               ctx.threads)
        in
        let max_threads = List.fold_left max 2 ctx.threads in
        let extreme_max vs =
          match
            Metrics.max_of
              (rel ~cache:Config.Small ~of_:Sysconf.lockiller ~vs
                 ~workloads:Suite.high_contention ~threads:max_threads)
          with
          | Some v -> v
          | None -> assert false (* high_contention is never empty *)
        in
        [
          Report.table ~title:"Headline claims"
            ~headers:[ "claim"; "measured"; "paper" ]
            [
              [
                "avg speedup vs best-effort HTM (typical cache)";
                Report.f2 (typical_avg Sysconf.baseline);
                "1.86x";
              ];
              [
                "avg speedup vs LosaTM-SAFU (typical cache)";
                Report.f2 (typical_avg Sysconf.losa_safu);
                "1.57x";
              ];
              [
                Printf.sprintf
                  "max speedup vs best-effort HTM (8KB L1, %d threads, \
                   high-contention)"
                  max_threads;
                Report.f2 (extreme_max Sysconf.baseline);
                "7.79x";
              ];
              [
                Printf.sprintf
                  "max speedup vs LosaTM-SAFU (8KB L1, %d threads, \
                   high-contention)"
                  max_threads;
                Report.f2 (extreme_max Sysconf.losa_safu);
                "6.73x";
              ];
            ];
        ]);
  }

(* --- Ablation ---------------------------------------------------------- *)

let ablation =
  {
    id = "ablation";
    artefact = "Design-choice ablations (DESIGN.md)";
    describe =
      "Requester policy (RAI/RRI/RWI), priority scheme (none / progression / \
       insts) and HTMLock/switching increments, as geomean speedup over CGL";
    plan =
      (fun ctx ->
        grid ctx
          ~systems:
            [
              Sysconf.cgl;
              Sysconf.cgl_ticket;
              Sysconf.lockiller_rai;
              Sysconf.lockiller_rri;
              Sysconf.lockiller_rwi;
              Sysconf.lockiller_rwl;
              Sysconf.lockiller_rws;
              Sysconf.losa_safu;
              Sysconf.lockiller_rwil;
              Sysconf.lockiller;
            ]
          ~workloads:Suite.all
          ~threads:[ List.fold_left max 2 ctx.threads ]
          ());
    render =
      (fun ctx ->
        let systems =
          [
            ("reject: self-abort (RAI)", Sysconf.lockiller_rai);
            ("reject: retry-later (RRI)", Sysconf.lockiller_rri);
            ("reject: wait-wakeup (RWI)", Sysconf.lockiller_rwi);
            ("priority: none (RWL, +HTMLock)", Sysconf.lockiller_rwl);
            ("priority: static (RWS)", Sysconf.lockiller_rws);
            ("priority: progression (LosaTM-SAFU)", Sysconf.losa_safu);
            ("+HTMLock (RWIL)", Sysconf.lockiller_rwil);
            ("+switchingMode (LockillerTM)", Sysconf.lockiller);
          ]
        in
        let threads = List.fold_left max 2 ctx.threads in
        let rows =
          List.map
            (fun (label, sysconf) ->
              [
                label;
                Report.f2
                  (Metrics.geomean
                     (List.map
                        (fun w ->
                          speedup_vs_cgl ctx ~sysconf ~workload:w ~threads ())
                        Suite.all));
              ])
            systems
        in
        (* The locking baseline itself: how much of the vs-CGL speedup
           is TTAS convoying that a fair ticket lock removes. *)
        let lock_rows =
          List.map
            (fun w ->
              let ttas =
                result ctx ~sysconf:Sysconf.cgl ~workload:w ~threads ()
              in
              let ticket =
                result ctx ~sysconf:Sysconf.cgl_ticket ~workload:w ~threads ()
              in
              [
                w.Workload.name;
                Report.f2
                  (Metrics.speedup ~baseline_cycles:ttas.Runner.cycles
                     ~cycles:ticket.Runner.cycles);
              ])
            Suite.all
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Ablation: geomean speedup over CGL, %d threads" threads)
            ~headers:[ "configuration"; "speedup" ]
            rows;
          Report.table
            ~title:
              (Printf.sprintf
                 "Ablation: ticket lock vs TTAS for the CGL baseline, %d \
                  threads"
                 threads)
            ~headers:[ "workload"; "CGL-Ticket speedup over CGL" ]
            ~notes:
              [
                "Quantifies how much of the HTM-vs-CGL speedups come from \
                 TTAS handoff convoying.";
              ]
            lock_rows;
        ]);
  }

(* --- Transaction-size sensitivity (paper future work) ------------------ *)

(* Multiplier [m] is in quarter units (m/4 is the footprint factor);
   transactions per thread shrink inversely so total work stays
   roughly constant. *)
let txsize_spec m =
  Lk_stamp.Suite.spec ~tag:true
    ~rw_scale:(float_of_int m /. 4.0)
    ~txs_scale:(4.0 /. float_of_int m)
    "vacation"

let txsize_profile m =
  match Lk_stamp.Suite.realise (txsize_spec m) with
  | Ok p -> p
  | Error msg -> invalid_arg ("Experiments.txsize: " ^ msg)

let txsize_multipliers = [ 2; 4; 8; 16; 32 ]

let txsize_systems =
  [ Sysconf.baseline; Sysconf.lockiller_rwil; Sysconf.lockiller ]

let txsize =
  {
    id = "txsize";
    artefact = "Section IV-A (future work)";
    describe =
      "Sensitivity to transaction size: vacation-style workload with the \
       read/write sets scaled 0.5x-8x; larger sets push best-effort HTM \
       into capacity overflow where switchingMode takes over";
    plan =
      (fun ctx ->
        grid ctx
          ~systems:(Sysconf.cgl :: txsize_systems)
          ~workloads:(List.map txsize_profile txsize_multipliers)
          ~threads:[ List.fold_left max 2 ctx.threads ]
          ());
    render =
      (fun ctx ->
        let scale_profile = txsize_profile in
        let threads = List.fold_left max 2 ctx.threads in
        let systems = txsize_systems in
        let rows =
          List.map
            (fun m ->
              let workload = scale_profile m in
              Printf.sprintf "%.2gx" (float_of_int m /. 4.0)
              :: List.map
                   (fun sysconf ->
                     Report.f2
                       (speedup_vs_cgl ctx ~sysconf ~workload ~threads ()))
                   systems)
            txsize_multipliers
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Transaction-size sensitivity (speedup over CGL, %d threads)"
                 threads)
            ~headers:
              ("tx size" :: List.map (fun s -> s.Sysconf.name) systems)
            rows;
        ]);
  }

(* --- NoC contention ablation -------------------------------------------- *)

let noc_systems = [ Sysconf.cgl; Sysconf.baseline; Sysconf.lockiller ]

let noc_workloads =
  List.filter
    (fun w -> List.mem w.Workload.name [ "intruder"; "vacation+"; "kmeans+" ])
    Suite.all

let noc_job ctx ~sysconf ~workload ~threads noc_contention =
  job ctx
    ~machine:(Config.machine ~cores:ctx.cores ~noc_contention ())
    ~sysconf ~workload ~threads ()

let noc =
  {
    id = "noc";
    artefact = "Model-fidelity ablation (DESIGN.md)";
    describe =
      "Effect of modelling per-link NoC occupancy (wormhole contention) on the reported cycles — quantifies the contention-free default";
    plan =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        List.concat_map
          (fun workload ->
            List.concat_map
              (fun sysconf ->
                List.map
                  (noc_job ctx ~sysconf ~workload ~threads)
                  [ false; true ])
              noc_systems)
          noc_workloads);
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        let systems = noc_systems in
        let workloads = noc_workloads in
        let rows =
          List.concat_map
            (fun w ->
              List.map
                (fun sysconf ->
                  let cycles noc_contention =
                    (run_job ctx
                       (noc_job ctx ~sysconf ~workload:w ~threads
                          noc_contention))
                      .Runner.cycles
                  in
                  let off = cycles false and on_ = cycles true in
                  [
                    w.Workload.name;
                    sysconf.Sysconf.name;
                    string_of_int off;
                    string_of_int on_;
                    Report.f2 (float_of_int on_ /. float_of_int off);
                  ])
                systems)
            workloads
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "NoC contention model on/off (%d threads, high-contention workloads)"
                 threads)
            ~headers:
              [ "workload"; "system"; "cycles (off)"; "cycles (on)"; "ratio" ]
            ~notes:
              [
                "Ratios near 1.0 justify the contention-free default: line-level serialisation at the directory dominates link occupancy.";
              ]
            rows;
        ]);
  }

(* --- Topology generality ------------------------------------------------ *)

let topology_kinds = Lk_mesh.Topology.[ Mesh; Torus; Ring; Crossbar ]
let topology_systems = [ Sysconf.cgl; Sysconf.baseline; Sysconf.lockiller ]

let topology_workload =
  match Suite.find "vacation+" with Some w -> w | None -> assert false

let topology_job ctx ~sysconf ~threads kind =
  job ctx
    ~machine:(Config.machine ~cores:ctx.cores ~topology:kind ())
    ~sysconf ~workload:topology_workload ~threads ()

let topology =
  {
    id = "topology";
    artefact = "Section III-A claim";
    describe =
      "The recovery framework does not depend on the interconnect topology: run the key systems over mesh, torus, ring and crossbar fabrics";
    plan =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        List.concat_map
          (fun kind ->
            List.map
              (fun sysconf -> topology_job ctx ~sysconf ~threads kind)
              topology_systems)
          topology_kinds);
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        let kinds = topology_kinds in
        let systems = topology_systems in
        let workload = topology_workload in
        ignore workload;
        let rows =
          List.map
            (fun kind ->
              let cycles sysconf =
                (run_job ctx (topology_job ctx ~sysconf ~threads kind))
                  .Runner.cycles
              in
              let cgl = cycles Sysconf.cgl in
              Lk_mesh.Topology.kind_name kind
              :: List.map
                   (fun sysconf ->
                     if sysconf.Sysconf.name = "CGL" then string_of_int cgl
                     else
                       Report.f2
                         (Metrics.speedup ~baseline_cycles:cgl
                            ~cycles:(cycles sysconf)))
                   systems)
            kinds
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Topology generality: vacation+, %d threads (CGL cycles; others as speedup over CGL)"
                 threads)
            ~headers:[ "topology"; "CGL"; "Baseline"; "LockillerTM" ]
            ~notes:
              [
                "Every correctness net (invariants, conservation, serializability oracle) runs on all four fabrics.";
              ]
            rows;
        ]);
  }

(* --- Seed variance -------------------------------------------------------- *)

let variance_seeds = [ 1; 2; 3; 4; 5 ]

let variance_systems =
  [ Sysconf.baseline; Sysconf.lockiller_rwi; Sysconf.lockiller ]

let variance_job ctx ~sysconf ~threads ~workload seed =
  job ctx ~seed ~sysconf ~workload ~threads ()

let variance =
  {
    id = "variance";
    artefact = "Statistical robustness (extension)";
    describe =
      "Run the headline comparison over several workload-generation seeds and report the spread of the average speedup";
    plan =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        List.concat_map
          (fun seed ->
            List.concat_map
              (fun sysconf ->
                List.map
                  (fun workload ->
                    variance_job ctx ~sysconf ~threads seed ~workload)
                  Suite.all)
              (Sysconf.cgl :: variance_systems))
          variance_seeds);
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        let seeds = variance_seeds in
        let avg_speedup sysconf seed =
          Metrics.geomean
            (List.map
               (fun w ->
                 let cgl =
                   run_job ctx
                     (variance_job ctx ~sysconf:Sysconf.cgl ~threads seed
                        ~workload:w)
                 in
                 let r =
                   run_job ctx
                     (variance_job ctx ~sysconf ~threads seed ~workload:w)
                 in
                 Metrics.speedup ~baseline_cycles:cgl.Runner.cycles
                   ~cycles:r.Runner.cycles)
               Suite.all)
        in
        let rows =
          List.map
            (fun sysconf ->
              let samples = List.map (avg_speedup sysconf) seeds in
              [
                sysconf.Sysconf.name;
                Report.f2 (Metrics.mean samples);
                Report.f2 (Metrics.stddev samples);
                (match Metrics.min_of samples with
                | Some v -> Report.f2 v
                | None -> "-");
                (match Metrics.max_of samples with
                | Some v -> Report.f2 v
                | None -> "-");
              ])
            variance_systems
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Seed variance of the average speedup over CGL (%d threads, %d seeds)"
                 threads (List.length seeds))
            ~headers:[ "system"; "mean"; "stddev"; "min"; "max" ]
            ~notes:
              [
                "The qualitative ordering must survive any seed; a small stddev shows it is not an artefact of one workload draw.";
              ]
            rows;
        ]);
  }

(* --- Thread placement ----------------------------------------------------- *)

let placement_systems = [ Sysconf.cgl; Sysconf.baseline; Sysconf.lockiller ]

let placement_workloads =
  List.filter
    (fun w -> List.mem w.Workload.name [ "intruder"; "vacation+" ])
    Suite.all

let placement_threads ctx =
  let m = List.fold_left max 2 ctx.threads in
  min m (max 2 (ctx.cores / 4))

let placement_job ctx ~sysconf ~workload ~threads placement =
  job ctx ~placement ~sysconf ~workload ~threads ()

let placement =
  {
    id = "placement";
    artefact = "Thread binding (extension)";
    describe =
      "Compact vs spread thread placement on the 32-tile fabric at partial occupancy: placement changes core-to-core wake-up and forwarding distances";
    plan =
      (fun ctx ->
        let threads = placement_threads ctx in
        List.concat_map
          (fun workload ->
            List.concat_map
              (fun sysconf ->
                List.map
                  (placement_job ctx ~sysconf ~workload ~threads)
                  [ Runner.Compact; Runner.Spread ])
              placement_systems)
          placement_workloads);
    render =
      (fun ctx ->
        let threads = placement_threads ctx in
        let systems = placement_systems in
        let workloads = placement_workloads in
        let rows =
          List.concat_map
            (fun w ->
              List.map
                (fun sysconf ->
                  let cycles placement =
                    (run_job ctx
                       (placement_job ctx ~sysconf ~workload:w ~threads
                          placement))
                      .Runner.cycles
                  in
                  let compact = cycles Runner.Compact in
                  let spread = cycles Runner.Spread in
                  [
                    w.Workload.name;
                    sysconf.Sysconf.name;
                    string_of_int compact;
                    string_of_int spread;
                    Report.f2 (float_of_int spread /. float_of_int compact);
                  ])
                systems)
            workloads
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Thread placement: compact vs spread (%d threads on %d tiles)"
                 threads ctx.cores)
            ~headers:
              [ "workload"; "system"; "compact"; "spread"; "spread/compact" ]
            rows;
        ]);
  }

(* --- Protocol-fidelity ablation ------------------------------------------- *)

let protocol_workloads =
  List.filter
    (fun w -> List.mem w.Workload.name [ "genome"; "vacation"; "kmeans+" ])
    Suite.all

let protocol_variants =
  [
    ("MESI, full-map", true, None);
    ("MSI, full-map", false, None);
    ("MESI, 4-pointer", true, Some 4);
  ]

let protocol_job ctx ~workload ~threads (_, exclusive_state, dir_pointers) =
  job ctx
    ~machine:(Config.machine ~cores:ctx.cores ~exclusive_state ~dir_pointers ())
    ~sysconf:Sysconf.lockiller ~workload ~threads ()

let protocol_knobs =
  {
    id = "protocol";
    artefact = "Coherence-protocol ablation (extension)";
    describe =
      "MESI vs MSI (no Exclusive state) and full-map vs limited-pointer directory (4 pointers, broadcast on overflow)";
    plan =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        List.concat_map
          (fun workload ->
            List.map (protocol_job ctx ~workload ~threads) protocol_variants)
          protocol_workloads);
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        let workloads = protocol_workloads in
        let variants = protocol_variants in
        let rows =
          List.concat_map
            (fun w ->
              let base = ref 0 in
              List.map
                (fun ((label, _, _) as variant) ->
                  let r =
                    run_job ctx (protocol_job ctx ~workload:w ~threads variant)
                  in
                  if !base = 0 then base := r.Runner.cycles;
                  [
                    w.Workload.name;
                    label;
                    string_of_int r.Runner.cycles;
                    Report.f2
                      (float_of_int r.Runner.cycles /. float_of_int !base);
                  ])
                variants)
            workloads
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Coherence ablation under LockillerTM (%d threads; ratio vs MESI/full-map)"
                 threads)
            ~headers:[ "workload"; "protocol"; "cycles"; "ratio" ]
            rows;
        ]);
  }

(* --- Tx-latency percentiles ------------------------------------------- *)

let latency_systems = [ Sysconf.baseline; Sysconf.lockiller ]

let latency =
  {
    id = "latency";
    artefact = "Tx-latency percentiles (extension)";
    describe =
      "Critical-section latency p50/p95/p99 per workload at 2 threads, from \
       the always-on log-linear histograms";
    plan =
      (fun ctx ->
        grid ctx ~systems:latency_systems ~workloads:Suite.all ~threads:[ 2 ]
          ());
    render =
      (fun ctx ->
        let row w =
          w.Workload.name
          :: List.concat_map
               (fun s ->
                 let r = result ctx ~sysconf:s ~workload:w ~threads:2 () in
                 [
                   string_of_int r.Runner.tx_latency_p50;
                   string_of_int r.Runner.tx_latency_p95;
                   string_of_int r.Runner.tx_latency_p99;
                 ])
               latency_systems
        in
        [
          Report.table
            ~title:
              "Critical-section latency percentiles (cycles), 2 threads"
            ~headers:
              ("workload"
              :: List.concat_map
                   (fun s ->
                     let n = s.Sysconf.name in
                     [ n ^ " p50"; n ^ " p95"; n ^ " p99" ])
                   latency_systems)
            ~notes:
              [
                "First xbegin to commit, including retries and the fallback \
                 path; tail/median >> 1 flags convoying.";
              ]
            (List.map row Suite.all);
        ]);
  }

(* --- HyTM instrumentation-cost sweep ------------------------------------ *)

(* Counter-style profiles holding the footprint fixed while a rising
   fraction of accesses aims at a shrinking hot set — the contention
   axis of the instrumentation sweep. *)
let hytm_profile ~name ~hot_lines ~hot_fraction =
  {
    Workload.name;
    txs_per_thread = 48;
    reads_per_tx = (3, 6);
    writes_per_tx = (1, 3);
    hot_lines;
    hot_fraction;
    zipf_skew = 0.0;
    shared_lines = 256;
    private_lines = 64;
    compute_per_op = 2;
    pre_compute = (10, 20);
    post_compute = (5, 10);
    fault_prob = 0.0;
    barrier_every = None;
  }

let hytm_levels =
  [
    ("low", hytm_profile ~name:"hytm-low" ~hot_lines:64 ~hot_fraction:0.05);
    ("medium", hytm_profile ~name:"hytm-med" ~hot_lines:8 ~hot_fraction:0.4);
    ("high", hytm_profile ~name:"hytm-high" ~hot_lines:2 ~hot_fraction:0.9);
  ]

let hytm_hw_systems =
  [ Sysconf.hytm_gv1; Sysconf.hytm_gv5; Sysconf.hytm_rc; Sysconf.hytm_md ]

let hytm =
  {
    id = "hytm";
    artefact = "HyTM instrumentation-cost sweep (extension)";
    describe =
      "Hybrid-TM comparators (TL2 software fallback, GV1/GV5 clocks, three \
       hardware instrumentation schemes) against pure software across three \
       contention levels — reproduces the claim that instrumentation erodes \
       the hardware advantage as contention rises";
    plan =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        grid ctx
          ~systems:(Sysconf.sw_tl2 :: hytm_hw_systems)
          ~workloads:(List.map snd hytm_levels)
          ~threads:[ threads ] ());
    render =
      (fun ctx ->
        let threads = List.fold_left max 2 ctx.threads in
        let speed_rows =
          List.map
            (fun (level, workload) ->
              let sw =
                result ctx ~sysconf:Sysconf.sw_tl2 ~workload ~threads ()
              in
              level
              :: List.map
                   (fun sysconf ->
                     let r = result ctx ~sysconf ~workload ~threads () in
                     Report.f2
                       (Metrics.speedup ~baseline_cycles:sw.Runner.cycles
                          ~cycles:r.Runner.cycles))
                   hytm_hw_systems)
            hytm_levels
        in
        let detail_rows =
          List.concat_map
            (fun (level, workload) ->
              List.map
                (fun sysconf ->
                  let r = result ctx ~sysconf ~workload ~threads () in
                  [
                    level;
                    r.Runner.system;
                    string_of_int r.Runner.cycles;
                    string_of_int r.Runner.htm_commits;
                    string_of_int r.Runner.sw_commits;
                    string_of_int
                      (List.assoc Reason.Validation r.Runner.abort_mix);
                    string_of_int r.Runner.clock_advances;
                    Report.pct r.Runner.commit_rate;
                  ])
                (Sysconf.sw_tl2 :: hytm_hw_systems))
            hytm_levels
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "HyTM sweep: speedup over SW-TL2, %d threads" threads)
            ~headers:
              ("contention"
              :: List.map (fun s -> s.Sysconf.name) hytm_hw_systems)
            ~notes:
              [
                "> 1.00 means the hybrid beats pure software; the \
                 instrumented schemes' advantage shrinks (or inverts) as \
                 contention rises — the HyTM erosion claim.";
              ]
            speed_rows;
          Report.table
            ~title:
              (Printf.sprintf
                 "HyTM sweep: path and clock detail, %d threads" threads)
            ~headers:
              [
                "contention";
                "system";
                "cycles";
                "htm commits";
                "sw commits";
                "valid aborts";
                "clock advances";
                "commit rate";
              ]
            detail_rows;
        ]);
  }

(* --- Wasted-work accounting (causal profiler) --------------------------- *)

let wasted_systems = [ Sysconf.baseline; Sysconf.losa_safu; Sysconf.lockiller ]

let wasted_workloads =
  List.filter
    (fun w ->
      List.mem w.Workload.name [ "genome"; "intruder"; "kmeans+"; "vacation" ])
    Suite.all

(* Moderate contention, deliberately: at the saturated end every
   LosaTM-SAFU attempt dies on its first conflict and the system
   collapses onto the fallback lock — it stops speculating, so its
   wasted share falls while its total time balloons, and a wasted-work
   comparison degenerates into comparing serialization. The claim the
   paper makes ("progression priority converts wasted work into
   committed work") is about the regime where both systems actually
   speculate. *)
let wasted_threads ctx = min 8 (List.fold_left max 2 ctx.threads)

(* Run with the causal profiler streaming through the ledger tap. The
   [on_runtime] hook is a closure the result cache cannot key on, so
   these runs bypass the plan/prefetch machinery; the renderer memoises
   them locally instead. Attaching the profiler changes no simulated
   outcome — the result is byte-identical to a plain run. *)
let wasted_profiled ctx ~sysconf ~source ~threads =
  let prof = ref None in
  let options =
    {
      Runner.default_options with
      seed = ctx.seed;
      scale = ctx.scale;
      machine = Config.machine ~cores:ctx.cores ();
      oracle =
        (* The oracle stores every committed section, which defeats
           bounded-memory replay (see Runner.replay); closed-loop runs
           keep it. *)
        (match source with Workload_source.Replay _ -> false | _ -> true);
      on_runtime =
        (fun rt ->
          let l = Lk_lockiller.Runtime.enable_ledger ~capacity:1024 rt in
          let p = Profile.create ~cores:ctx.cores in
          Profile.attach p l;
          prof := Some p);
    }
  in
  let r =
    match source with
    | Workload_source.Workload w ->
      Runner.run ~options ~sysconf ~workload:w ~threads ()
    | Workload_source.Replay ol ->
      Runner.replay ~options ~sysconf ~open_loop:ol ~threads ()
    | Workload_source.Program _ ->
      invalid_arg "Experiments.wasted: program source"
  in
  ctx.simulated <- ctx.simulated + 1;
  match !prof with
  | Some p -> (r, p)
  | None -> assert false (* on_runtime always fires: these runs are uncached *)

(* A moderately contended open-loop arrival stream for the replay leg:
   steady Poisson arrivals (no diurnal swing or bursts, for a clean
   wasted-work signal) whose footprints land on the vacation body,
   regenerated deterministically from the context seed for every
   system. The arrival rate is pitched at the same regime as the
   closed-loop leg — heavy enough that attempts conflict, light enough
   that LosaTM-SAFU still speculates rather than convoying on the
   fallback lock. *)
let wasted_trace_records ctx =
  let profile =
    {
      Lk_trace.Gen.default with
      Lk_trace.Gen.users = 100;
      think_time = 8_000.0;
      duration = max 5_000 (int_of_float (40_000.0 *. ctx.scale));
      diurnal_amp = 0.0;
      burst_every = 0;
      reads_per_tx = (4, 8);
      writes_per_tx = (2, 4);
      cores = ctx.cores;
      affinity = Lk_trace.Gen.Any;
    }
  in
  let acc = ref [] in
  (match
     Lk_trace.Gen.generate profile ~seed:ctx.seed ~emit:(fun r ->
         acc := r :: !acc)
   with
  | Ok _ -> ()
  | Error msg -> failwith ("Experiments.wasted: trace generation: " ^ msg));
  Array.of_list (List.rev !acc)

let wasted_open_loop ~body records =
  let i = ref 0 in
  {
    Workload_source.trace_name = "gen-contended";
    next =
      (fun () ->
        if !i >= Array.length records then Ok None
        else begin
          let r = records.(!i) in
          incr i;
          Ok (Some r)
        end);
    body;
  }

let wasted =
  {
    id = "wasted";
    artefact = "Wasted-work ratio (Fig 10 companion)";
    describe =
      "Causal-profiler wasted-cycle accounting: Baseline vs LosaTM-SAFU vs \
       LockillerTM on the contended STAMP profiles, closed-loop and \
       open-loop replay — progression priority converts wasted aborted \
       work into committed work";
    plan = no_plan (* profiled runs carry an uncacheable runtime hook *);
    render =
      (fun ctx ->
        let threads = wasted_threads ctx in
        let fraction r =
          float_of_int r.Runner.wasted_cycles
          /. float_of_int (threads * max 1 r.Runner.cycles)
        in
        let closed_rows =
          List.concat_map
            (fun w ->
              List.map
                (fun sysconf ->
                  let r, p =
                    wasted_profiled ctx ~sysconf
                      ~source:(Workload_source.Workload w) ~threads
                  in
                  [
                    w.Workload.name;
                    sysconf.Sysconf.name;
                    string_of_int r.Runner.cycles;
                    string_of_int r.Runner.aborts;
                    Printf.sprintf "%d = %d + %d" (Profile.total_aborts p)
                      (Profile.attributed p)
                      (Profile.environmental p);
                    string_of_int r.Runner.wasted_cycles;
                    Report.pct (fraction r);
                  ])
                wasted_systems)
            wasted_workloads
        in
        let records = wasted_trace_records ctx in
        let body =
          match Suite.find "vacation" with
          | Some w -> w
          | None -> assert false
        in
        let replay_rows =
          List.map
            (fun sysconf ->
              let r, p =
                wasted_profiled ctx ~sysconf
                  ~source:
                    (Workload_source.Replay (wasted_open_loop ~body records))
                  ~threads
              in
              let backlog =
                match r.Runner.open_loop with
                | Some o -> string_of_int o.Runner.max_backlog
                | None -> "-"
              in
              [
                sysconf.Sysconf.name;
                string_of_int r.Runner.cycles;
                string_of_int r.Runner.aborts;
                Printf.sprintf "%d = %d + %d" (Profile.total_aborts p)
                  (Profile.attributed p)
                  (Profile.environmental p);
                string_of_int r.Runner.wasted_cycles;
                Report.pct (fraction r);
                backlog;
              ])
            wasted_systems
        in
        [
          Report.table
            ~title:
              (Printf.sprintf
                 "Wasted work, closed loop (%d threads): cycles inside \
                  aborted attempts as a share of total core-cycles"
                 threads)
            ~headers:
              [
                "workload";
                "system";
                "cycles";
                "aborts";
                "edges (attr + env)";
                "wasted";
                "wasted %";
              ]
            ~notes:
              [
                "wasted % = wasted cycles / (threads * run cycles); every \
                 abort contributes exactly one attribution edge, so the \
                 edge total equals the abort count.";
                "Wasted counts speculative work only: cycles a core spent \
                 deliberately stalled (reject back-off, parked on a \
                 wake-up list) are excluded from the victim's age.";
                "The paper's direction: LockillerTM's wasted share sits \
                 below LosaTM-SAFU's on the contended profiles — \
                 progression priority stops doomed attempts earlier.";
                "The comparison is pinned at moderate contention (8 \
                 threads): past saturation LosaTM-SAFU collapses onto the \
                 fallback lock and stops speculating, so its waste moves \
                 into serialization this metric deliberately ignores.";
              ]
            closed_rows;
          Report.table
            ~title:
              (Printf.sprintf
                 "Wasted work, open-loop replay (%d stream cores, %d \
                  arrivals, vacation body)"
                 threads (Array.length records))
            ~headers:
              [
                "system";
                "cycles";
                "aborts";
                "edges (attr + env)";
                "wasted";
                "wasted %";
                "max backlog";
              ]
            ~notes:
              [
                "Arrivals come on their own clock, so wasted work here \
                 also delays every queued successor — the open-loop view \
                 of the same ordering.";
              ]
            replay_rows;
        ]);
  }

let all =
  [
    table1;
    table2;
    fig1;
    fig7;
    fig8;
    fig9;
    fig10;
    fig11;
    fig12;
    fig13;
    headline;
    ablation;
    txsize;
    noc;
    topology;
    placement;
    protocol_knobs;
    variance;
    latency;
    hytm;
    wasted;
  ]

let find id =
  let needle = String.lowercase_ascii id in
  List.find_opt (fun e -> String.lowercase_ascii e.id = needle) all
