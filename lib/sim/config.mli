(** Machine configurations (Table I and the sensitivity study of
    Section IV-e). *)

(** Cache sizing. [Typical] is Table I (32KB L1, 8MB LLC); [Small] and
    [Large] are the Fig 13 sensitivity points (8KB/1MB and
    128KB/32MB). *)
type cache_profile = Typical | Small | Large

type t = {
  cores : int;
  rows : int;
  cols : int;
  cache : cache_profile;
  protocol : Lk_coherence.Protocol.config;
  link_latency : int;
  router_latency : int;
  noc_contention : bool;
      (** Model per-link occupancy in the mesh (off by default; see
          {!Lk_mesh.Network}). *)
  topology : Lk_mesh.Topology.kind;
      (** Interconnect shape; the paper's machine is a mesh. The
          framework is topology-agnostic (Section III-A), which the
          'topology' experiment exercises. *)
}

val max_cores : int
(** Largest supported machine (1024 cores — the {!Lk_coherence.Coreset}
    directory width). *)

val mesh_shape : int -> int * int
(** [(rows, cols)] for a core count: the largest divisor not exceeding
    the square root, so k*k and 2k*k counts get their exact grid
    (2->1x2, 4->2x2, 8->2x4, ..., 256->16x16, 512->16x32, 1024->32x32)
    and primes degrade to a 1xN chain. Raises [Invalid_argument]
    outside [1, max_cores]. *)

val machine :
  ?cache:cache_profile ->
  ?cores:int ->
  ?noc_contention:bool ->
  ?topology:Lk_mesh.Topology.kind ->
  ?exclusive_state:bool ->
  ?dir_pointers:int option ->
  ?dir_shards:int ->
  ?dir_hash:Lk_coherence.Shard.hash ->
  unit ->
  t
(** Defaults to the paper's 32-core 4x8 tiled CMP: contention-free NoC,
    MESI ([exclusive_state = true]), full-map directory ([dir_pointers
    = None]); the last two are protocol-fidelity ablation knobs, see
    {!Lk_coherence.Protocol.config}. Supported core counts: 1 to
    {!max_cores}, shaped by {!mesh_shape}. [dir_shards] (default [0] =
    one directory shard per tile) and [dir_hash] select the LLC
    directory sharding plan ({!Lk_coherence.Shard}). *)

val cache_profile_name : cache_profile -> string

val cache_profile_id : cache_profile -> string
(** Short machine-readable id: ["typical"], ["small"] or ["large"] —
    used by the CLI flags, the JSON codec and the result cache. *)

val cache_profile_of_id : string -> cache_profile option
(** Inverse of {!cache_profile_id}. *)

val fingerprint : t -> string
(** Canonical one-line rendering of every behaviour-affecting field —
    the machine component of a {!Cache} key. Two machines with equal
    fingerprints produce identical simulations. *)

val table1 : t -> (string * string) list
(** The (component, value) rows of Table I for this machine. *)

val build :
  ?backend:Lk_engine.Event_queue.backend ->
  ?pdes_domains:int ->
  t ->
  Lk_engine.Sim.t * Lk_mesh.Network.t * Lk_coherence.Protocol.t
(** Instantiate the simulator, network and protocol. [backend] selects
    the event-queue implementation (default wheel) and [pdes_domains]
    (default 1, clamped to the core count) the number of PDES
    partitions the kernel splits the pending-event set into, with the
    NoC link latency as the lookahead; results are bit-identical under
    any combination, so neither is part of {!fingerprint}. *)
