(** Machine configurations (Table I and the sensitivity study of
    Section IV-e). *)

(** Cache sizing. [Typical] is Table I (32KB L1, 8MB LLC); [Small] and
    [Large] are the Fig 13 sensitivity points (8KB/1MB and
    128KB/32MB). *)
type cache_profile = Typical | Small | Large

type t = {
  cores : int;
  rows : int;
  cols : int;
  cache : cache_profile;
  protocol : Lk_coherence.Protocol.config;
  link_latency : int;
  router_latency : int;
  noc_contention : bool;
      (** Model per-link occupancy in the mesh (off by default; see
          {!Lk_mesh.Network}). *)
  topology : Lk_mesh.Topology.kind;
      (** Interconnect shape; the paper's machine is a mesh. The
          framework is topology-agnostic (Section III-A), which the
          'topology' experiment exercises. *)
}

val machine :
  ?cache:cache_profile ->
  ?cores:int ->
  ?noc_contention:bool ->
  ?topology:Lk_mesh.Topology.kind ->
  ?exclusive_state:bool ->
  ?dir_pointers:int option ->
  unit ->
  t
(** Defaults to the paper's 32-core 4x8 tiled CMP: contention-free NoC,
    MESI ([exclusive_state = true]), full-map directory ([dir_pointers
    = None]); the last two are protocol-fidelity ablation knobs, see
    {!Lk_coherence.Protocol.config}. Supported core counts: 2, 4, 8,
    16, 32 (tests use the small ones). *)

val cache_profile_name : cache_profile -> string

val cache_profile_id : cache_profile -> string
(** Short machine-readable id: ["typical"], ["small"] or ["large"] —
    used by the CLI flags, the JSON codec and the result cache. *)

val cache_profile_of_id : string -> cache_profile option
(** Inverse of {!cache_profile_id}. *)

val fingerprint : t -> string
(** Canonical one-line rendering of every behaviour-affecting field —
    the machine component of a {!Cache} key. Two machines with equal
    fingerprints produce identical simulations. *)

val table1 : t -> (string * string) list
(** The (component, value) rows of Table I for this machine. *)

val build :
  ?backend:Lk_engine.Event_queue.backend ->
  t ->
  Lk_engine.Sim.t * Lk_mesh.Network.t * Lk_coherence.Protocol.t
(** Instantiate the simulator, network and protocol. [backend] selects
    the event-queue implementation (default wheel); results are
    bit-identical under either, so it is not part of {!fingerprint}. *)
