type open_loop = {
  trace_name : string;
  next : unit -> (Lk_trace.Record.t option, string) result;
  body : Lk_stamp.Workload.profile;
}

type t =
  | Workload of Lk_stamp.Workload.profile
  | Program of { name : string; program : Lk_cpu.Program.t }
  | Replay of open_loop

let name = function
  | Workload p -> p.Lk_stamp.Workload.name
  | Program { name; _ } -> name
  | Replay ol -> ol.trace_name

let of_reader ?(name = "trace") ~body reader =
  Replay { trace_name = name; next = (fun () -> Lk_trace.Stream.read reader); body }
