(** Argument validators shared by the command-line front-ends.

    [bin/lockiller_sim] (cmdliner) and [bench/main] (hand-rolled argv
    loop) parse the same kinds of values; these checks keep their error
    messages identical and in one place. All functions are pure
    [string -> (value, message) result] so either front-end can wrap
    them in its own plumbing. *)

val positive_int : what:string -> string -> (int, string) result
(** Strictly positive integer; [what] names the flag in the message
    (e.g. ["--jobs must be positive (got 0)"]). *)

val non_negative_int : what:string -> string -> (int, string) result
(** Integer >= 0, same message shapes with "non-negative". *)

val cores : what:string -> string -> (int, string) result
(** A machine size: an integer in [1, {!Config.max_cores}]. The error
    message names the supported range (e.g. ["--cores must be a core
    count in 1-1024 (got 2000)"]). *)

val pdes_domains : cores:int -> int -> (int, string) result
(** Cross-field check (run after parsing, once both values are known):
    a PDES partition count must lie in [1, cores] — the engine's
    [Pdes.create] enforces the same bound by raising, this turns it
    into a named usage error. *)

val cache_profile : string -> (Config.cache_profile, string) result
(** One of [typical], [small], [large] (see
    {!Config.cache_profile_of_id}). *)

val writable_path : string -> (string, string) result
(** A path we will later open for writing: non-empty, its parent
    directory exists, and the path itself does not name a directory. *)
