(** Content-addressed on-disk cache of {!Runner.result} records.

    Every simulation is deterministic given its full configuration, so
    a result can be reused across processes: the cache key is an MD5
    digest of a canonical description of everything that affects the
    outcome — schema tag, seed, scale, machine fingerprint
    ({!Config.fingerprint}), placement, cycle limit, oracle flag,
    system composition, every workload-profile field, and the thread
    count. Entries are the {!Runner.result_to_json} encoding, one file
    per entry under [dir/v<schema>/<digest>.json].

    The [on_runtime] hook of {!Runner.options} cannot be fingerprinted;
    callers that set it must bypass the cache (the {!Experiments}
    harness never sets it on cached jobs).

    Bump {!schema_version} whenever the key encoding, the
    {!Runner.result} record or anything feeding a simulation changes
    meaning — old entries then become unreachable (and [clear] deletes
    them wholesale). *)

type t

val schema_version : string

val default_dir : unit -> string
(** [$LOCKILLER_CACHE_DIR], else [$XDG_CACHE_HOME/lockiller], else
    [$HOME/.cache/lockiller], else [.lockiller-cache] in the working
    directory. *)

val create : ?schema:string -> dir:string -> unit -> t
(** Open (and lazily create) the cache rooted at [dir]. [schema]
    defaults to {!schema_version}; tests override it to exercise
    invalidation. *)

val dir : t -> string

val key :
  t ->
  options:Runner.options ->
  sysconf:Lk_lockiller.Sysconf.t ->
  workload:Lk_stamp.Workload.profile ->
  threads:int ->
  string
(** Hex digest naming this job's entry. *)

val find : t -> string -> Runner.result option
(** Look a key up, counting a hit or a miss. Unreadable or corrupt
    entries count as misses. *)

val store : t -> string -> Runner.result -> unit
(** Write-through (atomic rename); errors are swallowed — a read-only
    cache directory degrades to a no-op cache, never a crash. *)

(** {1 Counters} — this process's cache traffic. *)

val hits : t -> int
val misses : t -> int
val stores : t -> int

val persist_counters : t -> unit
(** Fold this process's counters into the cumulative [counters] file
    under the schema directory (read-modify-write, best effort) and
    reset them, so [lockiller_sim cache stats] can report lifetime
    traffic. *)

(** {1 Inspection and eviction} — directory-level, for the CLI. *)

type disk_stats = {
  entries : int;  (** Entry files under the current schema. *)
  bytes : int;  (** Their total size. *)
  stale_entries : int;  (** Entry files under other schema tags. *)
  lifetime_hits : int;
  lifetime_misses : int;
  lifetime_stores : int;
}

val disk_stats : t -> disk_stats

val clear : t -> int
(** Delete every entry (all schema versions) and the counters; returns
    how many entry files were removed. *)
