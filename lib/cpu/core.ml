module Sim = Lk_engine.Sim
module Policy = Lk_htm.Policy
module Txstate = Lk_htm.Txstate
module Sysconf = Lk_lockiller.Sysconf
module Runtime = Lk_lockiller.Runtime

(* A transaction waiting in a stream core's service queue. The body is
   a thunk, not an op list: under open-loop backlog the queue can grow
   long, and a thunk (a closure over a few ints and an RNG) keeps the
   queued footprint O(1) per entry no matter how large the transaction
   it will synthesise. *)
type pending = {
  gen : unit -> Program.transaction;
  notify : started:int -> unit;  (** fired at completion; [started] is
                                     the cycle service began. *)
}

type stream = {
  q : pending Queue.t;
  mutable busy : bool;  (** a transaction is currently in service *)
  mutable sealed : bool;  (** no further [submit]s will arrive *)
}

type t = {
  core : Lk_coherence.Types.core_id;
  rt : Runtime.t;
  sim : Sim.t;
  acct : Accounting.t;
  mutable remaining : Program.transaction list;
  on_done : unit -> unit;
  mutable finished : bool;
  mutable finish_time : int;
  barrier : (Barrier.t * int) option;
  mutable completed_txs : int;
  stream : stream option;
}

let spawn ?barrier ~runtime ~core ~thread ~accounting ~on_done () =
  (match barrier with
  | Some (_, k) when k <= 0 ->
    invalid_arg "Core.spawn: barrier interval must be positive"
  | Some _ | None -> ());
  {
    core;
    rt = runtime;
    sim = Lk_coherence.Protocol.sim (Runtime.protocol runtime);
    acct = accounting;
    remaining = thread;
    on_done;
    finished = false;
    finish_time = 0;
    barrier;
    completed_txs = 0;
    stream = None;
  }

let spawn_stream ~runtime ~core ~accounting ~on_done () =
  {
    core;
    rt = runtime;
    sim = Lk_coherence.Protocol.sim (Runtime.protocol runtime);
    acct = accounting;
    remaining = [];
    on_done;
    finished = false;
    finish_time = 0;
    barrier = None;
    completed_txs = 0;
    stream = Some { q = Queue.create (); busy = false; sealed = false };
  }

let finished t = t.finished
let finish_time t = t.finish_time
let transactions_left t = List.length t.remaining

let backlog t =
  match t.stream with
  | None -> 0
  | Some s -> Queue.length s.q + if s.busy then 1 else 0

let now t = Sim.now t.sim

let account t cat cycles = Accounting.add t.acct ~core:t.core cat cycles

(* Local compute: one instruction per cycle. *)
let compute t n cat k =
  if n <= 0 then k ()
  else begin
    Runtime.add_insts t.rt t.core n;
    Sim.schedule_tile t.sim ~tile:t.core ~delay:n (fun () ->
        account t cat n;
        k ())
  end

(* Execute a critical-section body. [epoch] is the transaction epoch to
   watch for asynchronous aborts ([None] for irrevocable / plain
   execution, which cannot abort). Completion reports [`Done] or
   [`Aborted]. *)
let exec_ops t ~epoch ops k =
  let ctx = Runtime.ctx t.rt t.core in
  let dead () =
    match epoch with Some e -> ctx.Txstate.epoch <> e | None -> false
  in
  let rec go = function
    | [] -> k `Done
    | op :: rest ->
      if dead () then k `Aborted
      else begin
        match (op : Program.op) with
        | Program.Compute n ->
          Runtime.add_insts t.rt t.core n;
          Sim.schedule_tile t.sim ~tile:t.core ~delay:(max n 0) (fun () ->
              if dead () then k `Aborted else go rest)
        | Program.Read addr ->
          Runtime.read t.rt t.core ~addr ~k:(function
            | Runtime.Ok _ -> go rest
            | Runtime.Tx_aborted -> k `Aborted)
        | Program.Write (addr, value) ->
          Runtime.write t.rt t.core ~addr ~value ~k:(function
            | Runtime.Ok _ -> go rest
            | Runtime.Tx_aborted -> k `Aborted)
        | Program.Incr addr ->
          Runtime.fetch_add t.rt t.core ~addr ~delta:1 ~k:(function
            | Runtime.Ok _ -> go rest
            | Runtime.Tx_aborted -> k `Aborted)
        | Program.Add (addr, delta) ->
          Runtime.fetch_add t.rt t.core ~addr ~delta ~k:(function
            | Runtime.Ok _ -> go rest
            | Runtime.Tx_aborted -> k `Aborted)
        | Program.Fault ->
          Runtime.fault t.rt t.core ~k:(function
            | `Died -> k `Aborted
            | `Survived cost ->
              Sim.schedule_tile t.sim ~tile:t.core ~delay:cost (fun () ->
                  if dead () then k `Aborted else go rest))
      end
  in
  go ops

(* Spin (with backoff, polling through the coherence protocol) until
   the fallback lock reads free. Time spent is waiting-for-lock. *)
let wait_lock_free t k =
  let retry =
    { (Runtime.sysconf t.rt).Sysconf.retry with
      Policy.backoff_base = 16;
      backoff_cap = 128;
    }
  in
  (* Loop state in refs so the three closures below are allocated once
     per wait, not once per poll iteration. *)
  let attempt = ref 0 in
  let t0 = ref 0 in
  let pause = ref 0 in
  let rec poll () =
    t0 := now t;
    Runtime.read t.rt t.core ~addr:(Runtime.lock_addr t.rt) ~k:on_read
  and on_read _ =
    account t Accounting.Wait_lock (now t - !t0);
    if Runtime.lock_held t.rt then begin
      pause := Policy.backoff_delay retry ~attempt:!attempt;
      incr attempt;
      Sim.schedule_tile t.sim ~tile:t.core ~delay:!pause on_pause
    end
    else k ()
  and on_pause () =
    account t Accounting.Wait_lock !pause;
    poll ()
  in
  poll ()

(* Abort cleanup: the architectural penalty plus the software backoff
   of the retry strategy. *)
let rollback_pause t ~attempt k =
  let costs = Runtime.costs t.rt in
  let retry = (Runtime.sysconf t.rt).Sysconf.retry in
  let ctx = Runtime.ctx t.rt t.core in
  let fault_extra =
    match ctx.Txstate.pending_abort with
    | Some Lk_htm.Reason.Fault -> costs.Runtime.fault_abort_penalty
    | Some _ | None -> 0
  in
  let pause =
    costs.Runtime.abort_penalty + fault_extra
    + Policy.backoff_delay retry ~attempt
  in
  Sim.schedule_tile t.sim ~tile:t.core ~delay:pause (fun () ->
      account t Accounting.Rollback pause;
      k ())

(* The fallback path: acquire the lock, then run either as an HTMLock
   lock transaction (TL) or as a plain non-speculative critical
   section. *)
let fallback t (tx : Program.transaction) k =
  let sysconf = Runtime.sysconf t.rt in
  let w0 = now t in
  Runtime.lock_acquire t.rt t.core ~k:(fun () ->
      account t Accounting.Wait_lock (now t - w0);
      if sysconf.Sysconf.htmlock then
        let a0 = now t in
        Runtime.hlbegin t.rt t.core ~k:(fun () ->
            account t Accounting.Wait_lock (now t - a0);
            let b0 = now t in
            exec_ops t ~epoch:None tx.Program.ops (fun _ ->
                Runtime.hlend t.rt t.core ~k:(fun () ->
                    Runtime.lock_release t.rt t.core ~k:(fun () ->
                        account t Accounting.Lock (now t - b0);
                        k ()))))
      else begin
        let b0 = now t in
        Runtime.plain_section_begin t.rt t.core;
        exec_ops t ~epoch:None tx.Program.ops (fun _ ->
            Runtime.plain_section_end t.rt t.core;
            Runtime.lock_release t.rt t.core ~k:(fun () ->
                Runtime.note_lock_commit t.rt t.core;
                account t Accounting.Lock (now t - b0);
                k ()))
      end)

(* One critical section under the HTM systems: try speculatively up to
   max_retries times, then fall back — to the lock ([Cgl_lock]) or to
   the TL2-style software path ([Tl2]). *)
let rec attempt t (tx : Program.transaction) k =
  let sysconf = Runtime.sysconf t.rt in
  let ctx = Runtime.ctx t.rt t.core in
  let tl2 = sysconf.Sysconf.fallback = Policy.Tl2 in
  if ctx.Txstate.attempt >= sysconf.Sysconf.retry.Policy.max_retries then
    if tl2 then software t tx k else fallback t tx k
  else begin
    let t0 = now t in
    Runtime.xbegin t.rt t.core ~k:(function
      | `Busy ->
        (* The fallback lock was held (or, under [Tl2], the software
           gate / commit flag was raised, or the transaction died
           during subscription): wasted attempt. Under the lock
           fallback, wait for the lock before retrying; under [Tl2]
           there is no lock to wait for — back off and retry. *)
        account t Accounting.Aborted (now t - t0);
        ctx.Txstate.attempt <- ctx.Txstate.attempt + 1;
        rollback_pause t ~attempt:ctx.Txstate.attempt (fun () ->
            if tl2 then attempt t tx k
            else wait_lock_free t (fun () -> attempt t tx k))
      | `Started ->
        let epoch = ctx.Txstate.epoch in
        exec_ops t ~epoch:(Some epoch) tx.Program.ops (function
          | `Aborted ->
            account t Accounting.Aborted (now t - t0);
            ctx.Txstate.attempt <- ctx.Txstate.attempt + 1;
            (* retry_strategy(xstatus): a fault cannot succeed on retry
               — go straight to the fallback path. A capacity overflow
               gets one more attempt (associativity pressure can be
               timing-dependent) and then falls back too. *)
            (match ctx.Txstate.pending_abort with
            | Some Lk_htm.Reason.Fault ->
              ctx.Txstate.attempt <-
                sysconf.Sysconf.retry.Policy.max_retries
            | Some Lk_htm.Reason.Capacity ->
              ctx.Txstate.attempt <-
                max ctx.Txstate.attempt
                  (sysconf.Sysconf.retry.Policy.max_retries - 1)
            | Some _ | None -> ());
            rollback_pause t ~attempt:ctx.Txstate.attempt (fun () ->
                attempt t tx k)
          | `Done -> (
            (* Listing 2: dispatch the release path on the extended
               ttest. *)
            match Runtime.ttest t.rt t.core with
            | Txstate.Stl ->
              Runtime.hlend t.rt t.core ~k:(fun () ->
                  account t Accounting.Switch_lock (now t - t0);
                  k ())
            | Txstate.Htm ->
              Runtime.xend t.rt t.core ~k:(fun () ->
                  if ctx.Txstate.epoch <> epoch then begin
                    (* killed during the commit window *)
                    account t Accounting.Aborted (now t - t0);
                    ctx.Txstate.attempt <- ctx.Txstate.attempt + 1;
                    rollback_pause t ~attempt:ctx.Txstate.attempt (fun () ->
                        attempt t tx k)
                  end
                  else begin
                    account t Accounting.Htm (now t - t0);
                    k ()
                  end)
            | Txstate.Tl | Txstate.Idle | Txstate.Sw ->
              failwith "Core.attempt: unexpected mode at commit")))
  end

(* The TL2-style software path of the hybrid-TM comparators: read
   instrumented, writes buffered, commit-time lock + validate +
   publish. Software transactions cannot be killed by hardware, but
   their own reads and commits abort on locked slots, stale versions
   and failed validation — each such abort backs off and retries the
   software path (never the hardware one: a transaction that fell
   through to software stays there, the classic HyTM discipline). *)
and software t (tx : Program.transaction) k =
  let ctx = Runtime.ctx t.rt t.core in
  let t0 = now t in
  let retry_sw () =
    account t Accounting.Aborted (now t - t0);
    ctx.Txstate.attempt <- ctx.Txstate.attempt + 1;
    rollback_pause t ~attempt:ctx.Txstate.attempt (fun () ->
        software t tx k)
  in
  Runtime.swbegin t.rt t.core ~k:(fun () ->
      let epoch = ctx.Txstate.epoch in
      exec_ops t ~epoch:(Some epoch) tx.Program.ops (function
        | `Aborted -> retry_sw ()
        | `Done ->
          Runtime.sw_commit t.rt t.core ~k:(function
            | `Aborted -> retry_sw ()
            | `Committed ->
              account t Accounting.Sw (now t - t0);
              k ())))

let critical t (tx : Program.transaction) k =
  let sysconf = Runtime.sysconf t.rt in
  let ctx = Runtime.ctx t.rt t.core in
  let done_ () =
    ctx.Txstate.attempt <- 0;
    k ()
  in
  match sysconf.Sysconf.kind with
  | Sysconf.Cgl ->
    let w0 = now t in
    Runtime.lock_acquire t.rt t.core ~k:(fun () ->
        account t Accounting.Wait_lock (now t - w0);
        let b0 = now t in
        Runtime.plain_section_begin t.rt t.core;
        exec_ops t ~epoch:None tx.Program.ops (fun _ ->
            Runtime.plain_section_end t.rt t.core;
            Runtime.lock_release t.rt t.core ~k:(fun () ->
                account t Accounting.Lock (now t - b0);
                done_ ())))
  | Sysconf.Htm -> attempt t tx done_

(* Phase synchronisation: after every [every]-th transaction, park at
   the barrier; the wait is non-tran time ("non-tran and barrier"). *)
let sync_phase t k =
  match t.barrier with
  | Some (b, every)
    when t.completed_txs mod every = 0 && t.remaining <> [] ->
    let t0 = now t in
    Barrier.wait b ~sim:t.sim ~k:(fun () ->
        account t Accounting.Non_tran (now t - t0);
        k ())
  | Some _ | None -> k ()

let rec run t = function
  | [] ->
    t.finished <- true;
    t.finish_time <- now t;
    t.on_done ()
  | tx :: rest ->
    (* The thread loop mutates this core's progress state; declare it
       to the partition-ownership race detector. *)
    Runtime.witness_core t.rt t.core;
    t.remaining <- tx :: rest;
    compute t tx.Program.pre_compute Accounting.Non_tran (fun () ->
        critical t tx (fun () ->
            compute t tx.Program.post_compute Accounting.Non_tran (fun () ->
                t.remaining <- rest;
                t.completed_txs <- t.completed_txs + 1;
                sync_phase t (fun () -> run t rest))))

let start t =
  match t.stream with
  | Some _ -> invalid_arg "Core.start: stream core (use submit/seal)"
  | None -> run t t.remaining

(* Open-loop service loop: pop the next pending arrival, synthesise its
   body, run it through the same pre/critical/post pipeline as the
   closed-loop path, report completion, repeat until the queue drains.
   The core finishes when drained *and* sealed. *)
let rec pump t s =
  if Queue.is_empty s.q then begin
    s.busy <- false;
    if s.sealed && not t.finished then begin
      t.finished <- true;
      t.finish_time <- now t;
      t.on_done ()
    end
  end
  else begin
    Runtime.witness_core t.rt t.core;
    s.busy <- true;
    let p = Queue.pop s.q in
    let started = now t in
    let tx = p.gen () in
    compute t tx.Program.pre_compute Accounting.Non_tran (fun () ->
        critical t tx (fun () ->
            compute t tx.Program.post_compute Accounting.Non_tran (fun () ->
                t.completed_txs <- t.completed_txs + 1;
                p.notify ~started;
                pump t s)))
  end

let submit t ~gen ~notify =
  match t.stream with
  | None -> invalid_arg "Core.submit: not a stream core"
  | Some s ->
    if s.sealed then invalid_arg "Core.submit: stream already sealed";
    Queue.push { gen; notify } s.q;
    if not s.busy then pump t s

let seal t =
  match t.stream with
  | None -> invalid_arg "Core.seal: not a stream core"
  | Some s ->
    s.sealed <- true;
    if not s.busy then pump t s
