(** Execution-time breakdown, in the categories of Fig 9 and Fig 11.

    Every simulated cycle of every participating core is attributed to
    exactly one category:

    - [Htm]: speculative work of attempts that committed.
    - [Aborted]: speculative work that was rolled back.
    - [Lock]: critical sections executed under the lock (fallback path
      or TL-mode lock transactions).
    - [Switch_lock]: whole transactions that proactively switched to
      HTMLock mode and committed there (Fig 11's new category).
    - [Non_tran]: non-transactional work and end-of-run imbalance
      ("non-tran and barrier").
    - [Wait_lock]: waiting to acquire a lock (spinning, or waiting for
      the fallback lock / LLC authorization to free up).
    - [Rollback]: abort penalties and inter-retry backoff.
    - [Sw]: critical sections that committed on the TL2-style software
      fallback path of the hybrid-TM comparators (instrumented reads,
      buffered writes, commit-time validation). *)

type category =
  | Htm
  | Aborted
  | Lock
  | Switch_lock
  | Non_tran
  | Wait_lock
  | Rollback
  | Sw

val categories : category list
(** Presentation order of the paper's figures. *)

val label : category -> string

type t

val create : cores:int -> t

val add : t -> core:Lk_coherence.Types.core_id -> category -> int -> unit
(** Attribute [cycles] (non-negative) to a category. *)

val per_core : t -> core:Lk_coherence.Types.core_id -> (category * int) list

val total : t -> (category * int) list
(** Summed over cores, in [categories] order. *)

val grand_total : t -> int

val fraction : t -> category -> float
(** Share of the grand total; 0 when nothing recorded. *)

val pp : Format.formatter -> t -> unit
