type category =
  | Htm
  | Aborted
  | Lock
  | Switch_lock
  | Non_tran
  | Wait_lock
  | Rollback
  | Sw

let categories =
  [ Htm; Aborted; Lock; Switch_lock; Non_tran; Wait_lock; Rollback; Sw ]

let index = function
  | Htm -> 0
  | Aborted -> 1
  | Lock -> 2
  | Switch_lock -> 3
  | Non_tran -> 4
  | Wait_lock -> 5
  | Rollback -> 6
  | Sw -> 7

let label = function
  | Htm -> "htm"
  | Aborted -> "aborted"
  | Lock -> "lock"
  | Switch_lock -> "switchLock"
  | Non_tran -> "non-tran"
  | Wait_lock -> "waitlock"
  | Rollback -> "rollback"
  | Sw -> "sw"

let ncats = List.length categories

type t = { cells : int array array }

let create ~cores =
  if cores <= 0 then invalid_arg "Accounting.create: cores must be positive";
  { cells = Array.init cores (fun _ -> Array.make ncats 0) }

let add t ~core cat cycles =
  if cycles < 0 then invalid_arg "Accounting.add: negative cycles";
  let row = t.cells.(core) in
  row.(index cat) <- row.(index cat) + cycles

let per_core t ~core =
  List.map (fun cat -> (cat, t.cells.(core).(index cat))) categories

let total t =
  List.map
    (fun cat ->
      (cat, Array.fold_left (fun acc row -> acc + row.(index cat)) 0 t.cells))
    categories

let grand_total t = List.fold_left (fun acc (_, n) -> acc + n) 0 (total t)

let fraction t cat =
  let all = grand_total t in
  if all = 0 then 0.0
  else
    let n = List.assoc cat (total t) in
    float_of_int n /. float_of_int all

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (cat, n) -> Format.fprintf ppf "%-10s %10d@," (label cat) n)
    (total t);
  Format.fprintf ppf "@]"
