(** In-order core model: executes one thread program through the
    transactional runtime.

    The core implements the software side of the paper: the
    [lock_acquire_elided] / [lock_release_elided] idioms of Listing 1
    (best-effort HTM with fallback-lock subscription) and Listing 2
    (HTMLock + switchingMode release dispatch on the extended ttest),
    the retry strategy with bounded attempts and exponential backoff,
    and the CGL baseline. It also attributes every cycle to an
    {!Accounting.category}. *)

type t

val spawn :
  ?barrier:Barrier.t * int ->
  runtime:Lk_lockiller.Runtime.t ->
  core:Lk_coherence.Types.core_id ->
  thread:Program.thread ->
  accounting:Accounting.t ->
  on_done:(unit -> unit) ->
  unit ->
  t
(** Create a core bound to [core]'s L1/tile. Nothing runs until
    {!start}. [barrier = (b, k)] makes the thread synchronise on [b]
    after every [k] completed transactions (phase-structured workloads);
    every participating thread must use the same [k] and have the same
    transaction count. Barrier wait time is accounted as non-tran, as
    in the paper's breakdown. *)

val start : t -> unit
(** Begin executing at the current simulated cycle. [on_done] fires
    when the thread program is exhausted. Invalid on a stream core. *)

val finished : t -> bool
val finish_time : t -> int
(** Cycle at which the thread completed (meaningful once [finished]). *)

val transactions_left : t -> int

(** {1 Open-loop streaming mode}

    A stream core has no pre-built thread program: transactions are
    {!submit}ted while the simulation runs (trace replay), queue at the
    core, and are served in FIFO order through the same
    pre-compute/critical-section/post-compute pipeline as closed-loop
    threads. Queued entries hold a body {e thunk}, not an op list, so a
    deep backlog costs O(1) memory per waiting transaction. *)

val spawn_stream :
  runtime:Lk_lockiller.Runtime.t ->
  core:Lk_coherence.Types.core_id ->
  accounting:Accounting.t ->
  on_done:(unit -> unit) ->
  unit ->
  t
(** Create an open-loop core. [on_done] fires once the core has been
    {!seal}ed and its queue has drained. *)

val submit :
  t -> gen:(unit -> Program.transaction) -> notify:(started:int -> unit) -> unit
(** Enqueue an arrival. [gen] is forced only when service begins;
    [notify ~started] fires at completion with the cycle service began
    (so the caller can split queueing delay from sojourn time). Invalid
    on a non-stream core or after {!seal}. *)

val seal : t -> unit
(** Declare the arrival stream exhausted; the core finishes when its
    queue drains (immediately if already empty). *)

val backlog : t -> int
(** Arrivals submitted but not yet completed (stream cores; 0
    otherwise). *)
