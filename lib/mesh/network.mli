(** Interconnect latency model and traffic accounting.

    Latency of one message = per-hop cost (link latency + router
    latency) x hops + serialisation cycles of the message class. Links
    are 1 flit/cycle (Table I).

    Two fidelity levels: the default model is contention-free — the
    atomic-directory protocol (see DESIGN.md) already serialises
    same-line traffic, which is where HTM contention manifests — while
    [~contention:true] additionally reserves per-link occupancy
    (wormhole style: each flit holds a link for one cycle) so that a
    congested link delays later messages. Every traversal is accounted
    per link either way, so utilisation reports can expose hotspots. *)

type t

val create :
  ?link_latency:int ->
  ?router_latency:int ->
  ?contention:bool ->
  Topology.t ->
  t
(** Defaults: 1-cycle links (Table I), 1-cycle routers, no contention. *)

val contention : t -> bool

val topology : t -> Topology.t

val latency : t -> src:int -> dst:int -> class_:Message.class_ -> int
(** Cycles for one message from tile [src] to tile [dst]. A local
    message ([src = dst]) only pays serialisation. *)

val send :
  ?now:int -> t -> src:int -> dst:int -> class_:Message.class_ -> int
(** Like [latency] but also records the traversal in the traffic
    counters and, under the contention model, reserves link occupancy
    starting at [now] (default 0; pass the current simulated cycle).
    Returns the latency, including any queueing delay. *)

val queueing_cycles : t -> int
(** Total cycles messages spent queueing for busy links (0 without the
    contention model). *)

val messages_sent : t -> int
val flits_sent : t -> int

val num_links : t -> int
(** Size of the per-link flit-counter array (= [Topology.num_links]). *)

val link_flits : t -> int -> int
(** Cumulative flits carried by link index [i] (see
    {!Topology.link_index}). Allocation-free, for the telemetry
    sampler; {!link_utilisation} presents the same data as a sorted
    association list. *)

val link_utilisation : t -> (Topology.link * int) list
(** Flit count per directed link, non-zero links only, densest first. *)

val stats : t -> Lk_engine.Stats.group

val reset_traffic : t -> unit
