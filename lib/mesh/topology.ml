type kind = Mesh | Torus | Ring | Crossbar

type t = { kind : kind; rows : int; cols : int }

type link = { from_tile : int; to_tile : int }

let kind t = t.kind

let kind_name = function
  | Mesh -> "mesh"
  | Torus -> "torus"
  | Ring -> "ring"
  | Crossbar -> "crossbar"

let create ~rows ~cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg "Topology.create: dimensions must be positive";
  { kind = Mesh; rows; cols }

let create_torus ~rows ~cols =
  if rows < 3 || cols < 3 then
    invalid_arg "Topology.create_torus: dimensions must be at least 3";
  { kind = Torus; rows; cols }

let create_ring ~tiles =
  if tiles < 3 then invalid_arg "Topology.create_ring: need at least 3 tiles";
  { kind = Ring; rows = 1; cols = tiles }

let create_crossbar ~tiles =
  if tiles < 2 then
    invalid_arg "Topology.create_crossbar: need at least 2 tiles";
  { kind = Crossbar; rows = 1; cols = tiles }

let rows t = t.rows
let cols t = t.cols
let tiles t = t.rows * t.cols

let check_tile t id name =
  if id < 0 || id >= tiles t then
    invalid_arg
      ("Topology." ^ name ^ ": tile " ^ string_of_int id ^ " out of range")

(* Signed step of minimal magnitude from [a] to [b] on an axis of size
   [n], with and without wrap-around. Ties (exactly half-way on a wrap
   axis) go in the positive direction. *)
let mesh_step a b = Int.compare b a
let wrap_step n a b =
  if a = b then 0
  else
    let fwd = (b - a + n) mod n in
    if fwd <= n - fwd then 1 else -1

let mesh_distance t src dst =
  let sc = Coord.of_tile ~cols:t.cols src in
  let dc = Coord.of_tile ~cols:t.cols dst in
  Coord.manhattan sc dc

let wrap_axis_distance n a b =
  let fwd = (b - a + n) mod n in
  Int.min fwd (n - fwd)

let distance t ~src ~dst =
  match t.kind with
  | Mesh -> mesh_distance t src dst
  | Torus ->
    let sc = Coord.of_tile ~cols:t.cols src in
    let dc = Coord.of_tile ~cols:t.cols dst in
    wrap_axis_distance t.cols sc.Coord.col dc.Coord.col
    + wrap_axis_distance t.rows sc.Coord.row dc.Coord.row
  | Ring -> wrap_axis_distance (tiles t) src dst
  | Crossbar -> if src = dst then 0 else 1

let hops t ~src ~dst =
  check_tile t src "hops";
  check_tile t dst "hops";
  distance t ~src ~dst

(* X first (columns), then Y (rows); on the torus each axis goes the
   shorter way around. *)
let grid_route t ~src ~dst ~wrap =
  let sc = Coord.of_tile ~cols:t.cols src in
  let dc = Coord.of_tile ~cols:t.cols dst in
  let acc = ref [] in
  let cur = ref sc in
  let step next =
    let from_tile = Coord.to_tile ~cols:t.cols !cur in
    let to_tile = Coord.to_tile ~cols:t.cols next in
    acc := { from_tile; to_tile } :: !acc;
    cur := next
  in
  let advance axis_size get set =
    let dir_of a b =
      if wrap then wrap_step axis_size a b else mesh_step a b
    in
    let rec go () =
      let a = get !cur and b = get dc in
      if a <> b then begin
        let next_pos = (a + dir_of a b + axis_size) mod axis_size in
        step (set !cur next_pos);
        go ()
      end
    in
    go ()
  in
  advance t.cols
    (fun c -> c.Coord.col)
    (fun c col -> { c with Coord.col });
  advance t.rows
    (fun c -> c.Coord.row)
    (fun c row -> { c with Coord.row });
  List.rev !acc

let ring_route t ~src ~dst =
  let n = tiles t in
  let dir = wrap_step n src dst in
  let rec go cur acc =
    if cur = dst then List.rev acc
    else
      let next = (cur + dir + n) mod n in
      go next ({ from_tile = cur; to_tile = next } :: acc)
  in
  go src []

let route t ~src ~dst =
  check_tile t src "route";
  check_tile t dst "route";
  if src = dst then []
  else
    match t.kind with
    | Mesh -> grid_route t ~src ~dst ~wrap:false
    | Torus -> grid_route t ~src ~dst ~wrap:true
    | Ring -> ring_route t ~src ~dst
    | Crossbar -> [ { from_tile = src; to_tile = dst } ]

let grid_neighbours t id ~wrap =
  let c = Coord.of_tile ~cols:t.cols id in
  let mk row col =
    if wrap then
      Some
        (Coord.to_tile ~cols:t.cols
           {
             Coord.row = (row + t.rows) mod t.rows;
             col = (col + t.cols) mod t.cols;
           })
    else if row >= 0 && row < t.rows && col >= 0 && col < t.cols then
      Some (Coord.to_tile ~cols:t.cols { Coord.row = row; col })
    else None
  in
  List.filter_map Fun.id
    [
      mk (c.Coord.row - 1) c.Coord.col;
      mk (c.Coord.row + 1) c.Coord.col;
      mk c.Coord.row (c.Coord.col - 1);
      mk c.Coord.row (c.Coord.col + 1);
    ]

let links t =
  match t.kind with
  | Mesh | Torus ->
    let wrap = t.kind = Torus in
    List.concat
      (List.init (tiles t) (fun id ->
           grid_neighbours t id ~wrap
           |> List.sort_uniq Int.compare
           |> List.map (fun n -> { from_tile = id; to_tile = n })))
  | Ring ->
    let n = tiles t in
    List.concat
      (List.init n (fun id ->
           [
             { from_tile = id; to_tile = (id + 1) mod n };
             { from_tile = id; to_tile = (id + n - 1) mod n };
           ]))
  | Crossbar ->
    let n = tiles t in
    List.concat
      (List.init n (fun a ->
           List.filter_map
             (fun b -> if a = b then None else Some { from_tile = a; to_tile = b })
             (List.init n Fun.id)))

(* Directions are encoded 0..3 (N/S/W/E) for the grid-like topologies so
   indices stay dense at [tile * 4 + dir]; the crossbar uses the full
   [from * tiles + to] square. *)
let link_index t { from_tile; to_tile } =
  check_tile t from_tile "link_index";
  check_tile t to_tile "link_index";
  match t.kind with
  | Crossbar ->
    if from_tile = to_tile then
      invalid_arg "Topology.link_index: tiles are not adjacent";
    (from_tile * tiles t) + to_tile
  | Ring ->
    let n = tiles t in
    let dir =
      if to_tile = (from_tile + 1) mod n then 3 (* "east": clockwise *)
      else if to_tile = (from_tile + n - 1) mod n then 2 (* "west" *)
      else invalid_arg "Topology.link_index: tiles are not adjacent"
    in
    (from_tile * 4) + dir
  | Mesh | Torus ->
    let wrap = t.kind = Torus in
    let f = Coord.of_tile ~cols:t.cols from_tile in
    let g = Coord.of_tile ~cols:t.cols to_tile in
    let row_delta =
      if wrap then
        let d = (g.Coord.row - f.Coord.row + t.rows) mod t.rows in
        if d = 0 then 0 else if d = 1 then 1 else if d = t.rows - 1 then -1 else 2
      else g.Coord.row - f.Coord.row
    in
    let col_delta =
      if wrap then
        let d = (g.Coord.col - f.Coord.col + t.cols) mod t.cols in
        if d = 0 then 0 else if d = 1 then 1 else if d = t.cols - 1 then -1 else 2
      else g.Coord.col - f.Coord.col
    in
    let dir =
      match (row_delta, col_delta) with
      | -1, 0 -> 0 (* N *)
      | 1, 0 -> 1 (* S *)
      | 0, -1 -> 2 (* W *)
      | 0, 1 -> 3 (* E *)
      | _ -> invalid_arg "Topology.link_index: tiles are not adjacent"
    in
    (from_tile * 4) + dir

let num_links t =
  match t.kind with
  | Crossbar -> tiles t * tiles t
  | Mesh | Torus | Ring -> tiles t * 4

let pp ppf t =
  match t.kind with
  | Mesh -> Format.fprintf ppf "%dx%d mesh (%d tiles)" t.rows t.cols (tiles t)
  | Torus -> Format.fprintf ppf "%dx%d torus (%d tiles)" t.rows t.cols (tiles t)
  | Ring -> Format.fprintf ppf "ring of %d tiles" (tiles t)
  | Crossbar -> Format.fprintf ppf "crossbar of %d tiles" (tiles t)
