module Stats = Lk_engine.Stats

type t = {
  topology : Topology.t;
  link_latency : int;
  router_latency : int;
  contention : bool;
  link_flits : int array;
  (* Under the contention model: first cycle at which each link is free
     again. *)
  link_free : int array;
  stats : Stats.group;
  messages : Stats.counter;
  flits : Stats.counter;
  queueing : Stats.counter;
}

let create ?(link_latency = 1) ?(router_latency = 1) ?(contention = false)
    topology =
  if link_latency < 0 || router_latency < 0 then
    invalid_arg "Network.create: negative latency";
  let stats = Stats.group "network" in
  {
    topology;
    link_latency;
    router_latency;
    contention;
    link_flits = Array.make (Topology.num_links topology) 0;
    link_free = Array.make (Topology.num_links topology) 0;
    stats;
    messages = Stats.counter stats "messages";
    flits = Stats.counter stats "flits";
    queueing = Stats.counter stats "queueing_cycles";
  }

let contention t = t.contention

let topology t = t.topology

let latency t ~src ~dst ~class_ =
  let hops = Topology.hops t.topology ~src ~dst in
  (hops * (t.link_latency + t.router_latency))
  + Message.serialization_cycles class_

let send ?(now = 0) t ~src ~dst ~class_ =
  let flits = Message.flits class_ in
  Stats.incr t.messages;
  Stats.add t.flits flits;
  let route = Topology.route t.topology ~src ~dst in
  List.iter
    (fun link ->
      let i = Topology.link_index t.topology link in
      t.link_flits.(i) <- t.link_flits.(i) + flits)
    route;
  if not t.contention then latency t ~src ~dst ~class_
  else begin
    (* Wormhole reservation: the head flit advances hop by hop, waiting
       for each link to drain earlier messages; the body (flits - 1)
       follows pipelined behind it. *)
    let cursor = ref now in
    let queued = ref 0 in
    List.iter
      (fun link ->
        let i = Topology.link_index t.topology link in
        let start = Int.max !cursor t.link_free.(i) in
        queued := !queued + (start - !cursor);
        t.link_free.(i) <- start + flits;
        cursor := start + t.link_latency + t.router_latency)
      route;
    Stats.add t.queueing !queued;
    !cursor - now + Message.serialization_cycles class_
  end

let queueing_cycles t = Stats.value t.queueing

let messages_sent t = Stats.value t.messages
let flits_sent t = Stats.value t.flits
let num_links t = Array.length t.link_flits
let link_flits t i = t.link_flits.(i)

let link_utilisation t =
  Topology.links t.topology
  |> List.filter_map (fun link ->
         let n = t.link_flits.(Topology.link_index t.topology link) in
         if n > 0 then Some (link, n) else None)
  |> List.sort (fun (_, a) (_, b) -> Int.compare b a)

let stats t = t.stats

let reset_traffic t =
  Array.fill t.link_flits 0 (Array.length t.link_flits) 0;
  Array.fill t.link_free 0 (Array.length t.link_free) 0;
  Stats.reset t.stats
