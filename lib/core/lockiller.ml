module Engine = Lk_engine
module Mesh = Lk_mesh
module Coherence = Lk_coherence
module Htm = Lk_htm
module Mechanisms = Lk_lockiller
module Cpu = Lk_cpu
module Stamp = Lk_stamp
module Trace = Lk_trace
module Sim = Lk_sim
module Check = Lk_check

let version = "1.0.0"

let systems =
  List.map (fun s -> s.Lk_lockiller.Sysconf.name) Lk_lockiller.Sysconf.all

let hybrid_systems =
  List.map (fun s -> s.Lk_lockiller.Sysconf.name) Lk_lockiller.Sysconf.hybrid

let workloads = Lk_stamp.Suite.names

let lookup ~system ~workload =
  match Lk_lockiller.Sysconf.find system with
  | None ->
    Error
      (Printf.sprintf "unknown system %S (expected one of: %s)" system
         (String.concat ", " systems))
  | Some sysconf -> (
    match Lk_stamp.Suite.find workload with
    | None ->
      Error
        (Printf.sprintf "unknown workload %S (expected one of: %s)" workload
           (String.concat ", " workloads))
    | Some profile -> Ok (sysconf, profile))

let run ?(seed = 1) ?(scale = 1.0) ?(cache = Lk_sim.Config.Typical)
    ?(cores = 32) ~system ~workload ~threads () =
  match lookup ~system ~workload with
  | Error _ as e -> e
  | Ok (sysconf, profile) -> (
    match
      Lk_sim.Runner.run
        ~options:
          {
            Lk_sim.Runner.default_options with
            seed;
            scale;
            machine = Lk_sim.Config.machine ~cache ~cores ();
          }
        ~sysconf ~workload:profile ~threads ()
    with
    | r -> Ok r
    | exception (Invalid_argument msg | Failure msg) -> Error msg)

let run_text ?(cache = Lk_sim.Config.Typical) ?(cores = 32) ~system ~program
    () =
  match Lk_lockiller.Sysconf.find system with
  | None -> Error (Printf.sprintf "unknown system %S" system)
  | Some sysconf -> (
    match Lk_cpu.Program.of_text program with
    | Error msg -> Error msg
    | Ok program -> (
      match
        Lk_sim.Runner.run_program
          ~options:
            {
              Lk_sim.Runner.default_options with
              machine = Lk_sim.Config.machine ~cache ~cores ();
            }
          ~sysconf ~program ()
      with
      | r -> Ok r
      | exception (Invalid_argument msg | Failure msg) -> Error msg))

let speedup_vs_cgl ?seed ?scale ?cache ?cores ~system ~workload ~threads () =
  match run ?seed ?scale ?cache ?cores ~system ~workload ~threads () with
  | Error _ as e -> e
  | Ok r -> (
    match run ?seed ?scale ?cache ?cores ~system:"CGL" ~workload ~threads () with
    | Error _ as e -> e
    | Ok cgl ->
      Ok
        (Lk_sim.Metrics.speedup ~baseline_cycles:cgl.Lk_sim.Runner.cycles
           ~cycles:r.Lk_sim.Runner.cycles))
