(** LockillerTM — public facade.

    A reproduction of "LockillerTM: Enhancing Performance Lower Bounds
    in Best-Effort Hardware Transactional Memory" (Wan, Chao, Li, Han;
    IPPS 2024) as a discrete-event simulator of a tiled CMP with MESI
    directory coherence, best-effort HTM, and the paper's three
    mechanisms (recovery, HTMLock, switchingMode).

    This module is the stable entry point: name a system from Table II
    and a STAMP workload, pick a thread count, get the paper's metrics
    back. The subsystem libraries are re-exported for programmatic use
    (building custom machines, workloads or systems). *)

(** {1 Subsystems} *)

module Engine = Lk_engine
(** Discrete-event kernel: simulation clock, event queue, RNG, stats. *)

module Mesh = Lk_mesh
(** 2-D mesh NoC: topology, X-Y routing, latency model. *)

module Coherence = Lk_coherence
(** MESI directory protocol with transactional conflict hooks. *)

module Htm = Lk_htm
(** Best-effort HTM building blocks: abort reasons, value layer,
    policies, per-core transaction state. *)

module Mechanisms = Lk_lockiller
(** The paper's contribution: recovery (NACK/reject + wake-up),
    priorities, HTMLock (TL + overflow signatures), switchingMode
    (STL + LLC arbitration), and the runtime tying them together. *)

module Cpu = Lk_cpu
(** In-order core model, thread programs, execution-time accounting. *)

module Stamp = Lk_stamp
(** Synthetic STAMP workload generators. *)

module Trace = Lk_trace
(** Trace format for open-loop replay: records, streaming
    reader/writer, and the synthetic traffic generator
    (see docs/REPLAY.md). *)

module Sim = Lk_sim
(** Machine configs (Table I), runner, metrics, experiments. *)

module Check = Lk_check
(** Correctness checkers: invariant sanitizer, bounded interleaving
    explorer, schedule fuzzer (see docs/CHECKING.md). *)

(** {1 One-call API} *)

val systems : string list
(** Names accepted by {!run} (Table II). *)

val hybrid_systems : string list
(** The hybrid-TM comparator family (also accepted by {!run}): the
    pure-software TL2 baseline and the HyTM instrumentation variants —
    see docs/HYBRID.md. *)

val workloads : string list
(** Workload names accepted by {!run} (STAMP without bayes). *)

val run :
  ?seed:int ->
  ?scale:float ->
  ?cache:Lk_sim.Config.cache_profile ->
  ?cores:int ->
  system:string ->
  workload:string ->
  threads:int ->
  unit ->
  (Lk_sim.Runner.result, string) result
(** Simulate one (system, workload, threads) combination on the
    paper's machine and return every reported metric. [Error] explains
    unknown names or invalid parameters. *)

val run_text :
  ?cache:Lk_sim.Config.cache_profile ->
  ?cores:int ->
  system:string ->
  program:string ->
  unit ->
  (Lk_sim.Runner.result, string) result
(** Run a hand-written workload given in {!Lk_cpu.Program.of_text}'s
    text format (one thread per [thread] section). The serializability
    oracle and protocol invariants still verify the run. *)

val speedup_vs_cgl :
  ?seed:int ->
  ?scale:float ->
  ?cache:Lk_sim.Config.cache_profile ->
  ?cores:int ->
  system:string ->
  workload:string ->
  threads:int ->
  unit ->
  (float, string) result
(** Speedup of [system] over coarse-grained locking at the same thread
    count (the paper's principal metric). *)

val version : string
