module Rng = Lk_engine.Rng
module Addr = Lk_coherence.Addr
module Program = Lk_cpu.Program

type profile = {
  name : string;
  txs_per_thread : int;
  reads_per_tx : int * int;
  writes_per_tx : int * int;
  hot_lines : int;
  hot_fraction : float;
  zipf_skew : float;
  shared_lines : int;
  private_lines : int;
  compute_per_op : int;
  pre_compute : int * int;
  post_compute : int * int;
  fault_prob : float;
  barrier_every : int option;
}

let lock_addr = 0

(* Region layout in lines: lock on line 0, a guard gap, then hot,
   shared, and per-thread private regions. *)
let hot_base = 16

let hot_line i = hot_base + i
let shared_base p = hot_base + p.hot_lines
let private_base p ~threads:_ ~thread =
  shared_base p + p.shared_lines + (thread * (p.private_lines + 1))

let addr_of_line l = Addr.byte_of_line l

let validate p =
  let err msg = Error (p.name ^ ": " ^ msg) in
  let lo_r, hi_r = p.reads_per_tx and lo_w, hi_w = p.writes_per_tx in
  if p.txs_per_thread <= 0 then err "txs_per_thread must be positive"
  else if lo_r < 0 || hi_r < lo_r then err "bad reads_per_tx range"
  else if lo_w < 0 || hi_w < lo_w then err "bad writes_per_tx range"
  else if p.hot_lines < 0 || p.shared_lines <= 0 || p.private_lines < 0 then
    err "bad region sizes"
  else if p.hot_fraction < 0.0 || p.hot_fraction > 1.0 then
    err "hot_fraction out of range"
  else if p.fault_prob < 0.0 || p.fault_prob > 1.0 then
    err "fault_prob out of range"
  else if p.hot_lines = 0 && p.hot_fraction > 0.0 then
    err "hot_fraction without hot lines"
  else
    match p.barrier_every with
    | Some k when k <= 0 -> err "barrier_every must be positive"
    | Some _ | None -> Ok ()

let uniform_in rng (lo, hi) = if hi <= lo then lo else lo + Rng.int rng (hi - lo + 1)

let pick_hot p rng =
  hot_line (Rng.zipf rng ~n:p.hot_lines ~s:p.zipf_skew)

let pick_shared p rng = shared_base p + Rng.int rng p.shared_lines

let pick_private p rng ~threads ~thread =
  if p.private_lines = 0 then pick_shared p rng
  else private_base p ~threads ~thread + Rng.int rng p.private_lines

(* One transaction body: a shuffled interleaving of reads and writes,
   with local compute between operations and an optional fault. Hot
   writes are conservation-checkable increments; private writes carry
   an arbitrary token. *)
let sized_tx p rng ~threads ~thread ~n_reads ~n_writes =
  let mk_read () =
    let line =
      if Rng.chance rng p.hot_fraction && p.hot_lines > 0 then pick_hot p rng
      else pick_shared p rng
    in
    Program.Read (addr_of_line line)
  in
  let mk_write () =
    if Rng.chance rng p.hot_fraction && p.hot_lines > 0 then
      Program.Incr (addr_of_line (pick_hot p rng))
    else
      Program.Write
        (addr_of_line (pick_private p rng ~threads ~thread), Rng.int rng 1024)
  in
  let ops = Array.init (n_reads + n_writes) (fun i ->
      if i < n_reads then mk_read () else mk_write ())
  in
  Rng.shuffle rng ops;
  let ops = Array.to_list ops in
  let ops =
    if p.compute_per_op > 0 then
      List.concat_map (fun op -> [ Program.Compute p.compute_per_op; op ]) ops
    else ops
  in
  let ops =
    if Rng.chance rng p.fault_prob then begin
      (* Inject the fault late in the body (the last quarter): faults in
         yada-like workloads strike deep inside cavity processing, which
         is what makes the wasted work expensive. *)
      let len = List.length ops in
      let lo = 3 * len / 4 in
      let pos = lo + Rng.int rng (len - lo + 1) in
      List.concat
        [
          List.filteri (fun i _ -> i < pos) ops;
          [ Program.Fault ];
          List.filteri (fun i _ -> i >= pos) ops;
        ]
    end
    else ops
  in
  {
    Program.pre_compute = uniform_in rng p.pre_compute;
    ops;
    post_compute = uniform_in rng p.post_compute;
  }

(* Closed-loop body: footprint sizes drawn from the profile's ranges. *)
let gen_tx p rng ~threads ~thread =
  let n_reads = uniform_in rng p.reads_per_tx in
  let n_writes = uniform_in rng p.writes_per_tx in
  sized_tx p rng ~threads ~thread ~n_reads ~n_writes

(* Open-loop body: footprint sizes dictated by a trace record. *)
let synthesize p rng ~threads ~thread ~reads ~writes =
  if reads < 0 || writes < 0 then
    invalid_arg "Workload.synthesize: negative footprint";
  sized_tx p rng ~threads ~thread ~n_reads:reads ~n_writes:writes

let generate p ~threads ~seed ~scale =
  (match validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Workload.generate: " ^ msg));
  if threads <= 0 then invalid_arg "Workload.generate: threads must be positive";
  if scale <= 0.0 then invalid_arg "Workload.generate: scale must be positive";
  let txs = max 1 (int_of_float (float_of_int p.txs_per_thread *. scale)) in
  let root = Rng.create (seed + (1299721 * Hashtbl.hash p.name)) in
  Array.init threads (fun thread ->
      let rng = Rng.split root in
      List.init txs (fun _ -> gen_tx p rng ~threads ~thread))

let hot_addresses p =
  List.init p.hot_lines (fun i -> addr_of_line (hot_line i))

let expected_hot_increments p ~threads ~seed ~scale =
  let program = generate p ~threads ~seed ~scale in
  let counts = Hashtbl.create 64 in
  List.iter (fun a -> Hashtbl.replace counts a 0) (hot_addresses p);
  Array.iter
    (fun thread ->
      List.iter
        (fun tx ->
          List.iter
            (function
              | Program.Incr a ->
                Hashtbl.replace counts a
                  (1 + Option.value ~default:0 (Hashtbl.find_opt counts a))
              | Program.Add (a, _) | Program.Read a | Program.Write (a, _) ->
                ignore a
              | Program.Compute _ | Program.Fault -> ())
            tx.Program.ops)
        thread)
    program;
  Hashtbl.fold (fun a n acc -> (a, n) :: acc) counts []
  |> List.sort compare

let pp ppf p =
  Format.fprintf ppf
    "%s: %d txs/thread, reads %d-%d, writes %d-%d, hot %d lines (%.0f%%, \
     zipf %.2f), shared %d, private %d, fault %.2f"
    p.name p.txs_per_thread (fst p.reads_per_tx) (snd p.reads_per_tx)
    (fst p.writes_per_tx) (snd p.writes_per_tx) p.hot_lines
    (100.0 *. p.hot_fraction) p.zipf_skew p.shared_lines p.private_lines
    p.fault_prob;
  match p.barrier_every with
  | Some k -> Format.fprintf ppf ", barrier every %d" k
  | None -> ()
