(** The benchmark suite as evaluated in the paper: STAMP without bayes
    (excluded there for its unpredictable behaviour), with both
    contention configurations of kmeans and vacation. *)

val all : Workload.profile list
(** Presentation order of the paper's figures: genome, intruder,
    kmeans, kmeans+, labyrinth, ssca2, vacation, vacation+, yada. *)

val high_contention : Workload.profile list
(** The workloads the paper calls high-contention (used for the
    extreme-case speedup claims): intruder, kmeans+, vacation+. *)

val extras : Workload.profile list
(** Profiles available outside the paper's evaluation set: bayes (which
    the paper excludes) and the classic microbenchmarks of {!Micro}. *)

val find : string -> Workload.profile option
(** Case-insensitive lookup by name, over [all] and [extras]. *)

val names : string list
(** Names of [all] (the paper's set only). *)

val extra_names : string list

(** {1 Workload specs}

    The one way to construct a workload: a {!spec} names an application
    and a size class and optionally rescales it, and {!realise} turns
    it into a profile. {!Experiments} and the CLI build specs rather
    than poking at per-application constructors. *)

type size =
  | Low  (** The application's default configuration. *)
  | High  (** The high-contention ["+"] variant (kmeans+, vacation+). *)

type spec = {
  app : string;  (** Base application name, e.g. ["vacation"]. *)
  size : size;
  rw_scale : float;
      (** Multiplier on the read/write footprint ranges (floor 1,
          truncating — matches the historical integer scaling). *)
  txs_scale : float;
      (** Multiplier on transactions per thread (floor 4 when <> 1). *)
  tag : bool;
      (** Append ["-x<rw_scale>"] to the profile name (scaled-variant
          labelling, e.g. ["vacation-x2"]). *)
}

val spec :
  ?size:size -> ?rw_scale:float -> ?txs_scale:float -> ?tag:bool ->
  string -> spec
(** Defaults: [Low], no rescaling, [tag] iff either scale differs
    from 1. *)

val spec_of_name : string -> (spec, string) result
(** Parse a CLI-style workload name: a trailing ['+'] selects [High]
    (["kmeans+"] = kmeans at high contention). *)

val spec_name : spec -> string
(** The profile name {!realise} will give this spec. *)

val realise : spec -> (Workload.profile, string) result
(** Resolve the app over [all] and [extras] (case-insensitive) and
    apply the scaling. Errors on unknown apps and non-positive
    scales. *)
