let all =
  [
    Genome.profile;
    Intruder.profile;
    Kmeans.low;
    Kmeans.high;
    Labyrinth.profile;
    Ssca2.profile;
    Vacation.low;
    Vacation.high;
    Yada.profile;
  ]

let high_contention = [ Intruder.profile; Kmeans.high; Vacation.high ]

let extras = Bayes.profile :: Micro.all

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun p -> String.lowercase_ascii p.Workload.name = needle)
    (all @ extras)

let names = List.map (fun p -> p.Workload.name) all

let extra_names = List.map (fun p -> p.Workload.name) extras

(* --- Workload specs ----------------------------------------------------- *)

type size = Low | High

type spec = {
  app : string;
  size : size;
  rw_scale : float;
  txs_scale : float;
  tag : bool;
}

let spec ?(size = Low) ?(rw_scale = 1.0) ?(txs_scale = 1.0) ?tag app =
  let tag =
    match tag with Some t -> t | None -> rw_scale <> 1.0 || txs_scale <> 1.0
  in
  { app; size; rw_scale; txs_scale; tag }

let spec_of_name name =
  if name = "" then Error "empty workload name"
  else
    let base, size =
      let n = String.length name in
      if name.[n - 1] = '+' then (String.sub name 0 (n - 1), High)
      else (name, Low)
    in
    if base = "" then Error (Printf.sprintf "bad workload name %S" name)
    else Ok (spec ~size base)

let spec_name s =
  let base = s.app ^ match s.size with Low -> "" | High -> "+" in
  if s.tag then Printf.sprintf "%s-x%.2g" base s.rw_scale else base

(* Floor-scaling that matches the historical integer arithmetic
   ([lo * m / 4] for power-of-two multiplier ratios): multiply in
   floats, truncate, clamp to 1. *)
let scale_floor ~floor v f =
  if f = 1.0 then v else max floor (int_of_float (float_of_int v *. f))

let realise s =
  let lookup = s.app ^ match s.size with Low -> "" | High -> "+" in
  match find lookup with
  | None ->
    Error
      (Printf.sprintf "unknown workload %S (expected one of: %s)" lookup
         (String.concat ", " (names @ extra_names)))
  | Some base ->
    if s.rw_scale <= 0.0 then
      Error (Printf.sprintf "rw_scale must be positive (got %g)" s.rw_scale)
    else if s.txs_scale <= 0.0 then
      Error
        (Printf.sprintf "txs_scale must be positive (got %g)" s.txs_scale)
    else
      let scale_range (lo, hi) =
        ( scale_floor ~floor:1 lo s.rw_scale,
          scale_floor ~floor:1 hi s.rw_scale )
      in
      Ok
        {
          base with
          Workload.name = spec_name s;
          reads_per_tx = scale_range base.Workload.reads_per_tx;
          writes_per_tx = scale_range base.Workload.writes_per_tx;
          txs_per_thread =
            scale_floor ~floor:4 base.Workload.txs_per_thread s.txs_scale;
        }
