(** Synthetic STAMP workload generation.

    The paper evaluates on the unmodified STAMP suite. Running the real
    C benchmarks is impossible here (no ISA-level simulation), so each
    application is replaced by a generator that reproduces its
    *transactional profile*: transaction length, read/write-set size,
    contention structure (hot shared records vs. private data),
    exception-proneness and the fraction of time spent inside
    transactions. These are the only properties the paper's metrics
    (commit rate, abort mix, execution-time breakdown, speedups)
    depend on. Profiles follow the published STAMP characterisation
    (Cao Minh et al., IISWC 2008) and the behaviour the LockillerTM
    paper itself reports per application (e.g. labyrinth/yada living on
    the fallback path).

    Address space layout (byte addresses, line-aligned records):
    the fallback lock lives at address 0; a hot region of contended
    records follows; then a large shared low-contention region; then
    per-thread private regions. Hot updates are [Incr] operations so
    integration tests can verify conservation under every system. *)

type profile = {
  name : string;
  txs_per_thread : int;  (** At scale 1.0. *)
  reads_per_tx : int * int;  (** Inclusive uniform range. *)
  writes_per_tx : int * int;
  hot_lines : int;  (** Contended shared records. *)
  hot_fraction : float;  (** Probability an access targets the hot set. *)
  zipf_skew : float;  (** Skew inside the hot set (0 = uniform). *)
  shared_lines : int;  (** Low-contention shared region. *)
  private_lines : int;  (** Per-thread data. *)
  compute_per_op : int;  (** Local work between memory operations. *)
  pre_compute : int * int;  (** Non-transactional work before a tx. *)
  post_compute : int * int;
  fault_prob : float;  (** Per-transaction exception probability. *)
  barrier_every : int option;
      (** Phase-structured applications (kmeans iterations, genome
          stages): all threads synchronise on a barrier after this many
          transactions. *)
}

val lock_addr : int
(** The fallback/CGL lock's byte address (0). *)

val validate : profile -> (unit, string) result

val generate :
  profile -> threads:int -> seed:int -> scale:float -> Lk_cpu.Program.t
(** Deterministic: same (profile, threads, seed, scale) gives the same
    program. [scale] multiplies [txs_per_thread] (min 1). Threads must
    be positive. *)

val synthesize :
  profile ->
  Lk_engine.Rng.t ->
  threads:int ->
  thread:int ->
  reads:int ->
  writes:int ->
  Lk_cpu.Program.transaction
(** One transaction body with an externally dictated footprint — the
    access pattern (hot/shared/private mix, compute interleave, fault
    injection, pre/post compute) follows [profile], but the read and
    write counts come from the caller (a trace record) instead of the
    profile's per-tx ranges. Used by open-loop replay to synthesise
    bodies lazily at service time. *)

val hot_addresses : profile -> int list
(** Byte addresses of the hot records — their committed values after a
    run must equal the number of committed [Incr]s (conservation
    checks). *)

val expected_hot_increments :
  profile -> threads:int -> seed:int -> scale:float -> (int * int) list
(** [(addr, total increments)] pairs the generated program performs on
    hot records — what the committed store must show after any
    correct run. *)

val pp : Format.formatter -> profile -> unit
