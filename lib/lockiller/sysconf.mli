(** The evaluated systems of Table II.

    Every system is a composition of: the concurrency substrate (coarse
    locking or best-effort HTM), the recovery mechanism, the requester
    policy after a reject, the priority scheme, the HTMLock mechanism
    and the switchingMode mechanism. *)

type kind =
  | Cgl  (** Coarse-grained locking, same critical-section granularity. *)
  | Htm  (** Best-effort HTM with a fallback path. *)

type t = {
  name : string;
  kind : kind;
  recovery : bool;  (** NACK/reject support in the cache controllers. *)
  reject_policy : Lk_htm.Policy.reject_policy;
  priority : Lk_htm.Policy.priority_policy;
  htmlock : bool;  (** Lock transactions run concurrently with HTM. *)
  switching : bool;  (** Proactive switch to HTMLock mode on overflow. *)
  retry : Lk_htm.Policy.retry;
  lock : Lk_htm.Policy.lock_impl;
      (** Spinlock used by the CGL baseline (the fallback path always
          follows Listing 1's test-and-set idiom). *)
  fallback : Lk_htm.Policy.fallback_path;
      (** What exhausted HTM attempts fall back to: the paper's
          coarse-grained lock ([Cgl_lock], the default everywhere in
          Table II) or a TL2-style software transaction ([Tl2], the
          hybrid-TM comparators). *)
  clock : Lk_htm.Policy.clock_scheme;
      (** Global-version-clock discipline of the software path
          (ignored under [Cgl_lock]). *)
  instrumentation : Lk_htm.Policy.instrumentation;
      (** What the hardware path pays for software concurrency
          (ignored under [Cgl_lock]). *)
}

val cgl : t

val baseline : t
(** Best-effort HTM, requester-win. *)

val losa_safu : t
(** LosaTM without the false-sharing and capacity-overflow
    optimisations: NACK-based recovery with progression-based priority
    and wake-up (the paper's comparison target). *)

val lockiller_rai : t
(** Baseline + Recovery + SelfAbort + InstsBased. *)

val lockiller_rri : t
(** Baseline + Recovery + SelfRetryLater + InstsBased. *)

val lockiller_rwi : t
(** Baseline + Recovery + WaitWakeup + InstsBased. *)

val lockiller_rwl : t
(** Baseline + Recovery + WaitWakeup + HTMLock. *)

val lockiller_rwil : t
(** LockillerTM-RWI + HTMLock. *)

val lockiller : t
(** LockillerTM-RWI + HTMLock + SwitchingMode. *)

val all : t list
(** Table II order. *)

val cgl_ticket : t
(** CGL with a fair FIFO ticket lock instead of TTAS — an ablation of
    the locking baseline itself (not part of Table II). *)

val lockiller_rws : t
(** LockillerTM-RWI with statically assigned priorities — the paper's
    Section III-A alternative, for the ablation study (not part of
    Table II). *)

val extras : t list
(** The ablation-only systems above. *)

(** {1 Hybrid-TM comparator family}

    Not part of Table II (they never appear in the [table2]
    experiment); see [docs/HYBRID.md] for the design and the HyTM
    literature they reproduce. *)

val sw_tl2 : t
(** Pure software TL2: a zero-retry HTM system, so every critical
    section takes the software path. The software-only endpoint the
    instrumented hardware paths are compared against. *)

val hytm_gv1 : t
(** Uninstrumented hardware + TL2 software fallback with the eager GV1
    clock; mutual exclusion through the software-mode gate. *)

val hytm_gv5 : t
(** As {!hytm_gv1} with the lazy GV5 clock: fewer clock-line writes,
    same outcomes. *)

val hytm_rc : t
(** Read-check instrumentation (one clock load per transactional read)
    over GV1: hardware and software run concurrently; any software
    writer commit kills all running hardware transactions. *)

val hytm_md : t
(** Access-check (metadata) instrumentation over GV5: per-access
    version-stamp loads, so software commits kill exactly the hardware
    transactions they overlap. *)

val hybrid : t list
(** The five comparators above, software-only first. *)

val find : string -> t option
(** Case-insensitive lookup by name, over Table II, the extras and the
    hybrid comparators. *)

val validate : t -> (unit, string) result
(** Sanity rules: HTMLock requires recovery (lock transactions are
    protected by rejects); switchingMode requires HTMLock; CGL ignores
    every HTM knob; the TL2 fallback excludes HTMLock/switchingMode;
    instrumentation schemes require the TL2 fallback; [Read_check]
    requires [Gv1]. *)

val pp : Format.formatter -> t -> unit
