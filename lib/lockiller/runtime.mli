(** The LockillerTM transactional runtime.

    One instance owns the per-core transactional contexts, the value
    layer, the wake-up tables, the overflow signatures and the HTMLock
    arbitration, and installs itself as the coherence protocol's
    conflict-policy client. It exposes the programming interface the
    simulated cores execute — the hardware primitives (xbegin / xend /
    hlbegin / hlend / ttest) plus the spinlock used both for the
    fallback path and for the CGL baseline.

    The behaviour is configured by a {!Sysconf.t}: with [recovery]
    off it is plain requester-win best-effort HTM; recovery enables
    NACK/reject arbitration under the configured priority scheme;
    [htmlock] lets lock transactions (TL) run concurrently with HTM
    transactions; [switching] adds the proactive HTM→STL switch on
    capacity overflow. *)

type t

(** Result of a transactional memory operation, observed by the core. *)
type access_result =
  | Ok of int
      (** Completed; payload is the loaded value (0 for stores). *)
  | Tx_aborted
      (** The surrounding transaction died (asynchronously or because
          of this very access). The core must run its abort handler. *)

type costs = {
  begin_cost : int;  (** xbegin checkpointing. *)
  commit_cost : int;  (** xend / hlend bookkeeping. *)
  abort_penalty : int;  (** Register restore + pipeline flush. *)
  fault_abort_penalty : int;
      (** Extra cost of an exception-induced abort: the fault must be
          resolved non-speculatively (page walk, OS handler) before the
          transaction can retry or fall back. *)
  fault_cost : int;  (** Exception handling inside HTMLock mode. *)
}

val default_costs : costs

val create :
  ?costs:costs ->
  ?inject_bug:Lk_coherence.Types.injected_fault ->
  protocol:Lk_coherence.Protocol.t ->
  store:Lk_htm.Store.t ->
  sysconf:Sysconf.t ->
  lock_addr:int ->
  unit ->
  t
(** Installs the runtime as the protocol's client and registers a
    quiescence watchdog that rescues parked cores if a wake-up message
    was lost (it also counts such rescues — a healthy run has none).

    [inject_bug] arms one deliberately broken variant
    ({!Lk_coherence.Types.injected_fault}) for the correctness
    checkers' mutation self-tests: [Swmr_violation] is forwarded to the
    protocol, [Lost_wakeup] drops the first waiter of every wake-table
    drain, [Dirty_commit] removes the killed-during-commit-window guard
    in {!xend}. Never set in real runs. *)

val sysconf : t -> Sysconf.t
val costs : t -> costs
val store : t -> Lk_htm.Store.t
val protocol : t -> Lk_coherence.Protocol.t
val ctx : t -> Lk_coherence.Types.core_id -> Lk_htm.Txstate.t
val lock_addr : t -> int

val witness_core : t -> Lk_coherence.Types.core_id -> unit
(** Declare to {!Lk_engine.Sim}'s partition-ownership race detector
    that the currently executing event mutates [core]'s runtime state.
    The runtime registers one region per core at {!create}; this is the
    hook callers with core-local state of their own (e.g. the CPU
    model) use at their mutation points. Free when the detector is
    off. *)

(* -- Hardware primitives -------------------------------------------- *)

val xbegin :
  t -> Lk_coherence.Types.core_id -> k:([ `Started | `Busy ] -> unit) -> unit
(** Enter speculative mode. Under best-effort HTM this subscribes to
    the fallback lock (Listing 1): if the lock is held the transaction
    self-aborts and [`Busy] is reported. Under HTMLock the subscription
    is removed and xbegin always [`Started]s. *)

val xend : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit
(** Commit: clear the L1 transactional metadata, publish the write
    buffer, wake waiters. Never fails (eager conflict detection). *)

val hlbegin : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit
(** Enter HTMLock (TL) mode. The caller must hold the fallback lock.
    Under switchingMode this additionally obtains the LLC authorization
    (retrying until the current STL transaction, if any, finishes). *)

val hlend : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit
(** Leave HTMLock mode (TL or STL): clear metadata and overflow
    signatures, release the LLC authorization, wake waiters. *)

val ttest : t -> Lk_coherence.Types.core_id -> Lk_htm.Txstate.mode
(** The paper's extended ttest: distinguishes HTM / TL / STL (Listing
    2 dispatches the release path on it). *)

(* -- TL2-style software fallback (hybrid-TM comparators) -------------- *)

val swbegin : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit
(** Start a TL2-style software transaction ([Sysconf.fallback = Tl2]
    systems): under the [Uninstrumented] scheme, RMW the software-mode
    gate up (killing every hardware transaction subscribed to it), then
    sample the global clock as the read version. Never fails — the
    software path is the guaranteed-progress endpoint. Subsequent
    {!read} / {!write} / {!fetch_add} calls take the software path
    (optimistic stamped reads, buffered writes) until {!sw_commit};
    a read observing a locked or too-new stamp aborts the transaction
    ([Tx_aborted], reason [Validation]) and the core must retry from
    [swbegin]. *)

val sw_commit :
  t ->
  Lk_coherence.Types.core_id ->
  k:([ `Committed | `Aborted ] -> unit) ->
  unit
(** TL2 commit: lock the write set's stamp slots in ascending order,
    take the write stamp from the global clock (GV1 advances it with an
    RMW; GV5 uses [clock + 1] without traffic), validate the read set
    by exact version match, then publish, stamp and unlock. Validation,
    publish and the oracle record happen in one simulated instant — the
    serialization point — with the publish write-backs charged after.
    [`Aborted] (reason [Validation]) on a lost lock race or a failed
    validation; the core retries from {!swbegin}. *)

(* -- Memory operations ------------------------------------------------ *)

val read :
  t -> Lk_coherence.Types.core_id -> addr:int -> k:(access_result -> unit) -> unit

val write :
  t ->
  Lk_coherence.Types.core_id ->
  addr:int ->
  value:int ->
  k:(access_result -> unit) ->
  unit

val fetch_add :
  t ->
  Lk_coherence.Types.core_id ->
  addr:int ->
  delta:int ->
  k:(access_result -> unit) ->
  unit
(** Read-modify-write of one address inside the current context (two
    memory operations if the line is not yet writable). Returns the
    value before the addition. *)

val add_insts : t -> Lk_coherence.Types.core_id -> int -> unit
(** Account locally executed (compute) instructions — feeds the
    committed-instructions priority. *)

val fault :
  t ->
  Lk_coherence.Types.core_id ->
  k:([ `Survived of int | `Died ] -> unit) ->
  unit
(** An exception fires at the current instruction. HTM transactions
    die (best-effort semantics); HTMLock-mode and non-speculative
    execution survive, paying [costs.fault_cost]. *)

(* -- Spinlock --------------------------------------------------------- *)

val lock_acquire : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit
(** Test-and-test-and-set with bounded exponential backoff, running
    through the coherence protocol. Used by the fallback path and by
    the CGL system. *)

val lock_release : t -> Lk_coherence.Types.core_id -> k:(unit -> unit) -> unit

val lock_held : t -> bool
(** Committed value of the lock (tests and spin heuristics). *)

val note_lock_commit : t -> Lk_coherence.Types.core_id -> unit
(** Record the completion of a critical section executed under the
    plain fallback path (no HTMLock — there is no hlend to count it). *)

(* -- Serializability oracle ------------------------------------------- *)

val enable_oracle : t -> Lk_htm.Oracle.t
(** Start recording every committed critical section's operation log.
    [Lk_htm.Oracle.verify] on the returned handle checks that the run
    was serializable. Recording costs O(operations). *)

val oracle : t -> Lk_htm.Oracle.t option

val enable_txtrace : ?capacity:int -> t -> Txtrace.t
(** Start recording transaction-lifecycle events (begins, commits,
    aborts, rejects, parks/wakes, HTMLock entries, switch attempts,
    lock handoffs) into a bounded ring. See {!Txtrace}. *)

val txtrace : t -> Txtrace.t option

val enable_ledger : ?capacity:int -> t -> Lk_engine.Ledger.t
(** Start recording the structured transaction-event ledger and wire it
    into all three emitting layers at once: this runtime (begins,
    commits, aborts, rejects, parks/wakes, HTMLock entries and exits,
    switch decisions, spills, lock acquire/release), the coherence
    protocol ([Nack]/[Abort_kill], via
    {!Lk_coherence.Protocol.set_ledger}) and the value layer
    ([Spec_publish]/[Spec_discard], via {!Lk_htm.Store.set_ledger}).
    Abort-edge events ([Tx_abort], [Sw_abort], [Nack], [Reject],
    [Abort_kill], [Spec_discard]) carry the aggressor core and the
    victim's attempt age packed into [arg] — cycles since the attempt
    began minus any deliberate stalls (reject back-off pauses, time
    parked on a wake-up list), i.e. cycles the core actually spent
    computing; see the packing helpers in {!Lk_engine.Ledger} — so a
    causal profiler can reconstruct who killed whom and how much work
    died.
    Until called the runtime performs no ledger work at all (a single
    [None] test per would-be event). [capacity] bounds the ring (default
    65536 records); older records are dropped, see
    {!Lk_engine.Ledger.dropped}. *)

val ledger : t -> Lk_engine.Ledger.t option

val plain_section_begin : t -> Lk_coherence.Types.core_id -> unit
(** The core enters a lock-protected non-transactional critical section
    (CGL, or the fallback path without HTMLock); its operations are
    logged for the oracle. Paired with {!plain_section_end}. *)

val plain_section_end : t -> Lk_coherence.Types.core_id -> unit

(* -- Statistics ------------------------------------------------------- *)

type core_stats = {
  mutable starts : int;  (** HTM attempts begun. *)
  mutable commits : int;  (** HTM commits (STL commits excluded). *)
  mutable stl_commits : int;
  mutable lock_commits : int;  (** Critical sections finished via lock/TL. *)
  mutable sw_commits : int;
      (** Critical sections committed on the TL2 software path. *)
  mutable aborts : int;
  abort_reasons : int array;  (** Indexed by {!Lk_htm.Reason.index}. *)
  mutable rejects_received : int;
  mutable parks : int;
  mutable attempts_at_commit : int;
      (** Sum over HTM commits of the attempt number each needed (1 =
          first try); divide by [commits] for the mean. *)
  mutable wasted : int;
      (** Cycles spent in attempts that aborted: every abort adds the
          distance from its attempt's begin (xbegin / swbegin). Always
          on and ledger-independent, so results are identical whether
          or not the causal profiler is attached. *)
  wasted_by_reason : int array;
      (** [wasted] split by {!Lk_htm.Reason.index}. *)
}

val core_stats : t -> Lk_coherence.Types.core_id -> core_stats
val stats : t -> Lk_engine.Stats.group

val commit_rate : t -> float
(** Committed transactions (HTM, STL and software) / started attempts,
    over all cores (the paper's transaction commit rate). 1.0 when
    nothing started. *)

val watchdog_rescues : t -> int
val parked_cores : t -> Lk_coherence.Types.core_id list

(* -- Checker introspection -------------------------------------------- *)

(** Read-only views of the runtime's private coordination state, for
    the invariant catalogue in [lockiller.check] (and tests). None of
    these mutate anything. *)

val arbiter_holder : t -> Lk_coherence.Types.core_id option
(** Current holder of the HTMLock/switching LLC authorization. *)

val sig_owner : t -> Lk_coherence.Types.core_id option
(** Core owning the LLC overflow signatures, if any. *)

val wake_waiters :
  t -> rejector:Lk_coherence.Types.core_id -> Lk_coherence.Types.core_id list
(** Cores recorded in the wake table against [rejector]
    (non-destructive). *)

val wake_pending : t -> int
(** Total recorded (rejector, waiter) pairs in the wake table. *)

val has_pending_wake : t -> Lk_coherence.Types.core_id -> bool
(** A wake-up raced ahead of the core's park and is waiting to be
    consumed. *)

val is_parked : t -> Lk_coherence.Types.core_id -> bool

val lock_holders : t -> Lk_coherence.Types.core_id list
(** Cores currently between [note_lock_acquired] and the matching
    release — i.e. holding the fallback spinlock. *)

(* -- Telemetry introspection ------------------------------------------ *)

(** Allocation-free gauges sampled by [Lk_sim.Telemetry]: the periodic
    sampler calls these thousands of times per run and must not
    disturb the GC, so none of them build options, lists or tuples. *)

val num_phases : int
(** Number of distinct {!phase_code} values (codes are [0 ..
    num_phases - 1]). *)

val phase_code : t -> Lk_coherence.Types.core_id -> int
(** The core's current execution phase as a stable integer code:
    0 non-tx, 1 HTM, 2 STL/TL (lock transaction), 3 holding the
    fallback lock, 4 parked, 5 aborting (asynchronous abort pending),
    6 software transaction (TL2 fallback path). Parked wins over
    lock-held wins over the transactional modes. *)

val phase_label : int -> string
(** Human-readable name of a {!phase_code}.
    @raise Invalid_argument outside [0 .. num_phases - 1]. *)

val holds_lock : t -> Lk_coherence.Types.core_id -> bool
(** The core holds the fallback spinlock ([lock_holders] without the
    list). *)

val arbiter_engaged : t -> bool
(** Some core holds the HTMLock/switching LLC authorization
    ([arbiter_holder <> None] without the option). *)

val sig_rd_population : t -> int
(** Set bits in the overflow read signature. *)

val sig_wr_population : t -> int
(** Set bits in the overflow write signature. *)

val tx_latency_hdr : t -> Lk_engine.Stats.hdr
(** Always-on critical-section latency histogram: cycles from the
    first [xbegin] (or [hlbegin]) of a critical section to its commit,
    across HTM, STL and fallback completions. *)

val retry_gap_hdr : t -> Lk_engine.Stats.hdr
(** Always-on abort-to-retry gap histogram: cycles between an abort
    and the next [xbegin] of the same critical section. *)

val lock_dwell_hdr : t -> Lk_engine.Stats.hdr
(** Always-on fallback-lock dwell histogram: cycles each acquisition
    held the lock (the histogram behind the [lock_dwell_cycles]
    counter). *)

val clock_value : t -> int
(** Current global version clock (committed word at
    {!Lk_htm.Global_clock.addr}) — the telemetry gauge behind the
    hybrid comparators' clock track. 0 for non-hybrid systems. *)

val sw_population : t -> int
(** Cores currently inside a TL2 software transaction. *)

val sw_peak : t -> int
(** High-water mark of {!sw_population} over the run. *)

val sw_path : t -> Lk_htm.Sw_path.t
(** The software path's bookkeeping (read/write sets, lock table) —
    checker and fingerprint introspection. *)
