module Policy = Lk_htm.Policy

type kind = Cgl | Htm

type t = {
  name : string;
  kind : kind;
  recovery : bool;
  reject_policy : Policy.reject_policy;
  priority : Policy.priority_policy;
  htmlock : bool;
  switching : bool;
  retry : Policy.retry;
  lock : Policy.lock_impl;
  fallback : Policy.fallback_path;
  clock : Policy.clock_scheme;
  instrumentation : Policy.instrumentation;
}

let base =
  {
    name = "Baseline";
    kind = Htm;
    recovery = false;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.No_priority;
    htmlock = false;
    switching = false;
    retry = Policy.default_retry;
    lock = Policy.Ttas;
    fallback = Policy.Cgl_lock;
    clock = Policy.Gv1;
    instrumentation = Policy.Uninstrumented;
  }

let cgl = { base with name = "CGL"; kind = Cgl }

let baseline = base

let losa_safu =
  {
    base with
    name = "LosaTM-SAFU";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.Progression_based;
  }

let lockiller_rai =
  {
    base with
    name = "LockillerTM-RAI";
    recovery = true;
    reject_policy = Policy.Self_abort;
    priority = Policy.Insts_based;
  }

let lockiller_rri =
  {
    base with
    name = "LockillerTM-RRI";
    recovery = true;
    reject_policy = Policy.Retry_later 64;
    priority = Policy.Insts_based;
  }

let lockiller_rwi =
  {
    base with
    name = "LockillerTM-RWI";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.Insts_based;
  }

let lockiller_rwl =
  {
    base with
    name = "LockillerTM-RWL";
    recovery = true;
    reject_policy = Policy.Wait_wakeup;
    priority = Policy.No_priority;
    htmlock = true;
  }

let lockiller_rwil = { lockiller_rwi with name = "LockillerTM-RWIL"; htmlock = true }

let lockiller =
  { lockiller_rwil with name = "LockillerTM"; switching = true }

let all =
  [
    cgl;
    baseline;
    losa_safu;
    lockiller_rai;
    lockiller_rri;
    lockiller_rwi;
    lockiller_rwl;
    lockiller_rwil;
    lockiller;
  ]

let cgl_ticket = { cgl with name = "CGL-Ticket"; lock = Policy.Ticket }

let lockiller_rws =
  {
    lockiller_rwi with
    name = "LockillerTM-RWS";
    priority = Policy.Static_based;
  }

let extras = [ cgl_ticket; lockiller_rws ]

(* Hybrid-TM comparator family (see docs/HYBRID.md). All are built on
   [base] — requester-win, no recovery — so non-transactional accesses
   from software transactions always beat hardware holders, which is
   what makes the software path's publishes and gate writes effective
   kill mechanisms. *)

let hybrid_base = { base with fallback = Policy.Tl2 }

let sw_tl2 =
  {
    hybrid_base with
    name = "SW-TL2";
    retry = { Policy.default_retry with Policy.max_retries = 0 };
  }

let hytm_gv1 = { hybrid_base with name = "HyTM-GV1" }
let hytm_gv5 = { hybrid_base with name = "HyTM-GV5"; clock = Policy.Gv5 }

let hytm_rc =
  { hybrid_base with name = "HyTM-RC"; instrumentation = Policy.Read_check }

let hytm_md =
  {
    hybrid_base with
    name = "HyTM-MD";
    clock = Policy.Gv5;
    instrumentation = Policy.Access_check;
  }

let hybrid = [ sw_tl2; hytm_gv1; hytm_gv5; hytm_rc; hytm_md ]

let find name =
  let needle = String.lowercase_ascii name in
  List.find_opt
    (fun s -> String.lowercase_ascii s.name = needle)
    (all @ extras @ hybrid)

let validate t =
  if t.kind = Cgl then Ok ()
  else if t.lock = Policy.Ticket then
    Error "the ticket lock is only available for the CGL baseline"
  else if t.htmlock && not t.recovery then
    Error "HTMLock requires the recovery mechanism"
  else if t.switching && not t.htmlock then
    Error "switchingMode requires the HTMLock mechanism"
  else if t.retry.Policy.max_retries < 0 then Error "negative retry budget"
  else if t.fallback = Policy.Tl2 && (t.htmlock || t.switching) then
    Error "the TL2 fallback replaces the lock path: HTMLock/switchingMode \
           do not compose with it"
  else if t.instrumentation <> Policy.Uninstrumented && t.fallback <> Policy.Tl2
  then Error "HyTM instrumentation is only meaningful with the TL2 fallback"
  else if t.instrumentation = Policy.Read_check && t.clock <> Policy.Gv1 then
    Error "Read_check subscribes to clock writes, so it requires the eager \
           GV1 clock"
  else Ok ()

let pp ppf t =
  match t.kind with
  | Cgl -> Format.fprintf ppf "%s (coarse-grained locking)" t.name
  | Htm -> (
    match t.fallback with
    | Policy.Cgl_lock ->
      Format.fprintf ppf
        "%s (recovery=%b policy=%a priority=%a htmlock=%b switching=%b)"
        t.name t.recovery Policy.pp_reject_policy t.reject_policy
        Policy.pp_priority_policy t.priority t.htmlock t.switching
    | Policy.Tl2 ->
      Format.fprintf ppf "%s (fallback=tl2 clock=%a instr=%a retries=%d)"
        t.name Policy.pp_clock_scheme t.clock Policy.pp_instrumentation
        t.instrumentation t.retry.Policy.max_retries)
