module Sim = Lk_engine.Sim
module Stats = Lk_engine.Stats
module Ledger = Lk_engine.Ledger
module Net = Lk_mesh.Network
module Msg = Lk_mesh.Message
module Types = Lk_coherence.Types
module Addr = Lk_coherence.Addr
module Client = Lk_coherence.Client
module Protocol = Lk_coherence.Protocol
module L1 = Lk_coherence.L1_cache
module Store = Lk_htm.Store
module Policy = Lk_htm.Policy
module Reason = Lk_htm.Reason
module Txstate = Lk_htm.Txstate
module Oracle = Lk_htm.Oracle
module Sw_path = Lk_htm.Sw_path
module Global_clock = Lk_htm.Global_clock

type access_result = Ok of int | Tx_aborted

type costs = {
  begin_cost : int;
  commit_cost : int;
  abort_penalty : int;
  fault_abort_penalty : int;
  fault_cost : int;
}

let default_costs =
  {
    begin_cost = 3;
    commit_cost = 3;
    abort_penalty = 20;
    fault_abort_penalty = 350;
    fault_cost = 60;
  }

type core_stats = {
  mutable starts : int;
  mutable commits : int;
  mutable stl_commits : int;
  mutable lock_commits : int;
  mutable sw_commits : int;
  mutable aborts : int;
  abort_reasons : int array;
  mutable rejects_received : int;
  mutable parks : int;
  mutable attempts_at_commit : int;
      (* Sum over HTM commits of the attempts each needed (>= commits);
         attempts_at_commit / commits = the paper's wasted-work
         intuition in one number. *)
  mutable wasted : int;
      (* Cycles spent in attempts that aborted: at every abort, the
         distance from the attempt's begin. Always on (a handful of int
         stores per abort) so results never depend on whether the
         causal profiler was attached. *)
  wasted_by_reason : int array;
      (* [wasted] split by {!Lk_htm.Reason.index}. *)
}

type t = {
  proto : Protocol.t;
  sim : Sim.t;
  net : Net.t;
  store : Store.t;
  sysconf : Sysconf.t;
  costs : costs;
  lock_addr : int;
  lock_line : Types.line;
  ctxs : Txstate.t array;
  wake : Wake_table.t;
  arb : Arbiter.t;
  of_rd : Signature.t;
  of_wr : Signature.t;
  mutable sig_owner : Types.core_id option;
  parked : (unit -> unit) option array;
  pending_wake : bool array;
  mutable oracle : Oracle.t option;
  mutable txtrace : Txtrace.t option;
  mutable ledger : Ledger.t option;
  (* Cycle at which each core acquired the fallback spinlock; -1 when
     not holding it. Feeds the lock-dwell counter. *)
  lock_held_since : int array;
  (* Cycle at which each core first attempted its current critical
     section (-1 outside one) and cycle of its last abort (-1 once the
     section commits): together they feed the always-on latency
     histograms below. *)
  section_start : int array;
  last_abort : int array;
  (* Cycle at which the core's *current attempt* began (every xbegin /
     hlbegin / swbegin, unlike [section_start] which spans retries);
     -1 outside one. Feeds the wasted-cycle accounting and the
     aggressor/age attribution packed into abort-edge ledger events. *)
  attempt_start : int array;
  (* Deliberate waiting inside the current attempt — reject backoff
     pauses and parked time — accumulated so the attempt age used for
     wasted-work accounting measures discarded *work*, not stall: a
     NACK-stalled requester that eventually dies wasted the cycles it
     spent computing, not the cycles it spent politely waiting.
     [attempt_stall] is the closed total; [stall_since] is the start of
     a wait still in progress (-1 when none), so aborts landing
     mid-wait subtract the elapsed portion too. *)
  attempt_stall : int array;
  stall_since : int array;
  (* Per-core operation log of the current critical section (reversed),
     and whether the core is inside a plain (lock-protected,
     non-transactional) section that should be logged. *)
  op_logs : Oracle.op list array;
  plain_section : bool array;
  (* TL2-style software fallback path (hybrid-TM comparators): per-core
     read/write sets, the striped lock table, and the live population
     count sampled by the telemetry gauge. *)
  sw : Sw_path.t;
  mutable sw_now : int;
  mutable sw_peak : int;
  (* Mirror of the global version clock's committed word: the store
     copy is the authoritative, coherence-visible one, but the
     telemetry sampler reads the value every sample and its path must
     not allocate (a store lookup does). All advances go through
     [advance_clock], which keeps the two in sync. *)
  mutable clock_now : int;
  (* Deliberately broken variant for the checker-of-the-checker
     mutation tests; [None] in every real run. *)
  inject : Types.injected_fault option;
  (* Race-detector handles: one region per core covering its runtime
     state (context, park slot, pending-wake flag, software sets, logs,
     histograms' per-core cells). Witnessed at the entry points that
     are contractually core-local; deliberately NOT witnessed on the
     cross-partition mutation paths (abort of a remote victim, commit
     publish) that the ownership contract exempts. *)
  core_regions : Sim.region array;
  per_core : core_stats array;
  stats : Stats.group;
  s_commits : Stats.counter;
  s_aborts : Stats.counter;
  s_rejects : Stats.counter;
  s_parks : Stats.counter;
  s_wakeups : Stats.counter;
  s_rescues : Stats.counter;
  s_switch_ok : Stats.counter;
  s_switch_denied : Stats.counter;
  s_spilled_lines : Stats.counter;
  s_lock_busy : Stats.counter;
  s_lock_dwell : Stats.counter;
  s_sw_commits : Stats.counter;
  s_sw_aborts : Stats.counter;
  s_clock_adv : Stats.counter;
  (* Always-on log-linear histograms (array increments on commit-rate
     paths; no allocation, no measurable cost). *)
  d_tx_latency : Stats.hdr;
  d_retry_gap : Stats.hdr;
  d_lock_dwell : Stats.hdr;
}

let sysconf t = t.sysconf
let costs t = t.costs

(* Declare a mutation of [core]'s runtime region to the partition-
   ownership race detector. Free when the detector is off. *)
let witness_core t core = Sim.witness t.sim t.core_regions.(core)
let store t = t.store
let protocol t = t.proto
let ctx t core = t.ctxs.(core)
let lock_addr t = t.lock_addr
let core_stats t core = t.per_core.(core)
let stats t = t.stats
let watchdog_rescues t = Stats.value t.s_rescues

let parked_cores t =
  let out = ref [] in
  Array.iteri (fun c p -> if p <> None then out := c :: !out) t.parked;
  List.rev !out

(* --- Checker introspection -------------------------------------------- *)

let arbiter_holder t = Arbiter.holder t.arb
let sig_owner t = t.sig_owner
let wake_waiters t ~rejector = Wake_table.waiters t.wake ~rejector
let wake_pending t = Wake_table.pending t.wake
let has_pending_wake t core = t.pending_wake.(core)
let is_parked t core = t.parked.(core) <> None

let lock_holders t =
  let out = ref [] in
  Array.iteri
    (fun c since -> if since >= 0 then out := c :: !out)
    t.lock_held_since;
  List.rev !out

(* --- Telemetry introspection ------------------------------------------ *)

(* Integer phase codes sampled by [Lk_sim.Telemetry]. Every accessor
   below is allocation-free: the sampler runs them thousands of times
   per simulation and must not disturb the GC. *)

let num_phases = 7

let phase_label = function
  | 0 -> "non-tx"
  | 1 -> "htm"
  | 2 -> "stl"
  | 3 -> "lock"
  | 4 -> "parked"
  | 5 -> "aborting"
  | 6 -> "sw"
  | _ -> invalid_arg "Runtime.phase_label"

let phase_code t core =
  match t.parked.(core) with
  | Some _ -> 4
  | None ->
    if t.lock_held_since.(core) >= 0 then 3
    else begin
      let c = t.ctxs.(core) in
      match c.Txstate.mode with
      | Txstate.Tl | Txstate.Stl -> 2
      | Txstate.Htm -> (
        match c.Txstate.pending_abort with Some _ -> 5 | None -> 1)
      | Txstate.Sw -> 6
      | Txstate.Idle -> 0
    end

let holds_lock t core = t.lock_held_since.(core) >= 0

let arbiter_engaged t =
  match Arbiter.holder t.arb with Some _ -> true | None -> false

let sig_rd_population t = Signature.population t.of_rd
let sig_wr_population t = Signature.population t.of_wr
let tx_latency_hdr t = t.d_tx_latency
let retry_gap_hdr t = t.d_retry_gap
let lock_dwell_hdr t = t.d_lock_dwell

let commit_rate t =
  let starts = ref 0 and commits = ref 0 in
  Array.iter
    (fun cs ->
      starts := !starts + cs.starts;
      commits := !commits + cs.commits + cs.stl_commits + cs.sw_commits)
    t.per_core;
  if !starts = 0 then 1.0 else float_of_int !commits /. float_of_int !starts

let clock_value t = t.clock_now
let sw_population t = t.sw_now
let sw_peak t = t.sw_peak
let sw_path t = t.sw

let lock_held t =
  match t.sysconf.Sysconf.lock with
  | Policy.Ttas -> Store.committed t.store t.lock_addr <> 0
  | Policy.Ticket ->
    Store.committed t.store t.lock_addr
    <> Store.committed t.store (t.lock_addr + Addr.line_size)

(* --- Serializability oracle ------------------------------------------- *)

let enable_oracle t =
  let o = Oracle.create () in
  t.oracle <- Some o;
  o

let oracle t = t.oracle

let enable_txtrace ?capacity t =
  let tr = Txtrace.create ?capacity () in
  t.txtrace <- Some tr;
  tr

let txtrace t = t.txtrace

let enable_ledger ?capacity t =
  let l = Ledger.create ?capacity t.sim in
  t.ledger <- Some l;
  Protocol.set_ledger t.proto l;
  Store.set_ledger t.store l;
  l

let ledger t = t.ledger

let trace t core event =
  match t.txtrace with
  | None -> ()
  | Some tr -> Txtrace.record tr ~time:(Sim.now t.sim) ~core event

(* The structured counterpart of [trace]: one branch when disabled, an
   allocation-free four-word write when enabled. *)
let emit t core kind ~arg =
  match t.ledger with
  | None -> ()
  | Some l -> Ledger.emit l ~core kind ~arg

let log_op t core op =
  match t.oracle with
  | None -> ()
  | Some _ ->
    let logged =
      t.plain_section.(core) || Txstate.in_critical t.ctxs.(core)
    in
    let on_lock_line =
      match (op : Oracle.op) with
      | Oracle.R (a, _) | Oracle.W (a, _) ->
        Addr.line_of_byte a = t.lock_line
    in
    if logged && not on_lock_line then
      t.op_logs.(core) <- op :: t.op_logs.(core)

let clear_log t core = t.op_logs.(core) <- []

let record_section t core kind =
  match t.oracle with
  | None -> ()
  | Some o ->
    Oracle.record o ~core ~end_time:(Sim.now t.sim) ~kind
      ~ops:(List.rev t.op_logs.(core));
    clear_log t core

let plain_section_begin t core =
  t.plain_section.(core) <- true;
  clear_log t core

let plain_section_end t core =
  record_section t core Oracle.Plain_section;
  t.plain_section.(core) <- false

(* --- Priorities ------------------------------------------------------ *)

(* Priorities ride in a finite bus field (the paper suggests ARUSER);
   saturate at 16 bits like the hardware would. *)
let priority_field_max = 0xFFFF

let party_of t core =
  let c = t.ctxs.(core) in
  match c.Txstate.mode with
  | Txstate.Tl | Txstate.Stl -> { Types.mode = Types.Lock_tx; priority = max_int }
  (* Software transactions are plain parties: their optimistic reads
     and commit-time publishes beat hardware holders (requester-win),
     and nothing can conflict-abort them. *)
  | Txstate.Idle | Txstate.Sw -> Types.non_tx_party
  | Txstate.Htm ->
    let priority =
      match t.sysconf.Sysconf.priority with
      | Policy.No_priority -> 0
      | Policy.Insts_based -> min c.Txstate.insts priority_field_max
      | Policy.Progression_based ->
        (* LosaTM tracks coarse execution phases, not an instruction
           count: quantise so that nearby transactions tie (and fall
           back to the core-id tie-break) — the unfairness the paper's
           insts-based priority avoids. *)
        min (c.Txstate.progress lsr 3) priority_field_max
      | Policy.Static_based -> c.Txstate.static_priority
    in
    { Types.mode = Types.Htm_tx; priority }

(* Fig 4 arbitration: requester wins ties on lower core id. *)
let requester_beats_holder ~requester:(rc, (rp : Types.party))
    ~holder:(hc, (hp : Types.party)) =
  if rp.Types.priority <> hp.Types.priority then
    rp.Types.priority > hp.Types.priority
  else rc < hc

(* --- Wake-up machinery ----------------------------------------------- *)

let wake t core =
  (* Wake-ups are scheduled on the waiter's tile, so this always runs
     in [core]'s partition. *)
  witness_core t core;
  match t.parked.(core) with
  | Some resume ->
    t.parked.(core) <- None;
    Stats.incr t.s_wakeups;
    trace t core Txtrace.Woken;
    emit t core Ledger.Wake ~arg:0;
    Sim.schedule_tile t.sim ~tile:core ~delay:0 resume
  | None ->
    (* The wake-up raced ahead of the reject reply; remember it so the
       park consumes it immediately. *)
    t.pending_wake.(core) <- true

let send_wakeups t core =
  let waiters = Wake_table.drain t.wake ~rejector:core in
  (* The injected lost-wakeup mutation silently drops the first waiter
     of every drain — the bug the no-lost-wakeup invariant and the
     quiescence watchdog exist to expose. *)
  let waiters =
    match t.inject with
    | Some Types.Lost_wakeup -> (
      match waiters with [] -> [] | _ :: rest -> rest)
    | Some _ | None -> waiters
  in
  List.iter
    (fun w ->
      let lat =
        Net.send ~now:(Sim.now t.sim) t.net ~src:core ~dst:w
          ~class_:Msg.Control
      in
      (* The injected short-hop mutation sends the wake-up with zero
         delay instead of the NoC latency: when the waiter sits in
         another partition the hop undercuts the lookahead window — the
         contract violation [Sim.schedule_tile]'s short-hop check (and
         [Pdes.post]'s hard floor) exists to expose. *)
      let lat =
        match t.inject with
        | Some Types.Short_hop_schedule -> 0
        | Some _ | None -> lat
      in
      Sim.schedule_tile t.sim ~tile:w ~delay:lat (fun () -> wake t w))
    waiters

let park t core ~rejector_alive resume =
  (* Runs from the access continuation, which [Protocol.finish]
     delivers on the requester's tile. *)
  witness_core t core;
  if t.pending_wake.(core) then begin
    t.pending_wake.(core) <- false;
    Sim.schedule_tile t.sim ~tile:core ~delay:1 resume
  end
  else if not rejector_alive then
    (* The rejecting transaction already finished; its wake-up will
       never come. Retry shortly instead of parking. *)
    Sim.schedule_tile t.sim ~tile:core ~delay:16 resume
  else begin
    t.parked.(core) <- Some resume;
    t.per_core.(core).parks <- t.per_core.(core).parks + 1;
    trace t core Txtrace.Parked;
    emit t core Ledger.Park ~arg:0;
    Stats.incr t.s_parks
  end

(* --- Abort ------------------------------------------------------------ *)

(* Work cycles of the core's current attempt — elapsed time since
   xbegin minus the deliberate waits ([attempt_stall] plus any wait
   still open); 0 outside an attempt. The age half of every abort-edge
   attribution, and the increment the wasted-cycle counters take when
   the attempt dies. Excluding stall keeps the metric comparable
   across reject policies: a NACK-stall-and-retry system (LockillerTM)
   parks its requesters instead of killing work, and that waiting is
   the policy working, not work destroyed. *)
let attempt_age t core =
  let s = t.attempt_start.(core) in
  if s < 0 then 0
  else begin
    let now = Sim.now t.sim in
    let live =
      let w = t.stall_since.(core) in
      if w >= 0 then now - w else 0
    in
    let age = now - s - t.attempt_stall.(core) - live in
    if age > 0 then age else 0
  end

(* A deliberate wait opens here and closes at the top of the issue
   retry loop (or implicitly when the attempt dies and its stall state
   is reset): both ends are plain array stores, so the reject path
   stays allocation-free. *)
let stall_begin t core = t.stall_since.(core) <- Sim.now t.sim

let stall_end t core =
  let w = t.stall_since.(core) in
  if w >= 0 then begin
    t.attempt_stall.(core) <- t.attempt_stall.(core) + (Sim.now t.sim - w);
    t.stall_since.(core) <- -1
  end

let attempt_clock_reset t core =
  t.attempt_start.(core) <- -1;
  t.attempt_stall.(core) <- 0;
  t.stall_since.(core) <- -1

let attempt_clock_start t core =
  t.attempt_start.(core) <- Sim.now t.sim;
  t.attempt_stall.(core) <- 0;
  t.stall_since.(core) <- -1

(* [aggressor] is the core whose access killed the victim, or -1 for
   environmental aborts (capacity, faults, mutex subscriptions) with
   no single core to blame. *)
let abort_core ?(aggressor = -1) t core reason =
  let c = t.ctxs.(core) in
  (match c.Txstate.mode with
  | Txstate.Tl | Txstate.Stl ->
    invalid_arg "Runtime.abort_core: lock transactions are irrevocable"
  | Txstate.Sw ->
    invalid_arg "Runtime.abort_core: software transactions self-abort"
  | Txstate.Htm | Txstate.Idle -> ());
  let cs = t.per_core.(core) in
  cs.aborts <- cs.aborts + 1;
  cs.abort_reasons.(Reason.index reason) <-
    cs.abort_reasons.(Reason.index reason) + 1;
  let age = attempt_age t core in
  cs.wasted <- cs.wasted + age;
  cs.wasted_by_reason.(Reason.index reason) <-
    cs.wasted_by_reason.(Reason.index reason) + age;
  t.last_abort.(core) <- Sim.now t.sim;
  Stats.incr t.s_aborts;
  trace t core (Txtrace.Abort reason);
  emit t core Ledger.Tx_abort
    ~arg:(Ledger.pack_abort ~reason:(Reason.index reason) ~who:aggressor ~age);
  (* The discard's [Spec_discard] packs the same attempt age, so the
     attempt clock resets only after it. *)
  ignore (Store.discard t.store ~core);
  attempt_clock_reset t core;
  clear_log t core;
  Txstate.abort c reason;
  ignore (Protocol.abort_flush t.proto core);
  (* Transactions parked on us must not wait for a commit that will
     never come. *)
  send_wakeups t core;
  (* If the victim itself was parked, release it so it can observe the
     abort and restart. The abort executes in the aggressor's (home
     directory's) event, so when the victim lives in another partition
     this release is a genuine sub-lookahead cross-partition hop — a
     deliberate, annotated exception to the conservative contract (the
     sequenced kernel merges globally so no causality is lost; the
     true-parallel [Pdes] kernel cannot host this model for exactly
     this reason). [~urgent] keeps it out of the race report while
     still counting it in [short_hops]. *)
  match t.parked.(core) with
  | Some resume ->
    t.parked.(core) <- None;
    Sim.schedule_tile t.sim ~urgent:true ~tile:core ~delay:0 resume
  | None -> ()

(* --- Issue with reject policies -------------------------------------- *)

let reject_reason t ~by =
  match by with
  | None -> Reason.Conflict_lock (* overflow signatures = lock transaction *)
  | Some r -> (
    match t.ctxs.(r).Txstate.mode with
    | Txstate.Tl | Txstate.Stl -> Reason.Conflict_lock
    | Txstate.Htm -> Reason.Conflict_htm
    | Txstate.Sw -> Reason.Conflict_non_tx
    | Txstate.Idle -> Reason.Conflict_htm)

let rejector_alive t ~by =
  match by with
  | Some r -> Txstate.in_critical t.ctxs.(r)
  | None -> t.sig_owner <> None

(* Issue a line-level access on behalf of [core], handling rejects per
   the configured policy. [k] receives [`Granted] or [`Aborted] (the
   surrounding transaction died, possibly because of this access). *)
let issue t core line what ~epoch k =
  let c = t.ctxs.(core) in
  (* The retry loop keeps the attempt counter in a ref so [go] and
     [handle] are each allocated once per issue — the old shape rebuilt
     a [fun () -> go (attempt + 1)] closure (and the outcome handler)
     on every reject, a measurable hot-loop allocation under heavy
     contention. *)
  let attempt = ref 0 in
  let rec go () =
    (* Every reject-wait resumes through here (backoff timers and park
       wake-ups both schedule [go]), so this one call closes any open
       stall span before the retry does more work. *)
    stall_end t core;
    if c.Txstate.epoch <> epoch then k `Aborted
    else Protocol.access t.proto ~core ~line ~what ~epoch ~k:handle
  and handle outcome =
    if c.Txstate.epoch <> epoch then k `Aborted
    else
      match outcome with
      | Types.Granted -> k `Granted
      | Types.Rejected { by } -> begin
        let cs = t.per_core.(core) in
        cs.rejects_received <- cs.rejects_received + 1;
        Stats.incr t.s_rejects;
        trace t core (Txtrace.Rejected { by });
        emit t core Ledger.Reject
          ~arg:
            (Ledger.pack_attr
               ~who:(match by with Some r -> r | None -> -1)
               ~age:(attempt_age t core));
        match c.Txstate.mode with
        | Txstate.Idle | Txstate.Sw ->
          (* Plain accesses cannot abort: bounded retry. *)
          let delay =
            Policy.backoff_delay t.sysconf.Sysconf.retry ~attempt:!attempt
          in
          incr attempt;
          stall_begin t core;
          Sim.schedule_tile t.sim ~tile:core ~delay go
        | Txstate.Tl | Txstate.Stl ->
          (* Lock transactions carry top priority and are never
             rejected by arbitration; be robust anyway. *)
          incr attempt;
          stall_begin t core;
          Sim.schedule_tile t.sim ~tile:core ~delay:16 go
        | Txstate.Htm -> (
          match t.sysconf.Sysconf.reject_policy with
          | Policy.Self_abort ->
            abort_core t core (reject_reason t ~by)
              ~aggressor:(match by with Some r -> r | None -> -1);
            k `Aborted
          | Policy.Retry_later pause ->
            incr attempt;
            stall_begin t core;
            Sim.schedule_tile t.sim ~tile:core ~delay:pause go
          | Policy.Wait_wakeup ->
            incr attempt;
            stall_begin t core;
            park t core ~rejector_alive:(rejector_alive t ~by) go)
      end
  in
  go ()

(* --- The coherence client -------------------------------------------- *)

let spill t core (view : L1.view) =
  (match t.sig_owner with
  | Some o when o = core -> ()
  | Some _ -> invalid_arg "Runtime.spill: signature owned by another core"
  | None -> t.sig_owner <- Some core);
  Stats.incr t.s_spilled_lines;
  emit t core Ledger.Spill ~arg:view.L1.line;
  if view.L1.tx_write then Signature.add t.of_wr view.L1.line
  else Signature.add t.of_rd view.L1.line

let arbitration_rtt t core =
  (* The centralised arbiter sits next to bank 0 (Section III-C allows
     a lightweight centralised module for distributed LLCs). *)
  (2 * Net.latency t.net ~src:core ~dst:0 ~class_:Msg.Control)
  + (Protocol.config t.proto).Protocol.llc_hit_latency

let on_tx_eviction t ~core ~(view : L1.view) =
  let c = t.ctxs.(core) in
  match c.Txstate.mode with
  | Txstate.Tl | Txstate.Stl ->
    spill t core view;
    Client.Spill { write = view.L1.tx_write; extra = 0 }
  | Txstate.Htm
    when t.sysconf.Sysconf.switching && not c.Txstate.switch_tried ->
    c.Txstate.switch_tried <- true;
    let rtt = arbitration_rtt t core in
    if Arbiter.try_acquire t.arb core then begin
      Stats.incr t.s_switch_ok;
      trace t core Txtrace.Switch_granted;
      emit t core Ledger.Switch_granted ~arg:0;
      c.Txstate.mode <- Txstate.Stl;
      (* The transaction is irrevocable from here on: its speculative
         writes become real. *)
      ignore (Store.commit t.store ~core);
      spill t core view;
      Client.Spill { write = view.L1.tx_write; extra = rtt }
    end
    else begin
      Stats.incr t.s_switch_denied;
      trace t core Txtrace.Switch_denied;
      emit t core Ledger.Switch_denied ~arg:0;
      abort_core t core Reason.Capacity;
      Client.Abort_tx rtt
    end
  | Txstate.Htm ->
    abort_core t core Reason.Capacity;
    Client.Abort_tx 0
  | Txstate.Idle | Txstate.Sw ->
    (* Defensive: stray tx bits without a live transaction (software
       transactions never set them). *)
    ignore (Protocol.abort_flush t.proto core);
    Client.Abort_tx 0

let resolve t ~requester ~holder ~line:_ ~write:_ =
  let _, (hp : Types.party) = holder in
  if hp.Types.mode = Types.Lock_tx then Client.Reject_requester
  else if not t.sysconf.Sysconf.recovery then Client.Abort_holder
  else if requester_beats_holder ~requester ~holder then Client.Abort_holder
  else Client.Reject_requester

let llc_check t ~requester:_ ~requester_mode ~line ~write ~would_be_exclusive =
  if requester_mode = Types.Lock_tx then None
    (* only one lock transaction exists: it owns the signatures *)
  else if Signature.test t.of_wr line then Some Client.Reject_requester
  else if Signature.test t.of_rd line && (write || would_be_exclusive) then
    Some Client.Reject_requester
  else None

let on_reject t ~requester ~by ~line:_ =
  match t.sysconf.Sysconf.reject_policy with
  | Policy.Self_abort | Policy.Retry_later _ -> ()
  | Policy.Wait_wakeup -> (
    let rejector = match by with Some r -> Some r | None -> t.sig_owner in
    match rejector with
    | Some r when Txstate.in_critical t.ctxs.(r) ->
      Wake_table.record t.wake ~rejector:r ~waiter:requester
    | Some _ | None -> ())

let client t =
  {
    Client.context =
      (fun ~core ~epoch ->
        let c = t.ctxs.(core) in
        if c.Txstate.epoch <> epoch then None else Some (party_of t core));
    party_of = (fun core -> party_of t core);
    resolve = (fun ~requester ~holder ~line ~write ->
        resolve t ~requester ~holder ~line ~write);
    abort =
      (fun ~victim ~aggressor ~aggressor_mode ~line ->
        let reason =
          Reason.classify_conflict ~aggressor_mode ~line
            ~lock_line:t.lock_line
        in
        abort_core t victim reason ~aggressor);
    tx_age = (fun core -> attempt_age t core);
    on_tx_eviction = (fun ~core ~view -> on_tx_eviction t ~core ~view);
    llc_check =
      (fun ~requester ~requester_mode ~line ~write ~would_be_exclusive ->
        llc_check t ~requester ~requester_mode ~line ~write
          ~would_be_exclusive);
    on_reject = (fun ~requester ~by ~line -> on_reject t ~requester ~by ~line);
  }

(* --- Construction ----------------------------------------------------- *)

let create ?(costs = default_costs) ?inject_bug ~protocol:proto ~store ~sysconf
    ~lock_addr () =
  (match Sysconf.validate sysconf with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runtime.create: " ^ msg));
  let cores = (Protocol.config proto).Protocol.cores in
  let stats = Stats.group "runtime" in
  let sim = Protocol.sim proto in
  let core_regions =
    Array.init cores (fun c ->
        Sim.register_region sim ~name:("runtime[" ^ string_of_int c ^ "]")
          ~tile:c)
  in
  let t =
    {
      proto;
      sim;
      net = Protocol.network proto;
      store;
      sysconf;
      costs;
      lock_addr;
      lock_line = Addr.line_of_byte lock_addr;
      ctxs = Array.init cores Txstate.create;
      wake = Wake_table.create ~cores;
      arb = Arbiter.create ();
      of_rd = Signature.create ();
      of_wr = Signature.create ();
      sig_owner = None;
      parked = Array.make cores None;
      pending_wake = Array.make cores false;
      oracle = None;
      txtrace = None;
      ledger = None;
      lock_held_since = Array.make cores (-1);
      section_start = Array.make cores (-1);
      last_abort = Array.make cores (-1);
      attempt_start = Array.make cores (-1);
      attempt_stall = Array.make cores 0;
      stall_since = Array.make cores (-1);
      op_logs = Array.make cores [];
      plain_section = Array.make cores false;
      sw = Sw_path.create ~cores;
      sw_now = 0;
      sw_peak = 0;
      clock_now = 0;
      inject = inject_bug;
      core_regions;
      per_core =
        Array.init cores (fun _ ->
            {
              starts = 0;
              commits = 0;
              stl_commits = 0;
              lock_commits = 0;
              sw_commits = 0;
              aborts = 0;
              abort_reasons = Array.make Reason.count 0;
              rejects_received = 0;
              parks = 0;
              attempts_at_commit = 0;
              wasted = 0;
              wasted_by_reason = Array.make Reason.count 0;
            });
      stats;
      s_commits = Stats.counter stats "commits";
      s_aborts = Stats.counter stats "aborts";
      s_rejects = Stats.counter stats "rejects";
      s_parks = Stats.counter stats "parks";
      s_wakeups = Stats.counter stats "wakeups";
      s_rescues = Stats.counter stats "watchdog_rescues";
      s_switch_ok = Stats.counter stats "switches_granted";
      s_switch_denied = Stats.counter stats "switches_denied";
      s_spilled_lines = Stats.counter stats "spilled_lines";
      s_lock_busy = Stats.counter stats "lock_busy_aborts";
      s_lock_dwell = Stats.counter stats "lock_dwell_cycles";
      s_sw_commits = Stats.counter stats "sw_commits";
      s_sw_aborts = Stats.counter stats "sw_aborts";
      s_clock_adv = Stats.counter stats "clock_advances";
      d_tx_latency = Stats.hdr stats "tx_latency";
      d_retry_gap = Stats.hdr stats "retry_gap";
      d_lock_dwell = Stats.hdr stats "lock_dwell";
    }
  in
  Protocol.set_client proto (client t);
  (* Point the value-layer hooks at the per-core regions so speculative
     buffer writes and software-set updates are witnessed too. *)
  Store.set_witness store (fun core -> witness_core t core);
  Sw_path.set_witness t.sw (fun core -> witness_core t core);
  (* The value layer's [Spec_discard] packing wants the victim's
     attempt age at the moment the buffer is dropped. *)
  Store.set_age_of store (fun core -> attempt_age t core);
  (* The coherence-level mutation lives in the protocol; the others are
     handled here and ignored there. *)
  Protocol.set_inject_bug proto inject_bug;
  (* Lost-wakeup safety net: if the simulation drains while cores are
     parked, release them (and count it — a healthy run never needs
     this). *)
  Sim.on_quiescent t.sim (fun () ->
      Array.iteri
        (fun core slot ->
          match slot with
          | None -> ()
          | Some resume ->
            t.parked.(core) <- None;
            Stats.incr t.s_rescues;
            Sim.schedule_tile t.sim ~tile:core ~delay:1 resume)
        t.parked);
  t

(* --- Programming interface ------------------------------------------- *)

let xbegin t core ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Idle then
    invalid_arg "Runtime.xbegin: already in a transaction";
  Txstate.begin_htm c;
  trace t core Txtrace.Xbegin;
  emit t core Ledger.Tx_begin ~arg:c.Txstate.attempt;
  attempt_clock_start t core;
  (* First attempt opens the critical section for the latency
     histogram; retries record the abort-to-retry gap. *)
  if c.Txstate.attempt = 0 then t.section_start.(core) <- Sim.now t.sim
  else if t.last_abort.(core) >= 0 then begin
    Stats.record t.d_retry_gap (Sim.now t.sim - t.last_abort.(core));
    t.last_abort.(core) <- -1
  end;
  (* Static priorities are drawn once per transaction, before the first
     attempt, and survive retries (Section III-A: "determined before
     the transaction and remain unchanged"). *)
  if c.Txstate.attempt = 0 then
    c.Txstate.static_priority <-
      (Hashtbl.hash (core, c.Txstate.tx_seq) land 0xFFFF) + 1;
  clear_log t core;
  let cs = t.per_core.(core) in
  cs.starts <- cs.starts + 1;
  let epoch = c.Txstate.epoch in
  Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.begin_cost (fun () ->
      if c.Txstate.epoch <> epoch then k `Busy
      else if t.sysconf.Sysconf.htmlock then k `Started
      else if t.sysconf.Sysconf.fallback = Policy.Tl2 then begin
        match t.sysconf.Sysconf.instrumentation with
        | Policy.Uninstrumented ->
          (* Mutual exclusion with the software path: subscribe to the
             software-mode gate (its population count plays the role
             the fallback lock plays in Listing 1). *)
          issue t core Sw_path.gate_line Types.Read ~epoch (function
            | `Aborted -> k `Busy
            | `Granted ->
              c.Txstate.insts <- c.Txstate.insts + 1;
              if Store.committed t.store Sw_path.gate_addr <> 0 then begin
                Stats.incr t.s_lock_busy;
                abort_core t core Reason.Conflict_mutex;
                k `Busy
              end
              else k `Started)
        | Policy.Read_check ->
          (* Sample (and subscribe to) the global clock's line; abort
             if a software writer commit is in flight. *)
          issue t core Global_clock.line Types.Read ~epoch (function
            | `Aborted -> k `Busy
            | `Granted ->
              c.Txstate.insts <- c.Txstate.insts + 1;
              if Global_clock.commit_locked t.store then begin
                Stats.incr t.s_lock_busy;
                abort_core t core Reason.Conflict_mutex;
                k `Busy
              end
              else k `Started)
        | Policy.Access_check -> k `Started
      end
      else
        (* Best-effort idiom: subscribe to the fallback lock by reading
           it transactionally (Listing 1, line 8). *)
        issue t core t.lock_line Types.Read ~epoch (function
          | `Aborted -> k `Busy
          | `Granted ->
            c.Txstate.insts <- c.Txstate.insts + 1;
            if Store.committed t.store t.lock_addr <> 0 then begin
              (* xabort(TME_LOCK_IS_ACQUIRED) *)
              Stats.incr t.s_lock_busy;
              abort_core t core Reason.Conflict_mutex;
              k `Busy
            end
            else k `Started))

(* A critical section completed (HTM commit, hlend or plain fallback):
   close out the latency histogram sample. *)
let close_section t core =
  let ss = t.section_start.(core) in
  if ss >= 0 then begin
    Stats.record t.d_tx_latency (Sim.now t.sim - ss);
    t.section_start.(core) <- -1
  end;
  t.last_abort.(core) <- -1;
  attempt_clock_reset t core

let xend t core ~k =
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Htm then
    invalid_arg "Runtime.xend: not in an HTM transaction";
  let epoch = c.Txstate.epoch in
  Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.commit_cost (fun () ->
      witness_core t core;
      (* A conflict may still kill us during the commit window. The
         injected dirty-commit mutation skips exactly this guard, so a
         killed transaction publishes its commit anyway. *)
      let guard_ok =
        match t.inject with
        | Some Types.Dirty_commit -> true
        | Some _ | None -> c.Txstate.epoch = epoch
      in
      if not guard_ok then k ()
      else begin
        (* Instrumented hybrid schemes: a hardware commit must be
           visible to software read-set validation, so stamp the
           version slot of every written line with [clock + 1] —
           without advancing the clock (the GV5 lazy idiom; software
           readers catch the clock up). The stamps are poked, not
           issued: hardware-assisted stamping rides the commit's own
           write-backs. The lock bit is preserved and versions only
           ever grow. *)
        let stamp_written =
          t.sysconf.Sysconf.fallback = Policy.Tl2
          && t.sysconf.Sysconf.instrumentation <> Policy.Uninstrumented
        in
        let written_slots = ref [] in
        if stamp_written then
          Store.iter_buffered t.store ~core (fun addr _ ->
              let slot = Sw_path.slot_of_line (Addr.line_of_byte addr) in
              if not (List.mem slot !written_slots) then
                written_slots := slot :: !written_slots);
        ignore (Protocol.commit_flush t.proto core);
        ignore (Store.commit t.store ~core);
        if stamp_written && !written_slots <> [] then begin
          let wt = Global_clock.write_stamp t.store in
          List.iter
            (fun slot ->
              let a = Sw_path.meta_addr_of_slot slot in
              let old = Store.committed t.store a in
              let nv = Int.max (Sw_path.version_of old) wt in
              let word = Sw_path.stamp_word nv lor (old land 1) in
              Store.poke t.store a word)
            !written_slots
        end;
        record_section t core Oracle.Htm_commit;
        trace t core Txtrace.Commit;
        emit t core Ledger.Tx_commit ~arg:(c.Txstate.attempt + 1);
        let cs = t.per_core.(core) in
        cs.commits <- cs.commits + 1;
        cs.attempts_at_commit <-
          cs.attempts_at_commit + c.Txstate.attempt + 1;
        Stats.incr t.s_commits;
        close_section t core;
        Txstate.finish c;
        send_wakeups t core;
        k ()
      end)

let hlbegin t core ~k =
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Idle then
    invalid_arg "Runtime.hlbegin: already in a transaction";
  let rec acquire_authorization () =
    let rtt = arbitration_rtt t core in
    Sim.schedule_tile t.sim ~tile:core ~delay:rtt (fun () ->
        witness_core t core;
        if Arbiter.try_acquire t.arb core then begin
          c.Txstate.mode <- Txstate.Tl;
          c.Txstate.pending_abort <- None;
          Txstate.reset_attempt c;
          clear_log t core;
          if t.section_start.(core) < 0 then
            t.section_start.(core) <- Sim.now t.sim;
          attempt_clock_start t core;
          trace t core Txtrace.Hlbegin;
          emit t core Ledger.Hl_begin ~arg:0;
          k ()
        end
        else
          (* An STL transaction holds the authorization; it cannot be
             aborted, so wait for its hlend. *)
          Sim.schedule_tile t.sim ~tile:core ~delay:64 acquire_authorization)
  in
  if t.sysconf.Sysconf.switching then acquire_authorization ()
  else
    Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.begin_cost (fun () ->
        witness_core t core;
        ignore (Arbiter.try_acquire t.arb core);
        c.Txstate.mode <- Txstate.Tl;
        c.Txstate.pending_abort <- None;
        Txstate.reset_attempt c;
        clear_log t core;
        if t.section_start.(core) < 0 then
          t.section_start.(core) <- Sim.now t.sim;
        attempt_clock_start t core;
        trace t core Txtrace.Hlbegin;
        emit t core Ledger.Hl_begin ~arg:0;
        k ())

let hlend t core ~k =
  let c = t.ctxs.(core) in
  (match c.Txstate.mode with
  | Txstate.Tl | Txstate.Stl -> ()
  | Txstate.Htm | Txstate.Idle | Txstate.Sw ->
    invalid_arg "Runtime.hlend: not in HTMLock mode");
  let was_stl = c.Txstate.mode = Txstate.Stl in
  Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.commit_cost (fun () ->
      witness_core t core;
      ignore (Protocol.commit_flush t.proto core);
      ignore (Store.commit t.store ~core);
      (match t.sig_owner with
      | Some o when o = core ->
        Signature.clear t.of_rd;
        Signature.clear t.of_wr;
        t.sig_owner <- None
      | Some _ | None -> ());
      (match Arbiter.holder t.arb with
      | Some h when h = core -> Arbiter.release t.arb core
      | Some _ | None -> ());
      record_section t core
        (if was_stl then Oracle.Stl_commit else Oracle.Tl_commit);
      trace t core (Txtrace.Hlend { was_stl });
      emit t core Ledger.Hl_end ~arg:(if was_stl then 1 else 0);
      let cs = t.per_core.(core) in
      if was_stl then cs.stl_commits <- cs.stl_commits + 1
      else cs.lock_commits <- cs.lock_commits + 1;
      close_section t core;
      Txstate.finish c;
      send_wakeups t core;
      k ())

let ttest t core = t.ctxs.(core).Txstate.mode

(* --- Memory operations ------------------------------------------------ *)

let speculative t core =
  t.ctxs.(core).Txstate.mode = Txstate.Htm

let progress_tick t core =
  let c = t.ctxs.(core) in
  c.Txstate.insts <- c.Txstate.insts + 1;
  if c.Txstate.mode = Txstate.Htm then
    c.Txstate.progress <- c.Txstate.progress + 1

(* --- TL2-style software fallback path --------------------------------- *)

let sw_gated t =
  t.sysconf.Sysconf.instrumentation = Policy.Uninstrumented

(* The single funnel for version-clock advances: the store word stays
   authoritative, [clock_now] mirrors it for the allocation-free
   telemetry gauge, and every effective advance is counted and
   ledgered. *)
let advance_clock t core ~to_ =
  if Global_clock.advance t.store ~to_ then begin
    t.clock_now <- to_;
    Stats.incr t.s_clock_adv;
    emit t core Ledger.Clock_advance ~arg:to_
  end

(* Leave software mode at the gate (Uninstrumented only): RMW the
   population count down. Runs after [Txstate] already left Sw, so the
   access is an ordinary plain access. *)
let sw_gate_leave t core ~k =
  if sw_gated t then
    let c = t.ctxs.(core) in
    issue t core Sw_path.gate_line Types.Rmw ~epoch:c.Txstate.epoch (fun _ ->
        let g = Store.committed t.store Sw_path.gate_addr in
        Store.write t.store ~core ~speculative:false Sw_path.gate_addr (g - 1);
        k ())
  else k ()

(* Abort the running software transaction: restore the stamp word of
   every commit-time lock we hold, drop the read/write sets and the
   speculative buffer, then leave the gate. *)
let sw_abort ?(aggressor = -1) t core reason ~k =
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Sw then
    invalid_arg "Runtime.sw_abort: not in a software transaction";
  Sw_path.iter_writes t.sw ~core (fun slot ->
      match Sw_path.owner t.sw slot with
      | Some o when o = core ->
        let a = Sw_path.meta_addr_of_slot slot in
        let old = Store.committed t.store a in
        Store.poke t.store a (Sw_path.stamp_word (Sw_path.version_of old));
        Sw_path.unlock t.sw ~core slot
      | Some _ | None -> ());
  Sw_path.reset t.sw core;
  let cs = t.per_core.(core) in
  cs.aborts <- cs.aborts + 1;
  cs.abort_reasons.(Reason.index reason) <-
    cs.abort_reasons.(Reason.index reason) + 1;
  let age = attempt_age t core in
  cs.wasted <- cs.wasted + age;
  cs.wasted_by_reason.(Reason.index reason) <-
    cs.wasted_by_reason.(Reason.index reason) + age;
  t.last_abort.(core) <- Sim.now t.sim;
  Stats.incr t.s_aborts;
  Stats.incr t.s_sw_aborts;
  trace t core (Txtrace.Abort reason);
  emit t core Ledger.Sw_abort
    ~arg:(Ledger.pack_abort ~reason:(Reason.index reason) ~who:aggressor ~age);
  ignore (Store.discard t.store ~core);
  attempt_clock_reset t core;
  clear_log t core;
  t.sw_now <- t.sw_now - 1;
  Txstate.abort c reason;
  sw_gate_leave t core ~k

let swbegin t core ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Idle then
    invalid_arg "Runtime.swbegin: already in a transaction";
  c.Txstate.mode <- Txstate.Sw;
  c.Txstate.pending_abort <- None;
  Txstate.reset_attempt c;
  Sw_path.reset t.sw core;
  clear_log t core;
  if t.section_start.(core) < 0 then t.section_start.(core) <- Sim.now t.sim
  else if t.last_abort.(core) >= 0 then begin
    Stats.record t.d_retry_gap (Sim.now t.sim - t.last_abort.(core));
    t.last_abort.(core) <- -1
  end;
  let cs = t.per_core.(core) in
  cs.starts <- cs.starts + 1;
  attempt_clock_start t core;
  t.sw_now <- t.sw_now + 1;
  t.sw_peak <- Int.max t.sw_peak t.sw_now;
  let epoch = c.Txstate.epoch in
  let sample_clock () =
    issue t core Global_clock.line Types.Read ~epoch (fun _ ->
        c.Txstate.rv <- Global_clock.read t.store;
        emit t core Ledger.Sw_begin ~arg:c.Txstate.rv;
        k ())
  in
  Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.begin_cost (fun () ->
      if sw_gated t then
        (* Enter software mode at the gate: the RMW kills every
           hardware transaction subscribed to the gate line. *)
        issue t core Sw_path.gate_line Types.Rmw ~epoch (fun _ ->
            let g = Store.committed t.store Sw_path.gate_addr in
            Store.write t.store ~core ~speculative:false Sw_path.gate_addr
              (g + 1);
            sample_clock ())
      else sample_clock ())

let sw_read t core ~addr ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  let epoch = c.Txstate.epoch in
  let line = Addr.line_of_byte addr in
  let slot = Sw_path.slot_of_line line in
  (* TL2 read: load the slot's stamp first; a locked or too-new stamp
     aborts the transaction (after catching the clock up, so the retry
     starts with a fresh enough read version). *)
  issue t core (Sw_path.meta_line line) Types.Read ~epoch (function
    | `Aborted -> k Tx_aborted
    | `Granted ->
      let word = Store.committed t.store (Sw_path.meta_addr_of_slot slot) in
      let version = Sw_path.version_of word in
      let holder = Sw_path.owner_id t.sw slot in
      let locked_by_other = Sw_path.locked word && holder <> core in
      let abort ~aggressor =
        sw_abort t core ~aggressor Reason.Validation
          ~k:(fun () -> k Tx_aborted)
      in
      if version > c.Txstate.rv then
        (* Clock catch-up — needed under GV5 by design, and under GV1
           whenever an instrumented hardware commit stamped
           [clock + 1] without advancing the clock. The stamping
           committer is long gone, so the edge is environmental. *)
        issue t core Global_clock.line Types.Rmw ~epoch (fun _ ->
            advance_clock t core ~to_:version;
            abort ~aggressor:(-1))
      else if locked_by_other then abort ~aggressor:holder
      else
        issue t core line Types.Read ~epoch (function
          | `Aborted -> k Tx_aborted
          | `Granted ->
            progress_tick t core;
            let v = Store.read t.store ~core ~speculative:true addr in
            Sw_path.note_read t.sw ~core ~slot ~version;
            log_op t core (Oracle.R (addr, v));
            k (Ok v)))

let sw_write t core ~addr ~value ~k =
  (* Deferred write: buffer the value and remember the slot; the
     coherence traffic (lock, publish, stamp) happens at commit. *)
  witness_core t core;
  progress_tick t core;
  Store.write t.store ~core ~speculative:true addr value;
  Sw_path.note_write t.sw ~core ~slot:(Sw_path.slot_of_line (Addr.line_of_byte addr));
  log_op t core (Oracle.W (addr, value));
  Sim.schedule_tile t.sim ~tile:core ~delay:1 (fun () -> k (Ok 0))

let sw_fetch_add t core ~addr ~delta ~k =
  sw_read t core ~addr ~k:(function
    | Tx_aborted -> k Tx_aborted
    | Ok v ->
      Store.write t.store ~core ~speculative:true addr (v + delta);
      Sw_path.note_write t.sw ~core
        ~slot:(Sw_path.slot_of_line (Addr.line_of_byte addr));
      log_op t core (Oracle.W (addr, v + delta));
      k (Ok v))

let sw_commit t core ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Sw then
    invalid_arg "Runtime.sw_commit: not in a software transaction";
  let epoch = c.Txstate.epoch in
  let nwrites = Sw_path.writes t.sw ~core in
  Sw_path.sort_writes t.sw ~core;
  let wslots = ref [] in
  Sw_path.iter_writes t.sw ~core (fun s -> wslots := s :: !wslots);
  let wslots = List.rev !wslots in
  let read_check = t.sysconf.Sysconf.instrumentation = Policy.Read_check in
  let fail ~aggressor () =
    if read_check && nwrites > 0 then Global_clock.set_commit_flag t.store false;
    sw_abort t core ~aggressor Reason.Validation ~k:(fun () -> k `Aborted)
  in
  (* Phase 1 — commit-time write locks, in ascending slot order (the
     RMW on each stamp line also kills, under Access_check, every
     hardware transaction that touched the slot). *)
  let rec lock_phase remaining k2 =
    match remaining with
    | [] -> k2 ()
    | slot :: rest ->
      issue t core (Sw_path.meta_line_of_slot slot) Types.Rmw ~epoch
        (function
        | `Aborted -> fail ~aggressor:(-1) ()
        | `Granted ->
          if Sw_path.try_lock t.sw ~core slot then begin
            let a = Sw_path.meta_addr_of_slot slot in
            let old = Store.committed t.store a in
            Store.write t.store ~core ~speculative:false a
              (Sw_path.lock_word old);
            lock_phase rest k2
          end
          else
            (* Lost the lock race: the slot's current holder is the
               aggressor. *)
            fail ~aggressor:(Sw_path.owner_id t.sw slot) ())
  in
  (* Phase 2 — the write stamp. GV1 RMWs the clock (killing, under
     Read_check, every hardware transaction subscribed to it — and
     raising the commit-in-progress flag until publish); GV5 stamps
     [clock + 1] without any clock traffic. Read-only commits skip the
     clock entirely. *)
  let clock_phase k2 =
    if nwrites = 0 then k2 ~wt:0
    else
      match t.sysconf.Sysconf.clock with
      | Policy.Gv5 -> k2 ~wt:(Global_clock.write_stamp t.store)
      | Policy.Gv1 ->
        issue t core Global_clock.line Types.Rmw ~epoch (fun _ ->
            let wt = Global_clock.write_stamp t.store in
            if read_check then Global_clock.set_commit_flag t.store true
            else advance_clock t core ~to_:wt;
            k2 ~wt)
  in
  (* Phase 3 — validate, publish, stamp, unlock and record in one
     simulated instant: the record's end time is the serialization
     point, and every slot we wrote stays locked (aborting any reader)
     until that instant, so completion order stays a valid
     serialization order. The publish write-backs are charged (and
     kill hardware transactions still holding stale copies) after. *)
  let finish ~wt =
    let valid = ref true in
    (* First failing slot's lock holder, if one exists: the committer
       that invalidated us. A bare version mismatch (the writer already
       unlocked) stays environmental. *)
    let culprit = ref (-1) in
    Sw_path.iter_reads t.sw ~core (fun slot version ->
        let word = Store.committed t.store (Sw_path.meta_addr_of_slot slot) in
        let ok =
          Sw_path.version_of word = version
          && ((not (Sw_path.locked word))
             || Sw_path.owner t.sw slot = Some core)
        in
        if not ok then begin
          if !valid && !culprit < 0 then begin
            let o = Sw_path.owner_id t.sw slot in
            if o >= 0 && o <> core then culprit := o
          end;
          valid := false
        end);
    if not !valid then fail ~aggressor:!culprit ()
    else begin
      let published = ref [] in
      Store.iter_buffered t.store ~core (fun a _ ->
          let line = Addr.line_of_byte a in
          if not (List.mem line !published) then published := line :: !published);
      ignore (Store.commit t.store ~core);
      List.iter
        (fun slot ->
          let a = Sw_path.meta_addr_of_slot slot in
          let old = Store.committed t.store a in
          let nv = Int.max (Sw_path.version_of old) wt in
          Store.poke t.store a (Sw_path.stamp_word nv);
          Sw_path.unlock t.sw ~core slot)
        wslots;
      if read_check && nwrites > 0 then begin
        advance_clock t core ~to_:wt;
        Global_clock.set_commit_flag t.store false
      end;
      record_section t core Oracle.Sw_commit;
      emit t core Ledger.Sw_commit ~arg:wt;
      let cs = t.per_core.(core) in
      cs.sw_commits <- cs.sw_commits + 1;
      Stats.incr t.s_sw_commits;
      close_section t core;
      Sw_path.reset t.sw core;
      t.sw_now <- t.sw_now - 1;
      Txstate.finish c;
      let rec drain = function
        | [] -> sw_gate_leave t core ~k:(fun () -> k `Committed)
        | line :: rest ->
          issue t core line Types.Write ~epoch:c.Txstate.epoch (fun _ ->
              drain rest)
      in
      drain (List.rev !published)
    end
  in
  Sim.schedule_tile t.sim ~tile:core ~delay:t.costs.commit_cost (fun () ->
      lock_phase wslots (fun () -> clock_phase (fun ~wt -> finish ~wt)))

(* Instrumented hardware pre-access (the HyTM cost): one extra
   transactional load per access that both charges the instrumentation
   cycles and creates the coherence subscription the software path's
   commit-time kills rely on. *)
let hw_pre_access t core ~line ~is_read ~epoch k =
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Htm || t.sysconf.Sysconf.fallback <> Policy.Tl2
  then k `Granted
  else
    match t.sysconf.Sysconf.instrumentation with
    | Policy.Uninstrumented -> k `Granted
    | Policy.Read_check ->
      if not is_read then k `Granted
      else
        issue t core Global_clock.line Types.Read ~epoch (function
          | `Aborted -> k `Aborted
          | `Granted ->
            c.Txstate.insts <- c.Txstate.insts + 1;
            if Global_clock.commit_locked t.store then begin
              Stats.incr t.s_lock_busy;
              abort_core t core Reason.Conflict_mutex;
              k `Aborted
            end
            else k `Granted)
    | Policy.Access_check ->
      issue t core (Sw_path.meta_line line) Types.Read ~epoch (function
        | `Aborted -> k `Aborted
        | `Granted ->
          c.Txstate.insts <- c.Txstate.insts + 1;
          let word =
            Store.committed t.store
              (Sw_path.meta_addr_of_slot (Sw_path.slot_of_line line))
          in
          if Sw_path.locked word then begin
            Stats.incr t.s_lock_busy;
            abort_core t core Reason.Conflict_mutex;
            k `Aborted
          end
          else k `Granted)

let read t core ~addr ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode = Txstate.Sw then sw_read t core ~addr ~k
  else
    let epoch = c.Txstate.epoch in
    let line = Addr.line_of_byte addr in
    hw_pre_access t core ~line ~is_read:true ~epoch (function
      | `Aborted -> k Tx_aborted
      | `Granted ->
        issue t core line Types.Read ~epoch (function
          | `Aborted -> k Tx_aborted
          | `Granted ->
            progress_tick t core;
            let v =
              Store.read t.store ~core ~speculative:(speculative t core) addr
            in
            log_op t core (Oracle.R (addr, v));
            k (Ok v)))

let write t core ~addr ~value ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode = Txstate.Sw then sw_write t core ~addr ~value ~k
  else
    let epoch = c.Txstate.epoch in
    let line = Addr.line_of_byte addr in
    hw_pre_access t core ~line ~is_read:false ~epoch (function
      | `Aborted -> k Tx_aborted
      | `Granted ->
        issue t core line Types.Write ~epoch (function
          | `Aborted -> k Tx_aborted
          | `Granted ->
            progress_tick t core;
            Store.write t.store ~core ~speculative:(speculative t core) addr
              value;
            log_op t core (Oracle.W (addr, value));
            k (Ok 0)))

let fetch_add t core ~addr ~delta ~k =
  witness_core t core;
  let c = t.ctxs.(core) in
  if c.Txstate.mode = Txstate.Sw then sw_fetch_add t core ~addr ~delta ~k
  else
    let epoch = c.Txstate.epoch in
    let line = Addr.line_of_byte addr in
    hw_pre_access t core ~line ~is_read:true ~epoch (function
      | `Aborted -> k Tx_aborted
      | `Granted ->
        issue t core line Types.Rmw ~epoch (function
          | `Aborted -> k Tx_aborted
          | `Granted ->
            progress_tick t core;
            let speculative = speculative t core in
            let v = Store.read t.store ~core ~speculative addr in
            Store.write t.store ~core ~speculative addr (v + delta);
            log_op t core (Oracle.R (addr, v));
            log_op t core (Oracle.W (addr, v + delta));
            k (Ok v)))

let add_insts t core n =
  let c = t.ctxs.(core) in
  c.Txstate.insts <- c.Txstate.insts + n

let fault t core ~k =
  let c = t.ctxs.(core) in
  match c.Txstate.mode with
  | Txstate.Htm ->
    abort_core t core Reason.Fault;
    (* Resolving the exception runs the OS handler on this core, which
       pollutes the L1: the retry / fallback path restarts cold. *)
    ignore (Protocol.flush_core t.proto core);
    k `Died
  | Txstate.Tl | Txstate.Stl | Txstate.Idle | Txstate.Sw ->
    k (`Survived t.costs.fault_cost)

(* --- Spinlock --------------------------------------------------------- *)

(* Ticket-lock state lives on two separate lines: the ticket dispenser
   on the lock line, the now-serving counter on the next line. *)
let serving_addr t = t.lock_addr + Addr.line_size

let note_lock_acquired t core =
  t.lock_held_since.(core) <- Sim.now t.sim;
  emit t core Ledger.Lock_acquire ~arg:0

let note_lock_released t core =
  let since = t.lock_held_since.(core) in
  if since >= 0 then begin
    Stats.add t.s_lock_dwell (Sim.now t.sim - since);
    Stats.record t.d_lock_dwell (Sim.now t.sim - since);
    t.lock_held_since.(core) <- -1
  end;
  emit t core Ledger.Lock_release ~arg:0

let lock_acquire_ttas t core ~k =
  let c = t.ctxs.(core) in
  (* Spin backoff is much tighter than the transactional retry backoff:
     a test-and-test-and-set waiter re-probes within ~a miss latency of
     the release, as real spinlocks do. *)
  let retry =
    { t.sysconf.Sysconf.retry with Policy.backoff_base = 32; backoff_cap = 1024 }
  in
  (* One closure per role, allocated once per acquisition; the attempt
     counter lives in a ref so re-probing schedules [spin] itself
     instead of building a fresh thunk per backoff. *)
  let attempt = ref 0 in
  let rec test_and_set () =
    issue t core t.lock_line Types.Rmw ~epoch:c.Txstate.epoch on_tas
  and on_tas = function
    | `Aborted -> test_and_set ()
    | `Granted ->
      if Store.committed t.store t.lock_addr = 0 then begin
        Store.write t.store ~core ~speculative:false t.lock_addr 1;
        trace t core Txtrace.Lock_acquired;
        note_lock_acquired t core;
        k ()
      end
      else begin
        attempt := 0;
        spin ()
      end
  and spin () =
    issue t core t.lock_line Types.Read ~epoch:c.Txstate.epoch on_spin
  and on_spin = function
    | `Aborted -> spin ()
    | `Granted ->
      if Store.committed t.store t.lock_addr = 0 then test_and_set ()
      else begin
        let delay = Policy.backoff_delay retry ~attempt:!attempt in
        incr attempt;
        Sim.schedule_tile t.sim ~tile:core ~delay spin
      end
  in
  test_and_set ()

let lock_acquire_ticket t core ~k =
  let c = t.ctxs.(core) in
  let serving_line = Addr.line_of_byte (serving_addr t) in
  let epoch = c.Txstate.epoch in
  (* draw a ticket *)
  issue t core t.lock_line Types.Rmw ~epoch (fun _ ->
      let my = Store.committed t.store t.lock_addr in
      Store.write t.store ~core ~speculative:false t.lock_addr (my + 1);
      let attempt = ref 0 in
      let rec spin () = issue t core serving_line Types.Read ~epoch on_read
      and on_read _ =
        if Store.committed t.store (serving_addr t) = my then begin
          trace t core Txtrace.Lock_acquired;
          note_lock_acquired t core;
          k ()
        end
        else begin
          let delay = min 512 (16 * (1 + !attempt)) in
          incr attempt;
          Sim.schedule_tile t.sim ~tile:core ~delay spin
        end
      in
      spin ())

let lock_acquire t core ~k =
  let c = t.ctxs.(core) in
  if c.Txstate.mode <> Txstate.Idle then
    invalid_arg "Runtime.lock_acquire: must run non-speculatively";
  match t.sysconf.Sysconf.lock with
  | Policy.Ttas -> lock_acquire_ttas t core ~k
  | Policy.Ticket -> lock_acquire_ticket t core ~k

let note_lock_commit t core =
  let cs = t.per_core.(core) in
  cs.lock_commits <- cs.lock_commits + 1;
  close_section t core

let lock_release t core ~k =
  let c = t.ctxs.(core) in
  let epoch = c.Txstate.epoch in
  match t.sysconf.Sysconf.lock with
  | Policy.Ttas ->
    issue t core t.lock_line Types.Write ~epoch (function
      | `Aborted | `Granted ->
        Store.write t.store ~core ~speculative:false t.lock_addr 0;
        trace t core Txtrace.Lock_released;
        note_lock_released t core;
        k ())
  | Policy.Ticket ->
    let serving_line = Addr.line_of_byte (serving_addr t) in
    issue t core serving_line Types.Write ~epoch (function
      | `Aborted | `Granted ->
        let s_addr = serving_addr t in
        Store.write t.store ~core ~speculative:false s_addr
          (Store.committed t.store s_addr + 1);
        trace t core Txtrace.Lock_released;
        note_lock_released t core;
        k ())
