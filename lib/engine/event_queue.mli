(** Pending-event set of the discrete-event kernel.

    Two interchangeable backends pop events in exactly the same
    (time, insertion) order — the sequence number assigned at insertion
    breaks same-cycle ties, so every simulation run is fully
    deterministic under either:

    - [Wheel] (the default): a calendar-queue / timing-wheel hybrid. A
      near wheel of power-of-two buckets (one cycle per bucket) serves
      the common case — events scheduled within ~1k cycles of the clock
      — in O(1) with zero steady-state allocation (entries are recycled
      through a freelist); events beyond the horizon overflow into a
      small min-heap and are drained back as the window advances.
    - [Heap]: the classic array-backed binary min-heap, kept as the
      simple reference implementation for differential testing. *)

type backend = Heap | Wheel

type 'a t

val create : ?backend:backend -> ?seq:int ref -> unit -> 'a t
(** Defaults to [Wheel]. [seq] supplies a shared insertion counter:
    queues created with the same ref draw sequence numbers from one
    global stream, so (time, seq) remains a total order {e across}
    queues — the property the PDES partition merge relies on. Omitted,
    the queue gets a private counter (the classic behaviour). *)

val backend : 'a t -> backend

val is_empty : 'a t -> bool

val length : 'a t -> int

val add : 'a t -> time:int -> 'a -> unit
(** [add q ~time ev] schedules [ev] at [time]. [time] may equal the time
    of previously popped events (the kernel enforces monotonicity, not
    the queue); times far in the past of the current window are legal
    but leave the wheel's fast path. *)

val pop : 'a t -> (int * 'a) option
(** Remove and return the earliest event, insertion order breaking
    ties. The queue drops every internal reference to the popped
    payload — nothing popped is kept live by the queue. *)

val peek_time : 'a t -> int option
(** Time of the earliest pending event, if any. *)

(** {2 Allocation-free hot path}

    [pop] boxes every event in a tuple and an option — 5 minor words
    per event, which dominates steady-state kernel allocation. The
    kernel uses the unboxed pair below instead. *)

val no_event : int
(** Sentinel returned by {!next_time} on an empty queue ([min_int],
    never a legal event time for the kernel). *)

val next_time : 'a t -> int
(** Time of the earliest pending event, or {!no_event} when empty.
    Never allocates. *)

val pop_payload : 'a t -> 'a
(** Remove the earliest event (same order as {!pop}) and return its
    payload bare; read its time with {!next_time} first. Never
    allocates. Raises [Invalid_argument] on an empty queue. *)

val min_seq : 'a t -> int
(** Sequence number of the earliest pending event ([max_int] when
    empty) — the cross-queue tie-break for merging several queues that
    share a [seq] counter: among queues agreeing on {!next_time}, the
    one with the smallest [min_seq] holds the globally next event.
    Never allocates. *)

(** {2 Schedule exploration}

    The model explorer and schedule fuzzer in [lockiller.check] treat
    the group of pending events sharing the earliest time — the
    {e runnable set} — as the nondeterminism of the model: the kernel
    normally fires them in insertion order, and these two calls let a
    checker pick any other member instead. Neither is ever called by
    the kernel unless a chooser is installed on the {!Sim}. *)

val runnable : 'a t -> int
(** Number of pending events sharing the earliest pending time (0 when
    empty). *)

val pop_payload_nth : 'a t -> int -> 'a
(** [pop_payload_nth q k] removes and returns the payload of the [k]-th
    (0-based, insertion order) event among the earliest-time events.
    [pop_payload_nth q 0] is exactly {!pop_payload}. Raises
    [Invalid_argument] when [k] is out of range or the queue is
    empty. *)

val runnable_seq : 'a t -> int -> int
(** [runnable_seq q k] is the sequence number of the [k]-th (0-based,
    insertion order) event of the runnable set, without removing it.
    With a shared [seq] counter this ranks runnable events {e across}
    partition queues, which is how the partitioned kernel presents one
    merged runnable set to a chooser. Raises [Invalid_argument] when
    [k] is out of range or the queue is empty. *)

val clear : 'a t -> unit
