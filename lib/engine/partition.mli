(** Contiguous block partition of [items] indices across [domains]
    blocks — the tile→domain map of the conservative-PDES split.

    Block [b] covers [[b*items/domains, (b+1)*items/domains)]: block
    sizes differ by at most one, neighbouring indices share a block,
    and the mapping is pure arithmetic (identical on every domain, no
    allocation). *)

type t

val create : items:int -> domains:int -> t
(** [create ~items ~domains] partitions [0..items-1] into [domains]
    contiguous blocks. [domains] is clamped to [items] (never an empty
    block); both must be positive. *)

val items : t -> int

val domains : t -> int
(** Number of blocks after clamping. *)

val of_item : t -> int -> int
(** Block owning an item. Raises [Invalid_argument] out of range. *)

val bounds : t -> int -> int * int
(** [bounds t b] is the half-open item range [(lo, hi)] of block [b]. *)

val size : t -> int -> int
(** [size t b = hi - lo] of {!bounds}. *)
