type kind =
  | Tx_begin
  | Tx_commit
  | Tx_abort
  | Nack
  | Reject
  | Abort_kill
  | Park
  | Wake
  | Lock_acquire
  | Lock_release
  | Hl_begin
  | Hl_end
  | Switch_granted
  | Switch_denied
  | Spill
  | Spec_publish
  | Spec_discard
  | Sw_begin
  | Sw_commit
  | Sw_abort
  | Clock_advance

let kinds =
  [
    Tx_begin; Tx_commit; Tx_abort; Nack; Reject; Abort_kill; Park; Wake;
    Lock_acquire; Lock_release; Hl_begin; Hl_end; Switch_granted;
    Switch_denied; Spill; Spec_publish; Spec_discard; Sw_begin; Sw_commit;
    Sw_abort; Clock_advance;
  ]

let kind_code = function
  | Tx_begin -> 0
  | Tx_commit -> 1
  | Tx_abort -> 2
  | Nack -> 3
  | Reject -> 4
  | Abort_kill -> 5
  | Park -> 6
  | Wake -> 7
  | Lock_acquire -> 8
  | Lock_release -> 9
  | Hl_begin -> 10
  | Hl_end -> 11
  | Switch_granted -> 12
  | Switch_denied -> 13
  | Spill -> 14
  | Spec_publish -> 15
  | Spec_discard -> 16
  | Sw_begin -> 17
  | Sw_commit -> 18
  | Sw_abort -> 19
  | Clock_advance -> 20

let kind_table = Array.of_list kinds

let kind_of_code c =
  if c >= 0 && c < Array.length kind_table then Some kind_table.(c) else None

let kind_label = function
  | Tx_begin -> "xbegin"
  | Tx_commit -> "commit"
  | Tx_abort -> "abort"
  | Nack -> "nack"
  | Reject -> "reject"
  | Abort_kill -> "kill"
  | Park -> "park"
  | Wake -> "wake"
  | Lock_acquire -> "lock-acquire"
  | Lock_release -> "lock-release"
  | Hl_begin -> "hlbegin"
  | Hl_end -> "hlend"
  | Switch_granted -> "switch-granted"
  | Switch_denied -> "switch-denied"
  | Spill -> "spill"
  | Spec_publish -> "spec-publish"
  | Spec_discard -> "spec-discard"
  | Sw_begin -> "swbegin"
  | Sw_commit -> "swcommit"
  | Sw_abort -> "swabort"
  | Clock_advance -> "clock"

(* Attribution packing. Conflict records ([Nack], [Reject],
   [Abort_kill]) and abort records ([Tx_abort], [Sw_abort]) carry the
   responsible core and the victim's cycles-since-begin in one int arg:
   11 bits of [who + 1] (cores are bounded by 1024; -1 = environmental)
   plus the age in the bits above, with aborts keeping their reason
   code in the low 4 bits. 63-bit ints absorb any realistic age. *)

let attr_who_bits = 11
let attr_who_mask = (1 lsl attr_who_bits) - 1
let reason_bits = 4
let reason_mask = (1 lsl reason_bits) - 1

let pack_attr ~who ~age =
  ((who + 1) land attr_who_mask) lor (Int.max 0 age lsl attr_who_bits)

let attr_who arg = (arg land attr_who_mask) - 1
let attr_age arg = arg lsr attr_who_bits

let pack_abort ~reason ~who ~age =
  (reason land reason_mask)
  lor (((who + 1) land attr_who_mask) lsl reason_bits)
  lor (Int.max 0 age lsl (reason_bits + attr_who_bits))

let abort_reason arg = arg land reason_mask
let abort_who arg = ((arg lsr reason_bits) land attr_who_mask) - 1
let abort_age arg = arg lsr (reason_bits + attr_who_bits)

let discard_bits = 16
let discard_mask = (1 lsl discard_bits) - 1

let pack_discard ~writes ~age =
  Int.min writes discard_mask lor (Int.max 0 age lsl discard_bits)

let discard_writes arg = arg land discard_mask
let discard_age arg = arg lsr discard_bits

(* Four machine words per record — time, core, code, arg — in one flat
   preallocated array, so [emit] writes four slots and touches nothing
   else. *)
type t = {
  sim : Sim.t;
  data : int array;
  cap : int;
  mutable next : int;  (* total recorded *)
  (* Live taps on [emit]: [sink] for the invariant sanitizer, [tap] for
     the causal profiler's streaming fold. Each [None] costs one
     immediate-vs-block branch per event, like [Sim]'s hooks. *)
  mutable sink : (time:int -> core:int -> kind:kind -> arg:int -> unit) option;
  mutable tap : (time:int -> core:int -> kind:kind -> arg:int -> unit) option;
}

let create ?(capacity = 65536) sim =
  if capacity <= 0 then invalid_arg "Ledger.create: capacity must be positive";
  { sim; data = Array.make (4 * capacity) 0; cap = capacity; next = 0;
    sink = None; tap = None }

let set_sink t sink = t.sink <- sink
let set_tap t tap = t.tap <- tap

let emit t ~core kind ~arg =
  let base = 4 * (t.next mod t.cap) in
  let time = Sim.now t.sim in
  t.data.(base) <- time;
  t.data.(base + 1) <- core;
  t.data.(base + 2) <- kind_code kind;
  t.data.(base + 3) <- arg;
  t.next <- t.next + 1;
  (match t.sink with None -> () | Some f -> f ~time ~core ~kind ~arg);
  match t.tap with None -> () | Some f -> f ~time ~core ~kind ~arg

let capacity t = t.cap
let recorded t = t.next
let length t = Int.min t.next t.cap
let dropped t = Int.max 0 (t.next - t.cap)

let clear t =
  Array.fill t.data 0 (Array.length t.data) 0;
  t.next <- 0

let iter t f =
  let first = Int.max 0 (t.next - t.cap) in
  for i = first to t.next - 1 do
    let base = 4 * (i mod t.cap) in
    f ~time:t.data.(base) ~core:t.data.(base + 1)
      ~kind:kind_table.(t.data.(base + 2))
      ~arg:t.data.(base + 3)
  done

type entry = { time : int; core : int; kind : kind; arg : int }

let entries t =
  let out = ref [] in
  iter t (fun ~time ~core ~kind ~arg ->
      out := { time; core; kind; arg } :: !out);
  List.rev !out

let pp_entry ppf e =
  Format.fprintf ppf "%d %d %s %d" e.time e.core (kind_label e.kind) e.arg

let dump ?limit ppf t =
  let n = length t in
  let skip = match limit with None -> 0 | Some l -> Int.max 0 (n - l) in
  if dropped t > 0 then
    Format.fprintf ppf "# %d earlier events dropped@." (dropped t);
  let i = ref 0 in
  iter t (fun ~time ~core ~kind ~arg ->
      if !i >= skip then
        Format.fprintf ppf "%d %d %s %d@." time core (kind_label kind) arg;
      incr i)
