(** Tracing hooks for the simulator, built on [Logs].

    Each subsystem creates a source; trace lines carry the simulated
    cycle so interleavings can be reconstructed from a log. Tracing is
    compiled in but disabled by default — enabling it costs nothing when
    the level filter rejects the message. *)

val src : string -> Logs.src
(** [src name] returns the log source ["lockiller." ^ name]. *)

val setup : ?level:Logs.level -> unit -> unit
(** Install a [Fmt]-based reporter on stderr. Intended for executables
    and debugging sessions, not for the test suite. *)

val debugf :
  Logs.src -> cycle:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** [debugf src ~cycle fmt ...] logs a debug line prefixed with the
    simulated cycle. The source's level is tested {e before} the
    message is rendered: when the source does not admit [Debug] the
    format arguments are consumed without formatting or allocating, so
    hot-path trace calls are free in normal runs. *)
