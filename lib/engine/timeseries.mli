(** Fixed-capacity multi-channel gauge ring.

    A timeseries holds rows of integer gauge values sampled at known
    simulation times, in one flat preallocated array (the same
    discipline as {!Ledger}): recording allocates nothing, and when
    the ring wraps the trailing rows survive while {!dropped} counts
    the earlier ones.

    Producers stage a row with {!set} (one slot per channel) and then
    {!commit} it with its timestamp, so every committed row is an
    internally consistent snapshot. *)

type t

val create : ?capacity:int -> channels:string list -> unit -> t
(** [create ~channels ()] makes an empty ring with one slot per
    channel and room for [capacity] (default 4096) rows.
    @raise Invalid_argument if [capacity <= 0] or [channels = []]. *)

val channels : t -> string list
(** Channel names, in slot order. *)

val width : t -> int
(** Number of channels per row. *)

val capacity : t -> int
(** Maximum number of rows retained. *)

val recorded : t -> int
(** Total rows committed, including any that have since been
    overwritten. *)

val length : t -> int
(** Rows currently retained ([min recorded capacity]). *)

val dropped : t -> int
(** Rows lost to wraparound ([max 0 (recorded - capacity)]). *)

val set : t -> int -> int -> unit
(** [set t ch v] stages value [v] for channel [ch] in the pending
    row. Allocation-free. *)

val commit : t -> time:int -> unit
(** Append the staged row with timestamp [time]. The scratch row is
    kept (channels not re-[set] carry their previous value), which
    suits monotonic gauges. Allocation-free. *)

val clear : t -> unit
(** Drop every row and zero the scratch values. *)

val iter : t -> (time:int -> row:int array -> unit) -> unit
(** Iterate retained rows oldest-first. [row] is a buffer reused
    between callbacks — copy it to keep it. *)

val get : t -> sample:int -> channel:int -> int
(** Value of [channel] in retained row [sample] (0 = oldest
    retained). *)

val time : t -> sample:int -> int
(** Timestamp of retained row [sample]. *)

val dump : Format.formatter -> t -> unit
(** Deterministic text dump: a header line of channel names then one
    line per retained row, noting dropped rows first. *)
