(** Conservative time-windowed parallel discrete-event executor.

    [N] partitions, each with a private event queue and clock, run on
    [N] OCaml domains. Execution proceeds in lookahead windows
    [[gmin, gmin + lookahead)] over the global minimum pending time:
    within a window every partition fires only its own events, and
    cross-partition messages — which {!post} requires to carry at
    least [lookahead] of delay — are exchanged at the barrier between
    windows, where they cannot affect the window that sent them.

    Determinism: a run is a pure function of (model, domains,
    lookahead); thread interleaving cannot change it. Event payloads
    receive their {!port} and must confine themselves to that
    partition's state — this executor is for partition-confined models
    (the machine model's events share state and run on the sequenced
    {!Sim} kernel instead, which is additionally byte-identical
    {e across} domain counts).

    On a single-CPU host the domains time-share and aggregate
    throughput stays flat; wall-clock speedup needs real cores. *)

type t

type port
(** One partition's capability: its clock, queue and outboxes. Handed
    to every event fired on that partition; must not be used from any
    other partition. *)

val create :
  ?backend:Event_queue.backend ->
  ?tiles:int ->
  domains:int ->
  lookahead:int ->
  unit ->
  t
(** Both [domains] and [lookahead] must be positive. [tiles], when
    given, is the number of model items being partitioned; [domains]
    may not exceed it (an empty partition can never fire an event, so
    asking for one is a configuration error — the same check the CLI
    applies to [--pdes-domains] against the machine's core count). *)

val domains : t -> int

val port : t -> int -> port
(** [port t i] is partition [i]'s handle — used to seed initial events
    before {!run}. *)

val id : port -> int

val now : port -> int
(** The partition-local clock (time of the latest event fired there). *)

val events : port -> int

val schedule : port -> delay:int -> (port -> unit) -> unit
(** Partition-local schedule; any non-negative delay. *)

val post : port -> dst:int -> delay:int -> (port -> unit) -> unit
(** Cross-partition send, delivered at the next window boundary.
    Raises [Invalid_argument] when [delay < lookahead] — the
    conservative contract. [dst = id p] degrades to {!schedule}. *)

val run : t -> unit
(** Spawn [domains - 1] additional OCaml domains, run every partition
    to global quiescence, and join. Single-shot: a second call raises
    [Invalid_argument]. *)

val total_events : t -> int
(** Sum of {!events} over all partitions (after {!run}). *)

val messages : t -> int
(** Cross-partition messages posted (after {!run}). *)

val windows : t -> int
(** Lookahead windows executed (after {!run}). *)

(** {1 Partition-ownership race detection}

    The true-parallel twin of {!Sim}'s detector: models register the
    partition owning each mutable state region before {!run}, and event
    bodies call {!witness} at mutation points. A mutation witnessed on
    a partition that does not own the region is recorded — on real
    OCaml domains, i.e. the access really did race. Witnesses write
    only the witnessing partition's own list, so the detector itself is
    data-race-free. The short-hop half of the contract needs no
    detector here: {!post} already {e rejects} sub-lookahead
    cross-partition sends outright. *)

type region
(** Handle of a registered state region. *)

type violation = {
  time : int;  (** partition-local clock at the offending event *)
  region : string;
  owner : int;  (** partition that owns the region *)
  offender : int;  (** partition that mutated it *)
}

val register_region : t -> name:string -> owner:int -> region
(** Register a region owned by partition [owner]. Must be called
    before {!run}; raises [Invalid_argument] afterwards or when
    [owner] is out of range. *)

val set_race_check : t -> bool -> unit
(** Switch the detector on (default off). Must be called before
    {!run}. *)

val witness : t -> port -> region -> unit
(** [witness t p r] declares that the event currently executing on [p]
    mutates region [r]. Records a {!violation} when the detector is on
    and [p] does not own [r]. *)

val violations : t -> violation list
(** All recorded violations, grouped by partition in partition order,
    oldest first within a partition (call after {!run}). *)

val violation_count : t -> int
