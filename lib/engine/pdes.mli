(** Conservative time-windowed parallel discrete-event executor.

    [N] partitions, each with a private event queue and clock, run on
    [N] OCaml domains. Execution proceeds in lookahead windows
    [[gmin, gmin + lookahead)] over the global minimum pending time:
    within a window every partition fires only its own events, and
    cross-partition messages — which {!post} requires to carry at
    least [lookahead] of delay — are exchanged at the barrier between
    windows, where they cannot affect the window that sent them.

    Determinism: a run is a pure function of (model, domains,
    lookahead); thread interleaving cannot change it. Event payloads
    receive their {!port} and must confine themselves to that
    partition's state — this executor is for partition-confined models
    (the machine model's events share state and run on the sequenced
    {!Sim} kernel instead, which is additionally byte-identical
    {e across} domain counts).

    On a single-CPU host the domains time-share and aggregate
    throughput stays flat; wall-clock speedup needs real cores. *)

type t

type port
(** One partition's capability: its clock, queue and outboxes. Handed
    to every event fired on that partition; must not be used from any
    other partition. *)

val create :
  ?backend:Event_queue.backend -> domains:int -> lookahead:int -> unit -> t
(** Both [domains] and [lookahead] must be positive. *)

val domains : t -> int

val port : t -> int -> port
(** [port t i] is partition [i]'s handle — used to seed initial events
    before {!run}. *)

val id : port -> int

val now : port -> int
(** The partition-local clock (time of the latest event fired there). *)

val events : port -> int

val schedule : port -> delay:int -> (port -> unit) -> unit
(** Partition-local schedule; any non-negative delay. *)

val post : port -> dst:int -> delay:int -> (port -> unit) -> unit
(** Cross-partition send, delivered at the next window boundary.
    Raises [Invalid_argument] when [delay < lookahead] — the
    conservative contract. [dst = id p] degrades to {!schedule}. *)

val run : t -> unit
(** Spawn [domains - 1] additional OCaml domains, run every partition
    to global quiescence, and join. Single-shot: a second call raises
    [Invalid_argument]. *)

val total_events : t -> int
(** Sum of {!events} over all partitions (after {!run}). *)

val messages : t -> int
(** Cross-partition messages posted (after {!run}). *)

val windows : t -> int
(** Lookahead windows executed (after {!run}). *)
