(** Open-addressing hash table specialised to non-negative int keys.

    A drop-in for the hot-path uses of [Hashtbl] keyed on cache lines
    and addresses: one-multiply Fibonacci hashing (no polymorphic hash),
    linear probing over a flat array pair (no bucket cells), allocation
    only on growth. Iteration order is unspecified — callers that need
    determinism must sort, exactly as with [Hashtbl].

    [dummy] fills empty and vacated value slots so the table never
    keeps a removed value reachable. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [capacity] is rounded up to a power of two (minimum 16). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val mem : 'a t -> int -> bool
val find_opt : 'a t -> int -> 'a option

val find : 'a t -> int -> default:'a -> 'a
(** Allocation-free lookup for immediate-typed values. *)

val replace : 'a t -> int -> 'a -> unit
(** Insert or overwrite. Raises [Invalid_argument] on a negative key. *)

val remove : 'a t -> int -> unit
(** No-op when absent. *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
val fold : 'a t -> init:'b -> f:(int -> 'a -> 'b -> 'b) -> 'b

val reset : 'a t -> unit
(** Drop every binding, keeping the current capacity. *)
