(** Statistics primitives shared by all simulator components.

    Counters are plain named integers; accumulators track sum/min/max
    of integer samples; histograms bucket samples by powers of two. A
    [group] bundles the three so a component can expose everything it
    measured under one namespace and reports can render it uniformly. *)

type counter
type accumulator
type histogram

type hdr
(** A log-linear ("HDR-style") histogram: exact unit buckets below 32,
    then 32 linear sub-buckets per power-of-two octave, so any
    percentile query is within ~3% of the true sample at any
    magnitude. Recording is allocation-free. *)

type group

val group : string -> group
(** [group name] creates an empty statistics namespace. *)

val counter : group -> string -> counter
(** Create-or-get the counter [name] inside the group. *)

val accumulator : group -> string -> accumulator
(** Create-or-get the accumulator [name] inside the group. *)

val histogram : group -> string -> histogram
(** Create-or-get the histogram [name] inside the group. *)

val hdr : group -> string -> hdr
(** Create-or-get the log-linear histogram [name] inside the group. *)

val record : hdr -> int -> unit
(** Record one sample (negative values clamp to 0). Allocation-free. *)

val hdr_count : hdr -> int
(** Number of samples recorded so far. *)

val hdr_sum : hdr -> int
(** Sum of all samples (0 when empty). *)

val hdr_min : hdr -> int option
(** Smallest sample, or [None] when empty. *)

val hdr_max : hdr -> int option
(** Largest sample, or [None] when empty. *)

val hdr_mean : hdr -> float
(** Mean of the samples; 0 when empty. *)

val percentile : hdr -> float -> int
(** [percentile d p] is the value at rank [ceil (p/100 * count)] —
    e.g. [percentile d 50.] the median, [percentile d 99.] the p99 —
    reported as its bucket's upper bound clamped to the observed
    min/max, so [percentile d 0.] and [percentile d 100.] are exact.
    0 when empty. *)

val incr : counter -> unit
(** Add one to the counter. *)

val add : counter -> int -> unit
(** Add an arbitrary (possibly negative) amount to the counter. *)

val value : counter -> int
(** Current counter value (0 at creation). *)

val sample : accumulator -> int -> unit
(** Record one integer sample. *)

val count : accumulator -> int
(** Number of samples recorded so far. *)

val sum : accumulator -> int
(** Sum of all samples (0 when empty). *)

val min_sample : accumulator -> int option
(** Smallest sample, or [None] when empty. *)

val max_sample : accumulator -> int option
(** Largest sample, or [None] when empty. *)

val mean : accumulator -> float
(** Mean of the samples; 0 when empty. *)

val observe : histogram -> int -> unit
(** Record one sample into its power-of-two bucket. *)

val buckets : histogram -> (int * int) list
(** [(upper_bound, count)] pairs for non-empty power-of-two buckets, in
    increasing bound order. *)

val counters : group -> (string * int) list
(** All counters of the group with their values, sorted by name. *)

val accumulators : group -> (string * accumulator) list
(** All accumulators of the group, sorted by name. *)

val hdrs : group -> (string * hdr) list
(** All log-linear histograms of the group, sorted by name. *)

val reset : group -> unit
(** Zero every statistic in the group (the namespace survives). *)

val pp : Format.formatter -> group -> unit
(** Render the whole group, one statistic per line. *)
