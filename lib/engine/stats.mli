(** Statistics primitives shared by all simulator components.

    Counters are plain named integers; accumulators track sum/min/max
    of integer samples; histograms bucket samples by powers of two. A
    [group] bundles the three so a component can expose everything it
    measured under one namespace and reports can render it uniformly. *)

type counter
type accumulator
type histogram
type group

val group : string -> group
(** [group name] creates an empty statistics namespace. *)

val counter : group -> string -> counter
(** Create-or-get the counter [name] inside the group. *)

val accumulator : group -> string -> accumulator
(** Create-or-get the accumulator [name] inside the group. *)

val histogram : group -> string -> histogram
(** Create-or-get the histogram [name] inside the group. *)

val incr : counter -> unit
(** Add one to the counter. *)

val add : counter -> int -> unit
(** Add an arbitrary (possibly negative) amount to the counter. *)

val value : counter -> int
(** Current counter value (0 at creation). *)

val sample : accumulator -> int -> unit
(** Record one integer sample. *)

val count : accumulator -> int
(** Number of samples recorded so far. *)

val sum : accumulator -> int
(** Sum of all samples (0 when empty). *)

val min_sample : accumulator -> int option
(** Smallest sample, or [None] when empty. *)

val max_sample : accumulator -> int option
(** Largest sample, or [None] when empty. *)

val mean : accumulator -> float
(** Mean of the samples; 0 when empty. *)

val observe : histogram -> int -> unit
(** Record one sample into its power-of-two bucket. *)

val buckets : histogram -> (int * int) list
(** [(upper_bound, count)] pairs for non-empty power-of-two buckets, in
    increasing bound order. *)

val counters : group -> (string * int) list
(** All counters of the group with their values, sorted by name. *)

val accumulators : group -> (string * accumulator) list
(** All accumulators of the group, sorted by name. *)

val reset : group -> unit
(** Zero every statistic in the group (the namespace survives). *)

val pp : Format.formatter -> group -> unit
(** Render the whole group, one statistic per line. *)
