(* Conservative time-windowed parallel discrete-event executor.

   N partitions, each with a private event queue and clock, run on N
   OCaml domains. Execution proceeds in lookahead windows:

     1. barrier  — everyone has finished the previous window
     2. drain    — each partition moves the messages posted to it into
                   its queue, then publishes its earliest pending time
     3. barrier  — all minima published
     4. decide   — every domain computes the same global minimum; all
                   empty -> terminate, else window = [min, min+lookahead)
     5. execute  — each partition fires its local events with
                   time < window end; cross-partition sends go to
                   per-destination outboxes with delay >= lookahead,
                   so they can only land in a later window
     6. goto 1

   Messages posted in window k are drained in window k+1, which is
   sound because [post] requires delay >= lookahead: a message sent
   from an event at time < wend carries a timestamp >= wstart +
   lookahead = wend, i.e. it cannot affect the window that sent it.

   Determinism: within a partition events fire in (time, local seq)
   order; inboxes are drained at deterministic window boundaries, in
   fixed source order, in send order per source. A run is therefore a
   pure function of (model, domains, lookahead) — two runs on the same
   configuration are identical, regardless of thread interleaving.
   (Unlike the sequenced kernel in {!Sim}, the *same model* under a
   different domain count may order same-cycle events differently:
   local sequence numbers are per-partition here. The machine model
   gets cross-domain byte-identity from the sequenced kernel; this
   executor is for partition-confined models that want real CPUs.)

   Memory model: outboxes and the published minima are plain (non
   atomic) fields, but every write happens in a phase that a barrier
   separates from the phase that reads it — the barrier's mutex
   acquire/release pairs give the happens-before — so the program is
   data-race-free. *)

type violation = {
  time : int;
  region : string;
  owner : int;
  offender : int;
}

type port = {
  id : int;
  queue : (port -> unit) Event_queue.t;
  mutable clock : int;
  mutable events : int;
  mutable sent : int;
  (* Messages to partition [dst] accumulate in [outbox.(dst)] in
     reverse send order; the owner of [dst] reverses on drain. *)
  outbox : (int * (port -> unit)) list array;
  lookahead : int;
  (* Race-detector findings, recorded by the partition that witnessed
     them — per-port so concurrent witnesses never share a cell. *)
  mutable violations : violation list;
}

(* Blocking (mutex + condvar) rather than spinning: when the host has
   fewer CPUs than domains — the common case for an oversubscribed
   simulation batch, and the only case on a single-CPU box — a spin
   barrier burns a full scheduler quantum per waiter per window, which
   turns a seconds-long run into minutes. Parking the waiter hands the
   CPU straight to the domain everyone is waiting on. *)
type barrier = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable count : int;
  mutable phase : int;
}

let barrier_make parties =
  {
    parties;
    mutex = Mutex.create ();
    cond = Condition.create ();
    count = 0;
    phase = 0;
  }

let barrier_await b =
  if b.parties > 1 then begin
    Mutex.lock b.mutex;
    let ph = b.phase in
    b.count <- b.count + 1;
    if b.count = b.parties then begin
      b.count <- 0;
      b.phase <- b.phase + 1;
      Condition.broadcast b.cond
    end
    else
      while b.phase = ph do
        Condition.wait b.cond b.mutex
      done;
    Mutex.unlock b.mutex
  end

type t = {
  domains : int;
  lookahead : int;
  ports : port array;
  mins : int array;  (* per-partition earliest time, published at drain *)
  barrier : barrier;
  mutable windows : int;
  mutable ran : bool;
  (* Ownership registry and detector switch. Both are written only
     before [run] (registration/configuration time) and read-only
     inside workers; [Domain.spawn] provides the happens-before. *)
  mutable region_owners : int array;
  mutable region_names : string array;
  mutable regions : int;
  mutable race : bool;
}

let create ?backend ?tiles ~domains ~lookahead () =
  if domains < 1 then invalid_arg "Pdes.create: domains must be positive";
  if lookahead < 1 then invalid_arg "Pdes.create: lookahead must be positive";
  (match tiles with
  | Some n when n < domains ->
    invalid_arg "Pdes.create: more domains than tiles"
  | Some _ | None -> ());
  let ports =
    Array.init domains (fun id ->
        {
          id;
          queue = Event_queue.create ?backend ();
          clock = 0;
          events = 0;
          sent = 0;
          outbox = Array.make domains [];
          lookahead;
          violations = [];
        })
  in
  {
    domains;
    lookahead;
    ports;
    mins = Array.make domains Event_queue.no_event;
    barrier = barrier_make domains;
    windows = 0;
    ran = false;
    region_owners = [||];
    region_names = [||];
    regions = 0;
    race = false;
  }

let domains t = t.domains
let port t i = t.ports.(i)
let id p = p.id
let now p = p.clock
let events p = p.events

let total_events t = Array.fold_left (fun acc p -> acc + p.events) 0 t.ports
let messages t = Array.fold_left (fun acc p -> acc + p.sent) 0 t.ports
let windows t = t.windows

(* --- partition-ownership race detection ------------------------------- *)

type region = int

let register_region t ~name ~owner =
  if t.ran then invalid_arg "Pdes.register_region: already run";
  if owner < 0 || owner >= t.domains then
    invalid_arg "Pdes.register_region: owner out of range";
  let id = t.regions in
  let cap = Array.length t.region_owners in
  if id = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let owners = Array.make ncap 0 in
    let names = Array.make ncap "" in
    Array.blit t.region_owners 0 owners 0 cap;
    Array.blit t.region_names 0 names 0 cap;
    t.region_owners <- owners;
    t.region_names <- names
  end;
  t.region_owners.(id) <- owner;
  t.region_names.(id) <- name;
  t.regions <- id + 1;
  id

let set_race_check t on =
  if t.ran then invalid_arg "Pdes.set_race_check: already run";
  t.race <- on

(* The witness runs concurrently on every domain: it reads only the
   pre-run registry and writes only the witnessing port's own list, so
   it is data-race-free without any locking. *)
let witness t (p : port) r =
  if t.race then begin
    let owner = t.region_owners.(r) in
    if owner <> p.id then
      p.violations <-
        { time = p.clock; region = t.region_names.(r); owner; offender = p.id }
        :: p.violations
  end

let violations t =
  let out = ref [] in
  for i = t.domains - 1 downto 0 do
    out := List.rev_append t.ports.(i).violations !out
  done;
  !out

let violation_count t =
  Array.fold_left (fun acc p -> acc + List.length p.violations) 0 t.ports

let schedule (p : port) ~delay f =
  if delay < 0 then invalid_arg "Pdes.schedule: negative delay";
  Event_queue.add p.queue ~time:(p.clock + delay) f

(* Cross-partition send. The lookahead floor is the conservative
   contract: it guarantees the message's timestamp lies beyond the
   window that produced it, so next-window delivery loses nothing. *)
let post (p : port) ~dst ~delay f =
  if delay < p.lookahead then
    invalid_arg "Pdes.post: delay below the lookahead";
  if dst = p.id then Event_queue.add p.queue ~time:(p.clock + delay) f
  else begin
    p.sent <- p.sent + 1;
    p.outbox.(dst) <- (p.clock + delay, f) :: p.outbox.(dst)
  end

(* One domain's run loop; [me] is its partition. *)
let worker t me =
  let continue = ref true in
  while !continue do
    (* previous window fully executed everywhere *)
    barrier_await t.barrier;
    (* drain: collect messages addressed to [me], sources in order *)
    for src = 0 to t.domains - 1 do
      let box = t.ports.(src).outbox.(me.id) in
      if box != [] then begin
        t.ports.(src).outbox.(me.id) <- [];
        List.iter
          (fun (time, f) -> Event_queue.add me.queue ~time f)
          (List.rev box)
      end
    done;
    t.mins.(me.id) <- Event_queue.next_time me.queue;
    (* all minima published *)
    barrier_await t.barrier;
    (* decide: identical computation on every domain *)
    let gmin = ref Event_queue.no_event in
    for i = 0 to t.domains - 1 do
      let m = t.mins.(i) in
      if m <> Event_queue.no_event && (!gmin = Event_queue.no_event || m < !gmin)
      then gmin := m
    done;
    if !gmin = Event_queue.no_event then continue := false
    else begin
      if me.id = 0 then t.windows <- t.windows + 1;
      let wend = !gmin + t.lookahead in
      (* execute the window locally *)
      let running = ref true in
      while !running do
        let tm = Event_queue.next_time me.queue in
        if tm = Event_queue.no_event || tm >= wend then running := false
        else begin
          if tm > me.clock then me.clock <- tm;
          me.events <- me.events + 1;
          let f = Event_queue.pop_payload me.queue in
          f me
        end
      done
    end
  done

let run t =
  if t.ran then invalid_arg "Pdes.run: already run";
  t.ran <- true;
  if t.domains = 1 then worker t t.ports.(0)
  else begin
    let spawned =
      Array.init (t.domains - 1) (fun i ->
          Domain.spawn (fun () -> worker t t.ports.(i + 1)))
    in
    worker t t.ports.(0);
    Array.iter Domain.join spawned
  end
