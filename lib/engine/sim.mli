(** Discrete-event simulation kernel.

    A simulation owns a clock (in CPU cycles) and a pending-event set of
    thunks. Components schedule callbacks at future cycles; [run] drains
    the queue in (time, insertion) order, advancing the clock. The
    kernel guarantees determinism: no wall-clock time, no global RNG, no
    reliance on hash ordering in the event path. *)

type t

val create :
  ?backend:Event_queue.backend -> ?domains:int -> ?lookahead:int -> unit -> t
(** [backend] selects the pending-event set implementation (default
    {!Event_queue.Wheel}); both backends produce bit-identical runs —
    the heap is retained for differential testing.

    [domains] (default 1) splits the pending-event set into that many
    partition queues for the conservative-PDES accounting: every queue
    draws sequence numbers from one shared counter and the kernel
    merges them in global (time, seq) order, so a run is byte-identical
    for {e any} domain count — the split changes where events are
    stored, never the order they fire. [lookahead] (default 1, must be
    positive) is the window length used by the {!pdes_stats} window
    counter and the short-hop classification; the natural value is the
    model's minimum cross-partition latency (a NoC link hop). *)

val now : t -> int
(** Current simulated cycle. *)

val events : t -> int
(** Events fired so far ({!step} count) — the numerator of the
    events/sec throughput metric ({!Lk_sim.Perf} in the sim library). *)

val backend : t -> Event_queue.backend

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule sim ~delay f] runs [f] at [now sim + delay]. [delay] must
    be non-negative; a zero delay runs [f] later in the same cycle,
    after all previously scheduled same-cycle events. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

(** {1 Partitioned scheduling (conservative PDES)}

    With [domains > 1] the kernel keeps one event queue per partition.
    {!schedule}/{!schedule_at} place the event on the queue of the
    partition whose event is currently executing (partition 0 outside
    any event), so an event chain stays where it started;
    {!schedule_tile} places it on the queue owning a tile. Execution
    order is unaffected — the kernel merges all queues in global
    (time, seq) order — but the placement drives the window /
    cross-partition counters in {!pdes_stats}, and is what a true
    multi-domain executor ({!Pdes}) partitions on. *)

val domains : t -> int

val set_tile_map : t -> (int -> int) -> unit
(** Install the tile→partition map used by {!schedule_tile} (typically
    {!Partition.of_item} over the mesh tiles). Defaults to all-zero. *)

val schedule_tile : t -> tile:int -> delay:int -> (unit -> unit) -> unit
(** [schedule_tile sim ~tile ~delay f] is {!schedule} onto the queue of
    [tile]'s partition. Crossing a partition boundary increments
    [cross_events]; crossing it with [delay] below the lookahead also
    increments [short_hops] (a hop a conservative parallel executor
    could not defer to the next window). *)

type pdes_stats = {
  domains : int;
  lookahead : int;
  windows : int;  (** lookahead windows opened (barriers + 1 ≈ windows) *)
  cross_events : int;  (** events scheduled across a partition boundary *)
  short_hops : int;  (** cross-partition events with delay < lookahead *)
}

val pdes_stats : t -> pdes_stats
(** Accounting of the partitioned run. Diagnostic only — never part of
    result JSON, which must stay byte-identical across domain counts. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

exception Stalled of string
(** Raised by [run] when the quiescence hooks keep injecting work
    without the clock ever advancing — a livelocked rescue loop. *)

val on_quiescent : t -> (unit -> unit) -> unit
(** Register a hook called when the event queue drains. The hook may
    schedule new work (e.g. a watchdog re-arming a parked core); if it
    schedules nothing, [run] returns. *)

val run : ?limit:int -> t -> unit
(** Drain the event queue. [limit] bounds the final simulated cycle;
    events beyond it are discarded and [run] returns with the clock set
    to [limit]. Without a limit, runs until quiescent. *)

val step : t -> bool
(** Fire the single earliest event. Returns false when the queue is
    empty. Useful for tests that need cycle-level control. *)

(** {1 Schedule exploration}

    Hooks for the correctness checkers in [lockiller.check]. Both
    default to [None] and cost the kernel exactly one branch per event
    when unset — a normal simulation pays nothing for them. *)

val set_chooser : t -> (int -> int) option -> unit
(** Install (or clear) the schedule chooser. When set and more than one
    event shares the earliest pending time, the kernel calls
    [choose n] with the size [n >= 2] of that runnable set and fires
    the event whose 0-based insertion rank within the set is the
    returned index (which must be in [0, n)). Insertion order — index
    0 every time — reproduces the default deterministic schedule. The
    explorer enumerates these indices exhaustively; the fuzzer draws
    them from a seeded RNG. Choosers require a single-domain kernel
    (the checkers always build one); installing one on a partitioned
    kernel raises [Invalid_argument]. *)

val set_observer : t -> (unit -> unit) option -> unit
(** Install (or clear) a callback invoked after every fired event —
    the invariant sanitizer's per-step observation point. The observer
    runs after the event's thunk returns, so it sees a settled
    state. *)
