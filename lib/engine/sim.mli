(** Discrete-event simulation kernel.

    A simulation owns a clock (in CPU cycles) and a pending-event set of
    thunks. Components schedule callbacks at future cycles; [run] drains
    the queue in (time, insertion) order, advancing the clock. The
    kernel guarantees determinism: no wall-clock time, no global RNG, no
    reliance on hash ordering in the event path. *)

type t

val create :
  ?backend:Event_queue.backend -> ?domains:int -> ?lookahead:int -> unit -> t
(** [backend] selects the pending-event set implementation (default
    {!Event_queue.Wheel}); both backends produce bit-identical runs —
    the heap is retained for differential testing.

    [domains] (default 1) splits the pending-event set into that many
    partition queues for the conservative-PDES accounting: every queue
    draws sequence numbers from one shared counter and the kernel
    merges them in global (time, seq) order, so a run is byte-identical
    for {e any} domain count — the split changes where events are
    stored, never the order they fire. [lookahead] (default 1, must be
    positive) is the window length used by the {!pdes_stats} window
    counter and the short-hop classification; the natural value is the
    model's minimum cross-partition latency (a NoC link hop). *)

val now : t -> int
(** Current simulated cycle. *)

val events : t -> int
(** Events fired so far ({!step} count) — the numerator of the
    events/sec throughput metric ({!Lk_sim.Perf} in the sim library). *)

val backend : t -> Event_queue.backend

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule sim ~delay f] runs [f] at [now sim + delay]. [delay] must
    be non-negative; a zero delay runs [f] later in the same cycle,
    after all previously scheduled same-cycle events. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

(** {1 Partitioned scheduling (conservative PDES)}

    With [domains > 1] the kernel keeps one event queue per partition.
    {!schedule}/{!schedule_at} place the event on the queue of the
    partition whose event is currently executing (partition 0 outside
    any event), so an event chain stays where it started;
    {!schedule_tile} places it on the queue owning a tile. Execution
    order is unaffected — the kernel merges all queues in global
    (time, seq) order — but the placement drives the window /
    cross-partition counters in {!pdes_stats}, and is what a true
    multi-domain executor ({!Pdes}) partitions on. *)

val domains : t -> int

val set_tile_map : t -> (int -> int) -> unit
(** Install the tile→partition map used by {!schedule_tile} (typically
    {!Partition.of_item} over the mesh tiles). Defaults to all-zero. *)

val schedule_tile :
  t -> ?urgent:bool -> tile:int -> delay:int -> (unit -> unit) -> unit
(** [schedule_tile sim ~tile ~delay f] is {!schedule} onto the queue of
    [tile]'s partition. Crossing a partition boundary increments
    [cross_events]; crossing it with [delay] below the lookahead also
    increments [short_hops] (a hop a conservative parallel executor
    could not defer to the next window).

    [urgent] (default [false]) annotates the hand-audited call sites
    where a sub-lookahead cross-partition delivery is intentional model
    behaviour: it is still counted in [short_hops], but the race
    detector does not flag it. An {e unannotated} short hop with the
    detector on is reported as a {!race_violation} of kind
    {!Short_hop}. *)

type pdes_stats = {
  domains : int;
  lookahead : int;
  windows : int;  (** lookahead windows opened (barriers + 1 ≈ windows) *)
  cross_events : int;  (** events scheduled across a partition boundary *)
  short_hops : int;  (** cross-partition events with delay < lookahead *)
  race_violations : int;  (** detector findings (0 when the detector is off) *)
}

val pdes_stats : t -> pdes_stats
(** Accounting of the partitioned run. Diagnostic only — never part of
    result JSON, which must stay byte-identical across domain counts. *)

val pdes_windows : t -> int
val pdes_cross_events : t -> int
val pdes_short_hops : t -> int
(** Allocation-free projections of the corresponding {!pdes_stats}
    fields, for samplers that poll them on a hot path (the telemetry
    gauges). Same diagnostic-only caveat. *)

(** {1 Partition-ownership race detection}

    The partitioned kernel rests on an ownership convention: every
    mutable state region belongs to a tile, mutations happen from
    events running in the owning tile's partition, and cross-partition
    interaction flows through {!schedule_tile} with [delay >=]
    lookahead. The detector machine-checks that convention. Components
    register their regions at construction time (cheap, always on) and
    call {!witness} at mutation points — one branch when the detector
    is off, an ownership lookup and comparison when on, an allocation
    only on an actual violation. *)

type region
(** Handle of a registered state region. *)

val register_region : t -> name:string -> tile:int -> region
(** Register a mutable state region owned by [tile]. [name] appears in
    violation reports (e.g. ["l1[3]"], ["dir-shard[1]"]). *)

val region_count : t -> int

val witness : t -> region -> unit
(** Declare that the currently executing event mutates [region]. With
    the detector on and [domains > 1], records a {!Foreign_write}
    violation when the event is not running in the owning tile's
    partition. No-op otherwise. *)

val set_race_check : t -> bool -> unit
(** Switch the detector on or off. Turning it on resets nothing if it
    is already on; turning it off discards recorded violations. *)

val race_check : t -> bool

type race_kind =
  | Foreign_write
      (** A registered region was mutated by an event executing in a
          partition that does not own the region's tile. *)
  | Short_hop
      (** A cross-partition {!schedule_tile} with [delay] below the
          lookahead and without the [~urgent] annotation — a delivery
          the conservative window protocol cannot honour. *)

type race_violation = {
  kind : race_kind;
  time : int;  (** simulated cycle of the offending event *)
  event : int;  (** global event index at detection *)
  region : string;  (** region name, or ["schedule_tile"] for short hops *)
  tile : int;  (** owning tile (foreign write) / target tile (short hop) *)
  owner_part : int;  (** partition owning the region/target *)
  exec_part : int;  (** partition the offending event executed in *)
  owner_window : int;
      (** owner partition's logical clock (window index of its last
          event) at detection *)
  exec_window : int;  (** offending partition's logical clock *)
}
(** A replayable report: [time]/[event] locate the offending event in
    the deterministic (time, seq) order, and the two window-clock
    entries show the accesses were not separated by a window barrier —
    the happens-before edge the conservative protocol would need. *)

val race_count : t -> int

val race_violations : t -> race_violation list
(** Violations in detection order ([[]] when the detector is off). *)

val pp_race_violation : Format.formatter -> race_violation -> unit

val pending : t -> int
(** Number of scheduled events not yet fired. *)

exception Stalled of string
(** Raised by [run] when the quiescence hooks keep injecting work
    without the clock ever advancing — a livelocked rescue loop. *)

val on_quiescent : t -> (unit -> unit) -> unit
(** Register a hook called when the event queue drains. The hook may
    schedule new work (e.g. a watchdog re-arming a parked core); if it
    schedules nothing, [run] returns. *)

val run : ?limit:int -> t -> unit
(** Drain the event queue. [limit] bounds the final simulated cycle;
    events beyond it are discarded and [run] returns with the clock set
    to [limit]. Without a limit, runs until quiescent. *)

val step : t -> bool
(** Fire the single earliest event. Returns false when the queue is
    empty. Useful for tests that need cycle-level control. *)

(** {1 Schedule exploration}

    Hooks for the correctness checkers in [lockiller.check]. Both
    default to [None] and cost the kernel exactly one branch per event
    when unset — a normal simulation pays nothing for them. *)

val set_chooser : t -> (int -> int) option -> unit
(** Install (or clear) the schedule chooser. When set and more than one
    event shares the earliest pending time, the kernel calls
    [choose n] with the size [n >= 2] of that runnable set and fires
    the event whose 0-based insertion rank within the set is the
    returned index (which must be in [0, n)). Insertion order — index
    0 every time — reproduces the default deterministic schedule. The
    explorer enumerates these indices exhaustively; the fuzzer draws
    them from a seeded RNG. On a partitioned kernel the runnable set is
    the merge of every queue's earliest-time events in insertion order
    (the shared sequence counter makes that order global), so
    exploration and replay work for any domain count. *)

val set_observer : t -> (unit -> unit) option -> unit
(** Install (or clear) a callback invoked after every fired event —
    the invariant sanitizer's per-step observation point. The observer
    runs after the event's thunk returns, so it sees a settled
    state. *)
