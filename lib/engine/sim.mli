(** Discrete-event simulation kernel.

    A simulation owns a clock (in CPU cycles) and a pending-event set of
    thunks. Components schedule callbacks at future cycles; [run] drains
    the queue in (time, insertion) order, advancing the clock. The
    kernel guarantees determinism: no wall-clock time, no global RNG, no
    reliance on hash ordering in the event path. *)

type t

val create : ?backend:Event_queue.backend -> unit -> t
(** [backend] selects the pending-event set implementation (default
    {!Event_queue.Wheel}); both backends produce bit-identical runs —
    the heap is retained for differential testing. *)

val now : t -> int
(** Current simulated cycle. *)

val events : t -> int
(** Events fired so far ({!step} count) — the numerator of the
    events/sec throughput metric ({!Lk_sim.Perf} in the sim library). *)

val backend : t -> Event_queue.backend

val schedule : t -> delay:int -> (unit -> unit) -> unit
(** [schedule sim ~delay f] runs [f] at [now sim + delay]. [delay] must
    be non-negative; a zero delay runs [f] later in the same cycle,
    after all previously scheduled same-cycle events. *)

val schedule_at : t -> time:int -> (unit -> unit) -> unit
(** Schedule at an absolute cycle, which must not be in the past. *)

val pending : t -> int
(** Number of scheduled events not yet fired. *)

exception Stalled of string
(** Raised by [run] when the quiescence hooks keep injecting work
    without the clock ever advancing — a livelocked rescue loop. *)

val on_quiescent : t -> (unit -> unit) -> unit
(** Register a hook called when the event queue drains. The hook may
    schedule new work (e.g. a watchdog re-arming a parked core); if it
    schedules nothing, [run] returns. *)

val run : ?limit:int -> t -> unit
(** Drain the event queue. [limit] bounds the final simulated cycle;
    events beyond it are discarded and [run] returns with the clock set
    to [limit]. Without a limit, runs until quiescent. *)

val step : t -> bool
(** Fire the single earliest event. Returns false when the queue is
    empty. Useful for tests that need cycle-level control. *)

(** {1 Schedule exploration}

    Hooks for the correctness checkers in [lockiller.check]. Both
    default to [None] and cost the kernel exactly one branch per event
    when unset — a normal simulation pays nothing for them. *)

val set_chooser : t -> (int -> int) option -> unit
(** Install (or clear) the schedule chooser. When set and more than one
    event shares the earliest pending time, the kernel calls
    [choose n] with the size [n >= 2] of that runnable set and fires
    the event whose 0-based insertion rank within the set is the
    returned index (which must be in [0, n)). Insertion order — index
    0 every time — reproduces the default deterministic schedule. The
    explorer enumerates these indices exhaustively; the fuzzer draws
    them from a seeded RNG. *)

val set_observer : t -> (unit -> unit) option -> unit
(** Install (or clear) a callback invoked after every fired event —
    the invariant sanitizer's per-step observation point. The observer
    runs after the event's thunk returns, so it sees a settled
    state. *)
