(* Open-addressing hash table specialised to non-negative int keys.

   The generic [Hashtbl] pays for a polymorphic hash call, a boxed
   bucket list cell per binding and a key comparison through [compare]
   on every probe. On the simulator's hot paths (per-access L1
   metadata, per-request directory queues, per-read/write value
   lookups) the keys are plain ints, so this table hashes with one
   multiply (Fibonacci hashing on the high bits), probes linearly in a
   flat array pair and allocates only on growth.

   Slots: keys.(i) >= 0 is a live binding, [empty] a never-used slot,
   [tombstone] a deleted one (probe chains continue through it). Values
   of vacated slots are overwritten with the caller-supplied default so
   the table never keeps a removed value alive. *)

type 'a t = {
  mutable keys : int array;
  mutable vals : 'a array;
  mutable size : int;  (* live bindings *)
  mutable used : int;  (* live + tombstones *)
  mutable mask : int;  (* capacity - 1; capacity is a power of two *)
  dummy : 'a;  (* fills empty value slots *)
}

let empty = -1
let tombstone = -2

(* Odd 62-bit multiplier (Lehmer); the top bits of k * m are
   well-mixed, so take the hash from there. *)
let fib = 0x2545F4914F6CDD1D

let capacity_for n =
  let rec go c = if c >= n then c else go (2 * c) in
  go 16

let create ?(capacity = 16) ~dummy () =
  let cap = capacity_for (Int.max 16 capacity) in
  {
    keys = Array.make cap empty;
    vals = Array.make cap dummy;
    size = 0;
    used = 0;
    mask = cap - 1;
    dummy;
  }

let length t = t.size
let is_empty t = t.size = 0

let slot_of t key =
  (* mask = cap - 1, cap a power of two: shift the mixed bits down so
     the low [log2 cap] bits of the result are the high bits of k*m. *)
  let h = key * fib in
  (h lsr 8) land t.mask

(* Index of [key]'s slot, or -1 when absent. *)
let find_slot t key =
  let mask = t.mask in
  let rec probe i =
    let k = t.keys.(i) in
    if k = key then i
    else if k = empty then -1
    else probe ((i + 1) land mask)
  in
  probe (slot_of t key)

let mem t key = find_slot t key >= 0

let find_opt t key =
  let i = find_slot t key in
  if i >= 0 then Some t.vals.(i) else None

let find t key ~default =
  let i = find_slot t key in
  if i >= 0 then t.vals.(i) else default

let rec resize t cap =
  let okeys = t.keys and ovals = t.vals in
  t.keys <- Array.make cap empty;
  t.vals <- Array.make cap t.dummy;
  t.mask <- cap - 1;
  t.used <- t.size;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let mask = t.mask in
        let rec place j =
          if t.keys.(j) = empty then begin
            t.keys.(j) <- k;
            t.vals.(j) <- ovals.(i)
          end
          else place ((j + 1) land mask)
        in
        place (slot_of t k)
      end)
    okeys

(* Grow at 1/2 live load; rehash in place (same capacity) when
   tombstones alone push the used fraction past 3/4. *)
and maybe_grow t =
  let cap = t.mask + 1 in
  if 2 * (t.size + 1) > cap then resize t (2 * cap)
  else if 4 * (t.used + 1) > 3 * cap then resize t cap

let replace t key v =
  if key < 0 then invalid_arg "Int_table.replace: negative key";
  maybe_grow t;
  let mask = t.mask in
  let rec probe i grave =
    let k = t.keys.(i) in
    if k = key then t.vals.(i) <- v
    else if k = empty then begin
      let i = if grave >= 0 then grave else i in
      if t.keys.(i) = empty then t.used <- t.used + 1;
      t.keys.(i) <- key;
      t.vals.(i) <- v;
      t.size <- t.size + 1
    end
    else if k = tombstone then
      probe ((i + 1) land mask) (if grave >= 0 then grave else i)
    else probe ((i + 1) land mask) grave
  in
  probe (slot_of t key) (-1)

let remove t key =
  let i = find_slot t key in
  if i >= 0 then begin
    t.keys.(i) <- tombstone;
    t.vals.(i) <- t.dummy;
    t.size <- t.size - 1
  end

let iter t f =
  Array.iteri (fun i k -> if k >= 0 then f k t.vals.(i)) t.keys

let fold t ~init ~f =
  let acc = ref init in
  Array.iteri (fun i k -> if k >= 0 then acc := f k t.vals.(i) !acc) t.keys;
  !acc

let reset t =
  Array.fill t.keys 0 (Array.length t.keys) empty;
  Array.fill t.vals 0 (Array.length t.vals) t.dummy;
  t.size <- 0;
  t.used <- 0
