type t = {
  queue : (unit -> unit) Event_queue.t;
  mutable clock : int;
  mutable events : int;
  mutable quiescent_hooks : (unit -> unit) list;
  (* Schedule-exploration hooks (lockiller.check). Both default to
     [None]; the hot path pays exactly one immediate-vs-block branch per
     event for each, same as the ledger pattern elsewhere. *)
  mutable chooser : (int -> int) option;
  mutable observer : (unit -> unit) option;
}

exception Stalled of string

let create ?backend () =
  {
    queue = Event_queue.create ?backend ();
    clock = 0;
    events = 0;
    quiescent_hooks = [];
    chooser = None;
    observer = None;
  }

let now t = t.clock
let events t = t.events
let backend t = Event_queue.backend t.queue

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  Event_queue.add t.queue ~time:(t.clock + delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.add t.queue ~time f

let pending t = Event_queue.length t.queue

let on_quiescent t hook = t.quiescent_hooks <- hook :: t.quiescent_hooks

let set_chooser t chooser = t.chooser <- chooser
let set_observer t observer = t.observer <- observer

(* [fire] assumes the queue is non-empty; allocation-free (no tuple/
   option boxing, and no polymorphic [max] on the clock). With a
   chooser installed the kernel lets it pick any member of the runnable
   set (the same-cycle group) instead of strict insertion order. *)
let fire t time =
  if time > t.clock then t.clock <- time;
  t.events <- t.events + 1;
  let f =
    match t.chooser with
    | None -> Event_queue.pop_payload t.queue
    | Some choose ->
      let n = Event_queue.runnable t.queue in
      if n <= 1 then Event_queue.pop_payload t.queue
      else Event_queue.pop_payload_nth t.queue (choose n)
  in
  f ();
  match t.observer with None -> () | Some g -> g ()

let step t =
  let time = Event_queue.next_time t.queue in
  if time = Event_queue.no_event then false
  else begin
    fire t time;
    true
  end

let run ?limit t =
  let beyond time = match limit with None -> false | Some l -> time > l in
  (* Quiescence hooks may inject rescue work, but if they keep doing so
     without the clock ever advancing the simulation is livelocked:
     raise rather than spin forever. *)
  let hook_rounds = ref 0 in
  let last_hook_clock = ref (-1) in
  let rec drain () =
    let time = Event_queue.next_time t.queue in
    if time = Event_queue.no_event then begin
      let hooks = t.quiescent_hooks in
      List.iter (fun hook -> hook ()) hooks;
      if not (Event_queue.is_empty t.queue) then begin
        if t.clock = !last_hook_clock then begin
          incr hook_rounds;
          if !hook_rounds > 1000 then
            raise
              (Stalled
                 ("quiescence hooks injected work 1000 times at cycle "
                 ^ string_of_int t.clock ^ " without progress"))
        end
        else begin
          last_hook_clock := t.clock;
          hook_rounds := 0
        end;
        drain ()
      end
    end
    else if beyond time then begin
      Event_queue.clear t.queue;
      match limit with Some l -> t.clock <- l | None -> ()
    end
    else begin
      fire t time;
      drain ()
    end
  in
  drain ()
