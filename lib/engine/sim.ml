(* The kernel runs in one of two shapes:

   - [domains = 1] (default): the classic single shared event queue.
     This path is unchanged and allocation-free.

   - [domains > 1]: the conservative-PDES split. Every partition owns
     its own queue, but all queues draw sequence numbers from one
     shared counter, so (time, seq) is still a *global* total order.
     The sequenced executor below merges the queues by that order —
     which reproduces, pop for pop, exactly what the single shared
     queue would have done. Results are therefore byte-identical for
     any domain count; what the split buys is the accounting (window /
     cross-partition traffic counters) and the event placement that a
     true multi-domain executor ({!Pdes}) needs. Machine-model events
     close over shared protocol state, so they are run sequenced; the
     parallel executor is for partition-confined models. *)

type pdes_stats = {
  domains : int;
  lookahead : int;
  windows : int;
  cross_events : int;
  short_hops : int;
  race_violations : int;
}

(* --- partition-ownership race detector -------------------------------- *)

(* Every mutable state region of the model registers the tile that owns
   it; with the detector on, a mutation witnessed from an event running
   in another tile's partition is a [Foreign_write] — the write a true
   multi-domain executor would make from the wrong thread. A
   cross-partition schedule below the lookahead that is not explicitly
   annotated [~urgent] is a [Short_hop]: a delivery the conservative
   window protocol cannot honour. *)

type region = int

type race_kind = Foreign_write | Short_hop

type race_violation = {
  kind : race_kind;
  time : int;  (* simulated cycle of the offending event *)
  event : int;  (* global event index (the kernel's fire count) *)
  region : string;
  tile : int;
  owner_part : int;
  exec_part : int;
  owner_window : int;
  exec_window : int;
}

type race_state = {
  (* Per-partition logical clock: the window index in which each
     partition last executed an event. Advanced by the kernel at every
     fire, so a violation report can show whether the two partitions
     were barrier-separated (different windows) or racing inside one. *)
  vc : int array;
  mutable violations : race_violation list;  (* newest first *)
  mutable count : int;
}

type t = {
  queues : (unit -> unit) Event_queue.t array;
  queue : (unit -> unit) Event_queue.t;  (* == queues.(0): fast path *)
  domains : int;
  lookahead : int;
  (* Item (tile) -> partition map; identity-to-0 until installed. *)
  mutable tile_map : int -> int;
  (* Partition of the event currently executing; schedules without an
     explicit tile inherit it, so an event chain stays put. *)
  mutable cur_part : int;
  (* True while an event body runs. Setup code (seeding cores before
     {!run}) and quiescent hooks execute outside any event, where
     [cur_part] is stale — the detector must not charge them to
     partition 0. *)
  mutable in_event : bool;
  mutable clock : int;
  mutable events : int;
  mutable window_end : int;
  mutable windows : int;
  mutable cross_events : int;
  mutable short_hops : int;
  mutable quiescent_hooks : (unit -> unit) list;
  (* Schedule-exploration hooks (lockiller.check). Both default to
     [None]; the hot path pays exactly one immediate-vs-block branch per
     event for each, same as the ledger pattern elsewhere. *)
  mutable chooser : (int -> int) option;
  mutable observer : (unit -> unit) option;
  (* Ownership registry: region id -> owning tile / diagnostic name.
     Registration is init-time only; the arrays grow amortised. *)
  mutable region_tiles : int array;
  mutable region_names : string array;
  mutable regions : int;
  (* Race detector state, [None] when off — witnessing then costs one
     branch, same discipline as the chooser/observer hooks above. *)
  mutable race : race_state option;
}

exception Stalled of string

let create ?backend ?(domains = 1) ?(lookahead = 1) () =
  if domains < 1 then invalid_arg "Sim.create: domains must be positive";
  if lookahead < 1 then invalid_arg "Sim.create: lookahead must be positive";
  let seq = ref 0 in
  let queues =
    Array.init domains (fun _ -> Event_queue.create ?backend ~seq ())
  in
  {
    queues;
    queue = queues.(0);
    domains;
    lookahead;
    tile_map = (fun _ -> 0);
    cur_part = 0;
    in_event = false;
    clock = 0;
    events = 0;
    window_end = min_int;
    windows = 0;
    cross_events = 0;
    short_hops = 0;
    quiescent_hooks = [];
    chooser = None;
    observer = None;
    region_tiles = [||];
    region_names = [||];
    regions = 0;
    race = None;
  }

let now t = t.clock
let events t = t.events
let backend t = Event_queue.backend t.queue
let domains t = t.domains

let pdes_stats t =
  {
    domains = t.domains;
    lookahead = t.lookahead;
    windows = t.windows;
    cross_events = t.cross_events;
    short_hops = t.short_hops;
    race_violations = (match t.race with None -> 0 | Some st -> st.count);
  }

(* Allocation-free projections of [pdes_stats] for the telemetry
   sampler, which reads them every interval and must not box a
   record. *)
let pdes_windows t = t.windows
let pdes_cross_events t = t.cross_events
let pdes_short_hops t = t.short_hops

let set_tile_map t f = t.tile_map <- f

(* --- race detector API ------------------------------------------------- *)

let register_region t ~name ~tile =
  if tile < 0 then invalid_arg "Sim.register_region: negative tile";
  let id = t.regions in
  let cap = Array.length t.region_tiles in
  if id = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let tiles = Array.make ncap 0 in
    let names = Array.make ncap "" in
    Array.blit t.region_tiles 0 tiles 0 cap;
    Array.blit t.region_names 0 names 0 cap;
    t.region_tiles <- tiles;
    t.region_names <- names
  end;
  t.region_tiles.(id) <- tile;
  t.region_names.(id) <- name;
  t.regions <- id + 1;
  id

let region_count t = t.regions

let set_race_check t on =
  if on then begin
    match t.race with
    | Some _ -> ()
    | None ->
      t.race <-
        Some { vc = Array.make t.domains 0; violations = []; count = 0 }
  end
  else t.race <- None

let race_check t = match t.race with None -> false | Some _ -> true

let race_count t = match t.race with None -> 0 | Some st -> st.count

let race_violations t =
  match t.race with None -> [] | Some st -> List.rev st.violations

let pp_race_violation ppf v =
  Format.fprintf ppf
    "%s at cycle %d (event %d): region %s (tile %d, partition %d) %s from \
     partition %d [owner last in window %d, offender in window %d]"
    (match v.kind with
    | Foreign_write -> "foreign write"
    | Short_hop -> "short hop")
    v.time v.event v.region v.tile v.owner_part
    (match v.kind with
    | Foreign_write -> "mutated"
    | Short_hop -> "sent a sub-lookahead event")
    v.exec_part v.owner_window v.exec_window

(* Record a violation. Allocates, but only on an actual violation —
   clean runs never reach this, so the witnessed hot path stays
   allocation-free. *)
let record_violation t st kind ~region ~tile ~owner_part =
  let v =
    {
      kind;
      time = t.clock;
      event = t.events;
      region;
      tile;
      owner_part;
      exec_part = t.cur_part;
      owner_window = st.vc.(owner_part);
      exec_window = st.vc.(t.cur_part);
    }
  in
  st.violations <- v :: st.violations;
  st.count <- st.count + 1

let witness t r =
  match t.race with
  | None -> ()
  | Some st ->
    if t.domains > 1 && t.in_event then begin
      let owner = t.tile_map t.region_tiles.(r) in
      if owner <> t.cur_part then
        record_violation t st Foreign_write ~region:t.region_names.(r)
          ~tile:t.region_tiles.(r) ~owner_part:owner
    end

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  Event_queue.add t.queues.(t.cur_part) ~time:(t.clock + delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.add t.queues.(t.cur_part) ~time f

(* Tile-tagged schedule: the event lands on the queue of [tile]'s
   partition. Crossing a partition boundary is counted; crossing it
   with a delay below the lookahead is counted separately — those are
   the hops a true multi-domain executor would have to short-circuit
   (deliver inside the current window), i.e. the model's violations of
   the conservative lookahead contract. Sequenced execution is exact
   either way; the counters report how parallelisable the run was.

   [urgent] marks the hand-audited sites where a sub-lookahead
   cross-partition delivery is intentional model behaviour (e.g. the
   abort path releasing a parked victim in the same cycle the conflict
   is resolved): still a short hop for the accounting, but not a race
   violation — the annotation is the site's declaration that a parallel
   executor would need an intra-window channel here. *)
let schedule_tile t ?(urgent = false) ~tile ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_tile: negative delay";
  let part = if t.domains = 1 then 0 else t.tile_map tile in
  if part <> t.cur_part then begin
    t.cross_events <- t.cross_events + 1;
    if delay < t.lookahead then begin
      t.short_hops <- t.short_hops + 1;
      if not urgent && t.in_event then begin
        match t.race with
        | None -> ()
        | Some st ->
          record_violation t st Short_hop ~region:"schedule_tile" ~tile
            ~owner_part:part
      end
    end
  end;
  Event_queue.add t.queues.(part) ~time:(t.clock + delay) f

let pending t =
  if t.domains = 1 then Event_queue.length t.queue
  else begin
    let n = ref 0 in
    for i = 0 to t.domains - 1 do
      n := !n + Event_queue.length t.queues.(i)
    done;
    !n
  end

let on_quiescent t hook = t.quiescent_hooks <- hook :: t.quiescent_hooks

let set_chooser t chooser = t.chooser <- chooser

let set_observer t observer = t.observer <- observer

(* --- single-queue path (domains = 1) --------------------------------- *)

(* [fire] assumes the queue is non-empty; allocation-free (no tuple/
   option boxing, and no polymorphic [max] on the clock). With a
   chooser installed the kernel lets it pick any member of the runnable
   set (the same-cycle group) instead of strict insertion order. *)
let fire t time =
  if time > t.clock then t.clock <- time;
  t.events <- t.events + 1;
  let f =
    match t.chooser with
    | None -> Event_queue.pop_payload t.queue
    | Some choose ->
      let n = Event_queue.runnable t.queue in
      if n <= 1 then Event_queue.pop_payload t.queue
      else Event_queue.pop_payload_nth t.queue (choose n)
  in
  f ();
  match t.observer with None -> () | Some g -> g ()

(* --- sequenced multi-queue path (domains > 1) ------------------------ *)

(* Queue holding the globally earliest (time, seq) event, or -1 when
   all queues are empty. Shared sequence numbers make the comparison
   total, so the selection is unambiguous. *)
let select t =
  let best = ref (-1) in
  let best_time = ref 0 in
  let best_seq = ref 0 in
  for i = 0 to t.domains - 1 do
    let q = t.queues.(i) in
    let ti = Event_queue.next_time q in
    if ti <> Event_queue.no_event then
      if !best < 0 || ti < !best_time then begin
        best := i;
        best_time := ti;
        best_seq := Event_queue.min_seq q
      end
      else if ti = !best_time then begin
        let si = Event_queue.min_seq q in
        if si < !best_seq then begin
          best := i;
          best_seq := si
        end
      end
  done;
  !best

(* Global runnable set across the partition queues: all pending events
   at [time]. Checker-only (a chooser is installed), so the O(domains)
   scans are acceptable — checking runs use tiny models. *)
let runnable_all t time =
  let n = ref 0 in
  for i = 0 to t.domains - 1 do
    if Event_queue.next_time t.queues.(i) = time then
      n := !n + Event_queue.runnable t.queues.(i)
  done;
  !n

(* Queue index and in-queue rank of the event with the (k+1)-smallest
   sequence number among the runnable set at [time]. Per-queue runnable
   sets are seq-ordered and the counter is shared, so a cursor merge
   enumerates the global set in insertion order — exactly the order a
   single shared queue would present to the chooser. *)
let pick_nth t time k =
  let cursor = Array.make t.domains 0 in
  let picked = ref 0 in
  for _ = 0 to k do
    let bq = ref (-1) in
    let bs = ref max_int in
    for i = 0 to t.domains - 1 do
      let q = t.queues.(i) in
      if
        Event_queue.next_time q = time
        && cursor.(i) < Event_queue.runnable q
      then begin
        let s = Event_queue.runnable_seq q cursor.(i) in
        if s < !bs then begin
          bs := s;
          bq := i
        end
      end
    done;
    if !bq < 0 then invalid_arg "Sim: chooser index out of range";
    picked := !bq;
    cursor.(!bq) <- cursor.(!bq) + 1
  done;
  (!picked, cursor.(!picked) - 1)

(* Fire the earliest event of queue [qi]. The executing partition is
   recorded first so that schedules issued by the event inherit it.
   With a chooser installed the runnable set spans every queue at the
   earliest time, merged in insertion order — same contract as the
   single-queue path, so the explorer/fuzzer drive partitioned kernels
   unchanged. *)
let fire_part t qi time =
  if time > t.clock then t.clock <- time;
  (* Window accounting: a new lookahead window opens whenever the merge
     crosses the previous window's end — the points where a parallel
     executor would barrier. *)
  if time >= t.window_end then begin
    t.windows <- t.windows + 1;
    t.window_end <- time + t.lookahead
  end;
  t.events <- t.events + 1;
  let f =
    match t.chooser with
    | None ->
      t.cur_part <- qi;
      Event_queue.pop_payload t.queues.(qi)
    | Some choose ->
      let n = runnable_all t time in
      if n <= 1 then begin
        t.cur_part <- qi;
        Event_queue.pop_payload t.queues.(qi)
      end
      else begin
        let q, rank = pick_nth t time (choose n) in
        t.cur_part <- q;
        Event_queue.pop_payload_nth t.queues.(q) rank
      end
  in
  (match t.race with
  | None -> ()
  | Some st -> st.vc.(t.cur_part) <- t.windows);
  t.in_event <- true;
  (try f ()
   with e ->
     t.in_event <- false;
     raise e);
  t.in_event <- false;
  match t.observer with None -> () | Some g -> g ()

let step t =
  if t.domains = 1 then begin
    let time = Event_queue.next_time t.queue in
    if time = Event_queue.no_event then false
    else begin
      fire t time;
      true
    end
  end
  else begin
    let qi = select t in
    if qi < 0 then false
    else begin
      fire_part t qi (Event_queue.next_time t.queues.(qi));
      true
    end
  end

let clear_all t =
  for i = 0 to t.domains - 1 do
    Event_queue.clear t.queues.(i)
  done

let run ?limit t =
  let beyond time = match limit with None -> false | Some l -> time > l in
  (* Quiescence hooks may inject rescue work, but if they keep doing so
     without the clock ever advancing the simulation is livelocked:
     raise rather than spin forever. *)
  let hook_rounds = ref 0 in
  let last_hook_clock = ref (-1) in
  let single = t.domains = 1 in
  let rec drain () =
    let qi = if single then 0 else select t in
    let time =
      if qi < 0 then Event_queue.no_event
      else Event_queue.next_time t.queues.(qi)
    in
    if time = Event_queue.no_event then begin
      let hooks = t.quiescent_hooks in
      List.iter (fun hook -> hook ()) hooks;
      if pending t > 0 then begin
        if t.clock = !last_hook_clock then begin
          incr hook_rounds;
          if !hook_rounds > 1000 then
            raise
              (Stalled
                 ("quiescence hooks injected work 1000 times at cycle "
                 ^ string_of_int t.clock ^ " without progress"))
        end
        else begin
          last_hook_clock := t.clock;
          hook_rounds := 0
        end;
        drain ()
      end
    end
    else if beyond time then begin
      clear_all t;
      match limit with Some l -> t.clock <- l | None -> ()
    end
    else begin
      if single then fire t time else fire_part t qi time;
      drain ()
    end
  in
  drain ()
