(* The kernel runs in one of two shapes:

   - [domains = 1] (default): the classic single shared event queue.
     This path is unchanged and allocation-free.

   - [domains > 1]: the conservative-PDES split. Every partition owns
     its own queue, but all queues draw sequence numbers from one
     shared counter, so (time, seq) is still a *global* total order.
     The sequenced executor below merges the queues by that order —
     which reproduces, pop for pop, exactly what the single shared
     queue would have done. Results are therefore byte-identical for
     any domain count; what the split buys is the accounting (window /
     cross-partition traffic counters) and the event placement that a
     true multi-domain executor ({!Pdes}) needs. Machine-model events
     close over shared protocol state, so they are run sequenced; the
     parallel executor is for partition-confined models. *)

type pdes_stats = {
  domains : int;
  lookahead : int;
  windows : int;
  cross_events : int;
  short_hops : int;
}

type t = {
  queues : (unit -> unit) Event_queue.t array;
  queue : (unit -> unit) Event_queue.t;  (* == queues.(0): fast path *)
  domains : int;
  lookahead : int;
  (* Item (tile) -> partition map; identity-to-0 until installed. *)
  mutable tile_map : int -> int;
  (* Partition of the event currently executing; schedules without an
     explicit tile inherit it, so an event chain stays put. *)
  mutable cur_part : int;
  mutable clock : int;
  mutable events : int;
  mutable window_end : int;
  mutable windows : int;
  mutable cross_events : int;
  mutable short_hops : int;
  mutable quiescent_hooks : (unit -> unit) list;
  (* Schedule-exploration hooks (lockiller.check). Both default to
     [None]; the hot path pays exactly one immediate-vs-block branch per
     event for each, same as the ledger pattern elsewhere. *)
  mutable chooser : (int -> int) option;
  mutable observer : (unit -> unit) option;
}

exception Stalled of string

let create ?backend ?(domains = 1) ?(lookahead = 1) () =
  if domains < 1 then invalid_arg "Sim.create: domains must be positive";
  if lookahead < 1 then invalid_arg "Sim.create: lookahead must be positive";
  let seq = ref 0 in
  let queues =
    Array.init domains (fun _ -> Event_queue.create ?backend ~seq ())
  in
  {
    queues;
    queue = queues.(0);
    domains;
    lookahead;
    tile_map = (fun _ -> 0);
    cur_part = 0;
    clock = 0;
    events = 0;
    window_end = min_int;
    windows = 0;
    cross_events = 0;
    short_hops = 0;
    quiescent_hooks = [];
    chooser = None;
    observer = None;
  }

let now t = t.clock
let events t = t.events
let backend t = Event_queue.backend t.queue
let domains t = t.domains

let pdes_stats t =
  {
    domains = t.domains;
    lookahead = t.lookahead;
    windows = t.windows;
    cross_events = t.cross_events;
    short_hops = t.short_hops;
  }

let set_tile_map t f = t.tile_map <- f

let schedule t ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule: negative delay";
  Event_queue.add t.queues.(t.cur_part) ~time:(t.clock + delay) f

let schedule_at t ~time f =
  if time < t.clock then invalid_arg "Sim.schedule_at: time in the past";
  Event_queue.add t.queues.(t.cur_part) ~time f

(* Tile-tagged schedule: the event lands on the queue of [tile]'s
   partition. Crossing a partition boundary is counted; crossing it
   with a delay below the lookahead is counted separately — those are
   the hops a true multi-domain executor would have to short-circuit
   (deliver inside the current window), i.e. the model's violations of
   the conservative lookahead contract. Sequenced execution is exact
   either way; the counters report how parallelisable the run was. *)
let schedule_tile t ~tile ~delay f =
  if delay < 0 then invalid_arg "Sim.schedule_tile: negative delay";
  let part = if t.domains = 1 then 0 else t.tile_map tile in
  if part <> t.cur_part then begin
    t.cross_events <- t.cross_events + 1;
    if delay < t.lookahead then t.short_hops <- t.short_hops + 1
  end;
  Event_queue.add t.queues.(part) ~time:(t.clock + delay) f

let pending t =
  if t.domains = 1 then Event_queue.length t.queue
  else begin
    let n = ref 0 in
    for i = 0 to t.domains - 1 do
      n := !n + Event_queue.length t.queues.(i)
    done;
    !n
  end

let on_quiescent t hook = t.quiescent_hooks <- hook :: t.quiescent_hooks

let set_chooser t chooser =
  (match chooser with
  | Some _ when t.domains > 1 ->
    invalid_arg "Sim.set_chooser: choosers require a single-domain kernel"
  | _ -> ());
  t.chooser <- chooser

let set_observer t observer = t.observer <- observer

(* --- single-queue path (domains = 1) --------------------------------- *)

(* [fire] assumes the queue is non-empty; allocation-free (no tuple/
   option boxing, and no polymorphic [max] on the clock). With a
   chooser installed the kernel lets it pick any member of the runnable
   set (the same-cycle group) instead of strict insertion order. *)
let fire t time =
  if time > t.clock then t.clock <- time;
  t.events <- t.events + 1;
  let f =
    match t.chooser with
    | None -> Event_queue.pop_payload t.queue
    | Some choose ->
      let n = Event_queue.runnable t.queue in
      if n <= 1 then Event_queue.pop_payload t.queue
      else Event_queue.pop_payload_nth t.queue (choose n)
  in
  f ();
  match t.observer with None -> () | Some g -> g ()

(* --- sequenced multi-queue path (domains > 1) ------------------------ *)

(* Queue holding the globally earliest (time, seq) event, or -1 when
   all queues are empty. Shared sequence numbers make the comparison
   total, so the selection is unambiguous. *)
let select t =
  let best = ref (-1) in
  let best_time = ref 0 in
  let best_seq = ref 0 in
  for i = 0 to t.domains - 1 do
    let q = t.queues.(i) in
    let ti = Event_queue.next_time q in
    if ti <> Event_queue.no_event then
      if !best < 0 || ti < !best_time then begin
        best := i;
        best_time := ti;
        best_seq := Event_queue.min_seq q
      end
      else if ti = !best_time then begin
        let si = Event_queue.min_seq q in
        if si < !best_seq then begin
          best := i;
          best_seq := si
        end
      end
  done;
  !best

(* Fire the earliest event of queue [qi]. The executing partition is
   recorded first so that schedules issued by the event inherit it. *)
let fire_part t qi time =
  if time > t.clock then t.clock <- time;
  (* Window accounting: a new lookahead window opens whenever the merge
     crosses the previous window's end — the points where a parallel
     executor would barrier. *)
  if time >= t.window_end then begin
    t.windows <- t.windows + 1;
    t.window_end <- time + t.lookahead
  end;
  t.events <- t.events + 1;
  t.cur_part <- qi;
  let f = Event_queue.pop_payload t.queues.(qi) in
  f ();
  match t.observer with None -> () | Some g -> g ()

let step t =
  if t.domains = 1 then begin
    let time = Event_queue.next_time t.queue in
    if time = Event_queue.no_event then false
    else begin
      fire t time;
      true
    end
  end
  else begin
    let qi = select t in
    if qi < 0 then false
    else begin
      fire_part t qi (Event_queue.next_time t.queues.(qi));
      true
    end
  end

let clear_all t =
  for i = 0 to t.domains - 1 do
    Event_queue.clear t.queues.(i)
  done

let run ?limit t =
  let beyond time = match limit with None -> false | Some l -> time > l in
  (* Quiescence hooks may inject rescue work, but if they keep doing so
     without the clock ever advancing the simulation is livelocked:
     raise rather than spin forever. *)
  let hook_rounds = ref 0 in
  let last_hook_clock = ref (-1) in
  let single = t.domains = 1 in
  let rec drain () =
    let qi = if single then 0 else select t in
    let time =
      if qi < 0 then Event_queue.no_event
      else Event_queue.next_time t.queues.(qi)
    in
    if time = Event_queue.no_event then begin
      let hooks = t.quiescent_hooks in
      List.iter (fun hook -> hook ()) hooks;
      if pending t > 0 then begin
        if t.clock = !last_hook_clock then begin
          incr hook_rounds;
          if !hook_rounds > 1000 then
            raise
              (Stalled
                 ("quiescence hooks injected work 1000 times at cycle "
                 ^ string_of_int t.clock ^ " without progress"))
        end
        else begin
          last_hook_clock := t.clock;
          hook_rounds := 0
        end;
        drain ()
      end
    end
    else if beyond time then begin
      clear_all t;
      match limit with Some l -> t.clock <- l | None -> ()
    end
    else begin
      if single then fire t time else fire_part t qi time;
      drain ()
    end
  in
  drain ()
